package rcep_test

import (
	"fmt"
	"time"

	"rcep"
)

// The paper's Rule 1: mark re-reads of the same object by the same reader
// within five seconds as duplicates.
func ExampleNew() {
	eng, err := rcep.New(rcep.Config{
		Rules: `
CREATE RULE r1, duplicate detection rule
ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
IF true
DO send_duplicate_msg(o)
`,
	})
	if err != nil {
		panic(err)
	}
	eng.RegisterProcedure("send_duplicate_msg", func(_ rcep.ProcContext, args []any) error {
		fmt.Println("duplicate:", args[0])
		return nil
	})
	eng.Ingest("dock1", "pallet-42", 0)
	eng.Ingest("dock1", "pallet-42", 2*time.Second)
	eng.Close()
	// Output:
	// duplicate: pallet-42
}

// The paper's Rule 4: containment aggregation. BULK INSERT expands the
// item list collected by TSEQ+ into one row per contained object.
func ExampleEngine_Query() {
	eng, err := rcep.New(rcep.Config{
		Rules: `
DEFINE E1 = observation('r1', o1, t1)
DEFINE E2 = observation('r2', o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`,
	})
	if err != nil {
		panic(err)
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	eng.Ingest("r1", "item1", sec(1.0))
	eng.Ingest("r1", "item2", sec(1.4))
	eng.Ingest("r2", "case1", sec(13))
	eng.Close()

	_, rows, err := eng.Query(`SELECT object_epc, parent_epc FROM OBJECTCONTAINMENT ORDER BY object_epc`)
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Println(r[0], "in", r[1])
	}
	// Output:
	// item1 in case1
	// item2 in case1
}

// The paper's Rule 5: a negated event under WITHIN, completed by a pseudo
// event when the window expires.
func ExampleEngine_AdvanceTo() {
	types := map[string]string{"laptop-1": "laptop", "badge-1": "superuser"}
	eng, err := rcep.New(rcep.Config{
		Rules: `
DEFINE Laptop = observation('exit', o4, t4), type(o4) = 'laptop'
DEFINE Super  = observation('exit', o5, t5), type(o5) = 'superuser'
CREATE RULE r5, asset monitoring rule
ON WITHIN(Laptop AND NOT Super, 5sec)
IF true
DO send_alarm(o4)
`,
		TypeOf: func(o string) string { return types[o] },
	})
	if err != nil {
		panic(err)
	}
	eng.RegisterProcedure("send_alarm", func(_ rcep.ProcContext, args []any) error {
		fmt.Println("ALARM:", args[0])
		return nil
	})
	eng.Ingest("exit", "laptop-1", 10*time.Second)
	eng.AdvanceTo(time.Minute) // the 5s window expires with no badge
	// Output:
	// ALARM: laptop-1
}
