// Supplychain: the full pipeline of the paper's evaluation — a simulated
// RFID-enabled supply chain (packing lines → warehouse → shipping →
// retail shelf → point of sale) streamed through low-level duplicate
// filtering (paper Fig. 2's event-filtering stage) and the five rule
// families into the RFID data store.
//
// Run with: go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
	"rcep/internal/core/event"
	"rcep/internal/sim"
	"rcep/internal/stream"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Lines = 3
	cfg.CasesPerLine = 4
	cfg.DupProb = 0.15
	sc := sim.Generate(cfg)
	fmt.Printf("simulated %d observations across %d packing lines (%d injected duplicates)\n",
		len(sc.Observations), cfg.Lines, sc.Truth.DuplicateReads)

	eng, err := rcep.New(rcep.Config{
		Rules:  sim.RuleScript(cfg.Lines, sim.AllFamilies()),
		Groups: sc.ChainGroups(),
		TypeOf: sc.Registry.TypeOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	alarms := 0
	eng.RegisterProcedure("send_alarm", func(_ rcep.ProcContext, args []any) error {
		alarms++
		fmt.Printf("  ALARM: laptop %v left unescorted\n", args[0])
		return nil
	})
	eng.RegisterProcedure("mark_duplicate", func(_ rcep.ProcContext, _ []any) error {
		return nil // duplicates are filtered upstream; this stays quiet
	})

	// Paper Fig. 2 pipeline: low-level event filtering feeds complex
	// event detection.
	filtered := 0
	dedup := stream.NewDedup(time.Second, func(o event.Observation) error {
		return eng.Ingest(o.Reader, o.Object, time.Duration(o.At))
	})
	dedup.OnDuplicate = func(event.Observation) { filtered++ }

	fmt.Println("replaying stream ...")
	for _, o := range sc.Observations {
		if err := dedup.Push(o); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("filtered %d duplicate reads\n", filtered)
	fmt.Printf("raised %d alarms (ground truth: %d)\n", alarms, len(sc.Truth.Alarms))

	count := func(sql string) int64 {
		_, rows, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		return rows[0][0].(int64)
	}
	fmt.Printf("containment relationships: %d (ground truth: %d cases)\n",
		count(`SELECT COUNT(*) FROM OBJECTCONTAINMENT`), len(sc.Truth.Containments))
	fmt.Printf("location history rows:     %d\n", count(`SELECT COUNT(*) FROM OBJECTLOCATION`))
	fmt.Printf("shelf inventory rows:      %d\n", count(`SELECT COUNT(*) FROM INVENTORY`))

	// Where did every case end up?
	fmt.Println("\ncurrent case locations:")
	_, rows, err := eng.Query(
		`SELECT object_epc, loc_id FROM OBJECTLOCATION WHERE tend = 'UC' ORDER BY object_epc LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %v @ %v\n", r[0], r[1])
	}
	m := eng.Metrics()
	fmt.Printf("\nengine: %d observations, %d detections, %d pseudo events\n",
		m.Observations, m.Detections, m.PseudoFired)
}
