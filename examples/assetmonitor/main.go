// Assetmonitor: the paper's Example 2 / Rule 5 — real-time monitoring
// with negation. A laptop passing the building exit without a superuser
// badge within 5 seconds raises an alarm; the detection completes via a
// pseudo event when the window expires.
//
// Run with: go run ./examples/assetmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
)

func main() {
	// type(o) comes from the tag registry of the site.
	types := map[string]string{
		"laptop-0017": "laptop",
		"laptop-0042": "laptop",
		"badge-ceo":   "superuser",
	}

	eng, err := rcep.New(rcep.Config{
		Rules: `
DEFINE E4 = observation('exit-gate', o4, t4), type(o4) = 'laptop'
DEFINE E5 = observation('exit-gate', o5, t5), type(o5) = 'superuser'
CREATE RULE r5, asset monitoring rule
ON WITHIN(E4 AND NOT E5, 5sec)
IF true
DO send_alarm(o4, t4); INSERT INTO ALERTS VALUES ('asset', o4, t4)
`,
		TypeOf: func(o string) string { return types[o] },
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.RegisterProcedure("send_alarm", func(ctx rcep.ProcContext, args []any) error {
		fmt.Printf("ALARM (%s): %v taken out at %v, confirmed at %v\n",
			ctx.RuleName, args[0], args[1], ctx.End)
		return nil
	})

	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// Scene 1: the CEO walks out with a laptop — badge read 2s later, no
	// alarm.
	if err := eng.Ingest("exit-gate", "laptop-0017", sec(10)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Ingest("exit-gate", "badge-ceo", sec(12)); err != nil {
		log.Fatal(err)
	}

	// Scene 2: someone walks out with a laptop alone.
	if err := eng.Ingest("exit-gate", "laptop-0042", sec(60)); err != nil {
		log.Fatal(err)
	}

	// Let the 5-second windows expire (fires the pseudo events).
	if err := eng.AdvanceTo(sec(120)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	_, rows, err := eng.Query(`SELECT object_epc, at FROM ALERTS WHERE rule_name = 'asset'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alert log: %v\n", rows)
	fmt.Printf("pseudo events scheduled/fired: %d/%d\n",
		eng.Metrics().PseudoScheduled, eng.Metrics().PseudoFired)
}
