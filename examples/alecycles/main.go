// Alecycles: the ALE-style middleware layer next to the CEP engine. The
// same smart-shelf stream feeds (a) an ALE collector producing per-cycle
// ADDITIONS/DELETIONS reports and (b) the rule engine producing infield/
// outfield events — the two views that commercial RFID middleware and the
// paper's event-oriented approach give over identical data.
//
// Run with: go run ./examples/alecycles
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
	"rcep/internal/ale"
	"rcep/internal/core/event"
)

func main() {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// The shelf scans every 30s; soda leaves after two cycles, chips
	// arrives on the second.
	scans := []event.Observation{
		{Reader: "shelf-7", Object: "soda", At: event.Time(sec(0))},
		{Reader: "shelf-7", Object: "soda", At: event.Time(sec(30))},
		{Reader: "shelf-7", Object: "chips", At: event.Time(sec(30.1))},
		{Reader: "shelf-7", Object: "chips", At: event.Time(sec(60.1))},
	}

	// View 1: ALE event cycles.
	collector, err := ale.NewCollector(ale.Spec{
		Name:          "shelf-7-cycles",
		Readers:       []string{"shelf-7"},
		Period:        30 * time.Second,
		Reports:       []ale.ReportType{ale.Additions, ale.Deletions},
		SuppressEmpty: true,
	}, func(r ale.Report) {
		fmt.Printf("ALE cycle %d [%v..%v) %-9s %v\n", r.Cycle, r.Start, r.End, r.Type, r.Objects)
	})
	if err != nil {
		log.Fatal(err)
	}

	// View 2: the paper's semantic filtering rules.
	eng, err := rcep.New(rcep.Config{
		Rules: `
CREATE RULE infield, infield filtering
ON WITHIN(NOT observation('shelf-7', o, t1); observation('shelf-7', o, t2), 45sec)
IF true
DO shelf_event('infield', o)

CREATE RULE outfield, outfield filtering
ON WITHIN(observation('shelf-7', o, t1); NOT observation('shelf-7', o, t2), 45sec)
IF true
DO shelf_event('outfield', o)
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.RegisterProcedure("shelf_event", func(ctx rcep.ProcContext, args []any) error {
		fmt.Printf("CEP %-8v %v at %v\n", args[0], args[1], ctx.End)
		return nil
	})

	for _, o := range scans {
		if err := collector.Push(o); err != nil {
			log.Fatal(err)
		}
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			log.Fatal(err)
		}
	}
	collector.AdvanceTo(event.Time(sec(120)))
	collector.Flush()
	if err := eng.AdvanceTo(sec(120)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
}
