// Packing: the paper's Example 1 / Rule 4 — automatic containment
// aggregation on a packing conveyor. Items pass an item reader 0.1–1s
// apart; the case tag is read 10–20s later; the rule aggregates the whole
// sequence into OBJECTCONTAINMENT rows via BULK INSERT.
//
// Run with: go run ./examples/packing
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
)

func main() {
	eng, err := rcep.New(rcep.Config{
		Rules: `
DEFINE E1 = observation('conveyor-items', o1, t1)
DEFINE E2 = observation('conveyor-case', o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`,
		OnDetection: func(d rcep.Detection) {
			fmt.Printf("packed %v into %v at %v\n", d.Bindings["o1"], d.Bindings["o2"], d.End)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	feed := func(reader, object string, at time.Duration) {
		if err := eng.Ingest(reader, object, at); err != nil {
			log.Fatal(err)
		}
	}

	// First case: three items, then the case 12s later.
	feed("conveyor-items", "item-A1", sec(1.0))
	feed("conveyor-items", "item-A2", sec(1.4))
	feed("conveyor-items", "item-A3", sec(1.8))
	feed("conveyor-case", "case-A", sec(14))

	// Second case overlapping the tail of the first on the timeline —
	// the chronicle context keeps the aggregations apart.
	feed("conveyor-items", "item-B1", sec(20.0))
	feed("conveyor-items", "item-B2", sec(20.5))
	feed("conveyor-case", "case-B", sec(32))

	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	// The virtual world now mirrors the physical packing:
	cols, rows, err := eng.Query(`SELECT object_epc, parent_epc, tend FROM OBJECTCONTAINMENT`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cols)
	for _, r := range rows {
		fmt.Println(r)
	}
}
