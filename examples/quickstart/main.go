// Quickstart: define one rule, feed a handful of observations, watch it
// fire. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
)

func main() {
	// A single duplicate-detection rule (paper §3.1, Rule 1): the same
	// reader seeing the same object twice within 5 seconds marks the
	// earlier observation as a duplicate.
	eng, err := rcep.New(rcep.Config{
		Rules: `
CREATE RULE r1, duplicate detection rule
ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
IF true
DO send_duplicate_msg(r, o, t1)
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.RegisterProcedure("send_duplicate_msg", func(_ rcep.ProcContext, args []any) error {
		fmt.Printf("duplicate: reader=%v object=%v first-seen=%v\n", args[0], args[1], args[2])
		return nil
	})

	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	observations := []rcep.Observation{
		{Reader: "dock1", Object: "pallet-42", At: sec(0)},
		{Reader: "dock1", Object: "pallet-42", At: sec(2)},  // duplicate of t=0
		{Reader: "dock1", Object: "pallet-77", At: sec(3)},  // different object
		{Reader: "dock2", Object: "pallet-42", At: sec(4)},  // different reader
		{Reader: "dock1", Object: "pallet-42", At: sec(30)}, // too late: not a duplicate
	}
	for _, o := range observations {
		if err := eng.IngestObservation(o); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	m := eng.Metrics()
	fmt.Printf("processed %d observations, %d detections\n", m.Observations, m.Detections)
}
