// Tracking: history-oriented object tracking (paper §1's first
// application class). The supply-chain simulator drives containment and
// location rules; afterwards the data store answers "where has this item
// been?" by following containment chains through time — an item inside a
// case is wherever the case is.
//
// Run with: go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
	"rcep/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Lines = 1
	cfg.CasesPerLine = 2
	sc := sim.Generate(cfg)

	eng, err := rcep.New(rcep.Config{
		Rules:  sim.RuleScript(cfg.Lines, []string{"pack", "loc"}),
		Groups: sc.ChainGroups(),
		TypeOf: sc.Registry.TypeOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	for caseEPC, items := range sc.Truth.Containments {
		fmt.Printf("case %s:\n", caseEPC)
		item := items[0]
		trace, err := eng.Trace(item)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  item %s travelled:\n", item)
		for _, stay := range trace {
			if stay.Open {
				fmt.Printf("    %-10s from %v (still there)\n", stay.Location, stay.Start)
			} else {
				fmt.Printf("    %-10s %v .. %v\n", stay.Location, stay.Start, stay.End)
			}
		}
		if loc, ok := eng.LocateAt(item, stayMid(trace)); ok {
			fmt.Printf("  spot check at %v: %s\n", stayMid(trace), loc)
		}
		break // one case is enough for the demo
	}
}

// stayMid picks a representative instant inside the first stay.
func stayMid(trace []rcep.Stay) time.Duration {
	if len(trace) == 0 {
		return 0
	}
	return trace[0].Start + time.Second
}
