// Library: the paper's library check-in/check-out application. A
// checkout desk associates a book with a patron card (an AND join of two
// typed objects within 2 seconds); the return desk closes the loan; the
// exit gate's rule consults the data store in its IF condition and alarms
// only for books with no open loan.
//
// Run with: go run ./examples/library
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
	"rcep/internal/sim"
)

func main() {
	sc := sim.GenerateLibrary(sim.DefaultLibraryConfig())
	fmt.Printf("library scenario: %d observations, %d loans, %d returns, %d thefts expected\n",
		len(sc.Observations), len(sc.Truth.Loans), len(sc.Truth.Returned), len(sc.Truth.Thefts))

	eng, err := rcep.New(rcep.Config{
		Rules:  sim.LibraryRules,
		TypeOf: sc.Registry.TypeOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Exec(sim.LibraryLoansDDL); err != nil {
		log.Fatal(err)
	}
	eng.RegisterProcedure("checkout_receipt", func(_ rcep.ProcContext, args []any) error {
		fmt.Printf("  checkout: book %v → patron %v\n", short(args[0]), short(args[1]))
		return nil
	})
	eng.RegisterProcedure("theft_alarm", func(_ rcep.ProcContext, args []any) error {
		fmt.Printf("  ALARM: book %v left with no open loan at %v\n", short(args[0]), args[1])
		return nil
	})

	for _, o := range sc.Observations {
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nopen loans at end of day:")
	_, rows, err := eng.Query(`SELECT book, patron, tstart FROM LOANS WHERE tend = 'UC'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %v → %v since %v\n", short(r[0]), short(r[1]), r[2])
	}
}

// short trims EPC hex for readable output.
func short(v any) string {
	s, _ := v.(string)
	if len(s) > 8 {
		return "…" + s[len(s)-6:]
	}
	return s
}
