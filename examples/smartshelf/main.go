// Smartshelf: the paper's §3.1 semantic filtering — infield and outfield
// events on a smart shelf whose reader bulk-reads everything every 30
// seconds. The application only cares when an object is PUT ON the shelf
// (infield: first sighting after a silent period) and when it is TAKEN OFF
// (outfield: no sighting for a full period), not about the endless
// re-reads in between.
//
// Run with: go run ./examples/smartshelf
package main

import (
	"fmt"
	"log"
	"time"

	"rcep"
)

func main() {
	eng, err := rcep.New(rcep.Config{
		Rules: `
-- Rule 2 (infield): first sighting after >=45s of silence.
CREATE RULE r2, infield filtering
ON WITHIN(NOT observation('shelf-7', o, t1); observation('shelf-7', o, t2), 45sec)
IF true
DO INSERT INTO INVENTORY VALUES ('shelf-7', o, t2, 'UC');
   shelf_event('infield', o)

-- Outfield: sighted, then silent for 45s.
CREATE RULE r2b, outfield filtering
ON WITHIN(observation('shelf-7', o, t1); NOT observation('shelf-7', o, t2), 45sec)
IF true
DO UPDATE INVENTORY SET tend = t1 WHERE object_epc = o AND tend = 'UC';
   shelf_event('outfield', o)
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.RegisterProcedure("shelf_event", func(ctx rcep.ProcContext, args []any) error {
		fmt.Printf("%-8v %v at %v\n", args[0], args[1], ctx.End)
		return nil
	})

	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// soda stays for three 30s scan cycles (0, 30, 60) then is taken;
	// chips appears at cycle 30 and stays through 60.
	scans := []rcep.Observation{
		{Reader: "shelf-7", Object: "soda", At: sec(0)},
		{Reader: "shelf-7", Object: "soda", At: sec(30)},
		{Reader: "shelf-7", Object: "chips", At: sec(30.1)},
		{Reader: "shelf-7", Object: "soda", At: sec(60)},
		{Reader: "shelf-7", Object: "chips", At: sec(60.1)},
		{Reader: "shelf-7", Object: "chips", At: sec(90.1)},
	}
	for _, o := range scans {
		if err := eng.IngestObservation(o); err != nil {
			log.Fatal(err)
		}
	}
	// Let the outfield windows expire.
	if err := eng.AdvanceTo(sec(200)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal inventory periods:")
	_, rows, err := eng.Query(`SELECT object_epc, tstart, tend FROM INVENTORY`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r)
	}
}
