package rcep

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"rcep/internal/sim"
)

// shardScenario builds a 3-line supply-chain workload exercising every
// rule family (literal readers, group-keyed chain readers, negation,
// TSEQ+ aggregation).
func shardScenario() (*sim.Scenario, string) {
	cfg := sim.DefaultConfig()
	cfg.Lines = 3
	cfg.CasesPerLine = 2
	cfg.DupProb = 0.05
	sc := sim.Generate(cfg)
	return sc, sim.RuleScript(cfg.Lines, sim.AllFamilies())
}

func detectionSig(d Detection) string {
	keys := make([]string, 0, len(d.Bindings))
	for k := range d.Bindings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s", d.RuleID, d.Begin, d.End)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%v", k, d.Bindings[k])
	}
	return b.String()
}

var shardAuditTables = []string{"OBJECTLOCATION", "OBJECTCONTAINMENT", "INVENTORY", "ALERTS"}

// dumpTables renders the audit tables' rows as sorted strings.
func dumpTables(t *testing.T, eng *Engine) []string {
	t.Helper()
	var out []string
	for _, tbl := range shardAuditTables {
		_, rows, err := eng.Query("SELECT * FROM " + tbl)
		if err != nil {
			t.Fatalf("SELECT * FROM %s: %v", tbl, err)
		}
		for _, r := range rows {
			out = append(out, fmt.Sprintf("%s|%v", tbl, r))
		}
	}
	sort.Strings(out)
	return out
}

type facadeRun struct {
	firings []string
	tables  []string
	procs   []string
	shards  int
}

// runFacade replays the scenario through an Engine with the given shard
// setting and captures everything observable: rule firings, proc calls and
// the audit tables.
func runFacade(t *testing.T, sc *sim.Scenario, script string, shards int) facadeRun {
	t.Helper()
	eng, err := New(Config{
		Rules:  script,
		Groups: sc.ChainGroups(),
		TypeOf: sc.Registry.TypeOf,
		Shards: shards,
	})
	if err != nil {
		t.Fatalf("New(Shards=%d): %v", shards, err)
	}
	var run facadeRun
	record := func(name string) Proc {
		return func(ctx ProcContext, args []any) error {
			run.procs = append(run.procs, fmt.Sprintf("%s|%s|%v", name, ctx.RuleID, args))
			return nil
		}
	}
	eng.RegisterProcedure("mark_duplicate", record("mark_duplicate"))
	eng.RegisterProcedure("send_alarm", record("send_alarm"))
	for _, o := range sc.Observations {
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	for _, d := range eng.Firings() {
		run.firings = append(run.firings, detectionSig(d))
	}
	run.tables = dumpTables(t, eng)
	run.shards = eng.Shards()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close(Shards=%d): %v", shards, err)
	}
	return run
}

// TestShardedFacadeEquivalence: the sharded facade produces exactly the
// single engine's rule firings, proc calls and data-store contents.
func TestShardedFacadeEquivalence(t *testing.T) {
	sc, script := shardScenario()
	single := runFacade(t, sc, script, 0)
	if len(single.firings) == 0 {
		t.Fatalf("scenario produced no rule firings; workload is vacuous")
	}
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			got := runFacade(t, sc, script, n)
			if n > 1 && got.shards < 2 {
				t.Errorf("Shards() = %d, expected a real partition", got.shards)
			}
			compareMultisets(t, "firings", single.firings, got.firings)
			compareMultisets(t, "procs", single.procs, got.procs)
			compareMultisets(t, "tables", single.tables, got.tables)
		})
	}
}

func compareMultisets(t *testing.T, label string, want, got []string) {
	t.Helper()
	w := append([]string(nil), want...)
	g := append([]string(nil), got...)
	sort.Strings(w)
	sort.Strings(g)
	if len(w) != len(g) {
		t.Errorf("%s: %d entries, single engine has %d", label, len(g), len(w))
	}
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			t.Errorf("%s: entry %d = %q, single engine %q", label, i, g[i], w[i])
			return
		}
	}
}

// TestShardedCheckpointRoundTrip: checkpoint a sharded engine mid-stream,
// restore into a new sharded engine, finish the stream and require the
// same final store as an uninterrupted sharded run.
func TestShardedCheckpointRoundTrip(t *testing.T) {
	sc, script := shardScenario()
	full := runFacade(t, sc, script, 4)

	newEng := func(shards int, ck *bytes.Buffer) (*Engine, error) {
		cfg := Config{
			Rules:  script,
			Groups: sc.ChainGroups(),
			TypeOf: sc.Registry.TypeOf,
			Shards: shards,
		}
		if ck != nil {
			cfg.Checkpoint = bytes.NewReader(ck.Bytes())
		}
		eng, err := New(cfg)
		if err != nil {
			return nil, err
		}
		noop := func(ProcContext, []any) error { return nil }
		eng.RegisterProcedure("mark_duplicate", noop)
		eng.RegisterProcedure("send_alarm", noop)
		return eng, nil
	}

	first, err := newEng(4, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cut := len(sc.Observations) / 2
	for _, o := range sc.Observations[:cut] {
		if err := first.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	var ck bytes.Buffer
	if err := first.SaveCheckpoint(&ck); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	first.Close()

	// A different shard count cannot adopt the checkpoint.
	if _, err := newEng(2, &ck); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("restore into Shards=2 engine: err = %v, want shard-count mismatch", err)
	}

	second, err := newEng(4, &ck)
	if err != nil {
		t.Fatalf("New(Checkpoint): %v", err)
	}
	for _, o := range sc.Observations[cut:] {
		if err := second.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			t.Fatalf("Ingest after restore: %v", err)
		}
	}
	got := dumpTables(t, second)
	if err := second.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	compareMultisets(t, "restored tables", full.tables, got)
}

// TestShardedSingleCheckpointGuard: a single-engine checkpoint cannot be
// restored into a sharded engine, and vice versa.
func TestShardedSingleCheckpointGuard(t *testing.T) {
	sc, script := shardScenario()
	mk := func(shards int) *Engine {
		eng, err := New(Config{
			Rules:  script,
			Groups: sc.ChainGroups(),
			TypeOf: sc.Registry.TypeOf,
			Shards: shards,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		noop := func(ProcContext, []any) error { return nil }
		eng.RegisterProcedure("mark_duplicate", noop)
		eng.RegisterProcedure("send_alarm", noop)
		return eng
	}
	single := mk(0)
	var singleCk bytes.Buffer
	if err := single.SaveCheckpoint(&singleCk); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	single.Close()
	sharded := mk(4)
	var shardedCk bytes.Buffer
	if err := sharded.SaveCheckpoint(&shardedCk); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	sharded.Close()

	if _, err := New(Config{
		Rules: script, Groups: sc.ChainGroups(), TypeOf: sc.Registry.TypeOf,
		Shards: 4, Checkpoint: bytes.NewReader(singleCk.Bytes()),
	}); err == nil {
		t.Errorf("sharded engine accepted a single-engine checkpoint")
	}
	if _, err := New(Config{
		Rules: script, Groups: sc.ChainGroups(), TypeOf: sc.Registry.TypeOf,
		Checkpoint: bytes.NewReader(shardedCk.Bytes()),
	}); err == nil {
		t.Errorf("single engine accepted a sharded checkpoint")
	}
}
