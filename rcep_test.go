package rcep

import (
	"strings"
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestFacadeAssetMonitoring(t *testing.T) {
	types := map[string]string{"L1": "laptop", "L2": "laptop", "U1": "superuser"}
	var alarms []string
	eng, err := New(Config{
		Rules: `
DEFINE E4 = observation('exit', o4, t4), type(o4) = 'laptop'
DEFINE E5 = observation('exit', o5, t5), type(o5) = 'superuser'
CREATE RULE r5, asset monitoring rule
ON WITHIN(E4 AND NOT E5, 5sec)
IF true
DO send_alarm(o4)
`,
		TypeOf: func(o string) string { return types[o] },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterProcedure("send_alarm", func(_ ProcContext, args []any) error {
		alarms = append(alarms, args[0].(string))
		return nil
	})
	// L1 leaves escorted; L2 leaves alone.
	if err := eng.Ingest("exit", "L1", sec(10)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("exit", "U1", sec(12)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest("exit", "L2", sec(60)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || alarms[0] != "L2" {
		t.Fatalf("alarms: %v", alarms)
	}
	if m := eng.Metrics(); m.Detections != 1 || m.Observations != 3 {
		t.Errorf("metrics: %+v", m)
	}
}

func TestFacadeContainmentAndQuery(t *testing.T) {
	eng, err := New(Config{
		Rules: `
DEFINE E1 = observation('r1', o1, t1)
DEFINE E2 = observation('r2', o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Observation{
		{"r1", "item1", sec(1.0)},
		{"r1", "item2", sec(1.3)},
		{"r1", "item3", sec(1.6)},
		{"r2", "case1", sec(14)},
	} {
		if err := eng.IngestObservation(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := eng.Query(`SELECT object_epc, parent_epc FROM OBJECTCONTAINMENT ORDER BY object_epc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 3 {
		t.Fatalf("query: %v %v", cols, rows)
	}
	for i, want := range []string{"item1", "item2", "item3"} {
		if rows[i][0].(string) != want || rows[i][1].(string) != "case1" {
			t.Errorf("row %d: %v", i, rows[i])
		}
	}
	fs := eng.Firings()
	if len(fs) != 1 || fs[0].RuleID != "r4" || fs[0].RuleName != "containment rule" {
		t.Fatalf("firings: %+v", fs)
	}
	if lst, ok := fs[0].Bindings["o1"].([]any); !ok || len(lst) != 3 {
		t.Errorf("o1 binding: %#v", fs[0].Bindings["o1"])
	}
}

func TestFacadeOnDetectionAndConditions(t *testing.T) {
	var seen []Detection
	eng, err := New(Config{
		Rules: `
CREATE RULE hot, hot objects
ON observation(r, o, t)
IF is_hot(o)
DO INSERT INTO OBSERVATION VALUES (r, o, t)
`,
		OnDetection: func(d Detection) { seen = append(seen, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterFunc("is_hot", func(args []any) (any, error) {
		return strings.HasPrefix(args[0].(string), "HOT"), nil
	})
	_ = eng.Ingest("r1", "HOT-1", sec(1))
	_ = eng.Ingest("r1", "cold", sec(2))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Bindings["o"].(string) != "HOT-1" {
		t.Fatalf("detections: %+v", seen)
	}
	_, rows, err := eng.Query(`SELECT * FROM OBSERVATION`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("stored observations: %v", rows)
	}
}

func TestFacadeExecAndUC(t *testing.T) {
	eng, err := New(Config{Rules: `
CREATE RULE loc, location change rule
ON observation(r, o, t)
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
`})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Ingest("dock1", "pallet1", sec(10))
	_ = eng.Ingest("dock2", "pallet1", sec(50))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := eng.Query(`SELECT loc_id, tend FROM OBJECTLOCATION WHERE object_epc = 'pallet1' AND tend = 'UC'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(string) != "dock2" || rows[0][1] != "UC" {
		t.Fatalf("current location: %v", rows)
	}
	// Exec for seeding.
	n, err := eng.Exec(`INSERT INTO OBJECTLOCATION VALUES ('x', 'depot', 0, 'UC')`)
	if err != nil || n != 1 {
		t.Fatalf("Exec: %d %v", n, err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := New(Config{Rules: ``}); err == nil {
		t.Errorf("empty script accepted")
	}
	if _, err := New(Config{Rules: `garbage`}); err == nil {
		t.Errorf("garbage script accepted")
	}
	if _, err := New(Config{Rules: `
CREATE RULE x, n ON NOT observation(r,o,t) IF true DO f()`}); err == nil {
		t.Errorf("invalid rule accepted")
	}
	if _, err := New(Config{Context: "bogus", Rules: `
CREATE RULE x, n ON observation(r,o,t) IF true DO f()`}); err == nil {
		t.Errorf("bogus context accepted")
	}
	eng, err := New(Config{Rules: `
CREATE RULE x, n ON observation(r,o,t) IF true DO missing_proc(o)`})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Ingest("r1", "o1", sec(1))
	if err := eng.Close(); err == nil {
		t.Errorf("missing procedure should surface at Close")
	}
	if len(eng.Errs()) != 1 {
		t.Errorf("Errs: %v", eng.Errs())
	}
	// Out of order.
	eng2, _ := New(Config{Rules: `
CREATE RULE x, n ON observation(r,o,t) IF true DO INSERT INTO OBSERVATION VALUES (r, o, t)`})
	_ = eng2.Ingest("r1", "a", sec(5))
	if err := eng2.Ingest("r1", "b", sec(1)); err == nil {
		t.Errorf("out-of-order accepted")
	}
}

func TestFacadeIngestBatch(t *testing.T) {
	eng, err := New(Config{Rules: `
CREATE RULE r1, seq
ON observation('a', o, t1); observation('b', o, t2)
IF true
DO INSERT INTO ALERTS VALUES ('seq', o, t2)
`})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order batch: IngestBatch sorts before feeding.
	batch := []Observation{
		{"b", "x", sec(5)},
		{"a", "x", sec(1)},
	}
	if err := eng.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := eng.Query(`SELECT COUNT(*) FROM ALERTS`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].(int64) != 1 {
		t.Fatalf("batch pairing: %v", rows)
	}
	// The original slice is untouched.
	if batch[0].Reader != "b" {
		t.Errorf("IngestBatch mutated the caller's slice")
	}
}

func TestFacadeTrace(t *testing.T) {
	// Containment (Rule 4) + location changes (Rule 3) combine into a
	// full movement trace for a contained item.
	eng, err := New(Config{Rules: `
DEFINE E1 = observation('pack_items', o1, t1)
DEFINE E2 = observation('pack_case', o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')

DEFINE Chain = observation(r, o, t), group(r) = 'chain'
CREATE RULE r3, location change rule
ON Chain
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
`,
		Groups: func(r string) []string {
			if r == "dock" || r == "truck" {
				return []string{r, "chain"}
			}
			return []string{r}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(r, o string, s float64) {
		t.Helper()
		if err := eng.Ingest(r, o, sec(s)); err != nil {
			t.Fatal(err)
		}
	}
	feed("pack_items", "item1", 1.0)
	feed("pack_items", "item2", 1.4)
	feed("pack_case", "caseA", 13)
	feed("dock", "caseA", 40)
	feed("truck", "caseA", 80)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	if loc, ok := eng.LocateAt("item1", sec(50)); !ok || loc != "dock" {
		t.Errorf("LocateAt(item1, 50s) = %q %t", loc, ok)
	}
	trace, err := eng.Trace("item1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0].Location != "dock" || trace[1].Location != "truck" {
		t.Fatalf("trace: %+v", trace)
	}
	if !trace[1].Open {
		t.Errorf("last stay should be open: %+v", trace[1])
	}
	if none, err := eng.Trace("ghost"); err != nil || none != nil {
		t.Errorf("ghost trace: %v %v", none, err)
	}
}

func TestFacadeStorePersistence(t *testing.T) {
	script := `
CREATE RULE loc, location change rule
ON observation(r, o, t)
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
`
	eng1, err := New(Config{Rules: script})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng1.Ingest("dock1", "p1", sec(10))
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}
	var snap strings.Builder
	if err := eng1.SaveStore(&snap); err != nil {
		t.Fatal(err)
	}

	// New session resumes with the old history; a later move closes the
	// first period.
	eng2, err := New(Config{Rules: script, StoreSnapshot: strings.NewReader(snap.String())})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng2.Ingest("dock2", "p1", sec(50))
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := eng2.Query(`SELECT loc_id, tend FROM OBJECTLOCATION WHERE object_epc = 'p1' ORDER BY tstart`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].(string) != "dock1" || rows[1][1] != "UC" {
		t.Fatalf("resumed history: %v", rows)
	}
	// Corrupt snapshot is rejected.
	if _, err := New(Config{Rules: script, StoreSnapshot: strings.NewReader("junk")}); err == nil {
		t.Errorf("corrupt snapshot accepted")
	}
}

func TestFacadeFullCheckpoint(t *testing.T) {
	// An asset-monitoring window opens before the restart and must still
	// fire after it.
	script := `
DEFINE Laptop = observation('exit', o4, t4), type(o4) = 'laptop'
DEFINE Super  = observation('exit', o5, t5), type(o5) = 'superuser'
CREATE RULE r5, asset monitoring rule
ON WITHIN(Laptop AND NOT Super, 5sec)
IF true
DO INSERT INTO ALERTS VALUES ('asset', o4, t4)
`
	types := func(o string) string {
		if strings.HasPrefix(o, "laptop") {
			return "laptop"
		}
		return ""
	}
	eng1, err := New(Config{Rules: script, TypeOf: types})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.Ingest("exit", "laptop-1", sec(10)); err != nil {
		t.Fatal(err)
	}
	// Window [10,15] still pending; checkpoint now (no Close!).
	var snap strings.Builder
	if err := eng1.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}

	eng2, err := New(Config{
		Rules: script, TypeOf: types,
		Checkpoint: strings.NewReader(snap.String()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.AdvanceTo(sec(60)); err != nil {
		t.Fatal(err)
	}
	_, rows, err := eng2.Query(`SELECT object_epc FROM ALERTS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(string) != "laptop-1" {
		t.Fatalf("pending window lost across restart: %v", rows)
	}

	// Different rules refuse the checkpoint.
	_, err = New(Config{
		Rules:      `CREATE RULE other, o ON observation(r,o,t) IF true DO f()`,
		Checkpoint: strings.NewReader(snap.String()),
	})
	if err == nil {
		t.Fatalf("checkpoint restored onto different rules")
	}
	// Mutual exclusion with StoreSnapshot.
	_, err = New(Config{
		Rules:         script,
		Checkpoint:    strings.NewReader(snap.String()),
		StoreSnapshot: strings.NewReader("{}"),
	})
	if err == nil {
		t.Fatalf("Checkpoint + StoreSnapshot accepted")
	}
}

func TestFacadeRuleToggle(t *testing.T) {
	var fired []string
	eng, err := New(Config{
		Rules: `
CREATE RULE a, rule a ON observation('r1', o, t) IF true DO ping('a')
CREATE RULE b, rule b ON observation('r1', o, t) IF true DO ping('b')
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterProcedure("ping", func(_ ProcContext, args []any) error {
		fired = append(fired, args[0].(string))
		return nil
	})
	_ = eng.Ingest("r1", "x", sec(1))
	if !eng.SetRuleEnabled("b", false) {
		t.Fatalf("SetRuleEnabled(b) reported missing rule")
	}
	_ = eng.Ingest("r1", "y", sec(2))
	if !eng.SetRuleEnabled("b", true) {
		t.Fatal("re-enable failed")
	}
	_ = eng.Ingest("r1", "z", sec(3))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "a", "b"}
	if len(fired) != len(want) {
		t.Fatalf("fired: %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired: %v, want %v", fired, want)
		}
	}
	if eng.SetRuleEnabled("ghost", false) {
		t.Errorf("unknown rule toggled")
	}
}

func TestFacadeGroupsAndAdvance(t *testing.T) {
	eng, err := New(Config{
		Rules: `
CREATE RULE out, outfield
ON WITHIN(observation('shelf', o, t1); NOT observation('shelf', o, t2), 30sec)
IF true
DO INSERT INTO ALERTS VALUES ('outfield', o, t1)
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Ingest("shelf", "item1", sec(0))
	if err := eng.AdvanceTo(sec(100)); err != nil {
		t.Fatal(err)
	}
	_, rows, err := eng.Query(`SELECT object_epc FROM ALERTS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(string) != "item1" {
		t.Fatalf("outfield alert: %v", rows)
	}
}
