package rules

import (
	"rcep/internal/core/event"
	"rcep/internal/sqlmini"
)

// Rule plans (DESIGN.md §9): each bound rule's IF condition and DO list
// are lowered once at Bind time into sqlmini prepared forms, so a firing
// evaluates closures instead of re-walking the ASTs. The interpreted
// dispatch path stays alive behind Executor.Interpreted as the oracle;
// both paths share the same error-wrapping strings so even failure modes
// are byte-identical.
//
// Compilation never fails (sqlmini preparation reproduces interpreter
// errors as error closures), so Bind's behavior is unchanged — the
// FuzzCompileRule property: any rule that parses also compiles.

// rulePlan is the compiled form of one rule's condition and actions.
type rulePlan struct {
	cond    *sqlmini.PreparedExpr // nil means IF true
	actions []actionPlan
}

// actionPlan is one compiled DO-list entry. Exactly one of sql / proc is
// used, mirroring the Action variants.
type actionPlan struct {
	src  Action                // original action, for diagnostics
	sql  *sqlmini.PreparedStmt // SQLAction
	name string                // ProcAction: procedure name
	args []*sqlmini.PreparedExpr
}

// compileRule lowers one rule. The executor's Funcs map is captured by
// reference: functions registered after Bind (rcep.RegisterFunc) are
// visible at evaluation time, as with the interpreter.
func (x *Executor) compileRule(r *Rule) rulePlan {
	var pl rulePlan
	if r.Cond != nil {
		pl.cond = sqlmini.PrepareExpr(r.Cond, x.funcs)
	}
	for _, a := range r.Actions {
		ap := actionPlan{src: a}
		switch act := a.(type) {
		case *SQLAction:
			ap.sql = sqlmini.PrepareStmt(act.Stmt)
		case *ProcAction:
			ap.name = act.Name
			ap.args = make([]*sqlmini.PreparedExpr, len(act.Args))
			for i, ae := range act.Args {
				ap.args[i] = sqlmini.PrepareExpr(ae, x.funcs)
			}
		}
		pl.actions = append(pl.actions, ap)
	}
	return pl
}

// implicitBindings is withImplicitBindings for the compiled path: one
// exact-capacity allocation, merging the instance bindings with the three
// detection-span variables (already in sorted order: event_begin <
// event_end < event_interval) in a single pass. User variables win on
// collision, matching the interpreted builder.
func implicitBindings(inst *event.Instance) event.Bindings {
	imp := [3]event.Binding{
		{Var: "event_begin", Val: event.TimeValue(inst.Begin)},
		{Var: "event_end", Val: event.TimeValue(inst.End)},
		{Var: "event_interval", Val: event.DurationValue(inst.Interval())},
	}
	user := inst.Binds
	out := make(event.Bindings, 0, len(user)+len(imp))
	i, j := 0, 0
	for i < len(user) && j < len(imp) {
		switch {
		case user[i].Var < imp[j].Var:
			out = append(out, user[i])
			i++
		case user[i].Var > imp[j].Var:
			out = append(out, imp[j])
			j++
		default:
			out = append(out, user[i])
			i++
			j++
		}
	}
	out = append(out, user[i:]...)
	out = append(out, imp[j:]...)
	return out
}
