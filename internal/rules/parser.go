package rules

import (
	"fmt"
	"strings"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/lex"
	"rcep/internal/sqlmini"
)

// ParseScript parses a rule script: any number of DEFINE and CREATE RULE
// statements.
func ParseScript(src string) (*RuleSet, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	p := &parser{s: s, rs: &RuleSet{Defs: map[string]event.Expr{}}}
	for !s.AtEOF() {
		t := s.Peek()
		switch {
		case t.IsKeyword("define"):
			if err := p.parseDefine(); err != nil {
				return nil, err
			}
		case t.IsKeyword("create"):
			if err := p.parseRule(); err != nil {
				return nil, err
			}
		case t.Is(";"):
			s.Next()
		default:
			return nil, lex.Errorf(t, "expected DEFINE or CREATE RULE, found %s", t)
		}
	}
	return p.rs, nil
}

type parser struct {
	s  *lex.Stream
	rs *RuleSet
}

// parseDefine handles: DEFINE name = event_specification
func (p *parser) parseDefine() error {
	p.s.Next() // DEFINE
	name, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	if _, err := p.s.Expect("="); err != nil {
		return err
	}
	if _, dup := p.rs.Defs[name.Text]; dup {
		return lex.Errorf(name, "event %s already defined", name.Text)
	}
	e, err := p.parseEvent()
	if err != nil {
		return err
	}
	p.rs.Defs[name.Text] = e
	return nil
}

// parseRule handles:
//
//	CREATE RULE rule_id, rule_name ON event IF condition DO actions
func (p *parser) parseRule() error {
	p.s.Next() // CREATE
	if _, err := p.s.ExpectKeyword("rule"); err != nil {
		return err
	}
	id, err := p.s.ExpectIdent()
	if err != nil {
		return err
	}
	for _, r := range p.rs.Rules {
		if r.ID == id.Text {
			return lex.Errorf(id, "duplicate rule ID %s", id.Text)
		}
	}
	rule := &Rule{ID: id.Text}
	if p.s.Accept(",") {
		// The name is either a string literal or a run of identifiers up
		// to the ON keyword ("duplicate detection rule" in the paper is
		// unquoted).
		if p.s.Peek().Kind == lex.String {
			rule.Name = p.s.Next().Text
		} else {
			var words []string
			for {
				t := p.s.Peek()
				if t.IsKeyword("on") || (t.Kind != lex.Ident && t.Kind != lex.Number) {
					break
				}
				words = append(words, p.s.Next().Text)
			}
			rule.Name = strings.Join(words, " ")
		}
	}
	if rule.Name == "" {
		rule.Name = rule.ID
	}
	if _, err := p.s.ExpectKeyword("on"); err != nil {
		return err
	}
	rule.Event, err = p.parseEvent()
	if err != nil {
		return err
	}
	if _, err := p.s.ExpectKeyword("if"); err != nil {
		return err
	}
	cond, err := sqlmini.ParseExprStream(p.s)
	if err != nil {
		return err
	}
	if lit, ok := cond.(*sqlmini.Lit); !ok || !(lit.V.Kind() == event.KindBool && lit.V.Bool()) {
		rule.Cond = cond
	}
	if _, err := p.s.ExpectKeyword("do"); err != nil {
		return err
	}
	for {
		a, err := p.parseAction()
		if err != nil {
			return err
		}
		rule.Actions = append(rule.Actions, a)
		if !p.s.Accept(";") {
			break
		}
		// A trailing semicolon before the next statement or EOF is fine.
		t := p.s.Peek()
		if t.Kind == lex.EOF || t.IsKeyword("define") ||
			(t.IsKeyword("create") && p.s.PeekAt(1).IsKeyword("rule")) {
			break
		}
	}
	p.rs.Rules = append(p.rs.Rules, rule)
	return nil
}

// parseAction parses one DO entry: a mini-SQL statement or a user
// procedure call such as send_alarm(o4) or send_alarm.
func (p *parser) parseAction() (Action, error) {
	t := p.s.Peek()
	start := p.s.Pos()
	isSQL := t.IsKeyword("insert") || t.IsKeyword("bulk") || t.IsKeyword("update") ||
		t.IsKeyword("delete") || t.IsKeyword("select") ||
		(t.IsKeyword("create") && p.s.PeekAt(1).IsKeyword("table"))
	if isSQL {
		st, err := sqlmini.ParseStream(p.s)
		if err != nil {
			return nil, err
		}
		return &SQLAction{Stmt: st, Text: lex.JoinText(p.s.Slice(start, p.s.Pos()))}, nil
	}
	if t.Kind != lex.Ident {
		return nil, lex.Errorf(t, "expected an action (SQL statement or procedure call), found %s", t)
	}
	name := p.s.Next()
	act := &ProcAction{Name: name.Text}
	if p.s.Accept("(") {
		if !p.s.Peek().Is(")") {
			for {
				a, err := sqlmini.ParseExprStream(p.s)
				if err != nil {
					return nil, err
				}
				act.Args = append(act.Args, a)
				if !p.s.Accept(",") {
					break
				}
			}
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
	}
	act.Text = lex.JoinText(p.s.Slice(start, p.s.Pos()))
	return act, nil
}

// Event expression grammar (precedence low → high):
//
//	seq   := or (';' or)*                    -- infix sequence
//	or    := and ((OR|∨) and)*
//	and   := not ((AND|∧) not)*
//	not   := (NOT|¬|!) not | primary
//	prim  := '(' seq ')' | SEQ(...) | SEQ+(...) | TSEQ(...) | TSEQ+(...)
//	       | WITHIN(...) | observation(...) preds | alias
func (p *parser) parseEvent() (event.Expr, error) { return p.parseSeqInfix() }

func (p *parser) parseSeqInfix() (event.Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.s.Accept(";") {
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		l = &event.Seq{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseOr() (event.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.s.Peek().IsKeyword("or") || p.s.Peek().Is("∨") {
		p.s.Next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &event.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (event.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.s.Peek().IsKeyword("and") || p.s.Peek().Is("∧") {
		p.s.Next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &event.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (event.Expr, error) {
	t := p.s.Peek()
	if t.IsKeyword("not") || t.Is("¬") || t.Is("!") {
		p.s.Next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		n := &event.Not{X: x}
		// Postfix window: `NOT E WITHIN w` scopes the negation to its own
		// window anchored at the adjacent positive constituent. There is
		// no clash with the prefix form — WITHIN(E, w) is always followed
		// by '(', the postfix window always by a number.
		if p.s.Peek().IsKeyword("within") && p.s.PeekAt(1).Kind == lex.Number {
			wt := p.s.Next()
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			if d <= 0 {
				return nil, lex.Errorf(wt, "negation window must be positive")
			}
			n.Win = d
		}
		return n, nil
	}
	return p.parsePrimaryEvent()
}

// parsePrimaryEvent parses a base event expression followed by any number
// of `WHERE <guard>` suffixes. A guard binds to the tightest preceding
// event; it greedily consumes AND/OR, so a guarded constituent inside a
// conjunction needs parentheses: (a WHERE x > 1) AND b.
func (p *parser) parsePrimaryEvent() (event.Expr, error) {
	e, err := p.parseBasePrimary()
	if err != nil {
		return nil, err
	}
	for p.s.Peek().IsKeyword("where") {
		p.s.Next()
		g, err := p.parseGuard()
		if err != nil {
			return nil, err
		}
		e = &event.Guarded{X: e, Cond: g}
	}
	return e, nil
}

func (p *parser) parseBasePrimary() (event.Expr, error) {
	t := p.s.Peek()
	switch {
	case t.Is("("):
		p.s.Next()
		e, err := p.parseSeqInfix()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.IsKeyword("seq"):
		p.s.Next()
		plus := p.s.Accept("+")
		if _, err := p.s.Expect("("); err != nil {
			return nil, err
		}
		if plus {
			x, err := p.parseSeqInfix()
			if err != nil {
				return nil, err
			}
			if _, err := p.s.Expect(")"); err != nil {
				return nil, err
			}
			return &event.SeqPlus{X: x}, nil
		}
		l, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(";"); err != nil {
			return nil, err
		}
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return &event.Seq{L: l, R: r}, nil
	case t.IsKeyword("tseq"):
		p.s.Next()
		plus := p.s.Accept("+")
		if _, err := p.s.Expect("("); err != nil {
			return nil, err
		}
		if plus {
			x, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			lo, hi, err := p.parseTwoDurations()
			if err != nil {
				return nil, err
			}
			if _, err := p.s.Expect(")"); err != nil {
				return nil, err
			}
			return &event.TSeqPlus{X: x, Lo: lo, Hi: hi}, nil
		}
		l, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(";"); err != nil {
			return nil, err
		}
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		lo, hi, err := p.parseTwoDurations()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return &event.TSeq{L: l, R: r, Lo: lo, Hi: hi}, nil
	case t.IsKeyword("within"):
		p.s.Next()
		if _, err := p.s.Expect("("); err != nil {
			return nil, err
		}
		x, err := p.parseSeqInfix()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(","); err != nil {
			return nil, err
		}
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return &event.Within{X: x, Max: d}, nil
	case t.IsKeyword("all"), t.IsKeyword("any"):
		// Paper §2.2: ALL(E1, ..., En) ≡ E1 ∧ ... ∧ En. ANY is the OR
		// dual. Both desugar to left-nested binary constructors.
		isAll := t.IsKeyword("all")
		p.s.Next()
		if _, err := p.s.Expect("("); err != nil {
			return nil, err
		}
		var parts []event.Expr
		for {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if !p.s.Accept(",") {
				break
			}
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		if len(parts) < 2 {
			return nil, lex.Errorf(t, "%s needs at least two constituents", strings.ToUpper(t.Text))
		}
		out := parts[0]
		for _, e := range parts[1:] {
			if isAll {
				out = &event.And{L: out, R: e}
			} else {
				out = &event.Or{L: out, R: e}
			}
		}
		return out, nil
	case t.IsKeyword("observation"):
		return p.parseObservation()
	case t.Kind == lex.Ident:
		p.s.Next()
		e, ok := p.rs.Defs[t.Text]
		if !ok {
			return nil, lex.Errorf(t, "undefined event %s (missing DEFINE?)", t.Text)
		}
		return e, nil
	}
	return nil, lex.Errorf(t, "expected an event expression, found %s", t)
}

// parseObservation handles observation(r, o, t) followed by optional
// ", pred" attribute predicates such as type(o) = 'laptop'.
func (p *parser) parseObservation() (event.Expr, error) {
	p.s.Next() // observation
	if _, err := p.s.Expect("("); err != nil {
		return nil, err
	}
	reader, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.s.Expect(","); err != nil {
		return nil, err
	}
	object, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.s.Expect(","); err != nil {
		return nil, err
	}
	at, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.s.Expect(")"); err != nil {
		return nil, err
	}
	prim := &event.Prim{Reader: reader, Object: object, At: at}
	// Attribute predicates: only consume ", X" when X looks like a
	// predicate (fn(var) op ... or var op ...), since a comma may also
	// separate the enclosing constructor's arguments.
	for p.s.Peek().Is(",") && p.looksLikePred() {
		p.s.Next() // ','
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		prim.Preds = append(prim.Preds, *pred)
	}
	return prim, nil
}

// looksLikePred peeks past the comma for `ident ( ident ) cmp` or
// `ident cmp`.
func (p *parser) looksLikePred() bool {
	if p.s.PeekAt(1).Kind != lex.Ident {
		return false
	}
	isCmp := func(t lex.Token) bool {
		return t.Is("=") || t.Is("!=") || t.Is("<>") || t.Is("<") || t.Is("<=") || t.Is(">") || t.Is(">=")
	}
	if p.s.PeekAt(2).Is("(") {
		return p.s.PeekAt(3).Kind == lex.Ident && p.s.PeekAt(4).Is(")") && isCmp(p.s.PeekAt(5))
	}
	return isCmp(p.s.PeekAt(2))
}

func (p *parser) parsePred() (*event.Pred, error) {
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	pred := &event.Pred{}
	if p.s.Accept("(") {
		fn := strings.ToLower(name.Text)
		if fn != "group" && fn != "type" {
			return nil, lex.Errorf(name, "unknown event attribute function %s (want group or type)", name.Text)
		}
		pred.Fn = fn
		arg, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		pred.Arg = arg.Text
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
	} else {
		pred.Arg = name.Text
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	pred.Op = op
	v := p.s.Peek()
	switch v.Kind {
	case lex.String, lex.Number, lex.Ident:
		p.s.Next()
		pred.Val = v.Text
	default:
		return nil, lex.Errorf(v, "expected a predicate value, found %s", v)
	}
	return pred, nil
}

func (p *parser) parseCmpOp() (event.CmpOp, error) {
	t := p.s.Next()
	switch t.Text {
	case "=":
		return event.CmpEq, nil
	case "!=", "<>":
		return event.CmpNe, nil
	case "<":
		return event.CmpLt, nil
	case "<=":
		return event.CmpLe, nil
	case ">":
		return event.CmpGt, nil
	case ">=":
		return event.CmpGe, nil
	}
	return 0, lex.Errorf(t, "expected a comparison operator, found %s", t)
}

// parseTerm parses one observation argument: a quoted literal, a variable,
// or '_' for an anonymous (unconstrained, unbound) position.
func (p *parser) parseTerm() (event.Term, error) {
	t := p.s.Peek()
	switch {
	case t.Kind == lex.String:
		p.s.Next()
		return event.Term{Lit: t.Text}, nil
	case t.Kind == lex.Ident:
		p.s.Next()
		if t.Text == "_" {
			return event.Term{}, nil
		}
		return event.Term{Var: t.Text}, nil
	}
	return event.Term{}, lex.Errorf(t, "expected a variable or quoted literal, found %s", t)
}

// parseTwoDurations parses ", d1, d2" inside TSEQ/TSEQ+.
func (p *parser) parseTwoDurations() (time.Duration, time.Duration, error) {
	if _, err := p.s.Expect(","); err != nil {
		return 0, 0, err
	}
	lo, err := p.parseDuration()
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.s.Expect(","); err != nil {
		return 0, 0, err
	}
	hi, err := p.parseDuration()
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// parseDuration parses forms like 5sec, 0.1 sec, 10min, 100msec (the lexer
// splits the number from the unit).
func (p *parser) parseDuration() (time.Duration, error) {
	t := p.s.Peek()
	if t.Kind != lex.Number {
		return 0, lex.Errorf(t, "expected a duration, found %s", t)
	}
	p.s.Next()
	text := t.Text
	if u := p.s.Peek(); u.Kind == lex.Ident {
		p.s.Next()
		text += u.Text
	}
	d, err := event.ParseDuration(text)
	if err != nil {
		return 0, fmt.Errorf("line %d:%d: %v", t.Line, t.Col, err)
	}
	return d, nil
}
