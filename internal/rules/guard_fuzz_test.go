package rules

import "testing"

// FuzzParseRule pins the printer/parser contract on arbitrary input:
// whatever parses must format to text that reparses, and formatting is a
// fixed point — Format(Parse(Format(x))) == Format(x). The seeds cover
// the guarded-rule constructs (inequality predicates, aggregates over
// closure runs, window-scoped negation) alongside the original grammar.
func FuzzParseRule(f *testing.F) {
	seeds := append([]string{}, seedScripts...)
	seeds = append(seeds,
		`CREATE RULE g, n ON SEQ(observation('s', v1, t1) ; observation('s', v2, t2)) WHERE v2 > v1 + 5 IF true DO p(v1, v2)`,
		`CREATE RULE g, n ON WITHIN(TSEQ+(observation('s', v, t), 1sec, 10sec), 60sec) WHERE MAX(v) > 8 AND COUNT(v) >= 3 IF true DO INSERT INTO T VALUES (COUNT(v), AVG(v), MAX(v))`,
		`CREATE RULE g, n ON SEQ(observation('ck', b, t1) ; NOT observation('ld', b, t2) WITHIN 5min) IF true DO alarm(b)`,
		`CREATE RULE g, n ON SEQ(NOT observation('ck', b, _) WITHIN 10min ; observation('ld', b, t)) IF true DO alarm(b)`,
		`CREATE RULE g, n ON ALL(observation('a', x, t1), NOT observation('b', x, t2) WITHIN 30sec) IF true DO p(x)`,
		`CREATE RULE g, n ON observation(r, o, t) WHERE o > 100 OR (o < 5 AND NOT o = 3) IF true DO p(o)`,
		`CREATE RULE g, n ON SEQ+(observation('s', v, t)) WHERE SUM(v) >= 10 AND MIN(v) != 0 IF true DO p(t)`,
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := ParseScript(src)
		if err != nil {
			return
		}
		out := Format(rs)
		rs2, err := ParseScript(out)
		if err != nil {
			t.Fatalf("formatted text does not reparse: %v\n text: %s", err, out)
		}
		if out2 := Format(rs2); out != out2 {
			t.Fatalf("Format is not a fixed point:\n1: %s\n2: %s", out, out2)
		}
	})
}
