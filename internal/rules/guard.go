package rules

import (
	"strconv"
	"strings"

	"rcep/internal/core/event"
	"rcep/internal/lex"
)

// Guard expression grammar (the WHERE clause of an event expression):
//
//	guard := gor
//	gor   := gand (OR gand)*
//	gand  := gcmp (AND gcmp)*
//	gcmp  := gadd ((= | != | <> | < | <= | > | >=) gadd)?
//	gadd  := gmul ((+ | -) gmul)*
//	gmul  := gunary ((* | /) gunary)*
//	gunary:= NOT gunary | - gunary | gprim
//	gprim := '(' gor ')' | number [unit] | string
//	       | (COUNT|SUM|AVG|MIN|MAX) '(' ident ')' | ident
//
// A number followed by a recognized duration unit is a duration literal
// and evaluates to seconds (float), so `t2 - t1 < 30sec` works against
// timestamp bindings.

// guardReserved are keywords that may not be used as guard variables;
// hitting one as an operand means the guard expression ended early or the
// script is malformed, and a direct error beats a confusing downstream one.
var guardReserved = map[string]bool{
	"if": true, "do": true, "on": true, "where": true, "within": true,
	"create": true, "define": true, "rule": true, "and": true, "or": true,
	"not": true,
}

func (p *parser) parseGuard() (event.GExpr, error) { return p.parseGuardOr() }

func (p *parser) parseGuardOr() (event.GExpr, error) {
	l, err := p.parseGuardAnd()
	if err != nil {
		return nil, err
	}
	for p.s.AcceptKeyword("or") {
		r, err := p.parseGuardAnd()
		if err != nil {
			return nil, err
		}
		l = &event.GBin{Op: event.GuardOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseGuardAnd() (event.GExpr, error) {
	l, err := p.parseGuardCmp()
	if err != nil {
		return nil, err
	}
	for p.s.AcceptKeyword("and") {
		r, err := p.parseGuardCmp()
		if err != nil {
			return nil, err
		}
		l = &event.GBin{Op: event.GuardAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseGuardCmp() (event.GExpr, error) {
	l, err := p.parseGuardAdd()
	if err != nil {
		return nil, err
	}
	var op event.GuardOp
	t := p.s.Peek()
	switch {
	case t.Is("="):
		op = event.GuardEq
	case t.Is("!="), t.Is("<>"):
		op = event.GuardNe
	case t.Is("<"):
		op = event.GuardLt
	case t.Is("<="):
		op = event.GuardLe
	case t.Is(">"):
		op = event.GuardGt
	case t.Is(">="):
		op = event.GuardGe
	default:
		return l, nil
	}
	p.s.Next()
	r, err := p.parseGuardAdd()
	if err != nil {
		return nil, err
	}
	return &event.GBin{Op: op, L: l, R: r}, nil
}

func (p *parser) parseGuardAdd() (event.GExpr, error) {
	l, err := p.parseGuardMul()
	if err != nil {
		return nil, err
	}
	for {
		var op event.GuardOp
		switch {
		case p.s.Peek().Is("+"):
			op = event.GuardAdd
		case p.s.Peek().Is("-"):
			op = event.GuardSub
		default:
			return l, nil
		}
		p.s.Next()
		r, err := p.parseGuardMul()
		if err != nil {
			return nil, err
		}
		l = &event.GBin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseGuardMul() (event.GExpr, error) {
	l, err := p.parseGuardUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op event.GuardOp
		switch {
		case p.s.Peek().Is("*"):
			op = event.GuardMul
		case p.s.Peek().Is("/"):
			op = event.GuardDiv
		default:
			return l, nil
		}
		p.s.Next()
		r, err := p.parseGuardUnary()
		if err != nil {
			return nil, err
		}
		l = &event.GBin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseGuardUnary() (event.GExpr, error) {
	t := p.s.Peek()
	switch {
	case t.IsKeyword("not") || t.Is("!") || t.Is("¬"):
		p.s.Next()
		x, err := p.parseGuardUnary()
		if err != nil {
			return nil, err
		}
		return &event.GNot{X: x}, nil
	case t.Is("-"):
		p.s.Next()
		x, err := p.parseGuardUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into numeric literals so printing round-trips
		// ("-5" parses and prints as the literal -5).
		if lit, ok := x.(*event.GLit); ok {
			switch lit.V.Kind() {
			case event.KindInt:
				return &event.GLit{V: event.IntValue(-lit.V.Int())}, nil
			case event.KindFloat:
				return &event.GLit{V: event.FloatValue(-lit.V.Float())}, nil
			}
		}
		return &event.GNeg{X: x}, nil
	}
	return p.parseGuardPrim()
}

func (p *parser) parseGuardPrim() (event.GExpr, error) {
	t := p.s.Peek()
	switch t.Kind {
	case lex.Number:
		p.s.Next()
		// A trailing recognized unit makes this a duration literal in
		// seconds; otherwise the number stands alone.
		if u := p.s.Peek(); u.Kind == lex.Ident && !guardReserved[strings.ToLower(u.Text)] {
			if d, err := event.ParseDuration(t.Text + u.Text); err == nil {
				p.s.Next()
				return &event.GLit{V: event.FloatValue(d.Seconds())}, nil
			}
		}
		v := event.ParseScalar(t.Text)
		switch v.Kind() {
		case event.KindInt, event.KindFloat:
			return &event.GLit{V: v}, nil
		}
		// The lexer's Number set is wider than ParseScalar's; fall back
		// to an exact float parse before giving up.
		if f, err := strconv.ParseFloat(t.Text, 64); err == nil {
			return &event.GLit{V: event.FloatValue(f)}, nil
		}
		return nil, lex.Errorf(t, "malformed number %s in guard", t.Text)
	case lex.String:
		p.s.Next()
		return &event.GLit{V: event.StringValue(t.Text)}, nil
	case lex.Ident:
		if guardReserved[strings.ToLower(t.Text)] {
			return nil, lex.Errorf(t, "expected a guard operand, found %s", t.Text)
		}
		p.s.Next()
		if p.s.Peek().Is("(") {
			op, ok := event.AggOpNamed(t.Text)
			if !ok {
				return nil, lex.Errorf(t, "unknown guard function %s (want COUNT, SUM, AVG, MIN or MAX)", t.Text)
			}
			p.s.Next()
			arg, err := p.s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.s.Expect(")"); err != nil {
				return nil, err
			}
			return &event.GAgg{Op: op, Name: arg.Text}, nil
		}
		return &event.GVar{Name: t.Text}, nil
	}
	if t.Is("(") {
		p.s.Next()
		g, err := p.parseGuardOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.s.Expect(")"); err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, lex.Errorf(t, "expected a guard operand, found %s", t)
}
