package rules

import (
	"strings"
	"testing"

	"rcep/internal/sqlmini"
)

// TestFormatRoundTrip: parse → format → parse must be a fixed point
// (identical event strings, condition text, and action text).
func TestFormatRoundTrip(t *testing.T) {
	scripts := []string{
		paperRules,
		`
CREATE RULE q, complex conditions
ON WITHIN(ALL(observation('a', x, tx), observation('b', y, ty), observation('c', z, tz)), 10sec)
IF x != 'skip' AND (LENGTH(x) > 2 OR x IN ('p', 'q')) AND NOT EXISTS (SELECT * FROM ALERTS WHERE object_epc = x)
DO INSERT INTO ALERTS (rule_name, object_epc, at) VALUES ('q', x, tx);
   DELETE FROM INVENTORY WHERE object_epc = x AND tstart < tx;
   notify(x, LENGTH(x) + 1)
`,
		`
CREATE RULE s, sequences
ON TSEQ(TSEQ+(observation('r1', o1, t1), 0.1sec, 1sec); observation('r2', o2, t2), 10sec, 20sec)
IF event_interval < 100
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`,
	}
	for _, src := range scripts {
		rs1, err := ParseScript(src)
		if err != nil {
			t.Fatalf("parse original: %v", err)
		}
		formatted := Format(rs1)
		rs2, err := ParseScript(formatted)
		if err != nil {
			t.Fatalf("formatted script does not parse: %v\n%s", err, formatted)
		}
		if len(rs2.Rules) != len(rs1.Rules) {
			t.Fatalf("rule count drift: %d vs %d", len(rs2.Rules), len(rs1.Rules))
		}
		// Fixed point: formatting again yields identical text.
		if again := Format(rs2); again != formatted {
			t.Fatalf("format not a fixed point:\nfirst:\n%s\nsecond:\n%s", formatted, again)
		}
		for i := range rs1.Rules {
			a, b := rs1.Rules[i], rs2.Rules[i]
			if a.Event.String() != b.Event.String() {
				t.Errorf("rule %s event drift:\n%s\n%s", a.ID, a.Event, b.Event)
			}
			if (a.Cond == nil) != (b.Cond == nil) {
				t.Errorf("rule %s condition presence drift", a.ID)
			}
			if a.Cond != nil && sqlmini.FormatExpr(a.Cond) != sqlmini.FormatExpr(b.Cond) {
				t.Errorf("rule %s condition drift", a.ID)
			}
			if len(a.Actions) != len(b.Actions) {
				t.Errorf("rule %s action count drift", a.ID)
			}
		}
	}
}

func TestFormatContainsCanonicalPieces(t *testing.T) {
	rs := mustParse(t, paperRules)
	out := Format(rs)
	for _, frag := range []string{
		"CREATE RULE r1, 'duplicate detection rule'",
		"WITHIN(",
		"TSEQ(TSEQ+(",
		"BULK INSERT INTO OBJECTCONTAINMENT",
		"IF true",
		"send_alarm(o4)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted output missing %q:\n%s", frag, out)
		}
	}
}
