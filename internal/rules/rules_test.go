package rules

import (
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func mustParse(t *testing.T, src string) *RuleSet {
	t.Helper()
	rs, err := ParseScript(src)
	if err != nil {
		t.Fatalf("ParseScript: %v\nsource:\n%s", err, src)
	}
	return rs
}

// The paper's five rules, verbatim modulo ASCII syntax.
const paperRules = `
-- Rule 1: duplicate detection
CREATE RULE r1, duplicate detection rule
ON WITHIN(observation(r, o, t1); observation(r, o, t2), 5sec)
IF true
DO send_duplicate_msg(r, o, t1)

-- Rule 2: infield filtering
CREATE RULE r2, infield filtering
ON WITHIN(NOT observation(r, o, t1); observation(r, o, t2), 30sec)
IF true
DO INSERT INTO OBSERVATION VALUES (r, o, t2)

-- Rule 3: location change
CREATE RULE r3, location change rule
ON observation(r, o, t)
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')

-- Rule 4: containment aggregation
DEFINE E1 = observation('r1', o1, t1)
DEFINE E2 = observation('r2', o2, t2)
CREATE RULE r4, containment rule
ON TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')

-- Rule 5: asset monitoring
DEFINE E4 = observation('r4', o4, t4), type(o4) = 'laptop'
DEFINE E5 = observation('r4', o5, t5), type(o5) = 'superuser'
CREATE RULE r5, asset monitoring rule
ON WITHIN(E4 AND NOT E5, 5sec)
IF true
DO send_alarm(o4)
`

func TestParsePaperRules(t *testing.T) {
	rs := mustParse(t, paperRules)
	if len(rs.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rs.Rules))
	}
	if len(rs.Defs) != 4 {
		t.Fatalf("parsed %d defines, want 4", len(rs.Defs))
	}

	r1, _ := rs.Rule("r1")
	if r1.Name != "duplicate detection rule" {
		t.Errorf("r1 name: %q", r1.Name)
	}
	w, ok := r1.Event.(*event.Within)
	if !ok || w.Max != 5*time.Second {
		t.Fatalf("r1 event: %v", r1.Event)
	}
	if _, ok := w.X.(*event.Seq); !ok {
		t.Errorf("r1 inner: %T", w.X)
	}
	if len(r1.Actions) != 1 {
		t.Fatalf("r1 actions: %d", len(r1.Actions))
	}
	if p, ok := r1.Actions[0].(*ProcAction); !ok || p.Name != "send_duplicate_msg" || len(p.Args) != 3 {
		t.Errorf("r1 action: %v", r1.Actions[0])
	}

	r3, _ := rs.Rule("r3")
	if len(r3.Actions) != 2 {
		t.Fatalf("r3 actions: %d", len(r3.Actions))
	}
	if _, ok := r3.Actions[0].(*SQLAction); !ok {
		t.Errorf("r3 action 0: %T", r3.Actions[0])
	}

	r4, _ := rs.Rule("r4")
	tseq, ok := r4.Event.(*event.TSeq)
	if !ok || tseq.Lo != 10*time.Second || tseq.Hi != 20*time.Second {
		t.Fatalf("r4 event: %v", r4.Event)
	}
	tsp, ok := tseq.L.(*event.TSeqPlus)
	if !ok || tsp.Lo != 100*time.Millisecond || tsp.Hi != time.Second {
		t.Fatalf("r4 initiator: %v", tseq.L)
	}
	if a, ok := r4.Actions[0].(*SQLAction); !ok {
		t.Errorf("r4 action: %T", r4.Actions[0])
	} else if ins, ok := a.Stmt.(*sqlmini.Insert); !ok || !ins.Bulk {
		t.Errorf("r4 should be a BULK INSERT: %v", a.Stmt)
	}

	r5, _ := rs.Rule("r5")
	w5, ok := r5.Event.(*event.Within)
	if !ok {
		t.Fatalf("r5 event: %T", r5.Event)
	}
	and, ok := w5.X.(*event.And)
	if !ok {
		t.Fatalf("r5 inner: %T", w5.X)
	}
	if _, ok := and.R.(*event.Not); !ok {
		t.Errorf("r5 right conjunct should be NOT: %T", and.R)
	}
	prim, ok := and.L.(*event.Prim)
	if !ok || len(prim.Preds) != 1 || prim.Preds[0].Fn != "type" || prim.Preds[0].Val != "laptop" {
		t.Errorf("r5 laptop pattern: %v", and.L)
	}
}

func TestParseUnicodeOperators(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE u1, unicode
ON WITHIN(observation('r4', o4, t4) ∧ ¬observation('r4', o5, t5), 5sec)
IF true
DO noop()
`)
	w := rs.Rules[0].Event.(*event.Within)
	and, ok := w.X.(*event.And)
	if !ok {
		t.Fatalf("unicode AND not parsed: %T", w.X)
	}
	if _, ok := and.R.(*event.Not); !ok {
		t.Errorf("unicode NOT not parsed: %T", and.R)
	}
}

func TestParseAllAnySugar(t *testing.T) {
	// Paper §2.2: ALL(E1, ..., En) ≡ E1 ∧ ... ∧ En; ANY is the OR dual.
	rs := mustParse(t, `
CREATE RULE a1, all sugar
ON WITHIN(ALL(observation('r1', o1, t1), observation('r2', o2, t2), observation('r3', o3, t3)), 10sec)
IF true
DO noop()

CREATE RULE a2, any sugar
ON ANY(observation('r1', o, t), observation('r2', o, t))
IF true
DO noop()
`)
	w := rs.Rules[0].Event.(*event.Within)
	outer, ok := w.X.(*event.And)
	if !ok {
		t.Fatalf("ALL should desugar to AND: %T", w.X)
	}
	if _, ok := outer.L.(*event.And); !ok {
		t.Errorf("ALL of 3 should nest: %T", outer.L)
	}
	if _, ok := rs.Rules[1].Event.(*event.Or); !ok {
		t.Errorf("ANY should desugar to OR: %T", rs.Rules[1].Event)
	}
	// Single-constituent ALL is rejected.
	if _, err := ParseScript(`CREATE RULE b, bad ON ALL(observation(r,o,t)) IF true DO noop()`); err == nil {
		t.Errorf("single-arm ALL accepted")
	}
}

func TestParseGroupPredicate(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE g1, grouped
ON observation(r, o, t), group(r) = 'g1', type(o) = 'case'
IF true
DO noop()
`)
	p := rs.Rules[0].Event.(*event.Prim)
	if len(p.Preds) != 2 || p.Preds[0].Fn != "group" || p.Preds[1].Fn != "type" {
		t.Fatalf("preds: %v", p.Preds)
	}
}

func TestPredicateVsConstructorCommaAmbiguity(t *testing.T) {
	// The observation's trailing comma inside TSEQ must be read as the
	// constructor's duration separator, not a predicate.
	rs := mustParse(t, `
CREATE RULE a1, ambiguous
ON TSEQ(observation('r1', o1, t1); observation('r2', o2, t2), 10sec, 20sec)
IF true
DO noop()
`)
	tseq, ok := rs.Rules[0].Event.(*event.TSeq)
	if !ok {
		t.Fatalf("event: %T", rs.Rules[0].Event)
	}
	if tseq.Lo != 10*time.Second || tseq.Hi != 20*time.Second {
		t.Errorf("bounds: %v %v", tseq.Lo, tseq.Hi)
	}
	if p := tseq.R.(*event.Prim); len(p.Preds) != 0 {
		t.Errorf("spurious predicates: %v", p.Preds)
	}
}

func TestParseAnonymousTerm(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE an1, anon
ON observation('r1', _, _)
IF true
DO noop()
`)
	p := rs.Rules[0].Event.(*event.Prim)
	if p.Object.IsVar() || p.Object.Lit != "" {
		t.Errorf("anonymous object: %+v", p.Object)
	}
}

func TestParseConditions(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE c1, with condition
ON observation(r, o, t)
IF o != 'skip' AND is_hot(o)
DO noop()

CREATE RULE c2, trivially true
ON observation(r, o, t)
IF true
DO noop()
`)
	if rs.Rules[0].Cond == nil {
		t.Errorf("c1 should keep its condition")
	}
	if rs.Rules[1].Cond != nil {
		t.Errorf("IF true should compile to a nil condition")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no-on":          `CREATE RULE x, name IF true DO a()`,
		"undefined-ref":  `CREATE RULE x, n ON NoSuchEvent IF true DO a()`,
		"bad-fn":         `CREATE RULE x, n ON observation(r,o,t), size(o) = '3' IF true DO a()`,
		"dup-rule":       `CREATE RULE x, n ON observation(r,o,t) IF true DO a() CREATE RULE x, n2 ON observation(r,o,t) IF true DO a()`,
		"dup-define":     `DEFINE E1 = observation(r,o,t) DEFINE E1 = observation(r,o,t2)`,
		"bad-duration":   `CREATE RULE x, n ON WITHIN(observation(r,o,t), 5parsec) IF true DO a()`,
		"missing-do":     `CREATE RULE x, n ON observation(r,o,t) IF true`,
		"invalid-event":  `CREATE RULE x, n ON NOT observation(r,o,t) IF true DO a()` + "\ngarbage",
		"stray-token":    `DEFINE E1 = observation(r,o,t) )`,
		"number-as-term": `CREATE RULE x, n ON observation(123, o, t) IF true DO a()`,
	}
	for name, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("%s: ParseScript should fail:\n%s", name, src)
		}
	}
}

func TestExecutorDispatch(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE loc, location change rule
ON observation(r, o, t)
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
`)
	st := store.OpenRFID()
	x := NewExecutor(rs, st, nil, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	inst := &event.Instance{Begin: ts(1), End: ts(1), Binds: event.MakeBindings(map[string]event.Value{
		"r": event.StringValue("dock1"),
		"o": event.StringValue("pallet9"),
		"t": event.TimeValue(ts(1)),
	})}
	x.Dispatch(0, inst)
	inst2 := &event.Instance{Begin: ts(5), End: ts(5), Binds: event.MakeBindings(map[string]event.Value{
		"r": event.StringValue("dock2"),
		"o": event.StringValue("pallet9"),
		"t": event.TimeValue(ts(5)),
	})}
	x.Dispatch(0, inst2)
	if errs := x.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if got := len(x.Firings()); got != 2 {
		t.Fatalf("firings: %d", got)
	}
	if loc, ok := store.LocationAt(st, "pallet9", ts(3)); !ok || loc != "dock1" {
		t.Errorf("location at 3s: %v %v", loc, ok)
	}
	if loc, ok := store.LocationAt(st, "pallet9", ts(7)); !ok || loc != "dock2" {
		t.Errorf("location at 7s: %v %v", loc, ok)
	}
}

func TestExecutorConditionsAndFuncs(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE hot, hot items only
ON observation(r, o, t)
IF is_hot(o)
DO log_item(o)
`)
	var logged []string
	procs := Procs{
		"log_item": func(_ ActionContext, args []event.Value) error {
			logged = append(logged, args[0].Str())
			return nil
		},
	}
	funcs := sqlmini.Funcs{
		"is_hot": func(args []event.Value) (event.Value, error) {
			return event.BoolValue(strings.HasPrefix(args[0].Str(), "HOT")), nil
		},
	}
	x := NewExecutor(rs, nil, procs, funcs)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	fire := func(o string) {
		x.Dispatch(0, &event.Instance{Binds: event.MakeBindings(map[string]event.Value{"o": event.StringValue(o)})})
	}
	fire("HOT-1")
	fire("cold-2")
	fire("HOT-3")
	if len(logged) != 2 || logged[0] != "HOT-1" || logged[1] != "HOT-3" {
		t.Fatalf("logged: %v", logged)
	}
	if len(x.Errors()) != 0 {
		t.Fatalf("errors: %v", x.Errors())
	}
}

func TestExecutorErrorHandling(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE bad, bad actions
ON observation(r, o, t)
IF true
DO no_such_proc(o); INSERT INTO NOSUCHTABLE VALUES (o)
`)
	x := NewExecutor(rs, store.New(), nil, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	x.Dispatch(0, &event.Instance{Binds: event.MakeBindings(map[string]event.Value{"o": event.StringValue("x")})})
	errs := x.Errors()
	if len(errs) != 2 {
		t.Fatalf("want 2 errors (both actions fail independently), got %v", errs)
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "rule bad") {
			t.Errorf("error lacks rule context: %v", e)
		}
	}
}

func TestImplicitEventBindings(t *testing.T) {
	// Rules can reference the detection span: event_begin, event_end
	// (timestamps) and event_interval (seconds).
	rs := mustParse(t, `
CREATE RULE span, long events only
ON observation(r, o, t)
IF event_interval >= 0
DO record(event_begin, event_end, event_interval)
`)
	var got []event.Value
	x := NewExecutor(rs, nil, Procs{
		"record": func(_ ActionContext, args []event.Value) error {
			got = args
			return nil
		},
	}, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	x.Dispatch(0, &event.Instance{Begin: ts(2), End: ts(5), Binds: event.MakeBindings(map[string]event.Value{"o": event.StringValue("x")})})
	if len(x.Errors()) != 0 {
		t.Fatalf("errors: %v", x.Errors())
	}
	if len(got) != 3 || got[0].Time() != ts(2) || got[1].Time() != ts(5) || got[2].Float() != 3 {
		t.Fatalf("implicit bindings: %v", got)
	}
	// User variables shadow the implicit names.
	rs2 := mustParse(t, `
CREATE RULE shadow, shadowing
ON observation(r, event_begin, t)
IF true
DO record(event_begin)
`)
	var got2 []event.Value
	x2 := NewExecutor(rs2, nil, Procs{
		"record": func(_ ActionContext, args []event.Value) error {
			got2 = args
			return nil
		},
	}, nil)
	b2 := graph.NewBuilder()
	if err := x2.Bind(b2); err != nil {
		t.Fatal(err)
	}
	x2.Dispatch(0, &event.Instance{Begin: ts(2), End: ts(2),
		Binds: event.MakeBindings(map[string]event.Value{"event_begin": event.StringValue("obj-7")})})
	if len(got2) != 1 || got2[0].Str() != "obj-7" {
		t.Fatalf("shadowing: %v", got2)
	}
}

func TestExecutorBindInvalidRule(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE inv, invalid
ON SEQ+(observation(r, o, t))
IF true
DO noop()
`)
	x := NewExecutor(rs, nil, nil, nil)
	b := graph.NewBuilder()
	err := x.Bind(b)
	if err == nil {
		t.Fatalf("binding an invalid (pull) rule must fail")
	}
	if !strings.Contains(err.Error(), "rule inv") {
		t.Errorf("error lacks rule ID: %v", err)
	}
}

func TestExistsConditionAgainstStore(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE gated, gated by store
ON observation(r, o, t)
IF EXISTS (SELECT * FROM OBJECTLOCATION WHERE object_epc = o)
DO mark(o)
`)
	st := store.OpenRFID()
	loc, _ := st.Table(store.TableLocation)
	_ = loc.Insert([]event.Value{
		event.StringValue("known"), event.StringValue("w1"), event.TimeValue(0), event.TimeValue(store.UC),
	})
	var marked []string
	x := NewExecutor(rs, st, Procs{
		"mark": func(_ ActionContext, args []event.Value) error {
			marked = append(marked, args[0].Str())
			return nil
		},
	}, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	x.Dispatch(0, &event.Instance{Binds: event.MakeBindings(map[string]event.Value{"o": event.StringValue("known")})})
	x.Dispatch(0, &event.Instance{Binds: event.MakeBindings(map[string]event.Value{"o": event.StringValue("unknown")})})
	if len(marked) != 1 || marked[0] != "known" {
		t.Fatalf("marked: %v", marked)
	}
}

func TestActionTextRoundTrip(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE r, txt
ON observation(r, o, t)
IF true
DO INSERT INTO OBSERVATION VALUES (r, o, t); send_alarm(o)
`)
	a0 := rs.Rules[0].Actions[0].String()
	if !strings.Contains(a0, "INSERT INTO OBSERVATION") {
		t.Errorf("action text: %q", a0)
	}
	a1 := rs.Rules[0].Actions[1].String()
	if !strings.Contains(a1, "send_alarm") {
		t.Errorf("proc text: %q", a1)
	}
}

func TestRuleString(t *testing.T) {
	rs := mustParse(t, `
CREATE RULE r9, pretty
ON observation('r1', o, t)
IF true
DO noop()
`)
	s := rs.Rules[0].String()
	for _, frag := range []string{"r9", "pretty", "observation"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rule string %q missing %q", s, frag)
		}
	}
}
