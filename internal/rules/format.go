package rules

import (
	"strings"

	"rcep/internal/sqlmini"
)

// Format renders a rule set back into canonical script text. The output
// re-parses to an equivalent rule set (round-trip tested): event
// expressions print through their paper-syntax Stringers, conditions and
// SQL actions through the mini-SQL formatter. DEFINE aliases are not
// reconstructed (they were expanded at parse time), so the output is the
// fully expanded form.
func Format(rs *RuleSet) string {
	var sb strings.Builder
	for i, r := range rs.Rules {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString("CREATE RULE " + r.ID + ", '" + strings.ReplaceAll(r.Name, "'", "''") + "'\n")
		sb.WriteString("ON " + r.Event.String() + "\n")
		if r.Cond == nil {
			sb.WriteString("IF true\n")
		} else {
			sb.WriteString("IF " + sqlmini.FormatExpr(r.Cond) + "\n")
		}
		sb.WriteString("DO ")
		for j, a := range r.Actions {
			if j > 0 {
				sb.WriteString(";\n   ")
			}
			switch act := a.(type) {
			case *SQLAction:
				sb.WriteString(sqlmini.FormatStmt(act.Stmt))
			case *ProcAction:
				sb.WriteString(act.Name + "(")
				for k, arg := range act.Args {
					if k > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(sqlmini.FormatExpr(arg))
				}
				sb.WriteString(")")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
