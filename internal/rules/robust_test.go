package rules

import (
	"math/rand"
	"strings"
	"testing"
)

// Pseudo-fuzz: the parser must never panic, whatever garbage it gets. We
// mutate valid scripts (truncation, splicing, token deletion, character
// flips) and require graceful errors or success — nothing else.

var seedScripts = []string{
	paperRules,
	`DEFINE E = observation('r', o, t) CREATE RULE x, n ON E IF true DO f(o)`,
	`CREATE RULE q, n ON WITHIN(ALL(observation(a,b,c), observation(d,e,f)), 5sec) IF x > 1 AND EXISTS (SELECT * FROM T WHERE k = b) DO INSERT INTO T VALUES (b)`,
	`CREATE RULE w, n ON SEQ(observation('s', v1, t1) ; observation('s', v2, t2)) WHERE v2 > v1 + 5 IF true DO p(v1, v2)`,
	`CREATE RULE x, n ON WITHIN(TSEQ+(observation('s', v, t), 1sec, 10sec), 60sec) WHERE MAX(v) > 8 AND COUNT(v) >= 3 IF true DO INSERT INTO T VALUES (COUNT(v), MAX(v))`,
	`CREATE RULE y, n ON SEQ(observation('ck', b, t1) ; NOT observation('ld', b, t2) WITHIN 5min) IF true DO p(b)`,
}

func TestParserNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(20060329)) // EDBT'06 deadline-ish seed
	mutations := 0
	for _, seed := range seedScripts {
		for i := 0; i < 400; i++ {
			s := mutate(rng, seed)
			mutations++
			_, _ = ParseScript(s) // error or not — just no panic
		}
	}
	if mutations == 0 {
		t.Fatal("no mutations exercised")
	}
}

func mutate(rng *rand.Rand, s string) string {
	b := []byte(s)
	switch rng.Intn(5) {
	case 0: // truncate
		if len(b) > 0 {
			b = b[:rng.Intn(len(b))]
		}
	case 1: // delete a span
		if len(b) > 2 {
			i := rng.Intn(len(b) - 1)
			j := i + 1 + rng.Intn(len(b)-i-1)
			b = append(b[:i], b[j:]...)
		}
	case 2: // flip characters
		for k := 0; k < 3 && len(b) > 0; k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(96) + 32)
		}
	case 3: // duplicate a span
		if len(b) > 2 {
			i := rng.Intn(len(b) - 1)
			j := i + 1 + rng.Intn(len(b)-i-1)
			b = append(b[:j:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
		}
	case 4: // splice in noise tokens
		noise := []string{"(", ")", ";", ",", "SEQ", "TSEQ+", "WITHIN", "''", "0.1sec", "¬", "∧"}
		i := rng.Intn(len(b) + 1)
		n := noise[rng.Intn(len(noise))]
		b = append(b[:i:i], append([]byte(" "+n+" "), b[i:]...)...)
	}
	return string(b)
}

func TestParserHandlesDeeplyNestedInput(t *testing.T) {
	// Deep nesting must not blow the stack at sane depths.
	depth := 200
	src := "CREATE RULE d, deep ON " +
		strings.Repeat("WITHIN(", depth) +
		"observation(r, o, t)" +
		strings.Repeat(", 5sec)", depth) +
		" IF true DO f()"
	if _, err := ParseScript(src); err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
}
