// Package rules implements the paper's declarative RFID rule language (§3):
//
//	DEFINE event_name = event_specification
//	CREATE RULE rule_id, rule_name
//	ON event
//	IF condition
//	DO action1; action2; ...; actionN
//
// Events are complex event expressions over observation(r, o, t) patterns
// with group()/type() predicates and the constructors OR/∨, AND/∧, NOT/¬,
// SEQ (infix ';'), TSEQ, SEQ+, TSEQ+ and WITHIN. Conditions are boolean
// combinations of comparisons, user-defined functions and EXISTS(SELECT)
// queries; actions are mini-SQL statements (including BULK INSERT) or
// user-defined procedure calls.
package rules

import (
	"fmt"
	"strings"

	"rcep/internal/core/event"
	"rcep/internal/sqlmini"
)

// Rule is one parsed CREATE RULE statement.
type Rule struct {
	ID      string // e.g. "r4"
	Name    string // e.g. "containment rule"
	Event   event.Expr
	Cond    sqlmini.Expr // nil means IF true
	Actions []Action
}

// String renders a compact summary.
func (r *Rule) String() string {
	return fmt.Sprintf("RULE %s (%s) ON %s [%d action(s)]", r.ID, r.Name, r.Event, len(r.Actions))
}

// Action is one entry of a rule's DO list.
type Action interface {
	fmt.Stringer
	isAction()
}

// SQLAction executes a mini-SQL statement with the event bindings as named
// parameters.
type SQLAction struct {
	Stmt sqlmini.Stmt
	Text string // original source, for diagnostics
}

func (*SQLAction) isAction() {}

// String implements fmt.Stringer.
func (a *SQLAction) String() string { return strings.TrimSpace(a.Text) }

// ProcAction invokes a registered user procedure, e.g. send_alarm(o4).
type ProcAction struct {
	Name string
	Args []sqlmini.Expr
	Text string
}

func (*ProcAction) isAction() {}

// String implements fmt.Stringer.
func (a *ProcAction) String() string { return strings.TrimSpace(a.Text) }

// RuleSet is a parsed script: named event definitions plus rules, in
// source order.
type RuleSet struct {
	Defs  map[string]event.Expr // DEFINE aliases
	Rules []*Rule
}

// Rule returns the rule with the given ID.
func (rs *RuleSet) Rule(id string) (*Rule, bool) {
	for _, r := range rs.Rules {
		if r.ID == id {
			return r, true
		}
	}
	return nil, false
}
