package rules

import "testing"

// FuzzParseScript: no input may panic the rule parser. The seed corpus
// covers every construct; `go test -fuzz FuzzParseScript` explores
// further.
func FuzzParseScript(f *testing.F) {
	seeds := append([]string{}, seedScripts...)
	seeds = append(seeds,
		`DEFINE E = observation('r', _, _)`,
		`CREATE RULE a, n ON ALL(observation(a,b,c), observation(d,e,f), observation(g,h,i)) IF true DO p()`,
		`CREATE RULE a, n ON WITHIN(E1 ; E2 ; E3, 5sec) IF x IN (SELECT k FROM t) DO UPDATE t SET a = 1`,
		`CREATE RULE a, n ON TSEQ+(observation(r,o,t), 1sec, 0.5sec) IF true DO p()`, // bad bounds
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := ParseScript(src)
		if err != nil {
			return
		}
		// A successful parse yields internally consistent rules.
		for _, r := range rs.Rules {
			if r.ID == "" {
				t.Fatalf("parsed rule without ID: %+v", r)
			}
			if r.Event == nil {
				t.Fatalf("parsed rule without event: %+v", r)
			}
		}
	})
}
