package rules

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
)

// fuzzBindings derives a deterministic binding set from fuzz data: comma
// fields bound to the variable names the seed scripts actually use.
func fuzzBindings(data string) event.Bindings {
	names := []string{"a", "b", "c", "o", "r", "t", "x", "k"}
	var binds event.Bindings
	for i, part := range strings.Split(data, ",") {
		if i >= len(names) {
			break
		}
		binds = binds.Set(names[i], event.ParseScalar(part))
	}
	return binds
}

// fuzzStore builds one small deterministic store so EXISTS/IN and action
// statements execute for real on both evaluation paths.
func fuzzStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if err := s.CreateTable("T", store.Schema{
		{Name: "k", Type: event.KindString},
		{Name: "n", Type: event.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "tag"} {
		if err := tbl.Insert([]event.Value{event.StringValue(k), event.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func dumpStore(s *store.Store) string {
	var sb strings.Builder
	for _, name := range s.Tables() {
		tbl, err := s.Table(name)
		if err != nil {
			continue
		}
		sb.WriteString(name)
		sb.WriteByte('\n')
		tbl.Scan(func(id int64, r store.Row) bool {
			fmt.Fprintf(&sb, "%d:", id)
			for _, v := range r {
				sb.WriteString(v.String())
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
			return true
		})
	}
	return sb.String()
}

func sameErr(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// FuzzCompileRule pins the two plan-compilation properties from
// DESIGN.md §9: any rule that parses must compile, and compiled
// evaluation must agree with interpreted evaluation — values, store
// effects and error strings — on arbitrary inputs.
func FuzzCompileRule(f *testing.F) {
	for _, s := range seedScripts {
		f.Add(s, "x,1,2.5")
	}
	f.Add(`CREATE RULE a, n ON observation(r, o, t)
		IF upper(o) = 'X' OR k IN (SELECT k FROM T WHERE n >= 1)
		DO INSERT INTO T VALUES (o, 9); p(o, t)`, "tag,3")
	f.Add(`CREATE RULE a, n ON observation(r, o, t) IF f(x) + 1 > 2 AND x IS NOT NULL DO UPDATE T SET n = n + 1 WHERE k = o`, "1,2,3,tag")
	f.Add(`CREATE RULE a, n ON observation(r, o, t) IF o LIKE 'ta%' AND NOT EXISTS (SELECT * FROM missing) DO DELETE FROM T WHERE n < 0`, "u")
	f.Fuzz(func(t *testing.T, src, data string) {
		rs, err := ParseScript(src)
		if err != nil {
			return
		}
		funcs := sqlmini.Funcs{"f": func(args []event.Value) (event.Value, error) {
			if len(args) == 0 {
				return event.IntValue(0), nil
			}
			return args[0], nil
		}}
		binds := fuzzBindings(data)
		st := fuzzStore(t)
		stA, stB := fuzzStore(t), fuzzStore(t)
		for _, r := range rs.Rules {
			// Property 1: every parsed rule compiles without panicking.
			x := &Executor{funcs: funcs}
			_ = x.compileRule(r)

			// Property 2a: condition equivalence.
			if r.Cond != nil {
				prep := sqlmini.PrepareExpr(r.Cond, funcs)
				gv, ge := prep.Eval(st, binds)
				wv, we := sqlmini.EvalExpr(st, r.Cond, binds, funcs)
				if !sameErr(ge, we) {
					t.Fatalf("condition %v: compiled err %v, interpreted err %v", r.Cond, ge, we)
				}
				if ge == nil && (gv.Kind() != wv.Kind() || !gv.Equal(wv)) {
					t.Fatalf("condition %v: compiled %v (%v), interpreted %v (%v)", r.Cond, gv, gv.Kind(), wv, wv.Kind())
				}
			}

			// Property 2b: SQL action equivalence, effects included.
			for _, a := range r.Actions {
				sa, ok := a.(*SQLAction)
				if !ok {
					continue
				}
				prep := sqlmini.PrepareStmt(sa.Stmt)
				gr, ge := prep.Exec(stA, binds)
				wr, we := sqlmini.ExecStmt(stB, sa.Stmt, binds)
				if !sameErr(ge, we) {
					t.Fatalf("action %q: compiled err %v, interpreted err %v", sa, ge, we)
				}
				if ge == nil && gr.RowsAffected != wr.RowsAffected {
					t.Fatalf("action %q: compiled affected %d, interpreted %d", sa, gr.RowsAffected, wr.RowsAffected)
				}
			}
		}
		if a, b := dumpStore(stA), dumpStore(stB); a != b {
			t.Fatalf("store divergence after actions:\ncompiled:\n%s\ninterpreted:\n%s", a, b)
		}
	})
}

// TestExecutorCompiledMatchesInterpreted drives full Dispatch — implicit
// bindings, condition, firing log, SQL and procedure actions, error
// wrapping — through both executor paths and requires identical firings,
// identical error strings and identical store contents.
func TestExecutorCompiledMatchesInterpreted(t *testing.T) {
	src := `
CREATE RULE r1, log reads
ON observation(r, o, t)
IF o != 'skip' AND event_interval >= 0
DO INSERT INTO T VALUES (o, 1); note(r, event_begin)

CREATE RULE r2, failing parts
ON observation(r, o, t)
IF length(o) > 2
DO INSERT INTO missing VALUES (o); nosuchproc(o); note(bad_var, o)
`
	rs, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(interpreted bool) (firings []string, errs []string, dump string) {
		st := fuzzStore(t)
		var notes []string
		procs := Procs{"note": func(ctx ActionContext, args []event.Value) error {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.String()
			}
			notes = append(notes, ctx.RuleID+":"+strings.Join(parts, ","))
			return nil
		}}
		x := NewExecutor(rs, st, procs, nil)
		x.Interpreted = interpreted
		if err := x.Bind(graph.NewBuilder()); err != nil {
			t.Fatal(err)
		}
		base := event.Time(0)
		for i := 0; i < 6; i++ {
			obj := []string{"tag", "skip", "pallet"}[i%3]
			inst := &event.Instance{
				Begin: base + event.Time(i)*event.Time(time.Second),
				End:   base + event.Time(i+1)*event.Time(time.Second),
				Binds: event.Bindings{}.Set("r", event.StringValue("rd1")).
					Set("o", event.StringValue(obj)).
					Set("t", event.TimeValue(base+event.Time(i)*event.Time(time.Second))),
				Seq: uint64(i),
			}
			x.Dispatch(i%2, inst)
		}
		for _, fr := range x.Firings() {
			firings = append(firings, fr.RuleID+"|"+fr.Inst.Binds.String())
		}
		for _, e := range x.Errors() {
			errs = append(errs, e.Error())
		}
		firings = append(firings, notes...)
		return firings, errs, dumpStore(st)
	}
	cf, ce, cd := run(false)
	wf, we, wd := run(true)
	if fmt.Sprint(cf) != fmt.Sprint(wf) {
		t.Errorf("firings diverge:\ncompiled:    %v\ninterpreted: %v", cf, wf)
	}
	if fmt.Sprint(ce) != fmt.Sprint(we) {
		t.Errorf("errors diverge:\ncompiled:    %v\ninterpreted: %v", ce, we)
	}
	if cd != wd {
		t.Errorf("stores diverge:\ncompiled:\n%s\ninterpreted:\n%s", cd, wd)
	}
}

// TestImplicitBindingsEquivalence checks the single-allocation merge
// against the interpreted builder across collision cases.
func TestImplicitBindingsEquivalence(t *testing.T) {
	cases := []event.Bindings{
		nil,
		event.Bindings{}.Set("o", event.StringValue("x")),
		event.Bindings{}.Set("event_begin", event.StringValue("user wins")),
		event.Bindings{}.Set("a", event.IntValue(1)).Set("event_end", event.IntValue(2)).Set("z", event.IntValue(3)),
		event.Bindings{}.Set("event_begin", event.IntValue(1)).
			Set("event_end", event.IntValue(2)).
			Set("event_interval", event.IntValue(3)),
	}
	for i, binds := range cases {
		inst := &event.Instance{Begin: 1e9, End: 3e9, Binds: binds, Seq: 7}
		got := implicitBindings(inst)
		want := withImplicitBindings(inst)
		if got.String() != want.String() {
			t.Errorf("case %d: merge %s, interpreted %s", i, got, want)
		}
	}
}
