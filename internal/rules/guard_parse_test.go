package rules

import (
	"strings"
	"testing"
)

func TestGuardRoundTrip(t *testing.T) {
	srcs := []string{
		`CREATE RULE g1 ON SEQ(observation('s', v1, t1) ; observation('s', v2, t2)) WHERE v2 > v1 + 5 IF TRUE DO p(v1, v2)`,
		`CREATE RULE g2 ON WITHIN(TSEQ+(observation('s', v, t), 1sec, 10sec), 60sec) WHERE MAX(v) > 8 AND COUNT(v) >= 3 IF TRUE DO p(t)`,
		`CREATE RULE g3 ON SEQ(observation('ck', b, t1) ; NOT observation('ld', b, t2) WITHIN 5min) IF TRUE DO alarm(b)`,
		`CREATE RULE g4 ON SEQ(NOT observation('ck', b, _) WITHIN 10min ; observation('ld', b, t)) IF TRUE DO alarm(b)`,
		`CREATE RULE g5 ON observation(r, o, t) WHERE o > 100 OR (o < 5 AND NOT o = 3) IF TRUE DO p(o)`,
		`CREATE RULE g6 ON ALL(observation('a', x, t1), NOT observation('b', x, t2) WITHIN 30sec) IF TRUE DO p(x)`,
		`CREATE RULE g7 ON observation(r, o, t) WHERE t - 0 < 30sec IF TRUE DO p(o)`,
		`CREATE RULE g8 ON SEQ+(observation('s', v, t)) WHERE SUM(v) >= 10 IF TRUE DO p(t)`,
	}
	for _, src := range srcs {
		rs, err := ParseScript(src)
		if err != nil {
			t.Errorf("PARSE ERR: %v", err)
			continue
		}
		out := Format(rs)
		rs2, err := ParseScript(out)
		if err != nil {
			t.Errorf("REPARSE ERR: %v\n  text: %s", err, out)
			continue
		}
		if out2 := Format(rs2); out != out2 {
			t.Errorf("NOT FIXED POINT:\n1: %s\n2: %s", out, out2)
			continue
		}
		t.Logf("OK %s", out)
	}
}

func TestGuardParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`CREATE RULE e1 ON SEQ(observation('a', b, t1) ; NOT observation('b', b, t2) WITHIN 0sec) IF true DO p(b)`,
			"negation window must be positive"},
		{`CREATE RULE e2 ON observation(r, o, t) WHERE foo(o) > 1 IF true DO p(o)`,
			"unknown guard function"},
		{`CREATE RULE e3 ON observation(r, o, t) WHERE where > 1 IF true DO p(o)`,
			"expected a guard operand"},
		{`CREATE RULE e4 ON observation(r, o, t) WHERE o > IF true DO p(o)`,
			"expected a guard operand"},
	}
	for _, c := range cases {
		_, err := ParseScript(c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.src, err, c.want)
		}
	}
}
