package rules

import (
	"fmt"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
)

// ActionContext is handed to user procedures when their rule fires.
type ActionContext struct {
	RuleID   string
	RuleName string
	Inst     *event.Instance
	Store    *store.Store
}

// Proc is a user-defined procedure invocable from a rule's DO list, e.g.
// send_alarm.
type Proc func(ctx ActionContext, args []event.Value) error

// Procs is a registry of user procedures by (case-sensitive) name.
type Procs map[string]Proc

// Firing records one executed rule for auditing/tests.
type Firing struct {
	RuleID string
	Inst   *event.Instance
}

// Executor evaluates rule conditions and runs actions when the detection
// engine reports an event occurrence. It implements the OnDetect callback
// of detect.Config via Dispatch.
type Executor struct {
	rs    *RuleSet
	store *store.Store
	procs Procs
	funcs sqlmini.Funcs

	byIndex []*Rule    // graph rule index → rule
	plans   []rulePlan // graph rule index → compiled plan (see plan.go)

	// Interpreted forces dispatch through the AST interpreter instead of
	// the prepared plans — the oracle for the equivalence suite.
	Interpreted bool

	// OnError receives action/condition errors; default collects them.
	OnError func(rule *Rule, err error)
	errs    []error
	firings []Firing

	// TraceFirings keeps the Firing log (on by default; disable for
	// long benchmark runs).
	TraceFirings bool

	// disabled holds rule IDs whose firing is suppressed at dispatch
	// time. Detection still happens (the graph is shared), only the
	// condition/action stage is skipped.
	disabled map[string]bool
}

// NewExecutor wires a parsed rule set to a data store, user procedures and
// user condition functions (any of which may be nil).
func NewExecutor(rs *RuleSet, st *store.Store, procs Procs, funcs sqlmini.Funcs) *Executor {
	x := &Executor{rs: rs, store: st, procs: procs, funcs: funcs, TraceFirings: true}
	x.OnError = func(rule *Rule, err error) {
		x.errs = append(x.errs, fmt.Errorf("rule %s: %w", rule.ID, err))
	}
	return x
}

// Bind registers every rule's event with the graph builder. Rule i in the
// set gets graph rule ID i.
func (x *Executor) Bind(b *graph.Builder) error {
	for i, r := range x.rs.Rules {
		if _, err := b.AddRule(i, r.Event); err != nil {
			return fmt.Errorf("rule %s: %w", r.ID, err)
		}
		x.byIndex = append(x.byIndex, r)
		x.plans = append(x.plans, x.compileRule(r))
	}
	return nil
}

// Rules returns the bound rule set.
func (x *Executor) Rules() *RuleSet { return x.rs }

// Errors returns the errors collected by the default OnError handler.
func (x *Executor) Errors() []error { return x.errs }

// Firings returns the audit log of fired rules.
func (x *Executor) Firings() []Firing { return x.firings }

// SetEnabled enables or disables a rule at runtime by its script ID. A
// disabled rule's event is still detected (the graph is shared with other
// rules) but its condition and actions are skipped. It reports whether
// the rule exists.
func (x *Executor) SetEnabled(ruleID string, enabled bool) bool {
	if _, ok := x.rs.Rule(ruleID); !ok {
		return false
	}
	if x.disabled == nil {
		x.disabled = map[string]bool{}
	}
	if enabled {
		delete(x.disabled, ruleID)
	} else {
		x.disabled[ruleID] = true
	}
	return true
}

// Dispatch is the detect.Config.OnDetect callback: evaluate the rule's IF
// condition against the instance bindings and, when satisfied, run the DO
// actions in order.
func (x *Executor) Dispatch(ruleIdx int, inst *event.Instance) {
	if ruleIdx < 0 || ruleIdx >= len(x.byIndex) {
		return
	}
	r := x.byIndex[ruleIdx]
	if x.disabled[r.ID] {
		return
	}
	if !x.Interpreted && ruleIdx < len(x.plans) {
		x.dispatchCompiled(r, &x.plans[ruleIdx], inst)
		return
	}
	binds := withImplicitBindings(inst)
	if r.Cond != nil {
		v, err := sqlmini.EvalExpr(x.store, r.Cond, binds, x.funcs)
		if err != nil {
			x.OnError(r, fmt.Errorf("condition: %w", err))
			return
		}
		if !sqlmini.Truthy(v) {
			return
		}
	}
	if x.TraceFirings {
		x.firings = append(x.firings, Firing{RuleID: r.ID, Inst: inst})
	}
	for _, a := range r.Actions {
		if err := x.runAction(r, a, inst, binds); err != nil {
			x.OnError(r, err)
			// Subsequent actions still run: the paper's actions are an
			// ordered list of independent statements.
		}
	}
}

// withImplicitBindings extends the instance bindings with the detection
// span: event_begin and event_end (timestamps) and event_interval
// (seconds, float). User variables with the same names win.
func withImplicitBindings(inst *event.Instance) event.Bindings {
	binds := inst.Binds.Clone()
	for k, v := range map[string]event.Value{
		"event_begin":    event.TimeValue(inst.Begin),
		"event_end":      event.TimeValue(inst.End),
		"event_interval": event.DurationValue(inst.Interval()),
	} {
		if _, taken := binds.Get(k); !taken {
			binds = binds.Set(k, v)
		}
	}
	return binds
}

// dispatchCompiled is Dispatch's body on the prepared-plan path. It must
// stay behaviorally identical to the interpreted path below, including
// every error-wrapping format string.
func (x *Executor) dispatchCompiled(r *Rule, pl *rulePlan, inst *event.Instance) {
	binds := implicitBindings(inst)
	if pl.cond != nil {
		v, err := pl.cond.Eval(x.store, binds)
		if err != nil {
			x.OnError(r, fmt.Errorf("condition: %w", err))
			return
		}
		if !sqlmini.Truthy(v) {
			return
		}
	}
	if x.TraceFirings {
		x.firings = append(x.firings, Firing{RuleID: r.ID, Inst: inst})
	}
	for i := range pl.actions {
		if err := x.runActionCompiled(r, &pl.actions[i], inst, binds); err != nil {
			x.OnError(r, err)
		}
	}
}

// runActionCompiled mirrors runAction over a compiled action plan.
func (x *Executor) runActionCompiled(r *Rule, ap *actionPlan, inst *event.Instance, binds event.Bindings) error {
	switch act := ap.src.(type) {
	case *SQLAction:
		if x.store == nil {
			return fmt.Errorf("action %q needs a data store", act)
		}
		if _, err := ap.sql.Exec(x.store, binds); err != nil {
			return fmt.Errorf("action %q: %w", act, err)
		}
		return nil
	case *ProcAction:
		proc, ok := x.procs[ap.name]
		if !ok {
			return fmt.Errorf("action %q: no such procedure %s", act, ap.name)
		}
		args := make([]event.Value, len(ap.args))
		for i, af := range ap.args {
			v, err := af.Eval(x.store, binds)
			if err != nil {
				return fmt.Errorf("action %q: argument %d: %w", act, i+1, err)
			}
			args[i] = v
		}
		ctx := ActionContext{RuleID: r.ID, RuleName: r.Name, Inst: inst, Store: x.store}
		if err := proc(ctx, args); err != nil {
			return fmt.Errorf("action %q: %w", act, err)
		}
		return nil
	}
	return fmt.Errorf("unknown action type %T", ap.src)
}

func (x *Executor) runAction(r *Rule, a Action, inst *event.Instance, binds event.Bindings) error {
	switch act := a.(type) {
	case *SQLAction:
		if x.store == nil {
			return fmt.Errorf("action %q needs a data store", act)
		}
		if _, err := sqlmini.ExecStmt(x.store, act.Stmt, binds); err != nil {
			return fmt.Errorf("action %q: %w", act, err)
		}
		return nil
	case *ProcAction:
		proc, ok := x.procs[act.Name]
		if !ok {
			return fmt.Errorf("action %q: no such procedure %s", act, act.Name)
		}
		args := make([]event.Value, len(act.Args))
		for i, ae := range act.Args {
			v, err := sqlmini.EvalExpr(x.store, ae, binds, x.funcs)
			if err != nil {
				return fmt.Errorf("action %q: argument %d: %w", act, i+1, err)
			}
			args[i] = v
		}
		ctx := ActionContext{RuleID: r.ID, RuleName: r.Name, Inst: inst, Store: x.store}
		if err := proc(ctx, args); err != nil {
			return fmt.Errorf("action %q: %w", act, err)
		}
		return nil
	}
	return fmt.Errorf("unknown action type %T", a)
}
