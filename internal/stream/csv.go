package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"rcep/internal/core/event"
)

// CSV observation interchange: one observation per line, as
// "reader,object,seconds" with float seconds on the virtual timeline.
// Blank lines and '#' comments are skipped.

// ReadCSV streams observations from r into sink, returning the count.
func ReadCSV(r io.Reader, sink func(event.Observation) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	n, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		obs, err := ParseCSVLine(line)
		if err != nil {
			return n, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		if err := sink(obs); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// ParseCSVLine parses one "reader,object,seconds" line.
func ParseCSVLine(line string) (event.Observation, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 3 {
		return event.Observation{}, fmt.Errorf("want reader,object,seconds; got %q", line)
	}
	secs, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil {
		return event.Observation{}, fmt.Errorf("bad timestamp %q", parts[2])
	}
	return event.Observation{
		Reader: strings.TrimSpace(parts[0]),
		Object: strings.TrimSpace(parts[1]),
		At:     event.Time(secs * float64(time.Second)),
	}, nil
}

// WriteCSV writes observations in the CSV interchange form.
func WriteCSV(w io.Writer, obs []event.Observation) error {
	bw := bufio.NewWriter(w)
	for _, o := range obs {
		if _, err := fmt.Fprintf(bw, "%s,%s,%.3f\n",
			o.Reader, o.Object, time.Duration(o.At).Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
