// Package stream provides timestamp-ordered plumbing between observation
// sources and the detection engine: sorting, k-way merging of sorted
// streams, a bounded out-of-order reorder buffer, and a channel pump.
package stream

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"rcep/internal/core/event"
)

// Sort orders observations by timestamp (stable, so same-time events keep
// their source order).
func Sort(obs []event.Observation) {
	sort.SliceStable(obs, func(i, j int) bool { return obs[i].At < obs[j].At })
}

// IsSorted reports whether the observations are in non-decreasing
// timestamp order.
func IsSorted(obs []event.Observation) bool {
	for i := 1; i < len(obs); i++ {
		if obs[i].At < obs[i-1].At {
			return false
		}
	}
	return true
}

// Merge merges already-sorted streams into one sorted stream.
func Merge(streams ...[]event.Observation) []event.Observation {
	type cursor struct {
		s   []event.Observation
		pos int
	}
	h := &mergeHeap{}
	total := 0
	for _, s := range streams {
		total += len(s)
		if len(s) > 0 {
			h.items = append(h.items, cursor{s, 0})
		}
	}
	heap.Init(h)
	out := make([]event.Observation, 0, total)
	for h.Len() > 0 {
		c := h.items[0]
		out = append(out, c.s[c.pos])
		if c.pos+1 < len(c.s) {
			h.items[0].pos++
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

type mergeHeap struct {
	items []struct {
		s   []event.Observation
		pos int
	}
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.items[i].s[h.items[i].pos].At < h.items[j].s[h.items[j].pos].At
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any) {
	h.items = append(h.items, x.(struct {
		s   []event.Observation
		pos int
	}))
}
func (h *mergeHeap) Pop() any {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}

// Reorder is a bounded out-of-order buffer: it accepts observations up to
// Slack late and releases them downstream in timestamp order. An
// observation older than the released watermark is reported to OnDrop
// (or silently dropped when OnDrop is nil).
type Reorder struct {
	slack     time.Duration
	out       func(event.Observation) error
	OnDrop    func(event.Observation)
	buf       obsHeap
	watermark event.Time // everything <= watermark has been released
	maxSeen   event.Time
}

// NewReorder builds a reorder buffer delivering to out.
func NewReorder(slack time.Duration, out func(event.Observation) error) *Reorder {
	if slack < 0 {
		slack = 0
	}
	return &Reorder{slack: slack, out: out, watermark: event.MinTime, maxSeen: event.MinTime}
}

// Push accepts one observation in any order within the slack bound.
func (r *Reorder) Push(obs event.Observation) error {
	if obs.At <= r.watermark && r.watermark != event.MinTime {
		if r.OnDrop != nil {
			r.OnDrop(obs)
		}
		return nil
	}
	heap.Push(&r.buf, obs)
	if obs.At > r.maxSeen {
		r.maxSeen = obs.At
	}
	return r.release(r.maxSeen.Add(-r.slack))
}

// Flush releases everything still buffered, in order.
func (r *Reorder) Flush() error {
	return r.release(event.MaxTime)
}

// Pending returns the number of buffered observations.
func (r *Reorder) Pending() int { return len(r.buf) }

func (r *Reorder) release(upto event.Time) error {
	for len(r.buf) > 0 && r.buf[0].At <= upto {
		obs := heap.Pop(&r.buf).(event.Observation)
		if obs.At > r.watermark {
			r.watermark = obs.At
		}
		if err := r.out(obs); err != nil {
			return fmt.Errorf("stream: deliver %v: %w", obs, err)
		}
	}
	return nil
}

type obsHeap []event.Observation

func (h obsHeap) Len() int           { return len(h) }
func (h obsHeap) Less(i, j int) bool { return h[i].At < h[j].At }
func (h obsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *obsHeap) Push(x any)        { *h = append(*h, x.(event.Observation)) }
func (h *obsHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Dedup is the low-level duplicate filter of paper §3.1 (Fig. 2's "Event
// Filtering" stage): an observation of the same (reader, object) pair
// within Window of the previous one is a duplicate and is not forwarded.
// The first read of each burst survives, so downstream aggregation rules
// (Rule 4) see clean sequences.
type Dedup struct {
	window time.Duration
	out    func(event.Observation) error

	// OnDuplicate, when set, receives each suppressed observation.
	OnDuplicate func(event.Observation)

	last      map[[2]string]event.Time
	lastPrune event.Time
}

// NewDedup builds a duplicate filter delivering to out.
func NewDedup(window time.Duration, out func(event.Observation) error) *Dedup {
	return &Dedup{
		window: window, out: out,
		last: map[[2]string]event.Time{}, lastPrune: event.MinTime,
	}
}

// Push accepts one observation (in timestamp order) and forwards it unless
// it duplicates a recent one.
func (d *Dedup) Push(obs event.Observation) error {
	key := [2]string{obs.Reader, obs.Object}
	if prev, ok := d.last[key]; ok && obs.At.Sub(prev) <= d.window {
		d.last[key] = obs.At // sliding window: a long burst stays suppressed
		if d.OnDuplicate != nil {
			d.OnDuplicate(obs)
		}
		return nil
	}
	d.last[key] = obs.At
	d.prune(obs.At)
	return d.out(obs)
}

// Flush is a no-op: Dedup holds no pending observations. It satisfies the
// pipeline stage contract.
func (d *Dedup) Flush() error { return nil }

// prune evicts stale entries so the map stays proportional to the number
// of recently active (reader, object) pairs.
func (d *Dedup) prune(now event.Time) {
	if d.lastPrune != event.MinTime && now.Sub(d.lastPrune) < 64*d.window {
		return
	}
	d.lastPrune = now
	for k, t := range d.last {
		if now.Sub(t) > d.window {
			delete(d.last, k)
		}
	}
}

// Pump drains a channel of observations into the sink, returning on
// channel close or the first error. It composes with Reorder.Push for
// out-of-order sources.
func Pump(ch <-chan event.Observation, sink func(event.Observation) error) error {
	for obs := range ch {
		if err := sink(obs); err != nil {
			return err
		}
	}
	return nil
}
