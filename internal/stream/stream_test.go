package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rcep/internal/core/event"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func o(id string, sec float64) event.Observation {
	return event.Observation{Reader: "r", Object: id, At: ts(sec)}
}

func TestSortAndIsSorted(t *testing.T) {
	obs := []event.Observation{o("c", 3), o("a", 1), o("b", 2)}
	if IsSorted(obs) {
		t.Errorf("unsorted reported sorted")
	}
	Sort(obs)
	if !IsSorted(obs) || obs[0].Object != "a" || obs[2].Object != "c" {
		t.Errorf("sort: %v", obs)
	}
}

func TestSortIsStable(t *testing.T) {
	obs := []event.Observation{o("first", 1), o("second", 1), o("third", 1)}
	Sort(obs)
	if obs[0].Object != "first" || obs[2].Object != "third" {
		t.Errorf("stability lost: %v", obs)
	}
}

func TestMerge(t *testing.T) {
	a := []event.Observation{o("a1", 1), o("a2", 4)}
	b := []event.Observation{o("b1", 2), o("b2", 3), o("b3", 5)}
	var empty []event.Observation
	got := Merge(a, b, empty)
	if len(got) != 5 || !IsSorted(got) {
		t.Fatalf("merge: %v", got)
	}
	want := []string{"a1", "b1", "b2", "a2", "b3"}
	for i, w := range want {
		if got[i].Object != w {
			t.Errorf("merge[%d] = %s, want %s", i, got[i].Object, w)
		}
	}
	if len(Merge()) != 0 {
		t.Errorf("empty merge should be empty")
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var streams [][]event.Observation
		total := 0
		for s := 0; s < 4; s++ {
			n := r.Intn(20)
			var st []event.Observation
			tcur := 0.0
			for i := 0; i < n; i++ {
				tcur += r.Float64()
				st = append(st, o("x", tcur))
			}
			total += n
			streams = append(streams, st)
		}
		m := Merge(streams...)
		return len(m) == total && IsSorted(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderReleasesInOrder(t *testing.T) {
	var got []event.Observation
	r := NewReorder(2*time.Second, func(obs event.Observation) error {
		got = append(got, obs)
		return nil
	})
	for _, obs := range []event.Observation{o("a", 1), o("c", 3), o("b", 2.5), o("d", 6)} {
		if err := r.Push(obs); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("released %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
	if got[1].Object != "b" {
		t.Errorf("late b not reordered: %v", got)
	}
}

func TestReorderDropsTooLate(t *testing.T) {
	var dropped []event.Observation
	var got []event.Observation
	r := NewReorder(1*time.Second, func(obs event.Observation) error {
		got = append(got, obs)
		return nil
	})
	r.OnDrop = func(obs event.Observation) { dropped = append(dropped, obs) }
	_ = r.Push(o("a", 10))
	_ = r.Push(o("b", 20)) // watermark advances to 19; releases a@10
	_ = r.Push(o("late", 5))
	_ = r.Flush()
	if len(dropped) != 1 || dropped[0].Object != "late" {
		t.Fatalf("dropped: %v", dropped)
	}
	if len(got) != 2 {
		t.Fatalf("released: %v", got)
	}
}

func TestReorderPropertyAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Generate a stream with bounded displacement < slack.
		slack := 3 * time.Second
		n := 50
		base := make([]event.Observation, n)
		tcur := 0.0
		for i := range base {
			tcur += rng.Float64()
			base[i] = o("x", tcur)
		}
		shuffled := append([]event.Observation(nil), base...)
		// Local shuffle within windows of 3 (< slack since gaps < 1s each).
		for i := 0; i+1 < len(shuffled); i += 2 {
			if rng.Intn(2) == 0 {
				shuffled[i], shuffled[i+1] = shuffled[i+1], shuffled[i]
			}
		}
		var got []event.Observation
		r := NewReorder(slack, func(obs event.Observation) error {
			got = append(got, obs)
			return nil
		})
		for _, obs := range shuffled {
			if err := r.Push(obs); err != nil {
				return false
			}
		}
		if err := r.Flush(); err != nil {
			return false
		}
		if len(got) != n || !IsSorted(got) {
			t.Logf("seed %d: %d released, sorted=%t", seed, len(got), IsSorted(got))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPump(t *testing.T) {
	ch := make(chan event.Observation, 3)
	ch <- o("a", 1)
	ch <- o("b", 2)
	close(ch)
	var got int
	if err := Pump(ch, func(event.Observation) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("pumped %d", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []event.Observation{o("a", 1), o("b", 2.5), o("c", 3.125)}
	var buf strings.Builder
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	var got []event.Observation
	n, err := ReadCSV(strings.NewReader(buf.String()), func(obs event.Observation) error {
		got = append(got, obs)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("ReadCSV: n=%d err=%v", n, err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("row %d: %v != %v", i, got[i], in[i])
		}
	}
}

func TestCSVCommentsAndErrors(t *testing.T) {
	src := "# header\n\nr1,o1,1.0\n"
	n, err := ReadCSV(strings.NewReader(src), func(event.Observation) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("comments: n=%d err=%v", n, err)
	}
	if _, err := ReadCSV(strings.NewReader("r1,o1\n"), func(event.Observation) error { return nil }); err == nil {
		t.Errorf("short line accepted")
	}
	if _, err := ReadCSV(strings.NewReader("r1,o1,xx\n"), func(event.Observation) error { return nil }); err == nil {
		t.Errorf("bad timestamp accepted")
	}
	sinkErr := fmt.Errorf("sink boom")
	if _, err := ReadCSV(strings.NewReader("r1,o1,1\n"), func(event.Observation) error { return sinkErr }); err == nil {
		t.Errorf("sink error swallowed")
	}
}

func TestReorderPendingCount(t *testing.T) {
	r := NewReorder(10*time.Second, func(event.Observation) error { return nil })
	_ = r.Push(o("a", 1))
	_ = r.Push(o("b", 2))
	if r.Pending() != 2 {
		t.Errorf("pending: %d", r.Pending())
	}
	_ = r.Flush()
	if r.Pending() != 0 {
		t.Errorf("pending after flush: %d", r.Pending())
	}
}
