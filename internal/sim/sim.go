// Package sim rebuilds the paper's evaluation substrate (§5): a simulator
// of an RFID-enabled supply chain with packing lines, warehouses,
// shipping, retail stores and point-of-sale, producing deterministic
// seeded observation streams. The original Siemens simulator is
// proprietary; this reconstruction follows the paper's description
// (warehouses, shipping, retail stores and sale to customers) and drives
// the same rule families (Rules 1–5). See DESIGN.md "Substitutions".
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/epc"
	"rcep/internal/reader"
	"rcep/internal/stream"
)

// GID object classes used by the scenario; the epc.Registry maps them to
// the type names the rules use.
const (
	ClassItem      = 1
	ClassCase      = 2
	ClassPallet    = 3
	ClassLaptop    = 4
	ClassSuperuser = 5
	ClassEmployee  = 6
)

// Config parameterizes a supply-chain scenario. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	Seed int64

	// Lines is the number of parallel packing lines (each with its own
	// conveyor readers); concurrency across lines is what produces the
	// overlapping complex events of paper Fig. 1b.
	Lines        int
	CasesPerLine int
	ItemsPerCase int

	// Conveyor timing (Rule 4 expects items 0.1–1s apart and the case
	// 10–20s after the last item).
	ItemGap time.Duration // between items on the conveyor
	PackGap time.Duration // last item → case read
	CaseGap time.Duration // case read → next case's first item

	// Downstream chain timing.
	StageGap      time.Duration // between chain stages (dock → truck → store)
	ShelfCycles   int           // smart-shelf bulk read cycles per case
	ShelfInterval time.Duration
	SellFraction  float64 // fraction of items sold at POS

	// Read quality.
	DupProb  float64
	DupDelay time.Duration
	MissProb float64

	// Badges adds asset-monitoring traffic at the building exit reader:
	// laptops leaving with or without a superuser badge (Rule 5).
	Badges      int     // number of laptop-exit incidents per line
	BadgedRatio float64 // fraction escorted by a superuser

	// CasesPerPallet, when positive, adds a palletizing station after
	// packing: groups of cases are read in sequence and aggregated onto
	// a pallet (the "palletize" rule family), and the PALLET moves
	// through the downstream chain instead of individual cases —
	// exercising nested containment (item → case → pallet → location).
	CasesPerPallet int
}

// DefaultConfig returns a small, fully featured scenario.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Lines:         2,
		CasesPerLine:  3,
		ItemsPerCase:  4,
		ItemGap:       300 * time.Millisecond,
		PackGap:       12 * time.Second,
		CaseGap:       25 * time.Second,
		StageGap:      30 * time.Second,
		ShelfCycles:   2,
		ShelfInterval: 30 * time.Second,
		SellFraction:  0.5,
		DupProb:       0,
		DupDelay:      200 * time.Millisecond,
		MissProb:      0,
		Badges:        2,
		BadgedRatio:   0.5,
	}
}

// Truth records the scenario's ground truth for integration tests and
// EXPERIMENTS.md: what a correct rule engine must reconstruct.
type Truth struct {
	Containments   map[string][]string // case EPC → item EPCs, in conveyor order
	CaseRoute      map[string][]string // case EPC → symbolic locations visited, in order
	SoldItems      []string            // item EPCs sold at POS
	Alarms         []string            // laptop EPCs taken out unescorted
	Escorted       []string            // laptop EPCs escorted by a superuser
	DuplicateReads int                 // extra reads injected by DupProb
	Pallets        map[string][]string // pallet EPC → case EPCs (CasesPerPallet > 0)
}

// Scenario is a generated workload: the observation stream plus the
// metadata the engine needs (type registry, reader deployment) and the
// ground truth.
type Scenario struct {
	Observations []event.Observation
	Registry     *epc.Registry
	Deployment   *reader.Deployment
	Truth        Truth
}

// Canonicalize rewrites every observation's reader and object strings to
// their canonical interned instances, in place. Generators build strings
// with fmt.Sprintf per sighting; feeding a scenario through the engine's
// intern table before replay mirrors what the wire and LLRP ingest edges
// do and keeps one string instance per distinct EPC/reader alive.
func (sc *Scenario) Canonicalize(in *event.Interner) {
	for i := range sc.Observations {
		sc.Observations[i] = in.CanonObservation(sc.Observations[i])
	}
}

// Registry returns a type registry with the scenario's class mappings.
func NewRegistry() *epc.Registry {
	r := epc.NewRegistry()
	r.MapGIDClass(ClassItem, "item")
	r.MapGIDClass(ClassCase, "case")
	r.MapGIDClass(ClassPallet, "pallet")
	r.MapGIDClass(ClassLaptop, "laptop")
	r.MapGIDClass(ClassSuperuser, "superuser")
	r.MapGIDClass(ClassEmployee, "employee")
	return r
}

// Reader naming scheme, shared with RuleScript.
func packItemReader(line int) string { return fmt.Sprintf("pack_item_L%d", line) }
func packCaseReader(line int) string { return fmt.Sprintf("pack_case_L%d", line) }
func dockReader(line int) string     { return fmt.Sprintf("dock_W%d", line) }
func truckReader(line int) string    { return fmt.Sprintf("truck_T%d", line) }
func storeReader(line int) string    { return fmt.Sprintf("store_S%d", line) }
func shelfReader(line int) string    { return fmt.Sprintf("shelf_S%d", line) }
func posReader(line int) string      { return fmt.Sprintf("pos_S%d", line) }
func exitReader(line int) string     { return fmt.Sprintf("exit_B%d", line) }
func palCaseReader(line int) string  { return fmt.Sprintf("pal_case_L%d", line) }
func palTagReader(line int) string   { return fmt.Sprintf("pal_tag_L%d", line) }

// gid renders a GID EPC hex for the scenario's manager number.
func gid(class, serial uint64) string {
	b, err := epc.GID{Manager: 4711, Class: class, Serial: serial}.Encode()
	if err != nil {
		panic("sim: gid encode: " + err.Error())
	}
	return b.Hex()
}

// Generate builds the scenario deterministically from the config.
func Generate(cfg Config) *Scenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &Scenario{
		Registry:   NewRegistry(),
		Deployment: reader.NewDeployment(),
		Truth: Truth{
			Containments: map[string][]string{},
			CaseRoute:    map[string][]string{},
			Pallets:      map[string][]string{},
		},
	}
	var streams [][]event.Observation
	var serial uint64

	nextSerial := func() uint64 {
		serial++
		return serial
	}
	// counted wraps a read so injected duplicates are tallied in Truth.
	counted := func(obs []event.Observation) []event.Observation {
		if len(obs) > 1 {
			sc.Truth.DuplicateReads += len(obs) - 1
		}
		return obs
	}

	for line := 1; line <= cfg.Lines; line++ {
		rd := func(id, loc, group string) *reader.Reader {
			r := &reader.Reader{
				ID: id, Location: loc,
				DupProb: cfg.DupProb, DupDelay: cfg.DupDelay, MissProb: cfg.MissProb,
			}
			if group != "" {
				r.Groups = []string{group}
			}
			if err := sc.Deployment.Add(r); err != nil {
				panic("sim: " + err.Error())
			}
			return r
		}
		packItem := rd(packItemReader(line), fmt.Sprintf("factory-%d", line), fmt.Sprintf("g_pack_item_%d", line))
		packCase := rd(packCaseReader(line), fmt.Sprintf("factory-%d", line), fmt.Sprintf("g_pack_case_%d", line))
		dock := rd(dockReader(line), fmt.Sprintf("warehouse-%d", line), "")
		truck := rd(truckReader(line), fmt.Sprintf("truck-%d", line), "")
		storeDock := rd(storeReader(line), fmt.Sprintf("store-%d", line), "")
		shelf := &reader.Shelf{
			Reader:   reader.Reader{ID: shelfReader(line), Location: fmt.Sprintf("store-%d", line)},
			Interval: cfg.ShelfInterval,
		}
		if err := sc.Deployment.Add(&shelf.Reader); err != nil {
			panic("sim: " + err.Error())
		}
		pos := rd(posReader(line), fmt.Sprintf("store-%d", line), "")
		exit := rd(exitReader(line), fmt.Sprintf("building-%d", line), "")

		var palCase, palTag *reader.Reader
		if cfg.CasesPerPallet > 0 {
			palCase = rd(palCaseReader(line), fmt.Sprintf("factory-%d", line), "")
			palTag = rd(palTagReader(line), fmt.Sprintf("factory-%d", line), "")
		}

		var lineObs []event.Observation
		t := event.Time(0)

		// downstream moves a unit (case or pallet) through the chain and
		// unpacks its items onto the shelf and POS.
		downstream := func(unit string, items []string, from event.Time) {
			stageAt := from
			for _, r := range []*reader.Reader{dock, truck, storeDock} {
				stageAt = stageAt.Add(cfg.StageGap)
				lineObs = append(lineObs, counted(r.Observe(rng, unit, stageAt))...)
			}
			sc.Truth.CaseRoute[unit] = []string{
				sc.Deployment.LocationOf(dock.ID),
				sc.Deployment.LocationOf(truck.ID),
				sc.Deployment.LocationOf(storeDock.ID),
			}

			// Unpacked onto the smart shelf; bulk reads every cycle.
			shelfFrom := stageAt.Add(cfg.StageGap)
			shelfTo := shelfFrom.Add(time.Duration(cfg.ShelfCycles) * cfg.ShelfInterval)
			lineObs = append(lineObs, shelf.Cycles(rng, items, shelfFrom, shelfTo)...)

			// Some items are sold at the POS.
			sellAt := shelfTo.Add(cfg.StageGap)
			sold := 0
			for _, it := range items {
				if float64(sold) < cfg.SellFraction*float64(len(items)) {
					lineObs = append(lineObs, counted(pos.Observe(rng, it, sellAt))...)
					sc.Truth.SoldItems = append(sc.Truth.SoldItems, it)
					sellAt = sellAt.Add(time.Second)
					sold++
				}
			}
		}

		var pendingCases []string
		var pendingItems []string
		palletize := func() {
			if len(pendingCases) == 0 {
				return
			}
			// Cases pass the pallet station in sequence, then the pallet
			// tag is read — the same TSEQ(TSEQ+) shape as case packing.
			at := t.Add(5 * time.Second)
			for i, c := range pendingCases {
				lineObs = append(lineObs, counted(palCase.Observe(rng, c, at))...)
				if i < len(pendingCases)-1 {
					at = at.Add(500 * time.Millisecond)
				}
			}
			at = at.Add(cfg.PackGap)
			palletEPC := gid(ClassPallet, nextSerial())
			lineObs = append(lineObs, counted(palTag.Observe(rng, palletEPC, at))...)
			sc.Truth.Pallets[palletEPC] = pendingCases
			downstream(palletEPC, pendingItems, at)
			pendingCases, pendingItems = nil, nil
			t = at.Add(cfg.CaseGap)
		}

		for c := 0; c < cfg.CasesPerLine; c++ {
			caseEPC := gid(ClassCase, nextSerial())
			var items []string
			// Items on the conveyor.
			for i := 0; i < cfg.ItemsPerCase; i++ {
				itemEPC := gid(ClassItem, nextSerial())
				items = append(items, itemEPC)
				lineObs = append(lineObs, counted(packItem.Observe(rng, itemEPC, t))...)
				if i < cfg.ItemsPerCase-1 {
					t = t.Add(cfg.ItemGap)
				}
			}
			// The case is read PackGap after the last item (inside
			// Rule 4's [10s, 20s] window).
			t = t.Add(cfg.PackGap)
			lineObs = append(lineObs, counted(packCase.Observe(rng, caseEPC, t))...)
			sc.Truth.Containments[caseEPC] = items

			if cfg.CasesPerPallet > 0 {
				pendingCases = append(pendingCases, caseEPC)
				pendingItems = append(pendingItems, items...)
				t = t.Add(cfg.CaseGap)
				if len(pendingCases) == cfg.CasesPerPallet {
					palletize()
				}
				continue
			}
			downstream(caseEPC, items, t)
			t = t.Add(cfg.CaseGap)
		}
		if cfg.CasesPerPallet > 0 {
			palletize() // flush a final partial pallet
		}

		// Asset-monitoring incidents at the building exit.
		exitAt := t.Add(time.Minute)
		for b := 0; b < cfg.Badges; b++ {
			laptop := gid(ClassLaptop, nextSerial())
			lineObs = append(lineObs, counted(exit.Observe(rng, laptop, exitAt))...)
			if rng.Float64() < cfg.BadgedRatio {
				badge := gid(ClassSuperuser, nextSerial())
				lineObs = append(lineObs, counted(exit.Observe(rng, badge, exitAt.Add(2*time.Second)))...)
				sc.Truth.Escorted = append(sc.Truth.Escorted, laptop)
			} else {
				sc.Truth.Alarms = append(sc.Truth.Alarms, laptop)
			}
			exitAt = exitAt.Add(30 * time.Second)
		}

		stream.Sort(lineObs)
		streams = append(streams, lineObs)
	}
	sc.Observations = stream.Merge(streams...)
	return sc
}

// RuleScript generates the paper's rule families for the given number of
// lines, in the rule language. Families (per line):
//
//	dup   — Rule 1 duplicate filtering on the conveyor item reader
//	loc   — Rule 3 location change on the chain readers
//	pack  — Rule 4 containment aggregation (TSEQ over TSEQ+)
//	shelf — Rule 2 infield filtering on the smart shelf
//	asset — Rule 5 negation alarm at the building exit
//
// The returned script declares len(families)×lines rules.
func RuleScript(lines int, families []string) string {
	out := ""
	for line := 1; line <= lines; line++ {
		for _, f := range families {
			switch f {
			case "dup":
				out += fmt.Sprintf(`
CREATE RULE dup_%[1]d, duplicate detection line %[1]d
ON WITHIN(observation('%[2]s', o, t1); observation('%[2]s', o, t2), 5sec)
IF true
DO mark_duplicate(o, t1)
`, line, packItemReader(line))
			case "loc":
				out += fmt.Sprintf(`
DEFINE ChainObs_%[1]d = observation(r, o, t), group(r) = 'g_chain_%[1]d'
CREATE RULE loc_%[1]d, location change line %[1]d
ON ChainObs_%[1]d
IF true
DO UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC';
   INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')
`, line)
			case "pack":
				out += fmt.Sprintf(`
DEFINE PackItem_%[1]d = observation('%[2]s', o1, t1)
DEFINE PackCase_%[1]d = observation('%[3]s', o2, t2)
CREATE RULE pack_%[1]d, containment line %[1]d
ON TSEQ(TSEQ+(PackItem_%[1]d, 0.1sec, 1sec); PackCase_%[1]d, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`, line, packItemReader(line), packCaseReader(line))
			case "shelf":
				out += fmt.Sprintf(`
CREATE RULE shelf_%[1]d, infield line %[1]d
ON WITHIN(NOT observation('%[2]s', o, t1); observation('%[2]s', o, t2), 45sec)
IF true
DO INSERT INTO INVENTORY VALUES ('%[2]s', o, t2, 'UC')
`, line, shelfReader(line))
			case "palletize":
				out += fmt.Sprintf(`
DEFINE PalCase_%[1]d = observation('%[2]s', o1, t1)
DEFINE PalTag_%[1]d = observation('%[3]s', o2, t2)
CREATE RULE palletize_%[1]d, palletizing line %[1]d
ON TSEQ(TSEQ+(PalCase_%[1]d, 0.1sec, 1sec); PalTag_%[1]d, 10sec, 20sec)
IF true
DO BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')
`, line, palCaseReader(line), palTagReader(line))
			case "asset":
				out += fmt.Sprintf(`
DEFINE ExitLaptop_%[1]d = observation('%[2]s', o4, t4), type(o4) = 'laptop'
DEFINE ExitSuper_%[1]d = observation('%[2]s', o5, t5), type(o5) = 'superuser'
CREATE RULE asset_%[1]d, asset monitoring line %[1]d
ON WITHIN(ExitLaptop_%[1]d AND NOT ExitSuper_%[1]d, 5sec)
IF true
DO send_alarm(o4, t4)
`, line, exitReader(line))
			default:
				panic("sim: unknown rule family " + f)
			}
		}
	}
	return out
}

// AllFamilies lists every rule family RuleScript knows.
func AllFamilies() []string { return []string{"dup", "loc", "pack", "shelf", "asset"} }

// ChainGroups returns a group function that extends the deployment's
// groups with per-line "g_chain_N" groups covering the dock, truck and
// store readers (used by the "loc" family).
func (sc *Scenario) ChainGroups() func(string) []string {
	base := sc.Deployment.GroupFunc()
	return func(r string) []string {
		gs := base(r)
		var line int
		if n, _ := fmt.Sscanf(r, "dock_W%d", &line); n == 1 {
			return append(gs, fmt.Sprintf("g_chain_%d", line))
		}
		if n, _ := fmt.Sscanf(r, "truck_T%d", &line); n == 1 {
			return append(gs, fmt.Sprintf("g_chain_%d", line))
		}
		if n, _ := fmt.Sscanf(r, "store_S%d", &line); n == 1 {
			return append(gs, fmt.Sprintf("g_chain_%d", line))
		}
		return gs
	}
}
