package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
	"unsafe"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/rules"
	"rcep/internal/store"
	"rcep/internal/stream"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Observations) != len(b.Observations) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Observations), len(b.Observations))
	}
	for i := range a.Observations {
		if a.Observations[i] != b.Observations[i] {
			t.Fatalf("observation %d differs: %v vs %v", i, a.Observations[i], b.Observations[i])
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	cfg.DupProb = 0.4
	c := Generate(cfg)
	d := Generate(cfg)
	if len(c.Observations) != len(d.Observations) {
		t.Fatalf("seeded duplicate runs differ")
	}
}

func TestGenerateStreamSorted(t *testing.T) {
	sc := Generate(DefaultConfig())
	if !stream.IsSorted(sc.Observations) {
		t.Fatalf("stream not sorted")
	}
	if len(sc.Observations) == 0 {
		t.Fatalf("empty stream")
	}
}

func TestGenerateScalesWithConfig(t *testing.T) {
	small := DefaultConfig()
	big := DefaultConfig()
	big.Lines = 4
	big.CasesPerLine = 6
	if len(Generate(big).Observations) <= len(Generate(small).Observations) {
		t.Fatalf("bigger config should produce more observations")
	}
}

func TestRegistryTypes(t *testing.T) {
	r := NewRegistry()
	if got := r.TypeOf(gid(ClassLaptop, 1)); got != "laptop" {
		t.Errorf("laptop type: %q", got)
	}
	if got := r.TypeOf(gid(ClassCase, 2)); got != "case" {
		t.Errorf("case type: %q", got)
	}
	if got := r.TypeOf("not-an-epc"); got != "" {
		t.Errorf("unknown type: %q", got)
	}
}

func TestRuleScriptParses(t *testing.T) {
	src := RuleScript(3, AllFamilies())
	rs, err := rules.ParseScript(src)
	if err != nil {
		t.Fatalf("RuleScript does not parse: %v", err)
	}
	if len(rs.Rules) != 3*len(AllFamilies()) {
		t.Fatalf("rules: %d, want %d", len(rs.Rules), 3*len(AllFamilies()))
	}
}

func TestRuleScriptUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown family should panic")
		}
	}()
	RuleScript(1, []string{"nope"})
}

// TestEndToEndSupplyChain runs the full stack — simulator → rule language
// → event graph → RCEDA → mini-SQL → RFID store — and checks the store
// contents against the simulator's ground truth.
func TestEndToEndSupplyChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProb = 0.3 // exercise the filtering stage
	sc := Generate(cfg)

	rs, err := rules.ParseScript(RuleScript(cfg.Lines, AllFamilies()))
	if err != nil {
		t.Fatal(err)
	}
	st := store.OpenRFID()
	var alarms, dups []string
	procs := rules.Procs{
		"send_alarm": func(_ rules.ActionContext, args []event.Value) error {
			alarms = append(alarms, args[0].Str())
			return nil
		},
		"mark_duplicate": func(_ rules.ActionContext, args []event.Value) error {
			dups = append(dups, args[0].Str())
			return nil
		},
	}
	x := rules.NewExecutor(rs, st, procs, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		Groups:   sc.ChainGroups(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 2 pipeline: low-level event filtering ahead of complex
	// event detection, so aggregation sees clean sequences.
	filtered := 0
	dedup := stream.NewDedup(time.Second, eng.Ingest)
	dedup.OnDuplicate = func(event.Observation) { filtered++ }
	for _, o := range sc.Observations {
		if err := dedup.Push(o); err != nil {
			t.Fatalf("Push(%v): %v", o, err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}
	if filtered != sc.Truth.DuplicateReads {
		t.Errorf("filter suppressed %d reads, generator injected %d", filtered, sc.Truth.DuplicateReads)
	}

	// Rule 4: containment aggregation must reconstruct the packing truth.
	for caseEPC, wantItems := range sc.Truth.Containments {
		got := store.ContentsAt(st, caseEPC, event.MaxTime-1)
		if !reflect.DeepEqual(got, wantItems) {
			t.Errorf("containment of %s:\n got %v\nwant %v", caseEPC, got, wantItems)
		}
	}
	contTbl, _ := st.Table(store.TableContainment)
	wantRows := 0
	for _, items := range sc.Truth.Containments {
		wantRows += len(items)
	}
	if contTbl.Len() != wantRows {
		t.Errorf("containment rows: %d, want %d", contTbl.Len(), wantRows)
	}

	// Rule 3: the location history must follow each case's route.
	for caseEPC := range sc.Truth.Containments {
		if loc, ok := store.LocationAt(st, caseEPC, event.MaxTime-1); !ok {
			t.Errorf("case %s has no final location", caseEPC)
		} else if loc == "" {
			t.Errorf("case %s empty location", caseEPC)
		} else if loc[:5] != "store" {
			t.Errorf("case %s final location %q, want a store dock", caseEPC, loc)
		}
	}

	// Rule 5: alarms exactly for the unescorted laptops.
	sort.Strings(alarms)
	wantAlarms := append([]string(nil), sc.Truth.Alarms...)
	sort.Strings(wantAlarms)
	if !reflect.DeepEqual(alarms, wantAlarms) {
		t.Errorf("alarms:\n got %v\nwant %v", alarms, wantAlarms)
	}

	// Rule 2: every item goes infield exactly once per shelf stay.
	invTbl, _ := st.Table(store.TableInventory)
	if invTbl.Len() != wantRows {
		t.Errorf("inventory rows: %d, want %d (one infield per item)", invTbl.Len(), wantRows)
	}

	// On the filtered stream, Rule 1 must be quiet — the filter already
	// suppressed every duplicate.
	if len(dups) != 0 {
		t.Errorf("dup rule fired on filtered stream: %v", dups)
	}
}

// TestDuplicateRuleOnRawStream runs Rule 1 directly on the raw stream and
// checks it detects exactly the injected duplicates.
func TestDuplicateRuleOnRawStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DupProb = 0.4
	cfg.Seed = 7
	sc := Generate(cfg)
	if sc.Truth.DuplicateReads == 0 {
		t.Fatalf("scenario has no duplicates to detect")
	}

	rs, err := rules.ParseScript(RuleScript(cfg.Lines, []string{"dup"}))
	if err != nil {
		t.Fatal(err)
	}
	var dups int
	x := rules.NewExecutor(rs, nil, rules.Procs{
		"mark_duplicate": func(rules.ActionContext, []event.Value) error {
			dups++
			return nil
		},
	}, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		Groups:   sc.Deployment.GroupFunc(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}
	// The dup family only watches the conveyor item readers; count the
	// injected duplicates on those readers.
	wantByReader := 0
	seen := map[[2]string]event.Time{}
	for _, o := range sc.Observations {
		if len(o.Reader) >= 9 && o.Reader[:9] == "pack_item" {
			k := [2]string{o.Reader, o.Object}
			if prev, ok := seen[k]; ok && o.At.Sub(prev) <= 5*time.Second {
				wantByReader++
			}
			seen[k] = o.At
		}
	}
	if dups != wantByReader {
		t.Errorf("dup rule fired %d times, want %d", dups, wantByReader)
	}
}

// TestEndToEndLocationHistoryOrder drills into one case's full route.
func TestEndToEndLocationHistoryOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lines = 1
	cfg.CasesPerLine = 1
	cfg.Badges = 0
	sc := Generate(cfg)

	rs, err := rules.ParseScript(RuleScript(1, []string{"loc"}))
	if err != nil {
		t.Fatal(err)
	}
	st := store.OpenRFID()
	x := rules.NewExecutor(rs, st, nil, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		Groups:   sc.ChainGroups(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	var caseEPC string
	for c := range sc.Truth.Containments {
		caseEPC = c
	}
	// History rows for the case, in insertion order.
	loc, _ := st.Table(store.TableLocation)
	var hist []string
	var periods [][2]event.Time
	loc.Scan(func(_ int64, r store.Row) bool {
		if r[0].Str() == caseEPC {
			hist = append(hist, r[1].Str())
			periods = append(periods, [2]event.Time{r[2].Time(), r[3].Time()})
		}
		return true
	})
	want := []string{"dock_W1", "truck_T1", "store_S1"}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("location history: %v, want %v", hist, want)
	}
	// Temporal model: consecutive periods chain, last one open (UC).
	for i := 0; i < len(periods)-1; i++ {
		if periods[i][1] != periods[i+1][0] {
			t.Errorf("period %d does not chain: %v -> %v", i, periods[i], periods[i+1])
		}
	}
	if periods[len(periods)-1][1] != store.UC {
		t.Errorf("last period should be UC: %v", periods[len(periods)-1])
	}
}

// TestEndToEndPalletizedNestedContainment: with palletizing on, cases are
// aggregated onto pallets (second containment level), the PALLET moves
// through the chain, and items resolve their location through the nested
// chain item → case → pallet → location.
func TestEndToEndPalletizedNestedContainment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lines = 1
	cfg.CasesPerLine = 4
	cfg.CasesPerPallet = 2
	cfg.Badges = 0
	sc := Generate(cfg)
	if len(sc.Truth.Pallets) != 2 {
		t.Fatalf("pallets formed: %d, want 2", len(sc.Truth.Pallets))
	}

	rs, err := rules.ParseScript(RuleScript(1, []string{"pack", "palletize", "loc"}))
	if err != nil {
		t.Fatal(err)
	}
	st := store.OpenRFID()
	x := rules.NewExecutor(rs, st, nil, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		Groups:   sc.ChainGroups(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}

	// Pallet containments reconstructed.
	for pallet, wantCases := range sc.Truth.Pallets {
		got := store.ContentsAt(st, pallet, event.MaxTime-1)
		if !reflect.DeepEqual(got, wantCases) {
			t.Errorf("pallet %s contents:\n got %v\nwant %v", pallet, got, wantCases)
		}
	}
	// An item's effective location resolves through case AND pallet.
	for caseEPC, items := range sc.Truth.Containments {
		loc, ok := store.EffectiveLocationAt(st, items[0], event.MaxTime-1)
		if !ok {
			t.Errorf("item %s (case %s) has no effective location", items[0], caseEPC)
			continue
		}
		if loc[:5] != "store" {
			t.Errorf("item %s ended at %q, want a store dock", items[0], loc)
		}
	}
	// Cases themselves have no own location rows (the pallet moved).
	locTbl, _ := st.Table(store.TableLocation)
	locTbl.Scan(func(_ int64, r store.Row) bool {
		for caseEPC := range sc.Truth.Containments {
			if r[0].Str() == caseEPC {
				t.Errorf("case %s has its own location row; only pallets move", caseEPC)
			}
		}
		return true
	})
}

func TestPalletFlushPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lines = 1
	cfg.CasesPerLine = 3
	cfg.CasesPerPallet = 2
	cfg.Badges = 0
	sc := Generate(cfg)
	if len(sc.Truth.Pallets) != 2 {
		t.Fatalf("pallets: %d, want 2 (one full + one partial)", len(sc.Truth.Pallets))
	}
	sizes := map[int]int{}
	for _, cases := range sc.Truth.Pallets {
		sizes[len(cases)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("pallet sizes: %v", sizes)
	}
	if !stream.IsSorted(sc.Observations) {
		t.Errorf("palletized stream not sorted")
	}
}

func TestScenarioStatsSummary(t *testing.T) {
	// Guard against silent generator regressions: the default scenario's
	// observation count is a deterministic function of the config.
	sc := Generate(DefaultConfig())
	cfg := DefaultConfig()
	perCase := cfg.ItemsPerCase + // conveyor items
		1 + // case read
		3 + // dock, truck, store
		cfg.ShelfCycles*cfg.ItemsPerCase + // shelf cycles
		int(cfg.SellFraction*float64(cfg.ItemsPerCase)) // sold
	perLine := cfg.CasesPerLine*perCase + cfg.Badges // laptops
	// Escorts add one badge observation each; count them from truth.
	want := cfg.Lines*perLine + len(sc.Truth.Escorted)
	if len(sc.Observations) != want {
		t.Fatalf("observations: %d, want %d", len(sc.Observations), want)
	}
	if testing.Verbose() {
		fmt.Printf("scenario: %d observations over %s\n", len(sc.Observations),
			time.Duration(sc.Observations[len(sc.Observations)-1].At))
	}
}

// TestScenarioCanonicalize: after canonicalizing through an intern table,
// the stream is value-identical and every repeated sighting of a reader
// or EPC shares one string instance.
func TestScenarioCanonicalize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	sc := Generate(cfg)
	before := make([]event.Observation, len(sc.Observations))
	copy(before, sc.Observations)

	in := event.NewInterner()
	sc.Canonicalize(in)
	if len(sc.Observations) != len(before) {
		t.Fatal("canonicalize changed the stream length")
	}
	first := map[string]*byte{}
	for i, o := range sc.Observations {
		if o != before[i] {
			t.Fatalf("observation %d changed value: %+v vs %+v", i, o, before[i])
		}
		for _, s := range []string{o.Reader, o.Object} {
			if p, ok := first[s]; ok {
				if unsafe.StringData(s) != p {
					t.Fatalf("observation %d: %q is not the canonical instance", i, s)
				}
			} else {
				first[s] = unsafe.StringData(s)
			}
		}
	}
	if in.Len() != len(first) {
		t.Errorf("intern table has %d entries, distinct strings %d", in.Len(), len(first))
	}
}
