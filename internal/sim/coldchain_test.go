package sim

import (
	"reflect"
	"strconv"
	"testing"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/rules"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
	"rcep/internal/stream"
)

func TestGenerateColdChainDeterministic(t *testing.T) {
	a := GenerateColdChain(DefaultColdChainConfig())
	b := GenerateColdChain(DefaultColdChainConfig())
	if !reflect.DeepEqual(a.Observations, b.Observations) {
		t.Fatalf("cold-chain generation not deterministic")
	}
	if !stream.IsSorted(a.Observations) {
		t.Fatalf("cold-chain stream not sorted")
	}
	if len(a.Truth.Excursions) == 0 || len(a.Truth.Jumps) == 0 {
		t.Fatalf("scenario degenerate: %+v", a.Truth)
	}
}

// TestColdChainEndToEnd: the aggregate-guarded TSEQ+ rule finds exactly
// the ground-truth excursions (warm-but-short runs and long-but-cold
// runs stay silent), and the inequality-guarded SEQ rule finds exactly
// the warm-up jumps.
func TestColdChainEndToEnd(t *testing.T) {
	sc := GenerateColdChain(DefaultColdChainConfig())

	rs, err := rules.ParseScript(ColdChainRules)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if _, err := sqlmini.Exec(st, ColdChainDDL, nil); err != nil {
		t.Fatal(err)
	}
	type excursion struct {
		count int
		peak  float64
	}
	var excursions []excursion
	var jumps [][2]string
	procs := rules.Procs{
		"excursion_alarm": func(_ rules.ActionContext, args []event.Value) error {
			peak, err := strconv.ParseFloat(args[1].String(), 64)
			if err != nil {
				return err
			}
			excursions = append(excursions, excursion{count: int(args[0].Int()), peak: peak})
			return nil
		},
		"jump_alarm": func(_ rules.ActionContext, args []event.Value) error {
			jumps = append(jumps, [2]string{args[0].Str(), args[1].Str()})
			return nil
		},
	}
	x := rules.NewExecutor(rs, st, procs, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}

	if len(excursions) != len(sc.Truth.Excursions) {
		t.Fatalf("excursions: %d, want %d (%v)", len(excursions), len(sc.Truth.Excursions), excursions)
	}
	for i, want := range sc.Truth.Excursions {
		got := excursions[i]
		if got.count != want.Count || got.peak != want.Peak {
			t.Errorf("excursion %d: count %d peak %g, want count %d peak %g",
				i, got.count, got.peak, want.Count, want.Peak)
		}
	}
	if !reflect.DeepEqual(jumps, sc.Truth.Jumps) {
		t.Fatalf("jumps:\n got %v\nwant %v", jumps, sc.Truth.Jumps)
	}

	// The INSERT action folded the same aggregates into EXCURSIONS.
	tbl, err := st.Table("EXCURSIONS")
	if err != nil {
		t.Fatal(err)
	}
	var rows []excursion
	tbl.Scan(func(_ int64, r store.Row) bool {
		rows = append(rows, excursion{count: int(r[0].Int()), peak: r[2].Float()})
		return true
	})
	if len(rows) != len(sc.Truth.Excursions) {
		t.Fatalf("EXCURSIONS rows: %d, want %d", len(rows), len(sc.Truth.Excursions))
	}
	for i, want := range sc.Truth.Excursions {
		if rows[i].count != want.Count || rows[i].peak != want.Peak {
			t.Errorf("EXCURSIONS row %d: %+v, want count %d peak %g", i, rows[i], want.Count, want.Peak)
		}
	}
}
