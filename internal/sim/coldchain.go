package sim

import (
	"math/rand"
	"strconv"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/stream"
)

// Cold-chain scenario: a chilled dock zone logs temperature probes as
// RFID sensor observations whose object field carries the reading
// (degrees Celsius as a decimal string). Two rules exercise the guarded
// rule language end to end: a windowed-aggregate rule detects an
// excursion — a run of at least three readings whose peak exceeds 8°C —
// and an inequality rule flags a sudden warm-up between two consecutive
// door-probe readings.

// ColdChainConfig parameterizes a cold-chain scenario.
type ColdChainConfig struct {
	Seed int64
	// Runs is the number of reading bursts on the chill sensor; bursts
	// are separated by more than the 90s adjacency bound, so each is one
	// TSEQ+ run.
	Runs int
	// WarmEvery makes every n-th run an excursion (≥3 readings peaking
	// above 8°C). The run after each excursion is generated warm but
	// too short to satisfy COUNT(v) >= 3.
	WarmEvery int
	// JumpPairs is the number of door-probe reading pairs; roughly half
	// jump by more than 5°C.
	JumpPairs int
}

// DefaultColdChainConfig returns a small scenario.
func DefaultColdChainConfig() ColdChainConfig {
	return ColdChainConfig{Seed: 7, Runs: 8, WarmEvery: 3, JumpPairs: 6}
}

// ColdExcursion is one ground-truth temperature excursion.
type ColdExcursion struct {
	Count int     // readings in the run
	Peak  float64 // maximum reading
}

// ColdChainTruth is the scenario's ground truth.
type ColdChainTruth struct {
	Excursions []ColdExcursion
	Jumps      [][2]string // (v1, v2) probe pairs with v2 > v1 + 5
}

// ColdChainScenario bundles the stream with its ground truth.
type ColdChainScenario struct {
	Observations []event.Observation
	Truth        ColdChainTruth
}

// ColdChainRules is the scenario's rule script. It expects an EXCURSIONS
// table (ColdChainDDL) and procedures excursion_alarm and jump_alarm.
const ColdChainRules = `
-- Excursion: a run of chill readings (adjacent within 90s) with at
-- least three readings peaking above 8°C. The INSERT folds the run's
-- collected column through scalar aggregates.
CREATE RULE excursion, cold chain excursion
ON WITHIN(TSEQ+(observation('chill', v, t), 0sec, 90sec), 30min) WHERE MAX(v) > 8 AND COUNT(v) >= 3
IF true
DO INSERT INTO EXCURSIONS VALUES (COUNT(v), AVG(v), MAX(v), event_begin, event_end);
   excursion_alarm(COUNT(v), MAX(v))

-- Jump: a warm-up of more than 5°C between two door-probe readings
-- close together in time.
CREATE RULE warmjump, sudden warmup
ON WITHIN(SEQ(observation('probe', v1, t1) ; observation('probe', v2, t2)), 10sec) WHERE v2 > v1 + 5
IF true
DO jump_alarm(v1, v2)
`

// ColdChainDDL creates the EXCURSIONS table the rules write into.
const ColdChainDDL = `CREATE TABLE EXCURSIONS (n INT, mean REAL, peak REAL, tstart TIME, tend TIME)`

func tempStr(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// GenerateColdChain builds the scenario deterministically.
func GenerateColdChain(cfg ColdChainConfig) *ColdChainScenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &ColdChainScenario{}
	var obs []event.Observation
	t := event.Time(0)
	add := func(reader string, v float64, at event.Time) {
		obs = append(obs, event.Observation{Reader: reader, Object: tempStr(v), At: at})
	}

	// Chill-sensor bursts. Cold runs stay below 8°C; every WarmEvery-th
	// run peaks above it with enough readings to count as an excursion;
	// the run right after an excursion is warm but too short, pinning
	// the COUNT(v) >= 3 conjunct.
	shortWarm := false
	for run := 0; run < cfg.Runs; run++ {
		warm := cfg.WarmEvery > 0 && run%cfg.WarmEvery == cfg.WarmEvery-1
		n := 3 + rng.Intn(4)
		if shortWarm {
			n = 2
		}
		peak, peakAt := 0.0, rng.Intn(n)
		for i := 0; i < n; i++ {
			v := 2 + rng.Float64()*5 // 2–7°C: safely cold
			if (warm || shortWarm) && i == peakAt {
				v = 9 + rng.Float64()*3 // 9–12°C: excursion peak
			}
			v = float64(int(v*10)) / 10 // one decimal, like the probe
			if v > peak {
				peak = v
			}
			add("chill", v, t)
			t = t.Add(time.Duration(20+rng.Intn(60)) * time.Second)
		}
		if warm && n >= 3 {
			sc.Truth.Excursions = append(sc.Truth.Excursions, ColdExcursion{Count: n, Peak: peak})
		}
		shortWarm = warm
		t = t.Add(5 * time.Minute) // > 90s: the run closes
	}

	// Door-probe pairs, isolated by more than the 10s pairing window so
	// chronicle consumption is unambiguous.
	for i := 0; i < cfg.JumpPairs; i++ {
		v1 := 2 + rng.Float64()*4
		v1 = float64(int(v1*10)) / 10
		delta := 1 + rng.Float64()*3 // small drift: no jump
		if i%2 == 0 {
			delta = 6 + rng.Float64()*4 // > 5°C warm-up
		}
		v2 := float64(int((v1+delta)*10)) / 10
		add("probe", v1, t)
		add("probe", v2, t.Add(4*time.Second))
		if v2 > v1+5 {
			sc.Truth.Jumps = append(sc.Truth.Jumps, [2]string{tempStr(v1), tempStr(v2)})
		}
		t = t.Add(time.Minute)
	}

	stream.Sort(obs)
	sc.Observations = obs
	return sc
}
