package sim

import (
	"math/rand"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/stream"
)

// Library scenario: the paper's §1 lists library check-in/check-out among
// RFID's applications. A checkout desk reads a book tag and the patron's
// card within a short window (an AND join of two typed objects); a
// security gate at the exit flags books leaving without an open loan
// (a rule whose CONDITION queries the data store).

// GID object classes for the library scenario.
const (
	ClassBook   = 10
	ClassPatron = 11
)

// LibraryConfig parameterizes a library scenario.
type LibraryConfig struct {
	Seed      int64
	Patrons   int
	Books     int
	Loans     int     // checkout events to generate
	Returns   float64 // fraction of loans returned before the exit
	TheftRate float64 // fraction of exits with a book never checked out
}

// DefaultLibraryConfig returns a small scenario.
func DefaultLibraryConfig() LibraryConfig {
	return LibraryConfig{
		Seed: 1, Patrons: 4, Books: 10, Loans: 6,
		Returns: 0.5, TheftRate: 0.25,
	}
}

// LibraryTruth is the scenario's ground truth.
type LibraryTruth struct {
	Loans    map[string]string // book → patron
	Returned []string          // books returned at the desk
	Thefts   []string          // books carried out with no open loan
}

// LibraryScenario bundles the stream with its metadata.
type LibraryScenario struct {
	Observations []event.Observation
	Registry     interface{ TypeOf(string) string }
	Truth        LibraryTruth
}

// LibraryRules is the scenario's rule script. It expects a LOANS table
// (see LibraryLoansDDL) and procedures checkout_receipt and theft_alarm.
const LibraryRules = `
-- Checkout: a book and a patron card on the desk within 2 seconds.
DEFINE DeskBook   = observation('desk', b, tb), type(b) = 'book'
DEFINE DeskPatron = observation('desk', p, tp), type(p) = 'patron'
CREATE RULE checkout, checkout association
ON WITHIN(DeskBook AND DeskPatron, 2sec)
IF true
DO UPDATE LOANS SET tend = tb WHERE book = b AND tend = 'UC';
   INSERT INTO LOANS VALUES (b, p, tb, 'UC');
   checkout_receipt(b, p)

-- Return: the book alone on the return desk closes the open loan.
CREATE RULE bookreturn, return handling
ON observation('returns', b, t), type(b) = 'book'
IF true
DO UPDATE LOANS SET tend = t WHERE book = b AND tend = 'UC'

-- Security: a book at the exit gate with NO open loan is a theft.
CREATE RULE gate, security gate
ON observation('gate', b, t), type(b) = 'book'
IF NOT EXISTS (SELECT * FROM LOANS WHERE book = b AND tend = 'UC')
DO theft_alarm(b, t)
`

// LibraryLoansDDL creates the LOANS table the rules write into.
const LibraryLoansDDL = `CREATE TABLE LOANS (book STRING, patron STRING, tstart TIME, tend TIME)`

// GenerateLibrary builds the scenario deterministically.
func GenerateLibrary(cfg LibraryConfig) *LibraryScenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := NewRegistry()
	reg.MapGIDClass(ClassBook, "book")
	reg.MapGIDClass(ClassPatron, "patron")

	books := make([]string, cfg.Books)
	for i := range books {
		books[i] = gid(ClassBook, uint64(1000+i))
	}
	patrons := make([]string, cfg.Patrons)
	for i := range patrons {
		patrons[i] = gid(ClassPatron, uint64(2000+i))
	}

	sc := &LibraryScenario{
		Registry: reg,
		Truth:    LibraryTruth{Loans: map[string]string{}},
	}
	var obs []event.Observation
	t := event.Time(0)
	add := func(reader, object string, at event.Time) {
		obs = append(obs, event.Observation{Reader: reader, Object: object, At: at})
	}

	// Checkouts: book then card on the desk ~1s apart; loans spaced 30s.
	// loanOrder keeps generation deterministic (maps iterate randomly).
	loaned := map[string]bool{}
	var loanOrder []string
	for i := 0; i < cfg.Loans && i < len(books); i++ {
		book := books[i]
		patron := patrons[rng.Intn(len(patrons))]
		add("desk", book, t)
		add("desk", patron, t.Add(time.Second))
		sc.Truth.Loans[book] = patron
		loaned[book] = true
		loanOrder = append(loanOrder, book)
		t = t.Add(30 * time.Second)
	}

	// Some loans are returned; returned books stay inside (passing the
	// gate after a return would correctly alarm, since the loan closed).
	for i, book := range loanOrder {
		if float64(i) < cfg.Returns*float64(len(loanOrder)) {
			add("returns", book, t)
			sc.Truth.Returned = append(sc.Truth.Returned, book)
			t = t.Add(10 * time.Second)
		}
	}
	returned := map[string]bool{}
	for _, b := range sc.Truth.Returned {
		returned[b] = true
	}

	// Exits: loaned-and-not-returned books pass legitimately; some never-
	// loaned books are carried out (thefts).
	for _, book := range loanOrder {
		if !returned[book] {
			add("gate", book, t)
			t = t.Add(5 * time.Second)
		}
	}
	theftBudget := int(cfg.TheftRate * float64(len(books)))
	for _, book := range books {
		if theftBudget == 0 {
			break
		}
		if !loaned[book] {
			add("gate", book, t)
			sc.Truth.Thefts = append(sc.Truth.Thefts, book)
			t = t.Add(5 * time.Second)
			theftBudget--
		}
	}

	stream.Sort(obs)
	sc.Observations = obs
	return sc
}
