package sim

import (
	"math/rand"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/stream"
)

// Baggage-handling scenario: bags are tagged at check-in and read again
// by the loader portal at the aircraft. Two window-scoped negation rules
// cover both mishandling directions: a bag checked in but not loaded
// within the service window is lost; a bag seen at the loader with no
// check-in in the preceding window is a stray (e.g. a mis-sorted
// transfer bag).

// BaggageConfig parameterizes a baggage scenario.
type BaggageConfig struct {
	Seed int64
	// Bags is the number of normally handled bags (loaded in time).
	Bags int
	// Late bags are loaded after the 5min service window: lost, not stray.
	Late int
	// Never bags are checked in and never loaded: lost.
	Never int
	// Stray bags appear at the loader with no check-in at all: stray.
	Stray int
	// VeryLate bags are loaded more than 10min after check-in: lost AND
	// stray (the load's look-back window no longer sees the check-in).
	VeryLate int
}

// DefaultBaggageConfig returns a small scenario.
func DefaultBaggageConfig() BaggageConfig {
	return BaggageConfig{Seed: 11, Bags: 10, Late: 2, Never: 2, Stray: 2, VeryLate: 1}
}

// BaggageTruth is the scenario's ground truth: bag EPCs per outcome.
type BaggageTruth struct {
	Lost  []string
	Stray []string
}

// BaggageScenario bundles the stream with its registry and ground truth.
type BaggageScenario struct {
	Observations []event.Observation
	Registry     interface{ TypeOf(string) string }
	Truth        BaggageTruth
}

// BaggageRules is the scenario's rule script. It expects a MISHANDLED
// table (BaggageDDL) and procedures lost_bag and stray_bag.
const BaggageRules = `
-- Lost: checked in, then no loader read within the 5min service window.
CREATE RULE lostbag, bag not loaded in time
ON SEQ(observation('checkin', b, t1) ; NOT observation('load', b, t2) WITHIN 5min)
IF true
DO INSERT INTO MISHANDLED VALUES (b, 'lost', event_end);
   lost_bag(b)

-- Stray: a loader read with no check-in in the 10min before it.
CREATE RULE straybag, bag loaded without checkin
ON SEQ(NOT observation('checkin', c, u1) WITHIN 10min ; observation('load', c, u2))
IF true
DO INSERT INTO MISHANDLED VALUES (c, 'stray', event_end);
   stray_bag(c)
`

// BaggageDDL creates the MISHANDLED table the rules write into.
const BaggageDDL = `CREATE TABLE MISHANDLED (bag STRING, kind STRING, at TIME)`

// GenerateBaggage builds the scenario deterministically.
func GenerateBaggage(cfg BaggageConfig) *BaggageScenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := NewRegistry()
	sc := &BaggageScenario{Registry: reg}
	var obs []event.Observation
	add := func(reader, object string, at event.Time) {
		obs = append(obs, event.Observation{Reader: reader, Object: object, At: at})
	}

	t := event.Time(0)
	serial := uint64(0)
	bag := func() string {
		serial++
		return gid(ClassCase, serial)
	}
	checkin := func(id string) event.Time {
		at := t
		add("checkin", id, at)
		t = t.Add(time.Duration(20+rng.Intn(40)) * time.Second)
		return at
	}

	for i := 0; i < cfg.Bags; i++ {
		id := bag()
		at := checkin(id)
		add("load", id, at.Add(time.Duration(1+rng.Intn(4))*time.Minute))
	}
	for i := 0; i < cfg.Late; i++ {
		id := bag()
		at := checkin(id)
		add("load", id, at.Add(time.Duration(6+rng.Intn(3))*time.Minute))
		sc.Truth.Lost = append(sc.Truth.Lost, id)
	}
	for i := 0; i < cfg.Never; i++ {
		id := bag()
		checkin(id)
		sc.Truth.Lost = append(sc.Truth.Lost, id)
	}
	for i := 0; i < cfg.Stray; i++ {
		id := bag()
		add("load", id, t)
		t = t.Add(time.Duration(20+rng.Intn(40)) * time.Second)
		sc.Truth.Stray = append(sc.Truth.Stray, id)
	}
	for i := 0; i < cfg.VeryLate; i++ {
		id := bag()
		at := checkin(id)
		add("load", id, at.Add(time.Duration(11+rng.Intn(4))*time.Minute))
		sc.Truth.Lost = append(sc.Truth.Lost, id)
		sc.Truth.Stray = append(sc.Truth.Stray, id)
	}

	stream.Sort(obs)
	sc.Observations = obs
	return sc
}
