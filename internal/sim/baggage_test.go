package sim

import (
	"reflect"
	"sort"
	"testing"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/rules"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
	"rcep/internal/stream"
)

func TestGenerateBaggageDeterministic(t *testing.T) {
	a := GenerateBaggage(DefaultBaggageConfig())
	b := GenerateBaggage(DefaultBaggageConfig())
	if !reflect.DeepEqual(a.Observations, b.Observations) {
		t.Fatalf("baggage generation not deterministic")
	}
	if !stream.IsSorted(a.Observations) {
		t.Fatalf("baggage stream not sorted")
	}
	if len(a.Truth.Lost) == 0 || len(a.Truth.Stray) == 0 {
		t.Fatalf("scenario degenerate: %+v", a.Truth)
	}
}

// TestBaggageEndToEnd: the two window-scoped negation rules find exactly
// the ground-truth mishandled bags — on-time bags trip neither rule,
// late bags only the lost rule, stray bags only the stray rule, and
// very late bags both.
func TestBaggageEndToEnd(t *testing.T) {
	sc := GenerateBaggage(DefaultBaggageConfig())

	rs, err := rules.ParseScript(BaggageRules)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if _, err := sqlmini.Exec(st, BaggageDDL, nil); err != nil {
		t.Fatal(err)
	}
	var lost, stray []string
	procs := rules.Procs{
		"lost_bag": func(_ rules.ActionContext, args []event.Value) error {
			lost = append(lost, args[0].Str())
			return nil
		},
		"stray_bag": func(_ rules.ActionContext, args []event.Value) error {
			stray = append(stray, args[0].Str())
			return nil
		},
	}
	x := rules.NewExecutor(rs, st, procs, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}

	sorted := func(in []string) []string {
		out := append([]string(nil), in...)
		sort.Strings(out)
		return out
	}
	if got, want := sorted(lost), sorted(sc.Truth.Lost); !reflect.DeepEqual(got, want) {
		t.Errorf("lost bags:\n got %v\nwant %v", got, want)
	}
	if got, want := sorted(stray), sorted(sc.Truth.Stray); !reflect.DeepEqual(got, want) {
		t.Errorf("stray bags:\n got %v\nwant %v", got, want)
	}

	// Every alarm also left a MISHANDLED row.
	tbl, err := st.Table("MISHANDLED")
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	tbl.Scan(func(_ int64, _ store.Row) bool {
		rows++
		return true
	})
	if want := len(sc.Truth.Lost) + len(sc.Truth.Stray); rows != want {
		t.Fatalf("MISHANDLED rows: %d, want %d", rows, want)
	}
}
