package sim

import (
	"reflect"
	"sort"
	"testing"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/rules"
	"rcep/internal/sqlmini"
	"rcep/internal/store"
	"rcep/internal/stream"
)

func TestGenerateLibraryDeterministic(t *testing.T) {
	a := GenerateLibrary(DefaultLibraryConfig())
	b := GenerateLibrary(DefaultLibraryConfig())
	if !reflect.DeepEqual(a.Observations, b.Observations) {
		t.Fatalf("library generation not deterministic")
	}
	if !stream.IsSorted(a.Observations) {
		t.Fatalf("library stream not sorted")
	}
	if len(a.Truth.Loans) == 0 || len(a.Truth.Thefts) == 0 || len(a.Truth.Returned) == 0 {
		t.Fatalf("scenario degenerate: %+v", a.Truth)
	}
}

// TestLibraryEndToEnd: the AND-join checkout rule associates books with
// patrons, returns close loans, and the gate rule's store-backed
// condition catches exactly the thefts.
func TestLibraryEndToEnd(t *testing.T) {
	sc := GenerateLibrary(DefaultLibraryConfig())

	rs, err := rules.ParseScript(LibraryRules)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if _, err := sqlmini.Exec(st, LibraryLoansDDL, nil); err != nil {
		t.Fatal(err)
	}
	var receipts [][2]string
	var alarms []string
	procs := rules.Procs{
		"checkout_receipt": func(_ rules.ActionContext, args []event.Value) error {
			receipts = append(receipts, [2]string{args[0].Str(), args[1].Str()})
			return nil
		},
		"theft_alarm": func(_ rules.ActionContext, args []event.Value) error {
			alarms = append(alarms, args[0].Str())
			return nil
		},
	}
	x := rules.NewExecutor(rs, st, procs, nil)
	b := graph.NewBuilder()
	if err := x.Bind(b); err != nil {
		t.Fatal(err)
	}
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		TypeOf:   sc.Registry.TypeOf,
		OnDetect: x.Dispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sc.Observations {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if errs := x.Errors(); len(errs) > 0 {
		t.Fatalf("executor errors: %v", errs)
	}

	// Every loan got a receipt with the right patron.
	if len(receipts) != len(sc.Truth.Loans) {
		t.Fatalf("receipts: %d, want %d", len(receipts), len(sc.Truth.Loans))
	}
	for _, r := range receipts {
		if sc.Truth.Loans[r[0]] != r[1] {
			t.Errorf("loan %s → %s, truth says %s", r[0], r[1], sc.Truth.Loans[r[0]])
		}
	}
	// Alarms are exactly the thefts.
	sort.Strings(alarms)
	wantAlarms := append([]string(nil), sc.Truth.Thefts...)
	sort.Strings(wantAlarms)
	if !reflect.DeepEqual(alarms, wantAlarms) {
		t.Fatalf("alarms:\n got %v\nwant %v", alarms, wantAlarms)
	}
	// Returned books have closed loans; unreturned loans stay open.
	loansTbl, _ := st.Table("LOANS")
	open := map[string]bool{}
	loansTbl.Scan(func(_ int64, r store.Row) bool {
		if r[3].Time() == store.UC {
			open[r[0].Str()] = true
		}
		return true
	})
	for _, ret := range sc.Truth.Returned {
		if open[ret] {
			t.Errorf("returned book %s still has an open loan", ret)
		}
	}
	wantOpen := len(sc.Truth.Loans) - len(sc.Truth.Returned)
	if len(open) != wantOpen {
		t.Errorf("open loans: %d, want %d", len(open), wantOpen)
	}
}
