package epc

import "testing"

func BenchmarkSGTINEncode(b *testing.B) {
	s := SGTIN{Filter: 3, Partition: 5, CompanyPrefix: 1234567, ItemRef: 654321, Serial: 400001}
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSGTINDecode(b *testing.B) {
	s := SGTIN{Filter: 3, Partition: 5, CompanyPrefix: 1234567, ItemRef: 654321, Serial: 400001}
	bin, _ := s.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSGTIN(bin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHexRoundTrip(b *testing.B) {
	g, _ := GID{Manager: 4711, Class: 2, Serial: 99}.Encode()
	hx := g.Hex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin, err := ParseHex(hx)
		if err != nil {
			b.Fatal(err)
		}
		_ = bin.Hex()
	}
}

func BenchmarkRegistryTypeOf(b *testing.B) {
	r := NewRegistry()
	r.MapGIDClass(2, "case")
	g, _ := GID{Manager: 4711, Class: 2, Serial: 99}.Encode()
	hx := g.Hex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.TypeOf(hx) != "case" {
			b.Fatal("wrong type")
		}
	}
}
