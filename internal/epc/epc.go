// Package epc implements the subset of the EPC Tag Data Standard v1.1
// (reference [1] of the paper) needed by an RFID middleware: encoding and
// decoding of SGTIN-96, SSCC-96 and GID-96 tags, their URI forms, and the
// type(o) extraction function the rule language uses to classify objects
// (paper §2.1).
package epc

import (
	"fmt"
	"strconv"
	"strings"
)

// Binary is a 96-bit EPC in big-endian byte order.
type Binary [12]byte

// Hex renders the EPC as 24 uppercase hex digits.
func (b Binary) Hex() string {
	const digits = "0123456789ABCDEF"
	out := make([]byte, 24)
	for i, by := range b {
		out[2*i] = digits[by>>4]
		out[2*i+1] = digits[by&0xF]
	}
	return string(out)
}

// ParseHex parses a 24-digit hex EPC.
func ParseHex(s string) (Binary, error) {
	var b Binary
	if len(s) != 24 {
		return b, fmt.Errorf("epc: hex EPC must be 24 digits, got %d", len(s))
	}
	for i := 0; i < 12; i++ {
		v, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			return b, fmt.Errorf("epc: bad hex EPC %q: %v", s, err)
		}
		b[i] = byte(v)
	}
	return b, nil
}

// getBits extracts width bits starting at bit offset start (bit 0 is the
// most significant bit of b[0]).
func getBits(b Binary, start, width int) uint64 {
	var v uint64
	for i := start; i < start+width; i++ {
		byteIdx, bitIdx := i/8, 7-i%8
		v = v<<1 | uint64(b[byteIdx]>>bitIdx&1)
	}
	return v
}

// setBits stores the low width bits of v at bit offset start.
func setBits(b *Binary, start, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := v >> (width - 1 - i) & 1
		pos := start + i
		byteIdx, bitIdx := pos/8, 7-pos%8
		if bit == 1 {
			b[byteIdx] |= 1 << bitIdx
		} else {
			b[byteIdx] &^= 1 << bitIdx
		}
	}
}

// Scheme identifies an EPC encoding scheme by its 8-bit header.
type Scheme uint8

// Supported 96-bit schemes and their TDS v1.1 header values.
const (
	SchemeUnknown Scheme = 0x00
	SchemeSGTIN96 Scheme = 0x30
	SchemeSSCC96  Scheme = 0x31
	SchemeSGLN96  Scheme = 0x32
	SchemeGID96   Scheme = 0x35
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeSGTIN96:
		return "sgtin-96"
	case SchemeSSCC96:
		return "sscc-96"
	case SchemeSGLN96:
		return "sgln-96"
	case SchemeGID96:
		return "gid-96"
	}
	return fmt.Sprintf("unknown(0x%02X)", uint8(s))
}

// SchemeOf returns the scheme of a binary EPC.
func SchemeOf(b Binary) Scheme {
	switch Scheme(b[0]) {
	case SchemeSGTIN96, SchemeSSCC96, SchemeSGLN96, SchemeGID96:
		return Scheme(b[0])
	}
	return SchemeUnknown
}

// partition describes one row of a TDS partition table.
type partition struct {
	companyBits, companyDigits int
	refBits, refDigits         int
}

// sgtinPartitions is TDS v1.1 table 6 (SGTIN-96): company prefix +
// item reference split.
var sgtinPartitions = [7]partition{
	{40, 12, 4, 1},
	{37, 11, 7, 2},
	{34, 10, 10, 3},
	{30, 9, 14, 4},
	{27, 8, 17, 5},
	{24, 7, 20, 6},
	{20, 6, 24, 7},
}

// ssccPartitions is TDS v1.1 table 9 (SSCC-96): company prefix + serial
// reference split.
var ssccPartitions = [7]partition{
	{40, 12, 18, 5},
	{37, 11, 21, 6},
	{34, 10, 24, 7},
	{30, 9, 28, 8},
	{27, 8, 31, 9},
	{24, 7, 34, 10},
	{20, 6, 38, 11},
}

func pow10(n int) uint64 {
	v := uint64(1)
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

func checkField(name string, v uint64, bits, digits int) error {
	if bits < 64 && v >= 1<<bits {
		return fmt.Errorf("epc: %s %d exceeds %d bits", name, v, bits)
	}
	if digits > 0 && digits < 20 && v >= pow10(digits) {
		return fmt.Errorf("epc: %s %d exceeds %d decimal digits", name, v, digits)
	}
	return nil
}

// SGTIN is a serialized GTIN: one trade item instance (e.g. one tagged
// product).
type SGTIN struct {
	Filter        uint8  // 3 bits
	Partition     uint8  // 0..6
	CompanyPrefix uint64 // per partition
	ItemRef       uint64 // per partition (includes indicator digit)
	Serial        uint64 // 38 bits
}

// Encode packs the SGTIN into a 96-bit EPC.
func (s SGTIN) Encode() (Binary, error) {
	var b Binary
	if s.Filter > 7 {
		return b, fmt.Errorf("epc: sgtin filter %d exceeds 3 bits", s.Filter)
	}
	if s.Partition > 6 {
		return b, fmt.Errorf("epc: sgtin partition %d out of range", s.Partition)
	}
	p := sgtinPartitions[s.Partition]
	if err := checkField("company prefix", s.CompanyPrefix, p.companyBits, p.companyDigits); err != nil {
		return b, err
	}
	if err := checkField("item reference", s.ItemRef, p.refBits, p.refDigits); err != nil {
		return b, err
	}
	if err := checkField("serial", s.Serial, 38, 0); err != nil {
		return b, err
	}
	setBits(&b, 0, 8, uint64(SchemeSGTIN96))
	setBits(&b, 8, 3, uint64(s.Filter))
	setBits(&b, 11, 3, uint64(s.Partition))
	setBits(&b, 14, p.companyBits, s.CompanyPrefix)
	setBits(&b, 14+p.companyBits, p.refBits, s.ItemRef)
	setBits(&b, 58, 38, s.Serial)
	return b, nil
}

// URI renders the tag URI form urn:epc:tag:sgtin-96:f.company.item.serial.
func (s SGTIN) URI() string {
	return fmt.Sprintf("urn:epc:tag:sgtin-96:%d.%d.%d.%d", s.Filter, s.CompanyPrefix, s.ItemRef, s.Serial)
}

// DecodeSGTIN unpacks an SGTIN-96 EPC.
func DecodeSGTIN(b Binary) (SGTIN, error) {
	var s SGTIN
	if Scheme(b[0]) != SchemeSGTIN96 {
		return s, fmt.Errorf("epc: not an sgtin-96 (header 0x%02X)", b[0])
	}
	s.Filter = uint8(getBits(b, 8, 3))
	s.Partition = uint8(getBits(b, 11, 3))
	if s.Partition > 6 {
		return s, fmt.Errorf("epc: sgtin partition %d out of range", s.Partition)
	}
	p := sgtinPartitions[s.Partition]
	s.CompanyPrefix = getBits(b, 14, p.companyBits)
	s.ItemRef = getBits(b, 14+p.companyBits, p.refBits)
	s.Serial = getBits(b, 58, 38)
	return s, nil
}

// SSCC is a serial shipping container code: one logistics unit (case,
// pallet).
type SSCC struct {
	Filter        uint8
	Partition     uint8
	CompanyPrefix uint64
	SerialRef     uint64
}

// Encode packs the SSCC into a 96-bit EPC (the final 24 bits are zero per
// the standard).
func (s SSCC) Encode() (Binary, error) {
	var b Binary
	if s.Filter > 7 {
		return b, fmt.Errorf("epc: sscc filter %d exceeds 3 bits", s.Filter)
	}
	if s.Partition > 6 {
		return b, fmt.Errorf("epc: sscc partition %d out of range", s.Partition)
	}
	p := ssccPartitions[s.Partition]
	if err := checkField("company prefix", s.CompanyPrefix, p.companyBits, p.companyDigits); err != nil {
		return b, err
	}
	if err := checkField("serial reference", s.SerialRef, p.refBits, p.refDigits); err != nil {
		return b, err
	}
	setBits(&b, 0, 8, uint64(SchemeSSCC96))
	setBits(&b, 8, 3, uint64(s.Filter))
	setBits(&b, 11, 3, uint64(s.Partition))
	setBits(&b, 14, p.companyBits, s.CompanyPrefix)
	setBits(&b, 14+p.companyBits, p.refBits, s.SerialRef)
	return b, nil
}

// URI renders urn:epc:tag:sscc-96:f.company.serial.
func (s SSCC) URI() string {
	return fmt.Sprintf("urn:epc:tag:sscc-96:%d.%d.%d", s.Filter, s.CompanyPrefix, s.SerialRef)
}

// DecodeSSCC unpacks an SSCC-96 EPC.
func DecodeSSCC(b Binary) (SSCC, error) {
	var s SSCC
	if Scheme(b[0]) != SchemeSSCC96 {
		return s, fmt.Errorf("epc: not an sscc-96 (header 0x%02X)", b[0])
	}
	s.Filter = uint8(getBits(b, 8, 3))
	s.Partition = uint8(getBits(b, 11, 3))
	if s.Partition > 6 {
		return s, fmt.Errorf("epc: sscc partition %d out of range", s.Partition)
	}
	p := ssccPartitions[s.Partition]
	s.CompanyPrefix = getBits(b, 14, p.companyBits)
	s.SerialRef = getBits(b, 14+p.companyBits, p.refBits)
	return s, nil
}

// sglnPartitions is TDS v1.1 table 12 (SGLN-96): company prefix +
// location reference split.
var sglnPartitions = [7]partition{
	{40, 12, 1, 0},
	{37, 11, 4, 1},
	{34, 10, 7, 2},
	{30, 9, 11, 3},
	{27, 8, 14, 4},
	{24, 7, 17, 5},
	{20, 6, 21, 6},
}

// SGLN is a serialized global location number: readers, docks, shelves
// and other physical locations carry these.
type SGLN struct {
	Filter        uint8
	Partition     uint8
	CompanyPrefix uint64
	LocationRef   uint64
	Extension     uint64 // 41 bits
}

// Encode packs the SGLN into a 96-bit EPC.
func (s SGLN) Encode() (Binary, error) {
	var b Binary
	if s.Filter > 7 {
		return b, fmt.Errorf("epc: sgln filter %d exceeds 3 bits", s.Filter)
	}
	if s.Partition > 6 {
		return b, fmt.Errorf("epc: sgln partition %d out of range", s.Partition)
	}
	p := sglnPartitions[s.Partition]
	if err := checkField("company prefix", s.CompanyPrefix, p.companyBits, p.companyDigits); err != nil {
		return b, err
	}
	if err := checkField("location reference", s.LocationRef, p.refBits, p.refDigits); err != nil {
		return b, err
	}
	if err := checkField("extension", s.Extension, 41, 0); err != nil {
		return b, err
	}
	setBits(&b, 0, 8, uint64(SchemeSGLN96))
	setBits(&b, 8, 3, uint64(s.Filter))
	setBits(&b, 11, 3, uint64(s.Partition))
	setBits(&b, 14, p.companyBits, s.CompanyPrefix)
	setBits(&b, 14+p.companyBits, p.refBits, s.LocationRef)
	setBits(&b, 55, 41, s.Extension)
	return b, nil
}

// URI renders urn:epc:tag:sgln-96:f.company.location.extension.
func (s SGLN) URI() string {
	return fmt.Sprintf("urn:epc:tag:sgln-96:%d.%d.%d.%d", s.Filter, s.CompanyPrefix, s.LocationRef, s.Extension)
}

// DecodeSGLN unpacks an SGLN-96 EPC.
func DecodeSGLN(b Binary) (SGLN, error) {
	var s SGLN
	if Scheme(b[0]) != SchemeSGLN96 {
		return s, fmt.Errorf("epc: not an sgln-96 (header 0x%02X)", b[0])
	}
	s.Filter = uint8(getBits(b, 8, 3))
	s.Partition = uint8(getBits(b, 11, 3))
	if s.Partition > 6 {
		return s, fmt.Errorf("epc: sgln partition %d out of range", s.Partition)
	}
	p := sglnPartitions[s.Partition]
	s.CompanyPrefix = getBits(b, 14, p.companyBits)
	s.LocationRef = getBits(b, 14+p.companyBits, p.refBits)
	s.Extension = getBits(b, 55, 41)
	return s, nil
}

// GID is a general identifier: manager / object class / serial, with no
// GS1 company prefix semantics. The simulator uses GIDs because the object
// class field maps naturally onto type(o).
type GID struct {
	Manager uint64 // 28 bits
	Class   uint64 // 24 bits
	Serial  uint64 // 36 bits
}

// Encode packs the GID into a 96-bit EPC.
func (g GID) Encode() (Binary, error) {
	var b Binary
	if err := checkField("manager number", g.Manager, 28, 0); err != nil {
		return b, err
	}
	if err := checkField("object class", g.Class, 24, 0); err != nil {
		return b, err
	}
	if err := checkField("serial", g.Serial, 36, 0); err != nil {
		return b, err
	}
	setBits(&b, 0, 8, uint64(SchemeGID96))
	setBits(&b, 8, 28, g.Manager)
	setBits(&b, 36, 24, g.Class)
	setBits(&b, 60, 36, g.Serial)
	return b, nil
}

// URI renders urn:epc:tag:gid-96:manager.class.serial.
func (g GID) URI() string {
	return fmt.Sprintf("urn:epc:tag:gid-96:%d.%d.%d", g.Manager, g.Class, g.Serial)
}

// DecodeGID unpacks a GID-96 EPC.
func DecodeGID(b Binary) (GID, error) {
	var g GID
	if Scheme(b[0]) != SchemeGID96 {
		return g, fmt.Errorf("epc: not a gid-96 (header 0x%02X)", b[0])
	}
	g.Manager = getBits(b, 8, 28)
	g.Class = getBits(b, 36, 24)
	g.Serial = getBits(b, 60, 36)
	return g, nil
}

// ParseURI parses any supported tag URI back into its typed form.
func ParseURI(uri string) (any, error) {
	rest, ok := strings.CutPrefix(uri, "urn:epc:tag:")
	if !ok {
		return nil, fmt.Errorf("epc: not a tag URI: %q", uri)
	}
	scheme, fields, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("epc: malformed tag URI: %q", uri)
	}
	parts := strings.Split(fields, ".")
	nums := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("epc: bad URI field %q in %q", p, uri)
		}
		nums[i] = v
	}
	switch scheme {
	case "sgtin-96":
		if len(nums) != 4 {
			return nil, fmt.Errorf("epc: sgtin-96 URI needs 4 fields, got %d", len(nums))
		}
		s := SGTIN{Filter: uint8(nums[0]), CompanyPrefix: nums[1], ItemRef: nums[2], Serial: nums[3]}
		s.Partition = partitionForCompany(s.CompanyPrefix, sgtinPartitions)
		return s, nil
	case "sscc-96":
		if len(nums) != 3 {
			return nil, fmt.Errorf("epc: sscc-96 URI needs 3 fields, got %d", len(nums))
		}
		s := SSCC{Filter: uint8(nums[0]), CompanyPrefix: nums[1], SerialRef: nums[2]}
		s.Partition = partitionForCompany(s.CompanyPrefix, ssccPartitions)
		return s, nil
	case "sgln-96":
		if len(nums) != 4 {
			return nil, fmt.Errorf("epc: sgln-96 URI needs 4 fields, got %d", len(nums))
		}
		s := SGLN{Filter: uint8(nums[0]), CompanyPrefix: nums[1], LocationRef: nums[2], Extension: nums[3]}
		s.Partition = partitionForCompany(s.CompanyPrefix, sglnPartitions)
		return s, nil
	case "gid-96":
		if len(nums) != 3 {
			return nil, fmt.Errorf("epc: gid-96 URI needs 3 fields, got %d", len(nums))
		}
		return GID{Manager: nums[0], Class: nums[1], Serial: nums[2]}, nil
	}
	return nil, fmt.Errorf("epc: unsupported scheme %q", scheme)
}

// partitionForCompany picks the smallest partition whose company-prefix
// capacity holds the value (URI forms omit the partition, so we infer it
// from the digit count the value needs).
func partitionForCompany(company uint64, table [7]partition) uint8 {
	for p := 6; p >= 0; p-- {
		if company < pow10(table[p].companyDigits) {
			return uint8(p)
		}
	}
	return 0
}
