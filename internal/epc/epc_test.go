package epc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSGTINRoundTrip(t *testing.T) {
	s := SGTIN{Filter: 3, Partition: 5, CompanyPrefix: 1234567, ItemRef: 654321, Serial: 400001}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if SchemeOf(b) != SchemeSGTIN96 {
		t.Fatalf("scheme: %v", SchemeOf(b))
	}
	got, err := DecodeSGTIN(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
}

func TestSGTINRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := uint8(r.Intn(7))
		pt := sgtinPartitions[p]
		s := SGTIN{
			Filter:        uint8(r.Intn(8)),
			Partition:     p,
			CompanyPrefix: r.Uint64() % pow10(pt.companyDigits),
			ItemRef:       r.Uint64() % pow10(pt.refDigits),
			Serial:        r.Uint64() % (1 << 38),
		}
		b, err := s.Encode()
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		got, err := DecodeSGTIN(b)
		if err != nil || got != s {
			t.Logf("seed %d: round trip %+v -> %+v (%v)", seed, s, got, err)
			return false
		}
		// Hex round trip too.
		b2, err := ParseHex(b.Hex())
		return err == nil && b2 == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSSCCRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := uint8(r.Intn(7))
		pt := ssccPartitions[p]
		s := SSCC{
			Filter:        uint8(r.Intn(8)),
			Partition:     p,
			CompanyPrefix: r.Uint64() % pow10(pt.companyDigits),
			SerialRef:     r.Uint64() % pow10(pt.refDigits),
		}
		b, err := s.Encode()
		if err != nil {
			// Serial ref digits can exceed bit capacity at partition 0
			// (5 digits < 2^18, so this should never fail).
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		got, err := DecodeSSCC(b)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGIDRoundTripProperty(t *testing.T) {
	f := func(m, c, s uint64) bool {
		g := GID{Manager: m % (1 << 28), Class: c % (1 << 24), Serial: s % (1 << 36)}
		b, err := g.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeGID(b)
		return err == nil && got == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSGLNRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := uint8(r.Intn(7))
		pt := sglnPartitions[p]
		refMax := pow10(pt.refDigits)
		s := SGLN{
			Filter:        uint8(r.Intn(8)),
			Partition:     p,
			CompanyPrefix: r.Uint64() % pow10(pt.companyDigits),
			LocationRef:   r.Uint64() % refMax,
			Extension:     r.Uint64() % (1 << 41),
		}
		b, err := s.Encode()
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		if SchemeOf(b) != SchemeSGLN96 {
			return false
		}
		got, err := DecodeSGLN(b)
		if err != nil || got != s {
			t.Logf("seed %d: %+v -> %+v (%v)", seed, s, got, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSGLNURIAndValidation(t *testing.T) {
	s := SGLN{Filter: 1, Partition: 5, CompanyPrefix: 9991234, LocationRef: 42, Extension: 7}
	if got := s.URI(); got != "urn:epc:tag:sgln-96:1.9991234.42.7" {
		t.Errorf("sgln URI: %s", got)
	}
	parsed, err := ParseURI(s.URI())
	if err != nil {
		t.Fatal(err)
	}
	ps := parsed.(SGLN)
	if ps.CompanyPrefix != s.CompanyPrefix || ps.LocationRef != s.LocationRef || ps.Extension != s.Extension {
		t.Errorf("parsed: %+v", ps)
	}
	if _, err := ps.Encode(); err != nil {
		t.Errorf("inferred partition cannot encode: %v", err)
	}
	if _, err := (SGLN{Filter: 9}).Encode(); err == nil {
		t.Errorf("bad filter accepted")
	}
	if _, err := (SGLN{Extension: 1 << 41}).Encode(); err == nil {
		t.Errorf("oversized extension accepted")
	}
	if _, err := ParseURI("urn:epc:tag:sgln-96:1.2.3"); err == nil {
		t.Errorf("short sgln URI accepted")
	}
	g, _ := GID{Manager: 1, Class: 2, Serial: 3}.Encode()
	if _, err := DecodeSGLN(g); err == nil {
		t.Errorf("decoding GID as SGLN accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := (SGTIN{Filter: 8}).Encode(); err == nil {
		t.Errorf("filter 8 accepted")
	}
	if _, err := (SGTIN{Partition: 7}).Encode(); err == nil {
		t.Errorf("partition 7 accepted")
	}
	if _, err := (SGTIN{Partition: 6, CompanyPrefix: 1_000_000}).Encode(); err == nil {
		t.Errorf("company prefix over 6 digits accepted at partition 6")
	}
	if _, err := (SGTIN{Serial: 1 << 38}).Encode(); err == nil {
		t.Errorf("serial over 38 bits accepted")
	}
	if _, err := (GID{Manager: 1 << 28}).Encode(); err == nil {
		t.Errorf("GID manager over 28 bits accepted")
	}
	if _, err := (SSCC{Partition: 9}).Encode(); err == nil {
		t.Errorf("SSCC partition 9 accepted")
	}
}

func TestDecodeWrongScheme(t *testing.T) {
	g, _ := GID{Manager: 1, Class: 2, Serial: 3}.Encode()
	if _, err := DecodeSGTIN(g); err == nil {
		t.Errorf("decoding GID as SGTIN accepted")
	}
	if _, err := DecodeSSCC(g); err == nil {
		t.Errorf("decoding GID as SSCC accepted")
	}
	s, _ := SGTIN{Partition: 1, CompanyPrefix: 1, ItemRef: 1, Serial: 1}.Encode()
	if _, err := DecodeGID(s); err == nil {
		t.Errorf("decoding SGTIN as GID accepted")
	}
}

func TestParseHexErrors(t *testing.T) {
	if _, err := ParseHex("1234"); err == nil {
		t.Errorf("short hex accepted")
	}
	if _, err := ParseHex(strings.Repeat("Z", 24)); err == nil {
		t.Errorf("non-hex accepted")
	}
}

func TestURIs(t *testing.T) {
	s := SGTIN{Filter: 1, Partition: 5, CompanyPrefix: 1234567, ItemRef: 12, Serial: 999}
	if got := s.URI(); got != "urn:epc:tag:sgtin-96:1.1234567.12.999" {
		t.Errorf("sgtin URI: %s", got)
	}
	parsed, err := ParseURI(s.URI())
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := parsed.(SGTIN)
	if !ok || ps.CompanyPrefix != s.CompanyPrefix || ps.Serial != s.Serial {
		t.Errorf("parsed: %+v", parsed)
	}
	// The inferred partition must be able to encode the value.
	if _, err := ps.Encode(); err != nil {
		t.Errorf("inferred partition cannot encode: %v", err)
	}

	g := GID{Manager: 77, Class: 4, Serial: 123456}
	pg, err := ParseURI(g.URI())
	if err != nil {
		t.Fatal(err)
	}
	if pg.(GID) != g {
		t.Errorf("gid URI round trip: %+v", pg)
	}

	c := SSCC{Filter: 2, Partition: 4, CompanyPrefix: 87654321, SerialRef: 1234}
	pc, err := ParseURI(c.URI())
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.(SSCC); got.CompanyPrefix != c.CompanyPrefix || got.SerialRef != c.SerialRef {
		t.Errorf("sscc URI round trip: %+v", got)
	}
}

func TestParseURIErrors(t *testing.T) {
	bad := []string{
		"urn:epc:id:sgtin:1.2.3",
		"not-a-uri",
		"urn:epc:tag:sgtin-96:1.2.3",   // 3 fields, needs 4
		"urn:epc:tag:gid-96:1.2",       // 2 fields, needs 3
		"urn:epc:tag:sscc-96:1.2.x",    // non-numeric
		"urn:epc:tag:mystery-96:1.2.3", // unknown scheme
		"urn:epc:tag:gid-96",           // missing fields entirely
	}
	for _, u := range bad {
		if _, err := ParseURI(u); err == nil {
			t.Errorf("ParseURI(%q) should fail", u)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.MapGIDClass(4, "laptop")
	r.MapGIDClass(5, "superuser")
	r.MapSGTIN(1234567, 12, "case")
	r.Map("plainid-9", "pallet")
	r.SetFallback(func(o string) string {
		if strings.HasPrefix(o, "emp-") {
			return "employee"
		}
		return ""
	})

	laptop, _ := GID{Manager: 1, Class: 4, Serial: 42}.Encode()
	super, _ := GID{Manager: 1, Class: 5, Serial: 7}.Encode()
	unknownGID, _ := GID{Manager: 1, Class: 99, Serial: 7}.Encode()
	caseEPC, _ := SGTIN{Partition: 5, CompanyPrefix: 1234567, ItemRef: 12, Serial: 1}.Encode()

	cases := map[string]string{
		laptop.Hex():     "laptop",
		super.Hex():      "superuser",
		caseEPC.Hex():    "case",
		"plainid-9":      "pallet",
		"emp-33":         "employee",
		unknownGID.Hex(): "",
		"mystery":        "",
	}
	for obj, want := range cases {
		if got := r.TypeOf(obj); got != want {
			t.Errorf("TypeOf(%q) = %q, want %q", obj, got, want)
		}
	}
}

func TestRegistryExplicitBeatsDecoded(t *testing.T) {
	r := NewRegistry()
	r.MapGIDClass(4, "laptop")
	b, _ := GID{Manager: 1, Class: 4, Serial: 42}.Encode()
	r.Map(b.Hex(), "special-laptop")
	if got := r.TypeOf(b.Hex()); got != "special-laptop" {
		t.Errorf("explicit mapping should win: %q", got)
	}
}

func TestBitHelpers(t *testing.T) {
	var b Binary
	setBits(&b, 5, 11, 0x5A5)
	if got := getBits(b, 5, 11); got != 0x5A5 {
		t.Fatalf("bit round trip: %x", got)
	}
	// Overwrite with zeros must clear.
	setBits(&b, 5, 11, 0)
	if got := getBits(b, 0, 24); got != 0 {
		t.Fatalf("clearing failed: %x", got)
	}
}
