package epc

import "sync"

// Registry implements the user-defined type(o) function of paper §2.1:
// "the type can be extracted from its EPC value with a user-defined
// extraction function, or specified by a user with a mapping function".
// It resolves, in order: an explicit per-EPC mapping, a GID object-class
// mapping, an SGTIN (company prefix, item reference) mapping, and finally
// a fallback function.
type Registry struct {
	mu       sync.RWMutex
	explicit map[string]string    // raw object string → type
	gidClass map[uint64]string    // GID object class → type
	sgtin    map[[2]uint64]string // (company prefix, item ref) → type
	fallback func(object string) string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		explicit: map[string]string{},
		gidClass: map[uint64]string{},
		sgtin:    map[[2]uint64]string{},
	}
}

// Map assigns a type to one specific object identifier (any string).
func (r *Registry) Map(object, typ string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.explicit[object] = typ
}

// MapGIDClass assigns a type to every GID-96 EPC with the given object
// class.
func (r *Registry) MapGIDClass(class uint64, typ string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gidClass[class] = typ
}

// MapSGTIN assigns a type to every SGTIN-96 EPC with the given company
// prefix and item reference.
func (r *Registry) MapSGTIN(companyPrefix, itemRef uint64, typ string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sgtin[[2]uint64{companyPrefix, itemRef}] = typ
}

// SetFallback installs a catch-all extraction function.
func (r *Registry) SetFallback(fn func(object string) string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = fn
}

// TypeOf resolves the type of an object identifier. Objects in hex EPC
// form are decoded; unknown objects yield "".
func (r *Registry) TypeOf(object string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if t, ok := r.explicit[object]; ok {
		return t
	}
	if b, err := ParseHex(object); err == nil {
		switch SchemeOf(b) {
		case SchemeGID96:
			if g, err := DecodeGID(b); err == nil {
				if t, ok := r.gidClass[g.Class]; ok {
					return t
				}
			}
		case SchemeSGTIN96:
			if s, err := DecodeSGTIN(b); err == nil {
				if t, ok := r.sgtin[[2]uint64{s.CompanyPrefix, s.ItemRef}]; ok {
					return t
				}
			}
		case SchemeSSCC96:
			// Logistics units have no item reference; rely on explicit
			// or fallback mappings.
		}
	}
	if r.fallback != nil {
		return r.fallback(object)
	}
	return ""
}
