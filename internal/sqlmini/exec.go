package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

// Result is the outcome of executing a statement.
type Result struct {
	Columns      []string        // for SELECT
	Rows         [][]event.Value // for SELECT
	RowsAffected int             // for INSERT/UPDATE/DELETE
}

// Exec parses and executes one statement against the store, resolving
// named parameters from params (the triggering event's bindings).
func Exec(s *store.Store, sql string, params event.Bindings) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return ExecStmt(s, st, params)
}

// ExecStmt executes a parsed statement.
func ExecStmt(s *store.Store, st Stmt, params event.Bindings) (*Result, error) {
	switch x := st.(type) {
	case *CreateTable:
		if err := s.CreateTable(x.Table, store.Schema(x.Cols)); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *Insert:
		return execInsert(s, x, params)
	case *Update:
		return execUpdate(s, x, params)
	case *Delete:
		return execDelete(s, x, params)
	case *Select:
		return execSelect(s, x, params)
	case *Explain:
		return explain(s, x.Stmt, params)
	}
	return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
}

// explain renders the execution plan as one row per step.
func explain(s *store.Store, st Stmt, params event.Bindings) (*Result, error) {
	res := &Result{Columns: []string{"step"}}
	add := func(format string, args ...any) {
		res.Rows = append(res.Rows, []event.Value{event.StringValue(fmt.Sprintf(format, args...))})
	}
	describeAccess := func(table string, where Expr) {
		tbl, err := s.Table(table)
		if err != nil {
			add("scan %s (table missing at plan time)", table)
			return
		}
		if where != nil && !hasQualifiedRef(where) {
			if p := indexProbe(s, tbl, where, params); p != nil {
				add("index probe %s.%s = %s", table, p.indexCol, p.indexVal)
				add("filter remaining predicate")
				return
			}
		}
		add("full scan %s (%d rows)", table, tbl.Len())
		if where != nil {
			add("filter WHERE")
		}
	}
	switch x := st.(type) {
	case *Select:
		describeAccess(x.Table, x.Where)
		for _, j := range x.Joins {
			add("nested-loop inner join %s ON ...", j.Table)
		}
		if len(x.GroupBy) > 0 {
			add("group by %v", x.GroupBy)
		}
		if x.Having != nil {
			add("filter HAVING")
		}
		if len(x.OrderBy) > 0 {
			add("sort by %d key(s)", len(x.OrderBy))
		}
		if x.Distinct {
			add("distinct")
		}
		if x.Limit >= 0 {
			add("limit %d", x.Limit)
		}
	case *Update:
		describeAccess(x.Table, x.Where)
		add("update %d column(s)", len(x.Sets))
	case *Delete:
		describeAccess(x.Table, x.Where)
		add("delete matching rows")
	case *Insert:
		if x.Bulk {
			add("bulk insert into %s (one row per list element)", x.Table)
		} else {
			add("insert into %s", x.Table)
		}
	case *CreateTable:
		add("create table %s (%d columns)", x.Table, len(x.Cols))
	case *Explain:
		add("explain explain: the plan is a plan")
	default:
		return nil, fmt.Errorf("sqlmini: cannot explain %T", st)
	}
	return res, nil
}

// Funcs registers user-defined scalar functions callable from expressions
// (rule conditions use them as "user-defined boolean functions", §3).
// Names are matched case-insensitively and take precedence over built-ins.
type Funcs map[string]func(args []event.Value) (event.Value, error)

// EvalExpr evaluates a standalone expression (no row context) with named
// parameters and optional user functions. Used for rule conditions.
func EvalExpr(s *store.Store, x Expr, params event.Bindings, funcs Funcs) (event.Value, error) {
	ev := &env{store: s, params: params, funcs: funcs}
	return ev.eval(x)
}

// Truthy reports whether a value counts as true in a condition.
func Truthy(v event.Value) bool { return truthy(v) }

// env resolves identifiers during expression evaluation: first the current
// row's columns, then the named parameters.
type env struct {
	store  *store.Store
	schema store.Schema
	row    store.Row
	params event.Bindings
	funcs  Funcs
}

func (e *env) resolve(name string) (event.Value, error) {
	if e.schema != nil {
		if i := e.schema.Index(name); i >= 0 {
			if e.row == nil {
				return event.Null, fmt.Errorf("sqlmini: column %s referenced outside a row context", name)
			}
			return e.row[i], nil
		}
	}
	if v, ok := e.params.Get(name); ok {
		return v, nil
	}
	return event.Null, fmt.Errorf("sqlmini: unknown column or parameter %q", name)
}

// eval evaluates an expression.
func (e *env) eval(x Expr) (event.Value, error) {
	switch n := x.(type) {
	case *Lit:
		return n.V, nil
	case *Ref:
		return e.resolve(n.Name)
	case *Unary:
		v, err := e.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		switch n.Op {
		case "NOT":
			return event.BoolValue(!truthy(v)), nil
		case "-":
			switch v.Kind() {
			case event.KindInt:
				return event.IntValue(-v.Int()), nil
			case event.KindFloat:
				return event.FloatValue(-v.Float()), nil
			}
			return event.Null, fmt.Errorf("sqlmini: cannot negate %s", v.Kind())
		}
		return event.Null, fmt.Errorf("sqlmini: unknown unary op %s", n.Op)
	case *Binary:
		return e.evalBinary(n)
	case *Call:
		return e.evalScalarCall(n)
	case *Exists:
		if e.store == nil {
			return event.Null, fmt.Errorf("sqlmini: EXISTS requires a data store")
		}
		res, err := execSelect(e.store, n.Sub, e.params)
		if err != nil {
			return event.Null, err
		}
		found := len(res.Rows) > 0
		if n.Negate {
			found = !found
		}
		return event.BoolValue(found), nil
	case *InList:
		v, err := e.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		var found bool
		if n.Sub != nil {
			found, err = inSubquery(e.store, n.Sub, v, e.params)
			if err != nil {
				return event.Null, err
			}
		} else {
			for _, le := range n.List {
				lv, err := e.eval(le)
				if err != nil {
					return event.Null, err
				}
				if v.Equal(lv) {
					found = true
					break
				}
			}
		}
		if n.Negate {
			found = !found
		}
		return event.BoolValue(found), nil
	case *IsNull:
		v, err := e.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		isNull := v.IsNull()
		if n.Negate {
			isNull = !isNull
		}
		return event.BoolValue(isNull), nil
	case *Like:
		v, err := e.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		p, err := e.eval(n.Pattern)
		if err != nil {
			return event.Null, err
		}
		m := likeMatch(v.String(), p.String())
		if n.Negate {
			m = !m
		}
		return event.BoolValue(m), nil
	}
	return event.Null, fmt.Errorf("sqlmini: unsupported expression %T", x)
}

// inSubquery evaluates x IN (SELECT ...): the subselect must project a
// single column; membership compares with coercion-free equality.
func inSubquery(s *store.Store, sub *Select, v event.Value, params event.Bindings) (bool, error) {
	if s == nil {
		return false, fmt.Errorf("sqlmini: IN (SELECT ...) requires a data store")
	}
	res, err := execSelect(s, sub, params)
	if err != nil {
		return false, err
	}
	if len(res.Columns) != 1 {
		return false, fmt.Errorf("sqlmini: IN subquery must select exactly one column, got %d", len(res.Columns))
	}
	for _, row := range res.Rows {
		if v.Equal(row[0]) {
			return true, nil
		}
	}
	return false, nil
}

func (e *env) evalBinary(n *Binary) (event.Value, error) {
	switch n.Op {
	case "AND":
		l, err := e.eval(n.L)
		if err != nil {
			return event.Null, err
		}
		if !truthy(l) {
			return event.BoolValue(false), nil
		}
		r, err := e.eval(n.R)
		if err != nil {
			return event.Null, err
		}
		return event.BoolValue(truthy(r)), nil
	case "OR":
		l, err := e.eval(n.L)
		if err != nil {
			return event.Null, err
		}
		if truthy(l) {
			return event.BoolValue(true), nil
		}
		r, err := e.eval(n.R)
		if err != nil {
			return event.Null, err
		}
		return event.BoolValue(truthy(r)), nil
	}
	l, err := e.eval(n.L)
	if err != nil {
		return event.Null, err
	}
	r, err := e.eval(n.R)
	if err != nil {
		return event.Null, err
	}
	switch n.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		return compareValues(n.Op, l, r)
	case "||":
		return event.StringValue(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, r)
	}
	return event.Null, fmt.Errorf("sqlmini: unknown operator %s", n.Op)
}

// compareValues compares with coercion so 'UC' string literals compare
// against time columns and numeric kinds mix freely.
func compareValues(op string, l, r event.Value) (event.Value, error) {
	if l.IsNull() || r.IsNull() {
		// SQL-ish: comparisons with null are false (no three-valued logic).
		return event.BoolValue(false), nil
	}
	cl, cr := l, r
	if l.Kind() != r.Kind() {
		if c, err := store.Coerce(r, l.Kind()); err == nil {
			cr = c
		} else if c, err := store.Coerce(l, r.Kind()); err == nil {
			cl = c
		}
	}
	cmp, ok := cl.Compare(cr)
	if !ok {
		// Last resort: compare display forms for equality ops only.
		if op == "=" {
			return event.BoolValue(store.Format(cl) == store.Format(cr)), nil
		}
		if op == "!=" {
			return event.BoolValue(store.Format(cl) != store.Format(cr)), nil
		}
		return event.Null, fmt.Errorf("sqlmini: cannot compare %s with %s", l.Kind(), r.Kind())
	}
	switch op {
	case "=":
		return event.BoolValue(cmp == 0), nil
	case "!=":
		return event.BoolValue(cmp != 0), nil
	case "<":
		return event.BoolValue(cmp < 0), nil
	case "<=":
		return event.BoolValue(cmp <= 0), nil
	case ">":
		return event.BoolValue(cmp > 0), nil
	case ">=":
		return event.BoolValue(cmp >= 0), nil
	}
	return event.Null, fmt.Errorf("sqlmini: bad comparison %s", op)
}

func arith(op string, l, r event.Value) (event.Value, error) {
	lk, rk := l.Kind(), r.Kind()
	numeric := func(k event.Kind) bool {
		return k == event.KindInt || k == event.KindFloat || k == event.KindTime
	}
	if !numeric(lk) || !numeric(rk) {
		return event.Null, fmt.Errorf("sqlmini: %s needs numeric operands, got %s and %s", op, lk, rk)
	}
	if lk == event.KindFloat || rk == event.KindFloat {
		a, b := l.Float(), r.Float()
		switch op {
		case "+":
			return event.FloatValue(a + b), nil
		case "-":
			return event.FloatValue(a - b), nil
		case "*":
			return event.FloatValue(a * b), nil
		case "/":
			if b == 0 {
				return event.Null, fmt.Errorf("sqlmini: division by zero")
			}
			return event.FloatValue(a / b), nil
		case "%":
			return event.Null, fmt.Errorf("sqlmini: %% needs integers")
		}
	}
	a, b := asInt(l), asInt(r)
	switch op {
	case "+":
		return event.IntValue(a + b), nil
	case "-":
		return event.IntValue(a - b), nil
	case "*":
		return event.IntValue(a * b), nil
	case "/":
		if b == 0 {
			return event.Null, fmt.Errorf("sqlmini: division by zero")
		}
		return event.IntValue(a / b), nil
	case "%":
		if b == 0 {
			return event.Null, fmt.Errorf("sqlmini: modulo by zero")
		}
		return event.IntValue(a % b), nil
	}
	return event.Null, fmt.Errorf("sqlmini: bad arithmetic op %s", op)
}

func asInt(v event.Value) int64 {
	if v.Kind() == event.KindTime {
		return int64(v.Time())
	}
	return v.Int()
}

func truthy(v event.Value) bool {
	switch v.Kind() {
	case event.KindBool:
		return v.Bool()
	case event.KindNull:
		return false
	case event.KindInt:
		return v.Int() != 0
	case event.KindFloat:
		return v.Float() != 0
	case event.KindString:
		return v.Str() != ""
	}
	return true
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune).
func likeMatch(s, pattern string) bool {
	return likeRec([]rune(s), []rune(pattern))
}

func likeRec(s, p []rune) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func (e *env) evalScalarCall(c *Call) (event.Value, error) {
	if c.isAggregate() {
		if e.schema != nil {
			// Row contexts (table WHERE scans, UPDATE/DELETE) aggregate
			// only through the SELECT projection path.
			return event.Null, fmt.Errorf("sqlmini: aggregate %s outside SELECT projection", c.Name)
		}
		if err := checkScalarAggregate(c); err != nil {
			return event.Null, err
		}
		v, err := e.eval(c.Args[0])
		if err != nil {
			return event.Null, err
		}
		return foldScalarAggregate(c.Name, v)
	}
	var args []event.Value
	for _, a := range c.Args {
		v, err := e.eval(a)
		if err != nil {
			return event.Null, err
		}
		args = append(args, v)
	}
	return e.applyScalar(c.Name, args)
}

// checkScalarAggregate validates an aggregate call used as a scalar —
// outside a SELECT projection, in rule conditions and actions, where the
// argument is a list binding collected from a SEQ+ run.
func checkScalarAggregate(c *Call) error {
	if c.Star {
		return fmt.Errorf("sqlmini: %s(*) is only valid in a SELECT projection", c.Name)
	}
	if len(c.Args) != 1 {
		return fmt.Errorf("sqlmini: %s needs exactly one argument", c.Name)
	}
	return nil
}

// foldScalarAggregate folds one already-evaluated value: a list folds
// element-wise, a scalar is a one-element column, null an empty one. The
// semantics (null skipping, int/float widening, comparison families) are
// shared with SELECT aggregation via event.FoldAgg, and the error texts
// match aggregate()'s.
func foldScalarAggregate(name string, v event.Value) (event.Value, error) {
	op, ok := event.AggOpNamed(name)
	if !ok {
		return event.Null, fmt.Errorf("sqlmini: unknown aggregate %s", name)
	}
	res, err := event.FoldAgg(op, v)
	if err != nil {
		var ae *event.AggError
		if errors.As(err, &ae) {
			if ae.Incomparable {
				return event.Null, fmt.Errorf("sqlmini: %s over incomparable values", name)
			}
			return event.Null, fmt.Errorf("sqlmini: %s over non-numeric value %s", name, ae.BadVal)
		}
		return event.Null, fmt.Errorf("sqlmini: %s: %w", name, err)
	}
	return res, nil
}

// applyScalar dispatches a scalar call on already-evaluated arguments.
// User functions are looked up dynamically (they may be registered after
// statements are parsed or prepared) and shadow built-ins, matching
// case-insensitively.
func (e *env) applyScalar(cname string, args []event.Value) (event.Value, error) {
	if e.funcs != nil {
		for name, fn := range e.funcs {
			if strings.EqualFold(name, cname) {
				return fn(args)
			}
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlmini: %s needs %d argument(s), got %d", cname, n, len(args))
		}
		return nil
	}
	switch strings.ToLower(cname) {
	case "upper":
		if err := need(1); err != nil {
			return event.Null, err
		}
		return event.StringValue(strings.ToUpper(args[0].String())), nil
	case "lower":
		if err := need(1); err != nil {
			return event.Null, err
		}
		return event.StringValue(strings.ToLower(args[0].String())), nil
	case "length":
		if err := need(1); err != nil {
			return event.Null, err
		}
		return event.IntValue(int64(len(args[0].String()))), nil
	case "abs":
		if err := need(1); err != nil {
			return event.Null, err
		}
		switch args[0].Kind() {
		case event.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return event.IntValue(v), nil
		case event.KindFloat:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return event.FloatValue(v), nil
		}
		return event.Null, fmt.Errorf("sqlmini: abs needs a number")
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return event.Null, nil
	}
	return event.Null, fmt.Errorf("sqlmini: unknown function %s", cname)
}

// execInsert inserts one row, or — for BULK INSERT — one row per element
// of the list-valued parameters referenced by the VALUES exprs (Rule 4's
// containment aggregation).
func execInsert(s *store.Store, ins *Insert, params event.Bindings) (*Result, error) {
	tbl, err := s.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	// Column mapping.
	positions := make([]int, len(ins.Values))
	if len(ins.Cols) > 0 {
		if len(ins.Cols) != len(ins.Values) {
			return nil, fmt.Errorf("sqlmini: %d columns but %d values", len(ins.Cols), len(ins.Values))
		}
		for i, c := range ins.Cols {
			p := schema.Index(c)
			if p < 0 {
				return nil, fmt.Errorf("sqlmini: %s: no such column %s", ins.Table, c)
			}
			positions[i] = p
		}
	} else {
		if len(ins.Values) != len(schema) {
			return nil, fmt.Errorf("sqlmini: %s has %d columns but %d values given", ins.Table, len(schema), len(ins.Values))
		}
		for i := range positions {
			positions[i] = i
		}
	}

	n := 1
	if ins.Bulk {
		n = bulkCardinality(params)
	}
	inserted := 0
	for i := 0; i < n; i++ {
		p := params
		if ins.Bulk {
			p = elementView(params, i)
		}
		ev := &env{store: s, params: p}
		row := make([]event.Value, len(schema))
		for j, ve := range ins.Values {
			v, err := ev.eval(ve)
			if err != nil {
				return nil, err
			}
			row[positions[j]] = v
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{RowsAffected: inserted}, nil
}

// bulkCardinality returns the common length of the list-valued bindings
// (scalar bindings repeat). With no lists the bulk insert degenerates to a
// single row.
func bulkCardinality(params event.Bindings) int {
	n := 1
	for _, kv := range params {
		if kv.Val.Kind() == event.KindList && kv.Val.Len() > n {
			n = kv.Val.Len()
		}
	}
	return n
}

// elementView projects list bindings onto their i'th element.
func elementView(params event.Bindings, i int) event.Bindings {
	out := make(event.Bindings, 0, len(params))
	for _, kv := range params {
		v := kv.Val
		if v.Kind() == event.KindList {
			if i < v.Len() {
				v = v.Elem(i)
			} else {
				v = event.Null
			}
		}
		out = append(out, event.Binding{Var: kv.Var, Val: v})
	}
	return out
}

// whereMatcher compiles the WHERE clause into a row predicate, and when an
// indexed equality conjunct exists, an index probe plan.
type plan struct {
	indexCol string
	indexVal event.Value
}

// indexProbe looks for a top-level `col = <row-independent expr>` conjunct
// over an indexed column.
func indexProbe(s *store.Store, tbl *store.Table, where Expr, params event.Bindings) *plan {
	var conjuncts []Expr
	var collect func(Expr)
	collect = func(x Expr) {
		if b, ok := x.(*Binary); ok && b.Op == "AND" {
			collect(b.L)
			collect(b.R)
			return
		}
		conjuncts = append(conjuncts, x)
	}
	if where == nil {
		return nil
	}
	collect(where)
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		try := func(colSide, valSide Expr) *plan {
			ref, ok := colSide.(*Ref)
			if !ok {
				return nil
			}
			if tbl.Schema().Index(ref.Name) < 0 || !tbl.HasIndex(ref.Name) {
				return nil
			}
			ev := &env{store: s, params: params}
			v, err := ev.eval(valSide) // fails if it references a column
			if err != nil {
				return nil
			}
			return &plan{indexCol: ref.Name, indexVal: v}
		}
		if p := try(b.L, b.R); p != nil {
			return p
		}
		if p := try(b.R, b.L); p != nil {
			return p
		}
	}
	return nil
}

func matchRows(s *store.Store, tbl *store.Table, where Expr, params event.Bindings, visit func(id int64, r store.Row) bool) error {
	ev := &env{store: s, schema: tbl.Schema(), params: params}
	check := func(id int64, r store.Row) (bool, error) {
		if where == nil {
			return true, nil
		}
		ev.row = r
		v, err := ev.eval(where)
		if err != nil {
			return false, err
		}
		return truthy(v), nil
	}
	var outerErr error
	probe := indexProbe(s, tbl, where, params)
	scan := func(id int64, r store.Row) bool {
		ok, err := check(id, r)
		if err != nil {
			outerErr = err
			return false
		}
		if !ok {
			return true
		}
		return visit(id, r)
	}
	if probe != nil {
		if err := tbl.Lookup(probe.indexCol, probe.indexVal, scan); err != nil {
			return err
		}
	} else {
		tbl.Scan(scan)
	}
	return outerErr
}

func execUpdate(s *store.Store, up *Update, params event.Bindings) (*Result, error) {
	tbl, err := s.Table(up.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	type setPos struct {
		pos int
		val Expr
	}
	var sets []setPos
	for _, a := range up.Sets {
		p := schema.Index(a.Col)
		if p < 0 {
			return nil, fmt.Errorf("sqlmini: %s: no such column %s", up.Table, a.Col)
		}
		sets = append(sets, setPos{p, a.Val})
	}
	ev := &env{store: s, schema: schema, params: params}
	var evalErr error
	n, err := tbl.Update(
		func(r store.Row) bool {
			if up.Where == nil {
				return true
			}
			ev.row = r
			v, err := ev.eval(up.Where)
			if err != nil {
				evalErr = err
				return false
			}
			return truthy(v)
		},
		func(r store.Row) (store.Row, error) {
			ev.row = r
			for _, sp := range sets {
				v, err := ev.eval(sp.val)
				if err != nil {
					return nil, err
				}
				r[sp.pos] = v
			}
			return r, nil
		},
	)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{RowsAffected: n}, nil
}

func execDelete(s *store.Store, del *Delete, params event.Bindings) (*Result, error) {
	tbl, err := s.Table(del.Table)
	if err != nil {
		return nil, err
	}
	ev := &env{store: s, schema: tbl.Schema(), params: params}
	var evalErr error
	n := tbl.Delete(func(r store.Row) bool {
		if del.Where == nil {
			return true
		}
		ev.row = r
		v, err := ev.eval(del.Where)
		if err != nil {
			evalErr = err
			return false
		}
		return truthy(v)
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return &Result{RowsAffected: n}, nil
}

// relation is an intermediate query result: qualified columns plus rows.
// Joins concatenate relations column-wise.
type relation struct {
	quals []string // table name or alias per column
	names []string
	rows  [][]event.Value
}

// errNoColumn distinguishes "not a column" (fall back to parameters) from
// genuine resolution errors like ambiguity.
var errNoColumn = fmt.Errorf("sqlmini: no such column")

// index resolves a possibly qualified column reference.
func (r *relation) index(ref string) (int, error) {
	if qual, col, ok := strings.Cut(ref, "."); ok {
		for i := range r.names {
			if strings.EqualFold(r.quals[i], qual) && strings.EqualFold(r.names[i], col) {
				return i, nil
			}
		}
		return -1, fmt.Errorf("sqlmini: no column %s.%s", qual, col)
	}
	found := -1
	for i := range r.names {
		if strings.EqualFold(r.names[i], ref) {
			if found >= 0 {
				return -1, fmt.Errorf("sqlmini: column %s is ambiguous (qualify it)", ref)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, errNoColumn
	}
	return found, nil
}

// relEnv evaluates expressions over a relation row, falling back to named
// parameters for non-column identifiers.
type relEnv struct {
	store  *store.Store
	rel    *relation
	row    []event.Value
	params event.Bindings
}

func (re *relEnv) eval(x Expr) (event.Value, error) {
	if ref, ok := x.(*Ref); ok {
		i, err := re.rel.index(ref.Name)
		if err == nil {
			return re.row[i], nil
		}
		if err != errNoColumn {
			return event.Null, err
		}
		if v, ok := re.params.Get(ref.Name); ok {
			return v, nil
		}
		return event.Null, fmt.Errorf("sqlmini: unknown column or parameter %q", ref.Name)
	}
	// Delegate everything else to the scalar evaluator with a shim
	// schema-free env; nested Refs are intercepted by copying the
	// environment rules here.
	switch n := x.(type) {
	case *Lit:
		return n.V, nil
	case *Unary:
		v, err := re.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		ev := &env{store: re.store, params: re.params}
		return ev.eval(&Unary{Op: n.Op, X: &Lit{V: v}})
	case *Binary:
		switch n.Op {
		case "AND":
			l, err := re.eval(n.L)
			if err != nil {
				return event.Null, err
			}
			if !truthy(l) {
				return event.BoolValue(false), nil
			}
			r, err := re.eval(n.R)
			if err != nil {
				return event.Null, err
			}
			return event.BoolValue(truthy(r)), nil
		case "OR":
			l, err := re.eval(n.L)
			if err != nil {
				return event.Null, err
			}
			if truthy(l) {
				return event.BoolValue(true), nil
			}
			r, err := re.eval(n.R)
			if err != nil {
				return event.Null, err
			}
			return event.BoolValue(truthy(r)), nil
		}
		l, err := re.eval(n.L)
		if err != nil {
			return event.Null, err
		}
		r, err := re.eval(n.R)
		if err != nil {
			return event.Null, err
		}
		switch n.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			return compareValues(n.Op, l, r)
		case "||":
			return event.StringValue(l.String() + r.String()), nil
		default:
			return arith(n.Op, l, r)
		}
	case *Call:
		if n.isAggregate() {
			// Row-context aggregates (a WHERE clause, a non-aggregated
			// projection mix) stay rejected: aggregation over a relation
			// happens only through the dedicated SELECT projection path.
			return event.Null, fmt.Errorf("sqlmini: aggregate %s outside SELECT projection", n.Name)
		}
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			v, err := re.eval(a)
			if err != nil {
				return event.Null, err
			}
			args[i] = &Lit{V: v}
		}
		ev := &env{store: re.store, params: re.params}
		return ev.evalScalarCall(&Call{Name: n.Name, Args: args, Star: n.Star})
	case *Exists:
		ev := &env{store: re.store, params: re.params}
		return ev.eval(n)
	case *InList:
		v, err := re.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		var found bool
		if n.Sub != nil {
			found, err = inSubquery(re.store, n.Sub, v, re.params)
			if err != nil {
				return event.Null, err
			}
		} else {
			for _, le := range n.List {
				lv, err := re.eval(le)
				if err != nil {
					return event.Null, err
				}
				if v.Equal(lv) {
					found = true
					break
				}
			}
		}
		if n.Negate {
			found = !found
		}
		return event.BoolValue(found), nil
	case *IsNull:
		v, err := re.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		isNull := v.IsNull()
		if n.Negate {
			isNull = !isNull
		}
		return event.BoolValue(isNull), nil
	case *Like:
		v, err := re.eval(n.X)
		if err != nil {
			return event.Null, err
		}
		p, err := re.eval(n.Pattern)
		if err != nil {
			return event.Null, err
		}
		m := likeMatch(v.String(), p.String())
		if n.Negate {
			m = !m
		}
		return event.BoolValue(m), nil
	}
	return event.Null, fmt.Errorf("sqlmini: unsupported expression %T", x)
}

// tableRelation loads one table as a relation, using the index probe when
// a single-table WHERE allows it (joins always scan).
func tableRelation(s *store.Store, name, alias string, where Expr, params event.Bindings) (*relation, error) {
	tbl, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	qual := alias
	if qual == "" {
		qual = tbl.Name()
	}
	rel := &relation{}
	for _, c := range tbl.Schema() {
		rel.quals = append(rel.quals, qual)
		rel.names = append(rel.names, c.Name)
	}
	if where != nil && !hasQualifiedRef(where) {
		// Fast path: push the filter into the (possibly indexed) scan.
		if err := matchRows(s, tbl, where, params, func(_ int64, r store.Row) bool {
			rel.rows = append(rel.rows, append([]event.Value(nil), r...))
			return true
		}); err != nil {
			return nil, err
		}
		return rel, nil
	}
	tbl.Scan(func(_ int64, r store.Row) bool {
		rel.rows = append(rel.rows, append([]event.Value(nil), r...))
		return true
	})
	if where != nil {
		re := &relEnv{store: s, rel: rel, params: params}
		kept := rel.rows[:0]
		for _, row := range rel.rows {
			re.row = row
			v, err := re.eval(where)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}
	return rel, nil
}

// hasQualifiedRef reports whether the expression uses any table-qualified
// column reference (those need the relation resolver, not the plain
// schema resolver).
func hasQualifiedRef(x Expr) bool {
	switch n := x.(type) {
	case nil:
		return false
	case *Ref:
		return strings.Contains(n.Name, ".")
	case *Unary:
		return hasQualifiedRef(n.X)
	case *Binary:
		return hasQualifiedRef(n.L) || hasQualifiedRef(n.R)
	case *Call:
		for _, a := range n.Args {
			if hasQualifiedRef(a) {
				return true
			}
		}
	case *InList:
		if hasQualifiedRef(n.X) {
			return true
		}
		for _, a := range n.List {
			if hasQualifiedRef(a) {
				return true
			}
		}
	case *IsNull:
		return hasQualifiedRef(n.X)
	case *Like:
		return hasQualifiedRef(n.X) || hasQualifiedRef(n.Pattern)
	}
	return false
}

// buildRelation evaluates FROM + JOINs + WHERE into one relation.
func buildRelation(s *store.Store, sel *Select, params event.Bindings) (*relation, error) {
	if len(sel.Joins) == 0 {
		// Fast path: WHERE pushed into the (possibly indexed) table scan.
		return tableRelation(s, sel.Table, sel.Alias, sel.Where, params)
	}
	rel, err := tableRelation(s, sel.Table, sel.Alias, nil, params)
	if err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		right, err := tableRelation(s, j.Table, j.Alias, nil, params)
		if err != nil {
			return nil, err
		}
		joined := &relation{
			quals: append(append([]string(nil), rel.quals...), right.quals...),
			names: append(append([]string(nil), rel.names...), right.names...),
		}
		re := &relEnv{store: s, rel: joined, params: params}
		for _, lr := range rel.rows {
			for _, rr := range right.rows {
				row := make([]event.Value, 0, len(lr)+len(rr))
				row = append(append(row, lr...), rr...)
				re.row = row
				v, err := re.eval(j.On)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					joined.rows = append(joined.rows, row)
				}
			}
		}
		rel = joined
	}
	if sel.Where != nil {
		re := &relEnv{store: s, rel: rel, params: params}
		kept := rel.rows[:0]
		for _, row := range rel.rows {
			re.row = row
			v, err := re.eval(sel.Where)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}
	return rel, nil
}

func execSelect(s *store.Store, sel *Select, params event.Bindings) (*Result, error) {
	rel, err := buildRelation(s, sel, params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	aggregated := sel.Having != nil || len(sel.GroupBy) > 0
	if !sel.Star {
		for _, it := range sel.Items {
			if hasAggregate(it.Expr) {
				aggregated = true
				break
			}
		}
	}

	// base tracks the source row behind each result row for ORDER BY.
	var base [][]event.Value
	switch {
	case sel.Star:
		if aggregated {
			return nil, fmt.Errorf("sqlmini: SELECT * with GROUP BY/HAVING is not supported")
		}
		for i := range rel.names {
			name := rel.names[i]
			if len(sel.Joins) > 0 {
				name = rel.quals[i] + "." + name
			}
			res.Columns = append(res.Columns, name)
		}
		res.Rows = rel.rows
		base = rel.rows
	case aggregated:
		if err := execAggregate(s, sel, rel, params, res); err != nil {
			return nil, err
		}
	default:
		for i, it := range sel.Items {
			res.Columns = append(res.Columns, itemName(it, i))
		}
		re := &relEnv{store: s, rel: rel, params: params}
		for _, row := range rel.rows {
			re.row = row
			var out []event.Value
			for _, it := range sel.Items {
				v, err := re.eval(it.Expr)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			res.Rows = append(res.Rows, out)
			base = append(base, row)
		}
	}

	switch {
	case len(sel.OrderBy) > 0 && !aggregated:
		if err := orderRows(s, sel, rel, base, params, res); err != nil {
			return nil, err
		}
	case len(sel.OrderBy) > 0:
		if err := orderAggregated(sel, res); err != nil {
			return nil, err
		}
	}
	if sel.Distinct {
		seen := map[string]bool{}
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			var sb strings.Builder
			for _, v := range row {
				sb.WriteString(store.Format(v))
				sb.WriteByte('\x00')
			}
			k := sb.String()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}
	if sel.Limit >= 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return res, nil
}

// orderRows sorts the projected rows by keys evaluated against the source
// rows (aligned index-wise with the result).
func orderRows(s *store.Store, sel *Select, rel *relation, base [][]event.Value, params event.Bindings, res *Result) error {
	type keyed struct {
		keys []event.Value
		row  []event.Value
	}
	re := &relEnv{store: s, rel: rel, params: params}
	items := make([]keyed, len(res.Rows))
	for i := range res.Rows {
		if i < len(base) {
			re.row = base[i]
		}
		var keys []event.Value
		for _, k := range sel.OrderBy {
			v, err := re.eval(k.Expr)
			if err != nil {
				return err
			}
			keys = append(keys, v)
		}
		items[i] = keyed{keys, res.Rows[i]}
	}
	sort.SliceStable(items, func(a, b int) bool {
		for ki, k := range sel.OrderBy {
			cmp, ok := items[a].keys[ki].Compare(items[b].keys[ki])
			if !ok {
				cmp = strings.Compare(items[a].keys[ki].String(), items[b].keys[ki].String())
			}
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	for i := range items {
		res.Rows[i] = items[i].row
	}
	return nil
}

// orderAggregated sorts grouped/aggregated results. Keys must reference
// projected columns by name/alias or by 1-based position.
func orderAggregated(sel *Select, res *Result) error {
	positions := make([]int, len(sel.OrderBy))
	for ki, k := range sel.OrderBy {
		pos := -1
		switch x := k.Expr.(type) {
		case *Ref:
			for ci, c := range res.Columns {
				if strings.EqualFold(c, x.Name) {
					pos = ci
					break
				}
			}
		case *Lit:
			if x.V.Kind() == event.KindInt {
				p := int(x.V.Int()) - 1
				if p >= 0 && p < len(res.Columns) {
					pos = p
				}
			}
		case *Call:
			for ci, c := range res.Columns {
				if strings.EqualFold(c, x.Name) {
					pos = ci
					break
				}
			}
		}
		if pos < 0 {
			return fmt.Errorf("sqlmini: ORDER BY over aggregates must name a projected column")
		}
		positions[ki] = pos
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for ki, pos := range positions {
			cmp, ok := res.Rows[a][pos].Compare(res.Rows[b][pos])
			if !ok {
				cmp = strings.Compare(res.Rows[a][pos].String(), res.Rows[b][pos].String())
			}
			if cmp == 0 {
				continue
			}
			if sel.OrderBy[ki].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}

func itemName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if r, ok := it.Expr.(*Ref); ok {
		return r.Name
	}
	if c, ok := it.Expr.(*Call); ok {
		return strings.ToLower(c.Name)
	}
	return fmt.Sprintf("col%d", i+1)
}

// execAggregate evaluates aggregate projections, optionally grouped and
// filtered by HAVING.
func execAggregate(s *store.Store, sel *Select, rel *relation, params event.Bindings, res *Result) error {
	for i, it := range sel.Items {
		res.Columns = append(res.Columns, itemName(it, i))
	}
	groups := map[string][][]event.Value{}
	var groupOrder []string
	if len(sel.GroupBy) == 0 {
		groups[""] = rel.rows
		groupOrder = []string{""}
	} else {
		var positions []int
		for _, g := range sel.GroupBy {
			p, err := rel.index(g)
			if err != nil {
				return fmt.Errorf("sqlmini: GROUP BY: %w", err)
			}
			positions = append(positions, p)
		}
		for _, r := range rel.rows {
			var sb strings.Builder
			for _, p := range positions {
				sb.WriteString(r[p].String())
				sb.WriteByte('\x00')
			}
			k := sb.String()
			if _, seen := groups[k]; !seen {
				groupOrder = append(groupOrder, k)
			}
			groups[k] = append(groups[k], r)
		}
	}
	for _, k := range groupOrder {
		grows := groups[k]
		if sel.Having != nil {
			v, err := evalWithAggregates(s, sel.Having, rel, grows, params)
			if err != nil {
				return err
			}
			if !truthy(v) {
				continue
			}
		}
		var out []event.Value
		for _, it := range sel.Items {
			v, err := evalWithAggregates(s, it.Expr, rel, grows, params)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return nil
}

// evalWithAggregates evaluates an expression in which aggregate calls
// reduce over the group rows; other refs resolve against the first row.
func evalWithAggregates(s *store.Store, x Expr, rel *relation, rows [][]event.Value, params event.Bindings) (event.Value, error) {
	switch n := x.(type) {
	case *Call:
		if !n.isAggregate() {
			break
		}
		return aggregate(s, n, rel, rows, params)
	case *Binary:
		l, err := evalWithAggregates(s, n.L, rel, rows, params)
		if err != nil {
			return event.Null, err
		}
		r, err := evalWithAggregates(s, n.R, rel, rows, params)
		if err != nil {
			return event.Null, err
		}
		ev := &env{store: s, params: params}
		return ev.evalBinary(&Binary{Op: n.Op, L: &Lit{V: l}, R: &Lit{V: r}})
	case *Unary:
		v, err := evalWithAggregates(s, n.X, rel, rows, params)
		if err != nil {
			return event.Null, err
		}
		ev := &env{store: s, params: params}
		return ev.eval(&Unary{Op: n.Op, X: &Lit{V: v}})
	}
	re := &relEnv{store: s, rel: rel, params: params}
	if len(rows) > 0 {
		re.row = rows[0]
	} else {
		re.row = make([]event.Value, len(rel.names))
	}
	return re.eval(x)
}

func aggregate(s *store.Store, c *Call, rel *relation, rows [][]event.Value, params event.Bindings) (event.Value, error) {
	name := strings.ToLower(c.Name)
	if c.Star {
		if name != "count" {
			return event.Null, fmt.Errorf("sqlmini: %s(*) is not valid", c.Name)
		}
		return event.IntValue(int64(len(rows))), nil
	}
	if len(c.Args) != 1 {
		return event.Null, fmt.Errorf("sqlmini: %s needs exactly one argument", c.Name)
	}
	re := &relEnv{store: s, rel: rel, params: params}
	var vals []event.Value
	for _, r := range rows {
		re.row = r
		v, err := re.eval(c.Args[0])
		if err != nil {
			return event.Null, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch name {
	case "count":
		return event.IntValue(int64(len(vals))), nil
	case "sum", "avg":
		var sum float64
		isFloat := false
		for _, v := range vals {
			switch v.Kind() {
			case event.KindFloat:
				isFloat = true
				sum += v.Float()
			case event.KindInt:
				sum += float64(v.Int())
			case event.KindTime:
				sum += float64(v.Time())
			default:
				return event.Null, fmt.Errorf("sqlmini: %s over non-numeric value %s", c.Name, v)
			}
		}
		if name == "avg" {
			if len(vals) == 0 {
				return event.Null, nil
			}
			return event.FloatValue(sum / float64(len(vals))), nil
		}
		if isFloat {
			return event.FloatValue(sum), nil
		}
		return event.IntValue(int64(sum)), nil
	case "min", "max":
		if len(vals) == 0 {
			return event.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp, ok := v.Compare(best)
			if !ok {
				return event.Null, fmt.Errorf("sqlmini: %s over incomparable values", c.Name)
			}
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	}
	return event.Null, fmt.Errorf("sqlmini: unknown aggregate %s", c.Name)
}
