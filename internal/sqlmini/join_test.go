package sqlmini

import (
	"strings"
	"testing"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

// rfidDB builds a store with containment + location data for join tests.
func rfidDB(t *testing.T) *store.Store {
	t.Helper()
	s := store.OpenRFID()
	for _, sql := range []string{
		`INSERT INTO OBJECTCONTAINMENT VALUES ('i1', 'case1', 0, 'UC')`,
		`INSERT INTO OBJECTCONTAINMENT VALUES ('i2', 'case1', 0, 'UC')`,
		`INSERT INTO OBJECTCONTAINMENT VALUES ('i3', 'case2', 0, 'UC')`,
		`INSERT INTO OBJECTLOCATION VALUES ('case1', 'warehouse-1', 0, 'UC')`,
		`INSERT INTO OBJECTLOCATION VALUES ('case2', 'store-9', 0, 'UC')`,
	} {
		mustExec(t, s, sql, nil)
	}
	return s
}

func TestInnerJoin(t *testing.T) {
	s := rfidDB(t)
	// Where is every item, via its container's location?
	res := mustExec(t, s, `
SELECT c.object_epc, l.loc_id
FROM OBJECTCONTAINMENT c
JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc
ORDER BY c.object_epc`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows: %v", res.Rows)
	}
	want := map[string]string{"i1": "warehouse-1", "i2": "warehouse-1", "i3": "store-9"}
	for _, r := range res.Rows {
		if want[r[0].Str()] != r[1].Str() {
			t.Errorf("item %s at %s, want %s", r[0].Str(), r[1].Str(), want[r[0].Str()])
		}
	}
}

func TestInnerJoinKeywordForm(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `
SELECT COUNT(*) FROM OBJECTCONTAINMENT c
INNER JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc
WHERE l.loc_id = 'warehouse-1'`, nil)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("INNER JOIN + WHERE: %v", res.Rows)
	}
}

func TestJoinStarQualifiesColumns(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `
SELECT * FROM OBJECTCONTAINMENT c JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc`, nil)
	if len(res.Columns) != 8 {
		t.Fatalf("joined star columns: %v", res.Columns)
	}
	if res.Columns[0] != "c.object_epc" || res.Columns[4] != "l.object_epc" {
		t.Errorf("qualified columns: %v", res.Columns)
	}
}

func TestJoinAmbiguousColumn(t *testing.T) {
	s := rfidDB(t)
	// object_epc exists in both tables: unqualified use must error.
	_, err := Exec(s, `
SELECT object_epc FROM OBJECTCONTAINMENT c JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc`, nil)
	if err == nil {
		t.Fatalf("ambiguous column accepted")
	}
}

func TestJoinWithParams(t *testing.T) {
	s := rfidDB(t)
	params := event.MakeBindings(map[string]event.Value{"target": event.StringValue("i3")})
	res := mustExec(t, s, `
SELECT l.loc_id FROM OBJECTCONTAINMENT c
JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc
WHERE c.object_epc = target`, params)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "store-9" {
		t.Fatalf("join with params: %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `SELECT DISTINCT parent_epc FROM OBJECTCONTAINMENT ORDER BY parent_epc`, nil)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "case1" || res.Rows[1][0].Str() != "case2" {
		t.Fatalf("distinct: %v", res.Rows)
	}
}

func TestHaving(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `
SELECT parent_epc, COUNT(*) FROM OBJECTCONTAINMENT
GROUP BY parent_epc HAVING COUNT(*) > 1`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "case1" || res.Rows[0][1].Int() != 2 {
		t.Fatalf("having: %v", res.Rows)
	}
}

func TestGroupByQualified(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `
SELECT l.loc_id, COUNT(*) FROM OBJECTCONTAINMENT c
JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc
GROUP BY l.loc_id HAVING COUNT(*) >= 1`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("grouped join: %v", res.Rows)
	}
}

func TestOrderByOverAggregates(t *testing.T) {
	s := store.New()
	mustExec(t, s, `CREATE TABLE obs (loc STRING, qty INT)`, nil)
	for _, sql := range []string{
		`INSERT INTO obs VALUES ('w2', 5)`,
		`INSERT INTO obs VALUES ('w1', 1)`,
		`INSERT INTO obs VALUES ('w1', 2)`,
		`INSERT INTO obs VALUES ('w3', 9)`,
	} {
		mustExec(t, s, sql, nil)
	}
	res := mustExec(t, s, `SELECT loc, SUM(qty) AS total FROM obs GROUP BY loc ORDER BY total DESC`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "w3" || res.Rows[2][0].Str() != "w1" {
		t.Errorf("order by aggregate alias: %v", res.Rows)
	}
	// Order by bare aggregate call name.
	res = mustExec(t, s, `SELECT loc, COUNT(*) FROM obs GROUP BY loc ORDER BY count DESC, loc`, nil)
	if res.Rows[0][0].Str() != "w1" {
		t.Errorf("order by count: %v", res.Rows)
	}
	// Order by 1-based position.
	res = mustExec(t, s, `SELECT loc, SUM(qty) FROM obs GROUP BY loc ORDER BY 2`, nil)
	if res.Rows[0][0].Str() != "w1" || res.Rows[2][0].Str() != "w3" {
		t.Errorf("order by position: %v", res.Rows)
	}
	if _, err := Exec(s, `SELECT loc, SUM(qty) FROM obs GROUP BY loc ORDER BY nosuch`, nil); err == nil {
		t.Errorf("unknown order key over aggregates accepted")
	}
}

func TestTableAlias(t *testing.T) {
	s := rfidDB(t)
	res := mustExec(t, s, `SELECT oc.object_epc FROM OBJECTCONTAINMENT AS oc WHERE oc.parent_epc = 'case2'`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "i3" {
		t.Fatalf("alias: %v", res.Rows)
	}
}

func TestSelfJoin(t *testing.T) {
	// Items sharing a container with i1, via a self join.
	s := rfidDB(t)
	res := mustExec(t, s, `
SELECT b.object_epc FROM OBJECTCONTAINMENT a
JOIN OBJECTCONTAINMENT b ON a.parent_epc = b.parent_epc
WHERE a.object_epc = 'i1' AND b.object_epc != 'i1'`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "i2" {
		t.Fatalf("self join: %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	s := rfidDB(t)
	plan := func(sql string) []string {
		t.Helper()
		res := mustExec(t, s, sql, nil)
		var steps []string
		for _, r := range res.Rows {
			steps = append(steps, r[0].Str())
		}
		return steps
	}
	// Indexed equality → index probe.
	steps := plan(`EXPLAIN SELECT * FROM OBJECTLOCATION WHERE object_epc = 'case1'`)
	if len(steps) == 0 || !strings.Contains(steps[0], "index probe") {
		t.Errorf("indexed plan: %v", steps)
	}
	// Non-indexed → full scan.
	steps = plan(`EXPLAIN SELECT * FROM OBJECTLOCATION WHERE loc_id = 'x'`)
	if len(steps) == 0 || !strings.Contains(steps[0], "full scan") {
		t.Errorf("scan plan: %v", steps)
	}
	// Joins, grouping, ordering show up as steps.
	steps = plan(`EXPLAIN SELECT l.loc_id, COUNT(*) FROM OBJECTCONTAINMENT c
JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc
GROUP BY l.loc_id ORDER BY count LIMIT 3`)
	joined := strings.Join(steps, "\n")
	for _, frag := range []string{"nested-loop", "group by", "sort", "limit 3"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("plan missing %q:\n%s", frag, joined)
		}
	}
	// Other statements explain too.
	if steps := plan(`EXPLAIN UPDATE OBJECTLOCATION SET loc_id = 'x' WHERE object_epc = 'case1'`); !strings.Contains(strings.Join(steps, " "), "update") {
		t.Errorf("update plan: %v", steps)
	}
	if steps := plan(`EXPLAIN BULK INSERT INTO OBJECTCONTAINMENT VALUES ('a','b',0,'UC')`); !strings.Contains(steps[0], "bulk insert") {
		t.Errorf("bulk plan: %v", steps)
	}
	// EXPLAIN does not execute: row counts unchanged.
	n1 := mustExec(t, s, `SELECT COUNT(*) FROM OBJECTCONTAINMENT`, nil).Rows[0][0].Int()
	mustExec(t, s, `EXPLAIN DELETE FROM OBJECTCONTAINMENT`, nil)
	n2 := mustExec(t, s, `SELECT COUNT(*) FROM OBJECTCONTAINMENT`, nil).Rows[0][0].Int()
	if n1 != n2 {
		t.Errorf("EXPLAIN executed the statement: %d -> %d", n1, n2)
	}
}

func TestInSubquery(t *testing.T) {
	s := rfidDB(t)
	// Items contained in cases that are currently at warehouse-1.
	res := mustExec(t, s, `
SELECT object_epc FROM OBJECTCONTAINMENT
WHERE parent_epc IN (SELECT object_epc FROM OBJECTLOCATION WHERE loc_id = 'warehouse-1')
ORDER BY object_epc`, nil)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "i1" || res.Rows[1][0].Str() != "i2" {
		t.Fatalf("IN subquery: %v", res.Rows)
	}
	res = mustExec(t, s, `
SELECT object_epc FROM OBJECTCONTAINMENT
WHERE parent_epc NOT IN (SELECT object_epc FROM OBJECTLOCATION WHERE loc_id = 'warehouse-1')`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "i3" {
		t.Fatalf("NOT IN subquery: %v", res.Rows)
	}
	// Subquery must project exactly one column.
	if _, err := Exec(s, `SELECT * FROM OBJECTCONTAINMENT WHERE parent_epc IN (SELECT * FROM OBJECTLOCATION)`, nil); err == nil {
		t.Errorf("multi-column IN subquery accepted")
	}
}

func TestJoinErrors(t *testing.T) {
	s := rfidDB(t)
	bad := []string{
		`SELECT * FROM OBJECTCONTAINMENT JOIN MISSING ON 1 = 1`,
		`SELECT * FROM OBJECTCONTAINMENT c JOIN OBJECTLOCATION l ON nosuch = 1`,
		`SELECT x.y FROM OBJECTCONTAINMENT c JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc`,
		`SELECT * FROM OBJECTCONTAINMENT c JOIN OBJECTLOCATION l ON c.parent_epc = l.object_epc GROUP BY loc_id`,
	}
	for _, sql := range bad {
		if _, err := Exec(s, sql, nil); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	if _, err := Parse(`SELECT * FROM a JOIN b`); err == nil {
		t.Errorf("JOIN without ON accepted")
	}
}
