package sqlmini

import (
	"fmt"
	"strings"

	"rcep/internal/core/event"
)

// FormatStmt renders a statement back into canonical SQL text. The output
// re-parses to an equivalent statement (round-trip tested).
func FormatStmt(st Stmt) string {
	switch x := st.(type) {
	case *CreateTable:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = c.Name + " " + strings.ToUpper(kindSQLName(c.Type))
		}
		return fmt.Sprintf("CREATE TABLE %s (%s)", x.Table, strings.Join(cols, ", "))
	case *Insert:
		kw := "INSERT"
		if x.Bulk {
			kw = "BULK INSERT"
		}
		cols := ""
		if len(x.Cols) > 0 {
			cols = " (" + strings.Join(x.Cols, ", ") + ")"
		}
		vals := make([]string, len(x.Values))
		for i, v := range x.Values {
			vals[i] = FormatExpr(v)
		}
		return fmt.Sprintf("%s INTO %s%s VALUES (%s)", kw, x.Table, cols, strings.Join(vals, ", "))
	case *Update:
		sets := make([]string, len(x.Sets))
		for i, a := range x.Sets {
			sets[i] = a.Col + " = " + FormatExpr(a.Val)
		}
		out := fmt.Sprintf("UPDATE %s SET %s", x.Table, strings.Join(sets, ", "))
		if x.Where != nil {
			out += " WHERE " + FormatExpr(x.Where)
		}
		return out
	case *Delete:
		out := "DELETE FROM " + x.Table
		if x.Where != nil {
			out += " WHERE " + FormatExpr(x.Where)
		}
		return out
	case *Select:
		return formatSelect(x)
	case *Explain:
		return "EXPLAIN " + FormatStmt(x.Stmt)
	}
	return fmt.Sprintf("/* unformattable %T */", st)
}

func kindSQLName(k event.Kind) string {
	switch k {
	case event.KindString:
		return "STRING"
	case event.KindInt:
		return "INT"
	case event.KindFloat:
		return "FLOAT"
	case event.KindBool:
		return "BOOL"
	case event.KindTime:
		return "TIME"
	}
	return "STRING"
}

func formatSelect(x *Select) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if x.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if x.Star {
		sb.WriteString("*")
	} else {
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			items[i] = FormatExpr(it.Expr)
			if it.Alias != "" {
				items[i] += " AS " + it.Alias
			}
		}
		sb.WriteString(strings.Join(items, ", "))
	}
	sb.WriteString(" FROM " + x.Table)
	if x.Alias != "" {
		sb.WriteString(" AS " + x.Alias)
	}
	for _, j := range x.Joins {
		sb.WriteString(" JOIN " + j.Table)
		if j.Alias != "" {
			sb.WriteString(" AS " + j.Alias)
		}
		sb.WriteString(" ON " + FormatExpr(j.On))
	}
	if x.Where != nil {
		sb.WriteString(" WHERE " + FormatExpr(x.Where))
	}
	if len(x.GroupBy) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(x.GroupBy, ", "))
	}
	if x.Having != nil {
		sb.WriteString(" HAVING " + FormatExpr(x.Having))
	}
	if len(x.OrderBy) > 0 {
		keys := make([]string, len(x.OrderBy))
		for i, k := range x.OrderBy {
			keys[i] = FormatExpr(k.Expr)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if x.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", x.Limit)
	}
	return sb.String()
}

// FormatExpr renders an expression back into SQL text.
func FormatExpr(x Expr) string {
	switch n := x.(type) {
	case *Lit:
		return formatLit(n.V)
	case *Ref:
		return n.Name
	case *Unary:
		if n.Op == "NOT" {
			return "NOT " + FormatExpr(n.X)
		}
		return n.Op + FormatExpr(n.X)
	case *Binary:
		return "(" + FormatExpr(n.L) + " " + n.Op + " " + FormatExpr(n.R) + ")"
	case *Call:
		if n.Star {
			return n.Name + "(*)"
		}
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = FormatExpr(a)
		}
		return n.Name + "(" + strings.Join(args, ", ") + ")"
	case *Exists:
		kw := "EXISTS"
		if n.Negate {
			kw = "NOT EXISTS"
		}
		return kw + " (" + formatSelect(n.Sub) + ")"
	case *InList:
		kw := " IN "
		if n.Negate {
			kw = " NOT IN "
		}
		if n.Sub != nil {
			return FormatExpr(n.X) + kw + "(" + formatSelect(n.Sub) + ")"
		}
		elems := make([]string, len(n.List))
		for i, e := range n.List {
			elems[i] = FormatExpr(e)
		}
		return FormatExpr(n.X) + kw + "(" + strings.Join(elems, ", ") + ")"
	case *IsNull:
		if n.Negate {
			return FormatExpr(n.X) + " IS NOT NULL"
		}
		return FormatExpr(n.X) + " IS NULL"
	case *Like:
		kw := " LIKE "
		if n.Negate {
			kw = " NOT LIKE "
		}
		return FormatExpr(n.X) + kw + FormatExpr(n.Pattern)
	}
	return fmt.Sprintf("/* unformattable %T */", x)
}

func formatLit(v event.Value) string {
	switch v.Kind() {
	case event.KindNull:
		return "NULL"
	case event.KindString:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	case event.KindBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	default:
		return v.String()
	}
}
