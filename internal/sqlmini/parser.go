package sqlmini

import (
	"strconv"
	"strings"

	"rcep/internal/core/event"
	"rcep/internal/lex"
	"rcep/internal/store"
)

// Parse parses a single SQL statement.
func Parse(sql string) (Stmt, error) {
	s, err := lex.NewStream(sql)
	if err != nil {
		return nil, err
	}
	st, err := parseStmt(s)
	if err != nil {
		return nil, err
	}
	s.Accept(";")
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "unexpected trailing input %s", s.Peek())
	}
	return st, nil
}

// ParseAll parses a semicolon-separated list of statements.
func ParseAll(sql string) ([]Stmt, error) {
	s, err := lex.NewStream(sql)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for !s.AtEOF() {
		st, err := parseStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !s.Accept(";") {
			break
		}
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "unexpected trailing input %s", s.Peek())
	}
	return out, nil
}

// ParseStream parses one statement from an existing token stream; used by
// the rules parser to embed SQL actions.
func ParseStream(s *lex.Stream) (Stmt, error) { return parseStmt(s) }

// ParseExpr parses a standalone expression (e.g. a rule condition).
func ParseExpr(src string) (Expr, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	e, err := parseExpr(s)
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "unexpected trailing input %s", s.Peek())
	}
	return e, nil
}

// ParseExprStream parses one expression from an existing token stream;
// used by the rules parser to embed conditions.
func ParseExprStream(s *lex.Stream) (Expr, error) { return parseExpr(s) }

func parseStmt(s *lex.Stream) (Stmt, error) {
	t := s.Peek()
	switch {
	case t.IsKeyword("explain"):
		s.Next()
		inner, err := parseStmt(s)
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner}, nil
	case t.IsKeyword("create"):
		return parseCreateTable(s)
	case t.IsKeyword("insert"):
		s.Next()
		return parseInsert(s, false)
	case t.IsKeyword("bulk"):
		s.Next()
		if _, err := s.ExpectKeyword("insert"); err != nil {
			return nil, err
		}
		return parseInsert(s, true)
	case t.IsKeyword("update"):
		return parseUpdate(s)
	case t.IsKeyword("delete"):
		return parseDelete(s)
	case t.IsKeyword("select"):
		return parseSelect(s)
	}
	return nil, lex.Errorf(t, "expected a SQL statement, found %s", t)
}

func parseCreateTable(s *lex.Stream) (Stmt, error) {
	s.Next() // CREATE
	if _, err := s.ExpectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := s.Expect("("); err != nil {
		return nil, err
	}
	var cols []store.Column
	for {
		cn, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		tn, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := columnKind(tn)
		if err != nil {
			return nil, err
		}
		cols = append(cols, store.Column{Name: cn.Text, Type: kind})
		if !s.Accept(",") {
			break
		}
	}
	if _, err := s.Expect(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Table: name.Text, Cols: cols}, nil
}

func columnKind(t lex.Token) (event.Kind, error) {
	switch strings.ToLower(t.Text) {
	case "string", "text", "varchar", "char":
		return event.KindString, nil
	case "int", "integer", "bigint":
		return event.KindInt, nil
	case "float", "real", "double":
		return event.KindFloat, nil
	case "bool", "boolean":
		return event.KindBool, nil
	case "time", "timestamp", "datetime":
		return event.KindTime, nil
	}
	return 0, lex.Errorf(t, "unknown column type %s", t.Text)
}

func parseInsert(s *lex.Stream, bulk bool) (Stmt, error) {
	if _, err := s.ExpectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name.Text, Bulk: bulk}
	if s.Accept("(") {
		for {
			c, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c.Text)
			if !s.Accept(",") {
				break
			}
		}
		if _, err := s.Expect(")"); err != nil {
			return nil, err
		}
	}
	if _, err := s.ExpectKeyword("values"); err != nil {
		return nil, err
	}
	if _, err := s.Expect("("); err != nil {
		return nil, err
	}
	for {
		e, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, e)
		if !s.Accept(",") {
			break
		}
	}
	if _, err := s.Expect(")"); err != nil {
		return nil, err
	}
	return ins, nil
}

func parseUpdate(s *lex.Stream) (Stmt, error) {
	s.Next() // UPDATE
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := s.ExpectKeyword("set"); err != nil {
		return nil, err
	}
	up := &Update{Table: name.Text}
	for {
		col, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := s.Expect("="); err != nil {
			return nil, err
		}
		val, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, Assign{Col: col.Text, Val: val})
		if !s.Accept(",") {
			break
		}
	}
	if s.AcceptKeyword("where") {
		w, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func parseDelete(s *lex.Stream) (Stmt, error) {
	s.Next() // DELETE
	if _, err := s.ExpectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name.Text}
	if s.AcceptKeyword("where") {
		w, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func parseSelect(s *lex.Stream) (*Select, error) {
	s.Next() // SELECT
	sel := &Select{Limit: -1}
	if s.AcceptKeyword("distinct") {
		sel.Distinct = true
	}
	if s.Accept("*") {
		sel.Star = true
	} else {
		for {
			e, err := parseExpr(s)
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if s.AcceptKeyword("as") {
				a, err := s.ExpectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a.Text
			}
			sel.Items = append(sel.Items, item)
			if !s.Accept(",") {
				break
			}
		}
	}
	if _, err := s.ExpectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	sel.Table = name.Text
	if alias, ok := parseAlias(s); ok {
		sel.Alias = alias
	}
	for s.AcceptKeyword("join") || (s.Peek().IsKeyword("inner") && s.PeekAt(1).IsKeyword("join") && acceptTwo(s)) {
		jt, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		j := Join{Table: jt.Text}
		if alias, ok := parseAlias(s); ok {
			j.Alias = alias
		}
		if _, err := s.ExpectKeyword("on"); err != nil {
			return nil, err
		}
		on, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		j.On = on
		sel.Joins = append(sel.Joins, j)
	}
	if s.AcceptKeyword("where") {
		w, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if s.AcceptKeyword("group") {
		if _, err := s.ExpectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			name := c.Text
			if s.Accept(".") {
				col, err := s.ExpectIdent()
				if err != nil {
					return nil, err
				}
				name += "." + col.Text
			}
			sel.GroupBy = append(sel.GroupBy, name)
			if !s.Accept(",") {
				break
			}
		}
	}
	if s.AcceptKeyword("having") {
		h, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if s.AcceptKeyword("order") {
		if _, err := s.ExpectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := parseExpr(s)
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if s.AcceptKeyword("desc") {
				k.Desc = true
			} else {
				s.AcceptKeyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, k)
			if !s.Accept(",") {
				break
			}
		}
	}
	if s.AcceptKeyword("limit") {
		t := s.Peek()
		if t.Kind != lex.Number {
			return nil, lex.Errorf(t, "LIMIT needs a number, found %s", t)
		}
		s.Next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, lex.Errorf(t, "bad LIMIT %s", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// parseAlias accepts "[AS] ident" after a table name. Bare identifiers
// that are clause keywords are not aliases.
func parseAlias(s *lex.Stream) (string, bool) {
	if s.AcceptKeyword("as") {
		t, err := s.ExpectIdent()
		if err != nil {
			return "", false
		}
		return t.Text, true
	}
	t := s.Peek()
	if t.Kind != lex.Ident {
		return "", false
	}
	for _, kw := range []string{"join", "inner", "on", "where", "group", "having", "order", "limit"} {
		if t.IsKeyword(kw) {
			return "", false
		}
	}
	s.Next()
	return t.Text, true
}

// acceptTwo consumes two tokens (INNER JOIN) and reports true.
func acceptTwo(s *lex.Stream) bool {
	s.Next()
	s.Next()
	return true
}

// Expression grammar, lowest to highest precedence:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|!=|<>|<|<=|>|>=) add | IS [NOT] NULL
//	          | [NOT] IN (list) | [NOT] LIKE add)?
//	add    := mul ((+|-|'||') mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= literal | ident | ident(args) | EXISTS (select) | (or)
func parseExpr(s *lex.Stream) (Expr, error) { return parseOr(s) }

func parseOr(s *lex.Stream) (Expr, error) {
	l, err := parseAnd(s)
	if err != nil {
		return nil, err
	}
	for s.AcceptKeyword("or") {
		r, err := parseAnd(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func parseAnd(s *lex.Stream) (Expr, error) {
	l, err := parseNot(s)
	if err != nil {
		return nil, err
	}
	for s.AcceptKeyword("and") {
		r, err := parseNot(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func parseNot(s *lex.Stream) (Expr, error) {
	if s.AcceptKeyword("not") {
		// NOT EXISTS is handled here so EXISTS keeps its own node.
		if s.Peek().IsKeyword("exists") {
			e, err := parseNot(s)
			if err != nil {
				return nil, err
			}
			if ex, ok := e.(*Exists); ok {
				ex.Negate = !ex.Negate
				return ex, nil
			}
			return &Unary{Op: "NOT", X: e}, nil
		}
		x, err := parseNot(s)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return parseCmp(s)
}

func parseCmp(s *lex.Stream) (Expr, error) {
	l, err := parseAdd(s)
	if err != nil {
		return nil, err
	}
	t := s.Peek()
	switch {
	case t.Is("=") || t.Is("!=") || t.Is("<>") || t.Is("<") || t.Is("<=") || t.Is(">") || t.Is(">="):
		s.Next()
		r, err := parseAdd(s)
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "<>" {
			op = "!="
		}
		return &Binary{Op: op, L: l, R: r}, nil
	case t.IsKeyword("is"):
		s.Next()
		neg := s.AcceptKeyword("not")
		if _, err := s.ExpectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	case t.IsKeyword("in"), t.IsKeyword("not"):
		neg := false
		if t.IsKeyword("not") {
			// Only consume NOT when followed by IN or LIKE.
			nxt := s.PeekAt(1)
			if !nxt.IsKeyword("in") && !nxt.IsKeyword("like") {
				return l, nil
			}
			s.Next()
			neg = true
		}
		if s.AcceptKeyword("like") {
			p, err := parseAdd(s)
			if err != nil {
				return nil, err
			}
			return &Like{X: l, Pattern: p, Negate: neg}, nil
		}
		if _, err := s.ExpectKeyword("in"); err != nil {
			return nil, err
		}
		if _, err := s.Expect("("); err != nil {
			return nil, err
		}
		if s.Peek().IsKeyword("select") {
			sub, err := parseSelect(s)
			if err != nil {
				return nil, err
			}
			if _, err := s.Expect(")"); err != nil {
				return nil, err
			}
			return &InList{X: l, Sub: sub, Negate: neg}, nil
		}
		var list []Expr
		for {
			e, err := parseExpr(s)
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !s.Accept(",") {
				break
			}
		}
		if _, err := s.Expect(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Negate: neg}, nil
	case t.IsKeyword("like"):
		s.Next()
		p, err := parseAdd(s)
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: p}, nil
	}
	return l, nil
}

func parseAdd(s *lex.Stream) (Expr, error) {
	l, err := parseMul(s)
	if err != nil {
		return nil, err
	}
	for {
		t := s.Peek()
		if !t.Is("+") && !t.Is("-") && !t.Is("||") {
			return l, nil
		}
		s.Next()
		r, err := parseMul(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r}
	}
}

func parseMul(s *lex.Stream) (Expr, error) {
	l, err := parseUnary(s)
	if err != nil {
		return nil, err
	}
	for {
		t := s.Peek()
		if !t.Is("*") && !t.Is("/") && !t.Is("%") {
			return l, nil
		}
		s.Next()
		r, err := parseUnary(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Text, L: l, R: r}
	}
}

func parseUnary(s *lex.Stream) (Expr, error) {
	if s.Accept("-") {
		x, err := parseUnary(s)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return parsePrimary(s)
}

func parsePrimary(s *lex.Stream) (Expr, error) {
	t := s.Peek()
	switch {
	case t.Kind == lex.Number:
		s.Next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, lex.Errorf(t, "bad number %s", t.Text)
			}
			return &Lit{V: event.FloatValue(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, lex.Errorf(t, "bad number %s", t.Text)
		}
		return &Lit{V: event.IntValue(i)}, nil
	case t.Kind == lex.String:
		s.Next()
		return &Lit{V: event.StringValue(t.Text)}, nil
	case t.IsKeyword("true"):
		s.Next()
		return &Lit{V: event.BoolValue(true)}, nil
	case t.IsKeyword("false"):
		s.Next()
		return &Lit{V: event.BoolValue(false)}, nil
	case t.IsKeyword("null"):
		s.Next()
		return &Lit{V: event.Null}, nil
	case t.IsKeyword("exists"):
		s.Next()
		if _, err := s.Expect("("); err != nil {
			return nil, err
		}
		sub, err := parseSelect(s)
		if err != nil {
			return nil, err
		}
		if _, err := s.Expect(")"); err != nil {
			return nil, err
		}
		return &Exists{Sub: sub}, nil
	case t.Kind == lex.Ident:
		s.Next()
		if s.Accept("(") {
			call := &Call{Name: t.Text}
			if s.Accept("*") {
				call.Star = true
			} else if !s.Peek().Is(")") {
				for {
					a, err := parseExpr(s)
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !s.Accept(",") {
						break
					}
				}
			}
			if _, err := s.Expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if s.Accept(".") {
			col, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			return &Ref{Name: t.Text + "." + col.Text}, nil
		}
		return &Ref{Name: t.Text}, nil
	case t.Is("("):
		s.Next()
		e, err := parseExpr(s)
		if err != nil {
			return nil, err
		}
		if _, err := s.Expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, lex.Errorf(t, "expected an expression, found %s", t)
}
