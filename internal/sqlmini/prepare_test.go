package sqlmini

import (
	"fmt"
	"strings"
	"testing"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

func prepStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if err := s.CreateTable("items", store.Schema{
		{Name: "k", Type: event.KindString},
		{Name: "n", Type: event.KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "c"} {
		if err := tbl.Insert([]event.Value{event.StringValue(k), event.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestPrepareExprEquivalence sweeps every compileExpr branch — including
// the error closures — and requires Eval to agree with EvalExpr on value,
// kind and error string.
func TestPrepareExprEquivalence(t *testing.T) {
	st := prepStore(t)
	funcs := Funcs{"twice": func(args []event.Value) (event.Value, error) {
		if len(args) != 1 {
			return event.Null, fmt.Errorf("twice wants 1 arg")
		}
		return event.IntValue(args[0].Int() * 2), nil
	}}
	params := event.Bindings{}.
		Set("o", event.StringValue("b")).
		Set("x", event.IntValue(3)).
		Set("f", event.FloatValue(1.5))
	exprs := []string{
		`1`, `'s'`, `x`, `o`, `no_such_var`,
		`NOT x`, `-x`, `-f`, `-o`,
		`x = 3 AND o = 'b'`, `x > 9 OR o != 'b'`, `x < 2 AND no_such_var = 1`,
		`x + f`, `x - 1`, `x * 2`, `x / 0`, `x % 2`, `o || '!'`,
		`x >= 3`, `x <= 2`, `o < 'c'`,
		`upper(o)`, `lower('ABC')`, `length(o)`, `abs(-x)`, `coalesce(no_such, 7)`,
		`twice(x)`, `twice(x, x)`, `unknownfn(x)`, `count(x)`,
		`o IN ('a', 'b')`, `o NOT IN ('a')`, `x IN (1, 2)`,
		`o IN (SELECT k FROM items)`, `x IN (SELECT n FROM items WHERE k = 'z')`,
		`EXISTS (SELECT * FROM items WHERE n > 1)`, `NOT EXISTS (SELECT * FROM missing)`,
		`no_such_var IS NULL`, `x IS NOT NULL`,
		`o LIKE 'b%'`, `o NOT LIKE '_'`, `o LIKE x`,
	}
	for _, src := range exprs {
		x, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		p := PrepareExpr(x, funcs)
		gv, ge := p.Eval(st, params)
		wv, we := EvalExpr(st, x, params, funcs)
		switch {
		case (ge == nil) != (we == nil):
			t.Errorf("%q: prepared err %v, interpreted err %v", src, ge, we)
		case ge != nil:
			if ge.Error() != we.Error() {
				t.Errorf("%q: prepared err %q, interpreted err %q", src, ge, we)
			}
		case gv.Kind() != wv.Kind() || !gv.Equal(wv):
			t.Errorf("%q: prepared %v (%v), interpreted %v (%v)", src, gv, gv.Kind(), wv, wv.Kind())
		}
	}
}

// TestPrepareStmtEquivalence exercises the compiled INSERT path (explicit
// columns, schema order, BULK over list bindings, error shapes) and the
// interpreter fallback for other statements, comparing effects on twin
// stores.
func TestPrepareStmtEquivalence(t *testing.T) {
	stmts := []string{
		`INSERT INTO items VALUES ('d', 9)`,
		`INSERT INTO items (n, k) VALUES (x + 1, upper(o))`,
		`INSERT INTO items (k) VALUES (o)`,
		`INSERT INTO items VALUES ('too', 1, 2)`,
		`INSERT INTO missing VALUES (1)`,
		`INSERT INTO items (nope) VALUES (1)`,
		`BULK INSERT INTO items VALUES (o, x)`,
		`UPDATE items SET n = n + 10 WHERE k = 'a'`,
		`DELETE FROM items WHERE n > 100`,
	}
	params := event.Bindings{}.
		Set("o", event.StringValue("z")).
		Set("x", event.IntValue(40))
	bulkParams := event.Bindings{}.
		Set("o", event.ListValue([]event.Value{event.StringValue("l1"), event.StringValue("l2")})).
		Set("x", event.IntValue(5))
	dump := func(s *store.Store) string {
		var sb strings.Builder
		for _, name := range s.Tables() {
			tbl, err := s.Table(name)
			if err != nil {
				continue
			}
			sb.WriteString(name + "\n")
			tbl.Scan(func(id int64, r store.Row) bool {
				for _, v := range r {
					sb.WriteString(v.String() + "|")
				}
				sb.WriteByte('\n')
				return true
			})
		}
		return sb.String()
	}
	for _, src := range stmts {
		p := params
		if strings.HasPrefix(src, "BULK") {
			p = bulkParams
		}
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		sa, sb := prepStore(t), prepStore(t)
		prep := PrepareStmt(st)
		gr, ge := prep.Exec(sa, p)
		wr, we := ExecStmt(sb, st, p)
		switch {
		case (ge == nil) != (we == nil):
			t.Errorf("%q: prepared err %v, interpreted err %v", src, ge, we)
		case ge != nil:
			if ge.Error() != we.Error() {
				t.Errorf("%q: prepared err %q, interpreted err %q", src, ge, we)
			}
		case gr.RowsAffected != wr.RowsAffected:
			t.Errorf("%q: prepared affected %d, interpreted %d", src, gr.RowsAffected, wr.RowsAffected)
		}
		if da, db := dump(sa), dump(sb); da != db {
			t.Errorf("%q: stores diverge\nprepared:\n%s\ninterpreted:\n%s", src, da, db)
		}
	}
}
