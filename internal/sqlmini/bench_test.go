package sqlmini

import (
	"fmt"
	"testing"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

func benchDB(b *testing.B, rows int, indexed bool) *store.Store {
	b.Helper()
	s := store.New()
	if _, err := Exec(s, `CREATE TABLE t (k STRING, v INT, f FLOAT)`, nil); err != nil {
		b.Fatal(err)
	}
	tbl, _ := s.Table("t")
	for i := 0; i < rows; i++ {
		err := tbl.Insert([]event.Value{
			event.StringValue(fmt.Sprintf("k%d", i%100)),
			event.IntValue(int64(i)),
			event.FloatValue(float64(i) / 3),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if err := tbl.CreateIndex("k"); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkParseSelect(b *testing.B) {
	const q = `SELECT k, COUNT(*) AS n FROM t WHERE v > 10 AND k LIKE 'k%' GROUP BY k HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	s := benchDB(b, 10_000, false)
	stmt, _ := Parse(`SELECT COUNT(*) FROM t WHERE k = 'k42'`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecStmt(s, stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectIndexProbe(b *testing.B) {
	s := benchDB(b, 10_000, true)
	stmt, _ := Parse(`SELECT COUNT(*) FROM t WHERE k = 'k42'`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecStmt(s, stmt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWithParams(b *testing.B) {
	s := benchDB(b, 0, false)
	stmt, _ := Parse(`INSERT INTO t VALUES (k, v, 1.5)`)
	params := event.MakeBindings(map[string]event.Value{"k": event.StringValue("x"), "v": event.IntValue(1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecStmt(s, stmt, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateUCPattern(b *testing.B) {
	// Rule 3's hot path: close the open period, insert a new one.
	s := store.OpenRFID()
	upd, _ := Parse(`UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC'`)
	ins, _ := Parse(`INSERT INTO OBJECTLOCATION VALUES (o, r, t, 'UC')`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		params := event.MakeBindings(map[string]event.Value{
			"o": event.StringValue(fmt.Sprintf("obj%d", i%50)),
			"r": event.StringValue("dock"),
			"t": event.TimeValue(event.Time(i)),
		})
		if _, err := ExecStmt(s, upd, params); err != nil {
			b.Fatal(err)
		}
		if _, err := ExecStmt(s, ins, params); err != nil {
			b.Fatal(err)
		}
	}
}
