package sqlmini

import (
	"math/rand"
	"testing"

	"rcep/internal/store"
)

// Pseudo-fuzz for the SQL parser and executor: mutated statements must
// produce errors, never panics.

var seedSQL = []string{
	`SELECT a, COUNT(*) FROM t WHERE x = 'v' AND y IN (1,2) GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5`,
	`BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')`,
	`UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC'`,
	`SELECT c.object_epc FROM a c JOIN b l ON c.k = l.k WHERE c.v LIKE 'x%'`,
	`DELETE FROM t WHERE EXISTS (SELECT * FROM t WHERE a = 1)`,
	`CREATE TABLE t (a STRING, b INT, c FLOAT, d TIME, e BOOL)`,
}

func TestSQLParserNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("sql parser panicked: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(1))
	for _, seed := range seedSQL {
		for i := 0; i < 400; i++ {
			s := mutateSQL(rng, seed)
			_, _ = Parse(s)
			_, _ = ParseAll(s)
		}
	}
}

func TestSQLExecNeverPanicsOnParseable(t *testing.T) {
	// Even statements that parse must fail gracefully at execution
	// against a store that may not have their tables/columns.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("sql exec panicked: %v", r)
		}
	}()
	s := store.OpenRFID()
	rng := rand.New(rand.NewSource(2))
	for _, seed := range seedSQL {
		for i := 0; i < 200; i++ {
			sql := mutateSQL(rng, seed)
			st, err := Parse(sql)
			if err != nil {
				continue
			}
			_, _ = ExecStmt(s, st, nil)
		}
	}
}

func mutateSQL(rng *rand.Rand, s string) string {
	b := []byte(s)
	switch rng.Intn(4) {
	case 0:
		if len(b) > 0 {
			b = b[:rng.Intn(len(b))]
		}
	case 1:
		if len(b) > 2 {
			i := rng.Intn(len(b) - 1)
			j := i + 1 + rng.Intn(len(b)-i-1)
			b = append(b[:i], b[j:]...)
		}
	case 2:
		for k := 0; k < 2 && len(b) > 0; k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(96) + 32)
		}
	case 3:
		noise := []string{"SELECT", "WHERE", "(", ")", ",", "''", "JOIN", "GROUP BY", "*"}
		i := rng.Intn(len(b) + 1)
		n := noise[rng.Intn(len(noise))]
		b = append(b[:i:i], append([]byte(" "+n+" "), b[i:]...)...)
	}
	return string(b)
}
