package sqlmini

import (
	"strings"
	"testing"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

// Scalar aggregates fold list bindings collected from SEQ+ runs when an
// aggregate call appears outside a SELECT projection — in rule conditions
// and INSERT actions. The interpreted evaluator and the prepared program
// must agree value-for-value and error-for-error.

func aggParams() event.Bindings {
	return event.MakeBindings(map[string]event.Value{
		"v": event.ListValue([]event.Value{
			event.StringValue("7"), event.FloatValue(9.5), event.IntValue(8),
		}),
		"empty": event.ListValue(nil),
		"words": event.ListValue([]event.Value{
			event.StringValue("abc"), event.StringValue("1"),
		}),
		"x": event.IntValue(4),
	})
}

func evalBothWays(t *testing.T, src string, params event.Bindings) (event.Value, error) {
	t.Helper()
	x, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	s := store.New()
	iv, ierr := EvalExpr(s, x, params, nil)
	pv, perr := PrepareExpr(x, nil).Eval(s, params)
	if (ierr == nil) != (perr == nil) {
		t.Fatalf("%q: interpreted err = %v, prepared err = %v", src, ierr, perr)
	}
	if ierr != nil {
		if ierr.Error() != perr.Error() {
			t.Fatalf("%q: error text diverges: %q vs %q", src, ierr, perr)
		}
		return iv, ierr
	}
	if iv.String() != pv.String() || iv.Kind() != pv.Kind() {
		t.Fatalf("%q: interpreted %s %v, prepared %s %v", src, iv.Kind(), iv, pv.Kind(), pv)
	}
	return iv, nil
}

func TestScalarAggregatesFoldLists(t *testing.T) {
	params := aggParams()
	cases := []struct {
		src  string
		want string
	}{
		{"COUNT(v)", "3"},
		{"SUM(v)", "24.5"},
		{"AVG(v)", event.FloatValue(24.5 / 3).String()},
		{"MIN(v)", "7"},
		{"MAX(v)", "9.5"},
		{"COUNT(empty)", "0"},
		{"SUM(empty)", "0"},
		{"MAX(v) > 8", "true"},
		{"COUNT(v) >= 3 AND SUM(v) < 30", "true"},
		{"SUM(v) + x", "28.5"},
		{"COUNT(x)", "1"}, // scalar folds as a one-element column
		{"MAX(x)", "4"},
	}
	for _, c := range cases {
		got, err := evalBothWays(t, c.src, params)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%q = %s, want %s", c.src, got, c.want)
		}
	}
	// AVG over an empty column is NULL, like the SELECT projection path.
	if got, err := evalBothWays(t, "AVG(empty)", params); err != nil || !got.IsNull() {
		t.Errorf("AVG(empty) = %v, %v, want NULL", got, err)
	}
}

func TestScalarAggregateErrors(t *testing.T) {
	params := aggParams()
	cases := []struct {
		src     string
		wantErr string
	}{
		{"SUM(words)", "SUM over non-numeric value"},
		{"AVG(words)", "AVG over non-numeric value"},
		{"COUNT(*)", "only valid in a SELECT projection"},
		{"SUM(v, x)", "needs exactly one argument"},
		{"MAX()", "needs exactly one argument"},
	}
	for _, c := range cases {
		_, err := evalBothWays(t, c.src, params)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: err = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

// TestScalarAggregateInInsert drives the action path: an INSERT whose
// VALUES fold a run's column.
func TestScalarAggregateInInsert(t *testing.T) {
	s := newDB(t)
	mustExec(t, s, `CREATE TABLE excursions (zone TEXT, n INT, peak REAL)`, nil)
	params := event.MakeBindings(map[string]event.Value{
		"z": event.StringValue("dock4"),
		"v": event.ListValue([]event.Value{
			event.StringValue("8.5"), event.StringValue("10"), event.StringValue("9"),
		}),
	})
	mustExec(t, s, `INSERT INTO excursions VALUES (z, COUNT(v), MAX(v))`, params)
	res := mustExec(t, s, `SELECT n, peak FROM excursions WHERE zone = 'dock4'`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].Float() != 10 {
		t.Fatalf("inserted row: %v", res.Rows)
	}
}

// TestRowContextAggregatesStayRejected pins the pre-existing behavior:
// aggregates are still invalid wherever a table row is in scope.
func TestRowContextAggregatesStayRejected(t *testing.T) {
	s := newDB(t)
	for _, src := range []string{
		`SELECT * FROM items WHERE SUM(qty) = 1`,
		`UPDATE items SET qty = 1 WHERE COUNT(qty) > 0`,
		`DELETE FROM items WHERE MAX(qty) > 0`,
	} {
		if _, err := Exec(s, src, nil); err == nil || !strings.Contains(err.Error(), "outside SELECT projection") {
			t.Errorf("%q: err = %v, want outside-projection rejection", src, err)
		}
	}
}
