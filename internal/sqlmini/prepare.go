package sqlmini

import (
	"fmt"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

// Statement/expression preparation (DESIGN.md §9): rule conditions and
// action statements are parsed once at CREATE RULE time, but the
// interpreter still walks the AST per firing. PrepareExpr and PrepareStmt
// lower the AST into a closure tree once, so each firing runs direct
// calls with every literal, operator and shape decision already resolved.
//
// Two invariants keep prepared evaluation byte-identical to the
// interpreter:
//
//   - User functions are resolved at evaluation time, never at prepare
//     time: Funcs maps are shared and mutated by registration calls that
//     may run after preparation (rcep.RegisterFunc).
//   - Preparation never fails. Expressions the interpreter rejects at
//     evaluation time (unknown functions, aggregates outside SELECT,
//     unsupported node types) compile to closures returning the same
//     errors, so "parses ⇒ prepares" holds for any input — the
//     FuzzCompileRule property.

// evalFn is a compiled expression: evaluation against an environment.
type evalFn func(*env) (event.Value, error)

// PreparedExpr is a compiled standalone expression (a rule condition).
type PreparedExpr struct {
	fn    evalFn
	funcs Funcs
}

// PrepareExpr compiles an expression for repeated evaluation. funcs is
// retained by reference: functions registered in the map later are
// visible to Eval, exactly as with EvalExpr.
func PrepareExpr(x Expr, funcs Funcs) *PreparedExpr {
	return &PreparedExpr{fn: compileExpr(x), funcs: funcs}
}

// Eval evaluates the prepared expression; it is equivalent to
// EvalExpr(s, x, params, funcs) with the original AST.
func (p *PreparedExpr) Eval(s *store.Store, params event.Bindings) (event.Value, error) {
	e := env{store: s, params: params, funcs: p.funcs}
	return p.fn(&e)
}

// errFn builds a compiled expression that reproduces an interpreter
// evaluation error.
func errFn(format string, args ...any) evalFn {
	err := fmt.Errorf(format, args...)
	return func(*env) (event.Value, error) { return event.Null, err }
}

// compileExpr lowers one expression node. Every branch mirrors env.eval
// case for case; consult the interpreter for semantics.
func compileExpr(x Expr) evalFn {
	switch n := x.(type) {
	case *Lit:
		v := n.V
		return func(*env) (event.Value, error) { return v, nil }
	case *Ref:
		name := n.Name
		return func(e *env) (event.Value, error) { return e.resolve(name) }
	case *Unary:
		cx := compileExpr(n.X)
		switch n.Op {
		case "NOT":
			return func(e *env) (event.Value, error) {
				v, err := cx(e)
				if err != nil {
					return event.Null, err
				}
				return event.BoolValue(!truthy(v)), nil
			}
		case "-":
			return func(e *env) (event.Value, error) {
				v, err := cx(e)
				if err != nil {
					return event.Null, err
				}
				switch v.Kind() {
				case event.KindInt:
					return event.IntValue(-v.Int()), nil
				case event.KindFloat:
					return event.FloatValue(-v.Float()), nil
				}
				return event.Null, fmt.Errorf("sqlmini: cannot negate %s", v.Kind())
			}
		}
		return errFn("sqlmini: unknown unary op %s", n.Op)
	case *Binary:
		return compileBinary(n)
	case *Call:
		if n.isAggregate() {
			// Scalar aggregate: fold the single argument at run time,
			// mirroring evalScalarCall (shape errors resolve at compile
			// time with identical texts).
			if err := checkScalarAggregate(n); err != nil {
				return errFn("%s", err.Error())
			}
			argFn := compileExpr(n.Args[0])
			name := n.Name
			return func(e *env) (event.Value, error) {
				if e.schema != nil {
					return event.Null, fmt.Errorf("sqlmini: aggregate %s outside SELECT projection", name)
				}
				v, err := argFn(e)
				if err != nil {
					return event.Null, err
				}
				return foldScalarAggregate(name, v)
			}
		}
		argFns := make([]evalFn, len(n.Args))
		for i, a := range n.Args {
			argFns[i] = compileExpr(a)
		}
		name := n.Name
		return func(e *env) (event.Value, error) {
			var args []event.Value
			for _, af := range argFns {
				v, err := af(e)
				if err != nil {
					return event.Null, err
				}
				args = append(args, v)
			}
			return e.applyScalar(name, args)
		}
	case *Exists:
		sub, negate := n.Sub, n.Negate
		return func(e *env) (event.Value, error) {
			if e.store == nil {
				return event.Null, fmt.Errorf("sqlmini: EXISTS requires a data store")
			}
			res, err := execSelect(e.store, sub, e.params)
			if err != nil {
				return event.Null, err
			}
			found := len(res.Rows) > 0
			if negate {
				found = !found
			}
			return event.BoolValue(found), nil
		}
	case *InList:
		cx := compileExpr(n.X)
		listFns := make([]evalFn, len(n.List))
		for i, le := range n.List {
			listFns[i] = compileExpr(le)
		}
		sub, negate := n.Sub, n.Negate
		return func(e *env) (event.Value, error) {
			v, err := cx(e)
			if err != nil {
				return event.Null, err
			}
			var found bool
			if sub != nil {
				found, err = inSubquery(e.store, sub, v, e.params)
				if err != nil {
					return event.Null, err
				}
			} else {
				for _, lf := range listFns {
					lv, err := lf(e)
					if err != nil {
						return event.Null, err
					}
					if v.Equal(lv) {
						found = true
						break
					}
				}
			}
			if negate {
				found = !found
			}
			return event.BoolValue(found), nil
		}
	case *IsNull:
		cx := compileExpr(n.X)
		negate := n.Negate
		return func(e *env) (event.Value, error) {
			v, err := cx(e)
			if err != nil {
				return event.Null, err
			}
			isNull := v.IsNull()
			if negate {
				isNull = !isNull
			}
			return event.BoolValue(isNull), nil
		}
	case *Like:
		cx := compileExpr(n.X)
		cp := compileExpr(n.Pattern)
		negate := n.Negate
		return func(e *env) (event.Value, error) {
			v, err := cx(e)
			if err != nil {
				return event.Null, err
			}
			p, err := cp(e)
			if err != nil {
				return event.Null, err
			}
			m := likeMatch(v.String(), p.String())
			if negate {
				m = !m
			}
			return event.BoolValue(m), nil
		}
	}
	return errFn("sqlmini: unsupported expression %T", x)
}

// compileBinary lowers a binary operation, preserving AND/OR
// short-circuiting.
func compileBinary(n *Binary) evalFn {
	cl := compileExpr(n.L)
	cr := compileExpr(n.R)
	switch n.Op {
	case "AND":
		return func(e *env) (event.Value, error) {
			l, err := cl(e)
			if err != nil {
				return event.Null, err
			}
			if !truthy(l) {
				return event.BoolValue(false), nil
			}
			r, err := cr(e)
			if err != nil {
				return event.Null, err
			}
			return event.BoolValue(truthy(r)), nil
		}
	case "OR":
		return func(e *env) (event.Value, error) {
			l, err := cl(e)
			if err != nil {
				return event.Null, err
			}
			if truthy(l) {
				return event.BoolValue(true), nil
			}
			r, err := cr(e)
			if err != nil {
				return event.Null, err
			}
			return event.BoolValue(truthy(r)), nil
		}
	}
	op := n.Op
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		return func(e *env) (event.Value, error) {
			l, err := cl(e)
			if err != nil {
				return event.Null, err
			}
			r, err := cr(e)
			if err != nil {
				return event.Null, err
			}
			return compareValues(op, l, r)
		}
	case "||":
		return func(e *env) (event.Value, error) {
			l, err := cl(e)
			if err != nil {
				return event.Null, err
			}
			r, err := cr(e)
			if err != nil {
				return event.Null, err
			}
			return event.StringValue(l.String() + r.String()), nil
		}
	case "+", "-", "*", "/", "%":
		return func(e *env) (event.Value, error) {
			l, err := cl(e)
			if err != nil {
				return event.Null, err
			}
			r, err := cr(e)
			if err != nil {
				return event.Null, err
			}
			return arith(op, l, r)
		}
	}
	return errFn("sqlmini: unknown operator %s", n.Op)
}

// PreparedStmt is a compiled statement. INSERT — the statement shape on
// every rule firing's hot path (paper §3 action rules append to RFID
// tables) — gets fully compiled VALUES expressions; other statement
// shapes are row-context-entangled (their expressions resolve against a
// changing schema per row) and execute through the interpreter, which
// costs nothing extra since they were already parsed once.
type PreparedStmt struct {
	stmt Stmt
	ins  *preparedInsert
}

type preparedInsert struct {
	table  string
	cols   []string
	values []evalFn
	bulk   bool
}

// PrepareStmt compiles a parsed statement for repeated execution.
// Preparation never fails; execution reports the same errors the
// interpreter would.
func PrepareStmt(st Stmt) *PreparedStmt {
	p := &PreparedStmt{stmt: st}
	if ins, ok := st.(*Insert); ok {
		pi := &preparedInsert{table: ins.Table, cols: ins.Cols, bulk: ins.Bulk}
		pi.values = make([]evalFn, len(ins.Values))
		for i, ve := range ins.Values {
			pi.values[i] = compileExpr(ve)
		}
		p.ins = pi
	}
	return p
}

// Exec executes the prepared statement; it is equivalent to
// ExecStmt(s, stmt, params).
func (p *PreparedStmt) Exec(s *store.Store, params event.Bindings) (*Result, error) {
	if p.ins == nil {
		return ExecStmt(s, p.stmt, params)
	}
	return p.ins.exec(s, params)
}

// exec mirrors execInsert with compiled value expressions. Table and
// column positions resolve per execution: tables can be created or
// redefined between firings, and the interpreter resolves late too.
func (pi *preparedInsert) exec(s *store.Store, params event.Bindings) (*Result, error) {
	tbl, err := s.Table(pi.table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	positions := make([]int, len(pi.values))
	if len(pi.cols) > 0 {
		if len(pi.cols) != len(pi.values) {
			return nil, fmt.Errorf("sqlmini: %d columns but %d values", len(pi.cols), len(pi.values))
		}
		for i, c := range pi.cols {
			p := schema.Index(c)
			if p < 0 {
				return nil, fmt.Errorf("sqlmini: %s: no such column %s", pi.table, c)
			}
			positions[i] = p
		}
	} else {
		if len(pi.values) != len(schema) {
			return nil, fmt.Errorf("sqlmini: %s has %d columns but %d values given", pi.table, len(schema), len(pi.values))
		}
		for i := range positions {
			positions[i] = i
		}
	}

	n := 1
	if pi.bulk {
		n = bulkCardinality(params)
	}
	inserted := 0
	for i := 0; i < n; i++ {
		p := params
		if pi.bulk {
			p = elementView(params, i)
		}
		ev := env{store: s, params: p}
		row := make([]event.Value, len(schema))
		for j, vf := range pi.values {
			v, err := vf(&ev)
			if err != nil {
				return nil, err
			}
			row[positions[j]] = v
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{RowsAffected: inserted}, nil
}
