package sqlmini

import (
	"reflect"
	"testing"
)

// TestFormatStmtRoundTrip: parse → format → parse is a fixed point for
// every statement shape.
func TestFormatStmtRoundTrip(t *testing.T) {
	stmts := []string{
		`CREATE TABLE t (a STRING, b INT, c FLOAT, d BOOL, e TIME)`,
		`INSERT INTO t VALUES ('x', 1, 2.5, true, 7)`,
		`INSERT INTO t (a, b) VALUES (o, n + 1)`,
		`BULK INSERT INTO t VALUES (o1, o2, t2, 'UC')`,
		`UPDATE t SET a = 'y', b = b + 1 WHERE a = o AND b != 3`,
		`DELETE FROM t WHERE a LIKE 'x%' OR b IN (1, 2, 3)`,
		`DELETE FROM t WHERE a NOT IN (SELECT a FROM t WHERE b IS NOT NULL)`,
		`SELECT DISTINCT a, COUNT(*) AS n FROM t AS x JOIN u AS y ON x.a = y.k WHERE NOT EXISTS (SELECT * FROM t WHERE b = 9) GROUP BY a HAVING COUNT(*) > 1 ORDER BY n DESC, a LIMIT 5`,
		`SELECT * FROM t WHERE a IS NULL AND -b < 0`,
		`EXPLAIN SELECT * FROM t WHERE a = 'v'`,
	}
	for _, src := range stmts {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		formatted := FormatStmt(s1)
		s2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted does not parse: %v\nsrc: %s\nout: %s", err, src, formatted)
		}
		again := FormatStmt(s2)
		if formatted != again {
			t.Errorf("not a fixed point:\n1: %s\n2: %s", formatted, again)
		}
		if reflect.TypeOf(s1) != reflect.TypeOf(s2) {
			t.Errorf("statement type drift: %T vs %T", s1, s2)
		}
	}
}
