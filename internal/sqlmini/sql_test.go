package sqlmini

import (
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func mustExec(t *testing.T, s *store.Store, sql string, params event.Bindings) *Result {
	t.Helper()
	res, err := Exec(s, sql, params)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newDB(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	mustExec(t, s, `CREATE TABLE items (epc STRING, qty INT, price FLOAT, at TIME)`, nil)
	for _, row := range []string{
		`INSERT INTO items VALUES ('a1', 10, 1.5, 100)`,
		`INSERT INTO items VALUES ('a2', 20, 2.5, 200)`,
		`INSERT INTO items VALUES ('b1', 30, 3.5, 300)`,
		`INSERT INTO items VALUES ('b2', 40, 4.5, 400)`,
	} {
		mustExec(t, s, row, nil)
	}
	return s
}

func TestCreateInsertSelectStar(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT * FROM items`, nil)
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[0] != "epc" || res.Rows[0][0].Str() != "a1" {
		t.Errorf("first row: %v", res.Rows[0])
	}
}

func TestSelectWhereComparisons(t *testing.T) {
	s := newDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM items WHERE qty > 20`, 2},
		{`SELECT * FROM items WHERE qty >= 20`, 3},
		{`SELECT * FROM items WHERE qty < 20`, 1},
		{`SELECT * FROM items WHERE qty != 10`, 3},
		{`SELECT * FROM items WHERE epc = 'b1'`, 1},
		{`SELECT * FROM items WHERE epc = 'b1' OR epc = 'a1'`, 2},
		{`SELECT * FROM items WHERE qty > 10 AND qty < 40`, 2},
		{`SELECT * FROM items WHERE NOT qty = 10`, 3},
		{`SELECT * FROM items WHERE epc LIKE 'a%'`, 2},
		{`SELECT * FROM items WHERE epc LIKE '_1'`, 2},
		{`SELECT * FROM items WHERE epc NOT LIKE 'a%'`, 2},
		{`SELECT * FROM items WHERE qty IN (10, 40)`, 2},
		{`SELECT * FROM items WHERE qty NOT IN (10, 40)`, 2},
		{`SELECT * FROM items WHERE price IS NULL`, 0},
		{`SELECT * FROM items WHERE price IS NOT NULL`, 4},
		{`SELECT * FROM items WHERE qty + 10 = 30`, 1},
		{`SELECT * FROM items WHERE qty * 2 >= 60`, 2},
		{`SELECT * FROM items WHERE qty % 20 = 0`, 2},
		{`SELECT * FROM items WHERE (qty = 10 OR qty = 20) AND epc LIKE 'a%'`, 2},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.sql, nil)
		if len(res.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT epc, qty * 2 AS dbl FROM items WHERE epc = 'a1'`, nil)
	if len(res.Rows) != 1 || res.Columns[1] != "dbl" || res.Rows[0][1].Int() != 20 {
		t.Fatalf("projection: %v %v", res.Columns, res.Rows)
	}
}

func TestSelectOrderByLimit(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT epc FROM items ORDER BY qty DESC LIMIT 2`, nil)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "b2" || res.Rows[1][0].Str() != "b1" {
		t.Fatalf("order/limit: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT * FROM items ORDER BY epc DESC`, nil)
	if res.Rows[0][0].Str() != "b2" {
		t.Fatalf("order desc: %v", res.Rows[0])
	}
	res = mustExec(t, s, `SELECT * FROM items LIMIT 0`, nil)
	if len(res.Rows) != 0 {
		t.Fatalf("limit 0: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT COUNT(*), SUM(qty), AVG(qty), MIN(qty), MAX(qty) FROM items`, nil)
	r := res.Rows[0]
	if r[0].Int() != 4 || r[1].Int() != 100 || r[2].Float() != 25 || r[3].Int() != 10 || r[4].Int() != 40 {
		t.Fatalf("aggregates: %v", r)
	}
	// Aggregates over an empty match still yield one row.
	res = mustExec(t, s, `SELECT COUNT(*) FROM items WHERE qty > 1000`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 {
		t.Fatalf("empty aggregate: %v", res.Rows)
	}
	res = mustExec(t, s, `SELECT MIN(qty) FROM items WHERE qty > 1000`, nil)
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("MIN over empty should be null: %v", res.Rows[0][0])
	}
}

func TestGroupBy(t *testing.T) {
	s := store.New()
	mustExec(t, s, `CREATE TABLE obs (loc STRING, qty INT)`, nil)
	for _, sql := range []string{
		`INSERT INTO obs VALUES ('w1', 1)`,
		`INSERT INTO obs VALUES ('w1', 2)`,
		`INSERT INTO obs VALUES ('w2', 5)`,
	} {
		mustExec(t, s, sql, nil)
	}
	res := mustExec(t, s, `SELECT loc, COUNT(*), SUM(qty) FROM obs GROUP BY loc`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "w1" || res.Rows[0][1].Int() != 2 || res.Rows[0][2].Int() != 3 {
		t.Errorf("group w1: %v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "w2" || res.Rows[1][1].Int() != 1 || res.Rows[1][2].Int() != 5 {
		t.Errorf("group w2: %v", res.Rows[1])
	}
}

func TestParameters(t *testing.T) {
	s := newDB(t)
	params := event.MakeBindings(map[string]event.Value{
		"o": event.StringValue("zz"),
		"t": event.TimeValue(ts(7)),
		"n": event.IntValue(99),
	})
	mustExec(t, s, `INSERT INTO items VALUES (o, n, 0.5, t)`, params)
	res := mustExec(t, s, `SELECT qty FROM items WHERE epc = o`, params)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 99 {
		t.Fatalf("param roundtrip: %v", res.Rows)
	}
	// Unknown identifier that is neither column nor parameter errors.
	if _, err := Exec(s, `SELECT * FROM items WHERE epc = mystery`, nil); err == nil {
		t.Fatalf("unknown parameter accepted")
	}
}

func TestUpdateWithParamsAndUC(t *testing.T) {
	// Rule 3's location-change action.
	s := store.OpenRFID()
	params := event.MakeBindings(map[string]event.Value{"o": event.StringValue("obj1"), "t": event.TimeValue(ts(50))})
	mustExec(t, s, `INSERT INTO OBJECTLOCATION VALUES (o, 'loc1', 0, 'UC')`, params)
	res := mustExec(t, s, `UPDATE OBJECTLOCATION SET tend = t WHERE object_epc = o AND tend = 'UC'`, params)
	if res.RowsAffected != 1 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	mustExec(t, s, `INSERT INTO OBJECTLOCATION VALUES (o, 'loc2', t, 'UC')`, params)
	sel := mustExec(t, s, `SELECT loc_id FROM OBJECTLOCATION WHERE object_epc = o AND tend = 'UC'`, params)
	if len(sel.Rows) != 1 || sel.Rows[0][0].Str() != "loc2" {
		t.Fatalf("current location: %v", sel.Rows)
	}
}

func TestBulkInsertExpandsLists(t *testing.T) {
	// Rule 4's containment action: one row per contained item.
	s := store.OpenRFID()
	params := event.MakeBindings(map[string]event.Value{
		"o1": event.ListValue([]event.Value{
			event.StringValue("i1"), event.StringValue("i2"), event.StringValue("i3"),
		}),
		"o2": event.StringValue("case9"),
		"t2": event.TimeValue(ts(14)),
	})
	res := mustExec(t, s, `BULK INSERT INTO OBJECTCONTAINMENT VALUES (o1, o2, t2, 'UC')`, params)
	if res.RowsAffected != 3 {
		t.Fatalf("bulk inserted %d rows, want 3", res.RowsAffected)
	}
	sel := mustExec(t, s, `SELECT object_epc FROM OBJECTCONTAINMENT WHERE parent_epc = 'case9'`, nil)
	if len(sel.Rows) != 3 || sel.Rows[0][0].Str() != "i1" || sel.Rows[2][0].Str() != "i3" {
		t.Fatalf("bulk rows: %v", sel.Rows)
	}
}

func TestBulkInsertWithoutListsInsertsOne(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `BULK INSERT INTO items VALUES ('solo', 1, 1.0, 1)`, nil)
	if res.RowsAffected != 1 {
		t.Fatalf("bulk without lists: %d", res.RowsAffected)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	s := newDB(t)
	mustExec(t, s, `INSERT INTO items (qty, epc, price, at) VALUES (7, 'colmap', 0.1, 5)`, nil)
	res := mustExec(t, s, `SELECT qty FROM items WHERE epc = 'colmap'`, nil)
	if res.Rows[0][0].Int() != 7 {
		t.Fatalf("column mapping: %v", res.Rows)
	}
	if _, err := Exec(s, `INSERT INTO items (qty) VALUES (1, 2)`, nil); err == nil {
		t.Fatalf("mismatched column list accepted")
	}
}

func TestDelete(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `DELETE FROM items WHERE epc LIKE 'a%'`, nil)
	if res.RowsAffected != 2 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	left := mustExec(t, s, `SELECT COUNT(*) FROM items`, nil)
	if left.Rows[0][0].Int() != 2 {
		t.Fatalf("remaining: %v", left.Rows)
	}
}

func TestExistsSubquery(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT * FROM items WHERE EXISTS (SELECT * FROM items WHERE qty = 40)`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("EXISTS true: %d", len(res.Rows))
	}
	res = mustExec(t, s, `SELECT * FROM items WHERE NOT EXISTS (SELECT * FROM items WHERE qty = 41)`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("NOT EXISTS: %d", len(res.Rows))
	}
	res = mustExec(t, s, `SELECT * FROM items WHERE EXISTS (SELECT * FROM items WHERE qty = 41)`, nil)
	if len(res.Rows) != 0 {
		t.Fatalf("EXISTS false: %d", len(res.Rows))
	}
}

func TestScalarFunctions(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT UPPER(epc), LOWER('ABC'), LENGTH(epc), ABS(0 - qty), COALESCE(NULL, epc) FROM items WHERE epc = 'a1'`, nil)
	r := res.Rows[0]
	if r[0].Str() != "A1" || r[1].Str() != "abc" || r[2].Int() != 2 || r[3].Int() != 10 || r[4].Str() != "a1" {
		t.Fatalf("scalar functions: %v", r)
	}
}

func TestStringConcat(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT epc || '-x' FROM items WHERE epc = 'a1'`, nil)
	if res.Rows[0][0].Str() != "a1-x" {
		t.Fatalf("concat: %v", res.Rows[0][0])
	}
}

func TestIndexProbeMatchesScan(t *testing.T) {
	s := store.New()
	mustExec(t, s, `CREATE TABLE t (k STRING, v INT)`, nil)
	tbl, _ := s.Table("t")
	for i := 0; i < 200; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (k, v)`, event.MakeBindings(map[string]event.Value{
			"k": event.StringValue(strings.Repeat("x", i%5+1)),
			"v": event.IntValue(int64(i)),
		}))
	}
	scanRes := mustExec(t, s, `SELECT COUNT(*) FROM t WHERE k = 'xxx' AND v % 2 = 0`, nil)
	if err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	idxRes := mustExec(t, s, `SELECT COUNT(*) FROM t WHERE k = 'xxx' AND v % 2 = 0`, nil)
	if scanRes.Rows[0][0].Int() != idxRes.Rows[0][0].Int() {
		t.Fatalf("index probe disagrees with scan: %v vs %v", scanRes.Rows[0][0], idxRes.Rows[0][0])
	}
	if scanRes.Rows[0][0].Int() != 20 {
		t.Fatalf("count: %v", scanRes.Rows[0][0])
	}
}

func TestParseAllSplitsStatements(t *testing.T) {
	stmts, err := ParseAll(`INSERT INTO a VALUES (1); UPDATE a SET x = 2; DELETE FROM a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts: %d", len(stmts))
	}
	if _, ok := stmts[0].(*Insert); !ok {
		t.Errorf("stmt 0: %T", stmts[0])
	}
	if _, ok := stmts[1].(*Update); !ok {
		t.Errorf("stmt 1: %T", stmts[1])
	}
	if _, ok := stmts[2].(*Delete); !ok {
		t.Errorf("stmt 2: %T", stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM t`,
		`SELECT FROM t`,
		`SELECT * FORM t`,
		`INSERT INTO t VALUES`,
		`INSERT t VALUES (1)`,
		`UPDATE t x = 2`,
		`DELETE t`,
		`CREATE TABLE t (a BLOB)`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT -1`,
		`SELECT * FROM t LIMIT x`,
		`SELECT * FROM t; garbage`,
		`INSERT INTO t VALUES (1,)`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s := newDB(t)
	bad := []string{
		`SELECT * FROM missing`,
		`INSERT INTO items VALUES (1)`,
		`INSERT INTO items (nosuch) VALUES (1)`,
		`UPDATE items SET nosuch = 1`,
		`SELECT * FROM items WHERE qty / 0 = 1`,
		`SELECT nosuchfunc(qty) FROM items`,
		`SELECT * FROM items WHERE SUM(qty) = 1`,
		`SELECT * FROM items GROUP BY nosuch`,
		`SELECT SUM(epc) FROM items`,
	}
	for _, sql := range bad {
		if _, err := Exec(s, sql, nil); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %t, want %t", c.s, c.p, got, c.want)
		}
	}
}

func TestDivisionAndModuloByZero(t *testing.T) {
	s := newDB(t)
	if _, err := Exec(s, `SELECT qty % 0 FROM items`, nil); err == nil {
		t.Errorf("modulo by zero accepted")
	}
	if _, err := Exec(s, `SELECT price / 0.0 FROM items`, nil); err == nil {
		t.Errorf("float division by zero accepted")
	}
}

func TestFloatArithmetic(t *testing.T) {
	s := newDB(t)
	res := mustExec(t, s, `SELECT price + 0.5 FROM items WHERE epc = 'a1'`, nil)
	if res.Rows[0][0].Float() != 2.0 {
		t.Fatalf("float add: %v", res.Rows[0][0])
	}
	res = mustExec(t, s, `SELECT price / 2 FROM items WHERE epc = 'a1'`, nil)
	if res.Rows[0][0].Float() != 0.75 {
		t.Fatalf("float div: %v", res.Rows[0][0])
	}
}
