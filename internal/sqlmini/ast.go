// Package sqlmini implements the SQL subset that RFID rule actions and
// conditions are written in (paper §3): CREATE TABLE, INSERT, BULK INSERT
// (which expands list-valued event bindings one row per element, Rule 4),
// UPDATE, DELETE and single-table SELECT with WHERE, GROUP BY, ORDER BY,
// LIMIT and the COUNT/SUM/AVG/MIN/MAX aggregates. Bare identifiers that do
// not name a column of the target table are named parameters resolved from
// the triggering event's bindings.
package sqlmini

import (
	"strings"

	"rcep/internal/core/event"
	"rcep/internal/store"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ isStmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Table string
	Cols  []store.Column
}

func (*CreateTable) isStmt() {}

// Insert is INSERT INTO t [(cols)] VALUES (exprs). Bulk marks BULK INSERT,
// which expands list-valued parameters into one row per element.
type Insert struct {
	Table  string
	Cols   []string // empty = positional
	Values []Expr
	Bulk   bool
}

func (*Insert) isStmt() {}

// Assign is one SET col = expr clause.
type Assign struct {
	Col string
	Val Expr
}

// Update is UPDATE t SET assigns [WHERE cond].
type Update struct {
	Table string
	Sets  []Assign
	Where Expr // nil = all rows
}

func (*Update) isStmt() {}

// Delete is DELETE FROM t [WHERE cond].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) isStmt() {}

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Join is an INNER JOIN clause.
type Join struct {
	Table string
	Alias string
	On    Expr
}

// Select is SELECT [DISTINCT] items FROM t [AS a] [JOIN t2 ON cond]
// [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT].
type Select struct {
	Star     bool
	Distinct bool
	Items    []SelectItem
	Table    string
	Alias    string
	Joins    []Join
	Where    Expr
	GroupBy  []string
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 = no limit
}

func (*Select) isStmt() {}

// Explain is EXPLAIN <stmt>: executing it returns one row per plan step
// instead of running the statement.
type Explain struct {
	Stmt Stmt
}

func (*Explain) isStmt() {}

// Expr is a SQL expression.
type Expr interface{ isExpr() }

// Lit is a literal value.
type Lit struct{ V event.Value }

func (*Lit) isExpr() {}

// Ref is a bare identifier: a column of the target table, or a named
// parameter from the event bindings when no such column exists.
type Ref struct{ Name string }

func (*Ref) isExpr() {}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

func (*Unary) isExpr() {}

// Binary is a binary operation: AND OR = != <> < <= > >= + - * / % ||.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) isExpr() {}

// Call is a function call: aggregates (COUNT/SUM/AVG/MIN/MAX) or scalar
// functions (UPPER/LOWER/LENGTH/ABS/COALESCE). Star marks COUNT(*).
type Call struct {
	Name string
	Args []Expr
	Star bool
}

func (*Call) isExpr() {}

// Exists is [NOT] EXISTS (subselect).
type Exists struct {
	Sub    *Select
	Negate bool
}

func (*Exists) isExpr() {}

// InList is x [NOT] IN (e1, e2, ...) or x [NOT] IN (SELECT ...).
type InList struct {
	X      Expr
	List   []Expr
	Sub    *Select // set for subquery form; List is nil then
	Negate bool
}

func (*InList) isExpr() {}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

func (*IsNull) isExpr() {}

// Like is x [NOT] LIKE pattern, with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern Expr
	Negate  bool
}

func (*Like) isExpr() {}

// aggregateNames lists recognized aggregate functions.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// isAggregate reports whether the call is an aggregate function.
func (c *Call) isAggregate() bool { return aggregateNames[strings.ToLower(c.Name)] }

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Call:
		if x.isAggregate() {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Unary:
		return hasAggregate(x.X)
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *InList:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
	case *IsNull:
		return hasAggregate(x.X)
	case *Like:
		return hasAggregate(x.X) || hasAggregate(x.Pattern)
	}
	return false
}
