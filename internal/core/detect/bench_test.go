package detect

import (
	"fmt"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Per-operator ingestion micro-benchmarks: cost of one observation
// through each constructor shape.

func benchEngine(b *testing.B, expr event.Expr) *Engine {
	b.Helper()
	gb := graph.NewBuilder()
	if _, err := gb.AddRule(1, expr); err != nil {
		b.Fatal(err)
	}
	eng, err := New(Config{Graph: gb.Finalize()})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func BenchmarkIngestPrimitive(b *testing.B) {
	eng := benchEngine(b, prim("r1", "o", "t"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Ingest(event.Observation{Reader: "r1", Object: "o1", At: event.Time(i) * event.Time(time.Millisecond)})
	}
}

func BenchmarkIngestSeqJoin(b *testing.B) {
	// The dup-filter shape: partitioned join on (r, o).
	eng := benchEngine(b, &event.Within{
		X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
		Max: 5 * time.Second,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := fmt.Sprintf("o%d", i%64)
		_ = eng.Ingest(event.Observation{Reader: "r1", Object: o, At: event.Time(i) * event.Time(time.Millisecond)})
	}
}

func BenchmarkIngestTSeqPlus(b *testing.B) {
	eng := benchEngine(b, &event.TSeq{
		L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
		R:  prim("r2", "o2", "t2"),
		Lo: 5 * time.Second, Hi: 10 * time.Second,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Ingest(event.Observation{Reader: "r1", Object: "x", At: event.Time(i) * event.Time(100*time.Millisecond)})
	}
}

func BenchmarkIngestNegationWindow(b *testing.B) {
	eng := benchEngine(b, &event.Within{
		X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
		Max: 5 * time.Second,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := "r1"
		if i%3 == 0 {
			r = "r2"
		}
		_ = eng.Ingest(event.Observation{Reader: r, Object: "x", At: event.Time(i) * event.Time(100*time.Millisecond)})
	}
}

func BenchmarkIngestNonMatching(b *testing.B) {
	// The common case in wide deployments: the observation matches no
	// leaf pattern of this rule.
	eng := benchEngine(b, prim("r1", "o", "t"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Ingest(event.Observation{Reader: "other", Object: "o1", At: event.Time(i) * event.Time(time.Millisecond)})
	}
}
