package detect

import (
	"errors"
	"testing"
	"time"

	"rcep/internal/core/event"
)

func seqWithin(l, r event.Expr, max time.Duration) event.Expr {
	return &event.Within{X: &event.Seq{L: l, R: r}, Max: max}
}

// TestIngestBatchSortsInput: a batch may arrive in any internal order; the
// engine sorts it (stably) before feeding, so detections come out as if the
// observations had been ingested in timestamp order.
func TestIngestBatchSortsInput(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: seqWithin(prim("r1", "o", "t1"), prim("r2", "o", "t2"), 10*time.Second),
	}, nil)
	err := h.eng.IngestBatch([]event.Observation{
		obs("r2", "a", 3), // completes the sequence, but sorts after r1@1
		obs("r1", "a", 1),
	})
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	h.eng.Close()
	if len(h.sights) != 1 || h.sights[0].rule != 1 {
		t.Fatalf("detections = %v, want one rule-1 firing", h.sights)
	}
}

// TestIngestBatchAtomicOnStale pins the partial-failure contract: a batch
// whose earliest observation precedes engine time is rejected as a whole —
// no observation is applied, not even those individually newer than engine
// time. (Since the batch is fed in sorted order and Ingest can only fail on
// ordering, a mid-batch failure leaving an applied prefix is impossible.)
func TestIngestBatchAtomicOnStale(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: seqWithin(prim("r1", "o", "t1"), prim("r2", "o", "t2"), 10*time.Second),
	}, nil)
	h.feed(obs("r1", "a", 5))

	// r2@6 would complete rule 1 if the batch were applied prefix-wise.
	err := h.eng.IngestBatch([]event.Observation{obs("r2", "a", 6), obs("r1", "b", 2)})
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("stale batch: err = %v, want ErrOutOfOrder", err)
	}
	if got := h.eng.Metrics().Observations; got != 1 {
		t.Fatalf("Observations = %d after rejected batch, want 1", got)
	}
	if h.eng.Now() != ts(5) {
		t.Fatalf("Now = %s after rejected batch, want 5s", h.eng.Now())
	}
	h.eng.Close()
	if len(h.sights) != 0 {
		t.Fatalf("rejected batch produced detections: %v", h.sights)
	}
}

// TestIngestBatchEquivalentToIngest: chunked batch ingestion of a stream
// produces exactly the detections of one-at-a-time ingestion.
func TestIngestBatchEquivalentToIngest(t *testing.T) {
	rules := map[int]event.Expr{
		1: seqWithin(prim("r1", "o", "t1"), prim("r2", "o", "t2"), 10*time.Second),
		2: seqWithin(prim("r2", "o", "t1"), prim("r3", "o", "t2"), 10*time.Second),
	}
	stream := []event.Observation{
		obs("r1", "a", 1), obs("r2", "a", 2), obs("r3", "a", 3),
		obs("r1", "b", 3), obs("r2", "b", 4), obs("r3", "b", 9),
	}
	one := newHarness(t, rules, nil)
	one.feed(stream...)
	one.eng.Close()

	batched := newHarness(t, rules, nil)
	if err := batched.eng.IngestBatch(stream[:4]); err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if err := batched.eng.IngestBatch(stream[4:]); err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	batched.eng.Close()

	if len(one.sights) == 0 {
		t.Fatalf("oracle run produced no detections")
	}
	if len(one.sights) != len(batched.sights) {
		t.Fatalf("batched run: %d detections, one-at-a-time: %d", len(batched.sights), len(one.sights))
	}
	for i := range one.sights {
		if one.sights[i].rule != batched.sights[i].rule ||
			one.sights[i].inst.String() != batched.sights[i].inst.String() {
			t.Fatalf("detection %d differs: %d %v vs %d %v", i,
				batched.sights[i].rule, batched.sights[i].inst,
				one.sights[i].rule, one.sights[i].inst)
		}
	}
}

func TestIngestBatchEmpty(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: seqWithin(prim("r1", "o", "t1"), prim("r2", "o", "t2"), 10*time.Second),
	}, nil)
	defer h.eng.Close()
	if err := h.eng.IngestBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
