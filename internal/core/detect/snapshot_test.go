package detect

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
)

func TestSnapshotReflectsState(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
			R:  prim("r2", "o2", "t2"),
			Lo: 5 * time.Second, Hi: 10 * time.Second,
		},
		2: &event.Within{
			X:   &event.And{L: prim("r3", "a", "ta"), R: &event.Not{X: prim("r4", "b", "tb")}},
			Max: 10 * time.Second,
		},
	}, nil)
	h.feed(obs("r1", "i1", 1), obs("r1", "i2", 1.5), obs("r3", "x", 2))

	nodes, pending := h.eng.Snapshot()
	if len(nodes) == 0 {
		t.Fatalf("no nodes in snapshot")
	}
	if pending != 1 {
		t.Errorf("pending pseudo events = %d, want 1 (the AND-NOT expiry)", pending)
	}
	var openSeen, histSeen bool
	for _, n := range nodes {
		if n.OpenSequence == 2 {
			openSeen = true // the TSEQ+ holds {i1, i2}
		}
		if n.History > 0 {
			histSeen = true // the negated child logs occurrences... or r3? r4 unseen; prim r3? no history
		}
	}
	if !openSeen {
		t.Errorf("open TSEQ+ run not visible in snapshot: %+v", nodes)
	}
	_ = histSeen // history may legitimately be empty here

	var buf bytes.Buffer
	h.eng.DumpState(&buf)
	out := buf.String()
	for _, frag := range []string{"pending pseudo event", "SEQ+", "open=2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DumpState missing %q:\n%s", frag, out)
		}
	}
}

func TestSnapshotHistoryRetention(t *testing.T) {
	// The negated child keeps history, pruned by the computed retention.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 2 * time.Second,
		},
	}, nil)
	// Feed many negatives spread far apart; old ones must be pruned.
	for i := 0; i < 50; i++ {
		h.feed(obs("r2", "u", float64(i)*10))
	}
	nodes, _ := h.eng.Snapshot()
	maxHist := 0
	for _, n := range nodes {
		if n.History > maxHist {
			maxHist = n.History
		}
	}
	if maxHist > 5 {
		t.Errorf("history grows without pruning: %d entries retained", maxHist)
	}
}
