package detect

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
)

// Guard tests run every scenario through both execution modes and demand
// byte-identical detection streams: the interpreted tree-walk is the
// oracle for the compiled guard programs.

func gvar(n string) event.GExpr { return &event.GVar{Name: n} }
func gint(i int64) event.GExpr  { return &event.GLit{V: event.IntValue(i)} }
func gbin(op event.GuardOp, l, r event.GExpr) event.GExpr {
	return &event.GBin{Op: op, L: l, R: r}
}

// runGuardBoth feeds the same history through an interpreted and a
// compiled engine and fails unless the two detection streams agree
// exactly (rule, span, Seq numbering and bindings).
func runGuardBoth(t *testing.T, rules map[int]event.Expr, history []event.Observation) []detection {
	t.Helper()
	var streams [2][]detection
	for i, interpreted := range []bool{true, false} {
		h := newHarness(t, rules, func(cfg *Config) { cfg.Interpreted = interpreted })
		streams[i] = h.run(history...)
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("interpreted detections = %d, compiled = %d", len(streams[0]), len(streams[1]))
	}
	for i := range streams[0] {
		a, b := streams[0][i], streams[1][i]
		if a.rule != b.rule || a.inst.Begin != b.inst.Begin || a.inst.End != b.inst.End ||
			a.inst.Seq != b.inst.Seq || a.inst.Binds.String() != b.inst.Binds.String() {
			t.Fatalf("detection %d diverges:\ninterpreted %d %v %v\ncompiled    %d %v %v",
				i, a.rule, a.inst, a.inst.Binds, b.rule, b.inst, b.inst.Binds)
		}
	}
	return streams[1]
}

func TestGuardSeqInequalityBothModes(t *testing.T) {
	// SEQ(read(v1) ; read(v2)) WHERE v2 > v1 + 5, objects carry numeric
	// payload strings.
	rules := map[int]event.Expr{
		1: &event.Within{
			X: &event.Guarded{
				X:    &event.Seq{L: prim("s", "v1", "t1"), R: prim("s", "v2", "t2")},
				Cond: gbin(event.GuardGt, gvar("v2"), gbin(event.GuardAdd, gvar("v1"), gint(5))),
			},
			Max: time.Minute,
		},
	}
	history := []event.Observation{
		obs("s", "10", 1),
		obs("s", "12", 2), // 12 > 10+5 fails; 10 stays pending
		obs("s", "17", 3), // 17 > 10+5 fails (not strict); pending 10, 12
		obs("s", "16", 4), // 16 > 10+5 passes → pairs the oldest (10)
		obs("s", "30", 5), // 30 > 12+5 passes → pairs 12
	}
	got := runGuardBoth(t, rules, history)
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2", len(got))
	}
	if v1 := got[0].inst.Binds.Val("v1").Str(); v1 != "10" {
		t.Errorf("first pair initiator = %q, want 10 (failed guards must not consume)", v1)
	}
	if v1 := got[1].inst.Binds.Val("v1").Str(); v1 != "12" {
		t.Errorf("second pair initiator = %q, want 12", v1)
	}
}

func TestGuardAggregateSeqPlusBothModes(t *testing.T) {
	// WITHIN(TSEQ+(read(v)), 1min) WHERE MAX(v) > 8 AND COUNT(v) >= 3.
	rules := map[int]event.Expr{
		1: &event.Within{
			X: &event.Guarded{
				X: &event.TSeqPlus{X: prim("s", "v", "t"), Lo: 0, Hi: 2 * time.Second},
				Cond: gbin(event.GuardAnd,
					gbin(event.GuardGt, &event.GAgg{Op: event.AggMax, Name: "v"}, gint(8)),
					gbin(event.GuardGe, &event.GAgg{Op: event.AggCount, Name: "v"}, gint(3))),
			},
			Max: time.Minute,
		},
	}
	history := []event.Observation{
		// Run 1: 3 elements, max 9 → fires.
		obs("s", "7", 1), obs("s", "9", 2), obs("s", "8", 3),
		// Gap > Hi closes run 1. Run 2: 2 elements, max 12 → count fails.
		obs("s", "12", 10), obs("s", "11", 11),
		// Run 3: 3 elements, max 6 → max fails.
		obs("s", "5", 20), obs("s", "6", 21), obs("s", "4", 22),
	}
	got := runGuardBoth(t, rules, history)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if b, e := got[0].inst.Begin, got[0].inst.End; b != ts(1) || e != ts(3) {
		t.Errorf("detected span [%v,%v], want [1s,3s]", b, e)
	}
}

func TestScopedNegationBothModes(t *testing.T) {
	rules := map[int]event.Expr{
		// Lost bag: checked in, not loaded within 5s (same bag b).
		1: &event.Seq{
			L: prim("ckr", "b", "t1"),
			R: &event.Not{X: prim("ldr", "b", "t2"), Win: 5 * time.Second},
		},
		// Stray bag: loaded with no check-in in the 5s before.
		2: &event.Seq{
			L: &event.Not{X: prim("ckr2", "c", "u1"), Win: 5 * time.Second},
			R: prim("ldr2", "c", "u2"),
		},
	}
	history := []event.Observation{
		obs("ckr", "bag1", 1),
		obs("ckr", "bag2", 2), // never loaded → fires at 7
		obs("ldr", "bag1", 3), // bag1 loaded in time
		obs("ckr2", "bag3", 10), obs("ldr2", "bag3", 12), // checked in → silent
		obs("ldr2", "bag4", 20), // no check-in in [15,20) → fires
	}
	got := runGuardBoth(t, rules, history)
	var lost, stray int
	for _, d := range got {
		switch d.rule {
		case 1:
			lost++
			if b := d.inst.Binds.Val("b").Str(); b != "bag2" {
				t.Errorf("lost bag = %q, want bag2", b)
			}
		case 2:
			stray++
			if c := d.inst.Binds.Val("c").Str(); c != "bag4" {
				t.Errorf("stray bag = %q, want bag4", c)
			}
		}
	}
	if lost != 1 || stray != 1 {
		t.Fatalf("lost = %d, stray = %d, want 1 each (%v)", lost, stray, got)
	}
}

func TestScopedNegationAndBothModes(t *testing.T) {
	// a AND no b within 3s of it — no enclosing WITHIN needed.
	rules := map[int]event.Expr{
		1: &event.And{
			L: prim("a", "x", "t1"),
			R: &event.Not{X: prim("b", "y", "t2"), Win: 3 * time.Second},
		},
	}
	history := []event.Observation{
		obs("a", "o1", 1),
		obs("b", "k", 3),   // within 3s of o1 → suppressed
		obs("a", "o2", 10), // clean window → fires at 13
	}
	got := runGuardBoth(t, rules, history)
	if len(got) != 1 || got[0].inst.Binds.Val("x").Str() != "o2" {
		t.Fatalf("detections = %v, want one for o2", got)
	}
}

func TestGuardPullSeqInitiatorBothModes(t *testing.T) {
	// TSEQ with a pulled TSEQ+ initiator and a parent guard joining the
	// run's aggregate against the terminator's payload.
	rules := map[int]event.Expr{
		1: &event.Within{
			X: &event.Guarded{
				X: &event.TSeq{
					L:  &event.TSeqPlus{X: prim("s", "v", "t"), Lo: 0, Hi: time.Second},
					R:  prim("q", "w", "u"),
					Lo: 2 * time.Second, Hi: 10 * time.Second,
				},
				Cond: gbin(event.GuardGt, gvar("w"), &event.GAgg{Op: event.AggSum, Name: "v"}),
			},
			Max: time.Minute,
		},
	}
	history := []event.Observation{
		obs("s", "3", 1), obs("s", "4", 1.5), // run sums to 7
		obs("q", "5", 5), // 5 > 7 fails; run stays unconsumed
		obs("q", "9", 6), // 9 > 7 passes → consumes the run
	}
	got := runGuardBoth(t, rules, history)
	if len(got) != 1 {
		t.Fatalf("detections = %d, want 1", len(got))
	}
	if w := got[0].inst.Binds.Val("w").Str(); w != "9" {
		t.Errorf("terminator = %q, want 9 (failed guard must not consume the run)", w)
	}
}

func guardedCheckpointRules() map[int]event.Expr {
	return map[int]event.Expr{
		1: &event.Within{
			X: &event.Guarded{
				X:    &event.TSeqPlus{X: prim("s", "v", "t"), Lo: 0, Hi: 2 * time.Second},
				Cond: gbin(event.GuardGe, &event.GAgg{Op: event.AggSum, Name: "v"}, gint(20)),
			},
			Max: time.Minute,
		},
	}
}

// TestGuardedCheckpointRoundTrip splits a guarded TSEQ+ run across a
// save/restore in both execution modes: the restored accumulators must
// produce the same detection the uninterrupted engine does.
func TestGuardedCheckpointRoundTrip(t *testing.T) {
	first := []event.Observation{obs("s", "9", 1), obs("s", "8", 2)}
	second := []event.Observation{obs("s", "7", 3)} // sum 24 ≥ 20 → fires
	for _, interpreted := range []bool{true, false} {
		mod := func(cfg *Config) { cfg.Interpreted = interpreted }

		var whole []detection
		base := newHarness(t, guardedCheckpointRules(), mod)
		base.feed(first...)
		base.feed(second...)
		base.eng.Close()
		whole = base.sights

		split := newHarness(t, guardedCheckpointRules(), mod)
		split.feed(first...)
		var buf bytes.Buffer
		if err := split.eng.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"aggs"`) {
			t.Fatalf("checkpoint lacks aggregate accumulators: %s", buf.String())
		}
		restored := newHarness(t, guardedCheckpointRules(), mod)
		if err := restored.eng.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		restored.feed(second...)
		restored.eng.Close()

		if len(whole) != 1 || len(restored.sights) != 1 {
			t.Fatalf("interpreted=%v: whole=%d restored=%d detections, want 1 each", interpreted, len(whole), len(restored.sights))
		}
		a, b := whole[0].inst, restored.sights[0].inst
		if a.Begin != b.Begin || a.End != b.End || a.Binds.String() != b.Binds.String() {
			t.Fatalf("interpreted=%v: restored detection %v %v != %v %v", interpreted, b, b.Binds, a, a.Binds)
		}
	}
}

// TestGuardedCheckpointCorruption patches the aggregate block of a valid
// checkpoint and expects each mutation to be rejected on restore.
func TestGuardedCheckpointCorruption(t *testing.T) {
	h := newHarness(t, guardedCheckpointRules(), nil)
	h.feed(obs("s", "9", 1), obs("s", "8", 2))
	var buf bytes.Buffer
	if err := h.eng.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var ck map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &ck); err != nil {
		t.Fatal(err)
	}

	mutate := func(name, wantErr string, mut func(open map[string]any)) {
		var nodes []map[string]any
		if err := json.Unmarshal(ck["nodes"], &nodes); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range nodes {
			if open, ok := n["open"].(map[string]any); ok {
				mut(open)
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no open sequence in checkpoint", name)
		}
		patched, err := json.Marshal(nodes)
		if err != nil {
			t.Fatal(err)
		}
		full := map[string]json.RawMessage{}
		for k, v := range ck {
			full[k] = v
		}
		full["nodes"] = patched
		doc, err := json.Marshal(full)
		if err != nil {
			t.Fatal(err)
		}
		fresh := newHarness(t, guardedCheckpointRules(), nil)
		err = fresh.eng.RestoreCheckpoint(bytes.NewReader(doc))
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: restore error = %v, want containing %q", name, err, wantErr)
		}
	}

	mutate("dropped accumulators", "aggregate accumulator", func(open map[string]any) {
		delete(open, "aggs")
	})
	mutate("extra accumulator", "aggregate accumulator", func(open map[string]any) {
		aggs := open["aggs"].([]any)
		open["aggs"] = append(aggs, aggs[0])
	})
	mutate("renamed variable", `variable "bogus"`, func(open map[string]any) {
		open["aggs"].([]any)[0].(map[string]any)["var"] = "bogus"
	})
	mutate("impossible count", "counts", func(open map[string]any) {
		acc := open["aggs"].([]any)[0].(map[string]any)["acc"].(map[string]any)
		acc["n"] = 99
	})
}

// TestGuardedSeqPlusTruncationBothModes drives a guarded run past
// MaxOpenSequence so the accumulators are rebuilt from the retained half,
// and checks both modes agree on the outcome.
func TestGuardedSeqPlusTruncationBothModes(t *testing.T) {
	rules := map[int]event.Expr{
		1: &event.Within{
			X: &event.Guarded{
				X:    &event.TSeqPlus{X: prim("s", "v", "t"), Lo: 0, Hi: 2 * time.Second},
				Cond: gbin(event.GuardGt, &event.GAgg{Op: event.AggCount, Name: "v"}, gint(1)),
			},
			Max: 10 * time.Minute,
		},
	}
	var history []event.Observation
	for i := 0; i < 12; i++ {
		history = append(history, obs("s", "2", 1+float64(i)))
	}
	var streams [2][]detection
	for i, interpreted := range []bool{true, false} {
		h := newHarness(t, rules, func(cfg *Config) {
			cfg.Interpreted = interpreted
			cfg.MaxOpenSequence = 4
		})
		streams[i] = h.run(history...)
	}
	if len(streams[0]) == 0 {
		t.Fatal("truncated guarded run produced no detections")
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("interpreted = %d detections, compiled = %d", len(streams[0]), len(streams[1]))
	}
	for i := range streams[0] {
		a, b := streams[0][i].inst, streams[1][i].inst
		if a.Begin != b.Begin || a.End != b.End || a.Binds.String() != b.Binds.String() {
			t.Fatalf("detection %d diverges after truncation", i)
		}
	}
}
