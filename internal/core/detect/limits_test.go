package detect

import (
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Buffer/history caps: production hardening against unbounded rules.

func buildEngine(t *testing.T, cfg Config, rules map[int]event.Expr) (*Engine, *[]detection) {
	t.Helper()
	b := graph.NewBuilder()
	for id, e := range rules {
		if _, err := b.AddRule(id, e); err != nil {
			t.Fatal(err)
		}
	}
	var sights []detection
	cfg.Graph = b.Finalize()
	cfg.OnDetect = func(rid int, inst *event.Instance) {
		sights = append(sights, detection{rid, inst})
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, &sights
}

func TestBufferCapEvictsOldest(t *testing.T) {
	// Unbounded SEQ: initiators accumulate forever without a cap.
	rules := map[int]event.Expr{
		1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
	}
	eng, _ := buildEngine(t, Config{MaxPartitionBuffer: 10}, rules)
	for i := 0; i < 100; i++ {
		if err := eng.Ingest(obs("rA", "x", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.Dropped != 90 {
		t.Fatalf("dropped = %d, want 90", m.Dropped)
	}
	nodes, _ := eng.Snapshot()
	for _, n := range nodes {
		if n.LeftBuffer > 10 {
			t.Errorf("buffer exceeded cap: %+v", n)
		}
	}
	// The newest initiators survive: a terminator pairs with the oldest
	// RETAINED one (chronicle over what's left).
	var got []detection
	engGot := eng
	_ = engGot
	eng2, sights := buildEngine(t, Config{MaxPartitionBuffer: 10}, map[int]event.Expr{
		1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
	})
	for i := 0; i < 100; i++ {
		_ = eng2.Ingest(obs("rA", "x", float64(i)))
	}
	_ = eng2.Ingest(obs("rB", "y", 200))
	got = *sights
	if len(got) != 1 || got[0].inst.Binds.Val("t1").Time() != ts(90) {
		t.Fatalf("pairing after eviction: %v", got)
	}
}

func TestHistoryCapEvictsOldest(t *testing.T) {
	rules := map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 1000 * time.Second, // huge retention so only the cap prunes
		},
	}
	eng, _ := buildEngine(t, Config{MaxHistory: 5}, rules)
	for i := 0; i < 50; i++ {
		if err := eng.Ingest(obs("r2", "u", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.Dropped != 45 {
		t.Fatalf("dropped = %d, want 45", m.Dropped)
	}
	nodes, _ := eng.Snapshot()
	for _, n := range nodes {
		if n.History > 5 {
			t.Errorf("history exceeded cap: %+v", n)
		}
	}
}

func TestUnboundedByDefault(t *testing.T) {
	rules := map[int]event.Expr{
		1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
	}
	eng, _ := buildEngine(t, Config{}, rules)
	for i := 0; i < 200; i++ {
		_ = eng.Ingest(obs("rA", "x", float64(i)))
	}
	if m := eng.Metrics(); m.Dropped != 0 {
		t.Fatalf("unbounded engine dropped %d", m.Dropped)
	}
}
