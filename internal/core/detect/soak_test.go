package detect

import (
	"testing"
	"time"

	"rcep/internal/core/event"
)

// TestSoakMemoryBounded feeds a long stream through the paper's rule
// shapes and asserts that engine state stays bounded: chronicle
// consumption, constraint-based purging and retention pruning must keep
// buffers and histories from growing with stream length.
func TestSoakMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A never-pausing conveyor keeps the TSEQ+ run open forever; the cap
	// bounds it (the soak found this — see Config.MaxOpenSequence).
	h := newHarness(t, map[int]event.Expr{
		// Rule 1 shape: self-join with WITHIN.
		1: &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
			Max: 5 * time.Second,
		},
		// Rule 4 shape: TSEQ over TSEQ+.
		2: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("rA", "o1", "t1"), Lo: 0, Hi: time.Second},
			R:  prim("rB", "o2", "t2"),
			Lo: 5 * time.Second, Hi: 10 * time.Second,
		},
		// Rule 5 shape: negation under WITHIN.
		3: &event.Within{
			X:   &event.And{L: prim("rC", "a", "ta"), R: &event.Not{X: prim("rD", "b", "tb")}},
			Max: 5 * time.Second,
		},
	}, func(c *Config) { c.MaxOpenSequence = 4096 })

	const n = 200_000
	for i := 0; i < n; i++ {
		at := float64(i) * 0.05 // 20 events/sec
		switch i % 10 {
		case 0, 1, 2:
			// Bursts for the TSEQ+ (same reader).
			h.feed(obs("rA", objName(i%7), at))
		case 3:
			h.feed(obs("rB", "case", at))
		case 4:
			h.feed(obs("rC", objName(i%5), at))
		case 5:
			h.feed(obs("rD", "super", at))
		default:
			h.feed(obs("r1", objName(i%50), at))
		}
	}
	nodes, pendingPseudo := h.eng.Snapshot()
	for _, nd := range nodes {
		if nd.LeftBuffer > 1000 || nd.RightBuffer > 1000 {
			t.Errorf("buffer grew with stream length: %+v", nd)
		}
		if nd.History > 2000 {
			t.Errorf("history grew with stream length: %+v", nd)
		}
		if nd.OpenSequence > 4096 {
			t.Errorf("open sequence exceeded its cap: %+v", nd)
		}
	}
	if pendingPseudo > 1000 {
		t.Errorf("pseudo queue grew with stream length: %d", pendingPseudo)
	}
	m := h.eng.Metrics()
	if m.Detections == 0 {
		t.Fatalf("soak produced no detections; scenario is vacuous")
	}
	// The never-pausing conveyor must have tripped the open-run cap.
	if m.Dropped == 0 {
		t.Errorf("expected the open-sequence cap to shed elements")
	}
}

func objName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i%10))
}
