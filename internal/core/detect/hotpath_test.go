package detect

import (
	"fmt"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

func buildGraph(t testing.TB, rules map[int]event.Expr) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for id := 1; id <= len(rules); id++ {
		if _, err := b.AddRule(id, rules[id]); err != nil {
			t.Fatalf("AddRule(%d): %v", id, err)
		}
	}
	return b.Finalize()
}

func primPattern(reader string) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: "o"},
		At:     event.Term{Var: "t"},
	}
}

// TestAllocBudgetMatch pins the compiled ingest→match path at ≤2
// allocations per matching event (one exact-size Bindings, one Instance).
// A pooling or interning regression fails here instead of silently
// eroding throughput.
func TestAllocBudgetMatch(t *testing.T) {
	g := buildGraph(t, map[int]event.Expr{1: primPattern("r1")})
	eng, err := New(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	now := event.Time(0)
	ingest := func() {
		now += event.Time(time.Second)
		if err := eng.Ingest(event.Observation{Reader: "r1", Object: "tag-7", At: now}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ingest() // warm the intern table and caches
	}
	if avg := testing.AllocsPerRun(200, ingest); avg > 2 {
		t.Fatalf("matching event allocates %.1f/op, budget is 2", avg)
	}
}

// TestAllocBudgetNonMatch pins the reject path at zero allocations: an
// observation matching no pattern must cost only interned compares.
func TestAllocBudgetNonMatch(t *testing.T) {
	g := buildGraph(t, map[int]event.Expr{1: primPattern("r1")})
	eng, err := New(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	now := event.Time(0)
	ingest := func() {
		now += event.Time(time.Second)
		if err := eng.Ingest(event.Observation{Reader: "r9", Object: "tag-7", At: now}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ingest()
	}
	if avg := testing.AllocsPerRun(200, ingest); avg > 0 {
		t.Fatalf("non-matching event allocates %.1f/op, budget is 0", avg)
	}
}

// TestAllocBudgetNegation bounds the pseudo-event-heavy path: an infield
// pattern schedules a pseudo event and runs a filtered negation query per
// observation. With the pseudo and filter freelists warm this stays
// within a small constant (primitive binds+instance, the emitted sequence
// instance, and history bookkeeping).
func TestAllocBudgetNegation(t *testing.T) {
	rule := &event.Within{
		X: &event.Seq{
			L: &event.Not{X: primPattern("r1")},
			R: primPattern("r2"),
		},
		Max: 4 * time.Second,
	}
	g := buildGraph(t, map[int]event.Expr{1: rule})
	eng, err := New(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	now := event.Time(0)
	ingest := func() {
		now += event.Time(10 * time.Second) // outside the window: every query is clean
		if err := eng.Ingest(event.Observation{Reader: "r2", Object: "tag-7", At: now}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		ingest()
	}
	if avg := testing.AllocsPerRun(300, ingest); avg > 6 {
		t.Fatalf("negation-path event allocates %.1f/op, budget is 6", avg)
	}
}

// TestPooledNoAliasingIntoDetections pins the pooling contract of
// DESIGN.md §9: recycled pseudo events and filter bindings must never
// alias into delivered detections. Every detection is rendered at
// delivery time; after the stream — driven through IngestBatch,
// AdvanceBefore catch-ups, and Close so pools cycle heavily — the same
// retained instances must render identically.
func TestPooledNoAliasingIntoDetections(t *testing.T) {
	rules := map[int]event.Expr{
		1: &event.Within{ // infield negation: exercises filters + pseudo events
			X:   &event.Seq{L: &event.Not{X: primPattern("r1")}, R: primPattern("r1")},
			Max: 3 * time.Second,
		},
		2: &event.Within{ // negated conjunction: PseudoAndNotExpire path
			X:   &event.And{L: primPattern("r2"), R: &event.Not{X: primPattern("r3")}},
			Max: 2 * time.Second,
		},
		3: &event.Seq{L: primPattern("r2"), R: primPattern("r3")}, // joined pairing
	}
	g := buildGraph(t, rules)
	render := func(rid int, inst *event.Instance) string {
		return fmt.Sprintf("%d|%s|%s|%s|%d", rid, inst.Begin, inst.End, inst.Binds.String(), inst.Seq)
	}
	var atDelivery []string
	var retained []*event.Instance
	var retainedRule []int
	eng, err := New(Config{Graph: g, OnDetect: func(rid int, inst *event.Instance) {
		atDelivery = append(atDelivery, render(rid, inst))
		retained = append(retained, inst)
		retainedRule = append(retainedRule, rid)
	}})
	if err != nil {
		t.Fatal(err)
	}
	readers := []string{"r1", "r2", "r3"}
	objects := []string{"a", "b"}
	now := event.Time(0)
	for i := 0; i < 120; i++ {
		var batch []event.Observation
		for j := 0; j < 3; j++ {
			now += event.Time(700 * time.Millisecond)
			batch = append(batch, event.Observation{
				Reader: readers[(i+j)%len(readers)],
				Object: objects[(i*3+j)%len(objects)],
				At:     now,
			})
		}
		if err := eng.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			now += event.Time(5 * time.Second)
			if err := eng.AdvanceBefore(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Close()
	if len(atDelivery) == 0 {
		t.Fatal("workload produced no detections; test is vacuous")
	}
	for i, inst := range retained {
		if got := render(retainedRule[i], inst); got != atDelivery[i] {
			t.Fatalf("detection %d mutated after delivery:\n  at delivery: %s\n  afterwards:  %s", i, atDelivery[i], got)
		}
	}
}
