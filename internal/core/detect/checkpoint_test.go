package detect

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// checkpointRules exercises every serialized structure: Seq buffers,
// negation history with windows, an open TSEQ+ run, and pending pseudo
// events.
func checkpointRules() map[int]event.Expr {
	return map[int]event.Expr{
		1: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
			R:  prim("r2", "o2", "t2"),
			Lo: 5 * time.Second, Hi: 10 * time.Second,
		},
		2: &event.Within{
			X:   &event.And{L: prim("r3", "a", "ta"), R: &event.Not{X: prim("r4", "b", "tb")}},
			Max: 10 * time.Second,
		},
		3: &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "u1"), R: primVars("r", "o", "u2")},
			Max: 5 * time.Second,
		},
	}
}

func buildCkEngine(t *testing.T, sink *[]detection) *Engine {
	t.Helper()
	b := graph.NewBuilder()
	rules := checkpointRules()
	ids := make([]int, 0, len(rules))
	for id := range rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := b.AddRule(id, rules[id]); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(Config{
		Graph: b.Finalize(),
		OnDetect: func(rid int, inst *event.Instance) {
			*sink = append(*sink, detection{rid, inst})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// history splits mid-flight: an open TSEQ+ run, a pending AND-NOT window,
// and a buffered Seq initiator all survive the restart.
func ckFirstHalf() []event.Observation {
	return []event.Observation{
		obs("r1", "i1", 1), obs("r1", "i2", 1.5), // open TSEQ+ run
		obs("r3", "x", 2),     // AND-NOT pending, pseudo at 12
		obs("rQ", "dup", 3),   // Seq initiator waiting (rule 3)
		obs("r4", "bad", 3.5), // negation history entry
	}
}

func ckSecondHalf() []event.Observation {
	return []event.Observation{
		obs("r1", "i3", 4),   // gap 2.5s > 1s: starts a new run; the old one closes lazily
		obs("rQ", "dup", 6),  // pairs with the buffered initiator
		obs("r2", "case", 8), // terminates the first TSEQ+ run (dist 6.5s)
		obs("r3", "y", 20),   // clean AND-NOT window: fires at 30 on Close
	}
}

func sigOf(ds []detection) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.inst.Binds.String()+d.inst.Begin.String()+d.inst.End.String())
	}
	return out
}

func TestCheckpointResumesIdentically(t *testing.T) {
	// Reference: one engine, no restart.
	var refSights []detection
	ref := buildCkEngine(t, &refSights)
	for _, o := range ckFirstHalf() {
		if err := ref.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range ckSecondHalf() {
		if err := ref.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	ref.Close()

	// Checkpointed: save after the first half, restore into a fresh
	// engine, replay the second half.
	var aSights []detection
	a := buildCkEngine(t, &aSights)
	for _, o := range ckFirstHalf() {
		if err := a.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := a.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}

	var bSights []detection
	bEng := buildCkEngine(t, &bSights)
	if err := bEng.RestoreCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	for _, o := range ckSecondHalf() {
		if err := bEng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	bEng.Close()

	combined := append(sigOf(aSights), sigOf(bSights)...)
	if !reflect.DeepEqual(combined, sigOf(refSights)) {
		t.Fatalf("resumed run diverges:\nresumed: %v\nref:     %v", combined, sigOf(refSights))
	}
	if len(refSights) == 0 {
		t.Fatalf("scenario produced no detections; test is vacuous")
	}
	// The pending AND-NOT pseudo event survived and fired on Close —
	// confirm rule 2 detected despite the restart.
	rules := map[int]bool{}
	for _, d := range bSights {
		rules[d.rule] = true
	}
	if !rules[2] {
		t.Errorf("AND-NOT detection lost across the restart: %v", bSights)
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	var sights []detection
	a := buildCkEngine(t, &sights)
	var snap bytes.Buffer
	if err := a.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	// Different rules → different fingerprint → refuse.
	b := graph.NewBuilder()
	if _, err := b.AddRule(1, prim("rX", "o", "t")); err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{Graph: b.Finalize()})
	if err != nil {
		t.Fatal(err)
	}
	err = other.RestoreCheckpoint(&snap)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched graph accepted: %v", err)
	}
}

func TestCheckpointRequiresFreshEngine(t *testing.T) {
	var sights []detection
	a := buildCkEngine(t, &sights)
	_ = a.Ingest(obs("r1", "i1", 1))
	var snap bytes.Buffer
	if err := a.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreCheckpoint(&snap); err == nil {
		t.Fatalf("restore onto a used engine accepted")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	var sights []detection
	a := buildCkEngine(t, &sights)
	if err := a.RestoreCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatalf("garbage checkpoint accepted")
	}
}

func TestCheckpointEmptyEngine(t *testing.T) {
	// A fresh engine round-trips to a fresh engine.
	var s1, s2 []detection
	a := buildCkEngine(t, &s1)
	var snap bytes.Buffer
	if err := a.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	b := buildCkEngine(t, &s2)
	if err := b.RestoreCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if err := b.Ingest(obs("r1", "i1", 1)); err != nil {
		t.Fatal(err)
	}
}
