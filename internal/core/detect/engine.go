package detect

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// ErrOutOfOrder is returned by Ingest when an observation's timestamp
// precedes the engine's current time. Use stream.Reorder upstream for
// sources that deliver out of order.
var ErrOutOfOrder = errors.New("detect: observation out of timestamp order")

// Config configures an Engine.
type Config struct {
	// Graph is the finalized event graph (graph.Builder.Finalize).
	Graph *graph.Graph

	// Context is the parameter context; the zero value is Chronicle,
	// the paper's choice for RFID streams.
	Context pctx.Context

	// Groups maps a reader EPC to the groups it belongs to. When nil,
	// every reader is its own group (paper §2.1 default).
	Groups func(reader string) []string

	// TypeOf maps an object EPC to its type name, e.g. "laptop". When
	// nil, type predicates never match.
	TypeOf func(object string) string

	// OnDetect is invoked synchronously for every rule whose event part
	// is detected, with the detected complex event instance.
	OnDetect func(ruleID int, inst *event.Instance)

	// MaxPartitionBuffer, when positive, bounds each join partition of
	// every node's pending-instance buffers: the oldest instance is
	// evicted past the cap and counted in Metrics.Dropped. Zero keeps
	// the paper's unbounded semantics.
	MaxPartitionBuffer int

	// MaxHistory, when positive, bounds each node's retained occurrence
	// history the same way.
	MaxHistory int

	// MaxOpenSequence, when positive, bounds an open SEQ+/TSEQ+ run: an
	// input stream that never violates the adjacency bound (a conveyor
	// that never pauses) otherwise grows the run without limit. On
	// overflow the older half of the run is discarded (counted in
	// Metrics.Dropped). Prefer WITHIN bounds on the sequence (paper
	// Fig. 6b) — this cap is the backstop.
	MaxOpenSequence int

	// IndexPrimitives routes each observation only to primitive
	// patterns whose reader literal matches (plus patterns with
	// variable readers), instead of probing every leaf — an
	// optimization beyond the paper that flattens the per-rule matching
	// cost (ablation A5). Default off to mirror the paper's engine. It
	// governs the interpreted path only: compiled plans always dispatch
	// through the symbol index.
	IndexPrimitives bool

	// Interpreted forces the legacy per-event interpretation path
	// (Term/Pred AST walks, string compares). Default off: the engine
	// compiles primitive patterns into prepared plans at construction
	// (compile.go) and interns reader/object strings at ingest. The
	// interpreted path is kept as the oracle for equivalence testing.
	Interpreted bool

	// Interner supplies a shared intern table for the compiled path —
	// shard engines pass one table to every worker so symbols agree
	// across shards. Nil gives the engine a private table. Ignored when
	// Interpreted is set.
	Interner *event.Interner
}

// Metrics counts engine activity; useful in tests and benchmarks.
type Metrics struct {
	Observations    uint64 // observations ingested
	PrimMatches     uint64 // primitive pattern matches
	Emitted         uint64 // event instances emitted by graph nodes
	PseudoScheduled uint64 // pseudo events scheduled
	PseudoFired     uint64 // pseudo events executed
	Detections      uint64 // rule-level detections delivered
	Dropped         uint64 // instances evicted by buffer/history caps
}

// Engine is the RCEDA complex event detection engine. It is not safe for
// concurrent use; feed it from a single goroutine.
type Engine struct {
	g        *graph.Graph
	ctx      pctx.Context
	groups   func(string) []string
	typeOf   func(string) string
	onDetect func(int, *event.Instance)

	states  []*nodeState
	maxOpen int
	pq      pseudoHeap
	now     event.Time
	seq     uint64 // instance arrival counter
	pseq    uint64 // pseudo scheduling counter
	m       Metrics

	// primIndex routes observations by reader literal; primWild holds
	// patterns with variable/anonymous readers. Nil when indexing is
	// off.
	primIndex map[string][]*graph.Node
	primWild  []*graph.Node

	// groupCache and typeCache memoize the group(r) and type(o)
	// functions: reader groups and object types are deployment
	// configuration, constant for the engine's lifetime (paper §2.1).
	groupCache map[string][]string
	typeCache  map[string]string

	// Compiled hot path (compile.go). dispatch is indexed by reader
	// Symbol; wildPlans holds patterns with variable/anonymous readers;
	// groupsBySym/typeBySym are flat per-symbol memoizations replacing
	// the string-keyed caches above; filterPool and psPool are
	// freelists for transient query filters and fired pseudo events.
	compiled    bool
	intern      *event.Interner
	dispatch    [][]*primPlan
	wildPlans   []*primPlan
	groupsBySym [][]string
	groupsSet   []bool
	typeBySym   []string
	typeSet     []bool
	filterPool  []event.Bindings
	psPool      []*pseudoEvent

	// symCache is an engine-local (lock-free) mirror of the shared intern
	// table: the engine is single-goroutine, so hot-path symbol lookups
	// skip the Interner's RWMutex entirely. Symbols never change once
	// assigned, so the mirror can only ever agree with the shared table.
	symCache map[string]event.Symbol

	// instSlab and bindSlab are the hot-path arenas (DESIGN.md §12):
	// instances and binding arrays are carved out of large slabs instead
	// of malloc'd one by one. Delivered instances are never recycled —
	// a slab is abandoned (kept alive by its outstanding pointers, then
	// collected with them) once full, which preserves the no-aliasing
	// contract of TestPooledNoAliasingIntoDetections while cutting the
	// allocation count by the slab size.
	instSlab []event.Instance
	bindSlab []event.Binding

	// batchScratch is the engine-owned sort buffer for IngestBatch, so an
	// unsorted batch costs no allocation after the first.
	batchScratch []event.Observation
}

// Arena slab sizes: one malloc amortized over this many objects.
const (
	instSlabSize = 256
	bindSlabSize = 1024
)

// newInstance allocates an event instance — slab-carved on the compiled
// path, plain on the interpreted oracle.
func (e *Engine) newInstance(begin, end event.Time, binds event.Bindings, seq uint64) *event.Instance {
	if !e.compiled {
		return &event.Instance{Begin: begin, End: end, Binds: binds, Seq: seq}
	}
	if len(e.instSlab) == cap(e.instSlab) {
		e.instSlab = make([]event.Instance, 0, instSlabSize)
	}
	e.instSlab = append(e.instSlab, event.Instance{Begin: begin, End: end, Binds: binds, Seq: seq})
	return &e.instSlab[len(e.instSlab)-1]
}

// allocBinds carves a length-n bindings array out of the bindings slab.
// The returned slice has cap == n, so append-style growth relocates off
// the slab instead of clobbering a neighbour.
func (e *Engine) allocBinds(n int) event.Bindings {
	if !e.compiled {
		return make(event.Bindings, n)
	}
	if cap(e.bindSlab)-len(e.bindSlab) < n {
		size := bindSlabSize
		if n > size {
			size = n
		}
		e.bindSlab = make([]event.Binding, 0, size)
	}
	off := len(e.bindSlab)
	e.bindSlab = e.bindSlab[:off+n]
	return event.Bindings(e.bindSlab[off : off+n : off+n])
}

// mergeBinds is Bindings.Merge allocating its result from the slab on the
// compiled path; byte-for-byte the same result either way.
func (e *Engine) mergeBinds(b, o event.Bindings) event.Bindings {
	if !e.compiled {
		return b.Merge(o)
	}
	if len(b) == 0 && len(o) == 0 {
		return nil
	}
	m := e.allocBinds(len(b) + len(o))[:0]
	i, j := 0, 0
	for i < len(b) || j < len(o) {
		switch {
		case j >= len(o):
			m = append(m, b[i])
			i++
		case i >= len(b):
			m = append(m, o[j])
			j++
		case b[i].Var < o[j].Var:
			m = append(m, b[i])
			i++
		case b[i].Var > o[j].Var:
			m = append(m, o[j])
			j++
		default:
			m = append(m, o[j])
			i++
			j++
		}
	}
	return m
}

// symOf interns through the engine-local cache, avoiding the shared
// table's lock on every hit.
func (e *Engine) symOf(s string) event.Symbol {
	if sym, ok := e.symCache[s]; ok {
		return sym
	}
	sym := e.intern.Intern(s)
	e.symCache[s] = sym
	return sym
}

// nodeState is the per-node runtime state.
type nodeState struct {
	n *graph.Node

	// left and right buffer pending constituent instances for binary
	// constructors (And, Seq). right is nil when terminators never wait.
	left, right *buffer

	// hist logs this node's occurrences for window queries.
	hist *history

	// open is the current open sequence of an eager SEQ+/TSEQ+ node;
	// spare recycles the previous run's struct and element arrays once it
	// closes (closeOpen), so steady-state runs allocate nothing.
	open  *openSeq
	spare *openSeq

	// guard is the node's WHERE predicate runtime (guardplan.go); nil
	// for unguarded nodes.
	guard *guardState

	// closureDelay bounds how long after an instance's End this node may
	// emit it (e.g. a TSEQ+ closure fires Hi after its last element).
	closureDelay time.Duration
}

// openSeq is an in-progress aperiodic sequence. starts tracks each
// element's begin time so overflow truncation can recompute the span.
type openSeq struct {
	elems   []event.Bindings
	starts  []event.Time
	begin   event.Time
	last    event.Time
	version uint64
	// accs are running aggregate accumulators for the node's guard,
	// indexed like guardState.aggVars; nil until the first element of a
	// guarded run. Maintained in both execution modes so checkpoints are
	// mode-independent.
	accs []event.AggAcc
}

// pseudoEvent queries the occurrences (or non-occurrences) of a target
// event over a window at a scheduled execution time (paper §4.5).
type pseudoEvent struct {
	exec     event.Time
	seq      uint64
	node     *graph.Node // protocol owner
	strategy graph.PseudoStrategy
	payload  *event.Instance // the constituent that scheduled the query
	w0, w1   event.Time      // query window
	version  uint64          // open-sequence version for SeqPlusClose
}

type pseudoHeap []*pseudoEvent

func (h pseudoHeap) Len() int { return len(h) }
func (h pseudoHeap) Less(i, j int) bool {
	if h[i].exec != h[j].exec {
		return h[i].exec < h[j].exec
	}
	return h[i].seq < h[j].seq
}
func (h pseudoHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pseudoHeap) Push(x any)   { *h = append(*h, x.(*pseudoEvent)) }
func (h *pseudoHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// New builds an engine for a finalized event graph.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, errors.New("detect: Config.Graph is required")
	}
	e := &Engine{
		g:          cfg.Graph,
		ctx:        cfg.Context,
		groups:     cfg.Groups,
		typeOf:     cfg.TypeOf,
		onDetect:   cfg.OnDetect,
		now:        event.MinTime,
		maxOpen:    cfg.MaxOpenSequence,
		groupCache: map[string][]string{},
		typeCache:  map[string]string{},
	}
	if e.groups == nil {
		e.groups = func(r string) []string { return []string{r} }
	}
	if e.typeOf == nil {
		e.typeOf = func(string) string { return "" }
	}
	if e.onDetect == nil {
		e.onDetect = func(int, *event.Instance) {}
	}
	maxID := 0
	for _, n := range cfg.Graph.Nodes {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	e.states = make([]*nodeState, maxID+1)
	limit := func(b *buffer) *buffer {
		b.cap = cfg.MaxPartitionBuffer
		b.dropped = &e.m.Dropped
		return b
	}
	for _, n := range cfg.Graph.Nodes {
		st := &nodeState{n: n}
		if n.Guard != nil {
			st.guard = newGuardState(n, !cfg.Interpreted)
		}
		if n.Kind == graph.KindAnd || n.Kind == graph.KindSeq {
			st.left = limit(newBuffer(n.JoinVars))
		}
		if n.NeedsHistory {
			st.hist = newHistory()
			st.hist.cap = cfg.MaxHistory
			st.hist.dropped = &e.m.Dropped
		}
		e.states[n.ID] = st
	}
	// Closure delays and terminator wait-buffers need the full graph.
	for _, n := range cfg.Graph.Nodes {
		e.states[n.ID].closureDelay = closureDelay(n)
	}
	for _, n := range cfg.Graph.Nodes {
		if n.Kind == graph.KindSeq && n.NotChild != 1 {
			if closureDelay(n.Left()) > 0 {
				// The initiator can close after the terminator arrives;
				// terminators must wait.
				e.states[n.ID].right = limit(newBuffer(n.JoinVars))
			}
		}
		if n.Kind == graph.KindAnd && n.NotChild < 0 {
			e.states[n.ID].right = limit(newBuffer(n.JoinVars))
		}
	}
	if cfg.IndexPrimitives {
		e.primIndex = map[string][]*graph.Node{}
		for _, p := range cfg.Graph.Prims {
			if t := p.Prim.Reader; !t.IsVar() && t.Lit != "" {
				e.primIndex[t.Lit] = append(e.primIndex[t.Lit], p)
			} else {
				e.primWild = append(e.primWild, p)
			}
		}
	}
	if !cfg.Interpreted {
		e.compiled = true
		e.intern = cfg.Interner
		if e.intern == nil {
			e.intern = event.NewInterner()
		}
		e.symCache = make(map[string]event.Symbol, 256)
		e.buildPlans()
	}
	return e, nil
}

// Interner returns the engine's intern table, or nil on the interpreted
// path.
func (e *Engine) Interner() *event.Interner { return e.intern }

// closureDelay bounds emission lag: how long after an instance's End the
// node can still emit it.
func closureDelay(n *graph.Node) time.Duration {
	switch n.Kind {
	case graph.KindPrim, graph.KindNot:
		return 0
	case graph.KindSeqPlus:
		if n.HasDist {
			return n.Hi
		}
		return 0
	case graph.KindSeq:
		return closureDelay(n.Right())
	default: // Or, And
		var d time.Duration
		for _, c := range n.Children {
			if cd := closureDelay(c); cd > d {
				d = cd
			}
		}
		return d
	}
}

// Now returns the engine's current virtual time.
func (e *Engine) Now() event.Time { return e.now }

// Metrics returns a snapshot of activity counters.
func (e *Engine) Metrics() Metrics { return e.m }

// Ingest feeds one observation. Observations must arrive in non-decreasing
// timestamp order; pending pseudo events scheduled strictly before the
// observation's time fire first (the engine always consumes the earliest
// event of the observation and pseudo queues, paper §4.5).
func (e *Engine) Ingest(obs event.Observation) error {
	if e.now != event.MinTime && obs.At < e.now {
		return fmt.Errorf("%w: got %s, engine at %s", ErrOutOfOrder, obs.At, e.now)
	}
	e.drainPseudo(obs.At, true)
	e.now = obs.At
	e.m.Observations++
	if e.compiled {
		e.ingestCompiled(&obs)
		return nil
	}
	if e.primIndex != nil {
		// Indexed dispatch preserves node-ID order across the two
		// candidate sets so detections stay deterministic.
		lit := e.primIndex[obs.Reader]
		wild := e.primWild
		for len(lit) > 0 || len(wild) > 0 {
			var next *graph.Node
			switch {
			case len(lit) == 0:
				next, wild = wild[0], wild[1:]
			case len(wild) == 0:
				next, lit = lit[0], lit[1:]
			case lit[0].ID < wild[0].ID:
				next, lit = lit[0], lit[1:]
			default:
				next, wild = wild[0], wild[1:]
			}
			e.matchAndEmit(next, obs)
		}
		return nil
	}
	for _, prim := range e.g.Prims {
		e.matchAndEmit(prim, obs)
	}
	return nil
}

func (e *Engine) matchAndEmit(prim *graph.Node, obs event.Observation) {
	binds, ok := e.matchPrim(prim, obs)
	if !ok {
		return
	}
	e.m.PrimMatches++
	inst := e.newInstance(obs.At, obs.At, binds, e.nextSeq())
	e.emit(prim, inst)
}

// IngestBatch feeds a whole batch in timestamp order. The call is atomic
// with respect to ordering failures: if the earliest observation in the
// batch precedes the engine's current time, IngestBatch returns
// ErrOutOfOrder and NO observation is applied. (Ingest can fail only on
// ordering, and every later observation in the sorted batch is ≥ the
// first, so a mid-batch failure is impossible — the historical "applied
// prefix" state cannot occur.)
//
// This is the batch fast path of DESIGN.md §12: an already-sorted batch
// (the normal case — read cycles arrive in order) is consumed in place
// with no copy; an unsorted one is stably sorted into an engine-owned
// scratch buffer, never mutating the caller's slice. On the compiled path
// the per-event entry overhead (pseudo-queue probe, clock store, dispatch)
// is inlined into one loop, so the batch costs one function call plus the
// per-observation matching work.
func (e *Engine) IngestBatch(batch []event.Observation) error {
	if len(batch) == 0 {
		return nil
	}
	sorted := batch
	if !sortedByAt(batch) {
		e.batchScratch = append(e.batchScratch[:0], batch...)
		sorted = e.batchScratch
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	}
	if e.now != event.MinTime && sorted[0].At < e.now {
		return fmt.Errorf("%w: batch starts at %s, engine at %s", ErrOutOfOrder, sorted[0].At, e.now)
	}
	if !e.compiled {
		for _, o := range sorted {
			if err := e.Ingest(o); err != nil {
				return err
			}
		}
		return nil
	}
	e.m.Observations += uint64(len(sorted))
	for i := range sorted {
		o := &sorted[i]
		// Identical to Ingest's preamble, amortized: the pseudo queue is
		// probed only when non-empty, and the clock stores monotonically.
		if len(e.pq) > 0 && e.pq[0].exec < o.At {
			e.drainPseudo(o.At, true)
		}
		e.now = o.At
		e.ingestCompiled(o)
	}
	return nil
}

// sortedByAt reports whether the batch is already in non-decreasing
// timestamp order.
func sortedByAt(batch []event.Observation) bool {
	for i := 1; i < len(batch); i++ {
		if batch[i].At < batch[i-1].At {
			return false
		}
	}
	return true
}

// AdvanceTo moves virtual time forward to t with no intervening
// observations, firing every pseudo event scheduled at or before t. Call
// it when the source is idle so negation windows can expire.
func (e *Engine) AdvanceTo(t event.Time) error {
	if t < e.now {
		return fmt.Errorf("%w: AdvanceTo(%s), engine at %s", ErrOutOfOrder, t, e.now)
	}
	e.drainPseudo(t, false)
	e.now = t
	return nil
}

// AdvanceBefore moves virtual time forward to t, firing only the pseudo
// events scheduled strictly before t — exactly the catch-up Ingest performs
// ahead of an observation at t. Pseudo events scheduled at t itself stay
// pending, because an observation at exactly t may still arrive and affect
// them (extend an aperiodic sequence, fall inside a negation window).
// Sharded routing uses it to bring idle shards up to the router's clock
// without changing what a single engine would have fired.
func (e *Engine) AdvanceBefore(t event.Time) error {
	if t < e.now {
		return fmt.Errorf("%w: AdvanceBefore(%s), engine at %s", ErrOutOfOrder, t, e.now)
	}
	e.drainPseudo(t, true)
	e.now = t
	return nil
}

// Close drains every pending pseudo event, completing all detections whose
// windows end after the last observation. The engine remains usable; time
// advances to the last fired pseudo event.
func (e *Engine) Close() {
	e.drainPseudo(event.MaxTime, false)
}

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// matchPrim matches an observation against a primitive pattern and returns
// the variable bindings.
func (e *Engine) matchPrim(n *graph.Node, obs event.Observation) (event.Bindings, bool) {
	p := n.Prim
	anon := func(t event.Term) bool { return t.Var == "" && t.Lit == "" }
	if !p.Reader.IsVar() && !anon(p.Reader) && p.Reader.Lit != obs.Reader {
		return nil, false
	}
	if !p.Object.IsVar() && !anon(p.Object) && p.Object.Lit != obs.Object {
		return nil, false
	}
	for _, pred := range p.Preds {
		var got event.Value
		switch pred.Fn {
		case "group":
			// group(r) op 'g': satisfied when some group of the reader
			// satisfies the comparison (equality membership in the
			// common case).
			arg, ok := e.predArg(p, pred.Arg, obs)
			if !ok {
				return nil, false
			}
			matched := false
			for _, g := range e.groupsOf(arg) {
				if pred.Op.Eval(compareStr(g, pred.Val)) {
					matched = true
					break
				}
			}
			if !matched {
				return nil, false
			}
			continue
		case "type":
			arg, ok := e.predArg(p, pred.Arg, obs)
			if !ok {
				return nil, false
			}
			got = event.StringValue(e.typeOfObj(arg))
		case "":
			arg, ok := e.predArg(p, pred.Arg, obs)
			if !ok {
				return nil, false
			}
			got = event.StringValue(arg)
		default:
			return nil, false
		}
		want := event.ParseScalar(pred.Val)
		cmp, ok := got.Compare(want)
		if !ok {
			// Fall back to string comparison for mixed kinds.
			cmp = compareStr(got.String(), pred.Val)
		}
		if !pred.Op.Eval(cmp) {
			return nil, false
		}
	}
	binds := make(event.Bindings, 0, 3)
	if p.Reader.IsVar() {
		binds = binds.Set(p.Reader.Var, event.StringValue(obs.Reader))
	}
	if p.Object.IsVar() {
		binds = binds.Set(p.Object.Var, event.StringValue(obs.Object))
	}
	if p.At.IsVar() {
		binds = binds.Set(p.At.Var, event.TimeValue(obs.At))
	}
	if !e.guardPassBinds(n, binds) {
		return nil, false
	}
	return binds, true
}

// predArg resolves a predicate's argument variable against the observation
// attributes it could be bound to.
func (e *Engine) predArg(p *event.Prim, arg string, obs event.Observation) (string, bool) {
	switch {
	case p.Reader.IsVar() && p.Reader.Var == arg:
		return obs.Reader, true
	case p.Object.IsVar() && p.Object.Var == arg:
		return obs.Object, true
	case !p.Reader.IsVar() && arg == "":
		return obs.Reader, true
	}
	return "", false
}

// groupsOf memoizes the group function.
func (e *Engine) groupsOf(reader string) []string {
	if g, ok := e.groupCache[reader]; ok {
		return g
	}
	g := e.groups(reader)
	e.groupCache[reader] = g
	return g
}

// typeOfObj memoizes the type function. Object populations are unbounded
// in long runs, so the cache resets past a size bound rather than grow
// forever (readers, by contrast, are a small fixed set).
func (e *Engine) typeOfObj(object string) string {
	if t, ok := e.typeCache[object]; ok {
		return t
	}
	if len(e.typeCache) >= 1<<16 {
		e.typeCache = make(map[string]string, 1<<10)
	}
	t := e.typeOf(object)
	e.typeCache[object] = t
	return t
}

func compareStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// schedule enqueues a pseudo event.
func (e *Engine) schedule(ps *pseudoEvent) {
	e.pseq++
	ps.seq = e.pseq
	heap.Push(&e.pq, ps)
	e.m.PseudoScheduled++
}

// drainPseudo fires pseudo events up to limit; strict excludes events at
// exactly limit (they may still be affected by observations at that time).
func (e *Engine) drainPseudo(limit event.Time, strict bool) {
	for len(e.pq) > 0 {
		top := e.pq[0]
		if strict && top.exec >= limit {
			return
		}
		if !strict && top.exec > limit {
			return
		}
		heap.Pop(&e.pq)
		if top.exec > e.now {
			e.now = top.exec
		}
		e.m.PseudoFired++
		e.fire(top)
		if e.compiled {
			// fire keeps no reference to the struct (the payload
			// instance is independently owned), so it recycles.
			*top = pseudoEvent{}
			e.psPool = append(e.psPool, top)
		}
	}
}
