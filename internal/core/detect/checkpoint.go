package detect

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

func heapInit(h *pseudoHeap) { heap.Init(h) }

// Checkpointing serializes the engine's complete runtime state — pending
// constituent buffers, occurrence histories with chronicle-consumption
// marks, open aperiodic sequences, the pseudo-event queue, clocks and
// counters — so a restarted process resumes detection mid-window. The
// event graph itself is NOT serialized: rebuild it from the same rules in
// the same order; a structural fingerprint guards against mismatches.

type ckInstance struct {
	Begin event.Time     `json:"b"`
	End   event.Time     `json:"e"`
	Seq   uint64         `json:"q"`
	Binds event.Bindings `json:"v,omitempty"`
}

func toCk(in *event.Instance) ckInstance {
	return ckInstance{Begin: in.Begin, End: in.End, Seq: in.Seq, Binds: in.Binds}
}

func fromCk(c ckInstance) *event.Instance {
	return &event.Instance{Begin: c.Begin, End: c.End, Seq: c.Seq, Binds: c.Binds}
}

type ckHistory struct {
	Entries  []ckInstance  `json:"entries"`
	Consumed map[int][]int `json:"consumed,omitempty"` // consumer → entry indices
}

type ckOpenSeq struct {
	Elems   []event.Bindings `json:"elems"`
	Starts  []event.Time     `json:"starts,omitempty"`
	Begin   event.Time       `json:"begin"`
	Last    event.Time       `json:"last"`
	Version uint64           `json:"version"`
	// Aggs carries the guard's running aggregate accumulators, one per
	// aggregated variable in guardState.aggVars order. The shard/v1 and
	// cluster/v1 formats need no version bump: a guarded node's
	// canonical key (and so the graph fingerprint) differs from its
	// unguarded twin, so old checkpoints can never restore onto a
	// guarded graph.
	Aggs []ckAgg `json:"aggs,omitempty"`
}

// ckAgg is one checkpointed aggregate accumulator.
type ckAgg struct {
	Var string       `json:"var"`
	Acc event.AggAcc `json:"acc"`
}

type ckNode struct {
	ID    int          `json:"id"`
	Left  []ckInstance `json:"left,omitempty"`
	Right []ckInstance `json:"right,omitempty"`
	Hist  *ckHistory   `json:"hist,omitempty"`
	Open  *ckOpenSeq   `json:"open,omitempty"`
}

type ckPseudo struct {
	Exec     event.Time  `json:"exec"`
	Seq      uint64      `json:"seq"`
	NodeID   int         `json:"node"`
	Strategy uint8       `json:"strategy"`
	Payload  *ckInstance `json:"payload,omitempty"`
	W0       event.Time  `json:"w0"`
	W1       event.Time  `json:"w1"`
	Version  uint64      `json:"version,omitempty"`
}

type checkpoint struct {
	Fingerprint string     `json:"fingerprint"`
	Now         event.Time `json:"now"`
	Seq         uint64     `json:"seq"`
	PSeq        uint64     `json:"pseq"`
	Metrics     Metrics    `json:"metrics"`
	Nodes       []ckNode   `json:"nodes,omitempty"`
	Pseudo      []ckPseudo `json:"pseudo,omitempty"`
}

// SaveCheckpoint writes the runtime state as JSON.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	ck := checkpoint{
		Fingerprint: e.g.Fingerprint(),
		Now:         e.now,
		Seq:         e.seq,
		PSeq:        e.pseq,
		Metrics:     e.m,
	}
	for _, n := range e.g.Nodes {
		st := e.states[n.ID]
		cn := ckNode{ID: n.ID}
		dirty := false
		if st.left != nil && st.left.len() > 0 {
			for _, in := range st.left.all() {
				cn.Left = append(cn.Left, toCk(in))
			}
			dirty = true
		}
		if st.right != nil && st.right.len() > 0 {
			for _, in := range st.right.all() {
				cn.Right = append(cn.Right, toCk(in))
			}
			dirty = true
		}
		if st.hist != nil && st.hist.len() > 0 {
			h := &ckHistory{}
			index := map[*event.Instance]int{}
			for i, in := range st.hist.entries {
				h.Entries = append(h.Entries, toCk(in))
				index[in] = i
			}
			for consumer, set := range st.hist.consumed {
				for in := range set {
					if i, ok := index[in]; ok {
						if h.Consumed == nil {
							h.Consumed = map[int][]int{}
						}
						h.Consumed[consumer] = append(h.Consumed[consumer], i)
					}
				}
			}
			cn.Hist = h
			dirty = true
		}
		if st.open != nil {
			cn.Open = &ckOpenSeq{
				Elems: st.open.elems, Starts: st.open.starts,
				Begin: st.open.begin,
				Last:  st.open.last, Version: st.open.version,
			}
			if st.open.accs != nil {
				for i, v := range st.guard.aggVars {
					cn.Open.Aggs = append(cn.Open.Aggs, ckAgg{Var: v, Acc: st.open.accs[i]})
				}
			}
			dirty = true
		}
		if dirty {
			ck.Nodes = append(ck.Nodes, cn)
		}
	}
	for _, ps := range e.pq {
		cp := ckPseudo{
			Exec: ps.exec, Seq: ps.seq, NodeID: ps.node.ID,
			Strategy: uint8(ps.strategy), W0: ps.w0, W1: ps.w1, Version: ps.version,
		}
		if ps.payload != nil {
			p := toCk(ps.payload)
			cp.Payload = &p
		}
		ck.Pseudo = append(ck.Pseudo, cp)
	}
	return json.NewEncoder(w).Encode(ck)
}

// RestoreCheckpoint loads runtime state into a freshly built engine whose
// graph has the same fingerprint (same rules, same order, same options).
// The engine must not have ingested anything yet.
func (e *Engine) RestoreCheckpoint(r io.Reader) error {
	if e.m.Observations != 0 || e.seq != 0 {
		return fmt.Errorf("detect: restore requires a fresh engine")
	}
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("detect: restore: %w", err)
	}
	if got := e.g.Fingerprint(); got != ck.Fingerprint {
		return fmt.Errorf("detect: restore: graph fingerprint %s does not match checkpoint %s (different rules?)", got, ck.Fingerprint)
	}
	e.now = ck.Now
	e.seq = ck.Seq
	e.pseq = ck.PSeq
	e.m = ck.Metrics
	nodeByID := map[int]*graph.Node{}
	for _, n := range e.g.Nodes {
		nodeByID[n.ID] = n
	}
	for _, cn := range ck.Nodes {
		if cn.ID < 0 || cn.ID >= len(e.states) || e.states[cn.ID] == nil {
			return fmt.Errorf("detect: restore: unknown node %d", cn.ID)
		}
		st := e.states[cn.ID]
		for _, ci := range cn.Left {
			if st.left == nil {
				return fmt.Errorf("detect: restore: node %d has no left buffer", cn.ID)
			}
			st.left.add(fromCk(ci))
		}
		for _, ci := range cn.Right {
			if st.right == nil {
				return fmt.Errorf("detect: restore: node %d has no right buffer", cn.ID)
			}
			st.right.add(fromCk(ci))
		}
		if cn.Hist != nil {
			if st.hist == nil {
				return fmt.Errorf("detect: restore: node %d keeps no history", cn.ID)
			}
			insts := make([]*event.Instance, len(cn.Hist.Entries))
			for i, ci := range cn.Hist.Entries {
				insts[i] = fromCk(ci)
				st.hist.add(insts[i])
			}
			for consumer, idxs := range cn.Hist.Consumed {
				for _, i := range idxs {
					if i < 0 || i >= len(insts) {
						return fmt.Errorf("detect: restore: node %d consumed index %d out of range", cn.ID, i)
					}
					st.hist.markConsumed(consumer, insts[i])
				}
			}
		}
		if cn.Open != nil {
			st.open = &openSeq{
				elems: cn.Open.Elems, starts: cn.Open.Starts,
				begin: cn.Open.Begin,
				last:  cn.Open.Last, version: cn.Open.Version,
			}
			// Accumulators are maintained in both execution modes, so a
			// guarded node's live open sequence always carries exactly
			// one per aggregated variable; anything else is corruption.
			var aggVars []string
			if st.guard != nil {
				aggVars = st.guard.aggVars
			}
			if len(cn.Open.Aggs) != len(aggVars) {
				return fmt.Errorf("detect: restore: node %d open sequence has %d aggregate accumulator(s), want %d", cn.ID, len(cn.Open.Aggs), len(aggVars))
			}
			if len(aggVars) > 0 {
				st.open.accs = make([]event.AggAcc, len(aggVars))
				for i, ca := range cn.Open.Aggs {
					if ca.Var != aggVars[i] {
						return fmt.Errorf("detect: restore: node %d aggregate accumulator %d is for variable %q, want %q", cn.ID, i, ca.Var, aggVars[i])
					}
					if ca.Acc.N < 0 || ca.Acc.N > int64(len(cn.Open.Elems)) {
						return fmt.Errorf("detect: restore: node %d aggregate accumulator %q counts %d values over %d element(s)", cn.ID, ca.Var, ca.Acc.N, len(cn.Open.Elems))
					}
					st.open.accs[i] = ca.Acc
				}
			}
		}
	}
	for _, cp := range ck.Pseudo {
		n, ok := nodeByID[cp.NodeID]
		if !ok {
			return fmt.Errorf("detect: restore: pseudo event for unknown node %d", cp.NodeID)
		}
		ps := &pseudoEvent{
			exec: cp.Exec, seq: cp.Seq, node: n,
			strategy: graph.PseudoStrategy(cp.Strategy),
			w0:       cp.W0, w1: cp.W1, version: cp.Version,
		}
		if cp.Payload != nil {
			ps.payload = fromCk(*cp.Payload)
		}
		e.pq = append(e.pq, ps)
	}
	heapInit(&e.pq)
	return nil
}
