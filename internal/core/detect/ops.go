package detect

import (
	"time"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// emit records an occurrence of node n and propagates it: into the node's
// history when queried, to the rules rooted at n, and to every parent
// (paper's ACTIVATE_PARENT_NODE).
func (e *Engine) emit(n *graph.Node, inst *event.Instance) {
	if n.HasWithin && inst.Interval() > n.Within {
		return // violates the propagated interval constraint
	}
	e.m.Emitted++
	st := e.states[n.ID]
	if st.hist != nil {
		st.hist.add(inst)
		if n.Retention > 0 {
			st.hist.pruneBefore(e.now.Add(-n.Retention - time.Nanosecond))
		}
	}
	for _, rid := range n.Rules {
		e.m.Detections++
		e.onDetect(rid, inst)
	}
	for _, p := range n.Parents {
		e.deliver(p, n, inst)
	}
}

// deliver routes a child occurrence into a parent constructor.
func (e *Engine) deliver(p *graph.Node, from *graph.Node, inst *event.Instance) {
	switch p.Kind {
	case graph.KindOr:
		if !e.guardPassBinds(p, inst.Binds) {
			return
		}
		e.emit(p, e.newInstance(inst.Begin, inst.End, inst.Binds, e.nextSeq()))
	case graph.KindNot:
		// Occurrences of the negated child are visible through its
		// history; the NOT node itself never emits spontaneously.
	case graph.KindAnd:
		e.andDeliver(p, from, inst)
	case graph.KindSeq:
		e.seqDeliver(p, from, inst)
	case graph.KindSeqPlus:
		e.seqPlusDeliver(p, inst)
	}
}

// andDeliver implements conjunction. With a negated conjunct it runs the
// paper's Fig. 8 protocol; otherwise it pairs the two positive sides under
// the parameter context.
func (e *Engine) andDeliver(p *graph.Node, from *graph.Node, inst *event.Instance) {
	if p.NotChild >= 0 {
		// WITHIN(P ∧ ¬N, w). Arrival of positive p: first check
		// retrospectively for N in [t_end(p)−w, t_end(p)]; if clean,
		// schedule a pseudo event at t_begin(p)+w querying
		// [t_end(p), t_begin(p)+w].
		//
		// A scoped negation (P ∧ ¬N WITHIN v) replaces w with v and
		// anchors both windows at t_end(p): absence is asserted over
		// [t_end(p)−v, t_end(p)+v], within v of the positive's end,
		// independent of the enclosing WITHIN.
		if !e.guardPassBinds(p, inst.Binds) {
			return
		}
		notN := p.Children[p.NotChild]
		w := p.Within
		exec := inst.Begin.Add(w)
		if notN.HasNotWin {
			w = notN.NotWin
			exec = inst.End.Add(w)
		}
		neg := notN.Child()
		filter := e.projectFilter(inst.Binds, p.JoinVars)
		hit := e.occurs(neg, inst.End.Add(-w), inst.End, filter)
		e.releaseFilter(filter)
		if hit {
			return
		}
		ps := e.newPseudo()
		*ps = pseudoEvent{
			exec: exec, node: p, strategy: graph.PseudoAndNotExpire,
			payload: inst, w0: inst.End, w1: exec,
		}
		e.schedule(ps)
		return
	}
	st := e.states[p.ID]
	var mine, other *buffer
	switch {
	case p.Left() == p.Right():
		// Self-conjunction AND(E, E): pair with an older sibling or wait.
		mine, other = st.left, st.left
	case from == p.Left():
		mine, other = st.left, st.right
	default:
		mine, other = st.right, st.left
	}
	e.pair(p, st, inst, mine, other, false)
}

// seqDeliver implements sequence. The initiator is Children[0], the
// terminator Children[1].
func (e *Engine) seqDeliver(p *graph.Node, from *graph.Node, inst *event.Instance) {
	st := e.states[p.ID]
	fromRight := from == p.Right()
	// Negated terminator (outfield pattern): on initiator arrival,
	// schedule the non-occurrence check at t_end(e1)+bound.
	if p.NotChild == 1 {
		if fromRight {
			return
		}
		if !e.guardPassBinds(p, inst.Binds) {
			return
		}
		// A scoped negated terminator (SEQ(P ; ¬N WITHIN v)) confirms
		// absence over (t_end(p), t_end(p)+v] regardless of the outer
		// bound; otherwise the window runs to the enclosing bound.
		r := p.Right()
		var b time.Duration
		if r.HasNotWin {
			b = r.NotWin
		} else {
			b, _ = p.Bound()
		}
		ps := e.newPseudo()
		*ps = pseudoEvent{
			exec: inst.End.Add(b), node: p, strategy: graph.PseudoSeqNotTerm,
			payload: inst, w0: inst.End + 1, w1: inst.End.Add(b),
		}
		e.schedule(ps)
		return
	}
	// Negated initiator (infield pattern): on terminator arrival, check
	// retrospectively that the negated event did not occur in
	// [t_end(e2)−bound, t_begin(e2)). A scoped negated initiator
	// (SEQ(¬N WITHIN v ; P)) anchors the window at the terminator's
	// begin instead: [t_begin(e2)−v, t_begin(e2)).
	if p.NotChild == 0 {
		if !fromRight {
			return
		}
		if !e.guardPassBinds(p, inst.Binds) {
			return
		}
		l := p.Left()
		var a event.Time
		if l.HasNotWin {
			a = inst.Begin.Add(-l.NotWin)
		} else {
			b, _ := p.Bound()
			a = inst.End.Add(-b)
		}
		neg := l.Child()
		filter := e.projectFilter(inst.Binds, p.JoinVars)
		hit := e.occurs(neg, a, inst.Begin-1, filter)
		e.releaseFilter(filter)
		if hit {
			return
		}
		e.emit(p, e.newInstance(a, inst.End, inst.Binds, e.nextSeq()))
		return
	}
	if p.Left() == p.Right() {
		// Self-sequence SEQ(E, E): the arrival terminates an older
		// occurrence, or waits as a future initiator.
		e.pair(p, st, inst, st.left, st.left, true)
		return
	}
	if fromRight {
		// Pulled SEQ+/TSEQ+ initiators are queried rather than buffered.
		if l := p.Left(); l.Kind == graph.KindSeqPlus && !l.Pseudo {
			e.seqPullInitiator(p, inst)
			return
		}
		e.pair(p, st, inst, st.right, st.left, true)
		return
	}
	e.pair(p, st, inst, st.left, st.right, false)
}

// pair matches an arriving instance against the opposite buffer of a
// binary node under the engine's parameter context. mine is the buffer for
// the arriving side (nil when arrivals are never buffered), other the
// opposite side. arrivedRight distinguishes sequence terminators.
func (e *Engine) pair(p *graph.Node, st *nodeState, inst *event.Instance, mine, other *buffer, arrivedRight bool) {
	if other == nil {
		// Nothing to match against (e.g. a sequence initiator whose
		// terminator never waits); just buffer the arrival.
		if mine != nil {
			if e.ctx == pctx.Recent {
				mine.replaceAll(inst)
			} else {
				mine.add(inst)
			}
		}
		return
	}
	cond := e.pairCond(p, inst, arrivedRight)

	// Chronicle and recent contexts match at most one candidate, so they
	// track it in a scalar instead of growing a slice per pairing.
	var single *event.Instance
	var matches []*event.Instance
	switch e.ctx {
	case pctx.Chronicle:
		other.scan(inst.Binds, func(c *event.Instance) (bool, bool) {
			if e.expired(p, c, inst, arrivedRight) {
				return false, true
			}
			if cond(c) {
				single = c
				return false, false // consume, stop
			}
			return true, true
		})
	case pctx.Recent:
		other.scan(inst.Binds, func(c *event.Instance) (bool, bool) {
			if e.expired(p, c, inst, arrivedRight) {
				return false, true
			}
			if cond(c) && (single == nil || c.Seq > single.Seq) {
				single = c
			}
			return true, true
		})
	case pctx.Continuous, pctx.Cumulative:
		other.scan(inst.Binds, func(c *event.Instance) (bool, bool) {
			if e.expired(p, c, inst, arrivedRight) {
				return false, true
			}
			if cond(c) {
				matches = append(matches, c)
				return false, true // consume, continue
			}
			return true, true
		})
	case pctx.Unrestricted:
		other.scan(inst.Binds, func(c *event.Instance) (bool, bool) {
			if e.expired(p, c, inst, arrivedRight) {
				return false, true
			}
			if cond(c) {
				matches = append(matches, c)
			}
			return true, true
		})
	}

	switch {
	case single != nil:
		e.emit(p, e.combine(p, single, inst))
		if e.ctx == pctx.Recent && mine != nil {
			mine.replaceAll(inst)
		}
	case len(matches) == 0:
		if mine != nil {
			if e.ctx == pctx.Recent {
				mine.replaceAll(inst)
			} else {
				mine.add(inst)
			}
		}
	case e.ctx == pctx.Cumulative:
		// All matches merge into one detection.
		combined := inst
		for _, c := range matches {
			combined = e.combine(p, c, combined)
		}
		e.emit(p, combined)
	default:
		for _, c := range matches {
			e.emit(p, e.combine(p, c, inst))
		}
		if e.ctx == pctx.Unrestricted && mine != nil {
			mine.add(inst)
		}
		if e.ctx == pctx.Recent && mine != nil {
			mine.replaceAll(inst)
		}
	}
}

// pairCond builds the admissibility predicate for a candidate from the
// opposite buffer: binding compatibility, sequence order, distance bounds,
// the interval constraint and the node's guard. Guards sit inside the
// predicate so a failed guard never consumes the candidate (chronicle
// keeps scanning for an admissible partner).
func (e *Engine) pairCond(p *graph.Node, inst *event.Instance, arrivedRight bool) func(*event.Instance) bool {
	gs := e.states[p.ID].guard
	return func(c *event.Instance) bool {
		var l, r *event.Instance
		if p.Kind == graph.KindSeq {
			if arrivedRight {
				l, r = c, inst
			} else {
				l, r = inst, c
			}
			if l.End >= r.Begin {
				return false
			}
			if p.HasDist {
				d := event.Dist(l, r)
				if d < p.Lo || d > p.Hi {
					return false
				}
			}
		}
		if p.HasWithin && event.Interval2(c, inst) > p.Within {
			return false
		}
		// The arriving instance's bindings shadow the candidate's,
		// matching the Merge order in combine.
		if gs != nil && !e.guardPass(gs, event.PairLookup(inst.Binds, c.Binds), nil) {
			return false
		}
		return true
	}
}

// expired reports whether a buffered candidate can no longer match the
// current or any future arrival, so it can be purged (the paper's
// first-class constraint checking during detection).
func (e *Engine) expired(p *graph.Node, c, inst *event.Instance, arrivedRight bool) bool {
	if p.Kind == graph.KindSeq && arrivedRight {
		// c is a pending initiator; future terminators end no earlier
		// than inst.End.
		if p.HasDist && c.End < inst.End.Add(-p.Hi) {
			return true
		}
	}
	if p.HasWithin {
		// Future arrivals end no earlier than inst.End; an old candidate
		// beginning more than Within before can never satisfy the
		// interval constraint again.
		slack := e.states[p.ID].closureDelay
		if c.Begin < inst.End.Add(-p.Within-slack) {
			return true
		}
	}
	return false
}

// combine builds the detected instance from an initiator/left candidate
// and the arriving instance.
func (e *Engine) combine(p *graph.Node, c, inst *event.Instance) *event.Instance {
	begin, end := event.SpanWith(c, inst)
	return e.newInstance(begin, end, e.mergeBinds(c.Binds, inst.Binds), e.nextSeq())
}

// seqPullInitiator handles TSEQ/SEQ whose initiator is a pulled (queried)
// SEQ+/TSEQ+ node: on terminator arrival the initiator node is queried for
// determinably-closed sequences ending inside the distance window
// (paper's QUERY_INTERVAL_NODE).
func (e *Engine) seqPullInitiator(p *graph.Node, term *event.Instance) {
	l := p.Left()
	lo, hi := time.Duration(0), time.Duration(0)
	if p.HasDist {
		lo, hi = p.Lo, p.Hi
	} else {
		b, _ := p.Bound()
		hi = b
	}
	w0 := term.End.Add(-hi)
	w1 := term.End.Add(-lo)
	if w1 > term.Begin-1 {
		w1 = term.Begin - 1
	}
	var accept func(*event.Instance) bool
	if gs := e.states[p.ID].guard; gs != nil {
		accept = func(run *event.Instance) bool {
			return e.guardPass(gs, event.PairLookup(term.Binds, run.Binds), nil)
		}
	}
	filter := e.projectFilter(term.Binds, p.JoinVars)
	seqInst := e.querySeqPlus(l, w0, w1, filter, p.ID, accept)
	e.releaseFilter(filter)
	if seqInst == nil {
		return
	}
	if p.HasWithin && event.Interval2(seqInst, term) > p.Within {
		return
	}
	e.emit(p, e.combine(p, seqInst, term))
}

// seqPlusDeliver feeds an element into an eager SEQ+/TSEQ+ node: extend
// the open sequence when the adjacency bounds hold, otherwise close it and
// start anew (semantics in DESIGN.md §3).
func (e *Engine) seqPlusDeliver(n *graph.Node, inst *event.Instance) {
	if !n.HasDist && n.Mode == graph.ModePull {
		// Pull-mode SEQ+ is evaluated lazily from the child's history.
		return
	}
	st := e.states[n.ID]
	if st.open != nil {
		d := inst.End.Sub(st.open.last)
		broke := d < n.Lo || d > n.Hi
		if !broke && n.HasWithin && inst.End.Sub(st.open.begin) > n.Within {
			broke = true
		}
		if broke {
			e.closeOpen(n, st)
		}
	}
	if st.open == nil {
		if sp := st.spare; sp != nil {
			st.spare = nil
			sp.begin, sp.version = inst.Begin, e.nextSeq()
			st.open = sp
		} else {
			st.open = &openSeq{begin: inst.Begin, version: e.nextSeq()}
		}
	}
	st.open.elems = append(st.open.elems, inst.Binds)
	st.open.starts = append(st.open.starts, inst.Begin)
	st.open.last = inst.End
	st.open.version = e.nextSeq()
	st.addAccs(inst.Binds)
	if e.maxOpen > 0 && len(st.open.elems) > e.maxOpen {
		// Unbounded adjacent run (the stream never pauses): shed the
		// older half so memory stays bounded. Prefer WITHIN bounds on
		// the sequence; this is the lossy backstop.
		drop := len(st.open.elems) / 2
		e.m.Dropped += uint64(drop)
		st.open.elems = append(st.open.elems[:0:0], st.open.elems[drop:]...)
		st.open.starts = append(st.open.starts[:0:0], st.open.starts[drop:]...)
		st.open.begin = st.open.starts[0]
		st.rebuildAccs()
	}
	if n.Pseudo {
		ps := e.newPseudo()
		*ps = pseudoEvent{
			exec: inst.End.Add(n.Hi), node: n, strategy: graph.PseudoSeqPlusClose,
			version: st.open.version,
		}
		e.schedule(ps)
	}
}

// closeOpen finalizes the node's open sequence into an instance. Pushing
// nodes emit it; pulled nodes record it in history for later queries.
func (e *Engine) closeOpen(n *graph.Node, st *nodeState) {
	if st.open == nil {
		return
	}
	rec := st.open
	inst := e.newInstance(rec.begin, rec.last, event.CollectLists(rec.elems), e.nextSeq())
	accs := rec.accs
	st.open = nil
	// The guard sees the run's running accumulators (compiled path) or
	// folds the collected lists (interpreted oracle); the Seq number is
	// consumed either way so both paths stay aligned.
	pass := st.guard == nil || e.guardPass(st.guard, event.BindsLookup(inst.Binds), accs)
	// CollectLists copied the element values out and the emitted instance
	// owns its own bindings, so the run's struct and arrays recycle for
	// the node's next open sequence.
	clear(rec.elems)
	*rec = openSeq{elems: rec.elems[:0], starts: rec.starts[:0]}
	st.spare = rec
	if !pass {
		return
	}
	if n.Pseudo {
		e.emit(n, inst)
		return
	}
	if n.HasWithin && inst.Interval() > n.Within {
		return
	}
	e.m.Emitted++
	if st.hist != nil {
		st.hist.add(inst)
	}
}

// lazyClose closes a pulled TSEQ+'s open sequence once no further element
// can extend it (every observation up to e.now has been seen).
func (e *Engine) lazyClose(n *graph.Node, st *nodeState) {
	if st.open != nil && n.HasDist && st.open.last.Add(n.Hi) < e.now {
		e.closeOpen(n, st)
	}
}

// querySeqPlus returns the oldest sequence instance of a pulled SEQ+/TSEQ+
// node ending inside [w0, w1] that the consumer node has not yet claimed,
// or nil; the returned instance is claimed for that consumer (chronicle).
// accept, when non-nil, is the consumer's admissibility predicate (its
// guard over the joined bindings); a rejected run is not consumed, and on
// the eager path the scan continues to older runs.
func (e *Engine) querySeqPlus(n *graph.Node, w0, w1 event.Time, filter event.Bindings, consumer int, accept func(*event.Instance) bool) *event.Instance {
	st := e.states[n.ID]
	if n.HasDist {
		// Eagerly built TSEQ+: close lazily, then take from history.
		// The node's own guard was applied at closeOpen, before the run
		// entered history.
		e.lazyClose(n, st)
		var found *event.Instance
		if st.hist == nil {
			return nil
		}
		st.hist.inWindow(w0, w1, filter, consumer, func(in *event.Instance) bool {
			if accept != nil && !accept(in) {
				return true
			}
			found = in
			return false
		})
		if found != nil {
			st.hist.markConsumed(consumer, found)
		}
		return found
	}
	// Pull-mode SEQ+: one maximal sequence of all child occurrences in the
	// window (adjacency is unconstrained).
	child := n.Child()
	cst := e.states[child.ID]
	if cst.hist == nil {
		return nil
	}
	var elems []event.Bindings
	var begin, end event.Time
	var members []*event.Instance
	cst.hist.inWindow(w0, w1, filter, consumer, func(in *event.Instance) bool {
		if len(elems) == 0 || in.Begin < begin {
			begin = in.Begin
		}
		if in.End > end {
			end = in.End
		}
		elems = append(elems, in.Binds)
		members = append(members, in)
		return true
	})
	if len(elems) == 0 {
		return nil
	}
	// The Seq number is consumed before the guards so both execution
	// modes number later instances identically even when the run is
	// rejected.
	seqInst := e.newInstance(begin, end, event.CollectLists(elems), e.nextSeq())
	if st.guard != nil && !e.guardPass(st.guard, event.BindsLookup(seqInst.Binds), nil) {
		return nil
	}
	if accept != nil && !accept(seqInst) {
		return nil
	}
	for _, m := range members {
		cst.hist.markConsumed(consumer, m)
	}
	return seqInst
}

// occurs reports whether node n has an occurrence in [a, b] compatible
// with filter. Used for negation checks.
func (e *Engine) occurs(n *graph.Node, a, b event.Time, filter event.Bindings) bool {
	st := e.states[n.ID]
	if n.Kind == graph.KindSeqPlus && !n.Pseudo {
		e.lazyClose(n, st)
	}
	if st.hist == nil {
		return false
	}
	found := false
	st.hist.inWindow(a, b, filter, anyConsumer, func(*event.Instance) bool {
		found = true
		return false
	})
	return found
}

// fire executes a pseudo event (paper's pseudo-event handling in RCEDA).
func (e *Engine) fire(ps *pseudoEvent) {
	switch ps.strategy {
	case graph.PseudoAndNotExpire:
		p := ps.node
		neg := p.Children[p.NotChild].Child()
		filter := e.projectFilter(ps.payload.Binds, p.JoinVars)
		hit := e.occurs(neg, ps.w0, ps.w1, filter)
		e.releaseFilter(filter)
		if hit {
			return
		}
		e.emit(p, e.newInstance(ps.payload.Begin, ps.w1, ps.payload.Binds, e.nextSeq()))
	case graph.PseudoSeqNotTerm:
		p := ps.node
		neg := p.Right().Child()
		filter := e.projectFilter(ps.payload.Binds, p.JoinVars)
		hit := e.occurs(neg, ps.w0, ps.w1, filter)
		e.releaseFilter(filter)
		if hit {
			return
		}
		e.emit(p, e.newInstance(ps.payload.Begin, ps.w1, ps.payload.Binds, e.nextSeq()))
	case graph.PseudoSeqPlusClose:
		st := e.states[ps.node.ID]
		if st.open != nil && st.open.version == ps.version {
			e.closeOpen(ps.node, st)
		}
	}
}
