package detect

import (
	"testing"
	"time"

	"rcep/internal/core/event"
)

// Boundary and composition edge cases for the RCEDA engine.

func TestWithinOverOr(t *testing.T) {
	// WITHIN over OR: the constraint propagates into both branches and
	// each disjunct instance is instantaneous, so everything passes.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Or{L: prim("r1", "o", "t"), R: prim("r2", "o", "t")},
			Max: time.Second,
		},
	}, nil)
	got := h.run(obs("r1", "a", 1), obs("r2", "b", 2))
	if len(got) != 2 {
		t.Fatalf("OR under WITHIN: %d", len(got))
	}
}

func TestSeqOverAnd(t *testing.T) {
	// SEQ(AND(E1, E2); E3): the conjunction completes when its later
	// constituent arrives, then terminates with E3.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{
			L: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
			R: prim("r3", "o3", "t3"),
		},
	}, nil)
	got := h.run(obs("r2", "b", 1), obs("r1", "a", 2), obs("r3", "c", 5))
	if len(got) != 1 {
		t.Fatalf("SEQ over AND: %v", got)
	}
	in := got[0].inst
	if in.Begin != ts(1) || in.End != ts(5) {
		t.Errorf("span: %v", in)
	}
	if in.Binds.Val("o1").Str() != "a" || in.Binds.Val("o2").Str() != "b" || in.Binds.Val("o3").Str() != "c" {
		t.Errorf("bindings: %v", in.Binds)
	}
}

func TestAndOverSeqs(t *testing.T) {
	// AND of two sequences, overlapping in time.
	h := newHarness(t, map[int]event.Expr{
		1: &event.And{
			L: &event.Seq{L: prim("a1", "x1", "u1"), R: prim("a2", "x2", "u2")},
			R: &event.Seq{L: prim("b1", "y1", "v1"), R: prim("b2", "y2", "v2")},
		},
	}, nil)
	got := h.run(obs("a1", "p", 1), obs("b1", "q", 2), obs("a2", "r", 3), obs("b2", "s", 4))
	if len(got) != 1 {
		t.Fatalf("AND of SEQs: %v", got)
	}
	if got[0].inst.Begin != ts(1) || got[0].inst.End != ts(4) {
		t.Errorf("span: %v", got[0].inst)
	}
}

func TestLateClosingInitiatorPairsWithWaitingTerminator(t *testing.T) {
	// Two rules share a TSEQ+: rule 2's OR parent forces the TSEQ+ into
	// push (pseudo) mode, so rule 1's TSEQ pairs via push delivery. A
	// terminator that arrives before the sequence's close pseudo (lo <
	// TSEQ+ hi) must wait in the right buffer and still match.
	shared := func() event.Expr {
		return &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: 10 * time.Second}
	}
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeq{L: shared(), R: prim("r2", "o2", "t2"), Lo: 0, Hi: 30 * time.Second},
		2: &event.Or{L: shared(), R: prim("r9", "z", "tz")},
	}, nil)
	// Items at 1, 2; terminator at 5 (before the close pseudo at 12).
	h.feed(obs("r1", "i1", 1), obs("r1", "i2", 2))
	h.feed(obs("r2", "case", 5))
	if len(h.sights) != 0 {
		t.Fatalf("nothing should fire before the sequence closes")
	}
	h.eng.Close() // close pseudo at 12 fires; seq closes; pairs with case@5?
	// The closed sequence ends at t=2, the terminator begins at t=5:
	// order holds, dist = 3s within [0,30]. Both rules fire.
	var rule1, rule2 int
	for _, d := range h.sights {
		switch d.rule {
		case 0, 1:
			if d.rule == 1 {
				rule1++
			}
		}
		if d.rule == 1 {
			_ = d
		}
	}
	counts := map[int]int{}
	for _, d := range h.sights {
		counts[d.rule]++
	}
	if counts[1] != 1 {
		t.Errorf("rule 1 (TSEQ) fired %d times, want 1: %v", counts[1], h.sights)
	}
	if counts[2] != 1 {
		t.Errorf("rule 2 (OR) fired %d times, want 1", counts[2])
	}
	_ = rule1
	_ = rule2
}

func TestNotOverTSeqPlus(t *testing.T) {
	// WITHIN(E1 AND NOT TSEQ+(E2, 0, 1s), 5s): the negated event is a
	// completed burst of E2s. A burst inside the window blocks E1.
	mk := func() map[int]event.Expr {
		return map[int]event.Expr{
			1: &event.Within{
				X: &event.And{
					L: prim("r1", "o1", "t1"),
					R: &event.Not{X: &event.TSeqPlus{X: prim("r2", "o2", "t2"), Lo: 0, Hi: time.Second}},
				},
				Max: 5 * time.Second,
			},
		}
	}
	// Burst of E2 at 8..9 closes at 10 (inside [5,15] of e1@10): blocked.
	h1 := newHarness(t, mk(), nil)
	got := h1.run(obs("r2", "x", 8), obs("r2", "y", 8.5), obs("r1", "a", 10))
	if len(got) != 0 {
		t.Fatalf("burst in window should block: %v", got)
	}
	// No burst anywhere near: detected.
	h2 := newHarness(t, mk(), nil)
	got = h2.run(obs("r2", "x", 1), obs("r1", "a", 20))
	if len(got) != 1 {
		t.Fatalf("distant burst should not block: %v", got)
	}
}

func TestNotOverOr(t *testing.T) {
	// WITHIN(E1 AND NOT (E2 OR E3), 5s): the negated event is itself
	// complex; any occurrence of either branch inside the window blocks.
	mk := func() map[int]event.Expr {
		return map[int]event.Expr{
			1: &event.Within{
				X: &event.And{
					L: prim("r1", "o1", "t1"),
					R: &event.Not{X: &event.Or{L: prim("r2", "a", "ta"), R: prim("r3", "b", "tb")}},
				},
				Max: 5 * time.Second,
			},
		}
	}
	h1 := newHarness(t, mk(), nil)
	if got := h1.run(obs("r1", "x", 10), obs("r3", "blocker", 12)); len(got) != 0 {
		t.Fatalf("OR branch should block: %v", got)
	}
	h2 := newHarness(t, mk(), nil)
	if got := h2.run(obs("r1", "x", 10), obs("r4", "noise", 12)); len(got) != 1 {
		t.Fatalf("unrelated reader must not block: %v", got)
	}
}

func TestAdvanceBeforeFirstObservation(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{1: primVars("r", "o", "t")}, nil)
	if err := h.eng.AdvanceTo(ts(100)); err != nil {
		t.Fatalf("AdvanceTo on a fresh engine: %v", err)
	}
	if err := h.eng.Ingest(obs("r1", "a", 50)); err == nil {
		t.Fatalf("observation behind the advanced clock accepted")
	}
	if err := h.eng.Ingest(obs("r1", "a", 150)); err != nil {
		t.Fatalf("later observation rejected: %v", err)
	}
}

func TestTSeqPlusBoundaryDistances(t *testing.T) {
	// d == Hi extends; d just over Hi breaks.
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second},
	}, nil)
	h.feed(
		obs("r1", "a", 0), obs("r1", "b", 1), // d = 1s = Hi: extends
		obs("r1", "c", 2.0001), // d = 1.0001s: breaks
	)
	if len(h.sights) != 1 {
		t.Fatalf("first run should have closed: %v", h.sights)
	}
	if h.sights[0].inst.Binds.Val("o").Len() != 2 {
		t.Errorf("first run must contain a and b: %v", h.sights[0].inst.Binds.Val("o"))
	}
	h.eng.Close()
	if len(h.sights) != 2 {
		t.Errorf("second run {c} should close on Close()")
	}
}

func TestAndNotBoundaryExactlyTau(t *testing.T) {
	// A negative exactly τ after the positive has interval(e1,e2) == τ,
	// which satisfies ≤ τ and must block (paper's WITHIN is inclusive).
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 5 * time.Second,
		},
	}, nil)
	got := h.run(obs("r1", "a", 10), obs("r2", "u", 15))
	if len(got) != 0 {
		t.Fatalf("negative at exactly τ must block: %v", got)
	}
	// Just past τ does not block.
	h2 := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 5 * time.Second,
		},
	}, nil)
	got = h2.run(obs("r1", "a", 10), obs("r2", "u", 15.001))
	if len(got) != 1 {
		t.Fatalf("negative past τ must not block: %v", got)
	}
}

func TestChronicleTieBreakByArrival(t *testing.T) {
	// Two initiators at the same timestamp: the first-arrived pairs first.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
	}, nil)
	got := h.run(obs("rA", "first", 1), obs("rA", "second", 1), obs("rB", "x", 2), obs("rB", "y", 2))
	if len(got) != 2 {
		t.Fatalf("detections: %d", len(got))
	}
	if got[0].inst.Binds.Val("o1").Str() != "first" || got[1].inst.Binds.Val("o1").Str() != "second" {
		t.Errorf("tie-break order: %v, %v", got[0].inst.Binds, got[1].inst.Binds)
	}
}

func TestEngineUsableAfterClose(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second},
	}, nil)
	h.feed(obs("r1", "a", 1))
	h.eng.Close()
	if len(h.sights) != 1 {
		t.Fatalf("first close: %d", len(h.sights))
	}
	// Keep going after Close: time resumed from the last pseudo.
	h.feed(obs("r1", "b", 10))
	h.eng.Close()
	if len(h.sights) != 2 {
		t.Fatalf("engine dead after Close: %d", len(h.sights))
	}
}

func TestManyRulesManyReaders(t *testing.T) {
	// A wide graph: 40 independent dup rules, interleaved traffic.
	rules := map[int]event.Expr{}
	for i := 0; i < 40; i++ {
		r := string(rune('A' + i%26))
		rules[i] = &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
			Max: 5 * time.Second,
		}
		_ = r
	}
	h := newHarness(t, rules, nil)
	var o []event.Observation
	for i := 0; i < 50; i++ {
		o = append(o, obs("rX", "same", float64(i)*2)) // every 2s: always within 5s
	}
	got := h.run(o...)
	// All 40 rules share one graph node (identical events). The two
	// constituent patterns are distinct nodes (t1 vs t2), so every read
	// terminates its predecessor AND initiates for its successor —
	// exactly Rule 1's "mark the previous as duplicate" chaining: 49
	// pairs from 50 reads, per rule.
	if len(got) != 40*49 {
		t.Fatalf("detections: %d, want %d", len(got), 40*49)
	}
}

func TestInterleavedIndependentObjects(t *testing.T) {
	// Dup rule with heavy interleaving across objects: partitioned
	// buffers must keep them separate.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
			Max: 5 * time.Second,
		},
	}, nil)
	var stream []event.Observation
	for i := 0; i < 30; i++ {
		stream = append(stream, obs("r1", string(rune('a'+i%10)), float64(i)))
	}
	got := h.run(stream...)
	// Each object appears 3 times at distance 10s — beyond the 5s bound,
	// so nothing pairs.
	if len(got) != 0 {
		t.Fatalf("cross-object pairing leaked: %v", got)
	}
}

func TestSeqWithMixedTerminator(t *testing.T) {
	// SEQ(E0 ; WITHIN(E1 AND NOT E2, 5s)): the terminator is a mixed-mode
	// complex event that completes via a pseudo event — its late push
	// must still pair with the buffered initiator.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{
			L: prim("r0", "o0", "t0"),
			R: &event.Within{
				X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
				Max: 5 * time.Second,
			},
		},
	}, nil)
	h.feed(
		obs("r0", "start", 1),
		obs("r1", "go", 10), // clean window [5,15] → AND-NOT completes at 15
	)
	if len(h.sights) != 0 {
		t.Fatalf("nothing should fire before the window expires")
	}
	h.eng.Close()
	if len(h.sights) != 1 {
		t.Fatalf("mixed terminator: %d detections", len(h.sights))
	}
	in := h.sights[0].inst
	if in.Begin != ts(1) || in.End != ts(15) {
		t.Errorf("span: %v", in)
	}
	if in.Binds.Val("o0").Str() != "start" || in.Binds.Val("o1").Str() != "go" {
		t.Errorf("bindings: %v", in.Binds)
	}
	// Blocked variant: an E2 lands inside the window.
	h2 := newHarness(t, map[int]event.Expr{
		1: &event.Seq{
			L: prim("r0", "o0", "t0"),
			R: &event.Within{
				X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
				Max: 5 * time.Second,
			},
		},
	}, nil)
	got := h2.run(obs("r0", "start", 1), obs("r1", "go", 10), obs("r2", "stop", 12))
	if len(got) != 0 {
		t.Fatalf("blocked mixed terminator still fired: %v", got)
	}
}

func TestOrOfMixedAndPush(t *testing.T) {
	// OR(TSEQ+(E1), E2): mixed | push → mixed; both branches detectable.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Or{
			L: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second},
			R: prim("r2", "o2", "t2"),
		},
	}, nil)
	h.feed(obs("r1", "a", 1))
	if len(h.sights) != 0 {
		t.Fatalf("open run must not fire: %d", len(h.sights))
	}
	// Time advancing past the run's close boundary (1s + Hi) fires the
	// close pseudo BEFORE the r2 observation is processed.
	h.feed(obs("r2", "b", 5))
	if len(h.sights) != 2 {
		t.Fatalf("both branches should have fired by t=5: %d", len(h.sights))
	}
	h.eng.Close()
	if len(h.sights) != 2 {
		t.Fatalf("Close must not double-fire: %d", len(h.sights))
	}
}

func TestZeroLoTSeqAllowsImmediateSuccession(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2"),
			Lo: 0, Hi: time.Second},
	}, nil)
	// dist = 1ns, but order still requires e1.End < e2.Begin.
	got := h.run(
		event.Observation{Reader: "r1", Object: "a", At: ts(1)},
		event.Observation{Reader: "r2", Object: "b", At: ts(1) + 1},
	)
	if len(got) != 1 {
		t.Fatalf("immediate succession: %v", got)
	}
}
