package detect

import (
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Guard evaluation (DESIGN.md §10). A guarded node carries a WHERE
// predicate over its instance bindings — inequalities and arithmetic
// between constituents, and aggregates over SEQ+ runs. Like primitive
// matching, guards exist twice: the interpreted oracle walks the GExpr
// tree per check (event.EvalGuard), while the compiled path lowers the
// tree once at engine construction into a closure program (guardFn) that
// reads aggregates straight out of the open sequence's running
// accumulators instead of re-folding the collected lists. Both paths
// share the semantic helpers in event (GuardCompare, GuardArith,
// GuardTruthy), so a guard decides identically in either mode.

// guardState is the per-node guard runtime.
type guardState struct {
	expr event.GExpr
	// aggVars lists the variables aggregated over, sorted and deduped —
	// the index space for openSeq.accs and checkpointed accumulators.
	aggVars []string
	// prog is the compiled program; nil on the interpreted path.
	prog guardFn
}

// newGuardState builds the guard runtime for a guarded node, compiling
// the program when the engine runs the compiled hot path.
func newGuardState(n *graph.Node, compiled bool) *guardState {
	gs := &guardState{expr: n.Guard, aggVars: event.GuardAggVars(n.Guard)}
	if compiled {
		idx := make(map[string]int, len(gs.aggVars))
		for i, v := range gs.aggVars {
			idx[v] = i
		}
		gs.prog = compileGuard(n.Guard, idx)
	}
	return gs
}

// guardCtx is the evaluation context of one compiled guard check.
type guardCtx struct {
	lk event.GuardLookup
	// accs are the running accumulators of the open sequence being
	// closed, indexed like guardState.aggVars; nil when the check has no
	// accumulators (non-SEQ+ nodes, pull-assembled runs), in which case
	// aggregates fold the collected lists via lk.
	accs []event.AggAcc
}

// guardFn is a compiled guard (sub)expression.
type guardFn func(*guardCtx) event.Value

// compileGuard lowers a guard expression to a closure tree. aggIdx maps
// aggregated variables to accumulator slots.
func compileGuard(g event.GExpr, aggIdx map[string]int) guardFn {
	switch x := g.(type) {
	case *event.GLit:
		v := x.V
		return func(*guardCtx) event.Value { return v }
	case *event.GVar:
		name := x.Name
		return func(ctx *guardCtx) event.Value {
			if v, ok := ctx.lk(name); ok {
				return v
			}
			return event.Null
		}
	case *event.GAgg:
		op, name := x.Op, x.Name
		slot, hasSlot := aggIdx[name]
		return func(ctx *guardCtx) event.Value {
			if hasSlot && ctx.accs != nil {
				v, err := ctx.accs[slot].Result(op)
				if err != nil {
					return event.Null
				}
				return v
			}
			col, ok := ctx.lk(name)
			if !ok {
				return event.Null
			}
			v, err := event.FoldAgg(op, col)
			if err != nil {
				return event.Null
			}
			return v
		}
	case *event.GNot:
		sub := compileGuard(x.X, aggIdx)
		return func(ctx *guardCtx) event.Value {
			return event.BoolValue(!event.GuardTruthy(sub(ctx)))
		}
	case *event.GNeg:
		sub := compileGuard(x.X, aggIdx)
		return func(ctx *guardCtx) event.Value {
			return event.GuardNegate(sub(ctx))
		}
	case *event.GBin:
		l := compileGuard(x.L, aggIdx)
		r := compileGuard(x.R, aggIdx)
		switch op := x.Op; op {
		case event.GuardAnd:
			return func(ctx *guardCtx) event.Value {
				if !event.GuardTruthy(l(ctx)) {
					return event.BoolValue(false)
				}
				return event.BoolValue(event.GuardTruthy(r(ctx)))
			}
		case event.GuardOr:
			return func(ctx *guardCtx) event.Value {
				if event.GuardTruthy(l(ctx)) {
					return event.BoolValue(true)
				}
				return event.BoolValue(event.GuardTruthy(r(ctx)))
			}
		case event.GuardAdd, event.GuardSub, event.GuardMul, event.GuardDiv:
			return func(ctx *guardCtx) event.Value {
				return event.GuardArith(op, l(ctx), r(ctx))
			}
		default: // comparisons
			return func(ctx *guardCtx) event.Value {
				return event.BoolValue(event.GuardCompare(op, l(ctx), r(ctx)))
			}
		}
	}
	return func(*guardCtx) event.Value { return event.Null }
}

// guardPass evaluates a node's guard against a binding lookup; accs
// supplies running SEQ+ accumulators when the check closes an open
// sequence. A nil guard always passes.
func (e *Engine) guardPass(gs *guardState, lk event.GuardLookup, accs []event.AggAcc) bool {
	if gs == nil {
		return true
	}
	if gs.prog != nil {
		return event.GuardTruthy(gs.prog(&guardCtx{lk: lk, accs: accs}))
	}
	return event.EvalGuard(gs.expr, lk)
}

// guardPassBinds checks n's guard against a single instance's bindings.
func (e *Engine) guardPassBinds(n *graph.Node, binds event.Bindings) bool {
	gs := e.states[n.ID].guard
	if gs == nil {
		return true
	}
	return e.guardPass(gs, event.BindsLookup(binds), nil)
}

// addAccs feeds one SEQ+ element's bindings into the open sequence's
// running accumulators, creating them on the first element. An unbound
// aggregated variable accumulates Null, matching the null padding
// CollectLists applies to the folded column.
func (st *nodeState) addAccs(binds event.Bindings) {
	gs := st.guard
	if gs == nil || len(gs.aggVars) == 0 {
		return
	}
	if st.open.accs == nil {
		st.open.accs = make([]event.AggAcc, len(gs.aggVars))
	}
	for i, v := range gs.aggVars {
		val, _ := binds.Get(v)
		st.open.accs[i].Add(event.CoerceScalar(val))
	}
}

// rebuildAccs recomputes the accumulators from the retained elements
// after overflow truncation dropped the older half of the run.
func (st *nodeState) rebuildAccs() {
	if st.open == nil || st.open.accs == nil {
		return
	}
	accs := make([]event.AggAcc, len(st.guard.aggVars))
	for i, v := range st.guard.aggVars {
		for _, el := range st.open.elems {
			val, _ := el.Get(v)
			accs[i].Add(event.CoerceScalar(val))
		}
	}
	st.open.accs = accs
}
