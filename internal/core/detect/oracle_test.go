package detect

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// These property tests check RCEDA's output on randomized histories
// against independently computed references ("oracles") and against the
// temporal-constraint invariants that the paper makes first-class.

// randomHistory produces a sorted history of observations from two readers.
func randomHistory(r *rand.Rand, n int, maxGapMs int) []event.Observation {
	var out []event.Observation
	t := 0.0
	for i := 0; i < n; i++ {
		t += float64(r.Intn(maxGapMs)) / 1000.0
		reader := "r1"
		if r.Intn(3) == 0 {
			reader = "r2"
		}
		out = append(out, event.Observation{
			Reader: reader,
			Object: string(rune('a' + i%26)),
			At:     ts(t),
		})
	}
	return out
}

// TestPropertyTSeqConstraints: every TSEQ detection satisfies the distance
// bound, has ordered constituents, and never reuses a constituent
// (chronicle).
func TestPropertyTSeqConstraints(t *testing.T) {
	lo, hi := 1*time.Second, 4*time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 60, 3000)

		h := newHarness(t, map[int]event.Expr{
			1: &event.TSeq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2"), Lo: lo, Hi: hi},
		}, nil)
		got := h.run(history...)

		usedInit := map[event.Time]int{}
		usedTerm := map[event.Time]int{}
		for _, d := range got {
			t1 := d.inst.Binds.Val("t1").Time()
			t2 := d.inst.Binds.Val("t2").Time()
			dist := t2.Sub(t1)
			if dist < lo || dist > hi {
				t.Logf("seed %d: distance %v outside [%v,%v]", seed, dist, lo, hi)
				return false
			}
			if !t1.Before(t2) {
				t.Logf("seed %d: unordered constituents", seed)
				return false
			}
			usedInit[t1]++
			usedTerm[t2]++
		}
		// Chronicle must not reuse a constituent more often than it
		// occurred (timestamps can repeat only if the generator emitted
		// duplicates, which it can with gap 0).
		counts := map[string]map[event.Time]int{"r1": {}, "r2": {}}
		for _, o := range history {
			counts[o.Reader][o.At]++
		}
		for tm, c := range usedInit {
			if c > counts["r1"][tm] {
				t.Logf("seed %d: initiator at %v reused", seed, tm)
				return false
			}
		}
		for tm, c := range usedTerm {
			if c > counts["r2"][tm] {
				t.Logf("seed %d: terminator at %v reused", seed, tm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTSeqChronicleOracle compares RCEDA against a direct greedy
// chronicle simulation of TSEQ over the same history.
func TestPropertyTSeqChronicleOracle(t *testing.T) {
	lo, hi := 500*time.Millisecond, 3*time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 80, 2000)

		h := newHarness(t, map[int]event.Expr{
			1: &event.TSeq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2"), Lo: lo, Hi: hi},
		}, nil)
		got := h.run(history...)

		// Oracle: chronicle = oldest pending initiator satisfying the
		// constraints is consumed by each terminator.
		type pair struct{ t1, t2 event.Time }
		var want []pair
		var pending []event.Time
		for _, o := range history {
			switch o.Reader {
			case "r1":
				pending = append(pending, o.At)
			case "r2":
				for i, t1 := range pending {
					d := o.At.Sub(t1)
					if t1 < o.At && d >= lo && d <= hi {
						want = append(want, pair{t1, o.At})
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: got %d detections, oracle %d", seed, len(got), len(want))
			return false
		}
		for i, d := range got {
			if d.inst.Binds.Val("t1").Time() != want[i].t1 || d.inst.Binds.Val("t2").Time() != want[i].t2 {
				t.Logf("seed %d: detection %d = (%v,%v), oracle (%v,%v)", seed, i,
					d.inst.Binds.Val("t1").Time(), d.inst.Binds.Val("t2").Time(), want[i].t1, want[i].t2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAndNotOracle: for WITHIN(E1 ∧ ¬E2, τ) each E1 instance with
// no E2 within τ on either side yields exactly one detection.
func TestPropertyAndNotOracle(t *testing.T) {
	tau := 2 * time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 50, 4000)

		h := newHarness(t, map[int]event.Expr{
			1: &event.Within{
				X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
				Max: tau,
			},
		}, nil)
		got := h.run(history...)

		want := 0
		for _, o := range history {
			if o.Reader != "r1" {
				continue
			}
			clean := true
			for _, o2 := range history {
				if o2.Reader != "r2" {
					continue
				}
				d := o2.At.Sub(o.At)
				if d < 0 {
					d = -d
				}
				if d <= tau {
					clean = false
					break
				}
			}
			if clean {
				want++
			}
		}
		if len(got) != want {
			t.Logf("seed %d: got %d detections, oracle %d", seed, len(got), want)
			return false
		}
		for _, d := range got {
			if d.inst.Interval() > tau {
				t.Logf("seed %d: detection interval %v > τ", seed, d.inst.Interval())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTSeqPlusMaximalRuns: TSEQ+ closures partition the E1 stream
// into maximal adjacency-bounded runs: every adjacent pair inside a run
// satisfies [lo,hi], and runs cannot be extended on either side.
func TestPropertyTSeqPlusMaximalRuns(t *testing.T) {
	lo, hi := time.Duration(0), time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 60, 2500)
		// Keep only r1 observations for a clean single-type stream.
		var stream []event.Observation
		for _, o := range history {
			if o.Reader == "r1" {
				stream = append(stream, o)
			}
		}
		h := newHarness(t, map[int]event.Expr{
			1: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: lo, Hi: hi},
		}, nil)
		got := h.run(stream...)

		// Oracle: split stream into maximal runs by the hi gap.
		var runs [][]event.Time
		var cur []event.Time
		for _, o := range stream {
			if len(cur) > 0 && o.At.Sub(cur[len(cur)-1]) > hi {
				runs = append(runs, cur)
				cur = nil
			}
			cur = append(cur, o.At)
		}
		if len(cur) > 0 {
			runs = append(runs, cur)
		}
		if len(got) != len(runs) {
			t.Logf("seed %d: got %d runs, oracle %d", seed, len(got), len(runs))
			return false
		}
		for i, d := range got {
			tl := d.inst.Binds.Val("t")
			if tl.Len() != len(runs[i]) {
				t.Logf("seed %d: run %d has %d elems, oracle %d", seed, i, tl.Len(), len(runs[i]))
				return false
			}
			for j := range runs[i] {
				if tl.Elem(j).Time() != runs[i][j] {
					t.Logf("seed %d: run %d elem %d mismatch", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInfieldOracle: for the infield rule (¬E ; E within w over
// the same reader+object), a sighting is infield iff no earlier sighting
// of the same pair occurred within w before it.
func TestPropertyInfieldOracle(t *testing.T) {
	w := 5 * time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var history []event.Observation
		tcur := 0.0
		for i := 0; i < 60; i++ {
			// Strictly positive gaps: the rule's sequence is strict
			// ("E1 ends before E2 starts"), so simultaneous sightings
			// would diverge from this oracle's ≤-window bookkeeping.
			tcur += float64(r.Intn(4000)+1) / 1000.0
			history = append(history, event.Observation{
				Reader: "shelf",
				Object: string(rune('a' + r.Intn(4))),
				At:     ts(tcur),
			})
		}
		h := newHarness(t, map[int]event.Expr{
			1: &event.Within{
				X:   &event.Seq{L: &event.Not{X: primVars("r", "o", "t1")}, R: primVars("r", "o", "t2")},
				Max: w,
			},
		}, nil)
		got := h.run(history...)

		want := 0
		last := map[string]event.Time{}
		for _, o := range history {
			prev, seen := last[o.Object]
			if !seen || o.At.Sub(prev) > w {
				want++
			}
			last[o.Object] = o.At
		}
		if len(got) != want {
			t.Logf("seed %d: got %d infields, oracle %d", seed, len(got), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOutfieldOracle: for the outfield rule (E ; ¬E within w), a
// detection fires exactly once per "silence of length > w after a
// sighting", anchored at the last sighting before the gap.
func TestPropertyOutfieldOracle(t *testing.T) {
	w := 5 * time.Second
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var history []event.Observation
		tcur := 0.0
		for i := 0; i < 50; i++ {
			tcur += float64(r.Intn(4000)+1) / 1000.0
			history = append(history, event.Observation{
				Reader: "shelf",
				Object: string(rune('a' + r.Intn(3))),
				At:     ts(tcur),
			})
		}
		h := newHarness(t, map[int]event.Expr{
			1: &event.Within{
				X:   &event.Seq{L: primVars("r", "o", "t1"), R: &event.Not{X: primVars("r", "o", "t2")}},
				Max: w,
			},
		}, nil)
		got := h.run(history...)

		// Oracle: per object, every maximal run of sightings with gaps
		// ≤ w ends in exactly one outfield (including the final run,
		// completed by Close).
		byObj := map[string][]event.Time{}
		for _, o := range history {
			byObj[o.Object] = append(byObj[o.Object], o.At)
		}
		want := 0
		for _, times := range byObj {
			want++ // final run always closes
			for i := 1; i < len(times); i++ {
				if times[i].Sub(times[i-1]) > w {
					want++
				}
			}
		}
		if len(got) != want {
			t.Logf("seed %d: got %d outfields, oracle %d", seed, len(got), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIndexedEqualsLinear: primitive-pattern indexing (A5) is a
// pure optimization — detections must be identical with and without it.
func TestPropertyIndexedEqualsLinear(t *testing.T) {
	mkRules := func() map[int]event.Expr {
		return map[int]event.Expr{
			1: &event.TSeq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2"),
				Lo: 500 * time.Millisecond, Hi: 3 * time.Second},
			2: &event.Within{X: &event.Seq{L: primVars("r", "o", "u1"), R: primVars("r", "o", "u2")},
				Max: 5 * time.Second}, // variable reader: wildcard path
			3: &event.Within{
				X:   &event.And{L: prim("r1", "a", "ta"), R: &event.Not{X: prim("r2", "b", "tb")}},
				Max: 2 * time.Second,
			},
		}
	}
	runIdx := func(indexed bool, history []event.Observation) []string {
		b := graph.NewBuilder()
		for id := 1; id <= 3; id++ {
			if _, err := b.AddRule(id, mkRules()[id]); err != nil {
				t.Fatal(err)
			}
		}
		var sigs []string
		eng, err := New(Config{
			Graph:           b.Finalize(),
			IndexPrimitives: indexed,
			OnDetect: func(rid int, in *event.Instance) {
				sigs = append(sigs, in.Binds.String()+in.Begin.String()+in.End.String())
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range history {
			if err := eng.Ingest(o); err != nil {
				t.Fatal(err)
			}
		}
		eng.Close()
		return sigs
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 70, 2500)
		a := runIdx(false, history)
		b := runIdx(true, history)
		if len(a) != len(b) {
			t.Logf("seed %d: linear %d vs indexed %d detections", seed, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("seed %d: detection %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergedEqualsUnmerged: common sub-graph merging is a pure
// optimization — detections must be identical with and without it.
func TestPropertyMergedEqualsUnmerged(t *testing.T) {
	mkRules := func() map[int]event.Expr {
		return map[int]event.Expr{
			1: &event.TSeq{
				L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
				R:  prim("r2", "o2", "t2"),
				Lo: 2 * time.Second, Hi: 8 * time.Second,
			},
			2: &event.TSeq{
				L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
				R:  prim("r2", "o3", "t3"),
				Lo: 2 * time.Second, Hi: 8 * time.Second,
			},
			3: &event.Within{
				X:   &event.Seq{L: prim("r1", "a", "ta"), R: prim("r2", "b", "tb")},
				Max: 4 * time.Second,
			},
		}
	}
	runWith := func(t *testing.T, merge bool, history []event.Observation) []detection {
		var opts []graph.Option
		if !merge {
			opts = append(opts, graph.WithoutMerging())
		}
		b := graph.NewBuilder(opts...)
		for id, e := range mkRules() {
			if _, err := b.AddRule(id, e); err != nil {
				t.Fatalf("AddRule: %v", err)
			}
		}
		var out []detection
		eng, err := New(Config{Graph: b.Finalize(), OnDetect: func(rid int, inst *event.Instance) {
			out = append(out, detection{rid, inst})
		}})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range history {
			if err := eng.Ingest(o); err != nil {
				t.Fatal(err)
			}
		}
		eng.Close()
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		history := randomHistory(r, 70, 2500)
		a := runWith(t, true, history)
		b := runWith(t, false, history)
		if len(a) != len(b) {
			t.Logf("seed %d: merged %d vs unmerged %d detections", seed, len(a), len(b))
			return false
		}
		// Compare as multisets of (rule, span, binds-string).
		sig := func(ds []detection) map[string]int {
			m := map[string]int{}
			for _, d := range ds {
				m[d.inst.Binds.String()+d.inst.Begin.String()+d.inst.End.String()]++
			}
			return m
		}
		sa, sb := sig(a), sig(b)
		for k, v := range sa {
			if sb[k] != v {
				t.Logf("seed %d: signature mismatch at %q: %d vs %d", seed, k, v, sb[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
