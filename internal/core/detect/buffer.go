// Package detect implements RCEDA, the RFID complex event detection
// algorithm of paper §4: graph-driven detection where temporal constraints
// are first-class, non-spontaneous events are completed by pseudo events,
// and constituent instances are paired under a parameter context
// (chronicle by default).
//
// The engine is single-goroutine: observations must be fed in
// non-decreasing timestamp order through Ingest. Use package stream to
// merge or reorder unruly sources upstream.
package detect

import (
	"sort"

	"rcep/internal/core/event"
)

// buffer holds pending instances of one side of a binary constructor,
// optionally partitioned by the constructor's join variables so candidate
// lookups touch only binding-compatible instances.
//
// Partitions are held behind pointers and looked up with a reused key
// buffer: the common operations (lookup-and-append, scan) then compile to
// allocation-free map accesses — a key string is materialized only when a
// partition is first created.
type buffer struct {
	joinVars []string
	parts    map[string]*partition // partitioned on join projection
	flat     []*event.Instance     // used when joinVars is empty
	size     int
	keyBuf   []byte // reused projection-key scratch

	// cap bounds each partition (0 = unbounded); dropped counts evicted
	// oldest instances.
	cap     int
	dropped *uint64
}

// partition is one join-key bucket of a partitioned buffer.
type partition struct {
	items []*event.Instance
}

func newBuffer(joinVars []string) *buffer {
	b := &buffer{joinVars: joinVars}
	if len(joinVars) > 0 {
		b.parts = make(map[string]*partition)
	}
	return b
}

// part returns the partition for an instance's join projection, creating
// it when create is set. The projection key lives in b.keyBuf until the
// next buffer operation.
func (b *buffer) part(binds event.Bindings, create bool) *partition {
	b.keyBuf = binds.AppendProject(b.keyBuf[:0], b.joinVars)
	p := b.parts[string(b.keyBuf)]
	if p == nil && create {
		p = &partition{}
		b.parts[string(b.keyBuf)] = p
	}
	return p
}

// add appends an instance to its partition, evicting the oldest entry
// when the partition cap is exceeded.
func (b *buffer) add(in *event.Instance) {
	b.size++
	if b.parts == nil {
		b.flat = append(b.flat, in)
		if b.cap > 0 && len(b.flat) > b.cap {
			b.flat = b.flat[1:]
			b.size--
			if b.dropped != nil {
				*b.dropped++
			}
		}
		return
	}
	p := b.part(in.Binds, true)
	p.items = append(p.items, in)
	if b.cap > 0 && len(p.items) > b.cap {
		p.items = p.items[1:]
		b.size--
		if b.dropped != nil {
			*b.dropped++
		}
	}
}

// replaceAll empties the instance's partition and stores only it (the
// "recent" context keeps the most recent initiator only).
func (b *buffer) replaceAll(in *event.Instance) {
	if b.parts == nil {
		b.size = 1
		b.flat = append(b.flat[:0], in)
		return
	}
	p := b.part(in.Binds, true)
	b.size -= len(p.items)
	b.size++
	p.items = append(p.items[:0], in)
}

// scan visits the partition compatible with binds in arrival order. The
// visitor returns keep (retain the instance in the buffer) and cont
// (continue scanning). Instances the visitor drops are removed. With join
// variables, only the matching partition is visited; without them every
// instance is binding-compatible by construction. Emptied partitions stay
// in the map (cleared, sliver-sized) and are reused on the next add for
// the same key.
func (b *buffer) scan(binds event.Bindings, visit func(*event.Instance) (keep, cont bool)) {
	if b.parts != nil {
		p := b.part(binds, false)
		if p == nil {
			return
		}
		b.scanSlice(&p.items, visit)
		return
	}
	b.scanSlice(&b.flat, visit)
}

func (b *buffer) scanSlice(s *[]*event.Instance, visit func(*event.Instance) (keep, cont bool)) {
	out := (*s)[:0]
	stopped := false
	for _, in := range *s {
		if stopped {
			out = append(out, in)
			continue
		}
		keep, cont := visit(in)
		if keep {
			out = append(out, in)
		} else {
			b.size--
		}
		if !cont {
			stopped = true
		}
	}
	*s = out
}

// purge removes every instance for which drop returns true, across all
// partitions. Partitions left empty are released here — the only place
// the map shrinks, keeping the hot scan path free of map writes.
func (b *buffer) purge(drop func(*event.Instance) bool) {
	if b.parts == nil {
		out := b.flat[:0]
		for _, in := range b.flat {
			if drop(in) {
				b.size--
			} else {
				out = append(out, in)
			}
		}
		b.flat = out
		return
	}
	for k, p := range b.parts {
		out := p.items[:0]
		for _, in := range p.items {
			if drop(in) {
				b.size--
			} else {
				out = append(out, in)
			}
		}
		p.items = out
		if len(out) == 0 {
			delete(b.parts, k)
		}
	}
}

// len returns the number of buffered instances.
func (b *buffer) len() int { return b.size }

// all returns every buffered instance in arrival (Seq) order; used by
// checkpointing, which re-adds them on restore.
func (b *buffer) all() []*event.Instance {
	var out []*event.Instance
	if b.parts == nil {
		out = append(out, b.flat...)
	} else {
		for _, p := range b.parts {
			out = append(out, p.items...)
		}
	}
	sortInstancesBySeq(out)
	return out
}

func sortInstancesBySeq(s []*event.Instance) {
	sort.Slice(s, func(i, j int) bool { return s[i].Seq < s[j].Seq })
}

// projectBinds restricts binds to the given variables; used to build
// negation-query filters from a positive instance's bindings.
func projectBinds(binds event.Bindings, vars []string) event.Bindings {
	if len(vars) == 0 {
		return nil
	}
	out := make(event.Bindings, 0, len(vars))
	for _, v := range vars {
		if val, ok := binds.Get(v); ok {
			out = out.Set(v, val)
		}
	}
	return out
}

// history is a time-ordered log of a node's occurrences, kept for window
// queries (negation, pulled SEQ+). Entries are ordered by End time.
// Chronicle consumption is tracked per consumer node: a sub-event shared
// by several rules (common sub-graph merging) is detected once but each
// consuming parent claims its own copy, so merging never changes
// detections.
type history struct {
	entries  []*event.Instance
	consumed map[int]map[*event.Instance]bool // consumer node ID → claimed

	// cap bounds retained entries (0 = unbounded); dropped counts
	// evicted oldest entries.
	cap     int
	dropped *uint64
}

func newHistory() *history {
	return &history{consumed: map[int]map[*event.Instance]bool{}}
}

// add records an occurrence, keeping entries sorted by End (insertion is
// near the tail in practice since time advances monotonically). The
// oldest entry is evicted past the cap.
func (h *history) add(in *event.Instance) {
	i := len(h.entries)
	for i > 0 && h.entries[i-1].End > in.End {
		i--
	}
	h.entries = append(h.entries, nil)
	copy(h.entries[i+1:], h.entries[i:])
	h.entries[i] = in
	if h.cap > 0 && len(h.entries) > h.cap {
		old := h.entries[0]
		for _, m := range h.consumed {
			delete(m, old)
		}
		h.entries = h.entries[1:]
		if h.dropped != nil {
			*h.dropped++
		}
	}
}

// inWindow visits entries whose End falls in [a, b] and whose bindings are
// compatible with filter. consumer >= 0 skips entries that consumer has
// already claimed; pass anyConsumer for existence checks (negation cares
// about occurrence regardless of consumption).
func (h *history) inWindow(a, b event.Time, filter event.Bindings, consumer int, visit func(*event.Instance) bool) {
	lo := h.lowerBound(a)
	claimed := map[*event.Instance]bool(nil)
	if consumer >= 0 {
		claimed = h.consumed[consumer]
	}
	for i := lo; i < len(h.entries); i++ {
		in := h.entries[i]
		if in.End > b {
			break
		}
		if claimed[in] {
			continue
		}
		if filter != nil && !in.Binds.Compatible(filter) {
			continue
		}
		if !visit(in) {
			return
		}
	}
}

// anyConsumer disables consumption filtering in inWindow.
const anyConsumer = -1

// lowerBound returns the first index with End >= a.
func (h *history) lowerBound(a event.Time) int {
	lo, hi := 0, len(h.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.entries[mid].End < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// markConsumed claims an entry for a chronicle consumer node.
func (h *history) markConsumed(consumer int, in *event.Instance) {
	m := h.consumed[consumer]
	if m == nil {
		m = map[*event.Instance]bool{}
		h.consumed[consumer] = m
	}
	m[in] = true
}

// pruneBefore drops entries with End < t.
func (h *history) pruneBefore(t event.Time) {
	i := h.lowerBound(t)
	if i == 0 {
		return
	}
	for _, in := range h.entries[:i] {
		for _, m := range h.consumed {
			delete(m, in)
		}
	}
	h.entries = append(h.entries[:0], h.entries[i:]...)
}

// len returns the number of retained entries.
func (h *history) len() int { return len(h.entries) }
