package detect

import (
	"sort"
	"testing"
	"time"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func prim(reader, objVar, timeVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: objVar},
		At:     event.Term{Var: timeVar},
		Preds:  preds,
	}
}

func primVars(rVar, oVar, tVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Var: rVar},
		Object: event.Term{Var: oVar},
		At:     event.Term{Var: tVar},
		Preds:  preds,
	}
}

func obs(reader, object string, sec float64) event.Observation {
	return event.Observation{Reader: reader, Object: object, At: ts(sec)}
}

type detection struct {
	rule int
	inst *event.Instance
}

type harness struct {
	t      *testing.T
	eng    *Engine
	sights []detection
}

func newHarness(t *testing.T, rules map[int]event.Expr, mod func(*Config)) *harness {
	t.Helper()
	b := graph.NewBuilder()
	ids := make([]int, 0, len(rules))
	for id := range rules {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := b.AddRule(id, rules[id]); err != nil {
			t.Fatalf("AddRule(%d): %v", id, err)
		}
	}
	h := &harness{t: t}
	cfg := Config{
		Graph: b.Finalize(),
		OnDetect: func(rid int, inst *event.Instance) {
			h.sights = append(h.sights, detection{rid, inst})
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.eng = eng
	return h
}

func (h *harness) feed(observations ...event.Observation) {
	h.t.Helper()
	for _, o := range observations {
		if err := h.eng.Ingest(o); err != nil {
			h.t.Fatalf("Ingest(%v): %v", o, err)
		}
	}
}

func (h *harness) run(observations ...event.Observation) []detection {
	h.t.Helper()
	h.feed(observations...)
	h.eng.Close()
	return h.sights
}

func TestPrimitiveRuleFires(t *testing.T) {
	// Rule 3 style: ON observation(r, o, t) — every observation fires.
	h := newHarness(t, map[int]event.Expr{1: primVars("r", "o", "t")}, nil)
	got := h.run(obs("r1", "o1", 1), obs("r2", "o2", 2))
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2", len(got))
	}
	in := got[0].inst
	if in.Binds.Val("r").Str() != "r1" || in.Binds.Val("o").Str() != "o1" || in.Binds.Val("t").Time() != ts(1) {
		t.Errorf("bindings wrong: %v", in.Binds)
	}
	if in.Begin != ts(1) || in.End != ts(1) {
		t.Errorf("primitive instance should be instantaneous: %v", in)
	}
}

func TestPrimitiveReaderLiteralFilter(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{1: prim("r1", "o", "t")}, nil)
	got := h.run(obs("r1", "a", 1), obs("r2", "b", 2), obs("r1", "c", 3))
	if len(got) != 2 {
		t.Fatalf("detections = %d, want 2 (only reader r1)", len(got))
	}
}

func TestPrimitiveTypePredicate(t *testing.T) {
	types := map[string]string{"L1": "laptop", "P1": "pallet"}
	h := newHarness(t, map[int]event.Expr{
		1: primVars("r", "o", "t", event.Pred{Fn: "type", Arg: "o", Op: event.CmpEq, Val: "laptop"}),
	}, func(c *Config) {
		c.TypeOf = func(o string) string { return types[o] }
	})
	got := h.run(obs("r1", "L1", 1), obs("r1", "P1", 2))
	if len(got) != 1 || got[0].inst.Binds.Val("o").Str() != "L1" {
		t.Fatalf("type predicate failed: %v", got)
	}
}

func TestPrimitiveGroupPredicate(t *testing.T) {
	groups := map[string][]string{"rA": {"g1"}, "rB": {"g1", "g2"}, "rC": {"g3"}}
	h := newHarness(t, map[int]event.Expr{
		1: primVars("r", "o", "t", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "g1"}),
	}, func(c *Config) {
		c.Groups = func(r string) []string { return groups[r] }
	})
	got := h.run(obs("rA", "x", 1), obs("rB", "y", 2), obs("rC", "z", 3))
	if len(got) != 2 {
		t.Fatalf("group predicate: got %d detections, want 2", len(got))
	}
}

func TestDefaultGroupIsReaderItself(t *testing.T) {
	// Paper §2.1: with no group table, group(r) = r.
	h := newHarness(t, map[int]event.Expr{
		1: primVars("r", "o", "t", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "r7"}),
	}, nil)
	got := h.run(obs("r7", "x", 1), obs("r8", "y", 2))
	if len(got) != 1 || got[0].inst.Binds.Val("r").Str() != "r7" {
		t.Fatalf("default group: %v", got)
	}
}

func TestOrDisjunction(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.Or{L: prim("r1", "o", "t"), R: prim("r2", "o", "t")},
	}, nil)
	got := h.run(obs("r1", "a", 1), obs("r3", "b", 2), obs("r2", "c", 3))
	if len(got) != 2 {
		t.Fatalf("OR: got %d, want 2", len(got))
	}
}

func TestAndConjunction(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
	}, nil)
	got := h.run(obs("r2", "b", 1), obs("r1", "a", 5))
	if len(got) != 1 {
		t.Fatalf("AND: got %d, want 1", len(got))
	}
	in := got[0].inst
	if in.Begin != ts(1) || in.End != ts(5) {
		t.Errorf("AND span = [%v, %v], want [1s, 5s]", in.Begin, in.End)
	}
	if in.Binds.Val("o1").Str() != "a" || in.Binds.Val("o2").Str() != "b" {
		t.Errorf("AND bindings: %v", in.Binds)
	}
}

func TestAndWithinConstraint(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{X: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}, Max: 3 * time.Second},
	}, nil)
	// Pair at distance 5s violates WITHIN(3s); later pair at 2s is fine.
	got := h.run(obs("r1", "a", 0), obs("r2", "b", 5), obs("r1", "c", 6))
	if len(got) != 1 {
		t.Fatalf("AND within: got %d, want 1", len(got))
	}
	if got[0].inst.Binds.Val("o1").Str() != "c" {
		t.Errorf("wrong pairing: %v", got[0].inst.Binds)
	}
}

func TestSeqOrdering(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
	}, nil)
	// Terminator before initiator must not match; later one does.
	got := h.run(obs("r2", "x", 1), obs("r1", "a", 2), obs("r2", "y", 3))
	if len(got) != 1 {
		t.Fatalf("SEQ: got %d, want 1", len(got))
	}
	in := got[0].inst
	if in.Binds.Val("o1").Str() != "a" || in.Binds.Val("o2").Str() != "y" {
		t.Errorf("SEQ pairing: %v", in.Binds)
	}
	if in.Begin != ts(2) || in.End != ts(3) {
		t.Errorf("SEQ span: %v", in)
	}
}

func TestSeqSimultaneousDoesNotMatch(t *testing.T) {
	// SEQ requires t_end(e1) < t_begin(e2); simultaneous events don't pair.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
	}, nil)
	got := h.run(obs("r1", "a", 1), obs("r2", "b", 1))
	if len(got) != 0 {
		t.Fatalf("simultaneous SEQ matched: %v", got)
	}
}

func TestTSeqDistanceBounds(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2"),
			Lo: 2 * time.Second, Hi: 4 * time.Second},
	}, nil)
	// dist = 1s (too close), 5s (too far), 3s (just right).
	got := h.run(
		obs("r1", "a", 0), obs("r2", "x", 1), // dist 1: no
		obs("r2", "y", 5),                      // dist 5 from a: no (and a now expired)
		obs("r1", "b", 10), obs("r2", "z", 13), // dist 3: yes
	)
	if len(got) != 1 {
		t.Fatalf("TSEQ: got %d, want 1: %v", len(got), got)
	}
	if got[0].inst.Binds.Val("o1").Str() != "b" || got[0].inst.Binds.Val("o2").Str() != "z" {
		t.Errorf("TSEQ pairing: %v", got[0].inst.Binds)
	}
}

func TestSeqJoinOnSharedVariables(t *testing.T) {
	// Rule 1 (duplicate detection): same reader, same object, within 5s.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
			Max: 5 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("r1", "o1", 0),
		obs("r1", "o2", 1),  // different object: no pair with o1
		obs("r1", "o1", 3),  // duplicate of o1@0
		obs("r2", "o1", 4),  // different reader: no pair
		obs("r1", "o1", 10), // too late: no pair with o1@3 (7s)
		obs("r1", "o2", 11), // too late for o2@1
	)
	if len(got) != 1 {
		t.Fatalf("dup rule: got %d, want 1: %v", len(got), got)
	}
	in := got[0].inst
	if in.Binds.Val("t1").Time() != ts(0) || in.Binds.Val("t2").Time() != ts(3) {
		t.Errorf("dup pairing: %v", in.Binds)
	}
}

func TestChronicleOverlappingSequences(t *testing.T) {
	// Chronicle pairs oldest initiator with oldest terminator even when
	// complex events overlap (paper §4.2).
	h := newHarness(t, map[int]event.Expr{
		1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
	}, nil)
	got := h.run(obs("rA", "a1", 1), obs("rA", "a2", 2), obs("rB", "b1", 3), obs("rB", "b2", 4))
	if len(got) != 2 {
		t.Fatalf("chronicle: got %d, want 2", len(got))
	}
	if got[0].inst.Binds.Val("o1").Str() != "a1" || got[0].inst.Binds.Val("o2").Str() != "b1" {
		t.Errorf("first pairing: %v", got[0].inst.Binds)
	}
	if got[1].inst.Binds.Val("o1").Str() != "a2" || got[1].inst.Binds.Val("o2").Str() != "b2" {
		t.Errorf("second pairing: %v", got[1].inst.Binds)
	}
}

// TestFig4 reproduces the paper's Fig. 4 history for
// E = TSEQ(TSEQ+(E1, 0sec, 1sec); E2, 5sec, 10sec): the correct instances
// are {e1@1,2,3 + e2@12} and {e1@5,6,7 + e2@15}.
func TestFig4CorrectDetection(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
			R:  prim("r2", "o2", "t2"),
			Lo: 5 * time.Second, Hi: 10 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("r1", "i1", 1), obs("r1", "i2", 2), obs("r1", "i3", 3),
		obs("r1", "i5", 5), obs("r1", "i6", 6), obs("r1", "i7", 7),
		obs("r2", "c1", 12), obs("r2", "c2", 15),
	)
	if len(got) != 2 {
		t.Fatalf("Fig4: got %d detections, want 2: %v", len(got), got)
	}
	first, second := got[0].inst, got[1].inst
	wantList := func(in *event.Instance, items ...string) {
		t.Helper()
		l := in.Binds.Val("o1")
		if l.Kind() != event.KindList || l.Len() != len(items) {
			t.Fatalf("o1 = %v, want list %v", l, items)
		}
		for i, it := range items {
			if l.Elem(i).Str() != it {
				t.Errorf("o1[%d] = %v, want %s", i, l.Elem(i), it)
			}
		}
	}
	wantList(first, "i1", "i2", "i3")
	if first.Binds.Val("o2").Str() != "c1" {
		t.Errorf("first terminator: %v", first.Binds.Val("o2"))
	}
	if first.Begin != ts(1) || first.End != ts(12) {
		t.Errorf("first span: %v", first)
	}
	wantList(second, "i5", "i6", "i7")
	if second.Binds.Val("o2").Str() != "c2" {
		t.Errorf("second terminator: %v", second.Binds.Val("o2"))
	}
}

// TestFig8 reproduces the paper's Fig. 8 pseudo-event walkthrough for
// E = WITHIN(E1 ∧ ¬E2, 10sec) over history {e2@2, e1@10, e1@20}: a single
// detection with span [20s, 30s], completed by the pseudo event at t=30.
func TestFig8PseudoEventDetection(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 10 * time.Second,
		},
	}, nil)
	h.feed(obs("r2", "u1", 2), obs("r1", "L1", 10), obs("r1", "L2", 20))
	if len(h.sights) != 0 {
		t.Fatalf("nothing should be detected before the window expires")
	}
	if err := h.eng.AdvanceTo(ts(30)); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if len(h.sights) != 1 {
		t.Fatalf("Fig8: got %d detections, want 1", len(h.sights))
	}
	in := h.sights[0].inst
	if in.Begin != ts(20) || in.End != ts(30) {
		t.Errorf("Fig8 span = [%v, %v], want [20s, 30s]", in.Begin, in.End)
	}
	if in.Binds.Val("o1").Str() != "L2" {
		t.Errorf("Fig8 bindings: %v", in.Binds)
	}
}

func TestAndNotBlockedByLaterNegative(t *testing.T) {
	// The negative event arrives inside the future half of the window.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 10 * time.Second,
		},
	}, nil)
	got := h.run(obs("r1", "L1", 10), obs("r2", "u1", 15))
	if len(got) != 0 {
		t.Fatalf("negative at 15s inside [10,20] must block: %v", got)
	}
}

func TestAndNotJoinFilter(t *testing.T) {
	// Same-reader negation: only a superuser at the SAME reader clears the
	// laptop. A superuser elsewhere must not.
	types := map[string]string{"L1": "laptop", "U1": "superuser"}
	mk := func() map[int]event.Expr {
		return map[int]event.Expr{
			1: &event.Within{
				X: &event.And{
					L: primVars("r", "o1", "t1", event.Pred{Fn: "type", Arg: "o1", Op: event.CmpEq, Val: "laptop"}),
					R: &event.Not{X: primVars("r", "o2", "t2", event.Pred{Fn: "type", Arg: "o2", Op: event.CmpEq, Val: "superuser"})},
				},
				Max: 5 * time.Second,
			},
		}
	}
	cfg := func(c *Config) { c.TypeOf = func(o string) string { return types[o] } }

	// Superuser at same reader: no alarm.
	h1 := newHarness(t, mk(), cfg)
	if got := h1.run(obs("exit", "L1", 10), obs("exit", "U1", 12)); len(got) != 0 {
		t.Errorf("superuser at same reader should clear the alarm: %v", got)
	}
	// Superuser at a different reader: alarm fires.
	h2 := newHarness(t, mk(), cfg)
	if got := h2.run(obs("exit", "L1", 10), obs("lobby", "U1", 12)); len(got) != 1 {
		t.Errorf("superuser elsewhere must not clear the alarm: %v", got)
	}
}

func TestInfieldRule(t *testing.T) {
	// Rule 2: WITHIN(¬observation(r,o,t1); observation(r,o,t2), 30sec):
	// fires only when the object was NOT seen in the preceding 30s.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: &event.Not{X: primVars("r", "o", "t1")}, R: primVars("r", "o", "t2")},
			Max: 30 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("shelf", "item1", 0),  // first sighting: infield
		obs("shelf", "item1", 10), // re-read: suppressed
		obs("shelf", "item1", 20), // re-read: suppressed
		obs("shelf", "item2", 25), // different object: infield
		obs("shelf", "item1", 60), // 40s gap: infield again
	)
	if len(got) != 3 {
		t.Fatalf("infield: got %d, want 3: %v", len(got), got)
	}
	wantTimes := []event.Time{ts(0), ts(25), ts(60)}
	for i, d := range got {
		if d.inst.Binds.Val("t2").Time() != wantTimes[i] {
			t.Errorf("infield %d at %v, want %v", i, d.inst.Binds.Val("t2").Time(), wantTimes[i])
		}
	}
}

func TestOutfieldRule(t *testing.T) {
	// Outfield: WITHIN(observation(r,o,t1); ¬observation(r,o,t2), 30sec):
	// fires 30s after the LAST sighting of the object.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: primVars("r", "o", "t1"), R: &event.Not{X: primVars("r", "o", "t2")}},
			Max: 30 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("shelf", "item1", 0),
		obs("shelf", "item1", 20),
		obs("shelf", "item1", 40),
		// item1 never read again → outfield at 70.
	)
	if len(got) != 1 {
		t.Fatalf("outfield: got %d, want 1: %v", len(got), got)
	}
	in := got[0].inst
	if in.End != ts(70) {
		t.Errorf("outfield completes at %v, want 70s", in.End)
	}
	if in.Binds.Val("t1").Time() != ts(40) {
		t.Errorf("outfield anchored at %v, want last sighting 40s", in.Binds.Val("t1").Time())
	}
}

func TestTSeqPlusRootClosesViaPseudo(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second},
	}, nil)
	h.feed(obs("r1", "a", 1), obs("r1", "b", 1.5), obs("r1", "c", 2.2))
	if len(h.sights) != 0 {
		t.Fatalf("sequence must not close while extendable")
	}
	h.feed(obs("r1", "d", 10)) // gap > 1s closes the first run
	if len(h.sights) != 1 {
		t.Fatalf("first run should have closed: %d", len(h.sights))
	}
	in := h.sights[0].inst
	if l := in.Binds.Val("o"); l.Len() != 3 || l.Elem(0).Str() != "a" || l.Elem(2).Str() != "c" {
		t.Errorf("first run list: %v", l)
	}
	if in.Begin != ts(1) || in.End != ts(2.2) {
		t.Errorf("first run span: %v", in)
	}
	h.eng.Close() // drains the close pseudo for {d}
	if len(h.sights) != 2 {
		t.Fatalf("second run should close on Close(): %d", len(h.sights))
	}
}

func TestTSeqPlusTooFastBreaksAdjacency(t *testing.T) {
	// DESIGN.md §3: an arrival faster than Lo breaks the run.
	h := newHarness(t, map[int]event.Expr{
		1: &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 500 * time.Millisecond, Hi: time.Second},
	}, nil)
	got := h.run(obs("r1", "a", 1), obs("r1", "b", 1.1)) // 0.1s < Lo
	if len(got) != 2 {
		t.Fatalf("too-fast arrival should yield two runs, got %d", len(got))
	}
}

func TestTSeqPlusWithinSplitsLongRun(t *testing.T) {
	// WITHIN(TSEQ+(E1, 0.1s, 1s), 2s): a long adjacent run is split when
	// it would exceed the propagated interval bound.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second},
			Max: 2 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("r1", "a", 0), obs("r1", "b", 1), obs("r1", "c", 2),
		obs("r1", "d", 3), obs("r1", "e", 4),
	)
	if len(got) != 2 {
		t.Fatalf("run should split under WITHIN: got %d: %v", len(got), got)
	}
	for _, d := range got {
		if d.inst.Interval() > 2*time.Second {
			t.Errorf("detected run violates WITHIN: %v", d.inst)
		}
	}
}

func TestSeqPlusPullInitiator(t *testing.T) {
	// WITHIN(SEQ+(E1); E2, 10s): unconstrained aperiodic initiator,
	// evaluated lazily over the lookback window on terminator arrival.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: &event.SeqPlus{X: prim("r1", "o1", "t1")}, R: prim("r2", "o2", "t2")},
			Max: 10 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("r1", "a", 1), obs("r1", "b", 3), obs("r1", "c", 8),
		obs("r2", "case", 9),
	)
	if len(got) != 1 {
		t.Fatalf("SEQ+ pull: got %d, want 1: %v", len(got), got)
	}
	l := got[0].inst.Binds.Val("o1")
	if l.Len() != 3 {
		t.Errorf("SEQ+ should aggregate all 3 items in window: %v", l)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{1: primVars("r", "o", "t")}, nil)
	h.feed(obs("r1", "a", 5))
	if err := h.eng.Ingest(obs("r1", "b", 4)); err == nil {
		t.Fatalf("out-of-order observation accepted")
	}
	if err := h.eng.AdvanceTo(ts(1)); err == nil {
		t.Fatalf("backwards AdvanceTo accepted")
	}
	// Equal timestamps are fine.
	if err := h.eng.Ingest(obs("r1", "c", 5)); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
}

func TestMetrics(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
			Max: 5 * time.Second,
		},
	}, nil)
	h.run(obs("r1", "a", 1), obs("r3", "x", 2))
	m := h.eng.Metrics()
	if m.Observations != 2 {
		t.Errorf("Observations = %d", m.Observations)
	}
	if m.PrimMatches != 1 {
		t.Errorf("PrimMatches = %d", m.PrimMatches)
	}
	if m.PseudoScheduled != 1 || m.PseudoFired != 1 {
		t.Errorf("pseudo counters: %+v", m)
	}
	if m.Detections != 1 {
		t.Errorf("Detections = %d", m.Detections)
	}
}

func TestSharedSubgraphSingleDetectionPerRule(t *testing.T) {
	// Two rules over the same event must each fire exactly once per match.
	e1 := &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}
	e2 := &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}
	h := newHarness(t, map[int]event.Expr{1: e1, 2: e2}, nil)
	got := h.run(obs("r1", "a", 1), obs("r2", "b", 2))
	if len(got) != 2 {
		t.Fatalf("got %d detections, want 2 (one per rule)", len(got))
	}
	rules := map[int]int{}
	for _, d := range got {
		rules[d.rule]++
	}
	if rules[1] != 1 || rules[2] != 1 {
		t.Errorf("per-rule detections: %v", rules)
	}
}

func TestSelfSequence(t *testing.T) {
	// SEQ(E; E) with a fully identical pattern merges into one graph node
	// on both sides (anonymous time term, join on the object): each
	// sighting of the same object terminates the previous one.
	p := func() event.Expr {
		return &event.Prim{Reader: event.Term{Lit: "r1"}, Object: event.Term{Var: "o"}}
	}
	h := newHarness(t, map[int]event.Expr{1: &event.Seq{L: p(), R: p()}}, nil)
	got := h.run(obs("r1", "x", 1), obs("r1", "x", 2), obs("r1", "x", 3), obs("r1", "x", 4))
	// Chronicle without reuse: (1,2) then (3,4).
	if len(got) != 2 {
		t.Fatalf("self-SEQ: got %d, want 2: %v", len(got), got)
	}
	if got[0].inst.Begin != ts(1) || got[0].inst.End != ts(2) ||
		got[1].inst.Begin != ts(3) || got[1].inst.End != ts(4) {
		t.Errorf("self-SEQ spans: %v, %v", got[0].inst, got[1].inst)
	}
}

func TestContexts(t *testing.T) {
	// History: initiators a@1, b@2; terminator x@3; then terminator y@4.
	mk := func(ctx pctx.Context) []detection {
		h := newHarness(t, map[int]event.Expr{
			1: &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")},
		}, func(c *Config) { c.Context = ctx })
		return h.run(obs("rA", "a", 1), obs("rA", "b", 2), obs("rB", "x", 3), obs("rB", "y", 4))
	}
	pairs := func(ds []detection) []string {
		var out []string
		for _, d := range ds {
			out = append(out, d.inst.Binds.Val("o1").String()+"+"+d.inst.Binds.Val("o2").String())
		}
		return out
	}

	if got := pairs(mk(pctx.Chronicle)); len(got) != 2 || got[0] != "a+x" || got[1] != "b+y" {
		t.Errorf("chronicle: %v", got)
	}
	if got := pairs(mk(pctx.Recent)); len(got) != 2 || got[0] != "b+x" || got[1] != "b+y" {
		t.Errorf("recent: %v", got)
	}
	// Continuous: x pairs with (and consumes) both a and b; y finds none.
	if got := pairs(mk(pctx.Continuous)); len(got) != 2 || got[0] != "a+x" || got[1] != "b+x" {
		t.Errorf("continuous: %v", got)
	}
	// Cumulative: x consumes a and b into one detection.
	if got := pairs(mk(pctx.Cumulative)); len(got) != 1 {
		t.Errorf("cumulative: %v", got)
	}
	// Unrestricted: x pairs with a,b; y pairs with a,b.
	if got := pairs(mk(pctx.Unrestricted)); len(got) != 4 {
		t.Errorf("unrestricted: %v", got)
	}
}

func TestWithinDropsLongInstances(t *testing.T) {
	// WITHIN over a SEQ drops pairings whose combined span is too long
	// even when the SEQ itself is unbounded.
	h := newHarness(t, map[int]event.Expr{
		1: &event.Within{
			X:   &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
			Max: 2 * time.Second,
		},
	}, nil)
	got := h.run(obs("r1", "a", 0), obs("r2", "b", 5))
	if len(got) != 0 {
		t.Fatalf("pairing spanning 5s must be dropped by WITHIN(2s): %v", got)
	}
}

func TestRule4ContainmentPattern(t *testing.T) {
	// Rule 4: TSEQ(TSEQ+(E1, 0.1sec, 1sec); E2, 10sec, 20sec) — items on
	// the conveyor, then the case 10–20s later.
	h := newHarness(t, map[int]event.Expr{
		4: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 100 * time.Millisecond, Hi: time.Second},
			R:  prim("r2", "o2", "t2"),
			Lo: 10 * time.Second, Hi: 20 * time.Second,
		},
	}, nil)
	got := h.run(
		obs("r1", "item1", 1.0), obs("r1", "item2", 1.3), obs("r1", "item3", 1.6),
		obs("r2", "case1", 14),
	)
	if len(got) != 1 {
		t.Fatalf("containment: got %d, want 1: %v", len(got), got)
	}
	in := got[0].inst
	items := in.Binds.Val("o1")
	if items.Len() != 3 {
		t.Fatalf("items: %v", items)
	}
	if in.Binds.Val("o2").Str() != "case1" {
		t.Errorf("case: %v", in.Binds.Val("o2"))
	}
	// BULK INSERT semantics downstream rely on ordered lists.
	for i, want := range []string{"item1", "item2", "item3"} {
		if items.Elem(i).Str() != want {
			t.Errorf("items[%d] = %v, want %s", i, items.Elem(i), want)
		}
	}
}

func TestNoFalseContainmentWhenGapTooShort(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{
		4: &event.TSeq{
			L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
			R:  prim("r2", "o2", "t2"),
			Lo: 10 * time.Second, Hi: 20 * time.Second,
		},
	}, nil)
	// Case read only 5s after the last item: outside [10, 20].
	got := h.run(obs("r1", "item1", 1), obs("r2", "case1", 6))
	if len(got) != 0 {
		t.Fatalf("distance 5s must not match [10s, 20s]: %v", got)
	}
}

func TestEngineRequiresGraph(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New without graph should fail")
	}
}

func TestAdvanceToIsIdempotentAndMonotonic(t *testing.T) {
	h := newHarness(t, map[int]event.Expr{1: primVars("r", "o", "t")}, nil)
	h.feed(obs("r1", "a", 1))
	if err := h.eng.AdvanceTo(ts(5)); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.AdvanceTo(ts(5)); err != nil {
		t.Fatalf("same-time AdvanceTo should be fine: %v", err)
	}
	if h.eng.Now() != ts(5) {
		t.Errorf("Now = %v", h.eng.Now())
	}
}
