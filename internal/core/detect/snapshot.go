package detect

import (
	"fmt"
	"io"
	"sort"

	"rcep/internal/core/graph"
)

// NodeState is an observability snapshot of one graph node's runtime
// state; useful for debugging retention and buffer growth in long runs.
type NodeState struct {
	ID           int
	Kind         graph.Kind
	Mode         graph.Mode
	LeftBuffer   int // pending initiators / AND left side
	RightBuffer  int // waiting terminators / AND right side
	History      int // retained occurrences for window queries
	OpenSequence int // elements in the current open SEQ+/TSEQ+ run
	Description  string
}

// Snapshot returns the runtime state of every graph node, ordered by node
// ID, plus the number of pending pseudo events.
func (e *Engine) Snapshot() ([]NodeState, int) {
	out := make([]NodeState, 0, len(e.g.Nodes))
	for _, n := range e.g.Nodes {
		st := e.states[n.ID]
		ns := NodeState{
			ID:          n.ID,
			Kind:        n.Kind,
			Mode:        n.Mode,
			Description: n.String(),
		}
		if st.left != nil {
			ns.LeftBuffer = st.left.len()
		}
		if st.right != nil {
			ns.RightBuffer = st.right.len()
		}
		if st.hist != nil {
			ns.History = st.hist.len()
		}
		if st.open != nil {
			ns.OpenSequence = len(st.open.elems)
		}
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, len(e.pq)
}

// DumpState writes a human-readable state report, for diagnostics.
func (e *Engine) DumpState(w io.Writer) {
	nodes, pending := e.Snapshot()
	fmt.Fprintf(w, "engine @ %s, %d pending pseudo event(s)\n", e.now, pending)
	for _, n := range nodes {
		fmt.Fprintf(w, "  %-60s left=%d right=%d hist=%d open=%d\n",
			n.Description, n.LeftBuffer, n.RightBuffer, n.History, n.OpenSequence)
	}
}
