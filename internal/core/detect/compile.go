package detect

import (
	"sort"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Plan compilation (DESIGN.md §9): the per-event hot path is lowered once
// at engine construction instead of interpreted per observation. Each
// primitive pattern becomes a primPlan with its literals pre-interned to
// Symbols, its predicates pre-resolved to (source attribute, operator,
// literal) triples, and its binding template pre-sorted — so matching an
// observation is integer compares plus one exact-size Bindings fill, with
// no Term/Pred AST walk and no ParseScalar.
//
// The interpreted matcher (matchPrim) stays alive behind
// Config.Interpreted as the oracle; the equivalence suite in
// internal/bench asserts both paths produce byte-identical detection
// streams.

// Attribute sources a compiled predicate or binding slot can draw from.
const (
	srcReader uint8 = iota
	srcObject
	srcAt
)

// Compiled predicate kinds, mirroring event.Pred.Fn.
const (
	predIdent uint8 = iota // bare variable comparison
	predType               // type(o) op 'v'
	predGroup              // group(r) op 'v'
)

// predPlan is one lowered attribute predicate. Evaluation is always a
// string compare against val: the interpreted path's
// Value.Compare(ParseScalar(val)) reduces to exactly that because the
// left-hand side is always a string attribute — equal strings compare
// equal in every ParseScalar interpretation, and mixed kinds fall back to
// string comparison (see matchPrim).
//
// memo caches the verdict per argument symbol (0 unknown, 1 pass,
// 2 fail): a predicate's outcome is a pure function of its argument
// string — group and type maps are deployment constants (paper §2.1) and
// val is a rule literal — so after the first evaluation for a given
// symbol the hot path never touches strings again. The cache grows with
// the intern table, one byte per symbol per predicate.
type predPlan struct {
	kind uint8
	src  uint8
	op   event.CmpOp
	val  string
	memo []uint8
}

// bindSlot is one slot of a pre-sorted binding template.
type bindSlot struct {
	varName string
	src     uint8
}

// primPlan is the compiled form of one primitive pattern node.
type primPlan struct {
	node *graph.Node

	// readerLit/objectLit gate the pre-interned literal compares; a
	// variable or anonymous position leaves the attribute unconstrained.
	readerLit, objectLit bool
	readerSym, objectSym event.Symbol

	preds []predPlan

	// binds is the pattern's binding template in final sorted order,
	// replicating the Set-insertion semantics of the interpreted builder
	// (duplicate variables resolve to the last Set in reader, object, at
	// order).
	binds []bindSlot

	// dead marks a pattern that can never match any observation (unknown
	// predicate function or unresolvable predicate argument) — the
	// interpreted matcher rejects such patterns per event; the plan
	// rejects them at compile time.
	dead bool

	// guard is the node's compiled WHERE runtime, shared with the
	// node state; nil for unguarded patterns.
	guard *guardState
}

// compilePrim lowers one primitive pattern node, interning its literals
// into the engine's table.
func compilePrim(n *graph.Node, intern *event.Interner) *primPlan {
	p := n.Prim
	pl := &primPlan{node: n}
	anon := func(t event.Term) bool { return t.Var == "" && t.Lit == "" }
	if !p.Reader.IsVar() && !anon(p.Reader) {
		pl.readerLit = true
		pl.readerSym = intern.Intern(p.Reader.Lit)
	}
	if !p.Object.IsVar() && !anon(p.Object) {
		pl.objectLit = true
		pl.objectSym = intern.Intern(p.Object.Lit)
	}
	for _, pred := range p.Preds {
		var kind uint8
		switch pred.Fn {
		case "group":
			kind = predGroup
		case "type":
			kind = predType
		case "":
			kind = predIdent
		default:
			pl.dead = true
			return pl
		}
		src, ok := compilePredArg(p, pred.Arg)
		if !ok {
			pl.dead = true
			return pl
		}
		pl.preds = append(pl.preds, predPlan{kind: kind, src: src, op: pred.Op, val: pred.Val})
	}
	add := func(v string, src uint8) {
		i := sort.Search(len(pl.binds), func(i int) bool { return pl.binds[i].varName >= v })
		if i < len(pl.binds) && pl.binds[i].varName == v {
			pl.binds[i].src = src
			return
		}
		pl.binds = append(pl.binds, bindSlot{})
		copy(pl.binds[i+1:], pl.binds[i:])
		pl.binds[i] = bindSlot{varName: v, src: src}
	}
	if p.Reader.IsVar() {
		add(p.Reader.Var, srcReader)
	}
	if p.Object.IsVar() {
		add(p.Object.Var, srcObject)
	}
	if p.At.IsVar() {
		add(p.At.Var, srcAt)
	}
	return pl
}

// compilePredArg resolves a predicate argument to its observation
// attribute at compile time, mirroring Engine.predArg case for case.
func compilePredArg(p *event.Prim, arg string) (uint8, bool) {
	switch {
	case p.Reader.IsVar() && p.Reader.Var == arg:
		return srcReader, true
	case p.Object.IsVar() && p.Object.Var == arg:
		return srcObject, true
	case !p.Reader.IsVar() && arg == "":
		return srcReader, true
	}
	return 0, false
}

// buildPlans compiles every primitive pattern and builds the
// symbol-indexed dispatch table: dispatch[readerSym] lists the plans an
// observation with that reader can match, in node-ID order (the same
// order the interpreted engine probes, indexed or not — graph.Prims is
// ID-ordered). Readers interned after construction fall back to
// wildPlans, the patterns with variable or anonymous reader positions.
// Dead plans — patterns the interpreted matcher would reject on every
// observation — are elided from the tables entirely: neither path ever
// matches them, so skipping them cannot shift Seq numbering.
func (e *Engine) buildPlans() {
	byLit := map[event.Symbol][]*primPlan{}
	for _, p := range e.g.Prims {
		pl := compilePrim(p, e.intern)
		if pl.dead {
			continue
		}
		pl.guard = e.states[p.ID].guard
		if pl.readerLit {
			byLit[pl.readerSym] = append(byLit[pl.readerSym], pl)
		} else {
			e.wildPlans = append(e.wildPlans, pl)
		}
	}
	e.dispatch = make([][]*primPlan, e.intern.Len()+1)
	for sym := range e.dispatch {
		e.dispatch[sym] = e.wildPlans
	}
	for sym, lits := range byLit {
		merged := append(append(make([]*primPlan, 0, len(lits)+len(e.wildPlans)), lits...), e.wildPlans...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].node.ID < merged[j].node.ID })
		e.dispatch[sym] = merged
	}
}

// ingestCompiled dispatches one observation through the compiled plans.
// It mirrors the interpreted loop in Ingest/matchAndEmit exactly —
// including Seq numbering — but compares interned symbols and fills
// pre-sorted binding templates. The observation is passed by pointer so
// the dispatch loop never copies the struct.
func (e *Engine) ingestCompiled(obs *event.Observation) {
	rsym := e.symOf(obs.Reader)
	osym := e.symOf(obs.Object)
	plans := e.wildPlans
	if int(rsym) < len(e.dispatch) {
		plans = e.dispatch[rsym]
	}
	for _, pl := range plans {
		binds, ok := e.matchPlan(pl, obs, rsym, osym)
		if !ok {
			continue
		}
		e.m.PrimMatches++
		inst := e.newInstance(obs.At, obs.At, binds, e.nextSeq())
		e.emit(pl.node, inst)
	}
}

// matchPlan matches one observation against a compiled pattern.
func (e *Engine) matchPlan(pl *primPlan, obs *event.Observation, rsym, osym event.Symbol) (event.Bindings, bool) {
	if pl.readerLit && pl.readerSym != rsym {
		return nil, false
	}
	if pl.objectLit && pl.objectSym != osym {
		return nil, false
	}
	for i := range pl.preds {
		pp := &pl.preds[i]
		var arg string
		var argSym event.Symbol
		if pp.src == srcReader {
			arg, argSym = obs.Reader, rsym
		} else {
			arg, argSym = obs.Object, osym
		}
		if int(argSym) < len(pp.memo) {
			switch pp.memo[argSym] {
			case 1:
				continue
			case 2:
				return nil, false
			}
		}
		pass := false
		switch pp.kind {
		case predGroup:
			for _, g := range e.groupsOfSym(argSym, arg) {
				if pp.op.Eval(compareStr(g, pp.val)) {
					pass = true
					break
				}
			}
		case predType:
			pass = pp.op.Eval(compareStr(e.typeOfSym(argSym, arg), pp.val))
		default:
			pass = pp.op.Eval(compareStr(arg, pp.val))
		}
		if i := int(argSym); i >= len(pp.memo) {
			pp.memo = append(pp.memo, make([]uint8, i+1-len(pp.memo))...)
		}
		if pass {
			pp.memo[argSym] = 1
		} else {
			pp.memo[argSym] = 2
			return nil, false
		}
	}
	if len(pl.binds) == 0 {
		return nil, pl.guard == nil || e.guardPass(pl.guard, event.BindsLookup(nil), nil)
	}
	binds := e.allocBinds(len(pl.binds))
	for i, s := range pl.binds {
		switch s.src {
		case srcReader:
			binds[i] = event.Binding{Var: s.varName, Val: event.StringValue(obs.Reader)}
		case srcObject:
			binds[i] = event.Binding{Var: s.varName, Val: event.StringValue(obs.Object)}
		default:
			binds[i] = event.Binding{Var: s.varName, Val: event.TimeValue(obs.At)}
		}
	}
	if pl.guard != nil && !e.guardPass(pl.guard, event.BindsLookup(binds), nil) {
		return nil, false
	}
	return binds, true
}

// groupsOfSym memoizes the group function in a flat slice indexed by
// Symbol — no hashing on the hot path. The cache grows with the intern
// table (see the sizing note in docs/OPERATIONS.md).
func (e *Engine) groupsOfSym(sym event.Symbol, s string) []string {
	i := int(sym)
	if i >= len(e.groupsBySym) {
		e.groupsBySym = append(e.groupsBySym, make([][]string, i+1-len(e.groupsBySym))...)
		e.groupsSet = append(e.groupsSet, make([]bool, i+1-len(e.groupsSet))...)
	}
	if !e.groupsSet[i] {
		e.groupsBySym[i] = e.groups(s)
		e.groupsSet[i] = true
	}
	return e.groupsBySym[i]
}

// typeOfSym memoizes the type function by Symbol. Unlike the interpreted
// path's bounded map, the flat cache grows with the intern table, which
// already retains one entry per distinct object.
func (e *Engine) typeOfSym(sym event.Symbol, s string) string {
	i := int(sym)
	if i >= len(e.typeBySym) {
		e.typeBySym = append(e.typeBySym, make([]string, i+1-len(e.typeBySym))...)
		e.typeSet = append(e.typeSet, make([]bool, i+1-len(e.typeSet))...)
	}
	if !e.typeSet[i] {
		e.typeBySym[i] = e.typeOf(s)
		e.typeSet[i] = true
	}
	return e.typeBySym[i]
}

// projectFilter is projectBinds drawing from the engine's freelist on the
// compiled path. Filters are transient: they parameterize a single
// negation/window query and never escape into emitted instances, so the
// backing arrays recycle. Pair every call with releaseFilter.
func (e *Engine) projectFilter(binds event.Bindings, vars []string) event.Bindings {
	if !e.compiled || len(vars) == 0 {
		return projectBinds(binds, vars)
	}
	var out event.Bindings
	if n := len(e.filterPool); n > 0 {
		out = e.filterPool[n-1]
		e.filterPool = e.filterPool[:n-1]
	} else {
		out = make(event.Bindings, 0, 4)
	}
	for _, v := range vars {
		if val, ok := binds.Get(v); ok {
			out = out.Set(v, val)
		}
	}
	return out
}

// releaseFilter returns a filter's backing array to the freelist. The
// freelist is a stack, so queries that recurse into further queries
// (occurs → lazyClose → emit → deliver) nest safely: inner calls pop and
// push their own entries while the outer filter stays checked out.
func (e *Engine) releaseFilter(f event.Bindings) {
	if !e.compiled || f == nil {
		return
	}
	e.filterPool = append(e.filterPool, f[:0])
}

// newPseudo returns a pseudo event, recycled from the freelist on the
// compiled path. drainPseudo returns each fired event to the pool: fire
// retains nothing of the struct itself (the payload instance is
// independently owned), and the heap has already dropped its pointer.
func (e *Engine) newPseudo() *pseudoEvent {
	if n := len(e.psPool); n > 0 {
		ps := e.psPool[n-1]
		e.psPool = e.psPool[:n-1]
		return ps
	}
	return &pseudoEvent{}
}
