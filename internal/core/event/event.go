// Package event defines the RFID event model of Wang et al. (EDBT 2006):
// primitive reader observations, event instances with begin/end times, the
// time functions t_begin, t_end, interval and dist, variable bindings, and
// the abstract syntax of complex event expressions built from the
// constructors OR, AND, NOT, SEQ, TSEQ, SEQ+, TSEQ+ and WITHIN.
package event

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Time is a point on the engine's virtual timeline, in nanoseconds since an
// arbitrary epoch. Virtual time keeps detection deterministic and lets the
// simulator replay histories far faster than real time.
type Time int64

// Sentinel times. MinTime sorts before and MaxTime after every valid
// timestamp; they are never produced by observations.
const (
	MinTime Time = math.MinInt64
	MaxTime Time = math.MaxInt64
)

// FromDuration converts an offset from the epoch into a Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// Add returns t shifted by d. The result saturates at MinTime/MaxTime so
// constraint arithmetic near the sentinels cannot wrap around.
func (t Time) Add(d time.Duration) Time {
	if t == MaxTime || t == MinTime {
		return t
	}
	s := t + Time(d)
	if d > 0 && s < t {
		return MaxTime
	}
	if d < 0 && s > t {
		return MinTime
	}
	return s
}

// Sub returns the duration t − u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the time as seconds with millisecond precision, the unit
// used throughout the paper's examples.
func (t Time) String() string {
	switch t {
	case MinTime:
		return "-inf"
	case MaxTime:
		return "+inf"
	}
	return fmt.Sprintf("%.3fs", float64(t)/float64(time.Second))
}

// AppendText appends String()'s rendering to dst without allocating.
func (t Time) AppendText(dst []byte) []byte {
	switch t {
	case MinTime:
		return append(dst, "-inf"...)
	case MaxTime:
		return append(dst, "+inf"...)
	}
	dst = strconv.AppendFloat(dst, float64(t)/float64(time.Second), 'f', 3, 64)
	return append(dst, 's')
}

// Observation is the sole primitive event in the model: reader r observed
// object o at time t (paper §2.1). Primitive events are instantaneous and
// atomic.
type Observation struct {
	Reader string // reader EPC
	Object string // object (tag) EPC
	At     Time   // observation timestamp
}

// String implements fmt.Stringer.
func (o Observation) String() string {
	return fmt.Sprintf("observation(%s, %s, %s)", o.Reader, o.Object, o.At)
}

// Instance is an occurrence of an event, primitive or complex. Primitive
// instances have Begin == End; complex instances span the occurrences of
// their constituents.
type Instance struct {
	Begin, End Time
	Binds      Bindings // variable bindings accumulated from constituents

	// Seq is a strictly increasing arrival number assigned by the engine.
	// It breaks timestamp ties deterministically and implements "oldest"
	// in the chronicle context.
	Seq uint64
}

// Interval returns t_end(e) − t_begin(e) (paper §2).
func (in *Instance) Interval() time.Duration { return in.End.Sub(in.Begin) }

// Dist returns dist(e1, e2) = t_end(e2) − t_end(e1) (paper §2). It is
// negative when e2 ends before e1.
func Dist(e1, e2 *Instance) time.Duration { return e2.End.Sub(e1.End) }

// Interval2 returns interval(e1, e2) = max(t_ends) − min(t_begins), the
// combined span of the two instances (paper §2).
func Interval2(e1, e2 *Instance) time.Duration {
	end := e1.End
	if e2.End > end {
		end = e2.End
	}
	begin := e1.Begin
	if e2.Begin < begin {
		begin = e2.Begin
	}
	return end.Sub(begin)
}

// SpanWith returns the begin and end of the union span of e1 and e2.
func SpanWith(e1, e2 *Instance) (Time, Time) {
	begin := e1.Begin
	if e2.Begin < begin {
		begin = e2.Begin
	}
	end := e1.End
	if e2.End > end {
		end = e2.End
	}
	return begin, end
}

// String implements fmt.Stringer.
func (in *Instance) String() string {
	if in.Begin == in.End {
		return fmt.Sprintf("[%s %s]", in.Begin, in.Binds)
	}
	return fmt.Sprintf("[%s..%s %s]", in.Begin, in.End, in.Binds)
}
