package event

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValue(r *rand.Rand, depth int) Value {
	switch r.Intn(7) {
	case 0:
		return Null
	case 1:
		return StringValue(string(rune('a' + r.Intn(26))))
	case 2:
		return IntValue(r.Int63() - r.Int63())
	case 3:
		return FloatValue(r.NormFloat64())
	case 4:
		return BoolValue(r.Intn(2) == 0)
	case 5:
		return TimeValue(Time(r.Int63()))
	default:
		if depth > 2 {
			return IntValue(int64(depth))
		}
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth+1)
		}
		return ListValue(elems)
	}
}

func TestValueJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 0)
		data, err := json.Marshal(v)
		if err != nil {
			t.Logf("seed %d: marshal: %v", seed, err)
			return false
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Logf("seed %d: unmarshal: %v", seed, err)
			return false
		}
		if v.Kind() == KindFloat {
			// NaN never equals itself; treat representation as enough.
			return got.Kind() == KindFloat
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Logf("seed %d: %v (%v) != %v (%v)", seed, got, got.Kind(), v, v.Kind())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBindingsJSONRoundTrip(t *testing.T) {
	b := MakeBindings(map[string]Value{
		"o":  StringValue("obj1"),
		"t":  TimeValue(ts(5)),
		"n":  IntValue(7),
		"ls": ListValue([]Value{StringValue("a"), Null}),
	})
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var got Bindings
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("round trip: %v", got)
	}
	for _, kv := range b {
		if !got.Val(kv.Var).Equal(kv.Val) {
			t.Errorf("binding %s: %v != %v", kv.Var, got.Val(kv.Var), kv.Val)
		}
	}
}

func TestValueJSONErrors(t *testing.T) {
	var v Value
	if err := v.UnmarshalJSON([]byte(`[1,2]`)); err == nil {
		t.Errorf("array accepted as value")
	}
	if err := v.UnmarshalJSON([]byte(`{"i":"x"}`)); err == nil {
		t.Errorf("mistyped field accepted")
	}
	// Unknown shape decodes to null, not an error (forward compat).
	if err := v.UnmarshalJSON([]byte(`{}`)); err != nil || !v.IsNull() {
		t.Errorf("empty object: %v %v", v, err)
	}
}
