package event

import (
	"testing"
	"time"
)

func ts(sec float64) Time { return Time(sec * float64(time.Second)) }

func TestTimeArithmetic(t *testing.T) {
	a := ts(10)
	if got := a.Add(5 * time.Second); got != ts(15) {
		t.Errorf("Add: got %v, want %v", got, ts(15))
	}
	if got := a.Sub(ts(4)); got != 6*time.Second {
		t.Errorf("Sub: got %v, want 6s", got)
	}
	if !ts(1).Before(ts(2)) || ts(2).Before(ts(1)) {
		t.Errorf("Before ordering wrong")
	}
	if !ts(2).After(ts(1)) {
		t.Errorf("After ordering wrong")
	}
}

func TestTimeSaturation(t *testing.T) {
	if got := MaxTime.Add(time.Hour); got != MaxTime {
		t.Errorf("MaxTime.Add: got %v", got)
	}
	if got := MinTime.Add(-time.Hour); got != MinTime {
		t.Errorf("MinTime.Add: got %v", got)
	}
	near := Time(int64(MaxTime) - 5)
	if got := near.Add(time.Hour); got != MaxTime {
		t.Errorf("overflow should saturate to MaxTime, got %v", got)
	}
	nearMin := Time(int64(MinTime) + 5)
	if got := nearMin.Add(-time.Hour); got != MinTime {
		t.Errorf("underflow should saturate to MinTime, got %v", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := ts(1.5).String(); got != "1.500s" {
		t.Errorf("String: got %q", got)
	}
	if MinTime.String() != "-inf" || MaxTime.String() != "+inf" {
		t.Errorf("sentinel strings wrong: %q %q", MinTime.String(), MaxTime.String())
	}
}

func TestInstanceFunctions(t *testing.T) {
	e1 := &Instance{Begin: ts(1), End: ts(3)}
	e2 := &Instance{Begin: ts(5), End: ts(9)}
	if got := e1.Interval(); got != 2*time.Second {
		t.Errorf("Interval: got %v", got)
	}
	if got := Dist(e1, e2); got != 6*time.Second {
		t.Errorf("Dist: got %v, want 6s", got)
	}
	if got := Dist(e2, e1); got != -6*time.Second {
		t.Errorf("Dist reversed: got %v, want -6s", got)
	}
	// interval(e1,e2) = max(t_end) - min(t_begin) = 9 - 1 = 8s.
	if got := Interval2(e1, e2); got != 8*time.Second {
		t.Errorf("Interval2: got %v, want 8s", got)
	}
	if got := Interval2(e2, e1); got != 8*time.Second {
		t.Errorf("Interval2 symmetric: got %v, want 8s", got)
	}
	b, e := SpanWith(e1, e2)
	if b != ts(1) || e != ts(9) {
		t.Errorf("SpanWith: got [%v, %v]", b, e)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{IntValue(1), IntValue(2), -1, true},
		{IntValue(2), IntValue(2), 0, true},
		{IntValue(3), FloatValue(2.5), 1, true},
		{FloatValue(2.5), IntValue(3), -1, true},
		{StringValue("a"), StringValue("b"), -1, true},
		{StringValue("x"), StringValue("x"), 0, true},
		{TimeValue(ts(1)), TimeValue(ts(2)), -1, true},
		{BoolValue(false), BoolValue(true), -1, true},
		{BoolValue(true), BoolValue(true), 0, true},
		{StringValue("1"), IntValue(1), 0, false},
		{Null, IntValue(1), 0, false},
		{Null, Null, 0, true},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %t), want (%d, %t)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !IntValue(3).Equal(FloatValue(3)) {
		t.Errorf("numeric cross-kind equality failed")
	}
	l1 := ListValue([]Value{IntValue(1), StringValue("a")})
	l2 := ListValue([]Value{IntValue(1), StringValue("a")})
	l3 := ListValue([]Value{IntValue(1)})
	if !l1.Equal(l2) {
		t.Errorf("equal lists not equal")
	}
	if l1.Equal(l3) {
		t.Errorf("different-length lists equal")
	}
	if l1.Equal(IntValue(1)) {
		t.Errorf("list equal to scalar")
	}
}

func TestValueAccessors(t *testing.T) {
	if IntValue(7).Float() != 7.0 {
		t.Errorf("Int->Float")
	}
	if FloatValue(7.9).Int() != 7 {
		t.Errorf("Float->Int truncation")
	}
	l := ListValue([]Value{IntValue(1), IntValue(2)})
	if l.Len() != 2 || l.Elem(1).Int() != 2 {
		t.Errorf("list accessors")
	}
	if IntValue(5).Len() != 1 || IntValue(5).Elem(0).Int() != 5 {
		t.Errorf("scalar Len/Elem")
	}
	if Null.Len() != 0 || !Null.IsNull() {
		t.Errorf("null Len/IsNull")
	}
}

func TestParseScalar(t *testing.T) {
	if v := ParseScalar("42"); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("int parse: %v", v)
	}
	if v := ParseScalar("4.5"); v.Kind() != KindFloat || v.Float() != 4.5 {
		t.Errorf("float parse: %v", v)
	}
	if v := ParseScalar("true"); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("bool parse: %v", v)
	}
	if v := ParseScalar("laptop"); v.Kind() != KindString || v.Str() != "laptop" {
		t.Errorf("string parse: %v", v)
	}
}

func TestBindingsCompatibleAndMerge(t *testing.T) {
	a := MakeBindings(map[string]Value{"r": StringValue("r1"), "o": StringValue("o1")})
	b := MakeBindings(map[string]Value{"r": StringValue("r1"), "t": TimeValue(ts(5))})
	c := MakeBindings(map[string]Value{"r": StringValue("r2")})
	if !a.Compatible(b) {
		t.Errorf("a and b should be compatible")
	}
	if a.Compatible(c) {
		t.Errorf("a and c should be incompatible")
	}
	m := a.Merge(b)
	if len(m) != 3 || m.Val("t").Time() != ts(5) || m.Val("o").Str() != "o1" {
		t.Errorf("merge wrong: %v", m)
	}
	// Merge must not mutate a.
	if _, ok := a.Get("t"); ok {
		t.Errorf("Merge mutated receiver")
	}
	var nilB Bindings
	if got := nilB.Merge(a); len(got) != 2 {
		t.Errorf("nil merge: %v", got)
	}
	if !nilB.Compatible(a) || !a.Compatible(nilB) {
		t.Errorf("nil bindings should be compatible with anything")
	}
}

func TestBindingsProject(t *testing.T) {
	a := MakeBindings(map[string]Value{"r": StringValue("r1"), "o": StringValue("o1")})
	k1, ok := a.Project([]string{"r"})
	if !ok || k1 == "" {
		t.Errorf("project with keys should be ok")
	}
	k2, _ := MakeBindings(map[string]Value{"r": StringValue("r1"), "o": StringValue("oX")}).Project([]string{"r"})
	if k1 != k2 {
		t.Errorf("same projection should produce same key")
	}
	k3, _ := MakeBindings(map[string]Value{"r": StringValue("r2")}).Project([]string{"r"})
	if k1 == k3 {
		t.Errorf("different projection should differ")
	}
	if _, ok := a.Project(nil); ok {
		t.Errorf("empty projection should report not-ok")
	}
}

func TestCollectLists(t *testing.T) {
	elems := []Bindings{
		MakeBindings(map[string]Value{"o": StringValue("o1"), "t": TimeValue(ts(1))}),
		MakeBindings(map[string]Value{"o": StringValue("o2"), "t": TimeValue(ts(2))}),
		MakeBindings(map[string]Value{"o": StringValue("o3")}),
	}
	got := CollectLists(elems)
	ov := got.Val("o")
	if ov.Kind() != KindList || ov.Len() != 3 || ov.Elem(2).Str() != "o3" {
		t.Errorf("o list wrong: %v", ov)
	}
	tv := got.Val("t")
	if tv.Len() != 3 || !tv.Elem(2).IsNull() {
		t.Errorf("t list should pad with null: %v", tv)
	}
	if CollectLists(nil) != nil {
		t.Errorf("empty collect should be nil")
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"5sec", 5 * time.Second},
		{"0.1sec", 100 * time.Millisecond},
		{"10min", 10 * time.Minute},
		{"100msec", 100 * time.Millisecond},
		{"2hour", 2 * time.Hour},
		{"30s", 30 * time.Second},
		{"1.5s", 1500 * time.Millisecond},
		{"1h30m", 90 * time.Minute},
		{"1day", 24 * time.Hour},
		{" 5 sec ", 5 * time.Second},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "sec", "5parsec", "-3sec", "abc"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) should fail", bad)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want string
	}{
		{5 * time.Second, "5sec"},
		{10 * time.Minute, "10min"},
		{100 * time.Millisecond, "100msec"},
		{1500 * time.Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	p1 := &Prim{Reader: Term{Lit: "r1"}, Object: Term{Var: "o"}, At: Term{Var: "t"}}
	p2 := &Prim{Reader: Term{Lit: "r2"}, Object: Term{Var: "o2"}, At: Term{Var: "t2"},
		Preds: []Pred{{Fn: "type", Arg: "o2", Op: CmpEq, Val: "case"}}}
	e := &Within{X: &TSeq{L: &TSeqPlus{X: p1, Lo: 100 * time.Millisecond, Hi: time.Second},
		R: p2, Lo: 10 * time.Second, Hi: 20 * time.Second}, Max: time.Minute}
	s := e.String()
	for _, frag := range []string{"WITHIN", "TSEQ+", "observation('r1', o, t)", "type(o2) = 'case'"} {
		if !contains(s, frag) {
			t.Errorf("expr string %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestWalkAndExprVars(t *testing.T) {
	p1 := &Prim{Reader: Term{Var: "r"}, Object: Term{Var: "o"}, At: Term{Var: "t1"}}
	p2 := &Prim{Reader: Term{Var: "r"}, Object: Term{Var: "o"}, At: Term{Var: "t2"}}
	e := &Within{X: &Seq{L: &Not{X: p1}, R: p2}, Max: 30 * time.Second}
	var count int
	Walk(e, func(Expr) bool { count++; return true })
	if count != 5 {
		t.Errorf("Walk visited %d nodes, want 5", count)
	}
	vars := ExprVars(e)
	want := []string{"o", "r", "t1", "t2"}
	if len(vars) != len(want) {
		t.Fatalf("ExprVars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("ExprVars = %v, want %v", vars, want)
			break
		}
	}
	// Prune: stop at the Seq node.
	count = 0
	Walk(e, func(x Expr) bool {
		count++
		_, isSeq := x.(*Seq)
		return !isSeq
	})
	if count != 2 {
		t.Errorf("pruned Walk visited %d nodes, want 2", count)
	}
}

func TestCmpOpEval(t *testing.T) {
	if !CmpEq.Eval(0) || CmpEq.Eval(1) {
		t.Errorf("CmpEq")
	}
	if !CmpNe.Eval(1) || CmpNe.Eval(0) {
		t.Errorf("CmpNe")
	}
	if !CmpLt.Eval(-1) || CmpLt.Eval(0) {
		t.Errorf("CmpLt")
	}
	if !CmpLe.Eval(0) || CmpLe.Eval(1) {
		t.Errorf("CmpLe")
	}
	if !CmpGt.Eval(1) || CmpGt.Eval(-1) {
		t.Errorf("CmpGt")
	}
	if !CmpGe.Eval(0) || CmpGe.Eval(-1) {
		t.Errorf("CmpGe")
	}
}

func TestAllExprStringers(t *testing.T) {
	p := &Prim{Reader: Term{Lit: "r1"}, Object: Term{Var: "o"}, At: Term{Var: "t"}}
	cases := map[string]Expr{
		"OR":     &Or{L: p, R: p},
		"AND":    &And{L: p, R: p},
		"NOT":    &Not{X: p},
		"SEQ(":   &Seq{L: p, R: p},
		"TSEQ(":  &TSeq{L: p, R: p, Lo: time.Second, Hi: 2 * time.Second},
		"SEQ+(":  &SeqPlus{X: p},
		"TSEQ+(": &TSeqPlus{X: p, Lo: time.Second, Hi: 2 * time.Second},
		"WITHIN": &Within{X: p, Max: time.Second},
	}
	for frag, e := range cases {
		if s := e.String(); !contains(s, frag) || !contains(s, "observation") {
			t.Errorf("%T string %q missing %q", e, s, frag)
		}
	}
	// Walk covers every constructor.
	for _, e := range cases {
		n := 0
		Walk(e, func(Expr) bool { n++; return true })
		if n < 2 {
			t.Errorf("%T walk visited %d", e, n)
		}
	}
	Walk(nil, func(Expr) bool { t.Fatal("nil walked"); return true })
}

func TestMiscStringers(t *testing.T) {
	if FromDuration(time.Second) != ts(1) {
		t.Errorf("FromDuration")
	}
	if got := (&Instance{Begin: ts(1), End: ts(1)}).String(); !contains(got, "1.000s") {
		t.Errorf("instant instance string: %q", got)
	}
	if got := (&Instance{Begin: ts(1), End: ts(2)}).String(); !contains(got, "..") {
		t.Errorf("spanning instance string: %q", got)
	}
	for k, want := range map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", KindTime: "time", KindList: "list",
	} {
		if k.String() != want {
			t.Errorf("Kind %d: %q", k, k.String())
		}
	}
	if !contains(Kind(99).String(), "kind(") {
		t.Errorf("unknown kind string")
	}
	vals := map[string]Value{
		"null": Null, "x": StringValue("x"), "3": IntValue(3),
		"2.5": FloatValue(2.5), "true": BoolValue(true),
		"1.000s": TimeValue(ts(1)),
	}
	for want, v := range vals {
		if v.String() != want {
			t.Errorf("Value string: %q want %q", v.String(), want)
		}
	}
	if got := ListValue([]Value{IntValue(1), StringValue("a")}).String(); got != "[1, a]" {
		t.Errorf("list string: %q", got)
	}
	if DurationValue(1500*time.Millisecond).Float() != 1.5 {
		t.Errorf("DurationValue")
	}
	l := ListValue([]Value{IntValue(9)})
	if got := l.List(); len(got) != 1 || got[0].Int() != 9 {
		t.Errorf("List accessor: %v", got)
	}
	for op, want := range map[CmpOp]string{
		CmpEq: "=", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
	} {
		if op.String() != want {
			t.Errorf("CmpOp %v string %q", op, op.String())
		}
	}
	pred := Pred{Fn: "type", Arg: "o", Op: CmpEq, Val: "case"}
	if got := pred.String(); got != "type(o) = 'case'" {
		t.Errorf("Pred string: %q", got)
	}
	bare := Pred{Arg: "o", Op: CmpNe, Val: "x"}
	if got := bare.String(); got != "o != 'x'" {
		t.Errorf("bare pred string: %q", got)
	}
}

func TestObservationString(t *testing.T) {
	o := Observation{Reader: "r1", Object: "o9", At: ts(2)}
	if got := o.String(); got != "observation(r1, o9, 2.000s)" {
		t.Errorf("Observation.String = %q", got)
	}
}
