package event

import (
	"testing"
	"time"
)

func lk(b Bindings) GuardLookup { return BindsLookup(b) }

func TestGuardCompareAndArith(t *testing.T) {
	b := Bindings{}.
		Set("i", IntValue(10)).
		Set("f", FloatValue(2.5)).
		Set("s", StringValue("27.5")).
		Set("w", StringValue("word")).
		Set("t1", TimeValue(Time(10*time.Second))).
		Set("t2", TimeValue(Time(25*time.Second)))
	cases := []struct {
		g    GExpr
		want bool
	}{
		{&GBin{Op: GuardGt, L: &GVar{"i"}, R: &GLit{IntValue(9)}}, true},
		{&GBin{Op: GuardGt, L: &GVar{"s"}, R: &GLit{IntValue(8)}}, true}, // payload coercion
		{&GBin{Op: GuardLt, L: &GVar{"s"}, R: &GLit{IntValue(8)}}, false},
		{&GBin{Op: GuardGe, L: &GVar{"f"}, R: &GLit{FloatValue(2.5)}}, true},
		{&GBin{Op: GuardGt, L: &GVar{"t2"}, R: &GBin{Op: GuardAdd, L: &GVar{"t1"}, R: &GLit{IntValue(5)}}}, true},
		{&GBin{Op: GuardGt, L: &GVar{"t2"}, R: &GBin{Op: GuardAdd, L: &GVar{"t1"}, R: &GLit{IntValue(20)}}}, false},
		{&GBin{Op: GuardEq, L: &GVar{"w"}, R: &GLit{StringValue("word")}}, true},
		{&GBin{Op: GuardGt, L: &GVar{"w"}, R: &GLit{IntValue(1)}}, false},   // incomparable
		{&GBin{Op: GuardGt, L: &GVar{"none"}, R: &GLit{IntValue(0)}}, false}, // unbound → Null → false
		{&GBin{Op: GuardGt, L: &GBin{Op: GuardDiv, L: &GVar{"i"}, R: &GLit{IntValue(0)}}, R: &GLit{IntValue(-1)}}, false},
		{&GNot{&GBin{Op: GuardEq, L: &GVar{"i"}, R: &GLit{IntValue(3)}}}, true},
		{&GBin{Op: GuardOr, L: &GBin{Op: GuardEq, L: &GVar{"i"}, R: &GLit{IntValue(3)}}, R: &GBin{Op: GuardEq, L: &GVar{"f"}, R: &GLit{FloatValue(2.5)}}}, true},
		{&GBin{Op: GuardAnd, L: &GBin{Op: GuardEq, L: &GVar{"i"}, R: &GLit{IntValue(10)}}, R: &GBin{Op: GuardEq, L: &GVar{"w"}, R: &GLit{StringValue("x")}}}, false},
		{&GBin{Op: GuardLt, L: &GNeg{&GVar{"i"}}, R: &GLit{IntValue(0)}}, true},
	}
	for i, c := range cases {
		if got := EvalGuard(c.g, lk(b)); got != c.want {
			t.Errorf("case %d %s: got %v, want %v", i, c.g, got, c.want)
		}
	}
}

// TestAggAccMatchesFold pins the accumulator invariant the compiled path
// relies on: incremental Add over a run equals FoldAgg over the
// collected list binding, op by op.
func TestAggAccMatchesFold(t *testing.T) {
	runs := [][]Value{
		{},
		{IntValue(3)},
		{IntValue(3), IntValue(5), IntValue(1)},
		{IntValue(3), FloatValue(2.5)},
		{StringValue("27.5"), StringValue("4"), Null},
		{StringValue("word"), IntValue(1)},            // non-numeric under SUM/AVG
		{BoolValue(true), IntValue(2)},                // incomparable under MIN/MAX
		{TimeValue(Time(5 * time.Second)), TimeValue(Time(9 * time.Second))},
	}
	for ri, run := range runs {
		var acc AggAcc
		for _, v := range run {
			acc.Add(CoerceScalar(v))
		}
		list := ListValue(run)
		for _, op := range []AggOp{AggCount, AggSum, AggAvg, AggMin, AggMax} {
			av, aerr := acc.Result(op)
			fv, ferr := FoldAgg(op, list)
			if (aerr == nil) != (ferr == nil) {
				t.Fatalf("run %d %s: acc err %v, fold err %v", ri, op, aerr, ferr)
			}
			if aerr == nil && (av.Kind() != fv.Kind() || !av.Equal(fv)) {
				t.Fatalf("run %d %s: acc %v (%v), fold %v (%v)", ri, op, av, av.Kind(), fv, fv.Kind())
			}
		}
	}
}

func TestFoldAggScalarAndEmpty(t *testing.T) {
	if v, err := FoldAgg(AggCount, Null); err != nil || v.Int() != 0 {
		t.Fatalf("COUNT(null) = %v, %v", v, err)
	}
	if v, err := FoldAgg(AggSum, Null); err != nil || v.Kind() != KindInt || v.Int() != 0 {
		t.Fatalf("SUM(null) = %v, %v", v, err)
	}
	if v, err := FoldAgg(AggAvg, Null); err != nil || !v.IsNull() {
		t.Fatalf("AVG(null) = %v, %v", v, err)
	}
	if v, err := FoldAgg(AggMax, StringValue("27.5")); err != nil || v.Float() != 27.5 {
		t.Fatalf("MAX(scalar) = %v, %v", v, err)
	}
}

func TestGuardVarsAndAggVars(t *testing.T) {
	g := &GBin{Op: GuardAnd,
		L: &GBin{Op: GuardGt, L: &GAgg{AggMax, "v"}, R: &GVar{"lim"}},
		R: &GBin{Op: GuardGe, L: &GAgg{AggCount, "v"}, R: &GLit{IntValue(3)}},
	}
	if got := GuardVars(g); len(got) != 2 || got[0] != "lim" || got[1] != "v" {
		t.Fatalf("GuardVars = %v", got)
	}
	if got := GuardAggVars(g); len(got) != 1 || got[0] != "v" {
		t.Fatalf("GuardAggVars = %v", got)
	}
}
