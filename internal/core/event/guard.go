package event

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GExpr is a guard expression: a value-level predicate attached to an
// event sub-expression with WHERE. Guards compare and combine constituent
// bindings (`WHERE t2 > t1 + 5`) and aggregate over SEQ+ runs
// (`WHERE MAX(v) > 8`). Unlike the structural Expr tree, a guard never
// introduces bindings — it only filters.
type GExpr interface {
	fmt.Stringer
	isGuard()
}

// GuardOp enumerates guard operators: boolean connectives, comparisons
// and arithmetic.
type GuardOp uint8

const (
	GuardOr GuardOp = iota
	GuardAnd
	GuardEq
	GuardNe
	GuardLt
	GuardLe
	GuardGt
	GuardGe
	GuardAdd
	GuardSub
	GuardMul
	GuardDiv
)

var guardOpNames = [...]string{"OR", "AND", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/"}

func (op GuardOp) String() string {
	if int(op) < len(guardOpNames) {
		return guardOpNames[op]
	}
	return "?"
}

// GVar references a variable bound by the guarded event (or, for SEQ+
// operands, the per-element value).
type GVar struct{ Name string }

// GLit is a literal: int, float (durations parse to seconds) or string.
type GLit struct{ V Value }

// GAgg aggregates a variable's values over a SEQ+ run (or, fed a scalar,
// over that single value).
type GAgg struct {
	Op   AggOp
	Name string
}

// GNot is boolean negation.
type GNot struct{ X GExpr }

// GNeg is arithmetic negation.
type GNeg struct{ X GExpr }

// GBin is a binary operation.
type GBin struct {
	Op   GuardOp
	L, R GExpr
}

func (*GVar) isGuard() {}
func (*GLit) isGuard() {}
func (*GAgg) isGuard() {}
func (*GNot) isGuard() {}
func (*GNeg) isGuard() {}
func (*GBin) isGuard() {}

func (g *GVar) String() string { return g.Name }

func (g *GLit) String() string {
	v := g.V
	switch v.Kind() {
	case KindInt:
		return strconv.FormatInt(v.Int(), 10)
	case KindFloat:
		// Decimal form (no exponent) so the printed literal always
		// re-lexes as a Number token.
		return strconv.FormatFloat(v.Float(), 'f', -1, 64)
	case KindBool:
		// The guard grammar has no boolean literal; print an equivalent
		// parenthesized comparison so API-built trees stay parseable.
		if v.Bool() {
			return "(0 < 1)"
		}
		return "(1 < 0)"
	default:
		return "'" + strings.ReplaceAll(v.String(), "'", "''") + "'"
	}
}

func (g *GAgg) String() string { return g.Op.String() + "(" + g.Name + ")" }
func (g *GNot) String() string { return "NOT " + g.X.String() }
func (g *GNeg) String() string { return "-" + g.X.String() }
func (g *GBin) String() string {
	return "(" + g.L.String() + " " + g.Op.String() + " " + g.R.String() + ")"
}

// GConj conjoins two guards; either side may be nil.
func GConj(a, b GExpr) GExpr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &GBin{Op: GuardAnd, L: a, R: b}
}

// GuardLookup resolves a guard variable to its bound value.
type GuardLookup func(name string) (Value, bool)

// BindsLookup adapts a binding set to a GuardLookup.
func BindsLookup(b Bindings) GuardLookup {
	return func(name string) (Value, bool) { return b.Get(name) }
}

// PairLookup resolves against primary first, then fallback — the same
// precedence Bindings.Merge gives the arriving instance when two
// constituents join.
func PairLookup(primary, fallback Bindings) GuardLookup {
	return func(name string) (Value, bool) {
		if v, ok := primary.Get(name); ok {
			return v, true
		}
		return fallback.Get(name)
	}
}

// EvalGuard is the interpreted (oracle) guard evaluator: it walks the
// tree and reports whether the guard holds. Missing variables evaluate
// to Null, and Null propagates to false — a guard over an unbound
// variable never passes.
func EvalGuard(g GExpr, lk GuardLookup) bool {
	return GuardTruthy(evalGuard(g, lk))
}

func evalGuard(g GExpr, lk GuardLookup) Value {
	switch n := g.(type) {
	case *GLit:
		return n.V
	case *GVar:
		v, _ := lk(n.Name)
		return v
	case *GAgg:
		v, _ := lk(n.Name)
		out, err := FoldAgg(n.Op, v)
		if err != nil {
			return Null
		}
		return out
	case *GNot:
		return BoolValue(!GuardTruthy(evalGuard(n.X, lk)))
	case *GNeg:
		return GuardNegate(evalGuard(n.X, lk))
	case *GBin:
		switch n.Op {
		case GuardAnd:
			if !GuardTruthy(evalGuard(n.L, lk)) {
				return BoolValue(false)
			}
			return BoolValue(GuardTruthy(evalGuard(n.R, lk)))
		case GuardOr:
			if GuardTruthy(evalGuard(n.L, lk)) {
				return BoolValue(true)
			}
			return BoolValue(GuardTruthy(evalGuard(n.R, lk)))
		case GuardEq, GuardNe, GuardLt, GuardLe, GuardGt, GuardGe:
			return BoolValue(GuardCompare(n.Op, evalGuard(n.L, lk), evalGuard(n.R, lk)))
		default:
			return GuardArith(n.Op, evalGuard(n.L, lk), evalGuard(n.R, lk))
		}
	}
	return Null
}

// GuardNum widens a value to float64 for guard arithmetic: ints, floats,
// timestamps (seconds) and numeric payload strings qualify.
func GuardNum(v Value) (float64, bool) {
	switch v.Kind() {
	case KindInt:
		return float64(v.Int()), true
	case KindFloat:
		return v.Float(), true
	case KindTime:
		return float64(int64(v.Time())) / 1e9, true
	case KindString:
		p := ParseScalar(v.Str())
		switch p.Kind() {
		case KindInt:
			return float64(p.Int()), true
		case KindFloat:
			return p.Float(), true
		}
	}
	return 0, false
}

// GuardNegate is unary minus: non-numeric operands yield Null.
func GuardNegate(v Value) Value {
	if f, ok := GuardNum(v); ok {
		if v.Kind() == KindInt {
			return IntValue(-v.Int())
		}
		return FloatValue(-f)
	}
	return Null
}

// GuardArith applies +, -, *, / with numeric widening. A non-numeric
// operand or division by zero yields Null (which no comparison passes),
// mirroring SQL's null propagation rather than erroring mid-stream.
func GuardArith(op GuardOp, l, r Value) Value {
	lf, lok := GuardNum(l)
	rf, rok := GuardNum(r)
	if !lok || !rok {
		return Null
	}
	var out float64
	switch op {
	case GuardAdd:
		out = lf + rf
	case GuardSub:
		out = lf - rf
	case GuardMul:
		out = lf * rf
	case GuardDiv:
		if rf == 0 {
			return Null
		}
		out = lf / rf
	default:
		return Null
	}
	// Integer arithmetic stays integral except for division.
	if op != GuardDiv && l.Kind() == KindInt && r.Kind() == KindInt {
		return IntValue(int64(out))
	}
	return FloatValue(out)
}

// GuardCompare compares two values for a guard: numeric comparison when
// both sides widen (so "27.5" > 8 holds for payload strings), otherwise
// the family-aware Value.Compare; incomparable or Null operands fail.
func GuardCompare(op GuardOp, l, r Value) bool {
	if l.IsNull() || r.IsNull() {
		return false
	}
	var cmp int
	if lf, lok := GuardNum(l); lok {
		if rf, rok := GuardNum(r); rok {
			switch {
			case lf < rf:
				cmp = -1
			case lf > rf:
				cmp = 1
			}
			return guardCmpOp(op, cmp)
		}
	}
	cmp, ok := l.Compare(r)
	if !ok {
		return false
	}
	return guardCmpOp(op, cmp)
}

func guardCmpOp(op GuardOp, cmp int) bool {
	switch op {
	case GuardEq:
		return cmp == 0
	case GuardNe:
		return cmp != 0
	case GuardLt:
		return cmp < 0
	case GuardLe:
		return cmp <= 0
	case GuardGt:
		return cmp > 0
	case GuardGe:
		return cmp >= 0
	}
	return false
}

// GuardTruthy decides whether a guard result passes: booleans directly,
// numbers by non-zero, strings by non-empty, lists by non-empty, Null
// never.
func GuardTruthy(v Value) bool {
	switch v.Kind() {
	case KindBool:
		return v.Bool()
	case KindInt:
		return v.Int() != 0
	case KindFloat:
		return v.Float() != 0
	case KindTime:
		return true
	case KindString:
		return v.Str() != ""
	case KindList:
		return v.Len() > 0
	}
	return false
}

// GuardVars lists every variable a guard references (plain or
// aggregated), sorted and deduplicated.
func GuardVars(g GExpr) []string {
	set := map[string]bool{}
	guardWalk(g, func(x GExpr) {
		switch n := x.(type) {
		case *GVar:
			set[n.Name] = true
		case *GAgg:
			set[n.Name] = true
		}
	})
	return sortedKeys(set)
}

// GuardAggVars lists the variables a guard aggregates over, sorted and
// deduplicated. These are the accumulator targets for SEQ+ runs.
func GuardAggVars(g GExpr) []string {
	set := map[string]bool{}
	guardWalk(g, func(x GExpr) {
		if n, ok := x.(*GAgg); ok {
			set[n.Name] = true
		}
	})
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func guardWalk(g GExpr, visit func(GExpr)) {
	if g == nil {
		return
	}
	visit(g)
	switch n := g.(type) {
	case *GNot:
		guardWalk(n.X, visit)
	case *GNeg:
		guardWalk(n.X, visit)
	case *GBin:
		guardWalk(n.L, visit)
		guardWalk(n.R, visit)
	}
}
