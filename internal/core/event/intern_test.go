package event

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	it := NewInterner()
	if it.Len() != 0 {
		t.Fatalf("fresh interner has Len %d", it.Len())
	}
	words := []string{"r1", "r2", "", "r1", "pack_item_L7", "r2"}
	syms := make([]Symbol, len(words))
	for i, w := range words {
		syms[i] = it.Intern(w)
		if syms[i] == NoSymbol {
			t.Fatalf("Intern(%q) returned NoSymbol", w)
		}
	}
	if syms[0] != syms[3] || syms[1] != syms[5] {
		t.Fatalf("equal strings got distinct symbols: %v", syms)
	}
	if syms[0] == syms[1] || syms[0] == syms[2] {
		t.Fatalf("distinct strings share a symbol: %v", syms)
	}
	if it.Len() != 4 {
		t.Fatalf("Len = %d, want 4", it.Len())
	}
	for i, w := range words {
		got, ok := it.Resolve(syms[i])
		if !ok || got != w {
			t.Fatalf("Resolve(%d) = %q, %v; want %q", syms[i], got, ok, w)
		}
	}
	if _, ok := it.Resolve(NoSymbol); ok {
		t.Fatal("Resolve(NoSymbol) succeeded")
	}
	if _, ok := it.Resolve(Symbol(999)); ok {
		t.Fatal("Resolve of unassigned symbol succeeded")
	}
	if _, ok := it.Lookup("never-seen"); ok {
		t.Fatal("Lookup of unseen string succeeded")
	}
	if sym, ok := it.Lookup("r2"); !ok || sym != syms[1] {
		t.Fatalf("Lookup(r2) = %d, %v; want %d", sym, ok, syms[1])
	}
}

func TestInternerCanonReturnsOneInstance(t *testing.T) {
	it := NewInterner()
	a := it.Canon("reader-" + fmt.Sprint(7))
	b := it.Canon("reader-" + fmt.Sprint(7))
	if a != b {
		t.Fatalf("Canon returned different strings: %q vs %q", a, b)
	}
	o := it.CanonObservation(Observation{Reader: "reader-" + fmt.Sprint(7), Object: "obj", At: 3})
	if o.Reader != a || o.Object != "obj" || o.At != 3 {
		t.Fatalf("CanonObservation mangled the observation: %+v", o)
	}
}

// TestInternerConcurrent hammers one table from many goroutines; run under
// -race it proves the concurrency contract of DESIGN.md §9.
func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	const goroutines, strings = 8, 200
	var wg sync.WaitGroup
	syms := make([][]Symbol, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			syms[g] = make([]Symbol, strings)
			for i := 0; i < strings; i++ {
				s := fmt.Sprintf("epc-%d", i) // same set from every goroutine
				syms[g][i] = it.Intern(s)
				if got, ok := it.Resolve(syms[g][i]); !ok || got != s {
					panic(fmt.Sprintf("Resolve(%d) = %q, %v", syms[g][i], got, ok))
				}
			}
		}(g)
	}
	wg.Wait()
	if it.Len() != strings {
		t.Fatalf("Len = %d, want %d", it.Len(), strings)
	}
	for g := 1; g < goroutines; g++ {
		for i := range syms[g] {
			if syms[g][i] != syms[0][i] {
				t.Fatalf("goroutines disagree on symbol for epc-%d: %d vs %d", i, syms[0][i], syms[g][i])
			}
		}
	}
}

// FuzzIntern checks the intern/resolve round trip and concurrent-ingest
// safety on arbitrary string sets: every interned string resolves to
// itself, equal strings get equal symbols, distinct strings get distinct
// dense symbols, and a second goroutine interning the same set concurrently
// never perturbs any of that.
func FuzzIntern(f *testing.F) {
	f.Add([]byte("r1\x00r2\x00pack_item_L1\x00r1"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x00a\x00a\x00b"))
	f.Add([]byte("urn:epc:id:gid:10.1000.5"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var words []string
		start := 0
		for i := 0; i <= len(data); i++ {
			if i == len(data) || data[i] == 0 {
				words = append(words, string(data[start:i]))
				start = i + 1
			}
		}
		it := NewInterner()
		done := make(chan struct{})
		go func() { // concurrent ingest of the same set
			defer close(done)
			for _, w := range words {
				it.Intern(w)
			}
		}()
		bySym := map[Symbol]string{}
		byStr := map[string]Symbol{}
		for _, w := range words {
			sym := it.Intern(w)
			if sym == NoSymbol {
				t.Fatalf("Intern(%q) = NoSymbol", w)
			}
			if prev, ok := byStr[w]; ok && prev != sym {
				t.Fatalf("Intern(%q) unstable: %d then %d", w, prev, sym)
			}
			byStr[w] = sym
			if prev, ok := bySym[sym]; ok && prev != w {
				t.Fatalf("symbol %d maps to %q and %q", sym, prev, w)
			}
			bySym[sym] = w
			if got, ok := it.Resolve(sym); !ok || got != w {
				t.Fatalf("Resolve(Intern(%q)) = %q, %v", w, got, ok)
			}
			if got := it.Canon(w); got != w {
				t.Fatalf("Canon(%q) = %q", w, got)
			}
		}
		<-done
		if it.Len() != len(byStr) {
			t.Fatalf("Len = %d, want %d distinct strings", it.Len(), len(byStr))
		}
		// Symbols are dense: exactly 1..Len assigned.
		for sym := range bySym {
			if int(sym) > it.Len() {
				t.Fatalf("symbol %d exceeds Len %d — not dense", sym, it.Len())
			}
		}
	})
}
