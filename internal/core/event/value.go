package event

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// Value kinds. KindList values arise only from aggregating sequence
// constructors (SEQ+, TSEQ+), which collect one element per constituent.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
	KindList
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed scalar or list used in event bindings, rule
// conditions and the mini-SQL engine. The zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	t    Time
	list []Value
}

// Null is the null Value.
var Null = Value{}

// StringValue returns a string Value.
func StringValue(s string) Value { return Value{kind: KindString, s: s} }

// IntValue returns an integer Value.
func IntValue(i int64) Value { return Value{kind: KindInt, i: i} }

// FloatValue returns a floating-point Value.
func FloatValue(f float64) Value { return Value{kind: KindFloat, f: f} }

// BoolValue returns a boolean Value.
func BoolValue(b bool) Value { return Value{kind: KindBool, b: b} }

// TimeValue returns a timestamp Value.
func TimeValue(t Time) Value { return Value{kind: KindTime, t: t} }

// ListValue returns a list Value holding elems. The slice is not copied.
func ListValue(elems []Value) Value { return Value{kind: KindList, list: elems} }

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int returns the integer payload, converting floats by truncation.
func (v Value) Int() int64 {
	if v.kind == KindFloat {
		return int64(v.f)
	}
	return v.i
}

// Float returns the floating-point payload, converting integers.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.b }

// Time returns the timestamp payload.
func (v Value) Time() Time { return v.t }

// List returns the list payload; it is only meaningful for KindList.
func (v Value) List() []Value { return v.list }

// Len returns the number of list elements, or 1 for scalars and 0 for null.
func (v Value) Len() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindList:
		return len(v.list)
	default:
		return 1
	}
}

// Elem returns the i'th element for lists, or the value itself for scalars.
func (v Value) Elem(i int) Value {
	if v.kind == KindList {
		return v.list[i]
	}
	return v
}

// Equal reports deep equality of two values. Int and float values compare
// numerically (IntValue(3).Equal(FloatValue(3)) is true).
func (v Value) Equal(w Value) bool {
	if v.kind == KindList || w.kind == KindList {
		if v.kind != KindList || w.kind != KindList || len(v.list) != len(w.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(w.list[i]) {
				return false
			}
		}
		return true
	}
	c, ok := v.Compare(w)
	return ok && c == 0
}

// Compare orders two scalar values. It returns -1, 0 or 1 and ok=true when
// the values are comparable (same family: numeric with numeric, string with
// string, time with time, bool with bool); otherwise ok is false.
func (v Value) Compare(w Value) (int, bool) {
	switch {
	case v.kind == KindNull && w.kind == KindNull:
		return 0, true
	case v.kind == KindNull || w.kind == KindNull:
		return 0, false
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	switch {
	case numeric(v.kind) && numeric(w.kind):
		if v.kind == KindInt && w.kind == KindInt {
			return cmpOrdered(v.i, w.i), true
		}
		return cmpOrdered(v.Float(), w.Float()), true
	case v.kind == KindString && w.kind == KindString:
		return strings.Compare(v.s, w.s), true
	case v.kind == KindTime && w.kind == KindTime:
		return cmpOrdered(v.t, w.t), true
	case v.kind == KindBool && w.kind == KindBool:
		switch {
		case v.b == w.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

func cmpOrdered[T int64 | float64 | Time](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value for display and diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.String()
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// AppendText appends String()'s rendering to dst without allocating
// (except for dst growth). The hot paths — buffer partition keys, bench
// detection-stream hashing — fold values into reused byte buffers through
// it instead of materializing strings.
func (v Value) AppendText(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, "null"...)
	case KindString:
		return append(dst, v.s...)
	case KindInt:
		return strconv.AppendInt(dst, v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.f, 'g', -1, 64)
	case KindBool:
		return strconv.AppendBool(dst, v.b)
	case KindTime:
		return v.t.AppendText(dst)
	case KindList:
		dst = append(dst, '[')
		for i, e := range v.list {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = e.AppendText(dst)
		}
		return append(dst, ']')
	}
	return append(dst, '?')
}

// Binding is one variable→value pair in a Bindings set.
type Binding struct {
	Var string
	Val Value
}

// Bindings is a small ordered set of variable bindings, kept sorted by
// variable name. Scalar bindings come from single observations; list
// bindings from aggregating sequence constructors.
//
// The sorted-slice representation replaces an earlier map: detection
// allocates one Bindings per primitive match, and at the typical two to
// four variables a slice costs a single allocation while Compatible/Merge
// run as linear merges with no hashing. The zero value is the empty set;
// build with Set (which returns the updated slice, like append) or
// MakeBindings, read with Get.
type Bindings []Binding

// Get returns the value bound to k.
func (b Bindings) Get(k string) (Value, bool) {
	for _, kv := range b {
		if kv.Var == k {
			return kv.Val, true
		}
		if kv.Var > k {
			break
		}
	}
	return Value{}, false
}

// Val returns the value bound to k, or Null when unbound.
func (b Bindings) Val(k string) Value {
	v, _ := b.Get(k)
	return v
}

// Set binds k to v, keeping the set sorted, and returns the updated slice
// (append semantics: the caller must use the return value).
func (b Bindings) Set(k string, v Value) Bindings {
	i := 0
	for i < len(b) && b[i].Var < k {
		i++
	}
	if i < len(b) && b[i].Var == k {
		b[i].Val = v
		return b
	}
	b = append(b, Binding{})
	copy(b[i+1:], b[i:])
	b[i] = Binding{Var: k, Val: v}
	return b
}

// MakeBindings builds a Bindings set from a map literal.
func MakeBindings(m map[string]Value) Bindings {
	if len(m) == 0 {
		return nil
	}
	out := make(Bindings, 0, len(m))
	for k, v := range m {
		out = out.Set(k, v)
	}
	return out
}

// Clone returns a shallow copy of b (list payloads are shared, which is
// safe because values are immutable once bound).
func (b Bindings) Clone() Bindings {
	if b == nil {
		return nil
	}
	return append(make(Bindings, 0, len(b)), b...)
}

// Compatible reports whether b and o agree on every variable they share.
// List-valued bindings are compared by deep equality.
func (b Bindings) Compatible(o Bindings) bool {
	i, j := 0, 0
	for i < len(b) && j < len(o) {
		switch {
		case b[i].Var < o[j].Var:
			i++
		case b[i].Var > o[j].Var:
			j++
		default:
			if !b[i].Val.Equal(o[j].Val) {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Merge returns the union of b and o. The caller must have checked
// Compatible first; on conflict o's value wins.
func (b Bindings) Merge(o Bindings) Bindings {
	if len(b) == 0 {
		return o.Clone()
	}
	if len(o) == 0 {
		return b.Clone()
	}
	m := make(Bindings, 0, len(b)+len(o))
	i, j := 0, 0
	for i < len(b) || j < len(o) {
		switch {
		case j >= len(o):
			m = append(m, b[i])
			i++
		case i >= len(b):
			m = append(m, o[j])
			j++
		case b[i].Var < o[j].Var:
			m = append(m, b[i])
			i++
		case b[i].Var > o[j].Var:
			m = append(m, o[j])
			j++
		default:
			m = append(m, o[j])
			i++
			j++
		}
	}
	return m
}

// Project returns b restricted to the given keys, with a canonical string
// form usable as a hash key for partitioned instance buffers. Keys missing
// from b are rendered as null. The second return is false when keys is
// empty (no partitioning applies).
func (b Bindings) Project(keys []string) (string, bool) {
	if len(keys) == 0 {
		return "", false
	}
	return string(b.AppendProject(nil, keys)), true
}

// AppendProject appends Project's key form to dst — the same bytes, but
// into a caller-reused buffer so hot-path partition lookups allocate
// nothing.
func (b Bindings) AppendProject(dst []byte, keys []string) []byte {
	for _, k := range keys {
		v, _ := b.Get(k)
		dst = v.AppendText(dst)
		dst = append(dst, '\x00')
	}
	return dst
}

// Vars returns the sorted variable names bound in b.
func (b Bindings) Vars() []string {
	vars := make([]string, len(b))
	for i, kv := range b {
		vars[i] = kv.Var
	}
	return vars
}

// String renders bindings deterministically (sorted by variable).
func (b Bindings) String() string {
	if len(b) == 0 {
		return "{}"
	}
	return string(b.AppendText(nil))
}

// AppendText appends String()'s rendering to dst without allocating.
func (b Bindings) AppendText(dst []byte) []byte {
	if len(b) == 0 {
		return append(dst, "{}"...)
	}
	dst = append(dst, '{')
	for i, kv := range b {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, kv.Var...)
		dst = append(dst, '=')
		dst = kv.Val.AppendText(dst)
	}
	return append(dst, '}')
}

// CollectLists merges a sequence of element bindings into list bindings:
// for every variable bound by any element, the result binds that variable
// to the ordered list of its values across elements (null where an element
// did not bind it). Used by SEQ+/TSEQ+ when a sequence closes.
func CollectLists(elems []Bindings) Bindings {
	if len(elems) == 0 {
		return nil
	}
	// Elements bind few variables; a sorted-insert slice beats a map both
	// in allocations and in the final sort it makes redundant.
	var keys []string
	for _, e := range elems {
		for _, kv := range e {
			i := sort.SearchStrings(keys, kv.Var)
			if i < len(keys) && keys[i] == kv.Var {
				continue
			}
			keys = append(keys, "")
			copy(keys[i+1:], keys[i:])
			keys[i] = kv.Var
		}
	}
	out := make(Bindings, 0, len(keys))
	for _, k := range keys {
		vals := make([]Value, len(elems))
		for i, e := range elems {
			vals[i], _ = e.Get(k)
		}
		out = append(out, Binding{Var: k, Val: ListValue(vals)})
	}
	return out
}

// ParseScalar interprets a literal string as the most specific scalar value:
// int, float, bool, else string. Rule and SQL literals use it.
func ParseScalar(s string) Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return IntValue(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return FloatValue(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return BoolValue(b)
	}
	return StringValue(s)
}

// DurationValue converts a duration to a float Value in seconds; useful in
// conditions comparing interval lengths.
func DurationValue(d time.Duration) Value { return FloatValue(d.Seconds()) }
