package event

import "sync"

// Batch is a read-cycle batch of observations: the unit of work the
// batched hot path (DESIGN.md §12) moves between layers. An RFID reader
// reports tags in bursts — one RO_ACCESS_REPORT per antenna read cycle —
// so the natural streaming granule is a small ordered group of
// observations sharing one timestamp window, not a single observation.
// LLRP adapters emit one Batch per read cycle, wire frames carry one
// Batch per sequence number, and the pipeline, shard router and detection
// engines hand whole batches across channel and lock boundaries: one
// channel operation (one lock acquisition, one ingest call) per batch
// instead of per event.
//
// A Batch is a plain observation slice; the semantics live in how it is
// consumed (detect.Engine.IngestBatch advances the virtual clock per
// distinct timestamp inside the batch, exactly as if the observations
// arrived one by one). Producers that emit at high rate should draw
// batches from the pool (GetBatch/PutBatch) so steady-state batching
// allocates nothing.
type Batch []Observation

// Window returns the batch's timestamp span [min, max]. ok is false for
// an empty batch.
func (b Batch) Window() (lo, hi Time, ok bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	lo, hi = b[0].At, b[0].At
	for _, o := range b[1:] {
		if o.At < lo {
			lo = o.At
		}
		if o.At > hi {
			hi = o.At
		}
	}
	return lo, hi, true
}

// Sorted reports whether observations are in non-decreasing timestamp
// order — the order every ingest path requires. Read cycles arrive
// sorted; consumers use this to skip defensive re-sorting.
func (b Batch) Sorted() bool {
	for i := 1; i < len(b); i++ {
		if b[i].At < b[i-1].At {
			return false
		}
	}
	return true
}

// Canon canonicalizes every observation's reader and object strings
// through the intern table, in place (see Interner.Canon). A nil interner
// leaves the batch unchanged.
func (b Batch) Canon(it *Interner) {
	if it == nil {
		return
	}
	for i := range b {
		b[i] = it.CanonObservation(b[i])
	}
}

// batchPool recycles batch backing arrays across producer/consumer
// goroutine boundaries (LLRP adapter → pipeline, shard router → worker).
var batchPool = sync.Pool{
	New: func() any { return make(Batch, 0, 64) },
}

// GetBatch returns an empty pooled batch. Pass it to PutBatch when the
// consumer is done with its contents; retaining observations copied OUT
// of the batch is always safe (Observation is a value type).
func GetBatch() Batch {
	return batchPool.Get().(Batch)[:0]
}

// PutBatch recycles a batch's backing array. The caller must not touch
// the slice afterwards. Oversized arrays (from a rare giant read cycle)
// are dropped so the pool converges on the steady-state cycle size.
func PutBatch(b Batch) {
	if cap(b) == 0 || cap(b) > 4096 {
		return
	}
	batchPool.Put(b[:0])
}
