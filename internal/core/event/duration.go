package event

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseDuration parses the duration syntax used in the paper's rules, such
// as "5sec", "0.1sec", "10min", "100msec" or "2hour". It also accepts Go's
// native forms ("1.5s", "200ms") as a fallback.
func ParseDuration(s string) (time.Duration, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return 0, fmt.Errorf("event: empty duration")
	}
	// Split the numeric prefix from the unit suffix.
	i := 0
	for i < len(trimmed) {
		c := trimmed[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' {
			i++
			continue
		}
		break
	}
	num, unit := trimmed[:i], strings.ToLower(strings.TrimSpace(trimmed[i:]))
	if num == "" {
		return 0, fmt.Errorf("event: duration %q has no numeric part", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("event: bad duration %q: %v", s, err)
	}
	var scale time.Duration
	switch unit {
	case "ns", "nsec":
		scale = time.Nanosecond
	case "us", "usec", "µs":
		scale = time.Microsecond
	case "ms", "msec", "millisecond", "milliseconds":
		scale = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		scale = time.Second
	case "m", "min", "mins", "minute", "minutes":
		scale = time.Minute
	case "h", "hr", "hour", "hours":
		scale = time.Hour
	case "d", "day", "days":
		scale = 24 * time.Hour
	default:
		// Fall back to Go's parser for compound forms like "1h30m".
		d, gerr := time.ParseDuration(trimmed)
		if gerr != nil {
			return 0, fmt.Errorf("event: unknown duration unit in %q", s)
		}
		return d, nil
	}
	d := time.Duration(f * float64(scale))
	if f < 0 {
		return 0, fmt.Errorf("event: negative duration %q", s)
	}
	return d, nil
}

// FormatDuration renders d in the paper's style: integral seconds become
// "Nsec", sub-second values "Nmsec", and minutes "Nmin" when exact.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dmin", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%dsec", d/time.Second)
	case d >= time.Millisecond && d < time.Second && d%time.Millisecond == 0:
		return fmt.Sprintf("%dmsec", d/time.Millisecond)
	default:
		return d.String()
	}
}
