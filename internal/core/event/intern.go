package event

import "sync"

// Symbol is a dense integer ID for an interned string (reader EPCs, object
// EPCs, location names). Symbols are assigned sequentially from 1 by an
// Interner; NoSymbol (0) means "not interned" and never names a string.
//
// Two strings interned in the same table are equal iff their symbols are
// equal, so hot-path comparisons (primitive pattern dispatch, literal
// checks) are single integer compares instead of byte-wise string
// comparisons. Density matters as much as speed: per-symbol caches (reader
// groups, object types) can be flat slices indexed by Symbol instead of
// hash maps.
type Symbol uint32

// NoSymbol is the zero Symbol: "this string is not interned" / "this
// pattern position is unconstrained". Interners never assign it.
const NoSymbol Symbol = 0

// Interner maps strings to dense Symbols. It is safe for concurrent use:
// ingest entry points (wire connections, LLRP adapters, shard workers)
// intern concurrently while detection engines resolve.
//
// Concurrency contract (DESIGN.md §9): Intern, Lookup, Resolve and Canon
// may be called from any goroutine. Symbols are assigned exactly once per
// distinct string and never change or get reused, so a symbol observed by
// one goroutine resolves to the same string forever on every goroutine.
// The table only grows; it never evicts (readers are a small fixed set per
// deployment, objects grow with the distinct tag population — see
// docs/OPERATIONS.md for sizing).
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]Symbol
	strs []string // strs[sym] = interned string; strs[0] unused
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{
		ids:  make(map[string]Symbol, 64),
		strs: make([]string, 1, 65),
	}
}

// Intern returns the symbol for s, assigning the next dense symbol on
// first sight.
func (it *Interner) Intern(s string) Symbol {
	it.mu.RLock()
	sym, ok := it.ids[s]
	it.mu.RUnlock()
	if ok {
		return sym
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if sym, ok = it.ids[s]; ok { // lost the race to another writer
		return sym
	}
	sym = Symbol(len(it.strs))
	it.ids[s] = sym
	it.strs = append(it.strs, s)
	return sym
}

// Lookup returns the symbol for s without assigning one.
func (it *Interner) Lookup(s string) (Symbol, bool) {
	it.mu.RLock()
	sym, ok := it.ids[s]
	it.mu.RUnlock()
	return sym, ok
}

// Resolve returns the string a symbol names. ok is false for NoSymbol and
// symbols this table never assigned.
func (it *Interner) Resolve(sym Symbol) (string, bool) {
	it.mu.RLock()
	defer it.mu.RUnlock()
	if sym == NoSymbol || int(sym) >= len(it.strs) {
		return "", false
	}
	return it.strs[sym], true
}

// Canon returns the canonical (first-interned) instance of s. Ingest entry
// points that decode strings from the network (wire frames, LLRP EPC hex)
// pass each attribute through Canon so long-lived engine state retains one
// string instance per distinct EPC instead of one per observation.
func (it *Interner) Canon(s string) string {
	sym := it.Intern(s)
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.strs[sym]
}

// CanonObservation canonicalizes an observation's reader and object
// strings in one call (see Canon).
func (it *Interner) CanonObservation(o Observation) Observation {
	o.Reader = it.Canon(o.Reader)
	o.Object = it.Canon(o.Object)
	return o
}

// Len returns the number of interned strings.
func (it *Interner) Len() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.strs) - 1
}
