package event

import (
	"encoding/json"
	"fmt"
)

// JSON codec for Value: a tagged union so dynamic kinds survive a round
// trip ({"s":…}, {"i":…}, {"f":…}, {"b":…}, {"t":…}, {"l":[…]}, null).
// Used by engine checkpoints and the data-store snapshot format.

type valueJSON struct {
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	B *bool    `json:"b,omitempty"`
	T *int64   `json:"t,omitempty"`
	L *[]Value `json:"l,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindString:
		s := v.s
		return json.Marshal(valueJSON{S: &s})
	case KindInt:
		i := v.i
		return json.Marshal(valueJSON{I: &i})
	case KindFloat:
		f := v.f
		return json.Marshal(valueJSON{F: &f})
	case KindBool:
		b := v.b
		return json.Marshal(valueJSON{B: &b})
	case KindTime:
		t := int64(v.t)
		return json.Marshal(valueJSON{T: &t})
	case KindList:
		l := v.list
		return json.Marshal(valueJSON{L: &l})
	}
	return nil, fmt.Errorf("event: cannot marshal value kind %v", v.kind)
}

// MarshalJSON renders bindings as a JSON object, byte-identical to the
// former map[string]Value representation (Go sorts map keys; the slice is
// already sorted), so checkpoints and snapshots keep their format.
func (b Bindings) MarshalJSON() ([]byte, error) {
	if b == nil {
		return []byte("null"), nil
	}
	buf := []byte{'{'}
	for i, kv := range b {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(kv.Var)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(kv.Val)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bindings) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*b = nil
		return nil
	}
	var m map[string]Value
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("event: bad bindings JSON: %w", err)
	}
	*b = MakeBindings(m)
	return nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*v = Null
		return nil
	}
	var vj valueJSON
	if err := json.Unmarshal(data, &vj); err != nil {
		return fmt.Errorf("event: bad value JSON: %w", err)
	}
	switch {
	case vj.S != nil:
		*v = StringValue(*vj.S)
	case vj.I != nil:
		*v = IntValue(*vj.I)
	case vj.F != nil:
		*v = FloatValue(*vj.F)
	case vj.B != nil:
		*v = BoolValue(*vj.B)
	case vj.T != nil:
		*v = TimeValue(Time(*vj.T))
	case vj.L != nil:
		*v = ListValue(*vj.L)
	default:
		*v = Null
	}
	return nil
}
