package event

import "strings"

// AggOp identifies an aggregate function over an event run or a list
// binding: COUNT, SUM, AVG, MIN, MAX. The semantics mirror sqlmini's
// SELECT-projection aggregates exactly (null skipping, int/float sum
// promotion, Compare-based min/max) so a guard and a SELECT over the
// same values always agree.
type AggOp uint8

const (
	AggCount AggOp = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggOpNames = [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}

func (op AggOp) String() string {
	if int(op) < len(aggOpNames) {
		return aggOpNames[op]
	}
	return "AGG?"
}

// AggOpNamed resolves an aggregate name case-insensitively.
func AggOpNamed(name string) (AggOp, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// AggError reports why an aggregate could not be computed. The two cases
// mirror sqlmini's aggregate errors: a non-numeric value under SUM/AVG,
// or incomparable values under MIN/MAX.
type AggError struct {
	Op           AggOp
	BadVal       string // String() of the first non-numeric value (SUM/AVG)
	Incomparable bool   // MIN/MAX over mixed value families
}

func (e *AggError) Error() string {
	if e.Incomparable {
		return e.Op.String() + " over incomparable values"
	}
	return e.Op.String() + " over non-numeric value " + e.BadVal
}

// CoerceScalar widens an RFID payload for arithmetic: string values are
// re-parsed as scalars (so a reading carried in an EPC object field, e.g.
// "27.5", aggregates numerically); every other kind passes through.
func CoerceScalar(v Value) Value {
	if v.Kind() == KindString {
		return ParseScalar(v.Str())
	}
	return v
}

// AggAcc incrementally accumulates one variable's values for all five
// aggregate ops at once. The zero value is an empty accumulator. Fields
// are exported (and JSON-tagged) so engine checkpoints can persist the
// state of an open SEQ+ run directly.
//
// Invariant: an accumulator fed the elements of a list binding in order
// yields the same Result as FoldAgg over that list.
type AggAcc struct {
	N     int64   `json:"n"`               // non-null values accumulated
	Sum   float64 `json:"sum"`             // running sum (ints widened)
	Float bool    `json:"float,omitempty"` // saw a float → SUM stays float
	Bad   string  `json:"bad,omitempty"`   // first non-numeric value (poisons SUM/AVG)
	HasBad bool   `json:"hasBad,omitempty"`
	MinV  Value   `json:"min,omitempty"`
	MaxV  Value   `json:"max,omitempty"`
	Incmp bool    `json:"incmp,omitempty"` // saw incomparable values (poisons MIN/MAX)
}

// Add folds one value. Nulls are skipped, matching SQL aggregate
// semantics. Callers that want payload coercion apply CoerceScalar first.
func (a *AggAcc) Add(v Value) {
	if v.IsNull() {
		return
	}
	a.N++
	if !a.HasBad {
		switch v.Kind() {
		case KindInt:
			a.Sum += float64(v.Int())
		case KindFloat:
			a.Float = true
			a.Sum += v.Float()
		case KindTime:
			a.Sum += float64(v.Time())
		default:
			a.HasBad, a.Bad = true, v.String()
		}
	}
	if a.Incmp {
		return
	}
	if a.N == 1 {
		a.MinV, a.MaxV = v, v
		return
	}
	// While no incomparable pair has been seen, MinV and MaxV belong to
	// the same comparison family, so one failed Compare poisons both.
	cmp, ok := v.Compare(a.MinV)
	if !ok {
		a.Incmp = true
		return
	}
	if cmp < 0 {
		a.MinV = v
	}
	if cmp, ok = v.Compare(a.MaxV); !ok {
		a.Incmp = true
		return
	} else if cmp > 0 {
		a.MaxV = v
	}
}

// Result reads one aggregate off the accumulator.
func (a *AggAcc) Result(op AggOp) (Value, error) {
	switch op {
	case AggCount:
		return IntValue(a.N), nil
	case AggSum:
		if a.HasBad {
			return Null, &AggError{Op: op, BadVal: a.Bad}
		}
		if a.Float {
			return FloatValue(a.Sum), nil
		}
		return IntValue(int64(a.Sum)), nil
	case AggAvg:
		if a.HasBad {
			return Null, &AggError{Op: op, BadVal: a.Bad}
		}
		if a.N == 0 {
			return Null, nil
		}
		return FloatValue(a.Sum / float64(a.N)), nil
	case AggMin, AggMax:
		if a.N == 0 {
			return Null, nil
		}
		if a.Incmp {
			return Null, &AggError{Op: op, Incomparable: true}
		}
		if op == AggMin {
			return a.MinV, nil
		}
		return a.MaxV, nil
	}
	return Null, &AggError{Op: op, BadVal: "?"}
}

// FoldAgg aggregates over a value's elements with payload coercion: a
// list binding (the shape CollectLists produces for SEQ+ runs) folds
// element-wise, a scalar acts as a one-element list, Null as empty.
func FoldAgg(op AggOp, v Value) (Value, error) {
	var acc AggAcc
	for i := 0; i < v.Len(); i++ {
		acc.Add(CoerceScalar(v.Elem(i)))
	}
	return acc.Result(op)
}
