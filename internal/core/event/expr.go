package event

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Expr is the abstract syntax of a complex event specification. The
// concrete constructors mirror the paper's §2.2: Prim (observation
// patterns), Or, And, Not, Seq, TSeq, SeqPlus, TSeqPlus and Within.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// CmpOp is a comparison operator in event predicates.
type CmpOp uint8

// Supported predicate comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Eval applies the operator to a comparison result as returned by
// Value.Compare.
func (op CmpOp) Eval(cmp int) bool {
	switch op {
	case CmpEq:
		return cmp == 0
	case CmpNe:
		return cmp != 0
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	case CmpGe:
		return cmp >= 0
	}
	return false
}

// Term is an argument position in an observation pattern: either a variable
// to bind or a literal constraining the attribute.
type Term struct {
	Var string // variable name when non-empty
	Lit string // literal value when Var == ""
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String implements fmt.Stringer.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Lit == "" {
		// Anonymous position (the struct cannot distinguish an empty
		// literal from '_'; both match like '_').
		return "_"
	}
	return "'" + strings.ReplaceAll(t.Lit, "'", "''") + "'"
}

// Pred is an attribute predicate on a primitive event pattern, such as
// type(o) = 'laptop' or group(r) = 'g1' (paper §2.1).
type Pred struct {
	Fn  string // "", "group" or "type"
	Arg string // the variable the function applies to
	Op  CmpOp
	Val string
}

// String implements fmt.Stringer.
func (p Pred) String() string {
	lhs := p.Arg
	if p.Fn != "" {
		lhs = p.Fn + "(" + p.Arg + ")"
	}
	return fmt.Sprintf("%s %s '%s'", lhs, p.Op, strings.ReplaceAll(p.Val, "'", "''"))
}

// Prim is a primitive event pattern: observation(reader, object, time) with
// optional group/type predicates. Variables in Reader/Object/At positions
// bind the corresponding observation attributes.
type Prim struct {
	Reader Term
	Object Term
	At     Term // always a variable or anonymous; observations carry the time
	Preds  []Pred
}

func (*Prim) isExpr() {}

// String renders the pattern in the paper's syntax.
func (p *Prim) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "observation(%s, %s, %s)", p.Reader, p.Object, p.At)
	for _, pr := range p.Preds {
		sb.WriteString(", ")
		sb.WriteString(pr.String())
	}
	return sb.String()
}

// Vars returns the variables bound by the pattern.
func (p *Prim) Vars() []string {
	var vars []string
	for _, t := range []Term{p.Reader, p.Object, p.At} {
		if t.IsVar() {
			vars = append(vars, t.Var)
		}
	}
	return vars
}

// Or is the disjunction E1 ∨ E2: occurs when either constituent occurs.
type Or struct{ L, R Expr }

func (*Or) isExpr() {}

// String implements fmt.Stringer.
func (e *Or) String() string { return "(" + e.L.String() + " OR " + e.R.String() + ")" }

// And is the conjunction E1 ∧ E2: occurs when both constituents occur,
// regardless of order.
type And struct{ L, R Expr }

func (*And) isExpr() {}

// String implements fmt.Stringer.
func (e *And) String() string { return "(" + e.L.String() + " AND " + e.R.String() + ")" }

// Not is the negation ¬E: occurs over a window iff no instance of E occurs
// in that window. Negation is non-spontaneous (pull mode).
//
// Win, when positive, scopes the negation to its own window (written
// `NOT E WITHIN w`): the absence of E is asserted over a w-wide window
// anchored at the adjacent positive constituent, independent of any
// WITHIN/TSEQ bound on the enclosing expression. Win = 0 is classic
// unscoped negation.
type Not struct {
	X   Expr
	Win time.Duration
}

func (*Not) isExpr() {}

// String implements fmt.Stringer.
func (e *Not) String() string {
	if e.Win > 0 {
		return "NOT " + e.X.String() + " WITHIN " + FormatDuration(e.Win)
	}
	return "NOT " + e.X.String()
}

// Guarded attaches a value predicate to an event sub-expression:
// X WHERE Cond. The guard filters X's occurrences by their bindings —
// inequality and arithmetic relations between constituents, and
// aggregates over SEQ+ runs — without introducing new bindings.
type Guarded struct {
	X    Expr
	Cond GExpr
}

func (*Guarded) isExpr() {}

// String implements fmt.Stringer.
func (e *Guarded) String() string { return e.X.String() + " WHERE " + e.Cond.String() }

// Seq is the sequence E1 ; E2: occurs when E2 occurs given that E1 has
// already occurred (E1 ends before E2 begins).
type Seq struct{ L, R Expr }

func (*Seq) isExpr() {}

// String implements fmt.Stringer.
func (e *Seq) String() string { return "SEQ(" + e.L.String() + " ; " + e.R.String() + ")" }

// TSeq is the distance-constrained sequence TSEQ(E1;E2, τl, τu):
// τl ≤ dist(e1, e2) ≤ τu.
type TSeq struct {
	L, R   Expr
	Lo, Hi time.Duration
}

func (*TSeq) isExpr() {}

// String implements fmt.Stringer.
func (e *TSeq) String() string {
	return fmt.Sprintf("TSEQ(%s ; %s, %s, %s)", e.L, e.R, e.Lo, e.Hi)
}

// SeqPlus is the aperiodic sequence SEQ+(E): one or more occurrences of E.
type SeqPlus struct{ X Expr }

func (*SeqPlus) isExpr() {}

// String implements fmt.Stringer.
func (e *SeqPlus) String() string { return "SEQ+(" + e.X.String() + ")" }

// TSeqPlus is the distance-constrained aperiodic sequence
// TSEQ+(E, τl, τu): one or more occurrences of E with the distance between
// adjacent occurrences bounded by [τl, τu].
type TSeqPlus struct {
	X      Expr
	Lo, Hi time.Duration
}

func (*TSeqPlus) isExpr() {}

// String implements fmt.Stringer.
func (e *TSeqPlus) String() string {
	return fmt.Sprintf("TSEQ+(%s, %s, %s)", e.X, e.Lo, e.Hi)
}

// Within is the interval-constrained event WITHIN(E, τ): an instance of E
// occurs and interval(e) ≤ τ. In the event graph Within is not a node of
// its own; it attaches an interval constraint to E's node, which is then
// propagated to all descendants (paper §4.3).
type Within struct {
	X   Expr
	Max time.Duration
}

func (*Within) isExpr() {}

// String implements fmt.Stringer.
func (e *Within) String() string { return fmt.Sprintf("WITHIN(%s, %s)", e.X, e.Max) }

// Walk visits e and every sub-expression in depth-first pre-order. The
// visitor may return false to prune the subtree.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *Prim:
	case *Or:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *And:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Not:
		Walk(x.X, visit)
	case *Guarded:
		Walk(x.X, visit)
	case *Seq:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *TSeq:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *SeqPlus:
		Walk(x.X, visit)
	case *TSeqPlus:
		Walk(x.X, visit)
	case *Within:
		Walk(x.X, visit)
	}
}

// ExprVars returns the sorted set of variables bound anywhere in e.
func ExprVars(e Expr) []string {
	set := map[string]struct{}{}
	Walk(e, func(x Expr) bool {
		if p, ok := x.(*Prim); ok {
			for _, v := range p.Vars() {
				set[v] = struct{}{}
			}
		}
		return true
	})
	vars := make([]string, 0, len(set))
	for k := range set {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	return vars
}
