package shard

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

func seq(l, r event.Expr, max time.Duration) event.Expr {
	return &event.Within{X: &event.Seq{L: l, R: r}, Max: max}
}

func TestPartitionDisjointReadersSplit(t *testing.T) {
	rules := []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), time.Second)},
		{ID: 2, Expr: seq(lit("r1", "o", "t1"), lit("r1", "o", "t2"), time.Second)},
		{ID: 3, Expr: seq(lit("r2", "o", "t1"), lit("r3", "o", "t2"), time.Second)},
	}
	p := NewPartition(rules, 8, nil) // nil groups: every reader its own group
	if p.NumShards() != 3 {
		t.Fatalf("3 disjoint rules on 8 shards → %d shards, want 3", p.NumShards())
	}
	for _, r := range rules {
		if p.ShardOf(r.ID) < 0 {
			t.Errorf("rule %d unassigned", r.ID)
		}
	}
	if s1, s2 := p.ShardOf(1), p.ShardOf(2); s1 == s2 {
		t.Errorf("disjoint rules 1,2 share shard %d", s1)
	}
}

func TestPartitionSharedReaderCoShards(t *testing.T) {
	rules := []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r1", "o", "t2"), time.Second)},
		{ID: 2, Expr: seq(lit("r1", "o", "t1"), lit("r2", "o", "t2"), time.Second)},
		{ID: 3, Expr: seq(lit("r4", "o", "t1"), lit("r5", "o", "t2"), time.Second)},
	}
	p := NewPartition(rules, 8, nil)
	if p.ShardOf(1) != p.ShardOf(2) {
		t.Errorf("rules sharing reader r1 on different shards: %d vs %d", p.ShardOf(1), p.ShardOf(2))
	}
	if p.ShardOf(3) == p.ShardOf(1) {
		t.Errorf("independent rule 3 packed with class of 1,2 despite free shards")
	}
}

func TestPartitionGroupOverlapCoShards(t *testing.T) {
	// Rule 2 is keyed on group "even"; reader r0 belongs to "even", so a
	// literal-r0 rule shares its key space and must co-shard.
	rules := []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), time.Second)},
		{ID: 2, Expr: seq(
			vars("r", "o", "t1", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "even"}),
			vars("r", "o", "t2", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "even"}),
			time.Second)},
		{ID: 3, Expr: seq(lit("r1", "o", "t1"), lit("r1", "o", "t2"), time.Second)},
	}
	p := NewPartition(rules, 8, genGroups)
	if p.ShardOf(1) != p.ShardOf(2) {
		t.Errorf("group-keyed rule 2 not co-sharded with literal rule 1: %d vs %d", p.ShardOf(2), p.ShardOf(1))
	}
	if p.ShardOf(3) == p.ShardOf(1) {
		t.Errorf("odd-reader rule 3 packed with even class despite free shards")
	}
}

func TestPartitionWildBroadcast(t *testing.T) {
	rules := []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), time.Second)},
		{ID: 2, Expr: seq(vars("r", "o", "u1"), vars("r", "o", "u2"), time.Second)},
	}
	p := NewPartition(rules, 4, genGroups)
	r := NewRouter(p, genGroups)
	wildShard := p.ShardOf(2)
	for _, reader := range append(append([]string(nil), genReaders...), "rz", "never-seen") {
		set := r.ShardsFor(reader)
		found := false
		for _, s := range set {
			if s == wildShard {
				found = true
			}
		}
		if !found {
			t.Errorf("ShardsFor(%q) = %v misses broadcast shard %d", reader, set, wildShard)
		}
	}
	if set := r.ShardsFor("never-seen"); len(set) != 1 || set[0] != wildShard {
		t.Errorf("unknown reader routes to %v, want only broadcast shard %d", set, wildShard)
	}
}

func TestPartitionRespectsMaxShards(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rules := genRules(r, 24)
	for _, max := range []int{-3, 0, 1, 2, 4, 8, 100} {
		p := NewPartition(rules, max, genGroups)
		want := max
		if want < 1 {
			want = 1
		}
		if p.NumShards() > want {
			t.Errorf("maxShards=%d → %d shards", max, p.NumShards())
		}
		// Every rule lands on exactly one shard.
		total := 0
		for _, rs := range p.ByShard {
			total += len(rs)
		}
		if total != len(rules) {
			t.Errorf("maxShards=%d: %d rule slots, want %d", max, total, len(rules))
		}
		for _, rl := range rules {
			if p.ShardOf(rl.ID) < 0 {
				t.Errorf("maxShards=%d: rule %d unassigned", max, rl.ID)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rules := genRules(r, 16)
	a := NewPartition(rules, 4, genGroups)
	b := NewPartition(rules, 4, genGroups)
	if !reflect.DeepEqual(a.ByShard, b.ByShard) {
		t.Fatalf("partition not deterministic:\n%v\nvs\n%v", a.ByShard, b.ByShard)
	}
}

// leafMatcher is the ground-truth oracle for the fan-out filter: one
// single-prim detect.Engine per leaf of a rule. matches reports whether any
// leaf of the rule can match the observation — if it can, the router must
// route the observation to the rule's shard.
type leafMatcher struct {
	engines []*detect.Engine
	hits    int
}

func newLeafMatcher(t testing.TB, expr event.Expr) *leafMatcher {
	t.Helper()
	m := &leafMatcher{}
	for i, p := range graph.Leaves(expr) {
		b := graph.NewBuilder()
		if _, err := b.AddRule(i, p); err != nil {
			t.Fatalf("leaf rule: %v", err)
		}
		eng, err := detect.New(detect.Config{
			Graph:    b.Finalize(),
			Groups:   genGroups,
			TypeOf:   genTypeOf,
			OnDetect: func(int, *event.Instance) { m.hits++ },
		})
		if err != nil {
			t.Fatalf("leaf engine: %v", err)
		}
		m.engines = append(m.engines, eng)
	}
	return m
}

// matches feeds the observation to every leaf engine (observations must
// arrive in stream order) and reports whether any leaf matched it.
func (m *leafMatcher) matches(t testing.TB, o event.Observation) bool {
	t.Helper()
	m.hits = 0
	for _, eng := range m.engines {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("leaf ingest: %v", err)
		}
	}
	return m.hits > 0
}

// checkRouterCoverage verifies the fan-out filter against the leaf-match
// oracle: every rule is assigned to a shard, and no observation that any of
// a rule's leaves can match is skipped by ShardsFor. Shared by the property
// test below and FuzzPartitionCoverage.
func checkRouterCoverage(t testing.TB, rules []Rule, stream []event.Observation, maxShards int) {
	t.Helper()
	p := NewPartition(rules, maxShards, genGroups)
	router := NewRouter(p, genGroups)
	matchers := make([]*leafMatcher, len(rules))
	shards := make([]int, len(rules))
	for i, rl := range rules {
		matchers[i] = newLeafMatcher(t, rl.Expr)
		shards[i] = p.ShardOf(rl.ID)
		if shards[i] < 0 || shards[i] >= p.NumShards() {
			t.Fatalf("rule %d assigned to shard %d of %d", rl.ID, shards[i], p.NumShards())
		}
	}
	for _, o := range stream {
		set := router.ShardsFor(o.Reader)
		routed := map[int]bool{}
		for _, s := range set {
			routed[s] = true
		}
		for i, rl := range rules {
			if matchers[i].matches(t, o) && !routed[shards[i]] {
				t.Fatalf("observation %v matches a leaf of rule %d (shard %d) but routed only to %v",
					o, rl.ID, shards[i], set)
			}
		}
	}
}

func TestPropertyRouterCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 1+r.Intn(12))
		stream := genStream(r, 30+r.Intn(50))
		checkRouterCoverage(t, rules, stream, 1+r.Intn(8))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
