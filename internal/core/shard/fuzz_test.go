package shard

import (
	"math/rand"
	"testing"
)

// FuzzPartitionCoverage fuzzes the partitioning router: for any generated
// rule set every rule must be assigned to exactly one shard, and no
// observation that one of a rule's leaves can match (per the single-prim
// detect-engine oracle) may be skipped by the fan-out filter.
func FuzzPartitionCoverage(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(6), uint8(40))
	f.Add(int64(42), uint8(1), uint8(1), uint8(10))
	f.Add(int64(-7), uint8(8), uint8(15), uint8(70))
	f.Add(int64(1234567), uint8(2), uint8(3), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, shards, nRules, nObs uint8) {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 1+int(nRules%16))
		stream := genStream(r, 1+int(nObs%80))
		checkRouterCoverage(t, rules, stream, 1+int(shards%8))
	})
}
