package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rcep/internal/core/event"
)

// checkpointFormat guards against restoring a single-engine checkpoint
// into a sharded engine (and vice versa — detect's format has no
// "format" key, shard's has no "fingerprint").
const checkpointFormat = "shard/v1"

// checkpoint is the serialized runtime state: one detect checkpoint per
// shard plus the router's clock and counters. The partition itself is not
// serialized — it is recomputed from the same rules/shard count/groups
// configuration, and the per-shard rule lists (plus each detect
// checkpoint's graph fingerprint) verify the layouts line up.
type checkpoint struct {
	Format    string            `json:"format"`
	Shards    int               `json:"shards"`
	Now       event.Time        `json:"now"`
	Idx       uint64            `json:"idx"`
	Ingested  uint64            `json:"ingested"`
	Delivered uint64            `json:"delivered"`
	Rules     [][]int           `json:"rules"`
	Engines   []json.RawMessage `json:"engines"`
	Pending   []ckPending       `json:"pending,omitempty"`
}

// ckPending is one undelivered detection: the fire-time group at the
// checkpoint instant is held back from delivery (it may still grow until
// the clock strictly passes it) and must survive the restore, because the
// shard engines have already fired it and will not produce it again.
type ckPending struct {
	Fire  event.Time     `json:"fire"`
	Rule  int            `json:"rule"`
	Begin event.Time     `json:"begin"`
	End   event.Time     `json:"end"`
	Seq   uint64         `json:"seq"`
	Binds event.Bindings `json:"binds,omitempty"`
}

// SaveCheckpoint quiesces every shard, delivers all pending detections
// (they are not serialized — a checkpoint boundary is also a delivery
// barrier) and writes the combined runtime state as JSON. The engine
// keeps running afterwards; checkpoints may be taken mid-stream.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		if err := e.barrierLocked(true); err != nil {
			return fmt.Errorf("shard: checkpoint: %w", err)
		}
	}
	ck := checkpoint{
		Format:    checkpointFormat,
		Shards:    len(e.workers),
		Now:       e.now,
		Idx:       e.idx,
		Ingested:  e.ingested,
		Delivered: e.delivered,
	}
	for s, wk := range e.workers {
		var buf bytes.Buffer
		if err := wk.eng.SaveCheckpoint(&buf); err != nil {
			return fmt.Errorf("shard: checkpoint shard %d: %w", s, err)
		}
		ck.Engines = append(ck.Engines, buf.Bytes())
		ids := make([]int, len(e.part.ByShard[s]))
		for i, r := range e.part.ByShard[s] {
			ids[i] = r.ID
		}
		ck.Rules = append(ck.Rules, ids)
	}
	for _, d := range e.pending {
		ck.Pending = append(ck.Pending, ckPending{
			Fire:  d.fire,
			Rule:  d.rule,
			Begin: d.inst.Begin,
			End:   d.inst.End,
			Seq:   d.inst.Seq,
			Binds: d.inst.Binds,
		})
	}
	return json.NewEncoder(w).Encode(ck)
}

// RestoreCheckpoint loads runtime state into a freshly built engine with
// the same rules, shard count and groups function (the partition must be
// identical; per-shard rule lists and graph fingerprints are verified).
// The engine must not have ingested anything yet.
func (e *Engine) RestoreCheckpoint(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.ingested != 0 || e.idx != 0 {
		return fmt.Errorf("shard: restore requires a fresh engine")
	}
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("shard: restore: %w", err)
	}
	if ck.Format != checkpointFormat {
		return fmt.Errorf("shard: restore: checkpoint format %q is not %q (single-engine checkpoint?)", ck.Format, checkpointFormat)
	}
	if ck.Shards != len(e.workers) {
		return fmt.Errorf("shard: restore: checkpoint has %d shards, engine has %d", ck.Shards, len(e.workers))
	}
	// A truncated file can decode cleanly with short arrays; validate
	// every per-shard list before indexing so corruption surfaces as an
	// error, never a panic.
	if len(ck.Rules) != len(e.workers) || len(ck.Engines) != len(e.workers) {
		return fmt.Errorf("shard: restore: truncated checkpoint: %d rule lists and %d engine states for %d shards",
			len(ck.Rules), len(ck.Engines), ck.Shards)
	}
	for s := range e.workers {
		want := e.part.ByShard[s]
		if len(ck.Rules[s]) != len(want) {
			return fmt.Errorf("shard: restore: shard %d holds %d rules, checkpoint %d (different partition?)", s, len(want), len(ck.Rules[s]))
		}
		for i, r := range want {
			if ck.Rules[s][i] != r.ID {
				return fmt.Errorf("shard: restore: shard %d rule %d is %d, checkpoint has %d (different partition?)", s, i, r.ID, ck.Rules[s][i])
			}
		}
	}
	// The workers have not been handed any envelopes yet, so their
	// engines are untouched; restoring here is safe and the pre-restore
	// writes become visible to the workers through the first channel
	// send.
	for s, wk := range e.workers {
		if err := wk.eng.RestoreCheckpoint(bytes.NewReader(ck.Engines[s])); err != nil {
			return fmt.Errorf("shard: restore shard %d: %w", s, err)
		}
	}
	// Re-inject the held-back fire-time group. Saved order preserves each
	// worker's arrival order, so renumbering 1..k keeps the (fire, rule,
	// seq) tie-break intact; worker counters resume past k so detections
	// produced after the restore sort after the restored ones.
	e.pending = e.pending[:0]
	for i, p := range ck.Pending {
		e.pending = append(e.pending, detRec{
			fire: p.Fire,
			rule: p.Rule,
			seq:  uint64(i + 1),
			inst: &event.Instance{Begin: p.Begin, End: p.End, Binds: p.Binds, Seq: p.Seq},
		})
	}
	for _, wk := range e.workers {
		wk.seq = uint64(len(ck.Pending))
	}
	e.now = ck.Now
	e.idx = ck.Idx
	e.ingested = ck.Ingested
	e.delivered = ck.Delivered
	return nil
}
