package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// ErrClosed is returned by ingestion calls after Close.
var ErrClosed = errors.New("shard: engine is closed")

// Config configures a sharded engine. The detection-semantics fields
// (Context, Groups, TypeOf, buffer caps, IndexPrimitives) mean exactly
// what they do in detect.Config and are applied to every shard.
type Config struct {
	// Rules is the rule set to partition. IDs are the graph rule IDs
	// reported to OnDetect and must be unique.
	Rules []Rule

	// Shards is the maximum number of detect.Engine workers; the
	// partition may use fewer when the rule set has fewer independent
	// key-space classes. Values < 1 mean 1.
	Shards int

	Context  pctx.Context
	Groups   func(reader string) []string
	TypeOf   func(object string) string
	OnDetect func(ruleID int, inst *event.Instance)

	IndexPrimitives    bool
	MaxPartitionBuffer int
	MaxHistory         int
	MaxOpenSequence    int

	// Interpreted selects the per-event AST interpreter in every shard
	// instead of the compiled plans — the oracle for equivalence runs.
	Interpreted bool

	// Interner is shared across all shard engines on the compiled path
	// so EPC/reader symbols agree engine-wide (it is safe for concurrent
	// use). Nil means the engine creates one.
	Interner *event.Interner

	// Buffer is the per-shard channel capacity in envelope batches
	// (default 8); Batch is the number of envelopes per channel send
	// (default 64). Larger batches amortize channel overhead, smaller
	// ones reduce shard idle time on skewed fan-out.
	Buffer int
	Batch  int

	// SyncEvery bounds how many ingested observations may pass between
	// delivery barriers (default 4096). At a barrier the router waits
	// for every shard to drain, merges the shards' detections into the
	// deterministic global order and invokes OnDetect for each. Smaller
	// values reduce detection latency; larger ones reduce the
	// synchronization bubble.
	SyncEvery int
}

// opKind discriminates worker envelopes.
type opKind uint8

const (
	opObs      opKind = iota // deliver an observation to the shard engine
	opObsBatch               // deliver a routed observation sub-batch (pooled)
	opAdvance                // AdvanceTo with no observation
	opCatchUp                // AdvanceBefore: barrier pre-advance to the router's clock
	opDrain                  // detect.Engine.Close: fire all pending pseudo events
	opBarrier                // ack and quiesce until the next batch
)

// envelope is one unit of work shipped to a shard worker.
type envelope struct {
	op    opKind
	obs   event.Observation
	batch event.Batch // opObsBatch payload; worker recycles it after ingest
	at    event.Time
	ack   *sync.WaitGroup
}

// detRec is one detection captured on a worker, tagged for merging. fire
// is the shard engine's virtual time at the OnDetect callback — the
// observation timestamp for observation-triggered detections and the
// scheduled execution time for pseudo-event detections — which is exactly
// the virtual time a single engine would fire the same detection at.
type detRec struct {
	fire event.Time
	rule int
	seq  uint64 // worker-local arrival counter (same-rule tie order)
	inst *event.Instance
}

// worker runs one detect.Engine on its own goroutine.
type worker struct {
	id   int
	eng  *detect.Engine
	ch   chan []envelope
	done chan struct{}

	// The fields below are owned by the worker goroutine between
	// barriers; the router reads/resets them only after a barrier ack
	// (the WaitGroup provides the happens-before edge).
	seq  uint64
	dets []detRec
	err  error
}

func (w *worker) loop() {
	defer close(w.done)
	for batch := range w.ch {
		for _, env := range batch {
			switch env.op {
			case opObs:
				if w.err == nil {
					if err := w.eng.Ingest(env.obs); err != nil {
						w.err = fmt.Errorf("shard %d: %w", w.id, err)
					}
				}
			case opObsBatch:
				// The router routed and ordered the sub-batch; the engine's
				// batch fast path consumes it in place, then the backing
				// array recycles for the router's next fan-out.
				if w.err == nil {
					if err := w.eng.IngestBatch(env.batch); err != nil {
						w.err = fmt.Errorf("shard %d: %w", w.id, err)
					}
				}
				event.PutBatch(env.batch)
			case opAdvance:
				// Close (opDrain) can move the shard clock past the
				// router's; skipping a stale advance keeps it a no-op.
				if w.err == nil && env.at > w.eng.Now() {
					if err := w.eng.AdvanceTo(env.at); err != nil {
						w.err = fmt.Errorf("shard %d: %w", w.id, err)
					}
				}
			case opCatchUp:
				// Barrier pre-advance: fire only pseudo events strictly
				// before the router's clock. An observation at exactly
				// env.at may still arrive after the barrier, so pseudo
				// events due at env.at itself must stay pending — firing
				// them here would diverge from a single engine.
				if w.err == nil && env.at > w.eng.Now() {
					if err := w.eng.AdvanceBefore(env.at); err != nil {
						w.err = fmt.Errorf("shard %d: %w", w.id, err)
					}
				}
			case opDrain:
				w.eng.Close()
			case opBarrier:
				env.ack.Done()
			}
		}
	}
}

// Engine shards a rule set across parallel detect.Engines behind the same
// ingestion interface. Unlike detect.Engine it IS safe for concurrent
// use: every public method may be called from any goroutine (calls
// serialize on an internal mutex; shard workers run in parallel
// underneath).
//
// Detections are delivered in batches at synchronization barriers
// (every SyncEvery observations, and on Sync, Close, Metrics snapshots
// and checkpoints), merged across shards into a deterministic order:
// ascending by (firing virtual time, rule ID, shard-local arrival).
// Every barrier first catches all shards up to the router's clock (firing
// pseudo events due strictly before it — events due at the clock itself
// may still be affected by an observation at that exact timestamp, so
// they stay pending, exactly as in a single engine). A fire-time group is
// delivered only once the clock has strictly passed it, so the group is
// known complete and is sorted exactly once: the merged order depends on
// neither the shard count nor where barriers fall in the stream. It is
// the single engine's delivery order up to ties at identical virtual time
// between distinct rules, which are normalized to rule-ID order; the
// multiset of detections is always identical to a single engine's.
// Detections at the current instant are held until time advances; Sync
// and Close flush them unconditionally. OnDetect runs on the goroutine
// that triggered the barrier, with the engine lock held — it must not
// call back into the engine.
type Engine struct {
	part     *Partition
	onDetect func(int, *event.Instance)

	mu        sync.Mutex
	router    *Router
	workers   []*worker
	pend      [][]envelope
	batch     int
	syncEvery int
	sinceSync int

	// obsPend accumulates each shard's routed observations into a pooled
	// sub-batch, sealed into one opObsBatch envelope when full or when any
	// other op must be ordered behind it — one channel payload per batch
	// instead of one envelope per observation. sortScratch is the reused
	// IngestBatch sort buffer.
	obsPend     []event.Batch
	sortScratch []event.Observation

	intern *event.Interner

	closed    bool
	now       event.Time
	idx       uint64
	ingested  uint64
	delivered uint64
	err       error

	// pending holds detections collected at barriers but not yet
	// delivered: the fire-time group at the current instant, which may
	// still grow until the clock strictly passes it.
	pending []detRec
}

// New partitions the rules, builds one detect.Engine per shard and starts
// the shard workers. The returned engine must be Closed to stop them.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Rules) == 0 {
		return nil, errors.New("shard: Config.Rules is empty")
	}
	seen := map[int]bool{}
	for _, r := range cfg.Rules {
		if seen[r.ID] {
			return nil, fmt.Errorf("shard: duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	part := NewPartition(cfg.Rules, cfg.Shards, cfg.Groups)
	e := &Engine{
		part:      part,
		onDetect:  cfg.OnDetect,
		router:    NewRouter(part, cfg.Groups),
		batch:     cfg.Batch,
		syncEvery: cfg.SyncEvery,
		now:       event.MinTime,
	}
	if e.onDetect == nil {
		e.onDetect = func(int, *event.Instance) {}
	}
	if e.batch <= 0 {
		e.batch = 64
	}
	if e.syncEvery <= 0 {
		e.syncEvery = 4096
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 8
	}
	intern := cfg.Interner
	if intern == nil && !cfg.Interpreted {
		intern = event.NewInterner()
	}
	e.intern = intern
	e.workers = make([]*worker, part.NumShards())
	e.pend = make([][]envelope, part.NumShards())
	e.obsPend = make([]event.Batch, part.NumShards())
	for s := 0; s < part.NumShards(); s++ {
		b := graph.NewBuilder()
		for _, r := range part.ByShard[s] {
			if _, err := b.AddRule(r.ID, r.Expr); err != nil {
				return nil, fmt.Errorf("shard: %w", err)
			}
		}
		w := &worker{id: s, ch: make(chan []envelope, buffer), done: make(chan struct{})}
		eng, err := detect.New(detect.Config{
			Graph:   b.Finalize(),
			Context: cfg.Context,
			Groups:  cfg.Groups,
			TypeOf:  cfg.TypeOf,
			OnDetect: func(rid int, inst *event.Instance) {
				w.seq++
				w.dets = append(w.dets, detRec{
					fire: w.eng.Now(), rule: rid, seq: w.seq, inst: inst,
				})
			},
			IndexPrimitives:    cfg.IndexPrimitives,
			MaxPartitionBuffer: cfg.MaxPartitionBuffer,
			MaxHistory:         cfg.MaxHistory,
			MaxOpenSequence:    cfg.MaxOpenSequence,
			Interpreted:        cfg.Interpreted,
			Interner:           intern,
		})
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		w.eng = eng
		e.workers[s] = w
		e.pend[s] = make([]envelope, 0, e.batch)
	}
	for _, w := range e.workers {
		go w.loop()
	}
	return e, nil
}

// Partition exposes the rule-to-shard assignment (for tests, metrics and
// diagnostics).
func (e *Engine) Partition() *Partition { return e.part }

// Shards returns the number of parallel detection engines.
func (e *Engine) Shards() int { return len(e.workers) }

// Interner returns the intern table shared by every shard worker, or nil
// on the interpreted path. Ingest adapters use it to canonicalize reader
// and EPC strings at the edge (see event.Interner.Canon).
func (e *Engine) Interner() *event.Interner { return e.intern }

// Now returns the router's current virtual time.
func (e *Engine) Now() event.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Err returns the first shard failure, if any. The router pre-validates
// timestamp ordering, so shard failures indicate a bug rather than bad
// input.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// pushObs appends an observation to shard s's pending sub-batch, sealing
// it into one envelope once it reaches the batch size.
func (e *Engine) pushObs(s int, o event.Observation) {
	b := e.obsPend[s]
	if b == nil {
		b = event.GetBatch()
	}
	b = append(b, o)
	if len(b) >= e.batch {
		e.obsPend[s] = nil
		e.push(s, envelope{op: opObsBatch, batch: b})
		return
	}
	e.obsPend[s] = b
}

// push queues an envelope for shard s, flushing a full batch. Any
// non-observation op first seals the shard's pending observation
// sub-batch so per-shard envelope order equals arrival order.
func (e *Engine) push(s int, env envelope) {
	if env.op != opObsBatch {
		if b := e.obsPend[s]; len(b) > 0 {
			e.obsPend[s] = nil
			e.pend[s] = append(e.pend[s], envelope{op: opObsBatch, batch: b})
		}
	}
	e.pend[s] = append(e.pend[s], env)
	if len(e.pend[s]) >= e.batch {
		e.flush(s)
	}
}

// flush ships shard s's pending envelopes. The pending slice is handed
// off, not reused: the worker owns it after the send.
func (e *Engine) flush(s int) {
	if len(e.pend[s]) == 0 {
		return
	}
	batch := e.pend[s]
	e.pend[s] = make([]envelope, 0, e.batch)
	e.workers[s].ch <- batch
}

// Ingest feeds one observation, fanning it out to the shards whose leaf
// key spaces can match it. Observations must arrive in non-decreasing
// timestamp order, exactly as for detect.Engine.
func (e *Engine) Ingest(o event.Observation) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingestLocked(o)
}

// IngestBatch feeds a whole batch in timestamp order, taking the router
// lock once. An already-sorted batch (the normal case — read cycles
// arrive ordered) is routed in place with no copy; an unsorted one is
// stably sorted into an engine-owned scratch buffer. Like
// detect.Engine.IngestBatch the call is atomic with respect to ordering
// failures: when the earliest observation precedes the engine's current
// time, nothing is applied.
func (e *Engine) IngestBatch(batch []event.Observation) error {
	if len(batch) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.err != nil {
		return e.err
	}
	sorted := batch
	if !event.Batch(batch).Sorted() {
		e.sortScratch = append(e.sortScratch[:0], batch...)
		sorted = e.sortScratch
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	}
	if e.now != event.MinTime && sorted[0].At < e.now {
		return fmt.Errorf("%w: batch starts at %s, engine at %s", detect.ErrOutOfOrder, sorted[0].At, e.now)
	}
	for _, o := range sorted {
		if err := e.ingestLocked(o); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) ingestLocked(o event.Observation) error {
	if e.closed {
		return ErrClosed
	}
	if e.err != nil {
		return e.err
	}
	if e.now != event.MinTime && o.At < e.now {
		return fmt.Errorf("%w: got %s, engine at %s", detect.ErrOutOfOrder, o.At, e.now)
	}
	e.now = o.At
	e.idx++
	e.ingested++
	for _, s := range e.router.ShardsFor(o.Reader) {
		e.pushObs(s, o)
	}
	e.sinceSync++
	if e.sinceSync >= e.syncEvery {
		return e.barrierLocked(true)
	}
	return nil
}

// AdvanceTo moves virtual time forward on every shard with no intervening
// observations, so negation windows and sequence closures can expire.
func (e *Engine) AdvanceTo(t event.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.err != nil {
		return e.err
	}
	if t < e.now {
		return fmt.Errorf("%w: AdvanceTo(%s), engine at %s", detect.ErrOutOfOrder, t, e.now)
	}
	e.now = t
	e.idx++
	env := envelope{op: opAdvance, at: t}
	for s := range e.workers {
		e.push(s, env)
	}
	e.sinceSync++
	if e.sinceSync >= e.syncEvery {
		return e.barrierLocked(true)
	}
	return nil
}

// Sync forces a delivery barrier: all shards drain their queues and every
// pending detection is delivered through OnDetect in merged order. Call it
// before reading state the detections feed (an audit log, a data store).
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return e.err
	}
	err := e.barrierLocked(false)
	e.deliverPending(true)
	return err
}

// Close completes every pending detection (each shard fires its remaining
// pseudo events), delivers the final merged batch and stops the shard
// workers. The engine rejects ingestion afterwards; Close is idempotent
// and returns the first shard failure, if any.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.idx++
	env := envelope{op: opDrain}
	for s := range e.workers {
		e.push(s, env)
	}
	e.barrierLocked(false)
	e.deliverPending(true)
	for s := range e.workers {
		close(e.workers[s].ch)
	}
	for _, w := range e.workers {
		<-w.done
	}
	e.closed = true
}

// barrierLocked flushes all pending envelopes, waits until every shard has
// drained its queue, surfaces worker errors, collects the accumulated
// detections into e.pending and — when deliver is set — delivers every
// completed fire-time group. Callers hold e.mu, so after the barrier the
// workers are quiescent (blocked on empty channels) and their state is
// safe to read.
func (e *Engine) barrierLocked(deliver bool) error {
	// Catch every shard up to the router's clock first: a shard that saw
	// none of the recent observations still owes pseudo-event firings due
	// strictly before now, and with those in hand every fire-time group
	// before e.now is complete — the merged (fire, rule, seq) order cannot
	// change with the shard count. The catch-up is strict (AdvanceBefore,
	// not AdvanceTo): an observation at exactly e.now may still arrive
	// after this barrier, so pseudo events due at e.now itself must not
	// fire early.
	if e.now != event.MinTime {
		adv := envelope{op: opCatchUp, at: e.now}
		for s := range e.workers {
			e.push(s, adv)
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(e.workers))
	env := envelope{op: opBarrier, ack: &wg}
	for s := range e.workers {
		e.push(s, env)
		e.flush(s)
	}
	wg.Wait()
	e.sinceSync = 0
	for _, w := range e.workers {
		if w.err != nil && e.err == nil {
			e.err = w.err
		}
		e.pending = append(e.pending, w.dets...)
		w.dets = w.dets[:0]
	}
	if deliver {
		e.deliverPending(false)
	}
	return e.err
}

// deliverPending sorts the undelivered detections by (fire, rule, seq) and
// invokes OnDetect for every completed fire-time group — those strictly
// before the router's clock. The group at the current instant stays
// pending unless all is set: a pseudo event due at e.now has not fired yet
// and an observation at exactly e.now may still arrive, so delivering it
// now would split the group across batches and make tie order depend on
// where the barrier fell. Sync and Close pass all=true to flush
// unconditionally.
func (e *Engine) deliverPending(all bool) {
	sort.Slice(e.pending, func(i, j int) bool {
		a, b := e.pending[i], e.pending[j]
		if a.fire != b.fire {
			return a.fire < b.fire
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		return a.seq < b.seq
	})
	n := len(e.pending)
	if !all {
		n = sort.Search(len(e.pending), func(i int) bool { return e.pending[i].fire >= e.now })
	}
	for _, d := range e.pending[:n] {
		e.delivered++
		e.onDetect(d.rule, d.inst)
	}
	e.pending = append(e.pending[:0], e.pending[n:]...)
}

// Metrics returns the aggregate activity counters: Observations is the
// number of observations accepted by the router (each counted once, no
// matter how many shards it fanned out to), Detections the number of
// detections delivered through OnDetect, and the remaining fields are
// summed across shards. The call quiesces every shard first, so the
// counters are a consistent snapshot; completed fire-time groups are
// delivered as a side effect (detections at the current instant stay
// pending until time advances, so Detections can trail Emitted).
func (e *Engine) Metrics() detect.Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.barrierLocked(true)
	}
	var m detect.Metrics
	for _, w := range e.workers {
		sm := w.eng.Metrics()
		m.PrimMatches += sm.PrimMatches
		m.Emitted += sm.Emitted
		m.PseudoScheduled += sm.PseudoScheduled
		m.PseudoFired += sm.PseudoFired
		m.Dropped += sm.Dropped
	}
	m.Observations = e.ingested
	m.Detections = e.delivered
	return m
}

// ShardMetrics returns every shard's own counters (index = shard ID);
// Observations here counts the observations routed to that shard.
func (e *Engine) ShardMetrics() []detect.Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.barrierLocked(true)
	}
	out := make([]detect.Metrics, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.eng.Metrics()
	}
	return out
}
