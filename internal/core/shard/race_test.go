package shard

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
)

// TestConcurrentIngestMetricsClose hammers the engine from many goroutines
// at once — batch ingestion from two producers, metrics snapshots,
// mid-stream checkpoints and a concurrent Close — and relies on -race to
// flag unsynchronized access. Ordering errors between racing producers and
// ErrClosed after the concurrent Close are expected and tolerated; any
// other error fails the test.
func TestConcurrentIngestMetricsClose(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	rules := genRules(r, 12)
	var delivered atomic.Uint64
	eng, err := New(Config{
		Rules:  rules,
		Shards: 4,
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(int, *event.Instance) {
			delivered.Add(1)
		},
		Batch:     4,
		SyncEvery: 16,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}

	tolerable := func(err error) bool {
		return err == nil || errors.Is(err, detect.ErrOutOfOrder) || errors.Is(err, ErrClosed)
	}

	var clock atomic.Int64 // shared virtual clock, milliseconds
	var wg sync.WaitGroup

	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pr := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; i < 150; i++ {
				base := clock.Add(int64(pr.Intn(200)))
				batch := make([]event.Observation, 0, 8)
				for j := 0; j < 1+pr.Intn(8); j++ {
					batch = append(batch, event.Observation{
						Reader: genReaders[pr.Intn(len(genReaders))],
						Object: string(rune('a' + pr.Intn(6))),
						At:     event.Time(base+int64(j)) * event.Time(time.Millisecond),
					})
				}
				if err := eng.IngestBatch(batch); !tolerable(err) {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}

	wg.Add(1)
	go func() { // metrics reader
		defer wg.Done()
		for i := 0; i < 300; i++ {
			m := eng.Metrics()
			if m.Detections > delivered.Load() {
				t.Errorf("Metrics.Detections %d ahead of OnDetect count", m.Detections)
				return
			}
			eng.ShardMetrics()
			_ = eng.Now()
			_ = eng.Err()
		}
	}()

	wg.Add(1)
	go func() { // mid-stream checkpoints
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := eng.SaveCheckpoint(io.Discard); err != nil && !errors.Is(err, ErrClosed) {
				// Close may win the race mid-save; anything else is real.
				t.Errorf("SaveCheckpoint: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // concurrent close partway through
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		eng.Close()
	}()

	wg.Wait()
	eng.Close() // idempotent
	if err := eng.Err(); err != nil {
		t.Fatalf("shard worker error: %v", err)
	}
}

// TestConcurrentIngestSingleProducer checks the clean concurrent shape —
// one ordered producer, many readers — delivers every detection exactly
// once and leaves consistent counters.
func TestConcurrentIngestSingleProducer(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rules := genRules(r, 10)
	stream := genStream(r, 400)

	var delivered atomic.Uint64
	eng, err := New(Config{
		Rules:  rules,
		Shards: 4,
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(int, *event.Instance) {
			delivered.Add(1)
		},
		Batch:     4,
		SyncEvery: 32,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
					eng.Metrics()
					eng.ShardMetrics()
				}
			}
		}()
	}
	for i := 0; i < len(stream); i += 16 {
		end := i + 16
		if end > len(stream) {
			end = len(stream)
		}
		if err := eng.IngestBatch(stream[i:end]); err != nil {
			t.Fatalf("IngestBatch: %v", err)
		}
	}
	eng.Close()
	close(done)
	readers.Wait()
	if err := eng.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	m := eng.Metrics()
	if m.Observations != uint64(len(stream)) {
		t.Errorf("Observations = %d, want %d", m.Observations, len(stream))
	}
	if m.Detections != delivered.Load() {
		t.Errorf("Detections = %d, OnDetect saw %d", m.Detections, delivered.Load())
	}
}
