package shard

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// The batch-vs-single differential oracle (DESIGN.md §12): feeding the
// same timestamp-ordered stream per observation and in irregular
// IngestBatch chunks must be indistinguishable — identical detection
// sequences — at every width: 0 (the bare detect engine, no shard
// machinery), and sharded at 1, 2, 4 and 8. Unlike the shuffled-chunk
// oracle in oracle_test.go, the chunks here preserve stream order, so
// the per-observation run is an exact sequence oracle, not just a
// multiset one.

// chunkStream splits stream into irregular 1–9 observation chunks,
// preserving order.
func chunkStream(r *rand.Rand, stream []event.Observation) [][]event.Observation {
	var chunks [][]event.Observation
	for rest := stream; len(rest) > 0; {
		n := 1 + r.Intn(9)
		if n > len(rest) {
			n = len(rest)
		}
		chunks = append(chunks, rest[:n])
		rest = rest[n:]
	}
	return chunks
}

// runDetect replays the stream through one bare detect.Engine, per
// observation or in the given chunks.
func runDetect(t *testing.T, rules []Rule, stream []event.Observation, chunks [][]event.Observation) []string {
	t.Helper()
	b := graph.NewBuilder()
	for _, r := range rules {
		if _, err := b.AddRule(r.ID, r.Expr); err != nil {
			t.Fatalf("AddRule(%d): %v", r.ID, err)
		}
	}
	var got []string
	eng, err := detect.New(detect.Config{
		Graph:  b.Finalize(),
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			got = append(got, sig(rid, inst))
		},
	})
	if err != nil {
		t.Fatalf("detect.New: %v", err)
	}
	if chunks == nil {
		for _, o := range stream {
			if err := eng.Ingest(o); err != nil {
				t.Fatalf("Ingest(%v): %v", o, err)
			}
		}
	} else {
		for _, c := range chunks {
			if err := eng.IngestBatch(c); err != nil {
				t.Fatalf("IngestBatch: %v", err)
			}
		}
	}
	eng.Close()
	return got
}

// runShardChunked replays ordered chunks through a sharded engine.
func runShardChunked(t *testing.T, rules []Rule, chunks [][]event.Observation, shards int) []string {
	t.Helper()
	var got []string
	eng := newCollector(t, rules, shards, &got)
	for _, c := range chunks {
		if err := eng.IngestBatch(c); err != nil {
			t.Fatalf("IngestBatch: %v", err)
		}
	}
	eng.Close()
	if err := eng.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	return got
}

func TestBatchVsSingleAllWidths(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 60+r.Intn(60))
		chunks := chunkStream(r, stream)

		// Width 0: bare engine, per-obs vs chunked.
		single := runDetect(t, rules, stream, nil)
		batched := runDetect(t, rules, stream, chunks)
		diffStrings(t, "width 0 batched vs single", single, batched)

		// Sharded widths: the per-obs shard run is the sequence oracle
		// for the chunked one at the same width.
		for _, n := range []int{1, 2, 4, 8} {
			perObs := runShard(t, rules, stream, n, false)
			chunked := runShardChunked(t, rules, chunks, n)
			diffStrings(t, "batched vs single", perObs, chunked)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointMidBatchRestore tears one read-cycle batch across a
// checkpoint: the batch's head is ingested, the engine checkpointed and
// restored into a fresh one, and the batch's tail plus the rest of the
// stream continue through IngestBatch there. The concatenated detection
// sequence must equal an uninterrupted run's — a batch is a framing
// unit, not a transaction, so tearing one must be invisible.
func TestCheckpointMidBatchRestore(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 60+r.Intn(60))
		chunks := chunkStream(r, stream)

		// Cut inside a middle chunk.
		ci := len(chunks) / 2
		mid := chunks[ci]
		k := 1 + r.Intn(len(mid))
		if k == len(mid) {
			k = len(mid) / 2 // keep at least the torn tail when the chunk allows it
		}

		want := runShardChunked(t, rules, chunks, 4)

		var got []string
		first := newCollector(t, rules, 4, &got)
		for _, c := range chunks[:ci] {
			if err := first.IngestBatch(c); err != nil {
				t.Fatalf("IngestBatch: %v", err)
			}
		}
		if k > 0 {
			if err := first.IngestBatch(mid[:k]); err != nil {
				t.Fatalf("IngestBatch(head): %v", err)
			}
		}
		var buf bytes.Buffer
		if err := first.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
		atCheckpoint := len(got)
		first.Close()
		got = got[:atCheckpoint] // drop the abandoned run's close-time firings

		second := newCollector(t, rules, 4, &got)
		if err := second.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("RestoreCheckpoint: %v", err)
		}
		if k < len(mid) {
			if err := second.IngestBatch(mid[k:]); err != nil {
				t.Fatalf("IngestBatch(tail): %v", err)
			}
		}
		for _, c := range chunks[ci+1:] {
			if err := second.IngestBatch(c); err != nil {
				t.Fatalf("IngestBatch: %v", err)
			}
		}
		second.Close()
		if err := second.Err(); err != nil {
			t.Fatalf("Err: %v", err)
		}
		diffStrings(t, "mid-batch checkpoint sequence", want, got)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
