package shard

import (
	"fmt"
	"math/rand"
	"time"

	"rcep/internal/core/event"
)

// Shared randomized-workload generator for the oracle, fuzz and race
// suites: rule sets drawn from the paper's rule shapes (literal readers,
// group-keyed variable readers, wild variable readers, negation, aperiodic
// sequences) over a small reader pool, plus timestamp-sorted streams.

var genReaders = []string{"r0", "r1", "r2", "r3", "r4", "r5"}

// genGroups maps every reader to itself plus an even/odd group, so group
// key spaces overlap several readers.
func genGroups(r string) []string {
	var idx int
	if _, err := fmt.Sscanf(r, "r%d", &idx); err != nil {
		return []string{r}
	}
	if idx%2 == 0 {
		return []string{r, "even"}
	}
	return []string{r, "odd"}
}

// genTypeOf gives objects "a" and "b" the laptop type.
func genTypeOf(o string) string {
	if o == "a" || o == "b" {
		return "laptop"
	}
	return ""
}

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func lit(reader, objVar, timeVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: objVar},
		At:     event.Term{Var: timeVar},
		Preds:  preds,
	}
}

func vars(rVar, oVar, tVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Var: rVar},
		Object: event.Term{Var: oVar},
		At:     event.Term{Var: tVar},
		Preds:  preds,
	}
}

// genRule draws one rule expression; every template is a valid (push or
// mixed mode) event the graph builder accepts.
func genRule(r *rand.Rand) event.Expr {
	pick := func() string { return genReaders[r.Intn(len(genReaders))] }
	grp := "even"
	if r.Intn(2) == 1 {
		grp = "odd"
	}
	switch r.Intn(7) {
	case 0: // distance-bounded sequence over two literal readers
		return &event.TSeq{
			L: lit(pick(), "o1", "t1"), R: lit(pick(), "o2", "t2"),
			Lo: 200 * time.Millisecond, Hi: 3 * time.Second,
		}
	case 1: // object-joined sequence over literal readers
		return &event.Within{
			X:   &event.Seq{L: lit(pick(), "o", "t1"), R: lit(pick(), "o", "t2")},
			Max: 5 * time.Second,
		}
	case 2: // infield: first sighting within the window
		rd := pick()
		return &event.Within{
			X:   &event.Seq{L: &event.Not{X: lit(rd, "o", "t1")}, R: lit(rd, "o", "t2")},
			Max: 4 * time.Second,
		}
	case 3: // negated conjunction with a type predicate
		return &event.Within{
			X: &event.And{
				L: lit(pick(), "o1", "t1", event.Pred{Fn: "type", Arg: "o1", Op: event.CmpEq, Val: "laptop"}),
				R: &event.Not{X: lit(pick(), "o2", "t2")},
			},
			Max: 2 * time.Second,
		}
	case 4: // aperiodic sequence on one literal reader
		return &event.TSeqPlus{X: lit(pick(), "o", "t"), Lo: 0, Hi: time.Second}
	case 5: // group-keyed variable reader
		return &event.Within{
			X: &event.Seq{
				L: vars("r", "o", "t1", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: grp}),
				R: vars("r", "o", "t2", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: grp}),
			},
			Max: 5 * time.Second,
		}
	default: // wild variable reader
		return &event.Within{
			X:   &event.Seq{L: vars("r", "o", "u1"), R: vars("r", "o", "u2")},
			Max: 5 * time.Second,
		}
	}
}

// genRules draws a rule set with IDs 1..n.
func genRules(r *rand.Rand, n int) []Rule {
	out := make([]Rule, n)
	for i := range out {
		out[i] = Rule{ID: i + 1, Expr: genRule(r)}
	}
	return out
}

// genStream draws a timestamp-sorted observation stream over the reader
// pool (plus the occasional unknown reader) with gaps that include zero,
// so equal-timestamp ties are exercised.
func genStream(r *rand.Rand, n int) []event.Observation {
	var out []event.Observation
	t := 0.0
	for i := 0; i < n; i++ {
		t += float64(r.Intn(1500)) / 1000.0
		reader := genReaders[r.Intn(len(genReaders))]
		if r.Intn(20) == 0 {
			reader = "rz" // unknown to every literal key
		}
		out = append(out, event.Observation{
			Reader: reader,
			Object: string(rune('a' + r.Intn(6))),
			At:     ts(t),
		})
	}
	return out
}

// sig renders a detection for multiset comparison.
func sig(rule int, inst *event.Instance) string {
	return fmt.Sprintf("%d|%s|%s|%s", rule, inst.Begin, inst.End, inst.Binds.String())
}
