// Package shard scales the RCEDA detection engine across goroutines by
// statically partitioning the rule set into independent groups and running
// one detect.Engine per group.
//
// Two rules land in the same shard iff their event graphs can match
// overlapping reader/group key spaces (SASE-style attribute partitioning:
// rules over disjoint key spaces never observe each other's inputs, so
// splitting them cannot change detection semantics). Rules with a
// variable-reader leaf that no group(r) = 'g' equality predicate pins fall
// into a broadcast class that receives every observation. Common sub-graph
// merging still happens inside each shard; merging across shards is lost,
// which is a pure optimization (see detect's merged-equals-unmerged
// property test), so the union of the shards' detections equals a single
// engine's.
package shard

import (
	"sort"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Rule pairs a rule's graph ID with its event expression.
type Rule struct {
	ID   int
	Expr event.Expr
}

// Partition is the static assignment of rules to shards plus the routing
// index that fans each observation out to the shards whose leaves can
// match it. Build one with NewPartition; it is immutable afterwards and
// safe for concurrent ShardsFor calls only through Router (which adds a
// cache); the raw maps are read-only.
type Partition struct {
	// ByShard lists each shard's rules, ascending by rule ID.
	ByShard [][]Rule

	// readerShards/groupShards index shard IDs by reader literal and
	// group literal; broadcast lists shards holding wild rules, which
	// receive every observation.
	readerShards map[string][]int
	groupShards  map[string][]int
	broadcast    []int
}

// NewPartition groups rules into key-space classes, packs the classes onto
// at most maxShards shards (fewer when there are fewer classes) and builds
// the routing index. groups is the deployment's reader→groups function
// used to connect reader literals with group-predicate rules; nil means
// every reader is its own group, mirroring detect.Config.
func NewPartition(rules []Rule, maxShards int, groups func(string) []string) *Partition {
	if maxShards < 1 {
		maxShards = 1
	}
	if groups == nil {
		groups = func(r string) []string { return []string{r} }
	}
	keys := make([]graph.RouteKey, len(rules))
	for i, r := range rules {
		keys[i] = graph.RouteKeyOf(r.Expr)
	}

	// Union-find over rules. Rules are connected when their key spaces
	// can overlap: a shared reader literal, a shared group literal, a
	// reader literal belonging to a group-keyed rule's group, or both
	// wild. Group membership links literal rules only THROUGH a
	// group-keyed rule — two literal rules whose readers happen to share
	// a group still have disjoint key spaces and may split.
	uf := newUnionFind(len(rules))
	byReader := map[string]int{}
	byGroup := map[string]int{}
	wildClass := -1
	link := func(m map[string]int, key string, i int) {
		if j, ok := m[key]; ok {
			uf.union(i, j)
		} else {
			m[key] = i
		}
	}
	for i, k := range keys { // group-keyed rules anchor their groups
		for _, g := range k.Groups {
			link(byGroup, g, i)
		}
		if k.Wild {
			if wildClass < 0 {
				wildClass = i
			} else {
				uf.union(i, wildClass)
			}
		}
	}
	for i, k := range keys {
		for _, r := range k.Readers {
			link(byReader, r, i)
			// A group-keyed rule over any of this literal reader's
			// groups matches the same observations.
			for _, g := range groups(r) {
				if j, ok := byGroup[g]; ok {
					uf.union(i, j)
				}
			}
		}
	}

	// Collect classes in deterministic order (smallest member rule
	// first) and weigh them by leaf count — the per-observation matching
	// cost a shard pays for hosting the class.
	type class struct {
		rules  []int // indices into rules
		weight int
		wild   bool
	}
	classOf := map[int]*class{}
	var classes []*class
	for i := range rules {
		root := uf.find(i)
		c, ok := classOf[root]
		if !ok {
			c = &class{}
			classOf[root] = c
			classes = append(classes, c)
		}
		c.rules = append(c.rules, i)
		c.weight += len(graph.Leaves(rules[i].Expr))
		c.wild = c.wild || keys[i].Wild
	}

	// Longest-processing-time packing: heaviest class onto the lightest
	// shard. Deterministic: stable sort, ties by first rule index.
	sort.SliceStable(classes, func(a, b int) bool {
		if classes[a].weight != classes[b].weight {
			return classes[a].weight > classes[b].weight
		}
		return classes[a].rules[0] < classes[b].rules[0]
	})
	n := maxShards
	if len(classes) < n {
		n = len(classes)
	}
	if n < 1 {
		n = 1
	}
	p := &Partition{
		ByShard:      make([][]Rule, n),
		readerShards: map[string][]int{},
		groupShards:  map[string][]int{},
	}
	load := make([]int, n)
	shardWild := make([]bool, n)
	for _, c := range classes {
		s := 0
		for i := 1; i < n; i++ {
			if load[i] < load[s] {
				s = i
			}
		}
		load[s] += c.weight
		shardWild[s] = shardWild[s] || c.wild
		for _, ri := range c.rules {
			p.ByShard[s] = append(p.ByShard[s], rules[ri])
			for _, r := range keys[ri].Readers {
				p.readerShards[r] = appendShard(p.readerShards[r], s)
			}
			for _, g := range keys[ri].Groups {
				p.groupShards[g] = appendShard(p.groupShards[g], s)
			}
		}
	}
	for s := range p.ByShard {
		sort.Slice(p.ByShard[s], func(a, b int) bool {
			return p.ByShard[s][a].ID < p.ByShard[s][b].ID
		})
		if shardWild[s] {
			p.broadcast = append(p.broadcast, s)
		}
	}
	return p
}

// NumShards returns the number of shards actually used (≤ the requested
// maximum; never more than the number of key-space classes).
func (p *Partition) NumShards() int { return len(p.ByShard) }

// ShardOf returns the shard holding ruleID, or -1.
func (p *Partition) ShardOf(ruleID int) int {
	for s, rs := range p.ByShard {
		for _, r := range rs {
			if r.ID == ruleID {
				return s
			}
		}
	}
	return -1
}

// appendShard adds s to the sorted set dst.
func appendShard(dst []int, s int) []int {
	i := sort.SearchInts(dst, s)
	if i < len(dst) && dst[i] == s {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = s
	return dst
}

// Router resolves observations to target shards, memoizing per reader
// (reader populations are small and fixed; their group memberships are
// deployment configuration, constant for the engine's lifetime). Not safe
// for concurrent use — the shard engine drives it from its router path.
type Router struct {
	p      *Partition
	groups func(string) []string
	cache  map[string][]int
}

// NewRouter builds a router over the partition using the same groups
// function the partition (and the shard engines) were built with.
func NewRouter(p *Partition, groups func(string) []string) *Router {
	if groups == nil {
		groups = func(r string) []string { return []string{r} }
	}
	return &Router{p: p, groups: groups, cache: map[string][]int{}}
}

// ShardsFor returns the sorted set of shards that must receive an
// observation from the given reader: broadcast shards, shards keyed on the
// reader literal, and shards keyed on any of the reader's groups.
func (r *Router) ShardsFor(reader string) []int {
	if set, ok := r.cache[reader]; ok {
		return set
	}
	set := append([]int(nil), r.p.broadcast...)
	for _, s := range r.p.readerShards[reader] {
		set = appendShard(set, s)
	}
	if len(r.p.groupShards) > 0 {
		for _, g := range r.groups(reader) {
			for _, s := range r.p.groupShards[g] {
				set = appendShard(set, s)
			}
		}
	}
	r.cache[reader] = set
	return set
}

// unionFind is a plain weighted quick-union.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p, rank: make([]int, n)}
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
