package shard

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCheckpointSeedRepro pins a seed that once failed mid-stream
// checkpoint equivalence: two rules' detections fired at the same virtual
// time (one at an observation ingest, one from a pseudo event due at that
// exact timestamp) were delivered in different orders depending on where
// delivery barriers fell, because the restored run's barrier cadence was
// offset from the uninterrupted run's. Delivery now holds the fire-time
// group at the current instant until the clock strictly passes it, which
// makes the merged order invariant to barrier placement.
func TestCheckpointSeedRepro(t *testing.T) {
	for _, shards := range []int{1, 4} {
		seed := int64(9111367846041378138)
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 60+r.Intn(60))
		cut := len(stream) / 2

		var want []string
		full := newCollector(t, rules, shards, &want)
		for _, o := range stream {
			if err := full.Ingest(o); err != nil {
				t.Fatalf("full Ingest: %v", err)
			}
		}
		full.Close()

		var got []string
		first := newCollector(t, rules, shards, &got)
		for _, o := range stream[:cut] {
			if err := first.Ingest(o); err != nil {
				t.Fatalf("first-half Ingest: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := first.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
		atCheckpoint := len(got)
		first.Close()
		got = got[:atCheckpoint]

		second := newCollector(t, rules, shards, &got)
		if err := second.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("RestoreCheckpoint: %v", err)
		}
		for _, o := range stream[cut:] {
			if err := second.Ingest(o); err != nil {
				t.Fatalf("second-half Ingest: %v", err)
			}
		}
		second.Close()
		if err := second.Err(); err != nil {
			t.Fatalf("Err: %v", err)
		}
		diffStrings(t, "checkpointed sequence", want, got)
	}
}
