package shard

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rcep/internal/core/event"
)

func newCollector(t *testing.T, rules []Rule, shards int, got *[]string) *Engine {
	t.Helper()
	eng, err := New(Config{
		Rules:  rules,
		Shards: shards,
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			*got = append(*got, sig(rid, inst))
		},
		Batch:     3,
		SyncEvery: 9,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	return eng
}

// TestCheckpointMidStreamEquivalence saves a checkpoint halfway through a
// stream, restores it into a fresh engine and finishes the stream there;
// the concatenated detection sequence must equal an uninterrupted run's.
func TestCheckpointMidStreamEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 60+r.Intn(60))
		cut := len(stream) / 2

		var want []string
		full := newCollector(t, rules, 4, &want)
		for _, o := range stream {
			if err := full.Ingest(o); err != nil {
				t.Fatalf("full Ingest: %v", err)
			}
		}
		full.Close()

		var got []string
		first := newCollector(t, rules, 4, &got)
		for _, o := range stream[:cut] {
			if err := first.Ingest(o); err != nil {
				t.Fatalf("first-half Ingest: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := first.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
		// Close fires the abandoned run's pseudo-event closures; the
		// restored run produces those too, so drop anything Close delivers
		// past the checkpoint barrier.
		atCheckpoint := len(got)
		first.Close()
		got = got[:atCheckpoint]

		second := newCollector(t, rules, 4, &got)
		if err := second.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("RestoreCheckpoint: %v", err)
		}
		for _, o := range stream[cut:] {
			if err := second.Ingest(o); err != nil {
				t.Fatalf("second-half Ingest: %v", err)
			}
		}
		second.Close()
		if err := second.Err(); err != nil {
			t.Fatalf("Err: %v", err)
		}
		diffStrings(t, "checkpointed sequence", want, got)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointShardCountMismatch(t *testing.T) {
	// Four disjoint literal classes, so 4 requested shards really yields 4
	// workers and 2 yields 2.
	var rules []Rule
	for i := 0; i < 4; i++ {
		rd := genReaders[i]
		rules = append(rules, Rule{ID: i + 1, Expr: seq(lit(rd, "o", "t1"), lit(rd, "o", "t2"), 5e9)})
	}
	var sink []string
	a := newCollector(t, rules, 4, &sink)
	defer a.Close()
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	b := newCollector(t, rules, 2, &sink)
	defer b.Close()
	err := b.RestoreCheckpoint(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("restore into different shard count: err = %v, want shard-count mismatch", err)
	}
}

func TestCheckpointFormatGuard(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rules := genRules(r, 4)
	var sink []string
	eng := newCollector(t, rules, 2, &sink)
	defer eng.Close()
	// A detect.Engine checkpoint has no "format" key; restoring it into a
	// sharded engine must fail loudly, not corrupt state.
	err := eng.RestoreCheckpoint(strings.NewReader(`{"now":0,"seq":0}`))
	if err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("restore of single-engine checkpoint: err = %v, want format error", err)
	}
}

func TestCheckpointRequiresFreshEngine(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rules := genRules(r, 4)
	stream := genStream(r, 10)
	var sink []string
	a := newCollector(t, rules, 2, &sink)
	defer a.Close()
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	b := newCollector(t, rules, 2, &sink)
	defer b.Close()
	if err := b.Ingest(stream[0]); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := b.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatalf("restore into non-fresh engine succeeded")
	}
}
