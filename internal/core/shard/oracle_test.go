package shard

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// runSingle replays the stream through one plain detect.Engine holding the
// whole rule set — the oracle the sharded engine must reproduce.
func runSingle(t *testing.T, rules []Rule, stream []event.Observation, indexed bool) []string {
	t.Helper()
	b := graph.NewBuilder()
	for _, r := range rules {
		if _, err := b.AddRule(r.ID, r.Expr); err != nil {
			t.Fatalf("AddRule(%d): %v", r.ID, err)
		}
	}
	var got []string
	eng, err := detect.New(detect.Config{
		Graph:  b.Finalize(),
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			got = append(got, sig(rid, inst))
		},
		IndexPrimitives: indexed,
	})
	if err != nil {
		t.Fatalf("detect.New: %v", err)
	}
	for _, o := range stream {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("oracle Ingest(%v): %v", o, err)
		}
	}
	eng.Close()
	return got
}

// runShard replays the stream through a sharded engine, returning the
// delivered detection order.
func runShard(t *testing.T, rules []Rule, stream []event.Observation, shards int, indexed bool) []string {
	t.Helper()
	var got []string
	eng, err := New(Config{
		Rules:  rules,
		Shards: shards,
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			got = append(got, sig(rid, inst))
		},
		IndexPrimitives: indexed,
		Batch:           3, // tiny batches + frequent barriers to stress the
		SyncEvery:       7, // fan-out/fan-in machinery
	})
	if err != nil {
		t.Fatalf("shard.New(shards=%d): %v", shards, err)
	}
	for _, o := range stream {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("shard Ingest(%v): %v", o, err)
		}
	}
	eng.Close()
	if err := eng.Err(); err != nil {
		t.Fatalf("shard Err: %v", err)
	}
	return got
}

// asMultiset returns a sorted copy for order-insensitive comparison.
func asMultiset(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func diffStrings(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d detections, oracle has %d", label, len(got), len(want))
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("%s: detection %d = %s, oracle %s", label, i, got[i], want[i])
			return
		}
	}
}

// TestOracleShardEquivalence is the core acceptance property: for seeded
// random rule sets and streams, the sharded engine at N ∈ {1,2,4,8}
// delivers exactly the single engine's detection multiset, and the
// delivered sequence is invariant in N.
func TestOracleShardEquivalence(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(10))
		stream := genStream(r, 40+r.Intn(110))
		indexed := r.Intn(2) == 1

		oracle := asMultiset(runSingle(t, rules, stream, indexed))
		var ref []string
		for _, n := range shardCounts {
			got := runShard(t, rules, stream, n, indexed)
			diffStrings(t, "multiset", oracle, asMultiset(got))
			if ref == nil {
				ref = got
			} else {
				diffStrings(t, "sequence vs N=1", ref, got)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOracleBatchedIngest checks that feeding shuffled, irregularly sized
// chunks through IngestBatch produces the same multiset as a single
// engine fed the realized serialization — each chunk stably sorted by
// timestamp, which is exactly the order IngestBatch commits. The oracle
// must consume that realized order, not the pre-shuffle stream: among
// equal-timestamp observations the original order is unrecoverable after
// a shuffle, and chronicle pairing is arrival-order-sensitive for
// simultaneous events, so the two orders can legitimately detect
// different (equally valid) initiator bindings.
func TestOracleBatchedIngest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 60+r.Intn(60))

		// Chunk and shuffle first, recording the realized serialization
		// the engine will actually commit.
		var chunks [][]event.Observation
		var realized []event.Observation
		for rest := stream; len(rest) > 0; {
			n := 1 + r.Intn(10)
			if n > len(rest) {
				n = len(rest)
			}
			chunk := append([]event.Observation(nil), rest[:n]...)
			r.Shuffle(len(chunk), func(i, j int) { chunk[i], chunk[j] = chunk[j], chunk[i] })
			chunks = append(chunks, chunk)
			sorted := append([]event.Observation(nil), chunk...)
			sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
			realized = append(realized, sorted...)
			rest = rest[n:]
		}
		oracle := asMultiset(runSingle(t, rules, realized, false))

		var got []string
		eng, err := New(Config{
			Rules:  rules,
			Shards: 4,
			Groups: genGroups,
			TypeOf: genTypeOf,
			OnDetect: func(rid int, inst *event.Instance) {
				got = append(got, sig(rid, inst))
			},
			Batch:     2,
			SyncEvery: 5,
		})
		if err != nil {
			t.Fatalf("shard.New: %v", err)
		}
		for _, chunk := range chunks {
			if err := eng.IngestBatch(chunk); err != nil {
				t.Fatalf("IngestBatch: %v", err)
			}
		}
		eng.Close()
		if err := eng.Err(); err != nil {
			t.Fatalf("Err: %v", err)
		}
		diffStrings(t, "batched multiset", oracle, asMultiset(got))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestOracleAdvanceTo interleaves explicit time advances (which fire
// pending pseudo events with no observation) with the stream and checks
// equivalence still holds.
func TestOracleAdvanceTo(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 50+r.Intn(50))

		b := graph.NewBuilder()
		for _, rl := range rules {
			if _, err := b.AddRule(rl.ID, rl.Expr); err != nil {
				t.Fatalf("AddRule: %v", err)
			}
		}
		var oracle []string
		single, err := detect.New(detect.Config{
			Graph:  b.Finalize(),
			Groups: genGroups,
			TypeOf: genTypeOf,
			OnDetect: func(rid int, inst *event.Instance) {
				oracle = append(oracle, sig(rid, inst))
			},
		})
		if err != nil {
			t.Fatalf("detect.New: %v", err)
		}
		var got []string
		sharded, err := New(Config{
			Rules:  rules,
			Shards: 4,
			Groups: genGroups,
			TypeOf: genTypeOf,
			OnDetect: func(rid int, inst *event.Instance) {
				got = append(got, sig(rid, inst))
			},
			Batch:     3,
			SyncEvery: 6,
		})
		if err != nil {
			t.Fatalf("shard.New: %v", err)
		}
		for i, o := range stream {
			if err := single.Ingest(o); err != nil {
				t.Fatalf("oracle Ingest: %v", err)
			}
			if err := sharded.Ingest(o); err != nil {
				t.Fatalf("shard Ingest: %v", err)
			}
			if i%7 == 3 {
				adv := o.At + event.Time(r.Intn(3_000_000_000))
				if i+1 < len(stream) && adv > stream[i+1].At {
					adv = stream[i+1].At // keep the rest of the stream ingestible
				}
				if err := single.AdvanceTo(adv); err != nil {
					t.Fatalf("oracle AdvanceTo: %v", err)
				}
				if err := sharded.AdvanceTo(adv); err != nil {
					t.Fatalf("shard AdvanceTo: %v", err)
				}
			}
		}
		single.Close()
		sharded.Close()
		if err := sharded.Err(); err != nil {
			t.Fatalf("Err: %v", err)
		}
		diffStrings(t, "advance multiset", asMultiset(oracle), asMultiset(got))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
