package shard

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestRestoreRejectsTruncatedCheckpoint cuts a shard/v1 checkpoint at
// EVERY byte offset and restores each prefix into a fresh engine: no cut
// may panic, and no cut short of the complete document may restore
// cleanly — a half-written checkpoint after a crashed save must surface
// as an error (so the operator falls back to replay), never as a
// silently half-restored engine.
func TestRestoreRejectsTruncatedCheckpoint(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	rules := genRules(r, 5)
	stream := genStream(r, 50)

	var sink []string
	eng := newCollector(t, rules, 4, &sink)
	for _, o := range stream {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := eng.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	eng.Close()
	raw := buf.Bytes()

	for cut := 0; cut < len(raw); cut++ {
		var got []string
		fresh := newCollector(t, rules, 4, &got)
		err := fresh.RestoreCheckpoint(bytes.NewReader(raw[:cut]))
		fresh.Close()
		if err == nil && cut < len(raw)-1 {
			// Only the full document (or the full document minus its
			// trailing newline) may decode whole.
			t.Fatalf("truncation at %d/%d restored cleanly", cut, len(raw))
		}
	}

	// The intact checkpoint still restores — the loop above proves
	// rejection, this proves the rejections are not vacuous.
	var got []string
	fresh := newCollector(t, rules, 4, &got)
	if err := fresh.RestoreCheckpoint(bytes.NewReader(raw)); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
	fresh.Close()
}
