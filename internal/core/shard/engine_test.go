package shard

import (
	"errors"
	"testing"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
)

func obsAt(reader, object string, sec float64) event.Observation {
	return event.Observation{Reader: reader, Object: object, At: ts(sec)}
}

// twoShardRules puts rule 1 on r0 and rule 2 on r1 plus a group-keyed
// rule 3 over "odd" ({r1, r3, r5}); rules 2 and 3 overlap via r1, so this
// makes two key-space classes.
func twoShardRules() []Rule {
	return []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), 5*time.Second)},
		{ID: 2, Expr: seq(lit("r1", "o", "t1"), lit("r1", "o", "t2"), 5*time.Second)},
		{ID: 3, Expr: seq(
			vars("r", "o", "t1", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "odd"}),
			vars("r", "o", "t2", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "odd"}),
			5*time.Second)},
	}
}

func TestEngineRejectsOutOfOrder(t *testing.T) {
	eng, err := New(Config{Rules: twoShardRules(), Shards: 4, Groups: genGroups})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(obsAt("r0", "a", 10)); err != nil {
		t.Fatal(err)
	}
	err = eng.Ingest(obsAt("r0", "a", 5))
	if !errors.Is(err, detect.ErrOutOfOrder) {
		t.Fatalf("out-of-order Ingest: %v, want ErrOutOfOrder", err)
	}
	// The router, not a shard worker, rejected it: no sticky failure.
	if err := eng.Ingest(obsAt("r0", "a", 11)); err != nil {
		t.Fatalf("Ingest after rejected observation: %v", err)
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

// TestIngestBatchAtomic pins the all-or-nothing contract: a batch whose
// earliest observation precedes engine time fails without applying ANY
// observation, including ones individually newer than engine time.
func TestIngestBatchAtomic(t *testing.T) {
	var dets int
	eng, err := New(Config{
		Rules:  twoShardRules(),
		Shards: 4,
		Groups: genGroups,
		OnDetect: func(int, *event.Instance) {
			dets++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(obsAt("r0", "a", 10)); err != nil {
		t.Fatal(err)
	}
	// 12s would complete rule 1 with the 10s sighting — it must not apply.
	err = eng.IngestBatch([]event.Observation{obsAt("r0", "a", 12), obsAt("r0", "a", 5)})
	if !errors.Is(err, detect.ErrOutOfOrder) {
		t.Fatalf("stale batch: %v, want ErrOutOfOrder", err)
	}
	m := eng.Metrics()
	if m.Observations != 1 {
		t.Fatalf("Observations = %d after rejected batch, want 1 (nothing applied)", m.Observations)
	}
	if eng.Now() != ts(10) {
		t.Fatalf("Now = %s after rejected batch, want 10s", eng.Now())
	}
	if dets != 0 {
		t.Fatalf("rejected batch produced %d detections", dets)
	}
	// An unsorted but fresh batch is sorted and applied in full.
	if err := eng.IngestBatch([]event.Observation{obsAt("r0", "a", 14), obsAt("r0", "a", 12)}); err != nil {
		t.Fatalf("unsorted fresh batch: %v", err)
	}
	if eng.Metrics(); dets == 0 {
		t.Fatalf("sequence r0@10,12 produced no rule-1 detection")
	}
}

func TestEngineClosedIsTerminal(t *testing.T) {
	eng, err := New(Config{Rules: twoShardRules(), Shards: 2, Groups: genGroups})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if err := eng.Ingest(obsAt("r0", "a", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if err := eng.IngestBatch([]event.Observation{obsAt("r0", "a", 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("IngestBatch after Close: %v, want ErrClosed", err)
	}
	if err := eng.AdvanceTo(ts(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("AdvanceTo after Close: %v, want ErrClosed", err)
	}
}

// TestMetricsCountFanOutOnce: an observation fanned to several shards is one
// observation in the aggregate, while per-shard metrics see their own copy.
func TestMetricsCountFanOutOnce(t *testing.T) {
	eng, err := New(Config{Rules: twoShardRules(), Shards: 4, Groups: genGroups})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(obsAt("r1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(obsAt("r0", "a", 2)); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Observations != 2 {
		t.Fatalf("aggregate Observations = %d, want 2", m.Observations)
	}
	var routed uint64
	for _, sm := range eng.ShardMetrics() {
		routed += sm.Observations
	}
	if routed < 2 {
		t.Fatalf("shards saw %d routed observations in total, want ≥ 2", routed)
	}
}

// TestSyncDeliversPending: detections sitting on shard workers are
// delivered by Sync without waiting for the SyncEvery barrier.
func TestSyncDeliversPending(t *testing.T) {
	var dets int
	eng, err := New(Config{
		Rules:  twoShardRules(),
		Shards: 2,
		Groups: genGroups,
		OnDetect: func(int, *event.Instance) {
			dets++
		},
		SyncEvery: 1 << 20, // never barrier on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(obsAt("r0", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(obsAt("r0", "a", 2)); err != nil {
		t.Fatal(err)
	}
	if dets != 0 {
		// Not a strict requirement (a full batch could flush), but with
		// defaults nothing should have been delivered yet.
		t.Logf("note: %d detections delivered before Sync", dets)
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	if dets == 0 {
		t.Fatalf("Sync delivered no detections; rule 1 should have fired")
	}
}

// TestFewerClassesThanShards: asking for 8 shards with one key-space class
// yields one worker, and everything still flows.
func TestFewerClassesThanShards(t *testing.T) {
	rules := []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), 5*time.Second)},
		{ID: 2, Expr: seq(lit("r0", "o", "t1"), lit("r1", "o", "t2"), 5*time.Second)},
	}
	var dets int
	eng, err := New(Config{
		Rules:  rules,
		Shards: 8,
		Groups: genGroups,
		OnDetect: func(int, *event.Instance) {
			dets++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 1 {
		t.Fatalf("one class on 8 shards → %d workers, want 1", eng.Shards())
	}
	if err := eng.Ingest(obsAt("r0", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(obsAt("r0", "a", 2)); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if dets == 0 {
		t.Fatalf("no detections after Close")
	}
}

func TestDuplicateRuleIDRejected(t *testing.T) {
	_, err := New(Config{Rules: []Rule{
		{ID: 1, Expr: seq(lit("r0", "o", "t1"), lit("r0", "o", "t2"), time.Second)},
		{ID: 1, Expr: seq(lit("r1", "o", "t1"), lit("r1", "o", "t2"), time.Second)},
	}})
	if err == nil {
		t.Fatal("duplicate rule IDs accepted")
	}
}
