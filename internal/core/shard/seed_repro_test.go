package shard

import (
	"math/rand"
	"sort"
	"testing"

	"rcep/internal/core/event"
)

// TestSeedRepro60402385808921546 pins the invariants around equal-time
// reordering for a seed that historically exposed a divergence.
//
// What the engine guarantees: the sharded engine reproduces a single
// engine's detections exactly when both consume the SAME observation
// order. What it deliberately does NOT guarantee: detection-multiset
// invariance under permutations of equal-timestamp observations in the
// input itself — chronicle context consumes the oldest compatible
// candidate, and for constituents with no join variables "oldest" among
// equal-time arrivals is arrival order by definition (for this seed, two
// initiators at 6.644s re-pair a TSEQ terminator differently). The first
// part of this test therefore asserts equality only up to chronicle
// re-pairing: the multiset of (rule, interval) detections must agree even
// when equal-time permutation swaps which initiator's bindings were
// consumed.
func TestSeedRepro60402385808921546(t *testing.T) {
	seed := int64(60402385808921546)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 3+r.Intn(8))
	stream := genStream(r, 60+r.Intn(60))
	oracle := runSingle(t, rules, stream, false)

	// Recreate the exact per-chunk shuffled+stably-sorted order IngestBatch applies.
	var applied []event.Observation
	rest := stream
	for len(rest) > 0 {
		n := 1 + r.Intn(10)
		if n > len(rest) {
			n = len(rest)
		}
		chunk := append([]event.Observation(nil), rest[:n]...)
		r.Shuffle(len(chunk), func(i, j int) { chunk[i], chunk[j] = chunk[j], chunk[i] })
		sorted := append([]event.Observation(nil), chunk...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		applied = append(applied, sorted...)
		rest = rest[n:]
	}
	reordered := runSingle(t, rules, applied, false)
	diffStrings(t, "single-engine intervals on reordered equal-time stream",
		asMultiset(stripBinds(oracle)), asMultiset(stripBinds(reordered)))

	// The sharded engine on the same applied order via plain Ingest must
	// match the single engine exactly, bindings included.
	var got []string
	eng, err := New(Config{
		Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) { got = append(got, sig(rid, inst)) },
		Batch:    2, SyncEvery: 5,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	for _, o := range applied {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	eng.Close()
	diffStrings(t, "shard vs single on SAME order", asMultiset(reordered), asMultiset(got))
}

// stripBinds reduces detection signatures "rule|begin|end|binds" to
// "rule|begin|end", the part invariant to chronicle re-pairing.
func stripBinds(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		cut := len(s)
		for j, seen := 0, 0; j < len(s); j++ {
			if s[j] == '|' {
				seen++
				if seen == 3 {
					cut = j
					break
				}
			}
		}
		out[i] = s[:cut]
	}
	return out
}
