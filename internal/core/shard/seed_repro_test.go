package shard

import (
	"math/rand"
	"sort"
	"testing"

	"rcep/internal/core/event"
)

func TestSeedRepro60402385808921546(t *testing.T) {
	seed := int64(60402385808921546)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 3+r.Intn(8))
	stream := genStream(r, 60+r.Intn(60))
	oracle := asMultiset(runSingle(t, rules, stream, false))

	// Recreate the exact per-chunk shuffled+stably-sorted order IngestBatch applies.
	var applied []event.Observation
	rest := stream
	for len(rest) > 0 {
		n := 1 + r.Intn(10)
		if n > len(rest) {
			n = len(rest)
		}
		chunk := append([]event.Observation(nil), rest[:n]...)
		r.Shuffle(len(chunk), func(i, j int) { chunk[i], chunk[j] = chunk[j], chunk[i] })
		sorted := append([]event.Observation(nil), chunk...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		applied = append(applied, sorted...)
		rest = rest[n:]
	}
	reordered := asMultiset(runSingle(t, rules, applied, false))
	diffStrings(t, "single-engine on reordered equal-time stream", oracle, reordered)

	// And the sharded engine on the same applied order via plain Ingest.
	var got []string
	eng, err := New(Config{
		Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) { got = append(got, sig(rid, inst)) },
		Batch:    2, SyncEvery: 5,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	for _, o := range applied {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	eng.Close()
	diffStrings(t, "shard vs single on SAME order", reordered, asMultiset(got))
}
