package context

import "testing"

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, c := range All() {
		got, err := Parse(c.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", c.String(), err)
			continue
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestParseAliases(t *testing.T) {
	if c, err := Parse("general"); err != nil || c != Unrestricted {
		t.Errorf("general alias: %v %v", c, err)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Errorf("bogus context accepted")
	}
}

func TestDefaultIsChronicle(t *testing.T) {
	var c Context
	if c != Chronicle {
		t.Errorf("zero value should be Chronicle (the paper's context)")
	}
}

func TestUnknownString(t *testing.T) {
	if s := Context(99).String(); s != "context(99)" {
		t.Errorf("unknown context string: %q", s)
	}
}
