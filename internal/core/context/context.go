// Package context implements the parameter contexts of Chakravarthy et
// al.'s Snoop, as discussed in paper §4.2: a parameter context decides
// which combinations of constituent instances are pulled out of the event
// history when a complex event is detected. The paper argues that only the
// chronicle context detects overlapping RFID events correctly, and RCEDA
// uses it by default; the others are provided for the A3 comparison
// experiment and for completeness.
package context

import "fmt"

// Context selects a pairing policy for binary event constructors.
type Context uint8

// The five classic parameter contexts.
const (
	// Chronicle pairs the oldest initiator with the oldest terminator
	// and consumes both. The paper's default: correct for overlapping
	// RFID event streams.
	Chronicle Context = iota
	// Recent pairs the most recent initiator; the initiator is kept and
	// only replaced by a newer one.
	Recent
	// Continuous pairs every pending initiator with the first terminator
	// that follows it; all paired initiators are consumed.
	Continuous
	// Cumulative accumulates all pending initiators into a single
	// detection and consumes them all.
	Cumulative
	// Unrestricted pairs every combination and consumes nothing; buffers
	// grow without bound unless pruned by temporal constraints.
	Unrestricted
)

// String implements fmt.Stringer.
func (c Context) String() string {
	switch c {
	case Chronicle:
		return "chronicle"
	case Recent:
		return "recent"
	case Continuous:
		return "continuous"
	case Cumulative:
		return "cumulative"
	case Unrestricted:
		return "unrestricted"
	}
	return fmt.Sprintf("context(%d)", uint8(c))
}

// Parse converts a context name into a Context.
func Parse(s string) (Context, error) {
	switch s {
	case "chronicle":
		return Chronicle, nil
	case "recent":
		return Recent, nil
	case "continuous":
		return Continuous, nil
	case "cumulative":
		return Cumulative, nil
	case "unrestricted", "general":
		return Unrestricted, nil
	}
	return Chronicle, fmt.Errorf("context: unknown parameter context %q", s)
}

// All lists every supported context, for table-driven tests and the A3
// benchmark.
func All() []Context {
	return []Context{Chronicle, Recent, Continuous, Cumulative, Unrestricted}
}
