package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/core/shard"
)

// Randomized-workload generators mirroring internal/core/shard's test
// suite (package-private there, so duplicated): rule sets drawn from the
// paper's rule shapes over a small reader pool, plus timestamp-sorted
// streams, so the cluster is proven against the same workloads as the
// in-process sharded engine.

var genReaders = []string{"r0", "r1", "r2", "r3", "r4", "r5"}

func genGroups(r string) []string {
	var idx int
	if _, err := fmt.Sscanf(r, "r%d", &idx); err != nil {
		return []string{r}
	}
	if idx%2 == 0 {
		return []string{r, "even"}
	}
	return []string{r, "odd"}
}

func genTypeOf(o string) string {
	if o == "a" || o == "b" {
		return "laptop"
	}
	return ""
}

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func lit(reader, objVar, timeVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: objVar},
		At:     event.Term{Var: timeVar},
		Preds:  preds,
	}
}

func vars(rVar, oVar, tVar string, preds ...event.Pred) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Var: rVar},
		Object: event.Term{Var: oVar},
		At:     event.Term{Var: tVar},
		Preds:  preds,
	}
}

func genRule(r *rand.Rand) event.Expr {
	pick := func() string { return genReaders[r.Intn(len(genReaders))] }
	grp := "even"
	if r.Intn(2) == 1 {
		grp = "odd"
	}
	switch r.Intn(10) {
	case 0:
		return &event.TSeq{
			L: lit(pick(), "o1", "t1"), R: lit(pick(), "o2", "t2"),
			Lo: 200 * time.Millisecond, Hi: 3 * time.Second,
		}
	case 1:
		return &event.Within{
			X:   &event.Seq{L: lit(pick(), "o", "t1"), R: lit(pick(), "o", "t2")},
			Max: 5 * time.Second,
		}
	case 2:
		rd := pick()
		return &event.Within{
			X:   &event.Seq{L: &event.Not{X: lit(rd, "o", "t1")}, R: lit(rd, "o", "t2")},
			Max: 4 * time.Second,
		}
	case 3:
		return &event.Within{
			X: &event.And{
				L: lit(pick(), "o1", "t1", event.Pred{Fn: "type", Arg: "o1", Op: event.CmpEq, Val: "laptop"}),
				R: &event.Not{X: lit(pick(), "o2", "t2")},
			},
			Max: 2 * time.Second,
		}
	case 4:
		return &event.TSeqPlus{X: lit(pick(), "o", "t"), Lo: 0, Hi: time.Second}
	case 5:
		return &event.Within{
			X: &event.Seq{
				L: vars("r", "o", "t1", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: grp}),
				R: vars("r", "o", "t2", event.Pred{Fn: "group", Arg: "r", Op: event.CmpEq, Val: grp}),
			},
			Max: 5 * time.Second,
		}
	case 6:
		return &event.Within{
			X:   &event.Seq{L: vars("r", "o", "u1"), R: vars("r", "o", "u2")},
			Max: 5 * time.Second,
		}
	case 7:
		// Inequality guard between constituents (objects compare as
		// strings): SEQ(...) WHERE o2 > o1, WITHIN 5s.
		return &event.Within{
			X: &event.Guarded{
				X:    &event.Seq{L: lit(pick(), "o1", "t1"), R: lit(pick(), "o2", "t2")},
				Cond: &event.GBin{Op: event.GuardGt, L: &event.GVar{Name: "o2"}, R: &event.GVar{Name: "o1"}},
			},
			Max: 5 * time.Second,
		}
	case 8:
		// Aggregate guard over a closure run: TSEQ+ WHERE COUNT(o) >= 2.
		return &event.Guarded{
			X: &event.TSeqPlus{X: lit(pick(), "o", "t"), Lo: 0, Hi: time.Second},
			Cond: &event.GBin{
				Op: event.GuardGe,
				L:  &event.GAgg{Op: event.AggCount, Name: "o"},
				R:  &event.GLit{V: event.IntValue(2)},
			},
		}
	default:
		// Window-scoped negation: SEQ(E ; NOT E' WITHIN 3s) — the
		// absence window rides on the NOT, not on an enclosing WITHIN.
		return &event.Seq{
			L: lit(pick(), "o", "t1"),
			R: &event.Not{X: lit(pick(), "o", "t2"), Win: 3 * time.Second},
		}
	}
}

func genRules(r *rand.Rand, n int) []shard.Rule {
	out := make([]shard.Rule, n)
	for i := range out {
		out[i] = shard.Rule{ID: i + 1, Expr: genRule(r)}
	}
	return out
}

func genStream(r *rand.Rand, n int) []event.Observation {
	var out []event.Observation
	t := 0.0
	for i := 0; i < n; i++ {
		t += float64(r.Intn(1500)) / 1000.0
		reader := genReaders[r.Intn(len(genReaders))]
		if r.Intn(20) == 0 {
			reader = "rz"
		}
		out = append(out, event.Observation{
			Reader: reader,
			Object: string(rune('a' + r.Intn(6))),
			At:     ts(t),
		})
	}
	return out
}

func sig(rule int, inst *event.Instance) string {
	return fmt.Sprintf("%d|%s|%s|%s", rule, inst.Begin, inst.End, inst.Binds.String())
}

// runSingle replays the stream through one plain detect.Engine holding
// the whole rule set — the multiset oracle.
func runSingle(t *testing.T, rules []shard.Rule, stream []event.Observation) []string {
	t.Helper()
	b := graph.NewBuilder()
	for _, r := range rules {
		if _, err := b.AddRule(r.ID, r.Expr); err != nil {
			t.Fatalf("AddRule(%d): %v", r.ID, err)
		}
	}
	var got []string
	eng, err := detect.New(detect.Config{
		Graph:  b.Finalize(),
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			got = append(got, sig(rid, inst))
		},
	})
	if err != nil {
		t.Fatalf("detect.New: %v", err)
	}
	for _, o := range stream {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("oracle Ingest(%v): %v", o, err)
		}
	}
	eng.Close()
	return got
}

// runShard replays the stream through the in-process sharded engine with
// the same partition the cluster uses — the delivery-order oracle.
func runShard(t *testing.T, rules []shard.Rule, stream []event.Observation, shards int) []string {
	t.Helper()
	var got []string
	eng, err := shard.New(shard.Config{
		Rules:  rules,
		Shards: shards,
		Groups: genGroups,
		TypeOf: genTypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			got = append(got, sig(rid, inst))
		},
		Batch:     3,
		SyncEvery: 7,
	})
	if err != nil {
		t.Fatalf("shard.New(shards=%d): %v", shards, err)
	}
	for _, o := range stream {
		if err := eng.Ingest(o); err != nil {
			t.Fatalf("shard Ingest(%v): %v", o, err)
		}
	}
	eng.Close()
	if err := eng.Err(); err != nil {
		t.Fatalf("shard Err: %v", err)
	}
	return got
}

func asMultiset(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func diffStrings(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d detections, oracle has %d", label, len(got), len(want))
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("%s: detection %d = %s, oracle %s", label, i, got[i], want[i])
			return
		}
	}
}
