package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"rcep/internal/wire"
)

// outbox holds a feed's detections from the moment the engine fires them
// until the coordinator confirms it merged them. It replaces the old
// fire-and-forget dets buffer (cleared into each sync reply, protected
// only by a small cached-reply window): every sync and drain reply now
// carries the FULL unconfirmed set, and entries are trimmed only when a
// later sync frame carries the coordinator's detection high-water mark
// (Message.DetSeq). The coordinator dedupes by dseq, so re-sending a
// superset is always safe — and a reply lost to a flaky link during a
// long partition can never strand a detection, no matter how many
// reconnect replays happen in between.
//
// With WorkerConfig.OutboxDir set, the unconfirmed set is additionally
// journaled through the wire spool WAL (one entry per detection, keyed
// by dseq; confirmations journal as cumulative acks). The memory copy
// stays authoritative for the protocol; the WAL is the operator-facing
// artifact — detections a crashed worker had fired but never got
// confirmed survive on disk for audit, exactly like an edge spool.
type outbox struct {
	mem       []wire.ClusterDet // unconfirmed, ascending dseq
	confirmed uint64            // coordinator-confirmed detection high-water mark
	sp        *wire.Spool
	walErr    error // first WAL failure; memory path keeps working
}

// newOutbox opens the outbox for one assigned shard. A fresh assign
// starts a fresh detection lineage at base (the coordinator's confirmed
// DetSeq): the new engine re-detects everything past it
// deterministically, so any spool left by a previous incarnation is
// removed rather than merged.
func newOutbox(dir string, shard int, base uint64) (*outbox, error) {
	ob := &outbox{confirmed: base}
	if dir == "" {
		return ob, nil
	}
	path := filepath.Join(dir, fmt.Sprintf("shard-%d.outbox", shard))
	_ = os.Remove(path)
	_ = os.Remove(path + ".quarantine")
	sp, err := wire.OpenSpool(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d outbox: %w", shard, err)
	}
	ob.sp = sp
	return ob, nil
}

func (ob *outbox) add(d wire.ClusterDet) {
	ob.mem = append(ob.mem, d)
	if ob.sp != nil && ob.walErr == nil {
		ob.walErr = ob.sp.Append(wire.Message{Type: "cdet", Seq: d.Dseq, CDets: []wire.ClusterDet{d}})
	}
}

// confirm trims everything at or below the coordinator's high-water
// mark. Marks are cumulative, so a stale (replayed) frame's lower mark
// is a no-op.
func (ob *outbox) confirm(detHigh uint64) {
	if detHigh <= ob.confirmed {
		return
	}
	ob.confirmed = detHigh
	i := 0
	for i < len(ob.mem) && ob.mem[i].Dseq <= detHigh {
		i++
	}
	ob.mem = append(ob.mem[:0], ob.mem[i:]...)
	if ob.sp != nil && ob.walErr == nil {
		ob.walErr = ob.sp.Ack(detHigh)
	}
}

// pending returns a copy of the unconfirmed detections, in dseq order —
// the payload of every sync and drain reply, fresh or replayed.
func (ob *outbox) pending() []wire.ClusterDet {
	return append([]wire.ClusterDet(nil), ob.mem...)
}

func (ob *outbox) close() {
	if ob.sp != nil {
		_ = ob.sp.Close()
		ob.sp = nil
	}
}
