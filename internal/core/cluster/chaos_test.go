package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"rcep/internal/faults"
)

// TestClusterChaosOracle is the headline robustness proof: across a
// matrix of seeded fault schedules — every one of which kills and
// restarts at least one worker mid-stream, many of which also corrupt a
// stored checkpoint, partition connections, or slow writes — a 4-worker
// cluster delivers exactly the single-process engine's detection
// multiset, in exactly the in-process sharded engine's deterministic
// (fire, rule, seq) order.
//
// The seed base comes from CHAOS_SEED_BASE (default 0) so CI can fan the
// matrix out across jobs without code changes. When a schedule fails,
// its seed and human-readable fault recipe are appended to
// CHAOS_FAILURE_FILE (if set) so the exact run can be replayed locally:
//
//	CHAOS_SEED_BASE=<seed> go test -race -run TestClusterChaosOracle/seed=<seed> ./internal/core/cluster/
const chaosSchedules = 24

func TestClusterChaosOracle(t *testing.T) {
	var base int64
	if s := os.Getenv("CHAOS_SEED_BASE"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &base); err != nil {
			t.Fatalf("CHAOS_SEED_BASE=%q: %v", s, err)
		}
	}
	var recMu sync.Mutex
	record := func(seed int64, plan *faults.ClusterPlan, reason string) {
		path := os.Getenv("CHAOS_FAILURE_FILE")
		if path == "" {
			return
		}
		recMu.Lock()
		defer recMu.Unlock()
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos failure file: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "%s :: %s\n", plan, reason)
	}

	for i := 0; i < chaosSchedules; i++ {
		seed := base + int64(i)
		t.Run(planName(seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			rules := genRules(r, 3+r.Intn(8))
			stream := genStream(r, 80+r.Intn(80))
			plan := faults.NewClusterPlan(seed, 4, len(stream))

			oracle := asMultiset(runSingle(t, rules, stream))
			order := runShard(t, rules, stream, 4)

			got, handoffs, err := runCluster(t, seed, 4, rules, stream, plan)
			if err != nil {
				record(seed, plan, err.Error())
				t.Fatalf("cluster run under %s: %v", plan, err)
			}
			if handoffs == 0 {
				record(seed, plan, "no handoffs despite kill schedule")
				t.Fatalf("plan %s killed a worker but no handoff happened", plan)
			}
			diffStrings(t, "multiset", oracle, asMultiset(got))
			diffStrings(t, "order", order, got)
			if t.Failed() {
				record(seed, plan, "detection mismatch (see test log)")
				t.Logf("fault schedule: %s", plan)
			}
		})
	}
}
