package cluster

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/shard"
	"rcep/internal/wire"
)

// ErrClosed is returned by ingestion calls after Close.
var ErrClosed = errors.New("cluster: coordinator is closed")

// errAssignFailed marks a worker's refusal to accept an assign frame —
// almost always a checkpoint it could not restore. The recovery is
// different from a crash: re-place WITHOUT the checkpoint and replay the
// full journal instead.
var errAssignFailed = errors.New("cluster: shard assignment rejected")

// Config configures a Coordinator. Rules, Shards, Context, Groups and
// TypeOf must match every worker's WorkerConfig: both sides derive the
// same partition and exchange shard numbers as indices into it.
type Config struct {
	Rules   []shard.Rule
	Shards  int // max shards, as in shard.Config (0 = one per rule class)
	Workers []string

	Context pctx.Context
	Groups  func(reader string) []string
	TypeOf  func(object string) string

	// OnDetect receives the merged detections in deterministic
	// (fire, rule, seq) order — the same order the in-process sharded
	// engine and (for tie groups) the single engine deliver.
	OnDetect func(ruleID int, inst *event.Instance)

	// SyncEvery bounds how many observations are routed between delivery
	// barriers (default 64). Smaller = lower latency and less replay
	// after a crash; larger = less round-trip overhead.
	SyncEvery int

	// CheckpointEvery takes a worker checkpoint every N barriers
	// (default 4; negative disables automatic checkpoints). Checkpoints
	// bound the journal: observations since the last confirmed
	// checkpoint are the replay cost of a handoff.
	CheckpointEvery int

	// RetainJournal keeps the full observation journal instead of
	// truncating it at each confirmed checkpoint. It buys one extra
	// recovery: a checkpoint that later turns out corrupt can fall back
	// to a full replay. Memory grows with the stream.
	RetainJournal bool

	// Dial opens worker transports (default: 5s TCP dial). Fault
	// injection hooks in here.
	Dial func(addr string) (net.Conn, error)

	// BarrierTimeout bounds each worker's reply at a delivery barrier
	// (default 5s). A worker that misses it is presumed dead and its
	// shards are re-placed. A spurious timeout (slow worker, not dead)
	// is safe: the replacement replays from checkpoint + journal and the
	// merge path dedupes by detection sequence.
	BarrierTimeout time.Duration

	// LinkKeepalive, when > 0, runs the wire keepalive on each worker
	// link so silently dead links are detected between barriers.
	LinkKeepalive time.Duration

	// Checkpoint, when set, restores a cluster/v1 coordinator checkpoint
	// (SaveCheckpoint) before placing shards: workers resume from the
	// embedded engine states and the held fire group is preserved.
	Checkpoint io.Reader

	// Seed makes reconnect jitter reproducible in tests.
	Seed int64

	// OnHandoff observes shard re-placements (diagnostics). Called with
	// the coordinator lock held — it must not call back into the
	// coordinator.
	OnHandoff func(shardID, fromWorker, toWorker int, cause error)

	// PartitionGrace, when > 0, switches the first barrier failure on an
	// established placement from immediate re-placement to detached
	// mode: the coordinator keeps journaling and feeding the link's
	// replay ring without blocking on it, holds back delivery of
	// fire-time groups the detached shard has not confirmed (the
	// frontier clamp), and probes for reattachment at later barriers.
	// Only after the grace expires — or the ring fills — is the shard
	// re-placed from checkpoint + journal. Zero keeps the eager
	// re-placement behavior.
	PartitionGrace time.Duration

	// OnDetach observes a shard entering detached mode (diagnostics).
	// Called with the coordinator lock held, like OnHandoff.
	OnDetach func(shardID, worker int, cause error)

	// LeasePath, when set, names a lease file this coordinator must hold
	// to operate: New acquires it (bumping the lease term, which fences
	// any previous holder), every barrier renews it, and a failed
	// renewal — another holder took the term — fail-stops the
	// coordinator with ErrLeaseLost before it can issue another barrier.
	// LeaseHolder names this process in the file; LeaseTTL is how long
	// each renewal is valid (default 10s).
	LeasePath   string
	LeaseHolder string
	LeaseTTL    time.Duration

	// CheckpointPath, when set, publishes a cluster/v1 self-checkpoint
	// (atomic tmp+rename) after every checkpoint-cadence barrier — the
	// state a warm standby adopts at takeover.
	CheckpointPath string

	// Clock overrides the wall clock for the partition grace timer and
	// the lease (tests inject it). Defaults to time.Now.
	Clock func() time.Time
}

// jentry is one journaled routing decision: an observation fanned to a
// shard, or a clock advance. The journal since the last confirmed
// checkpoint is exactly what a replacement worker must replay.
type jentry struct {
	adv            bool
	reader, object string
	at             event.Time
}

// cdet is a merged-but-undelivered detection.
type cdet struct {
	fire event.Time
	rule int
	dseq uint64
	inst *event.Instance
}

// link is one shard's current placement: a reliable client to the
// hosting worker plus the mailbox its replies land in.
type link struct {
	shard, worker, epoch int
	client               *wire.ReliableClient
	box                  *mailbox
	assignSeq            uint64
	cap                  int  // ring capacity the client was dialed with
	synced               bool // at least one barrier completed on this placement
}

// mailbox collects worker replies off the link's read goroutine. It has
// its own lock — never the coordinator's — so reply dispatch can never
// deadlock against a coordinator blocked in SendFrame/Flush.
type mailbox struct {
	mu           sync.Mutex
	boot         string
	bootMismatch bool
	replies      map[uint64]wire.Message // keyed by echoed request seq
	errs         []wire.Message
	notify       chan struct{}
}

func (b *mailbox) ping() {
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// Coordinator places shard partitions onto remote workers, routes
// observations, and merges detections deterministically. All methods are
// safe for concurrent use; detection callbacks run on the caller's
// goroutine at delivery barriers, exactly like shard.Engine.
type Coordinator struct {
	cfg    Config
	part   *shard.Partition
	router *shard.Router

	mu        sync.Mutex
	links     []*link
	epoch     []int
	down      []bool
	journal   [][]jentry
	obsPend   [][]wire.BatchObs // per-shard observations journaled but not yet shipped (sealed into one batch frame)
	jbase     []int             // absolute stream index of journal[s][0] (0 = journal reaches stream start)
	ckStart   []int             // journal index the last confirmed checkpoint covers up to
	lastCk    []json.RawMessage // last confirmed worker checkpoint per shard
	ckSum     []uint32
	ckDetSeq  []uint64
	detHigh   []uint64 // highest merged detection seq per shard (dedupe)
	pending   []cdet
	now       event.Time
	sinceSync int
	sinceCkpt int
	ingested  uint64
	delivered uint64
	gen       uint64 // coordinator incarnation, bumped at each checkpoint restore
	inst      string // random per-incarnation token in every link's ClientID
	handoffs  int
	closed    bool
	err       error

	// Detached-shard (degraded) mode, active only with PartitionGrace.
	detached    []bool
	detachedAt  []time.Time
	detachCause []error
	forceRepl   []bool       // ring filled while detached: re-place at the next barrier
	probeAck    []uint64     // link ack high-water at the last failed probe
	frontier    []event.Time // per-shard clock through which detections are confirmed complete
	detaches    int

	lease *lease
}

// instanceID mints the random token that makes this coordinator
// incarnation's wire ClientIDs unique. Workers key feed state — and the
// reliable layer's dedupe-by-sequence high-water — by ClientID, so two
// incarnations must never share one: a cold-started coordinator reusing
// a live worker's previous identity would have every frame (assign,
// observations, barriers) silently re-acked as stale replay and
// dropped. The generation bump on checkpoint restore covers restarts
// that go through a checkpoint; the nonce covers the rest (cold starts
// against long-running workers, which all share gen 0).
func instanceID(clock func() time.Time) string {
	var b [5]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", clock().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// New validates the configuration, computes the partition, optionally
// restores a coordinator checkpoint, and places every shard. It fails if
// any initial placement cannot be established.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Rules) == 0 {
		return nil, errors.New("cluster: Config.Rules is empty")
	}
	seen := map[int]bool{}
	for _, r := range cfg.Rules {
		if seen[r.ID] {
			return nil, fmt.Errorf("cluster: duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: Config.Workers is empty")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 64
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 4
	}
	if cfg.BarrierTimeout <= 0 {
		cfg.BarrierTimeout = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if cfg.OnDetect == nil {
		cfg.OnDetect = func(int, *event.Instance) {}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	part := shard.NewPartition(cfg.Rules, cfg.Shards, cfg.Groups)
	n := part.NumShards()
	c := &Coordinator{
		cfg:         cfg,
		part:        part,
		router:      shard.NewRouter(part, cfg.Groups),
		links:       make([]*link, n),
		epoch:       make([]int, n),
		down:        make([]bool, len(cfg.Workers)),
		journal:     make([][]jentry, n),
		obsPend:     make([][]wire.BatchObs, n),
		jbase:       make([]int, n),
		ckStart:     make([]int, n),
		lastCk:      make([]json.RawMessage, n),
		ckSum:       make([]uint32, n),
		ckDetSeq:    make([]uint64, n),
		detHigh:     make([]uint64, n),
		detached:    make([]bool, n),
		detachedAt:  make([]time.Time, n),
		detachCause: make([]error, n),
		forceRepl:   make([]bool, n),
		probeAck:    make([]uint64, n),
		frontier:    make([]event.Time, n),
		inst:        instanceID(cfg.Clock),
		now:         event.MinTime,
	}
	if cfg.Checkpoint != nil {
		if err := c.restore(cfg.Checkpoint); err != nil {
			return nil, err
		}
	}
	for s := range c.frontier {
		c.frontier[s] = c.now
	}
	if cfg.LeasePath != "" {
		// Acquiring bumps the lease term, which fences the previous
		// holder: its next renewal sees the foreign term and fail-stops.
		l, err := acquireLease(cfg.LeasePath, cfg.LeaseHolder, cfg.LeaseTTL, cfg.Clock)
		if err != nil {
			return nil, err
		}
		c.lease = l
	}
	placement := placeShards(part, len(cfg.Workers))
	for s := 0; s < n; s++ {
		if err := c.startLinkLocked(s, placement[s], len(c.lastCk[s]) > 0); err != nil {
			c.abortLocked()
			c.releaseLeaseLocked()
			return nil, err
		}
	}
	return c, nil
}

// placeShards balances shards across workers: heaviest shard (by rule
// count) to the least-loaded worker, deterministic tie-break by index —
// the same LPT idea the partitioner uses for rules-to-shards.
func placeShards(part *shard.Partition, workers int) []int {
	n := part.NumShards()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by descending weight, stable
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if len(part.ByShard[a]) >= len(part.ByShard[b]) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	load := make([]int, workers)
	placement := make([]int, n)
	for _, s := range order {
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		placement[s] = best
		load[best] += len(part.ByShard[s])
	}
	return placement
}

// startLinkLocked establishes shard s on worker wkr under a fresh epoch:
// dial, assign (with the last confirmed checkpoint unless useCk is
// false), and replay the journal suffix the checkpoint does not cover.
func (c *Coordinator) startLinkLocked(s, wkr int, useCk bool) error {
	c.epoch[s]++
	box := &mailbox{replies: map[uint64]wire.Message{}, notify: make(chan struct{}, 1)}
	addr := c.cfg.Workers[wkr]
	bootDeadline := c.cfg.BarrierTimeout
	dial := func() (net.Conn, error) {
		conn, err := c.cfg.Dial(addr)
		if err != nil {
			return nil, err
		}
		boot, err := readBoot(conn, bootDeadline)
		if err != nil {
			conn.Close()
			return nil, err
		}
		box.mu.Lock()
		prev := box.boot
		if prev == "" {
			box.boot = boot
		} else if prev != boot {
			box.bootMismatch = true
		}
		box.mu.Unlock()
		if prev != "" && prev != boot {
			// The worker process restarted: its feed state is gone, so
			// replaying the unacked suffix into it would silently lose
			// everything before. Fail the dial; the barrier will notice
			// and re-place the shard from checkpoint + journal.
			box.ping()
			conn.Close()
			return nil, fmt.Errorf("cluster: worker %s restarted (boot %q, epoch established under %q)", addr, boot, prev)
		}
		return conn, nil
	}
	onFrame := func(m wire.Message) {
		box.mu.Lock()
		switch m.Type {
		case "dets", "ckptres":
			box.replies[m.Seq] = m
		case "error":
			box.errs = append(box.errs, m)
		}
		box.mu.Unlock()
		box.ping()
	}
	// Anything pending for this shard is already journaled, so the
	// replay below re-sends it on the fresh link; shipping it again as
	// a batch frame would double-apply it under the new link's seqs.
	c.obsPend[s] = nil
	replay := c.journal[s]
	if useCk {
		replay = replay[c.ckStart[s]:]
	}
	// The ring must hold the assign, the whole replay, and a full
	// barrier window without blocking: SendFrame runs under c.mu, so a
	// ring that fills against a dead worker would deadlock the
	// coordinator before the barrier timeout could trigger a handoff.
	buffer := len(replay) + 2*c.cfg.SyncEvery + 64
	client, err := wire.DialReliable(addr, wire.ReliableOptions{
		ClientID:     fmt.Sprintf("coord.%s.g%d.s%d.e%d", c.inst, c.gen, s, c.epoch[s]),
		Dial:         dial,
		Buffer:       buffer,
		Backoff:      10 * time.Millisecond,
		MaxBackoff:   500 * time.Millisecond,
		Seed:         c.cfg.Seed + int64(s)*1009 + int64(c.epoch[s])*7919,
		DrainTimeout: c.cfg.BarrierTimeout,
		Keepalive:    c.cfg.LinkKeepalive,
		OnFrame:      onFrame,
	})
	if err != nil {
		return fmt.Errorf("cluster: shard %d on %s: %w", s, addr, err)
	}
	lk := &link{shard: s, worker: wkr, epoch: c.epoch[s], client: client, box: box, cap: buffer}
	assign := wire.Message{Type: "assign", Shard: s}
	if useCk {
		assign.Ck, assign.Sum, assign.DetSeq = c.lastCk[s], c.ckSum[s], c.ckDetSeq[s]
	}
	seq, err := client.SendFrame(assign)
	if err != nil {
		client.Abort()
		return fmt.Errorf("cluster: shard %d on %s: %w", s, addr, err)
	}
	lk.assignSeq = seq
	for _, j := range replay {
		m := wire.Message{Type: "obs", Reader: j.reader, Object: j.object, AtNS: int64(j.at)}
		if j.adv {
			m = wire.Message{Type: "advance", AtNS: int64(j.at)}
		}
		if _, err := client.SendFrame(m); err != nil {
			client.Abort()
			return fmt.Errorf("cluster: shard %d on %s: replay: %w", s, addr, err)
		}
	}
	c.down[wkr] = false
	c.links[s] = lk
	return nil
}

// readBoot consumes exactly the boot announcement line a worker writes
// first on every connection. Byte-at-a-time so nothing past the newline
// is consumed — the wire client's own reader takes over from there.
func readBoot(conn net.Conn, timeout time.Duration) (string, error) {
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	defer conn.SetReadDeadline(time.Time{})
	line := make([]byte, 0, 64)
	buf := []byte{0}
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return "", fmt.Errorf("cluster: reading boot announcement: %w", err)
		}
		if buf[0] == '\n' {
			break
		}
		line = append(line, buf[0])
		if len(line) > 4096 {
			return "", errors.New("cluster: boot announcement exceeds 4096 bytes")
		}
	}
	var m wire.Message
	if err := json.Unmarshal(line, &m); err != nil || m.Type != "boot" || m.Msg == "" {
		return "", fmt.Errorf("cluster: malformed boot announcement %q", line)
	}
	return m.Msg, nil
}

// Ingest feeds one observation, fanning it out to the shards whose leaf
// key spaces can match it. Observations must arrive in non-decreasing
// timestamp order, exactly as for detect.Engine.
func (c *Coordinator) Ingest(o event.Observation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingestLocked(o)
}

// IngestBatch stably sorts a copy of the batch by timestamp and feeds
// it, atomically with respect to ordering failures.
func (c *Coordinator) IngestBatch(batch []event.Observation) error {
	if len(batch) == 0 {
		return nil
	}
	sorted := append([]event.Observation(nil), batch...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if c.err != nil {
			return c.err
		}
		return ErrClosed
	}
	if c.err != nil {
		return c.err
	}
	if c.now != event.MinTime && sorted[0].At < c.now {
		return fmt.Errorf("%w: batch starts at %s, coordinator at %s", detect.ErrOutOfOrder, sorted[0].At, c.now)
	}
	for _, o := range sorted {
		if err := c.ingestLocked(o); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) ingestLocked(o event.Observation) error {
	if c.closed {
		if c.err != nil {
			return c.err
		}
		return ErrClosed
	}
	if c.err != nil {
		return c.err
	}
	if c.now != event.MinTime && o.At < c.now {
		return fmt.Errorf("%w: got %s, coordinator at %s", detect.ErrOutOfOrder, o.At, c.now)
	}
	c.now = o.At
	c.ingested++
	for _, s := range c.router.ShardsFor(o.Reader) {
		c.journal[s] = append(c.journal[s], jentry{reader: o.Reader, object: o.Object, at: o.At})
		c.obsPend[s] = append(c.obsPend[s], wire.BatchObs{Reader: o.Reader, Object: o.Object, AtNS: int64(o.At)})
		if len(c.obsPend[s]) >= maxShipBatch {
			c.sealObsLocked(s)
		}
	}
	c.sinceSync++
	if c.sinceSync >= c.cfg.SyncEvery {
		return c.barrierLocked(false, false, false)
	}
	return nil
}

// maxShipBatch caps how many observations ride one coordinator→worker
// batch frame. The barrier cadence (SyncEvery) usually seals first;
// this bound keeps a single frame's JSON body small enough that a slow
// link never stalls behind one giant write.
const maxShipBatch = 256

// sealObsLocked ships shard s's pending observations as one sequenced
// batch frame — the amortization that makes the coordinator's fan-out
// cost one link write per read cycle instead of one per observation.
// A lone pending observation goes as a plain obs frame (same bytes the
// journal replay path emits). The pending slice is handed to the wire
// layer, which marshals it asynchronously, so it is released rather
// than recycled. Must run before any non-obs frame is sent on the
// shard's link: a sync or advance overtaking unsent observations would
// move the worker's clock past them and poison the feed with
// out-of-order errors.
func (c *Coordinator) sealObsLocked(s int) {
	pend := c.obsPend[s]
	if len(pend) == 0 {
		return
	}
	c.obsPend[s] = nil
	if len(pend) == 1 {
		c.sendShardLocked(s, wire.Message{Type: "obs", Reader: pend[0].Reader, Object: pend[0].Object, AtNS: pend[0].AtNS})
		return
	}
	c.sendShardLocked(s, wire.Message{Type: "batch", Batch: pend})
}

// sendShardLocked routes one journaled frame to a shard's current link.
// Attached links use the blocking send — their ring is sized for a full
// barrier window, so it cannot fill. A detached link must never stall
// the healthy shards behind a partitioned worker, so it gets the
// non-blocking send; when its ring finally fills, the partition has
// outlasted what the link can absorb, and nothing more may go down this
// link (a gap in the applied stream would silently corrupt the worker's
// detection state). The link is severed on the spot and the shard is
// re-placed from checkpoint + journal at the next barrier.
func (c *Coordinator) sendShardLocked(s int, m wire.Message) {
	lk := c.links[s]
	if !c.detached[s] {
		// A send failure here is not fatal: the journal has the entry,
		// and the barrier heals any gap by re-placing and replaying.
		_, _ = lk.client.SendFrame(m)
		return
	}
	if c.forceRepl[s] {
		return // ring gave out earlier; the link is already severed
	}
	if _, err := lk.client.TrySendFrame(m); errors.Is(err, wire.ErrRingFull) {
		c.forceRepl[s] = true
		lk.client.Abort()
	}
}

// AdvanceTo moves virtual time forward on every shard with no
// intervening observations, so negation windows can expire.
func (c *Coordinator) AdvanceTo(t event.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if c.err != nil {
			return c.err
		}
		return ErrClosed
	}
	if c.err != nil {
		return c.err
	}
	if t < c.now {
		return fmt.Errorf("%w: AdvanceTo(%s), coordinator at %s", detect.ErrOutOfOrder, t, c.now)
	}
	c.now = t
	m := wire.Message{Type: "advance", AtNS: int64(t)}
	for s := range c.links {
		c.journal[s] = append(c.journal[s], jentry{adv: true, at: t})
		c.sealObsLocked(s) // pending observations precede the advance on this link
		c.sendShardLocked(s, m)
	}
	c.sinceSync++
	if c.sinceSync >= c.cfg.SyncEvery {
		return c.barrierLocked(false, false, false)
	}
	return nil
}

// Sync forces a delivery barrier: every shard catches up to the
// coordinator's clock and every pending detection is delivered in merged
// order.
func (c *Coordinator) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	err := c.barrierLocked(false, true, false)
	return err
}

// Close completes every pending detection (each shard fires its
// remaining pseudo events), delivers the final merged batch, and tears
// down the worker links. Idempotent; returns the first failure, if any.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.barrierLocked(true, true, false)
	c.releaseLeaseLocked()
	c.abortLocked()
	return c.err
}

func (c *Coordinator) releaseLeaseLocked() {
	if c.lease != nil {
		_ = c.lease.release()
		c.lease = nil
	}
}

// Abort tears the coordinator down without draining — the crash
// simulation for recovery tests. Worker links are severed; whatever was
// not delivered stays undelivered (and is recovered by a restart from
// the last SaveCheckpoint).
func (c *Coordinator) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.abortLocked()
}

func (c *Coordinator) abortLocked() {
	if c.closed {
		return
	}
	for _, lk := range c.links {
		if lk != nil {
			lk.client.Abort()
		}
	}
	c.closed = true
}

// barrierLocked runs one delivery barrier: every shard catches up to the
// coordinator's clock (strictly — pseudo events due exactly now stay
// pending), ships its buffered detections, and — on the checkpoint
// cadence — a fresh checkpoint. Failures trigger handoff and replay
// per shard. Completed fire-time groups are delivered; deliverAll also
// flushes the group at the current instant (Sync/Close semantics).
func (c *Coordinator) barrierLocked(drain, deliverAll, forceCkpt bool) error {
	c.sinceSync = 0
	if c.lease != nil {
		// Renew before touching any worker: a failed renewal means a
		// standby bumped the term and owns the cluster now. Fail-stop
		// here — issuing one more barrier as a zombie could race the
		// successor's assigns.
		if err := c.lease.renew(); err != nil {
			if c.err == nil {
				c.err = err
			}
			c.abortLocked()
			return c.err
		}
	}
	ckpt := forceCkpt
	if !drain && !forceCkpt && c.cfg.CheckpointEvery > 0 {
		c.sinceCkpt++
		if c.sinceCkpt >= c.cfg.CheckpointEvery {
			ckpt = true
			c.sinceCkpt = 0
		}
	}
	for s := range c.links {
		if err := c.syncShardLocked(s, ckpt && !drain, drain); err != nil {
			if c.err == nil {
				c.err = err
			}
			return c.err
		}
	}
	c.deliverPendingLocked(deliverAll)
	if ckpt && !drain && c.cfg.CheckpointPath != "" && c.err == nil {
		if err := c.publishCheckpointLocked(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}

// syncShardLocked drives one shard through the barrier. An established
// placement that fails enters detached mode when PartitionGrace allows
// it; otherwise (and once the grace expires, the ring fills, or a drain
// demands completion) the shard is re-placed on failure until the
// barrier succeeds or placements are exhausted.
func (c *Coordinator) syncShardLocked(s int, ckpt, drain bool) error {
	if c.detached[s] {
		expired := c.cfg.Clock().Sub(c.detachedAt[s]) >= c.cfg.PartitionGrace
		// A boot mismatch on reconnect means the worker process
		// restarted and the feed's engine state is gone — the one thing
		// detached mode was preserving. Re-place immediately.
		if !drain && !c.forceRepl[s] && !expired && !linkBootMismatch(c.links[s]) {
			return c.probeDetachedLocked(s, ckpt)
		}
		// Grace over (or the ring gave out, or a drain needs the shard
		// complete): give up on waiting the partition out.
		cause := c.detachCause[s]
		c.clearDetachLocked(s)
		if herr := c.handoffLocked(s, cause); herr != nil {
			return herr
		}
	}
	maxAttempts := 2*len(c.cfg.Workers) + 3
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		dets, err := c.barrierAttemptLocked(s, ckpt, drain)
		if err == nil {
			c.mergeDetsLocked(s, dets)
			c.links[s].synced = true
			c.frontier[s] = c.now
			return nil
		}
		lastErr = err
		if c.cfg.PartitionGrace > 0 && !drain && c.links[s].synced && !errors.Is(err, errAssignFailed) {
			// The incumbent placement completed barriers before — its
			// engine state is worth waiting for. Detach instead of
			// discarding it: the journal keeps growing, delivery clamps
			// to this shard's frontier, and a probe reattaches when the
			// partition heals.
			c.detachLocked(s, err)
			return nil
		}
		if herr := c.handoffLocked(s, err); herr != nil {
			return herr
		}
	}
	return fmt.Errorf("cluster: shard %d: giving up after %d placements: %w", s, maxAttempts, lastErr)
}

// probeDetachedLocked checks a detached shard for signs of life without
// paying a barrier timeout against a link that is still dead: a real
// barrier attempt is made only when the worker acked something since
// the last probe (or the ring drained completely) and the ring has
// headroom for the barrier frames, so the attempt cannot block under
// the coordinator lock. A failed attempt leaves the shard detached —
// the grace timer, not the probe, decides when to give up on the
// placement.
func (c *Coordinator) probeDetachedLocked(s int, ckpt bool) error {
	lk := c.links[s]
	acked := lk.client.Acked()
	alive := acked > c.probeAck[s] || lk.client.Unacked() == 0
	if !alive || lk.client.Unacked()+8 > lk.cap {
		return nil
	}
	dets, err := c.barrierAttemptLocked(s, ckpt, false)
	if err != nil {
		c.probeAck[s] = lk.client.Acked()
		return nil
	}
	c.clearDetachLocked(s)
	c.mergeDetsLocked(s, dets)
	lk.synced = true
	c.frontier[s] = c.now
	return nil
}

// linkBootMismatch reports whether the link's worker reconnected with a
// different boot ID — the process restarted, so the feed state detached
// mode was preserving no longer exists.
func linkBootMismatch(lk *link) bool {
	lk.box.mu.Lock()
	defer lk.box.mu.Unlock()
	return lk.box.bootMismatch
}

func (c *Coordinator) detachLocked(s int, cause error) {
	lk := c.links[s]
	c.detached[s] = true
	c.detachedAt[s] = c.cfg.Clock()
	c.detachCause[s] = cause
	c.forceRepl[s] = false
	c.probeAck[s] = lk.client.Acked()
	c.detaches++
	if cb := c.cfg.OnDetach; cb != nil {
		cb(s, lk.worker, cause)
	}
}

func (c *Coordinator) clearDetachLocked(s int) {
	c.detached[s] = false
	c.detachCause[s] = nil
	c.forceRepl[s] = false
}

// barrierAttemptLocked sends sync (or drain) — plus ckpt when due — to
// the shard's current placement and waits for the replies.
func (c *Coordinator) barrierAttemptLocked(s int, ckpt, drain bool) ([]wire.ClusterDet, error) {
	c.sealObsLocked(s) // the sync frame must not overtake unsent observations
	lk := c.links[s]
	deadline := time.Now().Add(c.cfg.BarrierTimeout)
	typ := "sync"
	if drain {
		typ = "drain"
	}
	// DetSeq carries the coordinator's merged high-water mark: the
	// worker trims its detection outbox up to it and answers with
	// everything still unconfirmed beyond it.
	syncSeq, err := lk.client.SendFrame(wire.Message{Type: typ, AtNS: int64(c.now), DetSeq: c.detHigh[s]})
	if err != nil {
		return nil, err
	}
	var ckSeq uint64
	var ckPos int
	if ckpt {
		ckPos = len(c.journal[s])
		if ckSeq, err = lk.client.SendFrame(wire.Message{Type: "ckpt"}); err != nil {
			return nil, err
		}
	}
	if err := lk.client.Flush(time.Until(deadline)); err != nil {
		// A rejected assign shows up here first: the worker refuses to
		// ack (so the flush times out) and reports why in an error
		// frame. Classify before concluding the worker is dead — the
		// recovery for a bad checkpoint is a full replay, not a blind
		// re-placement that would carry the same bad checkpoint along.
		return nil, classifyLinkErr(lk, err)
	}
	sm, err := c.awaitReplyLocked(lk, syncSeq, deadline)
	if err != nil {
		return nil, err
	}
	c.sweepStrayDetsLocked(lk, syncSeq)
	if ckpt {
		cm, err := c.awaitReplyLocked(lk, ckSeq, deadline)
		if err != nil {
			// The sync dets are already merged (dedupe makes re-merge
			// after the handoff harmless); only the checkpoint is lost.
			c.mergeDetsLocked(s, sm.CDets)
			return nil, err
		}
		c.lastCk[s] = append(json.RawMessage(nil), cm.Ck...)
		c.ckSum[s] = cm.Sum
		c.ckDetSeq[s] = cm.DetSeq
		if c.cfg.RetainJournal {
			c.ckStart[s] = ckPos
		} else {
			c.journal[s] = append([]jentry(nil), c.journal[s][ckPos:]...)
			c.jbase[s] += ckPos
			c.ckStart[s] = 0
		}
	}
	return sm.CDets, nil
}

// sweepStrayDetsLocked merges and discards dets replies to earlier
// (stale, replayed) sync requests that accumulated in the mailbox while
// the link was flapping — a detached link can answer several old syncs
// in one reconnect replay. Each stray is a subset of the outbox-backed
// reply just received for the current sync, so merging them (ascending
// request seq, keeping dseq monotone for the dedupe) is pure hygiene:
// the mailbox stays bounded and no out-of-band reply is left behind.
func (c *Coordinator) sweepStrayDetsLocked(lk *link, before uint64) {
	lk.box.mu.Lock()
	var seqs []uint64
	for seq, r := range lk.box.replies {
		if seq < before && r.Type == "dets" {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	batches := make([][]wire.ClusterDet, 0, len(seqs))
	for _, seq := range seqs {
		batches = append(batches, lk.box.replies[seq].CDets)
		delete(lk.box.replies, seq)
	}
	lk.box.mu.Unlock()
	for _, b := range batches {
		c.mergeDetsLocked(lk.shard, b)
	}
}

// classifyLinkErr upgrades a generic link failure to errAssignFailed
// when the link's mailbox holds the worker's rejection of our assign.
func classifyLinkErr(lk *link, err error) error {
	lk.box.mu.Lock()
	defer lk.box.mu.Unlock()
	for _, e := range lk.box.errs {
		if e.Seq == lk.assignSeq {
			return fmt.Errorf("%w: %s", errAssignFailed, e.Msg)
		}
	}
	return err
}

// awaitReplyLocked waits for the reply echoing request seq on the link's
// mailbox, surfacing worker error frames and boot mismatches.
func (c *Coordinator) awaitReplyLocked(lk *link, seq uint64, deadline time.Time) (wire.Message, error) {
	box := lk.box
	for {
		box.mu.Lock()
		if m, ok := box.replies[seq]; ok {
			delete(box.replies, seq)
			box.mu.Unlock()
			return m, nil
		}
		for _, e := range box.errs {
			if e.Seq == lk.assignSeq {
				box.mu.Unlock()
				return wire.Message{}, fmt.Errorf("%w: %s", errAssignFailed, e.Msg)
			}
		}
		if len(box.errs) > 0 {
			e := box.errs[0]
			box.mu.Unlock()
			return wire.Message{}, fmt.Errorf("cluster: shard %d: worker %s: %s", lk.shard, c.cfg.Workers[lk.worker], e.Msg)
		}
		mismatch := box.bootMismatch
		box.mu.Unlock()
		if mismatch {
			return wire.Message{}, fmt.Errorf("cluster: shard %d: worker %s restarted mid-epoch", lk.shard, c.cfg.Workers[lk.worker])
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return wire.Message{}, fmt.Errorf("cluster: shard %d: no barrier reply from %s within %s (presumed dead)", lk.shard, c.cfg.Workers[lk.worker], c.cfg.BarrierTimeout)
		}
		timer := time.NewTimer(wait)
		select {
		case <-box.notify:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// handoffLocked abandons shard s's current placement and re-places it on
// the next live worker (round-robin; when every worker is marked down
// the marks reset — a restarted worker is indistinguishable from a dead
// one until dialed). An assign rejection falls back to a full journal
// replay without the checkpoint, when the journal still reaches back far
// enough.
func (c *Coordinator) handoffLocked(s int, cause error) error {
	c.clearDetachLocked(s)
	old := c.links[s]
	old.client.Abort()
	c.down[old.worker] = true
	c.handoffs++

	useCk := len(c.lastCk[s]) > 0
	if useCk && crc32.ChecksumIEEE(c.lastCk[s]) != c.ckSum[s] {
		// The stored checkpoint no longer matches the checksum the worker
		// computed over it — it rotted in coordinator memory. Catch it
		// here rather than shipping it: corrupt bytes may not even be
		// valid JSON, in which case the wire writer could never encode
		// the assign and the worker would never see it to reject it.
		cause = fmt.Errorf("%w: stored checkpoint for shard %d fails its checksum", errAssignFailed, s)
	}
	if errors.Is(cause, errAssignFailed) {
		if c.jbase[s] != 0 {
			return fmt.Errorf("cluster: shard %d: checkpoint rejected and journal was truncated past it (enable RetainJournal for full-replay recovery): %w", s, cause)
		}
		// Drop the rejected checkpoint: the journal reaches back to the
		// beginning, so the replacement rebuilds from scratch.
		c.lastCk[s], c.ckSum[s], c.ckDetSeq[s] = nil, 0, 0
		c.ckStart[s] = 0
		useCk = false
		// The old worker was not at fault — the checkpoint was. Do not
		// hold the rejection against it.
		c.down[old.worker] = false
	}

	n := len(c.cfg.Workers)
	next := -1
	for i := 1; i <= n; i++ {
		w := (old.worker + i) % n
		if !c.down[w] {
			next = w
			break
		}
	}
	if next == -1 {
		for i := range c.down {
			c.down[i] = false
		}
		next = (old.worker + 1) % n
	}
	if cb := c.cfg.OnHandoff; cb != nil {
		cb(s, old.worker, next, cause)
	}
	return c.startLinkLocked(s, next, useCk)
}

// mergeDetsLocked merges one shard's barrier detections into the pending
// set, deduping by per-shard detection sequence: a replay after a crash
// or spurious handoff re-delivers detections the coordinator already
// merged, and they must not double-fire.
func (c *Coordinator) mergeDetsLocked(s int, dets []wire.ClusterDet) {
	for _, d := range dets {
		if d.Dseq <= c.detHigh[s] {
			continue
		}
		c.detHigh[s] = d.Dseq
		c.pending = append(c.pending, cdet{
			fire: event.Time(d.FireNS),
			rule: d.Rule,
			dseq: d.Dseq,
			inst: &event.Instance{
				Begin: event.Time(d.BeginNS),
				End:   event.Time(d.EndNS),
				Binds: d.Binds,
				Seq:   d.InstSeq,
			},
		})
	}
}

// deliverPendingLocked sorts the undelivered detections by
// (fire, rule, seq) and invokes OnDetect for every completed fire-time
// group — those strictly before the delivery cut. The group at the
// current instant stays pending unless all is set, exactly as in
// shard.Engine.deliverPending: it may still grow, and delivering it
// early would make tie order depend on where the barrier fell.
//
// The cut is normally the coordinator's clock, but a detached shard
// clamps it to its frontier — the clock through which that shard's
// detections are confirmed complete. A fire-time group past a detached
// frontier may still gain members when the shard reattaches and its
// backlog syncs, so delivering it early would break the deterministic
// merge order. Delivery latency degrades during a partition; order
// never does.
func (c *Coordinator) deliverPendingLocked(all bool) {
	sort.Slice(c.pending, func(i, j int) bool {
		a, b := c.pending[i], c.pending[j]
		if a.fire != b.fire {
			return a.fire < b.fire
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		return a.dseq < b.dseq
	})
	cut := c.now
	for s := range c.frontier {
		if c.frontier[s] < cut {
			cut = c.frontier[s]
		}
	}
	n := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].fire >= cut })
	if all && cut == c.now {
		// Only a fully confirmed cluster may flush the group at the
		// current instant (Sync/Close semantics).
		n = len(c.pending)
	}
	for _, d := range c.pending[:n] {
		c.delivered++
		c.cfg.OnDetect(d.rule, d.inst)
	}
	c.pending = append(c.pending[:0], c.pending[n:]...)
}

// Partition exposes the rule-to-shard assignment.
func (c *Coordinator) Partition() *shard.Partition { return c.part }

// Shards returns the number of placed shard engines.
func (c *Coordinator) Shards() int { return c.part.NumShards() }

// Placement reports which worker currently hosts each shard.
func (c *Coordinator) Placement() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := make([]int, len(c.links))
	for s, lk := range c.links {
		p[s] = lk.worker
	}
	return p
}

// Handoffs reports how many shard re-placements have happened.
func (c *Coordinator) Handoffs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handoffs
}

// Detached reports how many shards are currently in detached mode.
func (c *Coordinator) Detached() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.detached {
		if d {
			n++
		}
	}
	return n
}

// Detaches reports how many times any shard has entered detached mode.
func (c *Coordinator) Detaches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.detaches
}

// Ingested reports how many observations the coordinator has accepted —
// including everything a restored checkpoint already covered. A stream
// replayed after failover resumes at this offset.
func (c *Coordinator) Ingested() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingested
}

// Delivered reports how many detections OnDetect has received, counting
// those a restored checkpoint recorded as delivered by the previous
// incarnation — the ordinal base a failover driver dedupes re-delivered
// detections against.
func (c *Coordinator) Delivered() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Now returns the coordinator's virtual clock.
func (c *Coordinator) Now() event.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Err returns the first unrecoverable failure, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// InjectCheckpointCorruption mutates the stored checkpoint for one shard
// — the chaos hook proving the corrupt-checkpoint fallback (assign
// rejection → full journal replay). A no-op when no checkpoint has been
// taken yet.
func (c *Coordinator) InjectCheckpointCorruption(s int, mutate func([]byte) []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s < 0 || s >= len(c.lastCk) || len(c.lastCk[s]) == 0 {
		return
	}
	c.lastCk[s] = mutate(append([]byte(nil), c.lastCk[s]...))
}
