package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/shard"
	"rcep/internal/faults"
)

// workerProc simulates one worker process: a Worker behind a real TCP
// listener, with enough scaffolding to crash it (kill), bring it back on
// the same address with a fresh boot ID (restart), sever its live
// connections while keeping its state (partition), and slow its writes.
type workerProc struct {
	t    *testing.T
	base WorkerConfig

	mu    sync.Mutex
	addr  string
	ln    net.Listener
	w     *Worker
	boot  int
	alive bool
	slow  bool
	held  bool
	conns map[net.Conn]bool
}

func newWorkerProc(t *testing.T, base WorkerConfig) *workerProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	p := &workerProc{t: t, base: base, addr: ln.Addr().String(), conns: map[net.Conn]bool{}}
	p.start(ln)
	return p
}

func (p *workerProc) start(ln net.Listener) {
	p.mu.Lock()
	p.boot++
	cfg := p.base
	cfg.BootID = fmt.Sprintf("boot-%d-%s", p.boot, p.addr)
	w, err := NewWorker(cfg)
	if err != nil {
		p.mu.Unlock()
		p.t.Fatalf("NewWorker: %v", err)
	}
	p.ln, p.w, p.alive = ln, w, true
	p.mu.Unlock()
	go w.Serve(&trackingListener{Listener: ln, p: p})
}

// kill crashes the worker process: listener gone, connections severed,
// engine state lost (the next incarnation is a brand-new Worker).
func (p *workerProc) kill() {
	p.mu.Lock()
	if !p.alive {
		p.mu.Unlock()
		return
	}
	p.alive = false
	ln, w := p.ln, p.w
	p.mu.Unlock()
	ln.Close()
	w.Stop()
}

// restart rebinds the same address with a fresh boot ID.
func (p *workerProc) restart() {
	p.mu.Lock()
	if p.alive {
		p.mu.Unlock()
		return
	}
	addr := p.addr
	p.mu.Unlock()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		p.t.Fatalf("restart rebind %s: %v", addr, err)
	}
	p.start(ln)
}

// partition severs every live connection. The worker (and its feed
// state) survives, so reconnects resume transparently via wire replay.
func (p *workerProc) partition() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// holdPartition severs every live connection AND rejects reconnects
// until heal — a held partition, not a blip. The worker process and its
// feed state survive throughout.
func (p *workerProc) holdPartition() {
	p.mu.Lock()
	p.held = true
	p.mu.Unlock()
	p.partition()
}

// heal ends a held partition: subsequent dials are accepted again.
func (p *workerProc) heal() {
	p.mu.Lock()
	p.held = false
	p.mu.Unlock()
}

func (p *workerProc) isHeld() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.held
}

// setSlow makes every subsequent write lag.
func (p *workerProc) setSlow() {
	p.mu.Lock()
	p.slow = true
	p.mu.Unlock()
}

// setFast undoes setSlow.
func (p *workerProc) setFast() {
	p.mu.Lock()
	p.slow = false
	p.mu.Unlock()
}

func (p *workerProc) isSlow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slow
}

type trackingListener struct {
	net.Listener
	p *workerProc
}

func (l *trackingListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.p.isHeld() {
			// Held partition: the dial succeeds at the TCP layer but the
			// connection dies immediately, like a firewall RST.
			c.Close()
			continue
		}
		tc := &trackConn{Conn: c, p: l.p}
		l.p.mu.Lock()
		l.p.conns[tc] = true
		l.p.mu.Unlock()
		return tc, nil
	}
}

type trackConn struct {
	net.Conn
	p *workerProc
}

func (c *trackConn) Write(b []byte) (int, error) {
	if c.p.isSlow() {
		time.Sleep(2 * time.Millisecond)
	}
	return c.Conn.Write(b)
}

func (c *trackConn) Close() error {
	c.p.mu.Lock()
	delete(c.p.conns, c)
	c.p.mu.Unlock()
	return c.Conn.Close()
}

// runCluster drives the stream through a real multi-process-shaped
// cluster (N workers over TCP), applying the fault plan between
// ingestions, and returns the merged detection sequence.
func runCluster(t *testing.T, seed int64, workers int, rules []shard.Rule, stream []event.Observation, plan *faults.ClusterPlan) ([]string, int, error) {
	t.Helper()
	return runClusterMode(t, seed, workers, rules, stream, plan, false)
}

// runClusterMode is runCluster with the workers' hot path selectable:
// interpreted = true runs every worker engine through the AST
// interpreter (the oracle mode of the compiled-plan equivalence suite).
func runClusterMode(t *testing.T, seed int64, workers int, rules []shard.Rule, stream []event.Observation, plan *faults.ClusterPlan, interpreted bool) ([]string, int, error) {
	t.Helper()
	base := WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf, Interpreted: interpreted}
	procs := make([]*workerProc, workers)
	addrs := make([]string, workers)
	for i := range procs {
		procs[i] = newWorkerProc(t, base)
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	var got []string
	coord, err := New(Config{
		Rules:           rules,
		Shards:          4,
		Workers:         addrs,
		Groups:          genGroups,
		TypeOf:          genTypeOf,
		OnDetect:        func(rid int, inst *event.Instance) { got = append(got, sig(rid, inst)) },
		SyncEvery:       3 + r.Intn(9),
		CheckpointEvery: 1 + r.Intn(3),
		RetainJournal:   true,
		BarrierTimeout:  time.Second,
		Seed:            seed,
	})
	if err != nil {
		return nil, 0, err
	}
	defer coord.Abort()

	var plans []faults.ClusterFault
	if plan != nil {
		plans = plan.Faults
	}
	fi := 0
	killed := map[int]int{}
	for i, o := range stream {
		for fi < len(plans) && plans[fi].AtObs <= i {
			applyFault(procs, coord, plans[fi], killed)
			fi++
		}
		if err := coord.Ingest(o); err != nil {
			return got, coord.Handoffs(), err
		}
	}
	// Any worker still down at the end comes back before the drain: the
	// coordinator needs at least one live worker per shard to finish.
	for _, p := range procs {
		p.restart()
	}
	if err := coord.Close(); err != nil {
		return got, coord.Handoffs(), err
	}
	return got, coord.Handoffs(), nil
}

// killTarget maps the plan's worker choice onto a worker that currently
// hosts at least one shard, so every kill schedule forces a handoff. The
// union-find partition can yield fewer shards than workers; killing a
// shard-less spare would be a non-event.
func killTarget(coord *Coordinator, w, n int) int {
	hosts := map[int]bool{}
	for _, h := range coord.Placement() {
		hosts[h] = true
	}
	var list []int
	for i := 0; i < n; i++ {
		if hosts[i] {
			list = append(list, i)
		}
	}
	if len(list) == 0 {
		return w % n
	}
	return list[w%len(list)]
}

func applyFault(procs []*workerProc, coord *Coordinator, f faults.ClusterFault, killed map[int]int) {
	switch f.Kind {
	case faults.FaultKill:
		target := killTarget(coord, f.Worker, len(procs))
		killed[f.Worker] = target
		procs[target].kill()
	case faults.FaultRestart:
		target, ok := killed[f.Worker]
		if !ok {
			target = f.Worker % len(procs)
		}
		procs[target].restart()
	case faults.FaultPartition:
		procs[f.Worker%len(procs)].partition()
	case faults.FaultSlow:
		procs[f.Worker%len(procs)].setSlow()
	case faults.FaultCorruptCheckpoint:
		coord.InjectCheckpointCorruption(f.Worker%coord.Shards(), func(b []byte) []byte {
			b[len(b)/2] ^= 0x5a
			b[len(b)/3] ^= 0xa5
			return b
		})
	}
}
