// Package cluster composes the acked, replayable wire protocol with the
// sharded detection engine into a crash-tolerant distributed mode: a
// coordinator places shard partitions onto remote workers, routes
// observations with the reader-keyed fan-out, and merges detections back
// into the same deterministic (fire, rule, seq) order a single process
// would produce — invariant to worker count and crash timing.
//
// Worker side. A Worker hosts any number of shard feeds, one per
// coordinator link. Each feed is driven by the sequenced frame stream of
// one wire.ReliableClient (ClientID "coord.<inst>.g<gen>.s<shard>.e<epoch>",
// where inst is a random per-incarnation token and gen is the
// coordinator generation — bumped at every checkpoint restore — so a
// restarted coordinator never collides with frames and cached replies
// addressed to its predecessor's identities), so the
// worker inherits the wire layer's dedupe-by-sequence guarantee: after a
// reconnect, replayed frames are re-acked and skipped, and reply-bearing
// frames are re-answered — sync/drain from the detection outbox, ckpt
// from a cached-reply window — so a reply lost with the connection is
// never lost for good.
//
// The first frame on every accepted connection is a boot announcement
// ({"type":"boot","msg":<boot id>}). A coordinator that reconnects and
// sees a different boot ID knows the worker process restarted and lost
// the feed's engine state — replaying into it would silently drop every
// detection since the last checkpoint — so it re-places the shard
// instead. A restarted worker also refuses (error frame, no ack, close)
// any sequenced frame for a feed it does not host, as a second line of
// defense.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/core/shard"
	"rcep/internal/wire"
)

// WorkerConfig configures a cluster worker. Rules, Shards, Context,
// Groups and TypeOf must match the coordinator's exactly: both sides run
// shard.NewPartition over them and the shard numbers in assign frames
// are indices into that shared partition.
type WorkerConfig struct {
	Rules   []shard.Rule
	Shards  int
	Context pctx.Context
	Groups  func(reader string) []string
	TypeOf  func(object string) string

	IndexPrimitives    bool
	MaxPartitionBuffer int
	MaxHistory         int
	MaxOpenSequence    int

	// Interpreted selects the per-event AST interpreter in this worker's
	// shard engines instead of the compiled plans (oracle mode).
	Interpreted bool

	// BootID names this worker incarnation. It must change across
	// process restarts (a PID + start-time string, a counter in tests):
	// the coordinator uses it to distinguish a restarted worker (engine
	// state gone, shard must be re-placed) from a transient network
	// failure (state intact, replay suffices).
	BootID string

	// OutboxDir, when set, backs each feed's detection outbox with a
	// wire spool WAL (one file per hosted shard) so detections fired but
	// never coordinator-confirmed survive on disk. Empty keeps the
	// outbox memory-only; the protocol is identical either way.
	OutboxDir string
}

// Worker hosts shard detection engines for a cluster coordinator.
type Worker struct {
	cfg  WorkerConfig
	part *shard.Partition

	mu      sync.Mutex
	feeds   map[string]*feed
	conns   map[net.Conn]bool
	closing bool
	wg      sync.WaitGroup
}

// feed is the state of one coordinator link: one shard engine driven by
// one sequenced frame stream.
type feed struct {
	shard   int
	lastSeq uint64
	eng     *detect.Engine
	dseq    uint64
	obs     uint64
	out     *outbox
	drained bool

	// replies caches the last few checkpoint responses keyed by request
	// sequence. If the connection dies after the worker sent a ckptres
	// but before the coordinator received it, the replayed request is
	// stale (already applied) — the cached reply is the only copy.
	// Sync/drain replies need no cache: the outbox answers stale
	// replays with the full unconfirmed set, which the coordinator's
	// dseq dedupe reduces to exactly the lost reply's content.
	replies map[uint64]wire.Message
	order   []uint64
}

const replyCacheSize = 8

func (f *feed) cache(seq uint64, m wire.Message) {
	f.replies[seq] = m
	f.order = append(f.order, seq)
	for len(f.order) > replyCacheSize {
		delete(f.replies, f.order[0])
		f.order = f.order[1:]
	}
}

// NewWorker validates the configuration and computes the shared
// partition. Serve then accepts coordinator links.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if len(cfg.Rules) == 0 {
		return nil, errors.New("cluster: WorkerConfig.Rules is empty")
	}
	seen := map[int]bool{}
	for _, r := range cfg.Rules {
		if seen[r.ID] {
			return nil, fmt.Errorf("cluster: duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	if cfg.BootID == "" {
		return nil, errors.New("cluster: WorkerConfig.BootID is required")
	}
	return &Worker{
		cfg:   cfg,
		part:  shard.NewPartition(cfg.Rules, cfg.Shards, cfg.Groups),
		feeds: map[string]*feed{},
		conns: map[net.Conn]bool{},
	}, nil
}

// NumShards returns the number of partitions this worker can host.
func (w *Worker) NumShards() int { return w.part.NumShards() }

// Serve accepts coordinator connections until the listener is closed.
func (w *Worker) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// Stop abruptly severs every connection and waits for the handlers. It
// models a crash for the coordinator's purposes — no draining, no
// farewell — but the in-process feed state survives, so Stop+Serve on a
// new listener with the SAME Worker behaves like a network partition,
// while a NEW Worker (fresh BootID) behaves like a process restart.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.closing = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	w.mu.Lock()
	w.closing = false
	w.mu.Unlock()
}

func (w *Worker) handle(conn net.Conn) {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		conn.Close()
		return
	}
	w.wg.Add(1)
	w.conns[conn] = true
	w.mu.Unlock()
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
		w.wg.Done()
	}()

	var wmu sync.Mutex
	enc := json.NewEncoder(conn)
	reply := func(m wire.Message) {
		wmu.Lock()
		_ = enc.Encode(m)
		wmu.Unlock()
	}

	// Boot announcement first, before any request: the coordinator's
	// dialer reads it to detect restarts before replaying anything.
	reply(wire.Message{Type: "boot", Msg: w.cfg.BootID})

	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var m wire.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		switch m.Type {
		case "hello":
			w.mu.Lock()
			var last uint64
			if f := w.feeds[m.ClientID]; f != nil {
				last = f.lastSeq
			}
			w.mu.Unlock()
			reply(wire.Message{Type: "ack", Seq: last})
		case "ping":
			reply(wire.Message{Type: "pong"})
		case "pong":
		case "bye":
			w.mu.Lock()
			var obs, dets uint64
			if f := w.feeds[m.ClientID]; f != nil {
				obs, dets = f.obs, f.dseq
			}
			w.mu.Unlock()
			reply(wire.Message{Type: "stats", Observations: obs, Detections: dets})
			return
		case "assign", "obs", "batch", "advance", "sync", "ckpt", "drain":
			if !w.sequenced(m, reply) {
				return
			}
		default:
			reply(wire.Message{Type: "error", Seq: m.Seq, Msg: fmt.Sprintf("cluster: unknown frame type %q", m.Type)})
		}
	}
}

// sequenced applies one sequenced cluster frame. Returning false closes
// the connection — the refusal path for frames the worker cannot apply
// without silently corrupting the stream (failed assigns, frames for
// feeds this incarnation never hosted). Crucially those paths never ack,
// so the coordinator's ring keeps the frames and can replay them at the
// shard's next placement.
func (w *Worker) sequenced(m wire.Message, reply func(wire.Message)) bool {
	if m.ClientID == "" || m.Seq == 0 {
		reply(wire.Message{Type: "error", Seq: m.Seq, Msg: "cluster: sequenced frames require client_id and seq"})
		return true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	f := w.feeds[m.ClientID]
	if f != nil && m.Seq <= f.lastSeq {
		// Stale replay after a reconnect: already applied. Reply-bearing
		// frames are re-answered — sync/drain fresh from the outbox (a
		// superset of the lost reply, which the coordinator's dseq
		// dedupe shrinks back), ckpt from the cached-reply window — then
		// re-acked.
		switch m.Type {
		case "sync", "drain":
			f.out.confirm(m.DetSeq)
			reply(wire.Message{Type: "dets", Shard: f.shard, Seq: m.Seq, CDets: f.out.pending()})
		default:
			if r, ok := f.replies[m.Seq]; ok {
				reply(r)
			}
		}
		reply(wire.Message{Type: "ack", Seq: f.lastSeq})
		return true
	}
	if m.Type == "assign" {
		if f != nil && f.eng != nil {
			reply(wire.Message{Type: "error", Shard: m.Shard, Seq: m.Seq, Msg: fmt.Sprintf("cluster: feed %s is already assigned", m.ClientID)})
			return false
		}
		// A fresh assign supersedes any older feed hosting the same
		// shard: the coordinator (or a standby that adopted its lease)
		// abandoned that placement when it re-placed the shard. Evicting
		// it fences the previous coordinator identity — its frames now
		// get the no-feed refusal below — and keeps the feed map from
		// growing one dead engine per epoch.
		for id, old := range w.feeds {
			if old.eng != nil && old.shard == m.Shard {
				old.out.close()
				delete(w.feeds, id)
			}
		}
		nf, err := w.newFeed(m)
		if err != nil {
			reply(wire.Message{Type: "error", Shard: m.Shard, Seq: m.Seq, Msg: err.Error()})
			return false
		}
		nf.lastSeq = m.Seq
		w.feeds[m.ClientID] = nf
		reply(wire.Message{Type: "ack", Seq: m.Seq})
		return true
	}
	if f == nil {
		// A restarted worker receiving replay for a feed it never hosted:
		// the engine state is gone, so applying the suffix would silently
		// lose everything before it. Refuse without acking.
		reply(wire.Message{Type: "error", Shard: m.Shard, Seq: m.Seq, Msg: fmt.Sprintf("cluster: no feed %s on this worker (restarted?)", m.ClientID)})
		return false
	}
	f.lastSeq = m.Seq
	switch m.Type {
	case "obs":
		f.obs++
		o := event.Observation{Reader: m.Reader, Object: m.Object, At: event.Time(m.AtNS)}
		if err := f.eng.Ingest(o); err != nil {
			reply(wire.Message{Type: "error", Shard: f.shard, Seq: m.Seq, Msg: err.Error()})
		}
	case "batch":
		// One coordinator fan-out cycle in one frame: unpack into a
		// pooled batch and take the engine's batched fast path. The
		// engine does not retain the slice, so it goes straight back to
		// the pool.
		f.obs += uint64(len(m.Batch))
		b := event.GetBatch()
		for _, bo := range m.Batch {
			b = append(b, event.Observation{Reader: bo.Reader, Object: bo.Object, At: event.Time(bo.AtNS)})
		}
		err := f.eng.IngestBatch(b)
		event.PutBatch(b)
		if err != nil {
			reply(wire.Message{Type: "error", Shard: f.shard, Seq: m.Seq, Msg: err.Error()})
		}
	case "advance":
		if at := event.Time(m.AtNS); at >= f.eng.Now() {
			if err := f.eng.AdvanceTo(at); err != nil {
				reply(wire.Message{Type: "error", Shard: f.shard, Seq: m.Seq, Msg: err.Error()})
			}
		}
	case "sync":
		// The barrier catch-up is strict (AdvanceBefore): pseudo events
		// due exactly at the coordinator's clock must stay pending, since
		// an observation at that instant may still arrive. Mirrors the
		// in-process shard engine's opCatchUp.
		if at := event.Time(m.AtNS); at >= f.eng.Now() {
			if err := f.eng.AdvanceBefore(at); err != nil {
				reply(wire.Message{Type: "error", Shard: f.shard, Seq: m.Seq, Msg: err.Error()})
			}
		}
		f.out.confirm(m.DetSeq)
		reply(wire.Message{Type: "dets", Shard: f.shard, Seq: m.Seq, CDets: f.out.pending()})
	case "ckpt":
		var buf bytes.Buffer
		if err := f.eng.SaveCheckpoint(&buf); err != nil {
			reply(wire.Message{Type: "error", Shard: f.shard, Seq: m.Seq, Msg: err.Error()})
			break
		}
		// Trim to the compact form JSON re-encoding preserves byte-for-
		// byte, so the checksum survives every hop (wire, coordinator
		// memory, cluster/v1 checkpoint) unchanged.
		ck := bytes.TrimSpace(buf.Bytes())
		r := wire.Message{Type: "ckptres", Shard: f.shard, Seq: m.Seq,
			Ck: json.RawMessage(ck), Sum: crc32.ChecksumIEEE(ck), DetSeq: f.dseq}
		f.cache(m.Seq, r)
		reply(r)
	case "drain":
		if !f.drained {
			f.eng.Close()
			f.drained = true
		}
		f.out.confirm(m.DetSeq)
		reply(wire.Message{Type: "dets", Shard: f.shard, Seq: m.Seq, CDets: f.out.pending()})
	}
	reply(wire.Message{Type: "ack", Seq: f.lastSeq})
	return true
}

// newFeed builds the shard engine for an assign frame, restoring the
// carried checkpoint when present.
func (w *Worker) newFeed(m wire.Message) (*feed, error) {
	s := m.Shard
	if s < 0 || s >= w.part.NumShards() {
		return nil, fmt.Errorf("cluster: assign: shard %d out of range (partition has %d)", s, w.part.NumShards())
	}
	b := graph.NewBuilder()
	for _, r := range w.part.ByShard[s] {
		if _, err := b.AddRule(r.ID, r.Expr); err != nil {
			return nil, fmt.Errorf("cluster: assign shard %d: %w", s, err)
		}
	}
	f := &feed{shard: s, dseq: m.DetSeq, replies: map[uint64]wire.Message{}}
	out, err := newOutbox(w.cfg.OutboxDir, s, m.DetSeq)
	if err != nil {
		return nil, err
	}
	f.out = out
	eng, err := detect.New(detect.Config{
		Graph:   b.Finalize(),
		Context: w.cfg.Context,
		Groups:  w.cfg.Groups,
		TypeOf:  w.cfg.TypeOf,
		OnDetect: func(rid int, inst *event.Instance) {
			f.dseq++
			f.out.add(wire.ClusterDet{
				Rule: rid, Dseq: f.dseq, FireNS: int64(f.eng.Now()),
				BeginNS: int64(inst.Begin), EndNS: int64(inst.End),
				InstSeq: inst.Seq, Binds: inst.Binds,
			})
		},
		IndexPrimitives:    w.cfg.IndexPrimitives,
		MaxPartitionBuffer: w.cfg.MaxPartitionBuffer,
		MaxHistory:         w.cfg.MaxHistory,
		MaxOpenSequence:    w.cfg.MaxOpenSequence,
		Interpreted:        w.cfg.Interpreted,
	})
	if err != nil {
		f.out.close()
		return nil, fmt.Errorf("cluster: assign shard %d: %w", s, err)
	}
	f.eng = eng
	if len(m.Ck) > 0 {
		if m.Sum != 0 && crc32.ChecksumIEEE(m.Ck) != m.Sum {
			f.out.close()
			return nil, fmt.Errorf("cluster: assign shard %d: checkpoint checksum mismatch (corrupt handoff state)", s)
		}
		if err := restoreGuarded(eng, m.Ck); err != nil {
			f.out.close()
			return nil, fmt.Errorf("cluster: assign shard %d: %w", s, err)
		}
	}
	return f, nil
}

// restoreGuarded turns a panicking restore — truncated or corrupt bytes
// tripping an unchecked index deep in the engine — into an error, so a
// bad checkpoint degrades to the replay-from-journal fallback instead of
// taking the worker down.
func restoreGuarded(eng *detect.Engine, ck []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: corrupt checkpoint: restore panicked: %v", r)
		}
	}()
	if err := eng.RestoreCheckpoint(bytes.NewReader(ck)); err != nil {
		return fmt.Errorf("cluster: corrupt checkpoint: %w", err)
	}
	return nil
}
