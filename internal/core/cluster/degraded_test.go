package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/shard"
	"rcep/internal/faults"
	"rcep/internal/wire"
)

// degradedStats accumulates resilience counters across every coordinator
// incarnation of one degraded run.
type degradedStats struct {
	detaches  int // shards that entered detached mode
	handoffs  int // shard re-placements
	takeovers int // standby coordinator adoptions
}

// runDegraded drives the stream through a cluster configured for
// degraded-mode operation — partition grace, lease, published
// self-checkpoint, WAL-backed worker outboxes — applying held
// partitions, coordinator kills (answered by a warm standby takeover),
// sustained overload, and worker crashes from the fault plan. Deliveries
// are deduped across coordinator incarnations by delivery ordinal: a
// successor re-delivers from its restored Delivered() base, and every
// re-delivery must byte-match what the predecessor already delivered.
func runDegraded(t *testing.T, seed int64, workers int, rules []shard.Rule, stream []event.Observation, plan *faults.ClusterPlan) ([]string, degradedStats, error) {
	t.Helper()
	var stats degradedStats
	dir := t.TempDir()
	leasePath := filepath.Join(dir, "coord.lease")
	ckptPath := filepath.Join(dir, "coord.ckpt")

	procs := make([]*workerProc, workers)
	addrs := make([]string, workers)
	for i := range procs {
		base := WorkerConfig{
			Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf,
			OutboxDir: filepath.Join(dir, fmt.Sprintf("worker-%d", i)),
		}
		if err := os.MkdirAll(base.OutboxDir, 0o755); err != nil {
			t.Fatalf("outbox dir: %v", err)
		}
		procs[i] = newWorkerProc(t, base)
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	r := rand.New(rand.NewSource(seed ^ 0x0de6aded))
	var (
		got      []string
		ord      int
		mismatch error
	)
	onDetect := func(rid int, inst *event.Instance) {
		s := sig(rid, inst)
		if ord < len(got) {
			if got[ord] != s && mismatch == nil {
				mismatch = fmt.Errorf("replayed delivery %d = %s, first delivery was %s", ord, s, got[ord])
			}
		} else {
			got = append(got, s)
		}
		ord++
	}
	syncEvery := 3 + r.Intn(6)
	ckptEvery := 1 + r.Intn(2)
	mkCfg := func(holder string) Config {
		return Config{
			Rules:           rules,
			Shards:          4,
			Workers:         addrs,
			Groups:          genGroups,
			TypeOf:          genTypeOf,
			OnDetect:        onDetect,
			SyncEvery:       syncEvery,
			CheckpointEvery: ckptEvery,
			RetainJournal:   true,
			BarrierTimeout:  time.Second,
			Seed:            seed,
			PartitionGrace:  30 * time.Second,
			LeasePath:       leasePath,
			LeaseHolder:     holder,
			LeaseTTL:        250 * time.Millisecond,
			CheckpointPath:  ckptPath,
		}
	}
	coord, err := New(mkCfg("active"))
	if err != nil {
		return nil, stats, err
	}
	defer func() { coord.Abort() }()

	// takeover simulates the coordinator crash plus the warm standby's
	// adoption: the crash releases nothing — the standby has to wait out
	// the lease TTL, then restores the published checkpoint under a
	// fresh (fencing) term. The driver resumes ingesting from the
	// successor's restored offset and re-verifies re-deliveries from its
	// restored delivery ordinal.
	takeover := func() error {
		stats.detaches += coord.Detaches()
		stats.handoffs += coord.Handoffs()
		coord.Abort()
		sb, err := NewStandby(mkCfg(fmt.Sprintf("standby-%d", stats.takeovers)))
		if err != nil {
			return err
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			c2, err := sb.TryTakeover()
			if err != nil {
				return err
			}
			if c2 != nil {
				coord = c2
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("standby never took over (lease still held?)")
			}
			time.Sleep(25 * time.Millisecond)
		}
		stats.takeovers++
		ord = int(coord.Delivered())
		return nil
	}

	var plans []faults.ClusterFault
	if plan != nil {
		plans = plan.Faults
	}
	fi := 0
	killed := map[int]int{}
	held := map[int]int{}
	i := 0
	for i < len(stream) {
		for fi < len(plans) && plans[fi].AtObs <= i {
			f := plans[fi]
			fi++
			switch f.Kind {
			case faults.FaultPartitionHold:
				target := killTarget(coord, f.Worker, workers)
				held[f.Worker] = target
				procs[target].holdPartition()
			case faults.FaultHeal:
				target, ok := held[f.Worker]
				if !ok {
					target = f.Worker % workers
				}
				procs[target].heal()
				// Reattachment happens at barriers, after the healed
				// link has reconnected and replayed its ring — drive
				// barriers until every detached shard is back (or is
				// someone else's problem: a concurrently killed worker
				// keeps its shard detached until its restart).
				deadline := time.Now().Add(8 * time.Second)
				for coord.Detached() > 0 && time.Now().Before(deadline) {
					if err := coord.Sync(); err != nil {
						return got, stats, err
					}
					time.Sleep(20 * time.Millisecond)
				}
			case faults.FaultCoordKill:
				if err := takeover(); err != nil {
					return got, stats, err
				}
				i = int(coord.Ingested())
			case faults.FaultSlowAll:
				for _, p := range procs {
					p.setSlow()
				}
			case faults.FaultFastAll:
				for _, p := range procs {
					p.setFast()
				}
			case faults.FaultKill:
				target := killTarget(coord, f.Worker, workers)
				killed[f.Worker] = target
				procs[target].kill()
			case faults.FaultRestart:
				target, ok := killed[f.Worker]
				if !ok {
					target = f.Worker % workers
				}
				procs[target].restart()
			}
		}
		if err := coord.Ingest(stream[i]); err != nil {
			return got, stats, err
		}
		i++
	}
	// Whatever is still held or down comes back before the drain — the
	// coordinator needs live workers to finish, exactly like runCluster.
	for _, p := range procs {
		p.heal()
		p.restart()
	}
	if err := coord.Close(); err != nil {
		return got, stats, err
	}
	stats.detaches += coord.Detaches()
	stats.handoffs += coord.Handoffs()
	if mismatch != nil {
		return got, stats, mismatch
	}
	return got, stats, nil
}

// TestClusterDegradedChaosOracle is the degraded-mode counterpart of
// TestClusterChaosOracle: across seeded schedules — every one of which
// holds a ≥30s-of-stream-time network partition against a shard-hosting
// worker, kills the active coordinator (a warm standby adopts the
// published checkpoint after the lease lapses), and runs a sustained
// all-worker overload span; about half also crash-and-restart a second
// worker — the cluster delivers exactly the single-process engine's
// detection multiset in exactly the in-process sharded engine's
// deterministic order.
//
// Same CI contract as the base chaos suite: CHAOS_SEED_BASE fans the
// matrix across jobs, CHAOS_FAILURE_FILE collects failing schedules as
// replayable recipes:
//
//	CHAOS_SEED_BASE=<seed> go test -race -run TestClusterDegradedChaosOracle/seed=<seed> ./internal/core/cluster/
const degradedSchedules = 12

func TestClusterDegradedChaosOracle(t *testing.T) {
	var base int64
	if s := os.Getenv("CHAOS_SEED_BASE"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &base); err != nil {
			t.Fatalf("CHAOS_SEED_BASE=%q: %v", s, err)
		}
	}
	var recMu sync.Mutex
	record := func(plan *faults.ClusterPlan, reason string) {
		path := os.Getenv("CHAOS_FAILURE_FILE")
		if path == "" {
			return
		}
		recMu.Lock()
		defer recMu.Unlock()
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos failure file: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "degraded %s :: %s\n", plan, reason)
	}

	for i := 0; i < degradedSchedules; i++ {
		seed := base + int64(i)
		t.Run(planName(seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			rules := genRules(r, 3+r.Intn(8))
			stream := genStream(r, 100+r.Intn(80))
			atNS := make([]int64, len(stream))
			for j, o := range stream {
				atNS[j] = int64(o.At)
			}
			plan := faults.NewDegradedPlan(seed, 4, atNS)

			oracle := asMultiset(runSingle(t, rules, stream))
			order := runShard(t, rules, stream, 4)

			got, stats, err := runDegraded(t, seed, 4, rules, stream, plan)
			if err != nil {
				record(plan, err.Error())
				t.Fatalf("degraded run under %s: %v", plan, err)
			}
			if stats.detaches == 0 {
				record(plan, "no detach despite held partition")
				t.Fatalf("plan %s held a partition but no shard detached", plan)
			}
			if stats.takeovers == 0 {
				record(plan, "no standby takeover despite coordinator kill")
				t.Fatalf("plan %s killed the coordinator but no takeover happened", plan)
			}
			diffStrings(t, "multiset", oracle, asMultiset(got))
			diffStrings(t, "order", order, got)
			if t.Failed() {
				record(plan, "detection mismatch (see test log)")
				t.Logf("fault schedule: %s", plan)
			}
		})
	}
}

// TestClusterPartitionDetachReattach pins the pure partition-tolerance
// path: one worker's network is held for a quarter of the stream, then
// healed. The shard must detach (not hand off — its state was fine all
// along), reattach after the heal, and the run must end with zero
// re-placements and detections exactly equal to both oracles.
func TestClusterPartitionDetachReattach(t *testing.T) {
	seed := int64(7)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 6)
	stream := genStream(r, 140)
	n := len(stream)
	plan := &faults.ClusterPlan{Seed: seed, Faults: []faults.ClusterFault{
		{AtObs: n / 4, Kind: faults.FaultPartitionHold, Worker: 0},
		{AtObs: n / 2, Kind: faults.FaultHeal, Worker: 0},
	}}

	oracle := asMultiset(runSingle(t, rules, stream))
	order := runShard(t, rules, stream, 4)

	got, stats, err := runDegraded(t, seed, 4, rules, stream, plan)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if stats.detaches == 0 {
		t.Fatalf("held partition never detached a shard")
	}
	if stats.handoffs != 0 {
		t.Errorf("pure partition+heal re-placed %d shards, want 0 (detach/reattach only)", stats.handoffs)
	}
	diffStrings(t, "multiset", oracle, asMultiset(got))
	diffStrings(t, "order", order, got)
}

// TestClusterStandbyFailover pins the takeover path in isolation: the
// active coordinator crashes mid-stream with no other fault in flight,
// the warm standby adopts the published checkpoint once the lease
// lapses, and the merged stream stays exactly equal to both oracles.
func TestClusterStandbyFailover(t *testing.T) {
	seed := int64(11)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 5)
	stream := genStream(r, 120)
	plan := &faults.ClusterPlan{Seed: seed, Faults: []faults.ClusterFault{
		{AtObs: len(stream) / 2, Kind: faults.FaultCoordKill},
	}}

	oracle := asMultiset(runSingle(t, rules, stream))
	order := runShard(t, rules, stream, 4)

	got, stats, err := runDegraded(t, seed, 4, rules, stream, plan)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if stats.takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", stats.takeovers)
	}
	diffStrings(t, "multiset", oracle, asMultiset(got))
	diffStrings(t, "order", order, got)
}

// TestClusterLeaseFencesZombie proves the fencing half of failover: a
// paused (not dead) coordinator whose lease lapsed must fail-stop with
// ErrLeaseLost on its next barrier — before it can touch a worker — and
// stay stopped, while the successor finishes the stream correctly.
func TestClusterLeaseFencesZombie(t *testing.T) {
	seed := int64(21)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 4)
	stream := genStream(r, 60)
	dir := t.TempDir()

	procs := make([]*workerProc, 2)
	addrs := make([]string, 2)
	for i := range procs {
		procs[i] = newWorkerProc(t, WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf})
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	var (
		got      []string
		ord      int
		mismatch error
	)
	onDetect := func(rid int, inst *event.Instance) {
		s := sig(rid, inst)
		if ord < len(got) {
			if got[ord] != s && mismatch == nil {
				mismatch = fmt.Errorf("replayed delivery %d = %s, first delivery was %s", ord, s, got[ord])
			}
		} else {
			got = append(got, s)
		}
		ord++
	}
	mkCfg := func(holder string) Config {
		return Config{
			Rules: rules, Shards: 4, Workers: addrs,
			Groups: genGroups, TypeOf: genTypeOf, OnDetect: onDetect,
			SyncEvery: 1, CheckpointEvery: 1,
			RetainJournal: true, BarrierTimeout: time.Second, Seed: seed,
			LeasePath:      filepath.Join(dir, "coord.lease"),
			LeaseHolder:    holder,
			LeaseTTL:       150 * time.Millisecond,
			CheckpointPath: filepath.Join(dir, "coord.ckpt"),
		}
	}
	c1, err := New(mkCfg("active"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c1.Abort()
	half := len(stream) / 2
	for _, o := range stream[:half] {
		if err := c1.Ingest(o); err != nil {
			t.Fatalf("active Ingest: %v", err)
		}
	}

	// The active pauses (a GC stall, a VM migration…) long enough for
	// its lease to lapse; the standby takes the term over.
	time.Sleep(400 * time.Millisecond)
	sb, err := NewStandby(mkCfg("standby"))
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	var c2 *Coordinator
	deadline := time.Now().Add(5 * time.Second)
	for c2 == nil {
		if c2, err = sb.TryTakeover(); err != nil {
			t.Fatalf("TryTakeover: %v", err)
		}
		if c2 == nil && time.Now().After(deadline) {
			t.Fatalf("standby never took over an expired lease")
		}
		if c2 == nil {
			time.Sleep(25 * time.Millisecond)
		}
	}
	defer c2.Abort()
	ord = int(c2.Delivered())

	// The zombie wakes up: its next barrier must fail-stop, and keep
	// failing, with ErrLeaseLost.
	if err := c1.Ingest(stream[half]); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie Ingest = %v, want ErrLeaseLost", err)
	}
	if err := c1.Ingest(stream[half]); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie Ingest after fail-stop = %v, want ErrLeaseLost", err)
	}

	for _, o := range stream[c2.Ingested():] {
		if err := c2.Ingest(o); err != nil {
			t.Fatalf("successor Ingest: %v", err)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("successor Close: %v", err)
	}
	if mismatch != nil {
		t.Fatalf("re-delivery mismatch: %v", mismatch)
	}
	diffStrings(t, "multiset", asMultiset(runSingle(t, rules, stream)), asMultiset(got))
	diffStrings(t, "order", runShard(t, rules, stream, 4), got)
}

// TestClusterColdRestartAgainstLiveWorkers pins incarnation identity:
// two cold-started coordinators (no checkpoint, so both run generation
// 0) feed the same stream back to back against the SAME live workers,
// under the rcepd flag defaults (SyncEvery 64, CheckpointEvery 4, no
// retained journal). If the second incarnation reused the first's wire
// ClientIDs, the workers' stale feeds would re-ack every frame as
// replay — assign included — and the run would silently lose almost
// everything (the failure a -partition-grace CLI drive first exposed:
// the first barrier times out against the stale feed, detaches, and a
// handoff replays only the trimmed journal suffix).
func TestClusterColdRestartAgainstLiveWorkers(t *testing.T) {
	seed := int64(33)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 5)
	stream := genStream(r, 200)

	procs := make([]*workerProc, 2)
	addrs := make([]string, 2)
	for i := range procs {
		procs[i] = newWorkerProc(t, WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf})
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	oracle := asMultiset(runSingle(t, rules, stream))
	order := runShard(t, rules, stream, 4)

	run := func() ([]string, *Coordinator) {
		var got []string
		coord, err := New(Config{
			Rules: rules, Shards: 4, Workers: addrs,
			Groups: genGroups, TypeOf: genTypeOf,
			OnDetect:       func(rid int, inst *event.Instance) { got = append(got, sig(rid, inst)) },
			PartitionGrace: 30 * time.Second,
			BarrierTimeout: 2 * time.Second,
			Seed:           seed,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer coord.Abort()
		for _, o := range stream {
			if err := coord.Ingest(o); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
		if err := coord.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return got, coord
	}

	first, _ := run()
	diffStrings(t, "first multiset", oracle, asMultiset(first))
	diffStrings(t, "first order", order, first)

	second, coord := run()
	if coord.Detaches() != 0 || coord.Handoffs() != 0 {
		t.Errorf("fault-free rerun against live workers: %d detach(es), %d handoff(s), want 0/0",
			coord.Detaches(), coord.Handoffs())
	}
	diffStrings(t, "second multiset", oracle, asMultiset(second))
	diffStrings(t, "second order", order, second)
}

// TestOutboxWAL pins the worker detection outbox: cumulative confirm
// trimming, stale-mark no-ops, the on-disk WAL artifact, and the
// fresh-lineage reset a new assign performs.
func TestOutboxWAL(t *testing.T) {
	dir := t.TempDir()
	det := func(dseq uint64) wire.ClusterDet { return wire.ClusterDet{Rule: 1, Dseq: dseq} }

	ob, err := newOutbox(dir, 3, 5)
	if err != nil {
		t.Fatalf("newOutbox: %v", err)
	}
	ob.add(det(6))
	ob.add(det(7))
	ob.add(det(8))
	if n := len(ob.pending()); n != 3 {
		t.Fatalf("pending = %d, want 3", n)
	}
	ob.confirm(7)
	if p := ob.pending(); len(p) != 1 || p[0].Dseq != 8 {
		t.Fatalf("pending after confirm(7) = %v, want [dseq 8]", p)
	}
	ob.confirm(6) // stale replayed mark: cumulative, must be a no-op
	if p := ob.pending(); len(p) != 1 || p[0].Dseq != 8 {
		t.Fatalf("pending after stale confirm(6) = %v, want [dseq 8]", p)
	}
	path := filepath.Join(dir, "shard-3.outbox")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("outbox WAL missing: %v", err)
	}
	if st.Size() == 0 {
		t.Fatalf("outbox WAL empty despite unconfirmed detections")
	}
	if ob.walErr != nil {
		t.Fatalf("walErr = %v", ob.walErr)
	}
	ob.close()

	// A fresh assign starts a fresh lineage: the previous incarnation's
	// spool is removed, nothing is merged.
	ob2, err := newOutbox(dir, 3, 0)
	if err != nil {
		t.Fatalf("newOutbox (fresh assign): %v", err)
	}
	if p := ob2.pending(); len(p) != 0 {
		t.Fatalf("fresh outbox pending = %v, want empty", p)
	}
	ob2.close()

	// Memory-only mode (no OutboxDir) keeps full protocol behavior.
	ob3, err := newOutbox("", 0, 0)
	if err != nil {
		t.Fatalf("newOutbox (memory): %v", err)
	}
	ob3.add(det(1))
	ob3.confirm(1)
	if p := ob3.pending(); len(p) != 0 {
		t.Fatalf("memory outbox pending = %v, want empty", p)
	}
	ob3.close()
}
