package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// ErrLeaseLost is the fail-stop error a coordinator surfaces when its
// lease renewal finds a different holder or term: a standby has taken
// over, and this incarnation must not issue another barrier.
var ErrLeaseLost = errors.New("cluster: coordinator lease lost")

// leaseDoc is the on-disk lease record. The term is the fencing token:
// every acquisition bumps it, and renewals assert it, so a paused
// coordinator that wakes after a takeover cannot renew its way back in.
type leaseDoc struct {
	Holder    string `json:"holder"`
	Term      uint64 `json:"term"`
	ExpiresNS int64  `json:"expires_ns"`
}

// lease is one coordinator's hold on the leaseDoc at path. All writes
// go through an atomic tmp+rename so readers never see a torn record.
// The file is advisory coordination between one active coordinator and
// its warm standbys on a shared filesystem — the worker-side feed
// eviction on re-assign is the hard fence behind it.
type lease struct {
	path   string
	holder string
	ttl    time.Duration
	clock  func() time.Time
	term   uint64
}

func readLeaseDoc(path string) (leaseDoc, bool, error) {
	var doc leaseDoc
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, false, nil
	}
	if err != nil {
		return doc, false, fmt.Errorf("cluster: lease: %w", err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, false, fmt.Errorf("cluster: lease %s: corrupt: %w", path, err)
	}
	return doc, true, nil
}

func writeLeaseDoc(path string, doc leaseDoc) error {
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster: lease: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cluster: lease: %w", err)
	}
	return nil
}

// acquireLease takes the lease at path for holder, refusing while a
// different holder's grant is unexpired. Taking it bumps the term.
func acquireLease(path, holder string, ttl time.Duration, clock func() time.Time) (*lease, error) {
	if holder == "" {
		holder = fmt.Sprintf("coord-%d", os.Getpid())
	}
	doc, ok, err := readLeaseDoc(path)
	if err != nil {
		return nil, err
	}
	now := clock()
	if ok && doc.Holder != holder && doc.ExpiresNS > now.UnixNano() {
		return nil, fmt.Errorf("cluster: lease %s held by %q for another %s", path, doc.Holder,
			time.Duration(doc.ExpiresNS-now.UnixNano()).Round(time.Millisecond))
	}
	l := &lease{path: path, holder: holder, ttl: ttl, clock: clock, term: doc.Term + 1}
	if err := writeLeaseDoc(path, leaseDoc{Holder: holder, Term: l.term, ExpiresNS: now.Add(ttl).UnixNano()}); err != nil {
		return nil, err
	}
	return l, nil
}

// renew extends the grant — but only while the file still records this
// lease's holder and term. Any mismatch means a takeover happened.
func (l *lease) renew() error {
	doc, ok, err := readLeaseDoc(l.path)
	if err != nil {
		return err
	}
	if !ok || doc.Holder != l.holder || doc.Term != l.term {
		return fmt.Errorf("%w: term %d now held by %q (term %d)", ErrLeaseLost, l.term, doc.Holder, doc.Term)
	}
	return writeLeaseDoc(l.path, leaseDoc{Holder: l.holder, Term: l.term, ExpiresNS: l.clock().Add(l.ttl).UnixNano()})
}

// release expires the grant immediately so a standby need not wait out
// the TTL after a clean shutdown. Best effort: if the lease was already
// taken over, the successor's record is left untouched.
func (l *lease) release() error {
	doc, ok, err := readLeaseDoc(l.path)
	if err != nil {
		return err
	}
	if !ok || doc.Holder != l.holder || doc.Term != l.term {
		return nil
	}
	return writeLeaseDoc(l.path, leaseDoc{Holder: l.holder, Term: l.term, ExpiresNS: l.clock().UnixNano()})
}
