package cluster

import (
	"fmt"
	"os"
	"time"
)

// Standby is a warm coordinator replacement: it watches the active
// coordinator's lease and published self-checkpoint (Config.LeasePath
// and CheckpointPath) and, once the lease expires unrenewed, adopts the
// checkpoint — held fire group, detection dedupe marks, journal
// suffixes and all — under a fresh lease term. No gossip, no quorum:
// the lease file is the election, the checkpoint file is the state
// transfer, and the term bump plus worker-side feed eviction fence out
// the previous incarnation if it was merely paused rather than dead.
type Standby struct {
	cfg Config
}

// NewStandby prepares a standby from the same Config the active
// coordinator runs with (LeasePath and CheckpointPath must be set;
// Checkpoint is ignored — the published file supersedes it).
func NewStandby(cfg Config) (*Standby, error) {
	if cfg.LeasePath == "" {
		return nil, fmt.Errorf("cluster: standby requires Config.LeasePath")
	}
	if cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("cluster: standby requires Config.CheckpointPath")
	}
	return &Standby{cfg: cfg}, nil
}

// TryTakeover attempts one takeover. While the active coordinator's
// lease is valid it returns (nil, nil) — poll it on whatever cadence
// the deployment's failover budget allows. Once the lease is expired
// (or was cleanly released), it restores the published checkpoint and
// constructs the successor Coordinator, whose New acquires the lease —
// bumping the term and fencing the predecessor. The caller resumes
// feeding the stream from the successor's Ingested() offset and dedupes
// re-delivered detections against its Delivered() ordinal base.
func (s *Standby) TryTakeover() (*Coordinator, error) {
	doc, held, err := readLeaseDoc(s.cfg.LeasePath)
	if err != nil {
		return nil, err
	}
	if held && doc.Holder != s.cfg.LeaseHolder && doc.ExpiresNS > s.clock()().UnixNano() {
		return nil, nil // the active coordinator is still renewing
	}
	cfg := s.cfg
	cfg.Checkpoint = nil
	f, err := os.Open(cfg.CheckpointPath)
	if err == nil {
		defer f.Close()
		cfg.Checkpoint = f
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("cluster: standby: %w", err)
	}
	// No published checkpoint means the active died before its first
	// checkpoint barrier: take over cold from stream start.
	return New(cfg)
}

func (s *Standby) clock() func() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock
	}
	return time.Now
}
