package cluster

import (
	"math/rand"
	"testing"

	"rcep/internal/faults"
)

// TestClusterCompiledMatchesInterpretedUnderHandoff is the cluster/v1 leg
// of the compiled-hot-path equivalence suite: the same stream runs
// through two real TCP clusters — one with compiled-plan worker engines,
// one with interpreted oracles — while a mid-stream kill forces a
// checkpoint handoff and replay in each. The merged detection sequences
// must be byte-identical, order included: plan compilation must survive
// checkpoint/restore because the event graph (and therefore the plans)
// are rebuilt, never serialized.
func TestClusterCompiledMatchesInterpretedUnderHandoff(t *testing.T) {
	for _, seed := range []int64{5, 21} {
		seed := seed
		t.Run(planName(seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			rules := genRules(r, 3+r.Intn(8))
			stream := genStream(r, 60+r.Intn(60))
			third := len(stream) / 3
			plan := &faults.ClusterPlan{Seed: seed, Faults: []faults.ClusterFault{
				{AtObs: third, Kind: faults.FaultKill, Worker: 0},
				{AtObs: 2 * third, Kind: faults.FaultRestart, Worker: 0},
			}}

			compiled, _, err := runClusterMode(t, seed, 3, rules, stream, plan, false)
			if err != nil {
				t.Fatalf("compiled cluster run: %v", err)
			}
			interp, _, err := runClusterMode(t, seed, 3, rules, stream, plan, true)
			if err != nil {
				t.Fatalf("interpreted cluster run: %v", err)
			}
			if len(compiled) == 0 {
				t.Fatal("stream produced no detections; equivalence is vacuous")
			}
			diffStrings(t, "compiled vs interpreted cluster order", interp, compiled)
		})
	}
}
