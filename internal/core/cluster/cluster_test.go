package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/faults"
	"rcep/internal/wire"
)

// TestClusterOracleEquivalence is the fault-free baseline: a 4-worker
// cluster delivers exactly the single engine's detection multiset, in
// exactly the in-process sharded engine's deterministic order.
func TestClusterOracleEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 11} {
		seed := seed
		t.Run(planName(seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			rules := genRules(r, 3+r.Intn(8))
			stream := genStream(r, 60+r.Intn(60))

			oracle := asMultiset(runSingle(t, rules, stream))
			order := runShard(t, rules, stream, 4)
			got, _, err := runCluster(t, seed, 4, rules, stream, nil)
			if err != nil {
				t.Fatalf("cluster run: %v", err)
			}
			diffStrings(t, "multiset", oracle, asMultiset(got))
			diffStrings(t, "order", order, got)
		})
	}
}

func planName(seed int64) string { return fmt.Sprintf("seed=%d", seed) }

// TestCoordinatorCheckpointRestart proves the coordinator's own
// checkpoint round-trips mid-stream: detections delivered before the
// checkpoint are not re-delivered, detections after it are not lost, and
// the held fire-time group survives the restart with its tie order.
func TestCoordinatorCheckpointRestart(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{5, 21, 42} {
		r := rand.New(rand.NewSource(seed))
		rules := genRules(r, 3+r.Intn(8))
		stream := genStream(r, 80+r.Intn(40))
		cut := len(stream) / 2

		want := runShard(t, rules, stream, 4)

		base := WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf}
		procs := make([]*workerProc, 3)
		addrs := make([]string, 3)
		for i := range procs {
			procs[i] = newWorkerProc(t, base)
			addrs[i] = procs[i].addr
		}
		cleanup := func() {
			for _, p := range procs {
				p.kill()
			}
		}

		var got []string
		cfg := Config{
			Rules: rules, Shards: 4, Workers: addrs,
			Groups: genGroups, TypeOf: genTypeOf,
			OnDetect:        func(rid int, inst *event.Instance) { got = append(got, sig(rid, inst)) },
			SyncEvery:       5,
			CheckpointEvery: 2,
			BarrierTimeout:  time.Second,
			Seed:            seed,
		}
		coord, err := New(cfg)
		if err != nil {
			cleanup()
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		for _, o := range stream[:cut] {
			if err := coord.Ingest(o); err != nil {
				cleanup()
				t.Fatalf("seed %d: Ingest: %v", seed, err)
			}
		}
		var ck bytes.Buffer
		if err := coord.SaveCheckpoint(&ck); err != nil {
			cleanup()
			t.Fatalf("seed %d: SaveCheckpoint: %v", seed, err)
		}
		// Crash the coordinator — no drain, no goodbye. The workers keep
		// running; the restarted coordinator re-places every shard from
		// the checkpointed engine states under fresh epochs.
		coord.Abort()

		cfg.Checkpoint = &ck
		coord2, err := New(cfg)
		if err != nil {
			cleanup()
			t.Fatalf("seed %d: New(restore): %v", seed, err)
		}
		for _, o := range stream[cut:] {
			if err := coord2.Ingest(o); err != nil {
				cleanup()
				t.Fatalf("seed %d: Ingest after restore: %v", seed, err)
			}
		}
		if err := coord2.Close(); err != nil {
			cleanup()
			t.Fatalf("seed %d: Close: %v", seed, err)
		}
		cleanup()
		diffStrings(t, "restart order", want, got)
	}
}

// TestCoordinatorRestoreRejectsCorruptCheckpoint proves cluster/v1
// loading never panics on damaged input: truncation at EVERY byte offset
// either restores cleanly (a prefix that happens to decode whole —
// only possible at full length) or fails with an error.
func TestCoordinatorRestoreRejectsCorruptCheckpoint(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(9))
	rules := genRules(r, 4)
	stream := genStream(r, 30)

	base := WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf}
	procs := []*workerProc{newWorkerProc(t, base), newWorkerProc(t, base)}
	addrs := []string{procs[0].addr, procs[1].addr}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	cfg := Config{
		Rules: rules, Shards: 4, Workers: addrs,
		Groups: genGroups, TypeOf: genTypeOf,
		SyncEvery: 4, CheckpointEvery: 1,
		BarrierTimeout: time.Second,
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, o := range stream {
		if err := coord.Ingest(o); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	var ck bytes.Buffer
	if err := coord.SaveCheckpoint(&ck); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	coord.Abort()

	raw := ck.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		cfg.Checkpoint = bytes.NewReader(raw[:cut])
		c2, err := New(cfg) // must never panic
		if err == nil {
			c2.Abort()
			// A cut that drops only the trailing newline still decodes
			// as a complete document; anything shorter must fail.
			if cut < len(raw)-1 {
				t.Fatalf("truncation at %d/%d restored cleanly", cut, len(raw))
			}
		}
	}

	// Bit-flip damage inside an engine checkpoint trips the checksum.
	flipped := append([]byte(nil), raw...)
	at := bytes.Index(flipped, []byte(`"engines"`))
	if at < 0 {
		t.Fatalf("no engines field in checkpoint")
	}
	flipped[at+20] ^= 0x08
	cfg.Checkpoint = bytes.NewReader(flipped)
	if _, err := New(cfg); err == nil {
		t.Fatalf("bit-flipped checkpoint restored cleanly")
	} else if !strings.Contains(err.Error(), "cluster: restore") {
		t.Fatalf("unexpected error for bit flip: %v", err)
	}
}

// TestWorkerRejectsBadChecksumAssign drives a raw wire client straight
// at a Worker with an assign whose checkpoint does not match its
// checksum: the worker must answer with an error frame echoing the
// assign's sequence and must NOT ack it (second line of defense — the
// coordinator's own pre-check catches rot in its memory, this catches
// corruption on the wire).
func TestWorkerRejectsBadChecksumAssign(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	rules := genRules(r, 3)
	base := WorkerConfig{Rules: rules, Shards: 4, Groups: genGroups, TypeOf: genTypeOf}
	p := newWorkerProc(t, base)
	defer p.kill()

	var mu sync.Mutex
	var errs []wire.Message
	cl, err := wire.DialReliable(p.addr, wire.ReliableOptions{
		ClientID: "coord.s0.e1",
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", p.addr)
			if err != nil {
				return nil, err
			}
			if _, err := readBoot(conn, time.Second); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		},
		Backoff: 10 * time.Millisecond,
		OnFrame: func(m wire.Message) {
			if m.Type == "error" {
				mu.Lock()
				errs = append(errs, m)
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatalf("DialReliable: %v", err)
	}
	defer cl.Abort()

	seq, err := cl.SendFrame(wire.Message{
		Type: "assign", Shard: 0,
		Ck: json.RawMessage(`{"bogus":true}`), Sum: 12345,
	})
	if err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		var found *wire.Message
		for i := range errs {
			if errs[i].Seq == seq {
				found = &errs[i]
				break
			}
		}
		mu.Unlock()
		if found != nil {
			if !strings.Contains(found.Msg, "checksum") {
				t.Fatalf("rejection reason = %q, want checksum mismatch", found.Msg)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no error frame echoing assign seq %d", seq)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHandoffCorruptCheckpointFallsBack proves the handoff path degrades
// to full journal replay when the stored checkpoint is corrupt: the
// coordinator's checksum pre-check refuses to ship it, the fallback
// rebuilds the shard from the journal, and the detection sequence is
// still exactly the oracle's.
func TestHandoffCorruptCheckpointFallsBack(t *testing.T) {
	t.Parallel()
	seed := int64(77)
	r := rand.New(rand.NewSource(seed))
	rules := genRules(r, 6)
	stream := genStream(r, 120)

	oracle := asMultiset(runSingle(t, rules, stream))
	order := runShard(t, rules, stream, 4)

	// Corrupt every shard's stored checkpoint right before killing a
	// worker: every handoff of that worker's shards must take the
	// rejection → full-replay path.
	plan := &faults.ClusterPlan{Seed: seed}
	for s := 0; s < 8; s++ {
		plan.Faults = append(plan.Faults, faults.ClusterFault{AtObs: 60, Kind: faults.FaultCorruptCheckpoint, Worker: s})
	}
	plan.Faults = append(plan.Faults,
		faults.ClusterFault{AtObs: 60, Kind: faults.FaultKill, Worker: 0},
		faults.ClusterFault{AtObs: 90, Kind: faults.FaultRestart, Worker: 0},
	)

	got, handoffs, err := runCluster(t, seed, 4, rules, stream, plan)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if handoffs == 0 {
		t.Fatalf("expected at least one handoff")
	}
	diffStrings(t, "multiset", oracle, asMultiset(got))
	diffStrings(t, "order", order, got)
}
