package cluster

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"rcep/internal/core/event"
)

// checkpointFormat versions the coordinator's serialized state.
const checkpointFormat = "cluster/v1"

// checkpoint is the JSON form of a quiesced coordinator: per-shard
// worker engine checkpoints (with end-to-end checksums), the detection
// dedupe high-water marks, the virtual clock, and the held fire-time
// group — everything a restarted coordinator needs to resume with no
// loss and no double-fire.
type checkpoint struct {
	Format    string            `json:"format"`
	Shards    int               `json:"shards"`
	Gen       uint64            `json:"gen"`
	Now       event.Time        `json:"now"`
	Ingested  uint64            `json:"ingested"`
	Delivered uint64            `json:"delivered"`
	Rules     [][]int           `json:"rules"` // rule IDs per shard, for partition mismatch detection
	Engines   []json.RawMessage `json:"engines"`
	Sums      []uint32          `json:"sums"`
	DetSeq    []uint64          `json:"det_seq"`
	DetHigh   []uint64          `json:"det_high"`
	Pending   []ckPending       `json:"pending,omitempty"`
}

type ckPending struct {
	Fire  event.Time     `json:"fire"`
	Rule  int            `json:"rule"`
	Dseq  uint64         `json:"dseq"`
	Begin event.Time     `json:"begin"`
	End   event.Time     `json:"end"`
	Seq   uint64         `json:"seq,omitempty"`
	Binds event.Bindings `json:"binds,omitempty"`
}

// SaveCheckpoint quiesces the cluster at a forced-checkpoint barrier and
// writes a cluster/v1 snapshot. Completed fire-time groups are delivered
// as a side effect; the group at the current instant is serialized so a
// restart cannot lose or split it.
func (c *Coordinator) SaveCheckpoint(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.barrierLocked(false, false, true); err != nil {
		return err
	}
	n := c.part.NumShards()
	ck := checkpoint{
		Format:    checkpointFormat,
		Shards:    n,
		Gen:       c.gen,
		Now:       c.now,
		Ingested:  c.ingested,
		Delivered: c.delivered,
		Rules:     make([][]int, n),
		Engines:   make([]json.RawMessage, n),
		Sums:      make([]uint32, n),
		DetSeq:    append([]uint64(nil), c.ckDetSeq...),
		DetHigh:   append([]uint64(nil), c.detHigh...),
	}
	for s := 0; s < n; s++ {
		ids := make([]int, 0, len(c.part.ByShard[s]))
		for _, r := range c.part.ByShard[s] {
			ids = append(ids, r.ID)
		}
		ck.Rules[s] = ids
		ck.Engines[s] = c.lastCk[s]
		ck.Sums[s] = c.ckSum[s]
	}
	for _, d := range c.pending {
		ck.Pending = append(ck.Pending, ckPending{
			Fire: d.fire, Rule: d.rule, Dseq: d.dseq,
			Begin: d.inst.Begin, End: d.inst.End, Seq: d.inst.Seq, Binds: d.inst.Binds,
		})
	}
	return json.NewEncoder(w).Encode(&ck)
}

// restore loads a cluster/v1 checkpoint into a freshly constructed
// coordinator, before any links are placed. Truncated or corrupt state
// is rejected with a clear error — every per-shard array must be exactly
// shard-count long and every engine checkpoint must match its checksum —
// never a panic.
func (c *Coordinator) restore(r io.Reader) error {
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("cluster: restore: corrupt checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return fmt.Errorf("cluster: restore: unsupported checkpoint format %q (want %q)", ck.Format, checkpointFormat)
	}
	n := c.part.NumShards()
	if ck.Shards != n {
		return fmt.Errorf("cluster: restore: checkpoint has %d shards, partition has %d", ck.Shards, n)
	}
	if len(ck.Rules) != n || len(ck.Engines) != n || len(ck.Sums) != n ||
		len(ck.DetSeq) != n || len(ck.DetHigh) != n {
		return fmt.Errorf("cluster: restore: truncated checkpoint: %d/%d/%d/%d/%d per-shard entries for %d shards",
			len(ck.Rules), len(ck.Engines), len(ck.Sums), len(ck.DetSeq), len(ck.DetHigh), n)
	}
	for s := 0; s < n; s++ {
		want := c.part.ByShard[s]
		if len(ck.Rules[s]) != len(want) {
			return fmt.Errorf("cluster: restore: shard %d has %d rules in checkpoint, %d in partition", s, len(ck.Rules[s]), len(want))
		}
		for i, r := range want {
			if ck.Rules[s][i] != r.ID {
				return fmt.Errorf("cluster: restore: shard %d rule %d is %d in checkpoint, %d in partition (rule set changed?)", s, i, ck.Rules[s][i], r.ID)
			}
		}
		if len(ck.Engines[s]) > 0 && crc32.ChecksumIEEE(ck.Engines[s]) != ck.Sums[s] {
			return fmt.Errorf("cluster: restore: shard %d engine checkpoint fails its checksum (corrupt)", s)
		}
	}
	// Bump the coordinator generation past the incarnation that wrote
	// the checkpoint. The generation is part of every link's wire
	// ClientID: without it a restarted coordinator would reuse its
	// predecessor's identities, and a worker that survived the restart
	// would mistake the fresh frames for stale replays — re-acking them
	// unapplied and answering barriers from its cached-reply window.
	c.gen = ck.Gen + 1
	c.now = ck.Now
	c.ingested = ck.Ingested
	c.delivered = ck.Delivered
	for s := 0; s < n; s++ {
		c.lastCk[s] = ck.Engines[s]
		c.ckSum[s] = ck.Sums[s]
		c.ckDetSeq[s] = ck.DetSeq[s]
		c.detHigh[s] = ck.DetHigh[s]
		// The checkpoint was taken at a quiesced barrier: the journal
		// suffix past it is empty, but it no longer reaches stream start.
		c.jbase[s] = 1
	}
	for _, p := range ck.Pending {
		c.pending = append(c.pending, cdet{
			fire: p.Fire, rule: p.Rule, dseq: p.Dseq,
			inst: &event.Instance{Begin: p.Begin, End: p.End, Binds: p.Binds, Seq: p.Seq},
		})
	}
	return nil
}
