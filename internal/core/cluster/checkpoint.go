package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"rcep/internal/core/event"
)

// checkpointFormat versions the coordinator's serialized state.
const checkpointFormat = "cluster/v1"

// checkpoint is the JSON form of a quiesced coordinator: per-shard
// worker engine checkpoints (with end-to-end checksums), the detection
// dedupe high-water marks, the virtual clock, and the held fire-time
// group — everything a restarted coordinator needs to resume with no
// loss and no double-fire.
type checkpoint struct {
	Format    string            `json:"format"`
	Shards    int               `json:"shards"`
	Gen       uint64            `json:"gen"`
	Now       event.Time        `json:"now"`
	Ingested  uint64            `json:"ingested"`
	Delivered uint64            `json:"delivered"`
	Rules     [][]int           `json:"rules"` // rule IDs per shard, for partition mismatch detection
	Engines   []json.RawMessage `json:"engines"`
	Sums      []uint32          `json:"sums"`
	DetSeq    []uint64          `json:"det_seq"`
	DetHigh   []uint64          `json:"det_high"`
	Pending   []ckPending       `json:"pending,omitempty"`

	// Journals carries each shard's journal suffix past what its engine
	// checkpoint covers, with Jbase its absolute stream offset (0 means
	// the suffix reaches stream start, preserving the full-replay
	// fallback). At a quiesced SaveCheckpoint barrier the suffixes are
	// empty, but a checkpoint published while a shard is detached — its
	// engine checkpoint frozen at the partition's onset — needs them: a
	// standby adopting the checkpoint replays the suffix into the
	// replacement placement, so mid-partition failover loses nothing.
	Journals [][]ckJentry `json:"journals,omitempty"`
	Jbase    []int        `json:"jbase,omitempty"`
}

type ckJentry struct {
	Adv    bool       `json:"adv,omitempty"`
	Reader string     `json:"reader,omitempty"`
	Object string     `json:"object,omitempty"`
	At     event.Time `json:"at"`
}

type ckPending struct {
	Fire  event.Time     `json:"fire"`
	Rule  int            `json:"rule"`
	Dseq  uint64         `json:"dseq"`
	Begin event.Time     `json:"begin"`
	End   event.Time     `json:"end"`
	Seq   uint64         `json:"seq,omitempty"`
	Binds event.Bindings `json:"binds,omitempty"`
}

// SaveCheckpoint quiesces the cluster at a forced-checkpoint barrier and
// writes a cluster/v1 snapshot. Completed fire-time groups are delivered
// as a side effect; the group at the current instant is serialized so a
// restart cannot lose or split it.
func (c *Coordinator) SaveCheckpoint(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.barrierLocked(false, false, true); err != nil {
		return err
	}
	return c.writeCheckpointLocked(w)
}

// writeCheckpointLocked serializes the coordinator's current state. The
// caller has run whatever barrier semantics it wanted; detached shards
// simply contribute a longer journal suffix.
func (c *Coordinator) writeCheckpointLocked(w io.Writer) error {
	n := c.part.NumShards()
	ck := checkpoint{
		Format:    checkpointFormat,
		Shards:    n,
		Gen:       c.gen,
		Now:       c.now,
		Ingested:  c.ingested,
		Delivered: c.delivered,
		Rules:     make([][]int, n),
		Engines:   make([]json.RawMessage, n),
		Sums:      make([]uint32, n),
		DetSeq:    append([]uint64(nil), c.ckDetSeq...),
		DetHigh:   append([]uint64(nil), c.detHigh...),
		Journals:  make([][]ckJentry, n),
		Jbase:     make([]int, n),
	}
	for s := 0; s < n; s++ {
		ids := make([]int, 0, len(c.part.ByShard[s]))
		for _, r := range c.part.ByShard[s] {
			ids = append(ids, r.ID)
		}
		ck.Rules[s] = ids
		ck.Engines[s] = c.lastCk[s]
		ck.Sums[s] = c.ckSum[s]
		start := c.ckStart[s]
		if len(c.lastCk[s]) == 0 {
			start = 0 // no engine checkpoint: the suffix is the whole journal
		}
		suffix := make([]ckJentry, 0, len(c.journal[s])-start)
		for _, j := range c.journal[s][start:] {
			suffix = append(suffix, ckJentry{Adv: j.adv, Reader: j.reader, Object: j.object, At: j.at})
		}
		ck.Journals[s] = suffix
		ck.Jbase[s] = c.jbase[s] + start
	}
	for _, d := range c.pending {
		ck.Pending = append(ck.Pending, ckPending{
			Fire: d.fire, Rule: d.rule, Dseq: d.dseq,
			Begin: d.inst.Begin, End: d.inst.End, Seq: d.inst.Seq, Binds: d.inst.Binds,
		})
	}
	return json.NewEncoder(w).Encode(&ck)
}

// publishCheckpointLocked writes the self-checkpoint to CheckpointPath
// via atomic tmp+rename, so a standby tailing the file always reads a
// complete record — never a torn one.
func (c *Coordinator) publishCheckpointLocked() error {
	var buf bytes.Buffer
	if err := c.writeCheckpointLocked(&buf); err != nil {
		return fmt.Errorf("cluster: publish checkpoint: %w", err)
	}
	tmp := c.cfg.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("cluster: publish checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("cluster: publish checkpoint: %w", err)
	}
	return nil
}

// restore loads a cluster/v1 checkpoint into a freshly constructed
// coordinator, before any links are placed. Truncated or corrupt state
// is rejected with a clear error — every per-shard array must be exactly
// shard-count long and every engine checkpoint must match its checksum —
// never a panic.
func (c *Coordinator) restore(r io.Reader) error {
	var ck checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("cluster: restore: corrupt checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return fmt.Errorf("cluster: restore: unsupported checkpoint format %q (want %q)", ck.Format, checkpointFormat)
	}
	n := c.part.NumShards()
	if ck.Shards != n {
		return fmt.Errorf("cluster: restore: checkpoint has %d shards, partition has %d", ck.Shards, n)
	}
	if len(ck.Rules) != n || len(ck.Engines) != n || len(ck.Sums) != n ||
		len(ck.DetSeq) != n || len(ck.DetHigh) != n {
		return fmt.Errorf("cluster: restore: truncated checkpoint: %d/%d/%d/%d/%d per-shard entries for %d shards",
			len(ck.Rules), len(ck.Engines), len(ck.Sums), len(ck.DetSeq), len(ck.DetHigh), n)
	}
	for s := 0; s < n; s++ {
		want := c.part.ByShard[s]
		if len(ck.Rules[s]) != len(want) {
			return fmt.Errorf("cluster: restore: shard %d has %d rules in checkpoint, %d in partition", s, len(ck.Rules[s]), len(want))
		}
		for i, r := range want {
			if ck.Rules[s][i] != r.ID {
				return fmt.Errorf("cluster: restore: shard %d rule %d is %d in checkpoint, %d in partition (rule set changed?)", s, i, ck.Rules[s][i], r.ID)
			}
		}
		if len(ck.Engines[s]) > 0 && crc32.ChecksumIEEE(ck.Engines[s]) != ck.Sums[s] {
			return fmt.Errorf("cluster: restore: shard %d engine checkpoint fails its checksum (corrupt)", s)
		}
	}
	if len(ck.Journals) > 0 || len(ck.Jbase) > 0 {
		if len(ck.Journals) != n || len(ck.Jbase) != n {
			return fmt.Errorf("cluster: restore: truncated checkpoint: %d journal suffixes, %d bases for %d shards",
				len(ck.Journals), len(ck.Jbase), n)
		}
	}
	// Bump the coordinator generation past the incarnation that wrote
	// the checkpoint. The generation is part of every link's wire
	// ClientID: without it a restarted coordinator would reuse its
	// predecessor's identities, and a worker that survived the restart
	// would mistake the fresh frames for stale replays — re-acking them
	// unapplied and answering barriers from its cached-reply window.
	// The random instance token in the ClientID already rules that out;
	// the bump keeps generations monotonic for operators reading logs
	// and checkpoints.
	c.gen = ck.Gen + 1
	c.now = ck.Now
	c.ingested = ck.Ingested
	c.delivered = ck.Delivered
	for s := 0; s < n; s++ {
		c.lastCk[s] = ck.Engines[s]
		c.ckSum[s] = ck.Sums[s]
		c.ckDetSeq[s] = ck.DetSeq[s]
		c.detHigh[s] = ck.DetHigh[s]
		if len(ck.Journals) == n {
			// The checkpoint carried a journal suffix (non-empty when it
			// was published while a shard was detached): the initial
			// placement replays it on top of the engine checkpoint.
			js := make([]jentry, 0, len(ck.Journals[s]))
			for _, j := range ck.Journals[s] {
				js = append(js, jentry{adv: j.Adv, reader: j.Reader, object: j.Object, at: j.At})
			}
			c.journal[s] = js
			c.jbase[s] = ck.Jbase[s]
		} else {
			// Legacy checkpoint taken at a quiesced barrier: the journal
			// suffix past it is empty, but it no longer reaches stream
			// start.
			c.jbase[s] = 1
		}
	}
	for _, p := range ck.Pending {
		c.pending = append(c.pending, cdet{
			fire: p.Fire, rule: p.Rule, dseq: p.Dseq,
			inst: &event.Instance{Begin: p.Begin, End: p.End, Binds: p.Binds, Seq: p.Seq},
		})
	}
	return nil
}
