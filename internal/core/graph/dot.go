package graph

import (
	"fmt"
	"io"
	"strings"

	"rcep/internal/core/event"
)

// WriteDot renders the event graph in Graphviz dot form, for debugging
// and documentation: leaves are primitive patterns, internal nodes show
// their constructor, constraints, detection mode and pseudo strategy;
// dashed edges feed NOT nodes; rule roots are double-circled.
func WriteDot(w io.Writer, g *Graph) error {
	var b strings.Builder
	b.WriteString("digraph rceda {\n")
	b.WriteString("  rankdir=BT;\n  node [fontname=\"monospace\", fontsize=10];\n")
	for _, n := range g.Nodes {
		// Quote manually: the label embeds dot's \n escape, which %q
		// would double-escape.
		label := strings.ReplaceAll(nodeLabel(n), `"`, `\"`)
		attrs := `label="` + label + `"`
		if n.Kind == KindPrim {
			attrs += ", shape=box"
		} else {
			attrs += ", shape=ellipse"
		}
		if n.IsRoot() {
			attrs += ", peripheries=2"
		}
		switch n.Mode {
		case ModePull:
			attrs += ", style=dashed"
		case ModeMixed:
			attrs += ", style=bold"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range g.Nodes {
		for i, c := range n.Children {
			edge := ""
			if n.Kind == KindSeq && len(n.Children) == 2 {
				if i == 0 {
					edge = " [label=\"initiator\"]"
				} else {
					edge = " [label=\"terminator\"]"
				}
			}
			if n.Kind == KindNot {
				edge = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", c.ID, n.ID, edge)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nodeLabel(n *Node) string {
	var parts []string
	if n.Kind == KindPrim {
		parts = append(parts, n.Prim.String())
	} else {
		parts = append(parts, n.Kind.String())
	}
	if n.HasDist {
		parts = append(parts, fmt.Sprintf("dist[%s,%s]",
			event.FormatDuration(n.Lo), event.FormatDuration(n.Hi)))
	}
	if n.HasWithin {
		parts = append(parts, "within["+event.FormatDuration(n.Within)+"]")
	}
	parts = append(parts, n.Mode.String())
	if n.Pseudo {
		parts = append(parts, "pseudo:"+n.Strategy.String())
	}
	if len(n.Rules) > 0 {
		parts = append(parts, fmt.Sprintf("rules=%v", n.Rules))
	}
	return strings.Join(parts, "\\n")
}
