package graph

import (
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
)

func gp(reader, obj, at string) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: obj},
		At:     event.Term{Var: at},
	}
}

func gtCond(l, r string) event.GExpr {
	return &event.GBin{Op: event.GuardGt, L: &event.GVar{Name: l}, R: &event.GVar{Name: r}}
}

func TestGuardedSeqBuildsWithKey(t *testing.T) {
	b := NewBuilder()
	expr := &event.Within{
		X: &event.Guarded{
			X:    &event.Seq{L: gp("s", "v1", "t1"), R: gp("s", "v2", "t2")},
			Cond: gtCond("v2", "v1"),
		},
		Max: time.Minute,
	}
	root, err := b.AddRule(0, expr)
	if err != nil {
		t.Fatal(err)
	}
	if root.Guard == nil {
		t.Fatal("guard not attached to root")
	}
	if !strings.Contains(root.key, "|G{") {
		t.Fatalf("canonical key %q lacks guard suffix", root.key)
	}

	// The same structure without a guard must not merge with it.
	b2 := NewBuilder()
	if _, err := b2.AddRule(0, expr); err != nil {
		t.Fatal(err)
	}
	plain := &event.Within{
		X:   &event.Seq{L: gp("s", "v1", "t1"), R: gp("s", "v2", "t2")},
		Max: time.Minute,
	}
	r2, err := b2.AddRule(1, plain)
	if err != nil {
		t.Fatal(err)
	}
	if r2 == b2.Graph().Roots[0] {
		t.Fatal("guarded and unguarded roots merged")
	}
}

func TestScopedNegationValidation(t *testing.T) {
	mk := func(win time.Duration) *event.Seq {
		return &event.Seq{
			L: gp("ck", "b", "t1"),
			R: &event.Not{X: gp("ld", "b", "t2"), Win: win},
		}
	}
	// Unscoped negated terminator without bounds stays invalid.
	if _, err := NewBuilder().AddRule(0, mk(0)); err == nil {
		t.Fatal("unbounded negated terminator accepted")
	}
	// Scoped negation needs no outer bound.
	root, err := NewBuilder().AddRule(0, mk(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	neg := root.Right()
	if !neg.HasNotWin || neg.NotWin != 5*time.Minute {
		t.Fatalf("NotWin not set: %+v", neg)
	}
	if !strings.Contains(neg.key, "|N") {
		t.Fatalf("canonical key %q lacks scoped-negation suffix", neg.key)
	}

	// Scoped NOT as an AND conjunct without WITHIN.
	and := &event.And{
		L: gp("a", "x", "t1"),
		R: &event.Not{X: gp("b", "x", "t2"), Win: 30 * time.Second},
	}
	if _, err := NewBuilder().AddRule(0, and); err != nil {
		t.Fatalf("scoped AND negation rejected: %v", err)
	}

	// Infield scoped NOT under an unbounded SEQ: valid, and the negated
	// child's history is never age-pruned.
	infield := &event.Seq{
		L: &event.Not{X: gp("ck", "b", "t1"), Win: 10 * time.Minute},
		R: gp("ld", "b", "t2"),
	}
	b := NewBuilder()
	if _, err := b.AddRule(0, infield); err != nil {
		t.Fatalf("infield scoped negation rejected: %v", err)
	}
	g := b.Finalize()
	var negChild *Node
	for _, n := range g.Nodes {
		if n.Kind == KindNot {
			negChild = n.Child()
		}
	}
	if negChild == nil || !negChild.NeedsHistory {
		t.Fatal("negated child lacks history")
	}
	if negChild.Retention != 0 {
		t.Fatalf("infield scoped NOT child retention = %v, want unbounded (0)", negChild.Retention)
	}
}

func TestGuardValidationErrors(t *testing.T) {
	// Guard on a negation node.
	bad := &event.Within{
		X: &event.And{
			L: gp("a", "x", "t1"),
			R: &event.Guarded{
				X:    &event.Not{X: gp("b", "x", "t2")},
				Cond: gtCond("x", "x"),
			},
		},
		Max: time.Minute,
	}
	if _, err := NewBuilder().AddRule(0, bad); err == nil ||
		!strings.Contains(err.Error(), "guard cannot be attached to a negation") {
		t.Fatalf("guard-on-negation error = %v", err)
	}

	// Guard referencing a variable the event does not bind.
	unbound := &event.Guarded{X: gp("a", "x", "t1"), Cond: gtCond("x", "nosuch")}
	if _, err := NewBuilder().AddRule(0, unbound); err == nil ||
		!strings.Contains(err.Error(), "not bound by the guarded event") {
		t.Fatalf("unbound-guard-var error = %v", err)
	}

	// Variables under NOT never bind; guards may not reference them.
	underNot := &event.Within{
		X: &event.Guarded{
			X: &event.And{
				L: gp("a", "x", "t1"),
				R: &event.Not{X: gp("b", "y", "t2")},
			},
			Cond: gtCond("x", "y"),
		},
		Max: time.Minute,
	}
	if _, err := NewBuilder().AddRule(0, underNot); err == nil ||
		!strings.Contains(err.Error(), "not bound by the guarded event") {
		t.Fatalf("under-not guard var error = %v", err)
	}

	// Aggregated SEQ+ variables are in scope.
	agg := &event.Within{
		X: &event.Guarded{
			X:    &event.TSeqPlus{X: gp("s", "v", "t"), Lo: time.Second, Hi: 10 * time.Second},
			Cond: &event.GBin{Op: event.GuardGt, L: &event.GAgg{Op: event.AggMax, Name: "v"}, R: &event.GLit{V: event.IntValue(8)}},
		},
		Max: time.Minute,
	}
	if _, err := NewBuilder().AddRule(0, agg); err != nil {
		t.Fatalf("aggregate guard rejected: %v", err)
	}
}
