// Package graph compiles complex event expressions into the event graph
// used by the RCEDA detection engine (paper §4.3–§4.5): leaf nodes are
// primitive event patterns, internal nodes are constructors, WITHIN
// interval constraints are propagated top-down, detection modes
// (push/pull/mixed) are assigned bottom-up, pseudo-event generation flags
// are assigned top-down, and common sub-graphs across rules are merged.
package graph

import (
	"fmt"
	"hash/fnv"
	"time"

	"rcep/internal/core/event"
)

// Kind identifies a node's constructor. WITHIN does not get a node of its
// own: it becomes an interval constraint on its operand (paper §4.3).
// TSEQ and TSEQ+ are Seq and SeqPlus nodes with a distance constraint.
type Kind uint8

// Node kinds.
const (
	KindPrim Kind = iota
	KindOr
	KindAnd
	KindNot
	KindSeq
	KindSeqPlus
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPrim:
		return "PRIM"
	case KindOr:
		return "OR"
	case KindAnd:
		return "AND"
	case KindNot:
		return "NOT"
	case KindSeq:
		return "SEQ"
	case KindSeqPlus:
		return "SEQ+"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Mode is a node's detection mode (paper §4.4).
type Mode uint8

// Detection modes. Push nodes propagate occurrences spontaneously; pull
// nodes must be queried; mixed nodes need pseudo events to complete.
const (
	ModePush Mode = iota
	ModePull
	ModeMixed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePush:
		return "push"
	case ModePull:
		return "pull"
	case ModeMixed:
		return "mixed"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// PseudoStrategy tells the engine why a node generates pseudo events.
type PseudoStrategy uint8

// Pseudo-event strategies (paper §4.5).
const (
	// PseudoNone: the node never schedules pseudo events.
	PseudoNone PseudoStrategy = iota
	// PseudoSeqPlusClose: a TSEQ+ node closes its open sequence when Hi
	// elapses after the last element with no new arrival.
	PseudoSeqPlusClose
	// PseudoAndNotExpire: AND(P, ¬N) under WITHIN τ; on a positive
	// instance p, a pseudo event at t_begin(p)+τ queries the negated
	// child over [t_end(p), t_begin(p)+τ] (paper Fig. 8).
	PseudoAndNotExpire
	// PseudoSeqNotTerm: SEQ(P; ¬N) with a bound; a pseudo event at
	// t_end(p)+bound confirms non-occurrence of N after p (outfield).
	PseudoSeqNotTerm
)

// String implements fmt.Stringer.
func (s PseudoStrategy) String() string {
	switch s {
	case PseudoNone:
		return "none"
	case PseudoSeqPlusClose:
		return "seqplus-close"
	case PseudoAndNotExpire:
		return "and-not-expire"
	case PseudoSeqNotTerm:
		return "seq-not-term"
	}
	return fmt.Sprintf("pseudo(%d)", uint8(s))
}

// Node is one vertex of the event graph.
type Node struct {
	ID   int
	Kind Kind

	// Prim is the observation pattern for KindPrim leaves.
	Prim *event.Prim

	// Children holds the constituent nodes: two for Or/And/Seq (left,
	// right), one for Not/SeqPlus, none for Prim.
	Children []*Node
	// Parents holds every node this one feeds; a merged node can have
	// parents from several rules.
	Parents []*Node

	// Within is the propagated interval constraint; valid iff HasWithin.
	Within    time.Duration
	HasWithin bool

	// Lo, Hi are the distance bounds for TSEQ / TSEQ+; valid iff HasDist.
	Lo, Hi  time.Duration
	HasDist bool

	// NotWin is the scoped negation window for KindNot nodes
	// (NOT E WITHIN w); valid iff HasNotWin. A scoped NOT asserts
	// absence over a NotWin-wide window anchored at the adjacent
	// positive constituent, independent of any WITHIN on the parent.
	NotWin    time.Duration
	HasNotWin bool

	// Guard is the conjunction of WHERE predicates attached to this
	// node's expression: a value-level filter over the instance
	// bindings (inequalities, arithmetic, aggregates over SEQ+ runs).
	// Nil when unguarded. Guards filter; they never bind.
	Guard event.GExpr

	// Mode is the detection mode assigned bottom-up (paper §4.4).
	Mode Mode

	// Pseudo tells the engine this node (or its parent protocol)
	// schedules pseudo events; Strategy says which protocol.
	Pseudo   bool
	Strategy PseudoStrategy

	// NotChild is the index in Children of a NOT child for And/Seq
	// nodes, or -1.
	NotChild int

	// JoinVars are the scalar variables shared by both subtrees of a
	// binary node; instances pair only when these agree.
	JoinVars []string

	// NeedsHistory marks nodes whose instance occurrences must be
	// retained for window queries (children of NOT, children of pull
	// SEQ+ nodes).
	NeedsHistory bool

	// Retention bounds how far back queries against this node's history
	// can reach; the engine prunes older entries. Zero means the node
	// keeps no history; a negative value would be a bug.
	Retention time.Duration

	// Rules lists the IDs of rules whose event part is rooted here.
	Rules []int

	// key is the canonical form used for common sub-graph merging.
	key string
}

// IsRoot reports whether any rule's event part is rooted at n.
func (n *Node) IsRoot() bool { return len(n.Rules) > 0 }

// Left returns the first child (initiator for Seq).
func (n *Node) Left() *Node { return n.Children[0] }

// Right returns the second child (terminator for Seq).
func (n *Node) Right() *Node { return n.Children[1] }

// Child returns the only child of Not/SeqPlus nodes.
func (n *Node) Child() *Node { return n.Children[0] }

// Bound returns the tightest finite lookback bound available on n: the
// distance upper bound if present, else the within constraint. ok is false
// when the node is unbounded.
func (n *Node) Bound() (time.Duration, bool) {
	switch {
	case n.HasDist:
		return n.Hi, true
	case n.HasWithin:
		return n.Within, true
	}
	return 0, false
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	s := fmt.Sprintf("#%d %s", n.ID, n.Kind)
	if n.Kind == KindPrim {
		s += " " + n.Prim.String()
	}
	if n.HasDist {
		s += fmt.Sprintf(" dist[%s,%s]", event.FormatDuration(n.Lo), event.FormatDuration(n.Hi))
	}
	if n.HasWithin {
		s += fmt.Sprintf(" within[%s]", event.FormatDuration(n.Within))
	}
	s += " " + n.Mode.String()
	if n.Pseudo {
		s += " pseudo:" + n.Strategy.String()
	}
	return s
}

// Graph is the merged event graph for a set of rules.
type Graph struct {
	Nodes []*Node          // all nodes, in creation order (children first)
	Prims []*Node          // leaf nodes, subset of Nodes
	Roots map[int]*Node    // rule ID → root node
	ByKey map[string]*Node // canonical key → node (merging index)
}

// Stats summarizes graph shape; used by benchmarks and diagnostics.
type Stats struct {
	Nodes, Prims, Roots, Shared int
}

// Fingerprint identifies the graph's exact structure and constraints:
// engine checkpoints refuse to restore onto a graph with a different
// fingerprint (node IDs and semantics must line up).
func (g *Graph) Fingerprint() string {
	h := fnv.New64a()
	for _, n := range g.Nodes {
		fmt.Fprintf(h, "%d:%s;", n.ID, n.key)
		fmt.Fprintf(h, "r%v;", n.Rules)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Stats returns counts of nodes, leaves, roots and nodes shared by more
// than one parent (the benefit of common sub-graph merging).
func (g *Graph) Stats() Stats {
	st := Stats{Nodes: len(g.Nodes), Prims: len(g.Prims), Roots: len(g.Roots)}
	for _, n := range g.Nodes {
		if len(n.Parents) > 1 {
			st.Shared++
		}
	}
	return st
}
