package graph

import (
	"fmt"
	"sort"
	"time"

	"rcep/internal/core/event"
)

// InvalidRuleError reports a structural error that makes a rule
// undetectable (paper §4.4: a rule is valid only if its event's detection
// mode is push or mixed).
type InvalidRuleError struct {
	RuleID int
	Reason string
}

// Error implements error.
func (e *InvalidRuleError) Error() string {
	return fmt.Sprintf("graph: rule %d invalid: %s", e.RuleID, e.Reason)
}

// Builder compiles rule event expressions into a shared event graph.
type Builder struct {
	merge bool
	g     *Graph
	next  int
}

// Option configures a Builder.
type Option func(*Builder)

// WithoutMerging disables common sub-graph merging; every rule gets private
// nodes. Used by the ablation benchmark (DESIGN.md A1).
func WithoutMerging() Option { return func(b *Builder) { b.merge = false } }

// NewBuilder returns a Builder with common sub-graph merging enabled.
func NewBuilder(opts ...Option) *Builder {
	b := &Builder{merge: true, g: &Graph{
		Roots: map[int]*Node{},
		ByKey: map[string]*Node{},
	}}
	for _, o := range opts {
		o(b)
	}
	return b
}

// AddRule compiles expr as the event part of rule ruleID, merges it into
// the graph, and returns its root node. It fails with *InvalidRuleError
// when the event is undetectable.
func (b *Builder) AddRule(ruleID int, expr event.Expr) (*Node, error) {
	if _, dup := b.g.Roots[ruleID]; dup {
		return nil, fmt.Errorf("graph: duplicate rule ID %d", ruleID)
	}
	root, err := b.build(expr, ruleID)
	if err != nil {
		return nil, err
	}
	propagateWithin(root)
	if err := b.analyze(root, ruleID); err != nil {
		return nil, err
	}
	if root.Mode == ModePull {
		return nil, &InvalidRuleError{RuleID: ruleID,
			Reason: fmt.Sprintf("event %s is non-spontaneous (pull mode) and can never be detected", root.key)}
	}
	root = b.intern(root)
	root.Rules = append(root.Rules, ruleID)
	b.g.Roots[ruleID] = root
	return root, nil
}

// Finalize computes the parent-dependent attributes (pseudo-event flags,
// history retention) over the whole graph and returns it. The Builder can
// keep accepting rules; call Finalize again after adding more.
func (b *Builder) Finalize() *Graph {
	b.assignPseudo()
	b.assignHistory()
	return b.g
}

// Graph returns the graph under construction without finalizing.
func (b *Builder) Graph() *Graph { return b.g }

// build converts the expression into a private node tree, folding WITHIN
// into interval-constraint annotations.
func (b *Builder) build(expr event.Expr, ruleID int) (*Node, error) {
	switch e := expr.(type) {
	case *event.Prim:
		return &Node{Kind: KindPrim, Prim: e, NotChild: -1}, nil
	case *event.Or:
		return b.binary(KindOr, e.L, e.R, ruleID)
	case *event.And:
		return b.binary(KindAnd, e.L, e.R, ruleID)
	case *event.Seq:
		return b.binary(KindSeq, e.L, e.R, ruleID)
	case *event.TSeq:
		if e.Lo < 0 || e.Hi < e.Lo {
			return nil, &InvalidRuleError{RuleID: ruleID,
				Reason: fmt.Sprintf("TSEQ bounds [%s, %s] are not a valid interval", e.Lo, e.Hi)}
		}
		n, err := b.binary(KindSeq, e.L, e.R, ruleID)
		if err != nil {
			return nil, err
		}
		n.Lo, n.Hi, n.HasDist = e.Lo, e.Hi, true
		return n, nil
	case *event.Not:
		if e.Win < 0 {
			return nil, &InvalidRuleError{RuleID: ruleID,
				Reason: fmt.Sprintf("negation window %s must be positive", e.Win)}
		}
		c, err := b.build(e.X, ruleID)
		if err != nil {
			return nil, err
		}
		n := &Node{Kind: KindNot, Children: []*Node{c}, NotChild: -1}
		if e.Win > 0 {
			n.NotWin, n.HasNotWin = e.Win, true
		}
		return n, nil
	case *event.Guarded:
		if e.Cond == nil {
			return nil, &InvalidRuleError{RuleID: ruleID, Reason: "nil guard expression"}
		}
		n, err := b.build(e.X, ruleID)
		if err != nil {
			return nil, err
		}
		// Stacked guards (X WHERE g1 WHERE g2) conjoin on the same node.
		n.Guard = event.GConj(n.Guard, e.Cond)
		return n, nil
	case *event.SeqPlus:
		c, err := b.build(e.X, ruleID)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: KindSeqPlus, Children: []*Node{c}, NotChild: -1}, nil
	case *event.TSeqPlus:
		if e.Lo < 0 || e.Hi < e.Lo {
			return nil, &InvalidRuleError{RuleID: ruleID,
				Reason: fmt.Sprintf("TSEQ+ bounds [%s, %s] are not a valid interval", e.Lo, e.Hi)}
		}
		c, err := b.build(e.X, ruleID)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: KindSeqPlus, Children: []*Node{c},
			Lo: e.Lo, Hi: e.Hi, HasDist: true, NotChild: -1}, nil
	case *event.Within:
		if e.Max <= 0 {
			return nil, &InvalidRuleError{RuleID: ruleID,
				Reason: fmt.Sprintf("WITHIN bound %s must be positive", e.Max)}
		}
		n, err := b.build(e.X, ruleID)
		if err != nil {
			return nil, err
		}
		if !n.HasWithin || e.Max < n.Within {
			n.Within, n.HasWithin = e.Max, true
		}
		return n, nil
	case nil:
		return nil, &InvalidRuleError{RuleID: ruleID, Reason: "nil event expression"}
	default:
		return nil, &InvalidRuleError{RuleID: ruleID,
			Reason: fmt.Sprintf("unsupported expression %T", expr)}
	}
}

func (b *Builder) binary(k Kind, l, r event.Expr, ruleID int) (*Node, error) {
	ln, err := b.build(l, ruleID)
	if err != nil {
		return nil, err
	}
	rn, err := b.build(r, ruleID)
	if err != nil {
		return nil, err
	}
	return &Node{Kind: k, Children: []*Node{ln, rn}, NotChild: -1}, nil
}

// propagateWithin pushes interval constraints top-down: a complex event
// always spans at least its constituents, so child.within =
// min(child.within, parent.within) (paper §4.3, Fig. 7).
func propagateWithin(n *Node) {
	for _, c := range n.Children {
		if n.HasWithin && (!c.HasWithin || n.Within < c.Within) {
			c.Within, c.HasWithin = n.Within, true
		}
		propagateWithin(c)
	}
}

// analyze assigns modes bottom-up, validates structure, and computes join
// variables and canonical keys.
func (b *Builder) analyze(n *Node, ruleID int) error {
	for _, c := range n.Children {
		if err := b.analyze(c, ruleID); err != nil {
			return err
		}
	}
	fail := func(format string, args ...any) error {
		return &InvalidRuleError{RuleID: ruleID, Reason: fmt.Sprintf(format, args...)}
	}
	switch n.Kind {
	case KindPrim:
		n.Mode = ModePush
	case KindNot:
		if n.Child().Mode == ModePull {
			return fail("negation of a non-spontaneous event (%s) is not detectable", n.Child().Kind)
		}
		n.Mode = ModePull
	case KindOr:
		l, r := n.Left(), n.Right()
		if l.Mode == ModePull || r.Mode == ModePull {
			return fail("OR over a non-spontaneous constituent is not detectable")
		}
		if l.Mode == ModePush && r.Mode == ModePush {
			n.Mode = ModePush
		} else {
			n.Mode = ModeMixed
		}
	case KindAnd:
		l, r := n.Left(), n.Right()
		pulls := 0
		for i, c := range n.Children {
			if c.Mode == ModePull {
				pulls++
				if c.Kind != KindNot {
					return fail("AND conjunct %s is non-spontaneous; only NOT is supported as a pull conjunct", c.Kind)
				}
				n.NotChild = i
			}
		}
		switch {
		case pulls == 2:
			return fail("conjunction of two non-spontaneous events can never be detected")
		case pulls == 1:
			if !n.HasWithin && !n.Children[n.NotChild].HasNotWin {
				return fail("AND with a negated conjunct requires a WITHIN bound or a scoped negation (NOT E WITHIN w) to be detectable")
			}
			n.Mode = ModeMixed
		case l.Mode == ModePush && r.Mode == ModePush:
			n.Mode = ModePush
		default:
			n.Mode = ModeMixed
		}
	case KindSeq:
		l, r := n.Left(), n.Right()
		if l.Mode == ModePull {
			if _, ok := n.Bound(); !ok && !(l.Kind == KindNot && l.HasNotWin) {
				return fail("sequence with non-spontaneous initiator %s requires TSEQ bounds or a WITHIN constraint (or a scoped negation)", l.Kind)
			}
		}
		switch r.Mode {
		case ModePull:
			if r.Kind != KindNot {
				return fail("sequence terminator %s is non-spontaneous; only NOT is supported as a pull terminator", r.Kind)
			}
			if _, ok := n.Bound(); !ok && !r.HasNotWin {
				return fail("sequence with negated terminator requires TSEQ bounds or a WITHIN constraint (or a scoped negation)")
			}
			if l.Mode == ModePull {
				return fail("sequence of two non-spontaneous events can never be detected")
			}
			n.NotChild = 1
			n.Mode = ModeMixed
		default:
			n.Mode = r.Mode
		}
		if l.Kind == KindNot && r.Kind != KindNot {
			n.NotChild = 0
		}
	case KindSeqPlus:
		c := n.Child()
		if c.Mode == ModePull {
			return fail("SEQ+ over a non-spontaneous event is not detectable")
		}
		if n.HasDist {
			n.Mode = ModeMixed
		} else {
			n.Mode = ModePull
		}
	}
	if n.Guard != nil {
		if n.Kind == KindNot {
			return fail("a guard cannot be attached to a negation; guard the negated event instead")
		}
		avail := map[string]struct{}{}
		availableVars(n, avail)
		for _, v := range event.GuardVars(n.Guard) {
			if _, ok := avail[v]; !ok {
				return fail("guard references variable %s, which is not bound by the guarded event", v)
			}
		}
	}
	n.JoinVars = joinVars(n)
	n.key = canonicalKey(n)
	return nil
}

// availableVars collects the variables a guard on n may reference: every
// variable bound by a positive primitive in n's subtree (variables under
// SEQ+ appear as lists and aggregate; variables under NOT never bind and
// are excluded).
func availableVars(n *Node, set map[string]struct{}) {
	if n.Kind == KindNot {
		return
	}
	if n.Kind == KindPrim {
		for _, v := range n.Prim.Vars() {
			set[v] = struct{}{}
		}
	}
	for _, c := range n.Children {
		availableVars(c, set)
	}
}

// scalarVars returns the variables bound as scalars in n's subtree;
// variables bound inside SEQ+/TSEQ+ become list-valued above the sequence
// and are excluded from join compatibility.
func scalarVars(n *Node) map[string]struct{} {
	switch n.Kind {
	case KindPrim:
		set := map[string]struct{}{}
		for _, v := range n.Prim.Vars() {
			set[v] = struct{}{}
		}
		return set
	case KindSeqPlus:
		return map[string]struct{}{}
	case KindNot:
		// A negated child binds nothing, but its variables act as
		// filters against the positive side.
		return scalarVars(n.Child())
	case KindOr:
		// Only variables bound by every branch are guaranteed present
		// on an OR instance, so joins may use only the intersection.
		l := scalarVars(n.Left())
		r := scalarVars(n.Right())
		set := map[string]struct{}{}
		for v := range l {
			if _, ok := r[v]; ok {
				set[v] = struct{}{}
			}
		}
		return set
	default:
		set := map[string]struct{}{}
		for _, c := range n.Children {
			for v := range scalarVars(c) {
				set[v] = struct{}{}
			}
		}
		return set
	}
}

// joinVars computes the shared scalar variables between the two subtrees of
// a binary node.
func joinVars(n *Node) []string {
	if len(n.Children) != 2 {
		return nil
	}
	l := scalarVars(n.Left())
	r := scalarVars(n.Right())
	var shared []string
	for v := range l {
		if _, ok := r[v]; ok {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	return shared
}

// canonicalKey builds the structural hash key used for merging. It covers
// the constructor, the propagated constraints and the children's keys, so
// two nodes merge only when they would behave identically.
func canonicalKey(n *Node) string {
	var cons string
	if n.HasDist {
		cons += fmt.Sprintf("|D%d,%d", n.Lo, n.Hi)
	}
	if n.HasWithin {
		cons += fmt.Sprintf("|W%d", n.Within)
	}
	if n.HasNotWin {
		cons += fmt.Sprintf("|N%d", n.NotWin)
	}
	if n.Guard != nil {
		cons += "|G{" + n.Guard.String() + "}"
	}
	switch n.Kind {
	case KindPrim:
		return "P(" + n.Prim.String() + ")" + cons
	default:
		s := n.Kind.String() + "("
		for i, c := range n.Children {
			if i > 0 {
				s += ";"
			}
			s += c.key
		}
		return s + ")" + cons
	}
}

// intern merges the private tree rooted at n into the shared graph,
// reusing existing nodes with identical canonical keys when merging is
// enabled.
func (b *Builder) intern(n *Node) *Node {
	for i, c := range n.Children {
		n.Children[i] = b.intern(c)
	}
	if b.merge {
		if exist, ok := b.g.ByKey[n.key]; ok {
			// Drop n; re-point its children's parent links to exist
			// (the children are already the shared instances, and
			// exist is already their parent).
			return exist
		}
	}
	n.ID = b.next
	b.next++
	b.g.Nodes = append(b.g.Nodes, n)
	if n.Kind == KindPrim {
		b.g.Prims = append(b.g.Prims, n)
	}
	if b.merge {
		b.g.ByKey[n.key] = n
	} else {
		// Still index by a unique key so ByKey stays usable.
		b.g.ByKey[fmt.Sprintf("%s#%d", n.key, n.ID)] = n
	}
	for _, c := range n.Children {
		// A node occupying both child slots (e.g. SEQ(E, E)) still gets a
		// single parent link; the engine handles self-pairing explicitly.
		if len(c.Parents) == 0 || c.Parents[len(c.Parents)-1] != n {
			c.Parents = append(c.Parents, n)
		}
	}
	return n
}

// assignPseudo sets pseudo-event flags top-down (paper §4.5): a node
// schedules pseudo events when its completion depends on future
// non-arrival and some consumer needs it to push.
func (b *Builder) assignPseudo() {
	for _, n := range b.g.Nodes {
		n.Pseudo, n.Strategy = false, PseudoNone
		switch {
		case n.Kind == KindSeqPlus && n.HasDist && b.needsPush(n):
			// TSEQ+ must actively close its open sequence when no
			// further element arrives within Hi.
			n.Pseudo, n.Strategy = true, PseudoSeqPlusClose
		case n.Kind == KindAnd && n.NotChild >= 0:
			n.Pseudo, n.Strategy = true, PseudoAndNotExpire
		case n.Kind == KindSeq && n.NotChild == 1:
			n.Pseudo, n.Strategy = true, PseudoSeqNotTerm
		}
	}
}

// needsPush reports whether any consumer of n requires spontaneous
// propagation: n is a rule root, or a parent combines it in push fashion
// (OR/AND conjunct, SEQ terminator, or NOT history recording). A TSEQ+
// that is only ever the pulled initiator of a TSEQ can be closed lazily at
// query time, with no pseudo events (paper §4.5's top-down assignment).
func (b *Builder) needsPush(n *Node) bool {
	if n.IsRoot() {
		return true
	}
	for _, p := range n.Parents {
		switch p.Kind {
		case KindOr, KindAnd, KindNot:
			return true
		case KindSeq:
			if p.Right() == n {
				return true
			}
		case KindSeqPlus:
			return true
		}
	}
	return false
}

// assignHistory marks nodes that must retain occurrence history for window
// queries and computes a conservative retention horizon for each.
func (b *Builder) assignHistory() {
	for _, n := range b.g.Nodes {
		n.NeedsHistory = false
		n.Retention = 0
	}
	for _, n := range b.g.Nodes {
		switch n.Kind {
		case KindNot:
			c := n.Child()
			c.NeedsHistory = true
			c.Retention = maxDuration(c.Retention, b.lookback(n))
		case KindSeqPlus:
			if n.Mode == ModePull {
				// Pull SEQ+ answers queries from its child's history.
				c := n.Child()
				c.NeedsHistory = true
				c.Retention = maxDuration(c.Retention, b.lookback(n))
			}
		case KindSeq:
			if l := n.Left(); l.Kind == KindSeqPlus {
				// Pulled SEQ+/TSEQ+ initiators are queried (and TSEQ+
				// lazily closed) on terminator arrival.
				l.NeedsHistory = true
				l.Retention = maxDuration(l.Retention, b.lookback(n))
			}
		}
	}
	// An infield scoped NOT under an unbounded SEQ answers [begin−w,
	// begin−1] queries for terminators arbitrarily far in the future, so
	// its child's history cannot be age-pruned: Retention 0 with
	// NeedsHistory keeps entries until the MaxHistory cap. This pass runs
	// last so a bounded sibling protocol cannot re-shrink the horizon.
	for _, n := range b.g.Nodes {
		if n.Kind != KindNot || !n.HasNotWin {
			continue
		}
		for _, p := range n.Parents {
			if p.Kind == KindSeq && p.NotChild == 0 && p.Left() == n {
				if _, ok := p.Bound(); !ok {
					n.Child().Retention = 0
				}
			}
		}
	}
}

// lookback estimates how far back queries routed through n can reach:
// twice the tightest bound of each pulling parent protocol, accumulated up
// the graph. The factor two covers the Fig. 8 protocol, whose query window
// [t_end(p)−τ, t_begin(p)+τ] spans up to 2τ before execution time.
func (b *Builder) lookback(n *Node) time.Duration {
	var need time.Duration
	if bnd, ok := n.Bound(); ok {
		need = 2 * bnd
	}
	if n.HasNotWin && 2*n.NotWin > need {
		// Scoped negation queries a NotWin-wide window anchored at the
		// positive payload, independent of any parent bound.
		need = 2 * n.NotWin
	}
	var above time.Duration
	for _, p := range n.Parents {
		above = maxDuration(above, b.lookback(p))
	}
	return need + above
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
