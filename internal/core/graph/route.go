package graph

import (
	"sort"

	"rcep/internal/core/event"
)

// RouteKey summarizes which observations an event expression's leaves can
// possibly match, projected onto the reader/group key space. It is the
// static basis for shard routing (internal/core/shard): an observation
// from reader r can only be matched by a leaf of the expression if
//
//   - r is one of Readers, or
//   - some group of r is one of Groups, or
//   - Wild is true.
//
// The projection is deliberately conservative: object literals and type
// predicates are ignored (they further restrict matching but never widen
// it), so routing on a RouteKey never skips an observation a leaf could
// match.
type RouteKey struct {
	// Readers are the reader literals of the expression's leaves.
	Readers []string

	// Groups are the literals g of group(r) = 'g' equality predicates on
	// leaves whose reader position is a variable: such a leaf matches
	// only observations whose reader belongs to g.
	Groups []string

	// Wild is true when some leaf constrains the reader by neither a
	// literal nor a group equality predicate — it can match observations
	// from any reader.
	Wild bool
}

// RouteKeyOf computes the RouteKey of an event expression.
func RouteKeyOf(expr event.Expr) RouteKey {
	readers := map[string]struct{}{}
	groups := map[string]struct{}{}
	wild := false
	event.Walk(expr, func(x event.Expr) bool {
		p, ok := x.(*event.Prim)
		if !ok {
			return true
		}
		if !p.Reader.IsVar() && p.Reader.Lit != "" {
			readers[p.Reader.Lit] = struct{}{}
			return true
		}
		// Variable or anonymous reader: a group(r) = 'g' equality
		// predicate on the reader position still pins the key space.
		// Any other predicate shape (inequality, type(o), plain
		// comparisons) cannot be used to narrow the reader key, so the
		// leaf is wild. Multiple group equalities all have to hold for
		// the leaf to match; recording each is conservative for routing
		// (a superset of the truly matchable observations is routed).
		pinned := false
		for _, pred := range p.Preds {
			if pred.Fn != "group" || pred.Op != event.CmpEq {
				continue
			}
			onReader := (p.Reader.IsVar() && pred.Arg == p.Reader.Var) ||
				(!p.Reader.IsVar() && pred.Arg == "")
			if onReader {
				groups[pred.Val] = struct{}{}
				pinned = true
			}
		}
		if !pinned {
			wild = true
		}
		return true
	})
	return RouteKey{Readers: sortedKeys(readers), Groups: sortedKeys(groups), Wild: wild}
}

func sortedKeys(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Leaves returns the expression's primitive patterns in depth-first
// pre-order. Shard routing tests use it to cross-check RouteKeyOf against
// the engine's actual leaf matching.
func Leaves(expr event.Expr) []*event.Prim {
	var out []*event.Prim
	event.Walk(expr, func(x event.Expr) bool {
		if p, ok := x.(*event.Prim); ok {
			out = append(out, p)
		}
		return true
	})
	return out
}
