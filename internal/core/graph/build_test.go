package graph

import (
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
)

// prim builds observation('r', o, t)-style patterns for tests.
func prim(reader, objVar, timeVar string) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: objVar},
		At:     event.Term{Var: timeVar},
	}
}

func primVars(rVar, oVar, tVar string) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Var: rVar},
		Object: event.Term{Var: oVar},
		At:     event.Term{Var: tVar},
	}
}

func mustAdd(t *testing.T, b *Builder, id int, e event.Expr) *Node {
	t.Helper()
	n, err := b.AddRule(id, e)
	if err != nil {
		t.Fatalf("AddRule(%d): %v", id, err)
	}
	return n
}

func TestPrimitiveIsPush(t *testing.T) {
	b := NewBuilder()
	root := mustAdd(t, b, 1, prim("r1", "o", "t"))
	if root.Kind != KindPrim || root.Mode != ModePush {
		t.Errorf("got %v", root)
	}
	g := b.Finalize()
	if len(g.Prims) != 1 || g.Roots[1] != root {
		t.Errorf("graph bookkeeping wrong: %+v", g.Stats())
	}
}

func TestWithinPropagation(t *testing.T) {
	// WITHIN(TSEQ+(E1 OR E2, 0.1s, 1s) ; E3, 10min) — paper Fig. 7.
	e := &event.Within{
		X: &event.Seq{
			L: &event.TSeqPlus{
				X:  &event.Or{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
				Lo: 100 * time.Millisecond, Hi: time.Second,
			},
			R: prim("r3", "o3", "t3"),
		},
		Max: 10 * time.Minute,
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, e)
	if !root.HasWithin || root.Within != 10*time.Minute {
		t.Fatalf("root within missing: %v", root)
	}
	// Every descendant must carry the propagated 10min constraint.
	var check func(n *Node)
	check = func(n *Node) {
		if !n.HasWithin || n.Within != 10*time.Minute {
			t.Errorf("node %v missing propagated within", n)
		}
		for _, c := range n.Children {
			check(c)
		}
	}
	check(root)
}

func TestWithinPropagationTakesMin(t *testing.T) {
	// WITHIN(WITHIN(E1 AND E2, 5s), 10s): inner (tighter) bound wins.
	e := &event.Within{
		X:   &event.Within{X: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}, Max: 5 * time.Second},
		Max: 10 * time.Second,
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, e)
	if root.Within != 5*time.Second {
		t.Errorf("inner within should win, got %v", root.Within)
	}
	// Reversed nesting: outer tighter.
	e2 := &event.Within{
		X:   &event.Within{X: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}, Max: 10 * time.Second},
		Max: 5 * time.Second,
	}
	b2 := NewBuilder()
	root2 := mustAdd(t, b2, 1, e2)
	if root2.Within != 5*time.Second {
		t.Errorf("outer tighter within should win, got %v", root2.Within)
	}
}

func TestModes(t *testing.T) {
	p1 := func() event.Expr { return prim("r1", "o1", "t1") }
	p2 := func() event.Expr { return prim("r2", "o2", "t2") }
	cases := []struct {
		name string
		expr event.Expr
		mode Mode
	}{
		{"or-push", &event.Or{L: p1(), R: p2()}, ModePush},
		{"and-push", &event.And{L: p1(), R: p2()}, ModePush},
		{"seq-push", &event.Seq{L: p1(), R: p2()}, ModePush},
		{"tseq-push", &event.TSeq{L: p1(), R: p2(), Lo: 0, Hi: time.Second}, ModePush},
		{"tseqplus-mixed", &event.TSeqPlus{X: p1(), Lo: 0, Hi: time.Second}, ModeMixed},
		{"within-and-not-mixed", &event.Within{X: &event.And{L: p1(), R: &event.Not{X: p2()}}, Max: 5 * time.Second}, ModeMixed},
		{"within-notseq-push", &event.Within{X: &event.Seq{L: &event.Not{X: p1()}, R: p2()}, Max: 30 * time.Second}, ModePush},
		{"within-seqnot-mixed", &event.Within{X: &event.Seq{L: p1(), R: &event.Not{X: p2()}}, Max: 30 * time.Second}, ModeMixed},
		{"tseq-over-tseqplus", &event.TSeq{L: &event.TSeqPlus{X: p1(), Lo: 0, Hi: time.Second}, R: p2(), Lo: 5 * time.Second, Hi: 10 * time.Second}, ModePush},
		{"within-seqplus-initiator", &event.Within{X: &event.Seq{L: &event.SeqPlus{X: p1()}, R: p2()}, Max: time.Minute}, ModePush},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			root := mustAdd(t, b, 1, c.expr)
			if root.Mode != c.mode {
				t.Errorf("mode = %v, want %v (node %v)", root.Mode, c.mode, root)
			}
		})
	}
}

func TestInvalidRules(t *testing.T) {
	p1 := func() event.Expr { return prim("r1", "o1", "t1") }
	p2 := func() event.Expr { return prim("r2", "o2", "t2") }
	cases := []struct {
		name string
		expr event.Expr
		frag string // expected fragment of the error
	}{
		{"bare-not", &event.Not{X: p1()}, "pull mode"},
		{"double-negation", &event.Not{X: &event.Not{X: p1()}}, "negation of a non-spontaneous"},
		{"or-not", &event.Or{L: p1(), R: &event.Not{X: p2()}}, "OR over a non-spontaneous"},
		{"and-not-unbounded", &event.And{L: p1(), R: &event.Not{X: p2()}}, "requires a WITHIN"},
		{"and-two-nots", &event.Within{X: &event.And{L: &event.Not{X: p1()}, R: &event.Not{X: p2()}}, Max: time.Second}, "two non-spontaneous"},
		{"seq-not-initiator-unbounded", &event.Seq{L: &event.Not{X: p1()}, R: p2()}, "requires TSEQ bounds or a WITHIN"},
		{"seq-not-terminator-unbounded", &event.Seq{L: p1(), R: &event.Not{X: p2()}}, "requires TSEQ bounds or a WITHIN"},
		{"seq-two-nots", &event.Within{X: &event.Seq{L: &event.Not{X: p1()}, R: &event.Not{X: p2()}}, Max: time.Second}, "two non-spontaneous"},
		{"bare-seqplus", &event.SeqPlus{X: p1()}, "pull mode"},
		{"seqplus-of-not", &event.SeqPlus{X: &event.Not{X: p1()}}, "SEQ+ over a non-spontaneous"},
		{"bad-tseq-bounds", &event.TSeq{L: p1(), R: p2(), Lo: 2 * time.Second, Hi: time.Second}, "not a valid interval"},
		{"bad-tseqplus-bounds", &event.TSeqPlus{X: p1(), Lo: -time.Second, Hi: time.Second}, "not a valid interval"},
		{"bad-within", &event.Within{X: p1(), Max: 0}, "must be positive"},
		{"nil-expr", nil, "nil event expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			_, err := b.AddRule(1, c.expr)
			if err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestDuplicateRuleID(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, 7, prim("r1", "o", "t"))
	if _, err := b.AddRule(7, prim("r2", "o", "t")); err == nil {
		t.Fatalf("duplicate rule ID accepted")
	}
}

func TestCommonSubgraphMerging(t *testing.T) {
	// Two rules sharing the same TSEQ+ sub-event must share its node.
	shared := func() event.Expr {
		return &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 100 * time.Millisecond, Hi: time.Second}
	}
	r1 := &event.TSeq{L: shared(), R: prim("r2", "o2", "t2"), Lo: 10 * time.Second, Hi: 20 * time.Second}
	r2 := &event.TSeq{L: shared(), R: prim("r3", "o3", "t3"), Lo: 10 * time.Second, Hi: 20 * time.Second}

	b := NewBuilder()
	root1 := mustAdd(t, b, 1, r1)
	root2 := mustAdd(t, b, 2, r2)
	g := b.Finalize()
	if root1 == root2 {
		t.Fatalf("distinct rules merged entirely")
	}
	if root1.Left() != root2.Left() {
		t.Errorf("shared TSEQ+ sub-event was not merged")
	}
	// Expected nodes: prim r1, tseq+, prim r2, root1, prim r3, root2 = 6.
	if len(g.Nodes) != 6 {
		t.Errorf("node count = %d, want 6", len(g.Nodes))
	}
	st := g.Stats()
	if st.Shared < 1 {
		t.Errorf("no shared nodes reported: %+v", st)
	}

	// Without merging: 8 nodes, no sharing.
	b2 := NewBuilder(WithoutMerging())
	mustAdd(t, b2, 1, r1)
	mustAdd(t, b2, 2, r2)
	g2 := b2.Finalize()
	if len(g2.Nodes) != 8 {
		t.Errorf("unmerged node count = %d, want 8", len(g2.Nodes))
	}
}

func TestMergingRespectsConstraints(t *testing.T) {
	// Same structure, different WITHIN: must NOT merge (the propagated
	// constraints differ, so the nodes behave differently).
	mk := func(within time.Duration) event.Expr {
		return &event.Within{X: &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}, Max: within}
	}
	b := NewBuilder()
	root1 := mustAdd(t, b, 1, mk(5*time.Second))
	root2 := mustAdd(t, b, 2, mk(10*time.Second))
	if root1 == root2 {
		t.Fatalf("nodes with different within constraints merged")
	}
	// Their prim children also differ (propagated constraint in the key).
	if root1.Left() == root2.Left() {
		t.Errorf("prim leaves with different propagated within merged")
	}
	// Identical rules must merge fully.
	root3 := mustAdd(t, b, 3, mk(5*time.Second))
	if root3 != root1 {
		t.Errorf("identical rule events should share the root node")
	}
	if got := len(root1.Rules); got != 2 {
		t.Errorf("shared root should list 2 rules, got %d", got)
	}
}

func TestJoinVars(t *testing.T) {
	// observation(r, o, t1) ; observation(r, o, t2): join on r and o.
	e := &event.Within{
		X:   &event.Seq{L: primVars("r", "o", "t1"), R: primVars("r", "o", "t2")},
		Max: 5 * time.Second,
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, e)
	want := []string{"o", "r"}
	if len(root.JoinVars) != 2 || root.JoinVars[0] != want[0] || root.JoinVars[1] != want[1] {
		t.Errorf("JoinVars = %v, want %v", root.JoinVars, want)
	}
}

func TestJoinVarsExcludeSequenceLists(t *testing.T) {
	// Variables bound inside TSEQ+ become lists and must not join.
	e := &event.TSeq{
		L:  &event.TSeqPlus{X: primVars("r", "o", "t1"), Lo: 0, Hi: time.Second},
		R:  primVars("r", "o2", "t2"),
		Lo: 5 * time.Second, Hi: 10 * time.Second,
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, e)
	if len(root.JoinVars) != 0 {
		t.Errorf("JoinVars = %v, want none (r is list-valued on the left)", root.JoinVars)
	}
}

func TestJoinVarsThroughNot(t *testing.T) {
	// WITHIN(obs(r,o,t1) AND NOT obs(r,o2,t2), 5s): r filters the negation.
	e := &event.Within{
		X:   &event.And{L: primVars("r", "o", "t1"), R: &event.Not{X: primVars("r", "o2", "t2")}},
		Max: 5 * time.Second,
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, e)
	if len(root.JoinVars) != 1 || root.JoinVars[0] != "r" {
		t.Errorf("JoinVars = %v, want [r]", root.JoinVars)
	}
	if root.NotChild != 1 {
		t.Errorf("NotChild = %d, want 1", root.NotChild)
	}
}

func TestPseudoAssignment(t *testing.T) {
	p1 := func() event.Expr { return prim("r1", "o1", "t1") }
	p2 := func() event.Expr { return prim("r2", "o2", "t2") }

	t.Run("and-not-within", func(t *testing.T) {
		b := NewBuilder()
		root := mustAdd(t, b, 1, &event.Within{X: &event.And{L: p1(), R: &event.Not{X: p2()}}, Max: 5 * time.Second})
		b.Finalize()
		if !root.Pseudo || root.Strategy != PseudoAndNotExpire {
			t.Errorf("want AndNotExpire pseudo, got %v", root)
		}
	})
	t.Run("seq-not-terminator", func(t *testing.T) {
		b := NewBuilder()
		root := mustAdd(t, b, 1, &event.Within{X: &event.Seq{L: p1(), R: &event.Not{X: p2()}}, Max: 30 * time.Second})
		b.Finalize()
		if !root.Pseudo || root.Strategy != PseudoSeqNotTerm {
			t.Errorf("want SeqNotTerm pseudo, got %v", root)
		}
	})
	t.Run("seq-not-initiator-no-pseudo", func(t *testing.T) {
		// Infield (Rule 2) is retrospective: push mode, no pseudo events
		// (paper §4.5).
		b := NewBuilder()
		root := mustAdd(t, b, 1, &event.Within{X: &event.Seq{L: &event.Not{X: p1()}, R: p2()}, Max: 30 * time.Second})
		b.Finalize()
		if root.Pseudo {
			t.Errorf("negated initiator should not need pseudo events: %v", root)
		}
	})
	t.Run("tseqplus-root", func(t *testing.T) {
		b := NewBuilder()
		root := mustAdd(t, b, 1, &event.TSeqPlus{X: p1(), Lo: 0, Hi: time.Second})
		b.Finalize()
		if !root.Pseudo || root.Strategy != PseudoSeqPlusClose {
			t.Errorf("root TSEQ+ needs close pseudo events: %v", root)
		}
	})
	t.Run("tseqplus-pulled-initiator", func(t *testing.T) {
		// TSEQ(TSEQ+(E1);E2): the TSEQ+ is only pulled by its parent on
		// terminator arrival; it can close lazily without pseudo events.
		b := NewBuilder()
		root := mustAdd(t, b, 1, &event.TSeq{
			L: &event.TSeqPlus{X: p1(), Lo: 0, Hi: time.Second},
			R: p2(), Lo: 5 * time.Second, Hi: 10 * time.Second,
		})
		b.Finalize()
		l := root.Left()
		if l.Pseudo {
			t.Errorf("pulled-only TSEQ+ should not schedule pseudo events: %v", l)
		}
		if !l.NeedsHistory {
			t.Errorf("pulled TSEQ+ must retain history")
		}
	})
}

func TestHistoryAssignment(t *testing.T) {
	b := NewBuilder()
	root := mustAdd(t, b, 1, &event.Within{
		X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
		Max: 5 * time.Second,
	})
	b.Finalize()
	notNode := root.Right()
	if notNode.Kind != KindNot {
		t.Fatalf("right child should be NOT, got %v", notNode)
	}
	negated := notNode.Child()
	if !negated.NeedsHistory {
		t.Errorf("negated child must keep history")
	}
	if negated.Retention < 10*time.Second {
		t.Errorf("retention %v too small for the Fig. 8 window (needs ≥ 2×5s)", negated.Retention)
	}
}

func TestBoundHelper(t *testing.T) {
	n := &Node{HasDist: true, Lo: time.Second, Hi: 3 * time.Second, HasWithin: true, Within: 10 * time.Second}
	if d, ok := n.Bound(); !ok || d != 3*time.Second {
		t.Errorf("dist bound should win: %v %v", d, ok)
	}
	n2 := &Node{HasWithin: true, Within: 10 * time.Second}
	if d, ok := n2.Bound(); !ok || d != 10*time.Second {
		t.Errorf("within bound: %v %v", d, ok)
	}
	n3 := &Node{}
	if _, ok := n3.Bound(); ok {
		t.Errorf("unbounded node reported a bound")
	}
}

func TestWriteDot(t *testing.T) {
	b := NewBuilder()
	mustAdd(t, b, 1, &event.Within{
		X:   &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}},
		Max: 5 * time.Second,
	})
	mustAdd(t, b, 2, &event.TSeq{
		L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
		R:  prim("r3", "o3", "t3"),
		Lo: 5 * time.Second, Hi: 10 * time.Second,
	})
	g := b.Finalize()
	var sb strings.Builder
	if err := WriteDot(&sb, g); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, frag := range []string{
		"digraph rceda", "peripheries=2", "style=dashed", "->",
		"initiator", "terminator", "pseudo:and-not-expire", "within[5sec]",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot output missing %q:\n%s", frag, dot)
		}
	}
	// One line per node and edge at least.
	if strings.Count(dot, "\n") < len(g.Nodes)+3 {
		t.Errorf("dot output suspiciously short:\n%s", dot)
	}
}

func TestNodeAndKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{KindPrim: "PRIM", KindOr: "OR", KindAnd: "AND", KindNot: "NOT", KindSeq: "SEQ", KindSeqPlus: "SEQ+"} {
		if k.String() != want {
			t.Errorf("Kind %d string %q, want %q", k, k.String(), want)
		}
	}
	for m, want := range map[Mode]string{ModePush: "push", ModePull: "pull", ModeMixed: "mixed"} {
		if m.String() != want {
			t.Errorf("Mode string %q, want %q", m.String(), want)
		}
	}
	b := NewBuilder()
	root := mustAdd(t, b, 1, &event.TSeqPlus{X: prim("r1", "o", "t"), Lo: 0, Hi: time.Second})
	b.Finalize()
	s := root.String()
	for _, frag := range []string{"SEQ+", "dist[", "mixed", "pseudo:seqplus-close"} {
		if !strings.Contains(s, frag) {
			t.Errorf("node string %q missing %q", s, frag)
		}
	}
}
