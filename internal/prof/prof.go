// Package prof wires the standard Go profilers to command-line flags:
// one call starts any of a CPU profile, a heap profile, and an execution
// trace, and the returned stop function flushes them. The hot-path work
// lives or dies by what pprof says, so the binaries that exercise it
// (cmd/experiments, cmd/rcepd) expose these directly — see
// docs/OPERATIONS.md ("Profiling") for how to read the output.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
)

// Options names the profile output files; empty fields are off.
type Options struct {
	CPUProfile string // pprof CPU samples, written continuously until stop
	MemProfile string // heap profile, captured at stop after a final GC
	Trace      string // runtime execution trace, written continuously until stop
}

// Start begins the requested profiles. The returned stop function must
// run at process exit to flush and close them — a profile abandoned by
// os.Exit without stop is truncated (CPU, trace) or never written
// (heap). stop is idempotent, so an error-path call and the deferred
// one can coexist. Start cleans up after itself on error, so a failed
// call needs no stop.
func Start(o Options) (stop func(), err error) {
	var cpu, tr *os.File
	cleanup := func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if tr != nil {
			trace.Stop()
			tr.Close()
		}
	}
	if o.CPUProfile != "" {
		if cpu, err = os.Create(o.CPUProfile); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			cpu = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if o.Trace != "" {
		if tr, err = os.Create(o.Trace); err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = trace.Start(tr); err != nil {
			tr.Close()
			tr = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	memPath := o.MemProfile
	var once sync.Once
	return func() {
		once.Do(func() {
			cleanup()
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		})
	}, nil
}
