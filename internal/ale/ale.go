// Package ale implements a minimal EPCglobal ALE-style reporting layer:
// fixed-length event cycles over logical readers that produce CURRENT /
// ADDITIONS / DELETIONS tag reports. Commercial RFID middleware (the
// platforms surveyed in the paper's related work: Sun EPC Network, SAP
// Auto-ID, IBM WebSphere RFID) exposes exactly this interface; the
// paper's complex event engine consumes the same observation stream one
// level below it.
package ale

import (
	"fmt"
	"sort"
	"time"

	"rcep/internal/core/event"
)

// ReportType selects what a report set contains.
type ReportType uint8

// Report contents, per the ALE specification's report set semantics.
const (
	// Current lists every object seen during the cycle.
	Current ReportType = iota
	// Additions lists objects seen this cycle but not the previous one.
	Additions
	// Deletions lists objects seen the previous cycle but not this one.
	Deletions
)

// String implements fmt.Stringer.
func (t ReportType) String() string {
	switch t {
	case Current:
		return "CURRENT"
	case Additions:
		return "ADDITIONS"
	case Deletions:
		return "DELETIONS"
	}
	return fmt.Sprintf("report(%d)", uint8(t))
}

// Spec is an ECSpec-style subscription: which readers to watch, how long
// each event cycle lasts, and which report sets to emit.
type Spec struct {
	Name    string
	Readers []string      // physical reader IDs forming the logical reader
	Period  time.Duration // event cycle length
	Reports []ReportType
	// Filter, when set, restricts reporting to matching objects (the
	// ALE filter pattern stage).
	Filter func(object string) bool
	// SuppressEmpty skips reports with no objects.
	SuppressEmpty bool
}

// Report is one emitted report set.
type Report struct {
	Spec    string
	Type    ReportType
	Cycle   int        // 0-based event cycle number
	Start   event.Time // cycle boundaries [Start, End)
	End     event.Time
	Objects []string // sorted
}

// Collector consumes a timestamp-ordered observation stream and emits
// reports at every event cycle boundary.
type Collector struct {
	spec    Spec
	emit    func(Report)
	readers map[string]bool

	started  bool
	cycle    int
	start    event.Time
	current  map[string]bool
	previous map[string]bool
}

// NewCollector validates the spec and builds a collector delivering to
// emit.
func NewCollector(spec Spec, emit func(Report)) (*Collector, error) {
	if spec.Period <= 0 {
		return nil, fmt.Errorf("ale: spec %s: period must be positive", spec.Name)
	}
	if len(spec.Readers) == 0 {
		return nil, fmt.Errorf("ale: spec %s: needs at least one reader", spec.Name)
	}
	if len(spec.Reports) == 0 {
		return nil, fmt.Errorf("ale: spec %s: needs at least one report type", spec.Name)
	}
	c := &Collector{
		spec:     spec,
		emit:     emit,
		readers:  map[string]bool{},
		current:  map[string]bool{},
		previous: map[string]bool{},
	}
	for _, r := range spec.Readers {
		c.readers[r] = true
	}
	return c, nil
}

// Push feeds one observation; cycle boundaries strictly before the
// observation's time close first. Observations must be in non-decreasing
// timestamp order.
func (c *Collector) Push(obs event.Observation) error {
	if !c.readers[obs.Reader] {
		return nil
	}
	if c.spec.Filter != nil && !c.spec.Filter(obs.Object) {
		return nil
	}
	if !c.started {
		c.started = true
		c.start = obs.At
	}
	if obs.At < c.start {
		return fmt.Errorf("ale: spec %s: observation at %s precedes cycle start %s",
			c.spec.Name, obs.At, c.start)
	}
	for obs.At >= c.start.Add(c.spec.Period) {
		c.closeCycle()
	}
	c.current[obs.Object] = true
	return nil
}

// AdvanceTo closes every cycle that ends at or before t; call it when the
// stream is idle so empty cycles still report deletions.
func (c *Collector) AdvanceTo(t event.Time) {
	if !c.started {
		return
	}
	for t >= c.start.Add(c.spec.Period) {
		c.closeCycle()
	}
}

// Flush closes the in-progress cycle and emits its reports.
func (c *Collector) Flush() {
	if !c.started {
		return
	}
	c.closeCycle()
}

// Cycle returns the current (open) cycle number.
func (c *Collector) Cycle() int { return c.cycle }

func (c *Collector) closeCycle() {
	end := c.start.Add(c.spec.Period)
	for _, rt := range c.spec.Reports {
		var objs []string
		switch rt {
		case Current:
			objs = keys(c.current)
		case Additions:
			objs = diff(c.current, c.previous)
		case Deletions:
			objs = diff(c.previous, c.current)
		}
		if len(objs) == 0 && c.spec.SuppressEmpty {
			continue
		}
		c.emit(Report{
			Spec: c.spec.Name, Type: rt, Cycle: c.cycle,
			Start: c.start, End: end, Objects: objs,
		})
	}
	c.previous = c.current
	c.current = map[string]bool{}
	c.cycle++
	c.start = end
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// diff returns the sorted elements of a not in b.
func diff(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
