package ale

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"rcep/internal/core/event"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func o(reader, object string, sec float64) event.Observation {
	return event.Observation{Reader: reader, Object: object, At: ts(sec)}
}

func collect(t *testing.T, spec Spec, obs ...event.Observation) []Report {
	t.Helper()
	var got []Report
	c, err := NewCollector(spec, func(r Report) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ob := range obs {
		if err := c.Push(ob); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	return got
}

func TestSpecValidation(t *testing.T) {
	if _, err := NewCollector(Spec{Readers: []string{"r"}, Reports: []ReportType{Current}}, nil); err == nil {
		t.Errorf("zero period accepted")
	}
	if _, err := NewCollector(Spec{Period: time.Second, Reports: []ReportType{Current}}, nil); err == nil {
		t.Errorf("no readers accepted")
	}
	if _, err := NewCollector(Spec{Period: time.Second, Readers: []string{"r"}}, nil); err == nil {
		t.Errorf("no report types accepted")
	}
}

func TestCurrentReportPerCycle(t *testing.T) {
	got := collect(t, Spec{
		Name: "shelf", Readers: []string{"shelf1"},
		Period: 10 * time.Second, Reports: []ReportType{Current},
	},
		o("shelf1", "a", 0), o("shelf1", "b", 3),
		o("shelf1", "a", 12), // next cycle
	)
	if len(got) != 2 {
		t.Fatalf("reports: %d (%v)", len(got), got)
	}
	if !reflect.DeepEqual(got[0].Objects, []string{"a", "b"}) || got[0].Cycle != 0 {
		t.Errorf("cycle 0: %+v", got[0])
	}
	if !reflect.DeepEqual(got[1].Objects, []string{"a"}) || got[1].Cycle != 1 {
		t.Errorf("cycle 1: %+v", got[1])
	}
	if got[0].Start != ts(0) || got[0].End != ts(10) || got[1].Start != ts(10) {
		t.Errorf("cycle boundaries: %+v %+v", got[0], got[1])
	}
}

func TestAdditionsAndDeletions(t *testing.T) {
	got := collect(t, Spec{
		Name: "shelf", Readers: []string{"s"},
		Period: 10 * time.Second, Reports: []ReportType{Additions, Deletions},
	},
		o("s", "a", 0), o("s", "b", 1), // cycle 0: a, b
		o("s", "b", 11), o("s", "c", 12), // cycle 1: b, c
	)
	// cycle 0: additions {a, b}, deletions {}; cycle 1: additions {c},
	// deletions {a}.
	byKey := map[string][]string{}
	for _, r := range got {
		byKey[r.Type.String()+string(rune('0'+r.Cycle))] = r.Objects
	}
	if !reflect.DeepEqual(byKey["ADDITIONS0"], []string{"a", "b"}) {
		t.Errorf("additions 0: %v", byKey["ADDITIONS0"])
	}
	if len(byKey["DELETIONS0"]) != 0 {
		t.Errorf("deletions 0: %v", byKey["DELETIONS0"])
	}
	if !reflect.DeepEqual(byKey["ADDITIONS1"], []string{"c"}) {
		t.Errorf("additions 1: %v", byKey["ADDITIONS1"])
	}
	if !reflect.DeepEqual(byKey["DELETIONS1"], []string{"a"}) {
		t.Errorf("deletions 1: %v", byKey["DELETIONS1"])
	}
}

func TestEmptyCyclesViaAdvance(t *testing.T) {
	var got []Report
	c, err := NewCollector(Spec{
		Name: "s", Readers: []string{"r"},
		Period: 10 * time.Second, Reports: []ReportType{Deletions},
	}, func(r Report) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Push(o("r", "a", 0))
	// Nothing else arrives: advancing two cycles must report the
	// disappearance of a.
	c.AdvanceTo(ts(25))
	if len(got) != 2 {
		t.Fatalf("reports: %v", got)
	}
	if len(got[0].Objects) != 0 {
		t.Errorf("cycle 0 deletions: %v", got[0].Objects)
	}
	if !reflect.DeepEqual(got[1].Objects, []string{"a"}) {
		t.Errorf("cycle 1 deletions: %v", got[1].Objects)
	}
}

func TestReaderScopeAndFilter(t *testing.T) {
	got := collect(t, Spec{
		Name: "s", Readers: []string{"mine"},
		Period:  10 * time.Second,
		Reports: []ReportType{Current},
		Filter:  func(obj string) bool { return strings.HasPrefix(obj, "keep") },
	},
		o("mine", "keep-1", 0),
		o("other", "keep-2", 1), // wrong reader
		o("mine", "drop-1", 2),  // filtered
	)
	if len(got) != 1 || !reflect.DeepEqual(got[0].Objects, []string{"keep-1"}) {
		t.Fatalf("scope/filter: %v", got)
	}
}

func TestSuppressEmpty(t *testing.T) {
	got := collect(t, Spec{
		Name: "s", Readers: []string{"r"},
		Period: 10 * time.Second, Reports: []ReportType{Additions, Deletions},
		SuppressEmpty: true,
	},
		o("r", "a", 0),
		o("r", "a", 11),
	)
	// Cycle 0: additions {a} only (deletions empty suppressed); cycle 1:
	// nothing (a unchanged).
	if len(got) != 1 || got[0].Type != Additions {
		t.Fatalf("suppress empty: %v", got)
	}
}

func TestSkippedCyclesCatchUp(t *testing.T) {
	// A long silent gap crosses several boundaries at once.
	got := collect(t, Spec{
		Name: "s", Readers: []string{"r"},
		Period: 10 * time.Second, Reports: []ReportType{Current},
	},
		o("r", "a", 0),
		o("r", "b", 35), // skips cycles 1 and 2
	)
	if len(got) != 4 {
		t.Fatalf("reports: %d (%v)", len(got), got)
	}
	if len(got[1].Objects) != 0 || len(got[2].Objects) != 0 {
		t.Errorf("empty cycles should report empty: %v %v", got[1], got[2])
	}
	if got[3].Cycle != 3 || !reflect.DeepEqual(got[3].Objects, []string{"b"}) {
		t.Errorf("cycle 3: %+v", got[3])
	}
}

func TestOutOfOrderBeforeStartRejected(t *testing.T) {
	c, _ := NewCollector(Spec{
		Name: "s", Readers: []string{"r"},
		Period: 10 * time.Second, Reports: []ReportType{Current},
	}, func(Report) {})
	_ = c.Push(o("r", "a", 20))
	if err := c.Push(o("r", "b", 5)); err == nil {
		t.Fatalf("regressing observation accepted")
	}
}

func TestReportTypeString(t *testing.T) {
	if Current.String() != "CURRENT" || Additions.String() != "ADDITIONS" || Deletions.String() != "DELETIONS" {
		t.Errorf("report type strings")
	}
	if !strings.HasPrefix(ReportType(9).String(), "report(") {
		t.Errorf("unknown report type string")
	}
}
