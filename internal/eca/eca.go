// Package eca implements the baseline the paper argues against (§4.1): a
// traditional ECA-style composite event detector in which detection runs
// at TYPE level and instance-level temporal constraints are evaluated only
// afterwards, as rule conditions. On temporally constrained RFID events
// this is incorrect — the Fig. 4 history yields zero detections instead of
// two — because constituents consumed by a type-level match are gone even
// when the post-hoc constraint check rejects the match.
//
// The engine supports the same expression AST as RCEDA except negation
// (classic ECA negation needs explicit initiator/terminator events, which
// is exactly the generality gap the paper describes).
package eca

import (
	"errors"
	"fmt"

	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

// Config configures the baseline engine.
type Config struct {
	// Rules maps rule IDs to their event expressions.
	Rules map[int]event.Expr

	// Groups and TypeOf mirror detect.Config.
	Groups func(reader string) []string
	TypeOf func(object string) string

	// OnDetect fires for instances that pass the post-hoc condition
	// check.
	OnDetect func(ruleID int, inst *event.Instance)
}

// Metrics counts baseline activity.
type Metrics struct {
	Observations uint64
	Assembled    uint64 // type-level composite instances assembled
	Rejected     uint64 // assembled instances rejected by the condition
	Detections   uint64
}

// Engine is the type-level baseline detector.
type Engine struct {
	cfg   Config
	roots []*node
	ids   []int
	m     Metrics
	seq   uint64
}

// node is one operator of a rule's private tree (no sub-graph merging —
// another difference from RCEDA).
type node struct {
	kind      graph.Kind
	prim      *event.Prim
	children  []*node
	lo, hi    int64 // distance bounds (ns); hasDist
	hasDist   bool
	within    int64 // interval bound (ns); hasWithin
	hasWithin bool

	left  []*inst // pending initiators / AND left side
	right []*inst // AND right side
	accum []*inst // SEQ+ accumulation
}

// inst is a composite instance assembled at type level. ok carries the
// deferred constraint verdict: assembly ignores it, the root checks it.
type inst struct {
	begin, end event.Time
	binds      event.Bindings
	ok         bool
	seq        uint64
}

// New builds the baseline engine.
func New(cfg Config) (*Engine, error) {
	if cfg.OnDetect == nil {
		cfg.OnDetect = func(int, *event.Instance) {}
	}
	if cfg.Groups == nil {
		cfg.Groups = func(r string) []string { return []string{r} }
	}
	if cfg.TypeOf == nil {
		cfg.TypeOf = func(string) string { return "" }
	}
	// Memoize attribute functions exactly as RCEDA does, so performance
	// comparisons isolate the detection strategy.
	groups, types := cfg.Groups, cfg.TypeOf
	groupCache := map[string][]string{}
	cfg.Groups = func(r string) []string {
		if g, ok := groupCache[r]; ok {
			return g
		}
		g := groups(r)
		groupCache[r] = g
		return g
	}
	typeCache := map[string]string{}
	cfg.TypeOf = func(o string) string {
		if t, ok := typeCache[o]; ok {
			return t
		}
		if len(typeCache) >= 1<<16 {
			typeCache = make(map[string]string, 1<<10)
		}
		t := types(o)
		typeCache[o] = t
		return t
	}
	e := &Engine{cfg: cfg}
	for id, expr := range cfg.Rules {
		n, err := build(expr)
		if err != nil {
			return nil, fmt.Errorf("eca: rule %d: %w", id, err)
		}
		e.roots = append(e.roots, n)
		e.ids = append(e.ids, id)
	}
	return e, nil
}

var errNegation = errors.New("negation requires explicit initiator/terminator events in traditional ECA")

func build(expr event.Expr) (*node, error) {
	switch x := expr.(type) {
	case *event.Prim:
		return &node{kind: graph.KindPrim, prim: x}, nil
	case *event.Or:
		return binary(graph.KindOr, x.L, x.R, 0, 0, false)
	case *event.And:
		return binary(graph.KindAnd, x.L, x.R, 0, 0, false)
	case *event.Seq:
		return binary(graph.KindSeq, x.L, x.R, 0, 0, false)
	case *event.TSeq:
		return binary(graph.KindSeq, x.L, x.R, int64(x.Lo), int64(x.Hi), true)
	case *event.SeqPlus:
		c, err := build(x.X)
		if err != nil {
			return nil, err
		}
		return &node{kind: graph.KindSeqPlus, children: []*node{c}}, nil
	case *event.TSeqPlus:
		c, err := build(x.X)
		if err != nil {
			return nil, err
		}
		return &node{kind: graph.KindSeqPlus, children: []*node{c},
			lo: int64(x.Lo), hi: int64(x.Hi), hasDist: true}, nil
	case *event.Within:
		n, err := build(x.X)
		if err != nil {
			return nil, err
		}
		if !n.hasWithin || int64(x.Max) < n.within {
			n.within, n.hasWithin = int64(x.Max), true
		}
		return n, nil
	case *event.Not:
		return nil, errNegation
	case *event.Guarded:
		return nil, errors.New("value guards (WHERE) require the graph engine; traditional ECA matches on event types only")
	}
	return nil, fmt.Errorf("unsupported expression %T", expr)
}

func binary(k graph.Kind, l, r event.Expr, lo, hi int64, hasDist bool) (*node, error) {
	ln, err := build(l)
	if err != nil {
		return nil, err
	}
	rn, err := build(r)
	if err != nil {
		return nil, err
	}
	return &node{kind: k, children: []*node{ln, rn}, lo: lo, hi: hi, hasDist: hasDist}, nil
}

// Metrics returns a snapshot of the counters.
func (e *Engine) Metrics() Metrics { return e.m }

// Ingest feeds one observation through every rule tree.
func (e *Engine) Ingest(obs event.Observation) error {
	e.m.Observations++
	for i, root := range e.roots {
		for _, out := range e.feed(root, obs) {
			e.m.Assembled++
			if !out.ok {
				e.m.Rejected++
				continue
			}
			e.m.Detections++
			e.cfg.OnDetect(e.ids[i], &event.Instance{
				Begin: out.begin, End: out.end, Binds: out.binds, Seq: out.seq,
			})
		}
	}
	return nil
}

// Close is a no-op: the type-level baseline has no pseudo events — which
// is precisely why it cannot complete non-spontaneous events (paper §4.4).
func (e *Engine) Close() {}

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// feed pushes an observation into a subtree and returns the composite
// instances it produces at this node.
func (e *Engine) feed(n *node, obs event.Observation) []*inst {
	switch n.kind {
	case graph.KindPrim:
		binds, match := matchPrim(n.prim, obs, e.cfg.Groups, e.cfg.TypeOf)
		if !match {
			return nil
		}
		return []*inst{{begin: obs.At, end: obs.At, binds: binds, ok: true, seq: e.nextSeq()}}
	case graph.KindOr:
		out := e.feed(n.children[0], obs)
		return append(out, e.feed(n.children[1], obs)...)
	case graph.KindAnd:
		var out []*inst
		for _, li := range e.feed(n.children[0], obs) {
			out = append(out, e.pairAnd(n, li, true)...)
		}
		for _, ri := range e.feed(n.children[1], obs) {
			out = append(out, e.pairAnd(n, ri, false)...)
		}
		return out
	case graph.KindSeq:
		var out []*inst
		if left := n.children[0]; left.kind == graph.KindSeqPlus {
			// The aperiodic initiator accumulates; a terminator flushes
			// the WHOLE accumulation as one composite — the type-level
			// behavior whose post-hoc adjacency check the paper's Fig. 4
			// shows to be incorrect.
			e.feed(left, obs)
			for _, ri := range e.feed(n.children[1], obs) {
				li, ok := e.seqPlusFlush(left)
				if !ok {
					continue
				}
				out = append(out, e.combineSeq(n, li, ri))
			}
			return out
		}
		for _, li := range e.feed(n.children[0], obs) {
			n.left = append(n.left, li)
		}
		for _, ri := range e.feed(n.children[1], obs) {
			// Type-level pairing: oldest pending initiator, no temporal
			// checks here.
			for idx, li := range n.left {
				if !li.binds.Compatible(ri.binds) {
					continue
				}
				n.left = append(n.left[:idx], n.left[idx+1:]...)
				out = append(out, e.combineSeq(n, li, ri))
				break
			}
		}
		return out
	case graph.KindSeqPlus:
		// Accumulate every child instance; the whole buffer is flushed as
		// one composite when the parent sequence consumes it.
		n.accum = append(n.accum, e.feed(n.children[0], obs)...)
		return nil
	}
	return nil
}

// pairAnd joins one arriving side with the opposite buffer (oldest first).
func (e *Engine) pairAnd(n *node, in *inst, fromLeft bool) []*inst {
	mine, other := &n.left, &n.right
	if !fromLeft {
		mine, other = &n.right, &n.left
	}
	for idx, c := range *other {
		if !c.binds.Compatible(in.binds) {
			continue
		}
		*other = append((*other)[:idx], (*other)[idx+1:]...)
		begin, end := c.begin, c.end
		if in.begin < begin {
			begin = in.begin
		}
		if in.end > end {
			end = in.end
		}
		out := &inst{
			begin: begin, end: end,
			binds: c.binds.Merge(in.binds),
			ok:    c.ok && in.ok, seq: e.nextSeq(),
		}
		if n.hasWithin && int64(out.end-out.begin) > n.within {
			out.ok = false // condition check, after the fact
		}
		return []*inst{out}
	}
	*mine = append(*mine, in)
	return nil
}

// combineSeq assembles initiator+terminator, resolving SEQ+ initiators by
// flushing their whole accumulation, then applies the deferred checks.
func (e *Engine) combineSeq(n *node, li, ri *inst) *inst {
	out := &inst{begin: li.begin, end: ri.end, binds: li.binds.Merge(ri.binds),
		ok: li.ok && ri.ok, seq: e.nextSeq()}
	if li.end >= ri.begin {
		out.ok = false
	}
	if n.hasDist {
		d := int64(ri.end - li.end)
		if d < n.lo || d > n.hi {
			out.ok = false
		}
	}
	if n.hasWithin && int64(out.end-out.begin) > n.within {
		out.ok = false
	}
	return out
}

// seqInitiators returns (and consumes) the pending initiator for a SEQ
// whose left child is a SEQ+ accumulation node: the whole buffer becomes
// one composite, with the adjacency constraint checked only now.
func (e *Engine) seqPlusFlush(sp *node) (*inst, bool) {
	if len(sp.accum) == 0 {
		return nil, false
	}
	elems := sp.accum
	sp.accum = nil
	var binds []event.Bindings
	ok := true
	for i, el := range elems {
		binds = append(binds, el.binds)
		if !el.ok {
			ok = false
		}
		if i > 0 && sp.hasDist {
			d := int64(el.end - elems[i-1].end)
			if d < sp.lo || d > sp.hi {
				ok = false // the paper's Fig. 4 rejection point
			}
		}
	}
	out := &inst{
		begin: elems[0].begin, end: elems[len(elems)-1].end,
		binds: event.CollectLists(binds), ok: ok, seq: e.nextSeq(),
	}
	if sp.hasWithin && int64(out.end-out.begin) > sp.within {
		out.ok = false
	}
	return out, true
}

func matchPrim(p *event.Prim, obs event.Observation, groups func(string) []string, typeOf func(string) string) (event.Bindings, bool) {
	anon := func(t event.Term) bool { return t.Var == "" && t.Lit == "" }
	if !p.Reader.IsVar() && !anon(p.Reader) && p.Reader.Lit != obs.Reader {
		return nil, false
	}
	if !p.Object.IsVar() && !anon(p.Object) && p.Object.Lit != obs.Object {
		return nil, false
	}
	for _, pred := range p.Preds {
		switch pred.Fn {
		case "group":
			matched := false
			for _, g := range groups(obs.Reader) {
				if pred.Op.Eval(cmpStr(g, pred.Val)) {
					matched = true
					break
				}
			}
			if !matched {
				return nil, false
			}
		case "type":
			if !pred.Op.Eval(cmpStr(typeOf(obs.Object), pred.Val)) {
				return nil, false
			}
		default:
			var got string
			switch {
			case p.Reader.IsVar() && p.Reader.Var == pred.Arg:
				got = obs.Reader
			case p.Object.IsVar() && p.Object.Var == pred.Arg:
				got = obs.Object
			default:
				return nil, false
			}
			if !pred.Op.Eval(cmpStr(got, pred.Val)) {
				return nil, false
			}
		}
	}
	binds := make(event.Bindings, 0, 3)
	if p.Reader.IsVar() {
		binds = binds.Set(p.Reader.Var, event.StringValue(obs.Reader))
	}
	if p.Object.IsVar() {
		binds = binds.Set(p.Object.Var, event.StringValue(obs.Object))
	}
	if p.At.IsVar() {
		binds = binds.Set(p.At.Var, event.TimeValue(obs.At))
	}
	return binds, true
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
