package eca

import (
	"testing"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
)

func ts(sec float64) event.Time { return event.Time(sec * float64(time.Second)) }

func prim(reader, objVar, timeVar string) *event.Prim {
	return &event.Prim{
		Reader: event.Term{Lit: reader},
		Object: event.Term{Var: objVar},
		At:     event.Term{Var: timeVar},
	}
}

func obs(reader, object string, sec float64) event.Observation {
	return event.Observation{Reader: reader, Object: object, At: ts(sec)}
}

func run(t *testing.T, expr event.Expr, history []event.Observation) []*event.Instance {
	t.Helper()
	var got []*event.Instance
	e, err := New(Config{
		Rules:    map[int]event.Expr{1: expr},
		OnDetect: func(_ int, in *event.Instance) { got = append(got, in) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range history {
		if err := e.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	return got
}

// fig4History is the event history of paper Fig. 4.
func fig4History() []event.Observation {
	return []event.Observation{
		obs("r1", "i1", 1), obs("r1", "i2", 2), obs("r1", "i3", 3),
		obs("r1", "i5", 5), obs("r1", "i6", 6), obs("r1", "i7", 7),
		obs("r2", "c1", 12), obs("r2", "c2", 15),
	}
}

func fig4Expr() event.Expr {
	return &event.TSeq{
		L:  &event.TSeqPlus{X: prim("r1", "o1", "t1"), Lo: 0, Hi: time.Second},
		R:  prim("r2", "o2", "t2"),
		Lo: 5 * time.Second, Hi: 10 * time.Second,
	}
}

// TestFig4BaselineIsIncorrect reproduces the paper's §4.1 argument: the
// type-level baseline detects NOTHING on the Fig. 4 history (the whole
// accumulation {e1@1..7} fails the post-hoc adjacency check and is gone),
// while RCEDA detects the two intended instances.
func TestFig4BaselineIsIncorrect(t *testing.T) {
	baseline := run(t, fig4Expr(), fig4History())
	if len(baseline) != 0 {
		t.Fatalf("type-level baseline found %d instances; the paper's point is it finds 0", len(baseline))
	}

	// RCEDA on the same history: exactly 2.
	b := graph.NewBuilder()
	if _, err := b.AddRule(1, fig4Expr()); err != nil {
		t.Fatal(err)
	}
	var rceda int
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		OnDetect: func(int, *event.Instance) { rceda++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range fig4History() {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if rceda != 2 {
		t.Fatalf("RCEDA found %d instances, want 2", rceda)
	}
}

func TestBaselineMetricsShowRejection(t *testing.T) {
	var e *Engine
	e, err := New(Config{Rules: map[int]event.Expr{1: fig4Expr()}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range fig4History() {
		_ = e.Ingest(o)
	}
	m := e.Metrics()
	if m.Assembled == 0 || m.Rejected != m.Assembled {
		t.Fatalf("expected all assembled instances rejected post-hoc: %+v", m)
	}
}

// TestBaselineAgreesWithoutTemporalConstraints: with no instance-level
// temporal constraints the type-level baseline and RCEDA agree — the
// incorrectness is specifically about temporal constraints.
func TestBaselineAgreesWithoutTemporalConstraints(t *testing.T) {
	expr := func() event.Expr {
		return &event.Seq{L: prim("rA", "o1", "t1"), R: prim("rB", "o2", "t2")}
	}
	history := []event.Observation{
		obs("rA", "a1", 1), obs("rA", "a2", 2), obs("rB", "b1", 3), obs("rB", "b2", 4),
	}
	baseline := run(t, expr(), history)

	b := graph.NewBuilder()
	if _, err := b.AddRule(1, expr()); err != nil {
		t.Fatal(err)
	}
	var rceda []*event.Instance
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		OnDetect: func(_ int, in *event.Instance) { rceda = append(rceda, in) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range history {
		_ = eng.Ingest(o)
	}
	eng.Close()

	if len(baseline) != len(rceda) {
		t.Fatalf("baseline %d vs RCEDA %d", len(baseline), len(rceda))
	}
	for i := range baseline {
		if baseline[i].Binds.Val("o1").Str() != rceda[i].Binds.Val("o1").Str() ||
			baseline[i].Binds.Val("o2").Str() != rceda[i].Binds.Val("o2").Str() {
			t.Errorf("pairing %d differs: %v vs %v", i, baseline[i].Binds, rceda[i].Binds)
		}
	}
}

func TestBaselineAndOr(t *testing.T) {
	and := &event.And{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")}
	got := run(t, and, []event.Observation{obs("r2", "b", 1), obs("r1", "a", 3)})
	if len(got) != 1 || got[0].Begin != ts(1) || got[0].End != ts(3) {
		t.Fatalf("AND: %v", got)
	}
	or := &event.Or{L: prim("r1", "o", "t"), R: prim("r2", "o", "t")}
	if got := run(t, or, []event.Observation{obs("r1", "a", 1), obs("r3", "x", 2), obs("r2", "b", 3)}); len(got) != 2 {
		t.Fatalf("OR: %v", got)
	}
}

func TestBaselineWithinAsCondition(t *testing.T) {
	// WITHIN is checked after assembly: a too-long pair is assembled then
	// rejected, consuming the initiator (unlike RCEDA, which purges and
	// re-pairs correctly).
	expr := &event.Within{
		X:   &event.Seq{L: prim("r1", "o1", "t1"), R: prim("r2", "o2", "t2")},
		Max: 2 * time.Second,
	}
	got := run(t, expr, []event.Observation{obs("r1", "a", 0), obs("r2", "b", 5)})
	if len(got) != 0 {
		t.Fatalf("WITHIN condition should reject: %v", got)
	}
}

func TestBaselineRejectsNegation(t *testing.T) {
	_, err := New(Config{Rules: map[int]event.Expr{
		1: &event.Within{X: &event.And{L: prim("r1", "o1", "t1"), R: &event.Not{X: prim("r2", "o2", "t2")}}, Max: time.Second},
	}})
	if err == nil {
		t.Fatalf("traditional ECA should reject general negation")
	}
}

func TestBaselineGroupAndTypePredicates(t *testing.T) {
	expr := &event.Prim{
		Reader: event.Term{Var: "r"},
		Object: event.Term{Var: "o"},
		At:     event.Term{Var: "t"},
		Preds: []event.Pred{
			{Fn: "group", Arg: "r", Op: event.CmpEq, Val: "g1"},
			{Fn: "type", Arg: "o", Op: event.CmpEq, Val: "case"},
		},
	}
	var got int
	e, err := New(Config{
		Rules:    map[int]event.Expr{1: expr},
		Groups:   func(r string) []string { return map[string][]string{"rA": {"g1"}}[r] },
		TypeOf:   func(o string) string { return map[string]string{"c1": "case"}[o] },
		OnDetect: func(int, *event.Instance) { got++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Ingest(obs("rA", "c1", 1)) // matches
	_ = e.Ingest(obs("rB", "c1", 2)) // wrong group
	_ = e.Ingest(obs("rA", "x1", 3)) // wrong type
	if got != 1 {
		t.Fatalf("predicate matching: %d", got)
	}
}
