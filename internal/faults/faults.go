// Package faults injects deterministic, seeded failures into the
// edge-to-engine path so resilience claims can be tested instead of
// assumed: TCP connection resets (optionally mid-frame), write delays,
// transient observation-source failures, and corrupt LLRP frames. Every
// failure the package produces wraps ErrInjected, so tests can tell
// injected faults apart from real ones.
//
// All randomness flows from the seed passed to New; two injectors built
// with the same seed and options produce the same fault schedule, which
// keeps chaos tests reproducible.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"rcep/internal/core/event"
)

// ErrInjected is wrapped by every failure this package produces.
var ErrInjected = errors.New("faults: injected failure")

// Source mirrors pipeline.Source structurally, so wrapped sources plug
// into the pipeline without this package importing it.
type Source = func(ctx context.Context, emit func(event.Observation) error) error

// Option tunes an Injector.
type Option func(*config)

type config struct {
	resetEvery  int // writes per connection before a reset (0 = never)
	resetJitter int
	partialProb float64 // chance a reset tears the frame mid-write
	delayProb   float64
	maxDelay    time.Duration
	failEvery   int // observations before a source failure (0 = never)
	failJitter  int
}

// WithConnReset makes wrapped connections die after every±jitter writes.
func WithConnReset(every, jitter int) Option {
	return func(c *config) { c.resetEvery, c.resetJitter = every, jitter }
}

// WithPartialWrites makes a fraction p of injected resets first deliver a
// prefix of the frame, modelling a connection torn mid-write.
func WithPartialWrites(p float64) Option {
	return func(c *config) { c.partialProb = p }
}

// WithWriteDelay delays a fraction p of writes by up to max.
func WithWriteDelay(p float64, max time.Duration) Option {
	return func(c *config) { c.delayProb, c.maxDelay = p, max }
}

// WithSourceFailure makes wrapped sources fail after every±jitter
// delivered observations.
func WithSourceFailure(every, jitter int) Option {
	return func(c *config) { c.failEvery, c.failJitter = every, jitter }
}

// Injector is a seeded fault schedule shared by the connections and
// sources it wraps. Safe for concurrent use.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         config
	resets      int
	sourceFails int
}

// New builds an injector from a seed and options.
func New(seed int64, opts ...Option) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, o := range opts {
		o(&in.cfg)
	}
	return in
}

// Resets reports how many connection resets have been injected.
func (in *Injector) Resets() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.resets
}

// SourceFailures reports how many source failures have been injected.
func (in *Injector) SourceFailures() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sourceFails
}

// drawLocked samples every±jitter with a floor of 1; 0 means "never".
func (in *Injector) drawLocked(every, jitter int) int {
	if every <= 0 {
		return 0
	}
	n := every
	if jitter > 0 {
		n += in.rng.Intn(2*jitter+1) - jitter
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Conn wraps c with the injector's write-fault schedule. Reads pass
// through untouched; after an injected reset the underlying connection
// is closed and every further operation fails.
func (in *Injector) Conn(c net.Conn) net.Conn {
	in.mu.Lock()
	defer in.mu.Unlock()
	return &faultConn{Conn: c, in: in, writesLeft: in.drawLocked(in.cfg.resetEvery, in.cfg.resetJitter)}
}

// Dialer wraps a dial function so every connection it opens carries the
// injector's fault schedule — the natural hook for a reconnecting client.
func (in *Injector) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

type faultConn struct {
	net.Conn
	in         *Injector
	writesLeft int // countdown to reset; 0 = never
	dead       bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.in.mu.Lock()
	if c.dead {
		c.in.mu.Unlock()
		return 0, fmt.Errorf("write on reset connection: %w", ErrInjected)
	}
	var delay time.Duration
	if c.in.cfg.delayProb > 0 && c.in.rng.Float64() < c.in.cfg.delayProb && c.in.cfg.maxDelay > 0 {
		delay = time.Duration(c.in.rng.Int63n(int64(c.in.cfg.maxDelay)) + 1)
	}
	reset, partial := false, 0
	if c.writesLeft > 0 {
		c.writesLeft--
		if c.writesLeft == 0 {
			reset, c.dead = true, true
			c.in.resets++
			if len(p) > 1 && c.in.rng.Float64() < c.in.cfg.partialProb {
				partial = 1 + c.in.rng.Intn(len(p)-1)
			}
		}
	}
	c.in.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if !reset {
		return c.Conn.Write(p)
	}
	n := 0
	if partial > 0 {
		n, _ = c.Conn.Write(p[:partial])
	}
	c.Conn.Close()
	return n, fmt.Errorf("connection reset after %d of %d bytes: %w", n, len(p), ErrInjected)
}

// SourceWrap returns src with seeded transient failures injected after
// runs of delivered observations. The wrapper remembers how far it got:
// a supervisor that re-runs the source resumes right after the last
// delivered observation instead of replaying from the start, modelling
// an edge reader that picks up where it crashed.
func (in *Injector) SourceWrap(src Source) Source {
	var mu sync.Mutex
	delivered := 0
	return func(ctx context.Context, emit func(event.Observation) error) error {
		mu.Lock()
		skip := delivered
		in.mu.Lock()
		budget := in.drawLocked(in.cfg.failEvery, in.cfg.failJitter)
		in.mu.Unlock()
		mu.Unlock()

		seen := 0
		return src(ctx, func(o event.Observation) error {
			seen++
			if seen <= skip {
				return nil
			}
			if err := emit(o); err != nil {
				return err
			}
			mu.Lock()
			delivered++
			total := delivered
			mu.Unlock()
			if budget > 0 {
				budget--
				if budget == 0 {
					in.mu.Lock()
					in.sourceFails++
					in.mu.Unlock()
					return fmt.Errorf("source failed after %d observations: %w", total, ErrInjected)
				}
			}
			return nil
		})
	}
}

// Corrupt returns a mutated copy of an encoded frame: truncation, bit
// flips, length-field tampering, or header tampering, chosen by the
// seeded schedule. The input is never modified; the output always
// differs from the input.
func (in *Injector) Corrupt(frame []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.corruptLocked(frame)
}

func (in *Injector) corruptLocked(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	if len(out) == 0 {
		return []byte{0xFF}
	}
	switch in.rng.Intn(5) {
	case 0: // truncate
		if len(out) == 1 {
			return nil
		}
		return out[:in.rng.Intn(len(out)-1)+1]
	case 1: // flip one bit anywhere
		i := in.rng.Intn(len(out))
		out[i] ^= 1 << uint(in.rng.Intn(8))
	case 2: // tamper with the length field (bytes 2..5 of an LLRP header)
		if len(out) >= 6 {
			out[2+in.rng.Intn(4)] ^= byte(1 + in.rng.Intn(255))
		} else {
			out[0] ^= 0x80
		}
	case 3: // break the version byte
		out[0] ^= byte(1 + in.rng.Intn(255))
	default: // append trailing garbage
		extra := make([]byte, 1+in.rng.Intn(8))
		in.rng.Read(extra)
		out = append(out, extra...)
	}
	return out
}

// Corruptions returns n independent corruptions of frame — fuzz-seed
// material for decoder error paths.
func (in *Injector) Corruptions(frame []byte, n int) [][]byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([][]byte, n)
	for i := range out {
		out[i] = in.corruptLocked(frame)
	}
	return out
}
