package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/pipeline"
)

// drainConn returns a net.Pipe endpoint whose peer is continuously
// drained, so writes never block.
func drainConn(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() { _, _ = io.Copy(io.Discard, b) }()
	return a
}

// writeUntilReset writes fixed frames until the injected reset, returning
// the number of whole frames that got through.
func writeUntilReset(t *testing.T, in *Injector) (frames int, err error) {
	t.Helper()
	c := in.Conn(drainConn(t))
	for i := 0; i < 10000; i++ {
		if _, err := c.Write([]byte("frame-payload\n")); err != nil {
			return i, err
		}
	}
	t.Fatal("no reset within 10000 writes")
	return 0, nil
}

func TestConnResetIsDeterministic(t *testing.T) {
	mk := func() *Injector { return New(11, WithConnReset(20, 10)) }
	var first []int
	for run := 0; run < 2; run++ {
		in := mk()
		var got []int
		for conn := 0; conn < 5; conn++ {
			n, err := writeUntilReset(t, in)
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("reset error does not wrap ErrInjected: %v", err)
			}
			got = append(got, n)
		}
		if run == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("same seed, different schedule: %v vs %v", first, got)
			}
		}
	}
}

func TestConnWithoutResetPassesThrough(t *testing.T) {
	in := New(1) // no options: no faults
	c := in.Conn(drainConn(t))
	for i := 0; i < 1000; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("fault injected with empty config: %v", err)
		}
	}
	if in.Resets() != 0 {
		t.Fatalf("spurious resets: %d", in.Resets())
	}
}

func TestPartialWriteTearsFrame(t *testing.T) {
	// partialProb 1: the reset write delivers a strict prefix.
	in := New(3, WithConnReset(5, 0), WithPartialWrites(1))
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	received := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		received <- buf
	}()
	c := in.Conn(a)
	frame := []byte("0123456789")
	var n int
	var err error
	writes := 0
	for {
		n, err = c.Write(frame)
		writes++
		if err != nil {
			break
		}
	}
	if writes != 5 {
		t.Fatalf("reset after %d writes, want 5", writes)
	}
	if !errors.Is(err, ErrInjected) || n <= 0 || n >= len(frame) {
		t.Fatalf("expected a torn frame: n=%d err=%v", n, err)
	}
	got := <-received
	want := 4*len(frame) + n
	if len(got) != want {
		t.Fatalf("peer saw %d bytes, want %d (4 whole frames + %d-byte tear)", len(got), want, n)
	}
}

func TestSourceWrapResumesWhereItFailed(t *testing.T) {
	obs := make([]event.Observation, 100)
	for i := range obs {
		obs[i] = event.Observation{Reader: "r", Object: fmt.Sprintf("o%d", i), At: event.Time(i)}
	}
	in := New(5, WithSourceFailure(30, 10))
	src := in.SourceWrap(pipeline.SliceSource(obs))

	var got []event.Observation
	emit := func(o event.Observation) error { got = append(got, o); return nil }
	runs := 0
	for {
		runs++
		err := src(context.Background(), emit)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error: %v", err)
		}
		if runs > 50 {
			t.Fatal("source never completed")
		}
	}
	if runs < 2 {
		t.Fatalf("no failures injected across %d observations", len(obs))
	}
	if len(got) != len(obs) {
		t.Fatalf("resume lost or duplicated: got %d observations, want %d", len(got), len(obs))
	}
	for i := range got {
		if got[i] != obs[i] {
			t.Fatalf("observation %d drifted: %v vs %v", i, got[i], obs[i])
		}
	}
	if in.SourceFailures() != runs-1 {
		t.Fatalf("failure count %d, runs %d", in.SourceFailures(), runs)
	}
}

func TestCorruptAlwaysDiffers(t *testing.T) {
	in := New(7)
	frame := []byte{1, 0x3D, 0, 0, 0, 10, 0, 0, 0, 1}
	for i := 0; i < 200; i++ {
		c := in.Corrupt(frame)
		if bytes.Equal(c, frame) {
			t.Fatalf("corruption %d returned the original frame", i)
		}
	}
	// Determinism across injectors.
	a := New(13).Corruptions(frame, 20)
	b := New(13).Corruptions(frame, 20)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("same seed, different corruption at %d: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestWriteDelayStaysBounded(t *testing.T) {
	in := New(2, WithWriteDelay(1, 5*time.Millisecond))
	c := in.Conn(drainConn(t))
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("delays unbounded: %v", elapsed)
	}
}
