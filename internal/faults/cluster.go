package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ClusterFaultKind names one kind of injected cluster failure.
type ClusterFaultKind int

const (
	// FaultKill crashes a worker process: connections sever and the
	// worker's engine state is gone (next incarnation has a new boot ID).
	FaultKill ClusterFaultKind = iota
	// FaultRestart brings a previously killed worker back on the same
	// address with a fresh boot ID.
	FaultRestart
	// FaultPartition severs a worker's live connections but keeps its
	// process (and engine state) intact — the reconnect replays through.
	FaultPartition
	// FaultSlow makes a worker's writes lag, provoking barrier timeouts
	// and spurious (but correctness-neutral) handoffs.
	FaultSlow
	// FaultCorruptCheckpoint flips bytes in the coordinator's stored
	// checkpoint for one shard (Worker holds the shard index), forcing
	// the assign-rejection → full-journal-replay fallback at the next
	// handoff.
	FaultCorruptCheckpoint
)

func (k ClusterFaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultSlow:
		return "slow"
	case FaultCorruptCheckpoint:
		return "corrupt-checkpoint"
	}
	return fmt.Sprintf("ClusterFaultKind(%d)", int(k))
}

// ClusterFault is one scheduled failure: inject Kind against Worker just
// before ingesting the AtObs-th observation of the stream.
type ClusterFault struct {
	AtObs  int
	Kind   ClusterFaultKind
	Worker int // target worker index (FaultCorruptCheckpoint: shard index)
}

// ClusterPlan is a seeded, reproducible cluster fault schedule.
type ClusterPlan struct {
	Seed   int64
	Faults []ClusterFault // ascending AtObs; ties apply in slice order
}

// NewClusterPlan draws a fault schedule for a stream of streamLen
// observations against a cluster of workers. Every plan is guaranteed to
// kill at least one worker mid-stream and restart it before the stream
// ends — the recovery path under test — and may add a second kill, a
// partition, a slow worker, and a corrupt stored checkpoint (placed just
// before a kill so the fallback is actually exercised). Two calls with
// the same arguments produce the same plan.
func NewClusterPlan(seed int64, workers, streamLen int) *ClusterPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &ClusterPlan{Seed: seed}
	if workers < 1 || streamLen < 8 {
		return p
	}
	kills := 1 + rng.Intn(2)
	for k := 0; k < kills; k++ {
		w := rng.Intn(workers)
		at := 1 + streamLen/8 + rng.Intn(streamLen/2)
		back := at + 1 + rng.Intn(streamLen/4+1)
		if back >= streamLen {
			back = streamLen - 1
		}
		if back <= at {
			continue
		}
		if rng.Intn(3) == 0 {
			// Sometimes the stored checkpoint for a random shard is
			// corrupt when the kill forces a handoff.
			p.Faults = append(p.Faults, ClusterFault{AtObs: at, Kind: FaultCorruptCheckpoint, Worker: rng.Intn(workers * 4)})
		}
		p.Faults = append(p.Faults,
			ClusterFault{AtObs: at, Kind: FaultKill, Worker: w},
			ClusterFault{AtObs: back, Kind: FaultRestart, Worker: w},
		)
	}
	if rng.Intn(2) == 0 {
		p.Faults = append(p.Faults, ClusterFault{
			AtObs: 1 + rng.Intn(streamLen-2), Kind: FaultPartition, Worker: rng.Intn(workers),
		})
	}
	if rng.Intn(3) == 0 {
		p.Faults = append(p.Faults, ClusterFault{
			AtObs: 1 + rng.Intn(streamLen-2), Kind: FaultSlow, Worker: rng.Intn(workers),
		})
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].AtObs < p.Faults[j].AtObs })
	return p
}

// String renders the plan compactly — the reproduction recipe a failing
// chaos test logs (and CI uploads as an artifact).
func (p *ClusterPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, f := range p.Faults {
		fmt.Fprintf(&b, " @%d:%s(w%d)", f.AtObs, f.Kind, f.Worker)
	}
	return b.String()
}
