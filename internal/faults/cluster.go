package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ClusterFaultKind names one kind of injected cluster failure.
type ClusterFaultKind int

const (
	// FaultKill crashes a worker process: connections sever and the
	// worker's engine state is gone (next incarnation has a new boot ID).
	FaultKill ClusterFaultKind = iota
	// FaultRestart brings a previously killed worker back on the same
	// address with a fresh boot ID.
	FaultRestart
	// FaultPartition severs a worker's live connections but keeps its
	// process (and engine state) intact — the reconnect replays through.
	FaultPartition
	// FaultSlow makes a worker's writes lag, provoking barrier timeouts
	// and spurious (but correctness-neutral) handoffs.
	FaultSlow
	// FaultCorruptCheckpoint flips bytes in the coordinator's stored
	// checkpoint for one shard (Worker holds the shard index), forcing
	// the assign-rejection → full-journal-replay fallback at the next
	// handoff.
	FaultCorruptCheckpoint
	// FaultPartitionHold severs a worker's connections AND rejects every
	// reconnect until a matching FaultHeal — a held network partition,
	// not a blip. The degraded-mode suite pairs it with a coordinator
	// running under a PartitionGrace.
	FaultPartitionHold
	// FaultHeal ends a FaultPartitionHold on the same worker.
	FaultHeal
	// FaultCoordKill crashes the active coordinator (no drain, no lease
	// release); the driver's warm standby adopts the published
	// checkpoint once the lease expires.
	FaultCoordKill
	// FaultSlowAll and FaultFastAll bracket a sustained overload span:
	// every worker's write path lags (service rate below offered rate),
	// then recovers.
	FaultSlowAll
	FaultFastAll
)

func (k ClusterFaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultSlow:
		return "slow"
	case FaultCorruptCheckpoint:
		return "corrupt-checkpoint"
	case FaultPartitionHold:
		return "partition-hold"
	case FaultHeal:
		return "heal"
	case FaultCoordKill:
		return "coord-kill"
	case FaultSlowAll:
		return "slow-all"
	case FaultFastAll:
		return "fast-all"
	}
	return fmt.Sprintf("ClusterFaultKind(%d)", int(k))
}

// ClusterFault is one scheduled failure: inject Kind against Worker just
// before ingesting the AtObs-th observation of the stream.
type ClusterFault struct {
	AtObs  int
	Kind   ClusterFaultKind
	Worker int // target worker index (FaultCorruptCheckpoint: shard index)
}

// ClusterPlan is a seeded, reproducible cluster fault schedule.
type ClusterPlan struct {
	Seed   int64
	Faults []ClusterFault // ascending AtObs; ties apply in slice order
}

// NewClusterPlan draws a fault schedule for a stream of streamLen
// observations against a cluster of workers. Every plan is guaranteed to
// kill at least one worker mid-stream and restart it before the stream
// ends — the recovery path under test — and may add a second kill, a
// partition, a slow worker, and a corrupt stored checkpoint (placed just
// before a kill so the fallback is actually exercised). Two calls with
// the same arguments produce the same plan.
func NewClusterPlan(seed int64, workers, streamLen int) *ClusterPlan {
	rng := rand.New(rand.NewSource(seed))
	p := &ClusterPlan{Seed: seed}
	if workers < 1 || streamLen < 8 {
		return p
	}
	kills := 1 + rng.Intn(2)
	for k := 0; k < kills; k++ {
		w := rng.Intn(workers)
		at := 1 + streamLen/8 + rng.Intn(streamLen/2)
		back := at + 1 + rng.Intn(streamLen/4+1)
		if back >= streamLen {
			back = streamLen - 1
		}
		if back <= at {
			continue
		}
		if rng.Intn(3) == 0 {
			// Sometimes the stored checkpoint for a random shard is
			// corrupt when the kill forces a handoff.
			p.Faults = append(p.Faults, ClusterFault{AtObs: at, Kind: FaultCorruptCheckpoint, Worker: rng.Intn(workers * 4)})
		}
		p.Faults = append(p.Faults,
			ClusterFault{AtObs: at, Kind: FaultKill, Worker: w},
			ClusterFault{AtObs: back, Kind: FaultRestart, Worker: w},
		)
	}
	if rng.Intn(2) == 0 {
		p.Faults = append(p.Faults, ClusterFault{
			AtObs: 1 + rng.Intn(streamLen-2), Kind: FaultPartition, Worker: rng.Intn(workers),
		})
	}
	if rng.Intn(3) == 0 {
		p.Faults = append(p.Faults, ClusterFault{
			AtObs: 1 + rng.Intn(streamLen-2), Kind: FaultSlow, Worker: rng.Intn(workers),
		})
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].AtObs < p.Faults[j].AtObs })
	return p
}

// NewDegradedPlan draws a degraded-mode fault schedule for a stream
// whose observation timestamps (in nanoseconds, non-decreasing) are
// atNS. Every plan is guaranteed to hold a network partition against
// one worker for at least minPartitionNS of virtual stream time (30s),
// kill the coordinator once mid-stream, and run a sustained overload
// span where every worker's write path lags; about half the plans also
// kill and restart a second worker on top. Two calls with the same
// arguments produce the same plan.
func NewDegradedPlan(seed int64, workers int, atNS []int64) *ClusterPlan {
	const minPartitionNS = 30_000_000_000
	rng := rand.New(rand.NewSource(seed ^ 0xde96aded))
	p := &ClusterPlan{Seed: seed}
	n := len(atNS)
	if workers < 1 || n < 24 {
		return p
	}

	// A held partition spanning ≥30s of stream time: the heal index is
	// computed from the timestamps, not guessed from the average step.
	w := rng.Intn(workers)
	hold := 1 + n/8 + rng.Intn(n/8+1)
	heal := hold + 1
	for heal < n-1 && atNS[heal]-atNS[hold] < minPartitionNS {
		heal++
	}
	p.Faults = append(p.Faults,
		ClusterFault{AtObs: hold, Kind: FaultPartitionHold, Worker: w},
		ClusterFault{AtObs: heal, Kind: FaultHeal, Worker: w},
	)

	// One coordinator kill — sometimes inside the partition window (the
	// standby then adopts a checkpoint whose detached shard is covered
	// by its journal suffix), sometimes after it.
	kill := 1 + n/3 + rng.Intn(n/2)
	if kill >= n {
		kill = n - 1
	}
	p.Faults = append(p.Faults, ClusterFault{AtObs: kill, Kind: FaultCoordKill})

	// A sustained overload span: all workers slow for ~a sixth of the
	// stream.
	s0 := 1 + rng.Intn(n/2)
	s1 := s0 + n/6
	if s1 >= n {
		s1 = n - 1
	}
	p.Faults = append(p.Faults,
		ClusterFault{AtObs: s0, Kind: FaultSlowAll},
		ClusterFault{AtObs: s1, Kind: FaultFastAll},
	)

	// About half the plans also crash-and-restart a second worker.
	if workers > 1 && rng.Intn(2) == 0 {
		w2 := (w + 1 + rng.Intn(workers-1)) % workers
		at := 1 + n/4 + rng.Intn(n/2)
		back := at + 1 + rng.Intn(n/4+1)
		if back >= n {
			back = n - 1
		}
		if back > at {
			p.Faults = append(p.Faults,
				ClusterFault{AtObs: at, Kind: FaultKill, Worker: w2},
				ClusterFault{AtObs: back, Kind: FaultRestart, Worker: w2},
			)
		}
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].AtObs < p.Faults[j].AtObs })
	return p
}

// String renders the plan compactly — the reproduction recipe a failing
// chaos test logs (and CI uploads as an artifact).
func (p *ClusterPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, f := range p.Faults {
		fmt.Fprintf(&b, " @%d:%s(w%d)", f.AtObs, f.Kind, f.Worker)
	}
	return b.String()
}
