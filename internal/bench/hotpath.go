package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/core/shard"
	"rcep/internal/rules"
)

// Hot-path regression harness (DESIGN.md §9): the same supply-chain
// workload runs through the interpreted oracle and the compiled plans at
// each shard count. Every run folds its detection stream — (rule, begin,
// end, bindings) in delivery order — into an order-sensitive hash, so the
// report itself witnesses that the two paths produced byte-identical
// streams; the sweep fails loudly when they diverge.

// HotpathRun is one measured (mode, shard count) cell. AllocsPerEv is the
// end-to-end number — everything the run allocated per observation,
// harness hash fold included. EngineAllocsPerEv is a second pass over the
// same workload with a count-only detection callback, isolating what the
// engine and merge layers themselves allocate; the gap between the two is
// the harness's own overhead, reported so the alloc accounting reconciles
// with detect's per-layer budget suite.
type HotpathRun struct {
	ElapsedNS         int64   `json:"elapsed_ns"`
	EPS               float64 `json:"throughput_eps"`
	Detections        uint64  `json:"detections"`
	AllocsPerEv       float64 `json:"allocs_per_event"`
	EngineAllocsPerEv float64 `json:"engine_allocs_per_event,omitempty"`
	StreamHash        string  `json:"stream_hash"`
}

// HotpathPoint compares the paths at one shard count: the interpreted
// oracle, the compiled per-observation path, and the compiled path fed
// through IngestBatch in read-cycle-sized batches (DESIGN.md §12).
type HotpathPoint struct {
	Shards         int        `json:"shards"`
	Workers        int        `json:"workers"`
	Interpreted    HotpathRun `json:"interpreted"`
	Compiled       HotpathRun `json:"compiled"`
	Batched        HotpathRun `json:"batched_compiled"`
	Speedup        float64    `json:"speedup_compiled_vs_interpreted"`
	SpeedupBatched float64    `json:"speedup_batched_vs_interpreted"`
}

// HotpathReport is the BENCH_hotpath.json schema.
type HotpathReport struct {
	Workload string         `json:"workload"`
	Events   int            `json:"events"`
	Rules    int            `json:"rules"`
	Points   []HotpathPoint `json:"points"`
}

// hotpathMode selects which ingest path a cell measures.
type hotpathMode int

const (
	modeInterpreted hotpathMode = iota // per-observation, interpreted plans
	modeCompiled                       // per-observation, compiled plans
	modeBatched                        // IngestBatch in read-cycle chunks, compiled plans
)

// hotpathBatch is the read-cycle batch size the batched series feeds —
// the same chunking the sharded ingest loop has always used.
const hotpathBatch = 256

// hotpathEngine builds the engine for one cell and returns its ingest
// and close hooks. shards ≤ 1 runs the single detect engine; larger
// counts run the sharded engine with routed batches.
func hotpathEngine(w *Workload, shards int, mode hotpathMode, onDetect func(int, *event.Instance)) (ingest func() error, closeEng func() error, workers int, err error) {
	rs, err := w.parseRules()
	if err != nil {
		return nil, nil, 0, err
	}
	interpreted := mode == modeInterpreted
	if shards <= 1 {
		b := graph.NewBuilder()
		x := rules.NewExecutor(rs, nil, nil, nil)
		if err := x.Bind(b); err != nil {
			return nil, nil, 0, err
		}
		eng, err := detect.New(detect.Config{
			Graph:       b.Finalize(),
			Groups:      w.Groups,
			TypeOf:      w.TypeOf,
			OnDetect:    onDetect,
			Interpreted: interpreted,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if mode == modeBatched {
			ingest = func() error {
				for lo := 0; lo < len(w.Observations); lo += hotpathBatch {
					hi := lo + hotpathBatch
					if hi > len(w.Observations) {
						hi = len(w.Observations)
					}
					if err := eng.IngestBatch(w.Observations[lo:hi]); err != nil {
						return err
					}
				}
				return nil
			}
		} else {
			ingest = func() error {
				for _, o := range w.Observations {
					if err := eng.Ingest(o); err != nil {
						return err
					}
				}
				return nil
			}
		}
		closeEng = func() error { eng.Close(); return nil }
		return ingest, closeEng, 1, nil
	}
	shRules := make([]shard.Rule, len(rs.Rules))
	for i, r := range rs.Rules {
		shRules[i] = shard.Rule{ID: i, Expr: r.Event}
	}
	eng, err := shard.New(shard.Config{
		Rules:       shRules,
		Shards:      shards,
		Groups:      w.Groups,
		TypeOf:      w.TypeOf,
		OnDetect:    onDetect,
		Interpreted: interpreted,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	ingest = func() error {
		for lo := 0; lo < len(w.Observations); lo += hotpathBatch {
			hi := lo + hotpathBatch
			if hi > len(w.Observations) {
				hi = len(w.Observations)
			}
			if err := eng.IngestBatch(w.Observations[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}
	closeEng = func() error {
		eng.Close()
		return eng.Err()
	}
	return ingest, closeEng, eng.Shards(), nil
}

// hotpathRun measures one cell: an end-to-end pass folding every
// detection into the stream hash (allocation-free — the fold appends
// into a reused buffer, so AllocsPerEv is the engine-plus-merge cost,
// not fmt's), then a count-only pass isolating the engine's own
// allocations for the reconciliation column.
func hotpathRun(w *Workload, shards int, mode hotpathMode) (HotpathRun, int, error) {
	h := fnv.New64a()
	var detections uint64
	foldBuf := make([]byte, 0, 256)
	onDetect := func(rid int, inst *event.Instance) {
		detections++
		b := foldBuf[:0]
		b = strconv.AppendInt(b, int64(rid), 10)
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(inst.Begin), 10)
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(inst.End), 10)
		b = append(b, '|')
		b = inst.Binds.AppendText(b)
		b = append(b, '\n')
		h.Write(b)
		foldBuf = b
	}
	ingest, closeEng, workers, err := hotpathEngine(w, shards, mode, onDetect)
	if err != nil {
		return HotpathRun{}, 0, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := ingest(); err != nil {
		return HotpathRun{}, 0, err
	}
	closeErr := closeEng()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if closeErr != nil {
		return HotpathRun{}, 0, closeErr
	}

	run := HotpathRun{
		ElapsedNS:  elapsed.Nanoseconds(),
		Detections: detections,
		StreamHash: fmt.Sprintf("%016x", h.Sum64()),
	}
	if n := len(w.Observations); n > 0 {
		run.EPS = float64(n) / elapsed.Seconds()
		run.AllocsPerEv = float64(after.Mallocs-before.Mallocs) / float64(n)
	}

	// Engine-only pass: same workload, same plans, a callback that does
	// nothing but count. Skipped for the interpreted oracle — its alloc
	// column is the baseline being escaped, not a budget under watch.
	if mode != modeInterpreted && len(w.Observations) > 0 {
		var n2 uint64
		ingest2, close2, _, err := hotpathEngine(w, shards, mode, func(int, *event.Instance) { n2++ })
		if err != nil {
			return HotpathRun{}, 0, err
		}
		runtime.GC()
		runtime.ReadMemStats(&before)
		if err := ingest2(); err != nil {
			return HotpathRun{}, 0, err
		}
		if err := close2(); err != nil {
			return HotpathRun{}, 0, err
		}
		runtime.ReadMemStats(&after)
		run.EngineAllocsPerEv = float64(after.Mallocs-before.Mallocs) / float64(len(w.Observations))
	}
	return run, workers, nil
}

// SweepHotpath runs interpreted vs compiled at each shard count on one
// supply-chain workload and returns the comparison report. It errors when
// any cell's detection stream diverges from its interpreted oracle — the
// report is a regression gate, not just a scoreboard.
func SweepHotpath(shardCounts []int, events, nrules int, seed int64) (*HotpathReport, error) {
	w := Fig9Workload(events, nrules, seed, false)
	rs, err := w.parseRules()
	if err != nil {
		return nil, err
	}
	rep := &HotpathReport{Workload: w.Name, Events: len(w.Observations), Rules: len(rs.Rules)}
	for _, n := range shardCounts {
		interp, _, err := hotpathRun(w, n, modeInterpreted)
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath interpreted shards=%d: %w", n, err)
		}
		comp, workers, err := hotpathRun(w, n, modeCompiled)
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath compiled shards=%d: %w", n, err)
		}
		if comp.StreamHash != interp.StreamHash || comp.Detections != interp.Detections {
			return nil, fmt.Errorf(
				"bench: hotpath shards=%d: compiled stream diverges from interpreted oracle (%d dets %s vs %d dets %s)",
				n, comp.Detections, comp.StreamHash, interp.Detections, interp.StreamHash)
		}
		batched, _, err := hotpathRun(w, n, modeBatched)
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath batched shards=%d: %w", n, err)
		}
		if batched.StreamHash != interp.StreamHash || batched.Detections != interp.Detections {
			return nil, fmt.Errorf(
				"bench: hotpath shards=%d: batched stream diverges from interpreted oracle (%d dets %s vs %d dets %s)",
				n, batched.Detections, batched.StreamHash, interp.Detections, interp.StreamHash)
		}
		pt := HotpathPoint{Shards: n, Workers: workers, Interpreted: interp, Compiled: comp, Batched: batched}
		if comp.ElapsedNS > 0 {
			pt.Speedup = float64(interp.ElapsedNS) / float64(comp.ElapsedNS)
		}
		if batched.ElapsedNS > 0 {
			pt.SpeedupBatched = float64(interp.ElapsedNS) / float64(batched.ElapsedNS)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteJSON writes the report in the BENCH_hotpath.json schema.
func (r *HotpathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintTable renders the report for terminals.
func (r *HotpathReport) PrintTable(w io.Writer) {
	fmt.Fprintf(w, "hot path: %s (%d events, %d rules)\n", r.Workload, r.Events, r.Rules)
	fmt.Fprintf(w, "%8s %8s %14s %14s %14s %9s %12s %12s %10s\n",
		"shards", "workers", "interp eps", "compiled eps", "batched eps", "speedup", "comp a/ev", "eng a/ev", "dets")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %8d %14.0f %14.0f %14.0f %8.2fx %12.2f %12.2f %10d\n",
			p.Shards, p.Workers, p.Interpreted.EPS, p.Compiled.EPS, p.Batched.EPS, p.SpeedupBatched,
			p.Batched.AllocsPerEv, p.Batched.EngineAllocsPerEv, p.Compiled.Detections)
	}
}
