package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"time"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/core/shard"
	"rcep/internal/rules"
)

// Hot-path regression harness (DESIGN.md §9): the same supply-chain
// workload runs through the interpreted oracle and the compiled plans at
// each shard count. Every run folds its detection stream — (rule, begin,
// end, bindings) in delivery order — into an order-sensitive hash, so the
// report itself witnesses that the two paths produced byte-identical
// streams; the sweep fails loudly when they diverge.

// HotpathRun is one measured (mode, shard count) cell.
type HotpathRun struct {
	ElapsedNS   int64   `json:"elapsed_ns"`
	EPS         float64 `json:"throughput_eps"`
	Detections  uint64  `json:"detections"`
	AllocsPerEv float64 `json:"allocs_per_event"`
	StreamHash  string  `json:"stream_hash"`
}

// HotpathPoint compares the two paths at one shard count.
type HotpathPoint struct {
	Shards      int        `json:"shards"`
	Workers     int        `json:"workers"`
	Interpreted HotpathRun `json:"interpreted"`
	Compiled    HotpathRun `json:"compiled"`
	Speedup     float64    `json:"speedup_compiled_vs_interpreted"`
}

// HotpathReport is the BENCH_hotpath.json schema.
type HotpathReport struct {
	Workload string         `json:"workload"`
	Events   int            `json:"events"`
	Rules    int            `json:"rules"`
	Points   []HotpathPoint `json:"points"`
}

// hotpathRun measures one pass. shards ≤ 1 runs the single detect engine;
// larger counts run the sharded engine with routed batches.
func hotpathRun(w *Workload, shards int, interpreted bool) (HotpathRun, int, error) {
	rs, err := w.parseRules()
	if err != nil {
		return HotpathRun{}, 0, err
	}
	h := fnv.New64a()
	var detections uint64
	onDetect := func(rid int, inst *event.Instance) {
		detections++
		fmt.Fprintf(h, "%d|%d|%d|%s\n", rid, inst.Begin, inst.End, inst.Binds.String())
	}

	workers := 1
	var ingest func() error
	var closeEng func()
	var closeErr error
	if shards <= 1 {
		b := graph.NewBuilder()
		x := rules.NewExecutor(rs, nil, nil, nil)
		if err := x.Bind(b); err != nil {
			return HotpathRun{}, 0, err
		}
		eng, err := detect.New(detect.Config{
			Graph:       b.Finalize(),
			Groups:      w.Groups,
			TypeOf:      w.TypeOf,
			OnDetect:    onDetect,
			Interpreted: interpreted,
		})
		if err != nil {
			return HotpathRun{}, 0, err
		}
		ingest = func() error {
			for _, o := range w.Observations {
				if err := eng.Ingest(o); err != nil {
					return err
				}
			}
			return nil
		}
		closeEng = eng.Close
	} else {
		shRules := make([]shard.Rule, len(rs.Rules))
		for i, r := range rs.Rules {
			shRules[i] = shard.Rule{ID: i, Expr: r.Event}
		}
		eng, err := shard.New(shard.Config{
			Rules:       shRules,
			Shards:      shards,
			Groups:      w.Groups,
			TypeOf:      w.TypeOf,
			OnDetect:    onDetect,
			Interpreted: interpreted,
		})
		if err != nil {
			return HotpathRun{}, 0, err
		}
		workers = eng.Shards()
		ingest = func() error {
			const batch = 256
			for lo := 0; lo < len(w.Observations); lo += batch {
				hi := lo + batch
				if hi > len(w.Observations) {
					hi = len(w.Observations)
				}
				if err := eng.IngestBatch(w.Observations[lo:hi]); err != nil {
					return err
				}
			}
			return nil
		}
		closeEng = func() {
			eng.Close()
			closeErr = eng.Err()
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := ingest(); err != nil {
		return HotpathRun{}, 0, err
	}
	closeEng()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if closeErr != nil {
		return HotpathRun{}, 0, closeErr
	}

	run := HotpathRun{
		ElapsedNS:  elapsed.Nanoseconds(),
		Detections: detections,
		StreamHash: fmt.Sprintf("%016x", h.Sum64()),
	}
	if n := len(w.Observations); n > 0 {
		run.EPS = float64(n) / elapsed.Seconds()
		run.AllocsPerEv = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return run, workers, nil
}

// SweepHotpath runs interpreted vs compiled at each shard count on one
// supply-chain workload and returns the comparison report. It errors when
// any cell's detection stream diverges from its interpreted oracle — the
// report is a regression gate, not just a scoreboard.
func SweepHotpath(shardCounts []int, events, nrules int, seed int64) (*HotpathReport, error) {
	w := Fig9Workload(events, nrules, seed, false)
	rs, err := w.parseRules()
	if err != nil {
		return nil, err
	}
	rep := &HotpathReport{Workload: w.Name, Events: len(w.Observations), Rules: len(rs.Rules)}
	for _, n := range shardCounts {
		interp, _, err := hotpathRun(w, n, true)
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath interpreted shards=%d: %w", n, err)
		}
		comp, workers, err := hotpathRun(w, n, false)
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath compiled shards=%d: %w", n, err)
		}
		if comp.StreamHash != interp.StreamHash || comp.Detections != interp.Detections {
			return nil, fmt.Errorf(
				"bench: hotpath shards=%d: compiled stream diverges from interpreted oracle (%d dets %s vs %d dets %s)",
				n, comp.Detections, comp.StreamHash, interp.Detections, interp.StreamHash)
		}
		pt := HotpathPoint{Shards: n, Workers: workers, Interpreted: interp, Compiled: comp}
		if comp.ElapsedNS > 0 {
			pt.Speedup = float64(interp.ElapsedNS) / float64(comp.ElapsedNS)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteJSON writes the report in the BENCH_hotpath.json schema.
func (r *HotpathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintTable renders the report for terminals.
func (r *HotpathReport) PrintTable(w io.Writer) {
	fmt.Fprintf(w, "hot path: %s (%d events, %d rules)\n", r.Workload, r.Events, r.Rules)
	fmt.Fprintf(w, "%8s %8s %14s %14s %9s %12s %12s %10s\n",
		"shards", "workers", "interp eps", "compiled eps", "speedup", "interp a/ev", "comp a/ev", "dets")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %8d %14.0f %14.0f %8.2fx %12.2f %12.2f %10d\n",
			p.Shards, p.Workers, p.Interpreted.EPS, p.Compiled.EPS, p.Speedup,
			p.Interpreted.AllocsPerEv, p.Compiled.AllocsPerEv, p.Compiled.Detections)
	}
}
