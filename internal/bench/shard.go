package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rcep/internal/core/event"
	"rcep/internal/core/shard"
)

// RunShardEngine measures the sharded detection engine (key-space rule
// partitioning + per-shard workers + routed fan-out, internal/core/shard)
// on the workload. The observation stream is fed through the router in
// batches; detections are counted at the merged fan-in, so the result is
// comparable with RunRCEDA.
func RunShardEngine(w *Workload, n int, opts Options) (Result, error) {
	rs, err := w.parseRules()
	if err != nil {
		return Result{}, err
	}
	shRules := make([]shard.Rule, len(rs.Rules))
	for i, r := range rs.Rules {
		shRules[i] = shard.Rule{ID: i, Expr: r.Event}
	}
	var detections uint64
	eng, err := shard.New(shard.Config{
		Rules:           shRules,
		Shards:          n,
		Context:         opts.Context,
		Groups:          w.Groups,
		TypeOf:          w.TypeOf,
		IndexPrimitives: opts.IndexPrimitives,
		Interpreted:     opts.Interpreted,
		OnDetect:        func(int, *event.Instance) { detections++ },
	})
	if err != nil {
		return Result{}, err
	}
	const batch = 256
	start := time.Now()
	for lo := 0; lo < len(w.Observations); lo += batch {
		hi := lo + batch
		if hi > len(w.Observations) {
			hi = len(w.Observations)
		}
		if err := eng.IngestBatch(w.Observations[lo:hi]); err != nil {
			return Result{}, err
		}
	}
	eng.Close()
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return Result{}, err
	}
	return Result{
		Events:     len(w.Observations),
		Rules:      len(rs.Rules),
		Elapsed:    elapsed,
		Detections: detections,
		Metrics:    eng.Metrics(),
	}, nil
}

// ShardPoint is one measured shard count.
type ShardPoint struct {
	Shards     int     `json:"shards"`  // requested
	Workers    int     `json:"workers"` // partition's actual shard count
	ElapsedNS  int64   `json:"elapsed_ns"`
	Throughput float64 `json:"throughput_eps"`
	Detections uint64  `json:"detections"`
	Speedup    float64 `json:"speedup_vs_single"`
}

// ShardReport is the BENCH_shard.json schema: a single-engine baseline
// plus one point per shard count on the same supply-chain workload.
type ShardReport struct {
	Workload     string       `json:"workload"`
	Events       int          `json:"events"`
	Rules        int          `json:"rules"`
	BaselineNS   int64        `json:"baseline_elapsed_ns"`
	BaselineEPS  float64      `json:"baseline_throughput_eps"`
	BaselineDets uint64       `json:"baseline_detections"`
	Points       []ShardPoint `json:"points"`
}

// SweepShards measures the sharded engine at each shard count against the
// single-engine baseline on one supply-chain workload.
func SweepShards(shardCounts []int, events, nrules int, seed int64) (*ShardReport, error) {
	w := Fig9Workload(events, nrules, seed, false)
	base, err := RunRCEDA(w, Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	rep := &ShardReport{
		Workload:     w.Name,
		Events:       base.Events,
		Rules:        base.Rules,
		BaselineNS:   base.Elapsed.Nanoseconds(),
		BaselineEPS:  base.Throughput(),
		BaselineDets: base.Detections,
	}
	rs, err := w.parseRules()
	if err != nil {
		return nil, err
	}
	shRules := make([]shard.Rule, len(rs.Rules))
	for i, r := range rs.Rules {
		shRules[i] = shard.Rule{ID: i, Expr: r.Event}
	}
	for _, n := range shardCounts {
		r, err := RunShardEngine(w, n, Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: shards=%d: %w", n, err)
		}
		if r.Detections != base.Detections {
			return nil, fmt.Errorf("bench: shards=%d detected %d events, single engine %d — sharding changed semantics",
				n, r.Detections, base.Detections)
		}
		workers := len(shard.NewPartition(shRules, n, w.Groups).ByShard)
		rep.Points = append(rep.Points, ShardPoint{
			Shards:     n,
			Workers:    workers,
			ElapsedNS:  r.Elapsed.Nanoseconds(),
			Throughput: r.Throughput(),
			Detections: r.Detections,
			Speedup:    float64(base.Elapsed) / float64(r.Elapsed),
		})
	}
	return rep, nil
}

// WriteJSON renders the report for BENCH_shard.json.
func (r *ShardReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintTable renders the sweep like the other benchmark series.
func (r *ShardReport) PrintTable(w io.Writer) {
	fmt.Fprintf(w, "shard sweep: %s\n", r.Workload)
	fmt.Fprintf(w, "%10s %10s %12s %14s %10s\n", "shards", "workers", "elapsed", "events/sec", "speedup")
	fmt.Fprintf(w, "%10s %10s %12s %14.0f %10s\n", "single", "1",
		time.Duration(r.BaselineNS), r.BaselineEPS, "1.00x")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d %10d %12s %14.0f %9.2fx\n",
			p.Shards, p.Workers, time.Duration(p.ElapsedNS), p.Throughput, p.Speedup)
	}
}
