package bench

import (
	"bytes"
	"fmt"
	"testing"

	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/core/shard"
	"rcep/internal/rules"
)

// hotpathWorkload scales the supply-chain workload to the runner: the
// full sweep (and `experiments hotpath`) uses the 400-rule/100k-event
// bench shape; under -short (CI's -race leg) it shrinks but keeps every
// rule family in play.
func hotpathWorkload(t *testing.T) *Workload {
	t.Helper()
	events, nrules := 20000, 400
	if testing.Short() {
		events, nrules = 4000, 60
	}
	return Fig9Workload(events, nrules, 9, false)
}

// detSig renders one detection in (rule, interval, bindings, seq) form —
// the byte-identical unit of the equivalence suite.
func detSig(rid int, inst *event.Instance) string {
	return fmt.Sprintf("%d|%d|%d|%s|%d", rid, inst.Begin, inst.End, inst.Binds.String(), inst.Seq)
}

// captureStream replays the workload and returns every detection
// signature in delivery order. checkpointAt > 0 additionally saves a
// shard/v1 (or single-engine) checkpoint after that many observations,
// abandons the first engine, restores into a fresh one and finishes the
// stream there — detections before and after the cut concatenate.
func captureStream(t *testing.T, w *Workload, shards int, interpreted bool, checkpointAt int) []string {
	t.Helper()
	rs, err := w.parseRules()
	if err != nil {
		t.Fatal(err)
	}
	var stream []string
	var capture = true
	onDetect := func(rid int, inst *event.Instance) {
		if capture {
			stream = append(stream, detSig(rid, inst))
		}
	}

	type engine interface {
		Ingest(event.Observation) error
		Close()
		SaveCheckpoint(w *bytes.Buffer) error
		RestoreCheckpoint(r *bytes.Buffer) error
	}
	newEngine := func() engine {
		if shards <= 1 {
			b := graph.NewBuilder()
			x := rules.NewExecutor(rs, nil, nil, nil)
			if err := x.Bind(b); err != nil {
				t.Fatal(err)
			}
			eng, err := detect.New(detect.Config{
				Graph:       b.Finalize(),
				Groups:      w.Groups,
				TypeOf:      w.TypeOf,
				OnDetect:    onDetect,
				Interpreted: interpreted,
			})
			if err != nil {
				t.Fatal(err)
			}
			return singleAdapter{eng}
		}
		shRules := make([]shard.Rule, len(rs.Rules))
		for i, r := range rs.Rules {
			shRules[i] = shard.Rule{ID: i, Expr: r.Event}
		}
		eng, err := shard.New(shard.Config{
			Rules:       shRules,
			Shards:      shards,
			Groups:      w.Groups,
			TypeOf:      w.TypeOf,
			OnDetect:    onDetect,
			Interpreted: interpreted,
		})
		if err != nil {
			t.Fatal(err)
		}
		return shardAdapter{t, eng}
	}

	eng := newEngine()
	obs := w.Observations
	if checkpointAt > 0 && checkpointAt < len(obs) {
		for _, o := range obs[:checkpointAt] {
			if err := eng.Ingest(o); err != nil {
				t.Fatal(err)
			}
		}
		var ck bytes.Buffer
		if err := eng.SaveCheckpoint(&ck); err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
		// Abandon the first engine without draining its windows: Close
		// would fire detections the restored engine will deliver again.
		capture = false
		eng.Close()
		capture = true
		eng = newEngine()
		if err := eng.RestoreCheckpoint(&ck); err != nil {
			t.Fatalf("RestoreCheckpoint: %v", err)
		}
		obs = obs[checkpointAt:]
	}
	for _, o := range obs {
		if err := eng.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	return stream
}

type singleAdapter struct{ eng *detect.Engine }

func (a singleAdapter) Ingest(o event.Observation) error        { return a.eng.Ingest(o) }
func (a singleAdapter) Close()                                  { a.eng.Close() }
func (a singleAdapter) SaveCheckpoint(w *bytes.Buffer) error    { return a.eng.SaveCheckpoint(w) }
func (a singleAdapter) RestoreCheckpoint(r *bytes.Buffer) error { return a.eng.RestoreCheckpoint(r) }

type shardAdapter struct {
	t   *testing.T
	eng *shard.Engine
}

func (a shardAdapter) Ingest(o event.Observation) error { return a.eng.Ingest(o) }
func (a shardAdapter) Close() {
	a.eng.Close()
	if err := a.eng.Err(); err != nil {
		a.t.Fatalf("shard engine: %v", err)
	}
}
func (a shardAdapter) SaveCheckpoint(w *bytes.Buffer) error    { return a.eng.SaveCheckpoint(w) }
func (a shardAdapter) RestoreCheckpoint(r *bytes.Buffer) error { return a.eng.RestoreCheckpoint(r) }

func diffStreams(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d detections, oracle has %d", label, len(got), len(want))
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("%s: detection %d = %q, oracle %q", label, i, got[i], want[i])
			return
		}
	}
}

// TestHotpathEquivalence is the metamorphic core of the suite: on the
// bench workload (every rule family, negation included), the compiled
// hot path must deliver the interpreted oracle's detection stream
// byte-for-byte — same order, same intervals, same bindings, same
// sequence numbers — at every shard width.
func TestHotpathEquivalence(t *testing.T) {
	w := hotpathWorkload(t)
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			oracle := captureStream(t, w, shards, true, 0)
			if len(oracle) == 0 {
				t.Fatal("oracle produced no detections; workload is vacuous")
			}
			got := captureStream(t, w, shards, false, 0)
			diffStreams(t, "compiled vs interpreted", oracle, got)
		})
	}
}

// TestHotpathEquivalenceAcrossCheckpoint adds the persistence leg: the
// compiled engine checkpoints mid-stream (single-engine and shard/v1
// formats), restores into a fresh compiled engine — whose plans and
// intern table are rebuilt from scratch, never serialized — and must
// still reproduce the uninterrupted interpreted oracle. Sequence numbers
// are part of the signature: checkpoints preserve the counters.
func TestHotpathEquivalenceAcrossCheckpoint(t *testing.T) {
	w := hotpathWorkload(t)
	cut := len(w.Observations) / 2
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			oracle := captureStream(t, w, shards, true, 0)
			if len(oracle) == 0 {
				t.Fatal("oracle produced no detections; workload is vacuous")
			}
			got := captureStream(t, w, shards, false, cut)
			diffStreams(t, "compiled+checkpoint vs interpreted", oracle, got)
		})
	}
}

// TestHotpathSweepGuard runs the report generator small and checks its
// built-in oracle guard and schema fields, so `experiments hotpath`
// failures are bench bugs, not report bugs.
func TestHotpathSweepGuard(t *testing.T) {
	rep, err := SweepHotpath([]int{1, 2}, 3000, 40, 7)
	if err != nil {
		t.Fatalf("SweepHotpath: %v", err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("report has %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Compiled.StreamHash != p.Interpreted.StreamHash {
			t.Errorf("shards=%d: hashes diverge in a report that passed the guard", p.Shards)
		}
		if p.Batched.StreamHash != p.Interpreted.StreamHash {
			t.Errorf("shards=%d: batched hash diverges in a report that passed the guard", p.Shards)
		}
		if p.Compiled.Detections == 0 {
			t.Errorf("shards=%d: no detections; sweep is vacuous", p.Shards)
		}
		if p.Compiled.EPS <= 0 || p.Interpreted.EPS <= 0 || p.Batched.EPS <= 0 {
			t.Errorf("shards=%d: non-positive throughput", p.Shards)
		}
		if p.Batched.EngineAllocsPerEv <= 0 {
			t.Errorf("shards=%d: engine alloc column missing from batched run", p.Shards)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{"stream_hash", "allocs_per_event", "engine_allocs_per_event",
		"batched_compiled", "speedup_compiled_vs_interpreted", "speedup_batched_vs_interpreted"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("JSON report missing %q field", want)
		}
	}
}
