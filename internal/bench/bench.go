// Package bench is the measurement harness for the paper's evaluation
// (§5, Fig. 9) and this repository's ablations (DESIGN.md A1–A3). It
// builds supply-chain workloads at a target primitive-event count and rule
// count, runs them through RCEDA (or the type-level ECA baseline), and
// reports total event processing time. Matching the paper's methodology,
// action cost (database updates, alarms) is NOT counted: detections are
// consumed by a no-op sink unless IncludeActions is set.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	pctx "rcep/internal/core/context"
	"rcep/internal/core/detect"
	"rcep/internal/core/event"
	"rcep/internal/core/graph"
	"rcep/internal/eca"
	"rcep/internal/pipeline"
	"rcep/internal/rules"
	"rcep/internal/sim"
	"rcep/internal/store"
)

// Workload is a prepared benchmark input.
type Workload struct {
	Name         string
	Observations []event.Observation
	Script       string
	RuleCount    int
	Groups       func(string) []string
	TypeOf       func(string) string
}

// ecaFamilies are the rule families the traditional baseline can express
// (no negation).
var ecaFamilies = []string{"dup", "loc", "pack"}

// Fig9Workload builds a supply-chain workload with approximately `events`
// primitive events and exactly `nrules` rules (cycling through the rule
// families across packing lines). negationFree restricts to families the
// ECA baseline supports.
func Fig9Workload(events, nrules int, seed int64, negationFree bool) *Workload {
	families := sim.AllFamilies()
	if negationFree {
		families = ecaFamilies
	}
	lines := (nrules + len(families) - 1) / len(families)
	if lines < 1 {
		lines = 1
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Lines = lines
	cfg.DupProb = 0.05
	cfg.Badges = 2

	// Estimate observations per case to size CasesPerLine.
	perCase := cfg.ItemsPerCase + 1 + 3 + cfg.ShelfCycles*cfg.ItemsPerCase +
		int(cfg.SellFraction*float64(cfg.ItemsPerCase))
	perLineFixed := cfg.Badges * 2 // worst case: every laptop escorted
	casesPerLine := int(math.Ceil(float64(events-lines*perLineFixed) / float64(lines*perCase)))
	if casesPerLine < 1 {
		casesPerLine = 1
	}
	cfg.CasesPerLine = casesPerLine
	sc := sim.Generate(cfg)

	obs := sc.Observations
	if len(obs) > events && events > 0 {
		obs = obs[:events]
	}

	script := sim.RuleScript(lines, families)
	return &Workload{
		Name:         fmt.Sprintf("events=%d rules=%d", len(obs), nrules),
		Observations: obs,
		Script:       script,
		RuleCount:    nrules,
		Groups:       sc.ChainGroups(),
		TypeOf:       sc.Registry.TypeOf,
	}
}

// parseRules returns the workload's rule set, truncated to RuleCount (the
// generator emits whole per-line family blocks; the sweep wants an exact
// rule count).
func (w *Workload) parseRules() (*rules.RuleSet, error) {
	rs, err := rules.ParseScript(w.Script)
	if err != nil {
		return nil, err
	}
	if w.RuleCount > 0 && len(rs.Rules) > w.RuleCount {
		rs.Rules = rs.Rules[:w.RuleCount]
	}
	return rs, nil
}

// Options tune a run.
type Options struct {
	Context         pctx.Context
	DisableMerging  bool
	IncludeActions  bool // run conditions and actions (excluded by default, as in the paper)
	IndexPrimitives bool // A5: reader-literal dispatch instead of probing every leaf
	Interpreted     bool // force the per-event AST interpreter (oracle for the compiled hot path)
}

// Result is one measured run.
type Result struct {
	Events     int
	Rules      int
	Elapsed    time.Duration
	Detections uint64
	Metrics    detect.Metrics
}

// Throughput returns processed events per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Events) / r.Elapsed.Seconds()
}

// RunRCEDA measures one pass of the workload through the RCEDA engine.
func RunRCEDA(w *Workload, opts Options) (Result, error) {
	rs, err := w.parseRules()
	if err != nil {
		return Result{}, err
	}
	var bopts []graph.Option
	if opts.DisableMerging {
		bopts = append(bopts, graph.WithoutMerging())
	}
	b := graph.NewBuilder(bopts...)

	var detections uint64
	onDetect := func(int, *event.Instance) { detections++ }
	var x *rules.Executor
	if opts.IncludeActions {
		st := store.OpenRFID()
		x = rules.NewExecutor(rs, st, noopProcs(), nil)
		x.TraceFirings = false
		x.Interpreted = opts.Interpreted
		onDetectX := func(rid int, in *event.Instance) {
			detections++
			x.Dispatch(rid, in)
		}
		onDetect = onDetectX
	}
	if x == nil {
		x = rules.NewExecutor(rs, nil, nil, nil)
	}
	if err := x.Bind(b); err != nil {
		return Result{}, err
	}
	eng, err := detect.New(detect.Config{
		Graph:           b.Finalize(),
		Context:         opts.Context,
		Groups:          w.Groups,
		TypeOf:          w.TypeOf,
		OnDetect:        onDetect,
		IndexPrimitives: opts.IndexPrimitives,
		Interpreted:     opts.Interpreted,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	for _, o := range w.Observations {
		if err := eng.Ingest(o); err != nil {
			return Result{}, err
		}
	}
	eng.Close()
	elapsed := time.Since(start)
	return Result{
		Events:     len(w.Observations),
		Rules:      len(rs.Rules),
		Elapsed:    elapsed,
		Detections: detections,
		Metrics:    eng.Metrics(),
	}, nil
}

// RunECA measures the type-level baseline on the workload. The workload
// must be negation-free.
func RunECA(w *Workload) (Result, error) {
	rs, err := w.parseRules()
	if err != nil {
		return Result{}, err
	}
	exprs := map[int]event.Expr{}
	for i, r := range rs.Rules {
		exprs[i] = r.Event
	}
	var detections uint64
	eng, err := eca.New(eca.Config{
		Rules:    exprs,
		Groups:   w.Groups,
		TypeOf:   w.TypeOf,
		OnDetect: func(int, *event.Instance) { detections++ },
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	for _, o := range w.Observations {
		if err := eng.Ingest(o); err != nil {
			return Result{}, err
		}
	}
	eng.Close()
	return Result{
		Events:     len(w.Observations),
		Rules:      len(rs.Rules),
		Elapsed:    time.Since(start),
		Detections: detections,
	}, nil
}

// RunPipelined measures the workload flowing through the concurrent
// Fig. 2 pipeline (source goroutine → dedup stage → engine goroutine)
// instead of direct single-threaded ingestion — the A4 ablation
// quantifying channel-stage overhead/benefit.
func RunPipelined(w *Workload, opts Options) (Result, error) {
	rs, err := w.parseRules()
	if err != nil {
		return Result{}, err
	}
	b := graph.NewBuilder()
	x := rules.NewExecutor(rs, nil, nil, nil)
	if err := x.Bind(b); err != nil {
		return Result{}, err
	}
	var detections uint64
	eng, err := detect.New(detect.Config{
		Graph:    b.Finalize(),
		Context:  opts.Context,
		Groups:   w.Groups,
		TypeOf:   w.TypeOf,
		OnDetect: func(int, *event.Instance) { detections++ },
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	err = pipeline.Run(context.Background(), pipeline.Config{
		Source: pipeline.SliceSource(w.Observations),
		Stages: []pipeline.StageFunc{pipeline.Dedup(time.Second)},
		Sink:   eng.Ingest,
	})
	if err != nil {
		return Result{}, err
	}
	eng.Close()
	return Result{
		Events:     len(w.Observations),
		Rules:      len(rs.Rules),
		Elapsed:    time.Since(start),
		Detections: detections,
		Metrics:    eng.Metrics(),
	}, nil
}

// RunSharded partitions the RULES across n engines, runs each engine in
// its own goroutine over the full observation stream, and unions the
// detections — the A6 scale-out ablation. Rules partition cleanly
// (detection state is per-rule-graph), so results must equal a single
// engine's.
func RunSharded(w *Workload, n int, opts Options) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("bench: need at least one shard")
	}
	rs, err := w.parseRules()
	if err != nil {
		return Result{}, err
	}
	type shard struct {
		eng        *detect.Engine
		detections uint64
	}
	shards := make([]*shard, n)
	for i := range shards {
		b := graph.NewBuilder()
		sh := &shard{}
		idx := 0
		for j, r := range rs.Rules {
			if j%n != i {
				continue
			}
			if _, err := b.AddRule(idx, r.Event); err != nil {
				return Result{}, err
			}
			idx++
		}
		if idx == 0 {
			// Fewer rules than shards: an empty graph is still valid.
			shards[i] = nil
			continue
		}
		eng, err := detect.New(detect.Config{
			Graph:           b.Finalize(),
			Context:         opts.Context,
			Groups:          w.Groups,
			TypeOf:          w.TypeOf,
			IndexPrimitives: opts.IndexPrimitives,
			OnDetect:        func(int, *event.Instance) { sh.detections++ },
		})
		if err != nil {
			return Result{}, err
		}
		sh.eng = eng
		shards[i] = sh
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			for _, o := range w.Observations {
				if err := sh.eng.Ingest(o); err != nil {
					errs[i] = err
					return
				}
			}
			sh.eng.Close()
		}(i, sh)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var detections uint64
	for i, sh := range shards {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if sh != nil {
			detections += sh.detections
		}
	}
	return Result{
		Events:     len(w.Observations),
		Rules:      len(rs.Rules),
		Elapsed:    elapsed,
		Detections: detections,
	}, nil
}

func noopProcs() rules.Procs {
	noop := func(rules.ActionContext, []event.Value) error { return nil }
	return rules.Procs{
		"send_alarm":     noop,
		"mark_duplicate": noop,
	}
}

// Point is one measurement of a series.
type Point struct {
	X int
	Y Result
}

// Series is a labelled sweep.
type Series struct {
	Label  string
	XName  string
	Points []Point
}

// PrintTable renders the series like the paper's figure data: one row per
// sweep point.
func (s Series) PrintTable(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Label)
	fmt.Fprintf(w, "%12s %18s %14s %12s\n", s.XName, "total time (ms)", "events/sec", "detections")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%12d %18.1f %14.0f %12d\n",
			p.X, float64(p.Y.Elapsed.Microseconds())/1000.0, p.Y.Throughput(), p.Y.Detections)
	}
}

// SweepEvents measures total processing time vs. number of primitive
// events at a fixed rule count (Fig. 9's first series).
func SweepEvents(counts []int, nrules int, seed int64) (Series, error) {
	s := Series{Label: fmt.Sprintf("Fig 9a: time vs #events (rules=%d)", nrules), XName: "#events"}
	for _, n := range counts {
		w := Fig9Workload(n, nrules, seed, false)
		r, err := RunRCEDA(w, Options{})
		if err != nil {
			return s, fmt.Errorf("bench: events=%d: %w", n, err)
		}
		s.Points = append(s.Points, Point{X: r.Events, Y: r})
	}
	return s, nil
}

// SweepRules measures total processing time vs. number of rules at a fixed
// event count (Fig. 9's second series).
func SweepRules(counts []int, events int, seed int64) (Series, error) {
	s := Series{Label: fmt.Sprintf("Fig 9b: time vs #rules (events=%d)", events), XName: "#rules"}
	for _, n := range counts {
		w := Fig9Workload(events, n, seed, false)
		r, err := RunRCEDA(w, Options{})
		if err != nil {
			return s, fmt.Errorf("bench: rules=%d: %w", n, err)
		}
		s.Points = append(s.Points, Point{X: n, Y: r})
	}
	return s, nil
}
