package bench

import (
	"bytes"
	"strings"
	"testing"

	pctx "rcep/internal/core/context"
)

func TestFig9WorkloadSizing(t *testing.T) {
	w := Fig9Workload(2000, 25, 1, false)
	if len(w.Observations) == 0 {
		t.Fatalf("empty workload")
	}
	if len(w.Observations) > 2000 {
		t.Errorf("workload exceeds requested events: %d", len(w.Observations))
	}
	if float64(len(w.Observations)) < 0.5*2000 {
		t.Errorf("workload much smaller than requested: %d", len(w.Observations))
	}
	rs, err := w.parseRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 25 {
		t.Errorf("rules: %d, want 25", len(rs.Rules))
	}
}

func TestRunRCEDASmoke(t *testing.T) {
	w := Fig9Workload(1500, 10, 1, false)
	r, err := RunRCEDA(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Detections == 0 {
		t.Errorf("no detections on a supply-chain workload")
	}
	if r.Events != len(w.Observations) || r.Rules != 10 {
		t.Errorf("result bookkeeping: %+v", r)
	}
	if r.Throughput() <= 0 {
		t.Errorf("throughput: %v", r.Throughput())
	}
}

func TestRunRCEDAWithActions(t *testing.T) {
	w := Fig9Workload(800, 10, 1, false)
	r, err := RunRCEDA(w, Options{IncludeActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Detections == 0 {
		t.Errorf("no detections with actions enabled")
	}
}

func TestRunECASmoke(t *testing.T) {
	w := Fig9Workload(1500, 9, 1, true)
	r, err := RunECA(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events == 0 {
		t.Errorf("no events processed")
	}
}

func TestECAWorkloadWithNegationFails(t *testing.T) {
	w := Fig9Workload(500, 10, 1, false) // includes shelf/asset (negation)
	if _, err := RunECA(w); err == nil {
		t.Fatalf("ECA baseline should reject negation rules")
	}
}

func TestMergingAblationSameDetections(t *testing.T) {
	w := Fig9Workload(1200, 15, 3, false)
	a, err := RunRCEDA(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRCEDA(w, Options{DisableMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Detections != b.Detections {
		t.Fatalf("merging changed detections: %d vs %d", a.Detections, b.Detections)
	}
}

func TestRunPipelinedSmoke(t *testing.T) {
	w := Fig9Workload(1500, 10, 1, false)
	direct, err := RunRCEDA(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := RunPipelined(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The dedup stage may suppress injected duplicates, so detections
	// can differ slightly, but both paths must detect something and
	// process every event.
	if piped.Detections == 0 || piped.Events != direct.Events {
		t.Fatalf("pipelined: %+v vs direct %+v", piped, direct)
	}
}

func TestRunShardedMatchesSingleEngine(t *testing.T) {
	w := Fig9Workload(1500, 15, 1, false)
	single, err := RunRCEDA(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 32} {
		sharded, err := RunSharded(w, n, Options{})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if sharded.Detections != single.Detections {
			t.Errorf("shards=%d: detections %d, want %d", n, sharded.Detections, single.Detections)
		}
	}
	if _, err := RunSharded(w, 0, Options{}); err == nil {
		t.Errorf("zero shards accepted")
	}
}

func TestContextOption(t *testing.T) {
	w := Fig9Workload(600, 5, 1, false)
	for _, c := range pctx.All() {
		if _, err := RunRCEDA(w, Options{Context: c}); err != nil {
			t.Errorf("context %v: %v", c, err)
		}
	}
}

func TestSweepsAndTable(t *testing.T) {
	s, err := SweepEvents([]int{300, 600}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[1].Y.Events <= s.Points[0].Y.Events {
		t.Fatalf("event sweep: %+v", s.Points)
	}
	var buf bytes.Buffer
	s.PrintTable(&buf)
	out := buf.String()
	for _, frag := range []string{"#events", "total time (ms)", "detections"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}

	s2, err := SweepRules([]int{5, 10}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Points) != 2 || s2.Points[0].Y.Rules != 5 || s2.Points[1].Y.Rules != 10 {
		t.Fatalf("rule sweep: %+v", s2.Points)
	}
}
