package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunShardEngineMatchesSingle pins the benchmark harness itself: the
// sharded run must detect exactly what the single engine detects, at every
// shard count, or the throughput numbers are meaningless.
func TestRunShardEngineMatchesSingle(t *testing.T) {
	w := Fig9Workload(800, 10, 1, false)
	base, err := RunRCEDA(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Detections == 0 {
		t.Fatal("workload produced no detections; benchmark is vacuous")
	}
	for _, n := range []int{1, 2, 4, 8} {
		r, err := RunShardEngine(w, n, Options{})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if r.Detections != base.Detections {
			t.Errorf("shards=%d: %d detections, single engine %d", n, r.Detections, base.Detections)
		}
		if r.Events != base.Events {
			t.Errorf("shards=%d: %d events, want %d", n, r.Events, base.Events)
		}
	}
}

func TestSweepShardsReport(t *testing.T) {
	rep, err := SweepShards([]int{1, 2}, 600, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %+v", rep.Points)
	}
	for _, p := range rep.Points {
		if p.Detections != rep.BaselineDets {
			t.Errorf("shards=%d detections %d != baseline %d", p.Shards, p.Detections, rep.BaselineDets)
		}
		if p.Workers < 1 || p.Workers > p.Shards {
			t.Errorf("shards=%d: workers=%d out of range", p.Shards, p.Workers)
		}
		if p.Speedup <= 0 || p.Throughput <= 0 {
			t.Errorf("shards=%d: non-positive speedup/throughput: %+v", p.Shards, p)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round ShardReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("BENCH_shard.json does not round-trip: %v", err)
	}
	if round.Events != rep.Events || len(round.Points) != len(rep.Points) {
		t.Fatalf("round-trip mismatch: %+v", round)
	}

	buf.Reset()
	rep.PrintTable(&buf)
	for _, frag := range []string{"shards", "events/sec", "speedup", "single"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("table missing %q:\n%s", frag, buf.String())
		}
	}
}
