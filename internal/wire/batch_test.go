package wire

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"rcep"
)

// Batch frame coverage (DESIGN.md §12): one read cycle rides one frame
// with one seq, empty and oversized frames degrade predictably, and the
// reliable client negotiates the feature before using it.

func TestBatchFrameEndToEnd(t *testing.T) {
	_, addr := startServer(t, rcep.Config{Rules: dupRule})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fires := make(chan Message, 10)
	c.OnFire = func(m Message) { fires <- m }

	err = c.SendBatch([]BatchObs{
		{Reader: "dock1", Object: "p42", AtNS: 0},
		{Reader: "dock1", Object: "p42", AtNS: int64(2 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-fires:
		if m.Rule != "r1" || m.Bindings["o"] != "p42" {
			t.Fatalf("fire: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no firing from a batch frame")
	}
	stats, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 2 || stats.Detections != 1 {
		t.Fatalf("stats after batch: %+v", stats)
	}
}

func TestBatchFrameEmpty(t *testing.T) {
	_, addr := startServer(t, rcep.Config{Rules: dupRule})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(nil); err != nil {
		t.Fatalf("empty SendBatch: %v", err)
	}
	// The connection stays usable and the empty batch counted nothing.
	if err := c.Send("dock1", "p1", sec(1)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 1 {
		t.Fatalf("Observations = %d after empty batch + one obs, want 1", stats.Observations)
	}
}

// TestBatchFrameOversized pins the rejection contract: a batch above
// MaxBatchFrame draws an error reply BEFORE its seq is claimed, so the
// sender can re-chunk and resend under the same seq without the dedupe
// layer swallowing the retry.
func TestBatchFrameOversized(t *testing.T) {
	_, addr := startServer(t, rcep.Config{Rules: dupRule})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	big := make([]BatchObs, MaxBatchFrame+1)
	for i := range big {
		big[i] = BatchObs{Reader: "dock1", Object: "p1", AtNS: int64(i)}
	}
	if err := enc.Encode(Message{Type: "batch", ClientID: "f1", Seq: 1, Batch: big}); err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := dec.Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Type != "error" {
		t.Fatalf("oversized batch: reply %+v, want error", m)
	}

	// Re-chunked resend under the SAME seq must apply as fresh. Rule
	// firings are broadcast on every connection, so skip past those to
	// the ack.
	if err := enc.Encode(Message{Type: "batch", ClientID: "f1", Seq: 1, Batch: big[:2]}); err != nil {
		t.Fatal(err)
	}
	for {
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		if m.Type == "fire" {
			continue
		}
		break
	}
	if m.Type != "ack" || m.Seq != 1 {
		t.Fatalf("re-chunked resend: reply %+v, want ack seq 1", m)
	}
	if err := enc.Encode(Message{Type: "bye"}); err != nil {
		t.Fatal(err)
	}
	for {
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("no stats after bye: %v", err)
		}
		if m.Type == "stats" {
			break
		}
	}
	if m.Observations != 2 {
		t.Fatalf("Observations = %d after re-chunked batch, want 2", m.Observations)
	}
}

func TestReliableBatchNegotiation(t *testing.T) {
	_, addr := startServer(t, rcep.Config{Rules: dupRule})
	c, err := DialReliable(addr, ReliableOptions{ClientID: "feed-b", Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch([]BatchObs{
		{Reader: "dock1", Object: "p7", AtNS: 0},
		{Reader: "dock1", Object: "p7", AtNS: int64(time.Second)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.BatchNegotiated() {
		t.Fatal("server advertises batch but client did not negotiate it")
	}
	stats, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 2 {
		t.Fatalf("Observations = %d via reliable batch, want 2", stats.Observations)
	}
}

// FuzzBatchFrame throws raw bytes at a live connection handler — torn
// JSON, truncated batch arrays, hostile field values — and requires
// only that the handler neither panics nor hangs. Seeds cover the
// interesting shapes: a healthy batch, an empty one, torn frames, and
// out-of-order timestamps.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte(`{"type":"batch","batch":[{"reader":"r1","object":"a","at_ns":0},{"reader":"r1","object":"a","at_ns":1000}]}`))
	f.Add([]byte(`{"type":"batch","batch":[]}`))
	f.Add([]byte(`{"type":"batch","batch":[{"reader":"r1","obj`))
	f.Add([]byte(`{"type":"batch"`))
	f.Add([]byte(`{"type":"batch","batch":[{"reader":"r1","object":"a","at_ns":5000},{"reader":"r1","object":"a","at_ns":0}]}`))
	f.Add([]byte("{\"type\":\"batch\",\"batch\":[]}\n{\"type\":\"obs\",\"reader\":\"r1\",\"object\":\"b\",\"at_ns\":1}"))
	f.Add([]byte{0x00, 0xff, 0x7b})

	srv, err := NewServer(rcep.Config{Rules: dupRule})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			srv.handle(server)
			close(done)
		}()
		go io.Copy(io.Discard, client) // drain replies so the synchronous pipe never wedges
		_ = client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = client.Write(data)
		_, _ = client.Write([]byte("\n"))
		client.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("handler hung on fuzzed batch frame")
		}
	})
}
