package wire

// Degraded-mode behavior of the wire layer: spool recovery after torn
// writes, client-side load shedding when the unacked ring saturates, and
// the server's bounded admission queue with its status counters.

import (
	"bytes"
	"errors"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"rcep"
)

func startServerOpts(t *testing.T, cfg rcep.Config, opts ...Option) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr().String()
}

func spoolWith(t *testing.T, path string, n int) {
	t.Helper()
	sp, err := OpenSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		m := Message{Type: "obs", ClientID: "edge", Seq: uint64(i), Reader: "r1", Object: "o", AtNS: int64(i)}
		if err := sp.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

func pendingSeqs(sp *Spool) []uint64 {
	var out []uint64
	for _, m := range sp.Pending() {
		out = append(out, m.Seq)
	}
	return out
}

// An unclean shutdown that tears the final journal record must not crash
// recovery or silently discard evidence: the good prefix replays, the
// torn suffix moves to the .quarantine side file, and the spool stays
// appendable.
func TestSpoolQuarantinesTornTail(t *testing.T) {
	path := t.TempDir() + "/edge.spool"
	spoolWith(t, path, 3)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 7 // mid-way through the final record
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	sp, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("recovery crashed on torn tail: %v", err)
	}
	if got := pendingSeqs(sp); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pending after torn tail = %v, want [1 2]", got)
	}
	if sp.Quarantined() == 0 {
		t.Fatalf("torn tail was not quarantined")
	}
	q, err := os.ReadFile(sp.QuarantinePath())
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if len(q) != sp.Quarantined() || !bytes.HasSuffix(data[:cut], q) || bytes.Contains(q, []byte("\n")) {
		t.Fatalf("quarantine holds %q, want the torn final fragment of %q", q, data[:cut])
	}
	if sp.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", sp.LastSeq())
	}

	// The spool keeps working: the torn frame's seq was never confirmed,
	// so the feed re-journals from seq 3 and a clean reopen sees it.
	if err := sp.Append(Message{Type: "obs", ClientID: "edge", Seq: 3, Reader: "r1", Object: "o", AtNS: 3}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	sp2, err := OpenSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := pendingSeqs(sp2); len(got) != 3 {
		t.Fatalf("pending after repair = %v, want [1 2 3]", got)
	}
	if sp2.Quarantined() != 0 {
		t.Fatalf("clean reopen quarantined %d bytes", sp2.Quarantined())
	}
	_ = sp2.Close()
}

// Corruption in the middle of the journal rejects everything from the
// first bad record on — later entries' ordering can no longer be
// trusted — and preserves the whole suspect suffix for inspection.
func TestSpoolQuarantinesMidFileCorruption(t *testing.T) {
	path := t.TempDir() + "/edge.spool"
	spoolWith(t, path, 3)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Chop record 2 mid-way: its fragment fuses with record 3 into one
	// undecodable line.
	corrupt := append(append([]byte{}, lines[0]...), lines[1][:len(lines[1])/2]...)
	corrupt = append(corrupt, lines[2]...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	sp, err := OpenSpool(path)
	if err != nil {
		t.Fatalf("recovery crashed on mid-file corruption: %v", err)
	}
	if got := pendingSeqs(sp); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pending after mid-file corruption = %v, want [1]", got)
	}
	want := len(corrupt) - len(lines[0])
	if sp.Quarantined() != want {
		t.Fatalf("quarantined %d bytes, want %d", sp.Quarantined(), want)
	}
	_ = sp.Close()
}

// TrySendFrame without a shed policy refuses to block: a full ring is an
// explicit ErrRingFull, not a stall.
func TestTrySendFrameRingFull(t *testing.T) {
	c, err := DialReliable("none", ReliableOptions{
		ClientID: "edge",
		Dial:     func() (net.Conn, error) { return nil, errors.New("link down") },
		Buffer:   2,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	for i := 0; i < 2; i++ {
		if _, err := c.TrySendFrame(Message{Type: "obs", Reader: "r", Object: "o", AtNS: int64(i)}); err != nil {
			t.Fatalf("TrySendFrame %d: %v", i, err)
		}
	}
	if _, err := c.TrySendFrame(Message{Type: "obs", Reader: "r", Object: "o", AtNS: 2}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("full ring: err = %v, want ErrRingFull", err)
	}
	if c.Unacked() != 2 {
		t.Fatalf("Unacked = %d, want 2", c.Unacked())
	}
}

// With DropOldestOnFull the client sheds the stalest observations during
// an outage instead of blocking, and everything still in the ring is
// delivered in order once the link heals.
func TestReliableClientShedsOldestDuringOutage(t *testing.T) {
	srv, addr := startServerOpts(t, rcep.Config{Rules: dupRule})
	var allow atomic.Bool
	var shedObs []int64
	c, err := DialReliable(addr, ReliableOptions{
		ClientID: "edge",
		Dial: func() (net.Conn, error) {
			if !allow.Load() {
				return nil, errors.New("link down")
			}
			return net.Dial("tcp", addr)
		},
		Buffer:           4,
		Backoff:          time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		DropOldestOnFull: true,
		OnShed:           func(m Message) { shedObs = append(shedObs, m.AtNS) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Send("r1", "o", time.Duration(i)*time.Second); err != nil {
			t.Fatalf("Send %d during outage: %v", i, err)
		}
	}
	if got := c.Shed(); got != 16 {
		t.Fatalf("Shed = %d, want 16", got)
	}
	if got := c.Unacked(); got != 4 {
		t.Fatalf("Unacked = %d, want 4", got)
	}
	// OnShed runs under the client's send path with nothing concurrent
	// here; the shed frames must be exactly the oldest 16.
	for i, at := range shedObs {
		if at != int64(i)*int64(time.Second) {
			t.Fatalf("shed[%d] at %d, want oldest-first order", i, at)
		}
	}

	allow.Store(true)
	if err := c.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := srv.Engine().Metrics().Observations; got != 4 {
		t.Fatalf("server applied %d observations, want the 4 survivors", got)
	}
	// The cumulative ack must cover the shed gap: the server saw up to
	// seq 20 even though 16 seqs never arrived.
	if got := srv.SeqState()["edge"]; got != 20 {
		t.Fatalf("server high-water seq = %d, want 20", got)
	}
}

// The admission queue bounds how far frame arrival can run ahead of the
// engine; with drop-oldest it sheds the stalest queued observations and
// surfaces the counters on the status endpoint.
func TestServerAdmissionShedsOldest(t *testing.T) {
	srv, addr := startServerOpts(t, rcep.Config{Rules: dupRule}, WithAdmission(4, true))

	// Stall the engine: the pump blocks applying its first frame, the
	// queue fills to capacity, and every further observation evicts the
	// oldest queued one.
	srv.emu.Lock()
	c, err := DialReliable(addr, ReliableOptions{ClientID: "edge"})
	if err != nil {
		srv.emu.Unlock()
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Send("r1", "o", time.Duration(i)*time.Second); err != nil {
			srv.emu.Unlock()
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Every frame — applied, queued, or shed — is acked, so the sender's
	// ring drains even while the engine is stalled; once Flush returns,
	// all 20 frames have been admitted and the shed counter is final.
	if err := c.Flush(5 * time.Second); err != nil {
		srv.emu.Unlock()
		t.Fatalf("Flush against stalled engine: %v", err)
	}
	// 20 admitted against a capacity-4 queue: 4 queued, 15 or 16 shed
	// (one fewer when the pump grabbed a frame before the queue filled),
	// none blocked.
	shed := srv.Shed()
	if shed != 15 && shed != 16 {
		srv.emu.Unlock()
		t.Fatalf("Shed = %d, want 15 or 16", shed)
	}
	srv.emu.Unlock()

	if _, err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv.Shutdown()
	if got := srv.Engine().Metrics().Observations; got != 20-shed {
		t.Fatalf("engine applied %d observations, want %d (20 admitted - %d shed)", got, 20-shed, shed)
	}
}

// The status frame reports overload counters without disturbing the feed.
func TestWireStatusFrame(t *testing.T) {
	_, addr := startServerOpts(t, rcep.Config{Rules: dupRule}, WithAdmission(8, true))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("r1", "o", sec(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := c.Status()
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if m.Observations == 1 && m.Queue == 0 {
			if m.Shed != 0 {
				t.Fatalf("Shed = %d on an idle server", m.Shed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never converged: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}
