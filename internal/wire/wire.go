// Package wire exposes an rcep engine over TCP with a newline-delimited
// JSON protocol, so RFID edge readers (or the simulator) can stream
// observations to a central event processor and receive rule firings —
// the deployment shape of the middleware platforms the paper's related
// work surveys.
//
// Client → server messages:
//
//	{"type":"obs","reader":"r1","object":"o1","at_ns":1000000000}
//	{"type":"advance","at_ns":5000000000}   // idle-time progress
//	{"type":"query","sql":"SELECT ..."}
//	{"type":"hello","client_id":"edge1"}    // reliable feed resume probe
//	{"type":"pong"}                         // keepalive reply
//	{"type":"bye"}                          // graceful end of this feed
//
// Server → client messages:
//
//	{"type":"fire","rule":"r5","name":"asset monitoring rule",
//	 "begin_ns":..., "end_ns":..., "bindings":{"o4":"L1"}}
//	{"type":"result","columns":[...],"rows":[[...]]}
//	{"type":"ack","seq":N}                  // cumulative, per client_id
//	{"type":"ping"}                         // keepalive probe
//	{"type":"error","msg":"..."}
//	{"type":"stats","observations":N,"detections":M,"shards":K}   // reply to bye
//
// Reliable delivery: obs/advance frames may carry client_id and a
// monotonically increasing seq (starting at 1). The server applies each
// (client_id, seq) at most once — a reconnecting client replays unacked
// frames and duplicates are dropped, turning at-least-once delivery into
// engine-side exactly-once. Acks are cumulative: ack N covers every seq
// ≤ N. A hello frame is answered with the highest seq applied for that
// client, so a resuming client can skip frames the server already has.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rcep"
	"rcep/internal/core/event"
	"rcep/internal/stream"
)

// Message is one protocol frame, client- or server-originated.
type Message struct {
	Type string `json:"type"`

	// obs / advance. Timestamps carry no omitempty: t=0 is a legitimate
	// observation time and must survive the wire.
	Reader string `json:"reader,omitempty"`
	Object string `json:"object,omitempty"`
	AtNS   int64  `json:"at_ns"`

	// reliable delivery (obs/advance/hello/ack)
	ClientID string `json:"client_id,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`

	// query
	SQL string `json:"sql,omitempty"`

	// fire
	Rule     string         `json:"rule,omitempty"`
	Name     string         `json:"name,omitempty"`
	BeginNS  int64          `json:"begin_ns"`
	EndNS    int64          `json:"end_ns"`
	Bindings map[string]any `json:"bindings,omitempty"`

	// result
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`

	// error / stats
	Msg          string `json:"msg,omitempty"`
	Observations uint64 `json:"observations,omitempty"`
	Detections   uint64 `json:"detections,omitempty"`
	Shards       int    `json:"shards,omitempty"` // detection shards serving the engine
}

// Server serves one shared engine to any number of connections.
// Observations from all connections are serialized into the engine;
// firings are broadcast to every connected client.
type Server struct {
	// emu serializes engine access; cmu guards the client registry.
	// They are distinct because rule firings broadcast while the engine
	// lock is held.
	emu     sync.Mutex
	cmu     sync.Mutex
	eng     *rcep.Engine
	ingest  func(event.Observation) error // stage chain ending in the engine
	flush   func() error                  // reorder flush, when configured
	clients map[*json.Encoder]*sync.Mutex
	opts    serverOpts

	// seqMu guards lastSeq: highest sequence number applied per client
	// ID. The map outlives individual connections so a reconnecting
	// client's replayed frames dedupe correctly.
	seqMu   sync.Mutex
	lastSeq map[string]uint64
}

// Option tunes a Server.
type Option func(*serverOpts)

type serverOpts struct {
	dedupWindow  time.Duration
	reorderSlack time.Duration
	keepalive    time.Duration
	peerTimeout  time.Duration
}

// WithDedup installs a duplicate filter in front of the engine: repeated
// (reader, object) reads within the window are dropped (paper §3.1
// low-level filtering at the middleware boundary).
func WithDedup(window time.Duration) Option {
	return func(o *serverOpts) { o.dedupWindow = window }
}

// WithReorder installs a bounded reorder buffer in front of the engine,
// tolerating timestamp skew of up to slack across connections (multiple
// edge readers never agree perfectly on delivery order).
func WithReorder(slack time.Duration) Option {
	return func(o *serverOpts) { o.reorderSlack = slack }
}

// WithKeepalive makes the server send a ping frame on every connection
// each interval. Combined with the peer timeout (default 3×interval) it
// reaps dead peers: a client that neither sends frames nor answers pings
// is disconnected instead of holding a goroutine forever.
func WithKeepalive(interval time.Duration) Option {
	return func(o *serverOpts) { o.keepalive = interval }
}

// WithPeerTimeout sets the per-connection read deadline explicitly. A
// connection that stays silent longer than d is closed. Zero with
// keepalive enabled defaults to 3× the keepalive interval.
func WithPeerTimeout(d time.Duration) Option {
	return func(o *serverOpts) { o.peerTimeout = d }
}

// NewServer builds a server around a fresh engine. The config's
// OnDetection, if set, still runs in addition to the broadcast.
func NewServer(cfg rcep.Config, opts ...Option) (*Server, error) {
	s := &Server{
		clients: map[*json.Encoder]*sync.Mutex{},
		lastSeq: map[string]uint64{},
	}
	var so serverOpts
	for _, o := range opts {
		o(&so)
	}
	s.opts = so
	user := cfg.OnDetection
	cfg.OnDetection = func(d rcep.Detection) {
		if user != nil {
			user(d)
		}
		s.broadcast(Message{
			Type: "fire", Rule: d.RuleID, Name: d.RuleName,
			BeginNS: int64(d.Begin), EndNS: int64(d.End),
			Bindings: d.Bindings,
		})
	}
	eng, err := rcep.New(cfg)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// The ingest chain runs under emu: engine, then dedup, then reorder
	// in front (stages are stateful and single-writer).
	s.ingest = func(o event.Observation) error {
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			return err
		}
		// A sharded engine delivers detections at barriers; the protocol
		// promises prompt firing broadcasts, so force delivery per frame
		// (no-op on a single engine).
		return eng.Flush()
	}
	if so.dedupWindow > 0 {
		d := stream.NewDedup(so.dedupWindow, s.ingest)
		s.ingest = d.Push
	}
	if so.reorderSlack > 0 {
		r := stream.NewReorder(so.reorderSlack, s.ingest)
		s.ingest = r.Push
		s.flush = r.Flush
	}
	return s, nil
}

// Engine returns the underlying engine, e.g. to register procedures
// before serving.
func (s *Server) Engine() *rcep.Engine { return s.eng }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) broadcast(m Message) {
	s.cmu.Lock()
	encs := make([]*json.Encoder, 0, len(s.clients))
	locks := make([]*sync.Mutex, 0, len(s.clients))
	for e, l := range s.clients {
		encs = append(encs, e)
		locks = append(locks, l)
	}
	s.cmu.Unlock()
	for i, e := range encs {
		locks[i].Lock()
		_ = e.Encode(m) // a dead client is detached by its handler
		locks[i].Unlock()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	encMu := &sync.Mutex{}
	s.cmu.Lock()
	s.clients[enc] = encMu
	s.cmu.Unlock()
	defer func() {
		s.cmu.Lock()
		delete(s.clients, enc)
		s.cmu.Unlock()
	}()

	reply := func(m Message) {
		encMu.Lock()
		defer encMu.Unlock()
		_ = enc.Encode(m)
	}

	// Keepalive: ping on an interval; a peer that stays silent past the
	// read deadline is reaped (Decode fails on the expired deadline).
	timeout := s.opts.peerTimeout
	if timeout == 0 && s.opts.keepalive > 0 {
		timeout = 3 * s.opts.keepalive
	}
	if s.opts.keepalive > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(s.opts.keepalive)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					reply(Message{Type: "ping"})
				case <-stop:
					return
				}
			}
		}()
	}

	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		if timeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
		}
		var m Message
		if err := dec.Decode(&m); err != nil {
			return // disconnect, deadline expiry, or garbage: drop the connection
		}
		switch m.Type {
		case "obs", "advance":
			// Sequenced frames apply at most once per (client_id, seq);
			// stale replays are dropped but still acked so the sender
			// can release its buffer.
			fresh := true
			if m.ClientID != "" && m.Seq > 0 {
				fresh, _ = s.claimSeq(m.ClientID, m.Seq)
			}
			var err error
			if fresh {
				s.emu.Lock()
				if m.Type == "obs" {
					err = s.ingest(event.Observation{
						Reader: m.Reader, Object: m.Object, At: event.Time(m.AtNS),
					})
				} else {
					if s.flush != nil {
						err = s.flush()
					}
					if err == nil {
						err = s.eng.AdvanceTo(time.Duration(m.AtNS))
					}
					if err == nil {
						err = s.eng.Flush()
					}
				}
				s.emu.Unlock()
			}
			if err != nil {
				reply(Message{Type: "error", Msg: err.Error()})
			}
			if m.ClientID != "" && m.Seq > 0 {
				reply(Message{Type: "ack", Seq: s.ackedSeq(m.ClientID)})
			}
		case "hello":
			// Resume probe: tell the client how far this feed already got.
			reply(Message{Type: "ack", Seq: s.ackedSeq(m.ClientID)})
		case "pong":
			// Keepalive reply; receiving it already refreshed the deadline.
		case "query":
			s.emu.Lock()
			cols, rows, err := s.eng.Query(m.SQL)
			s.emu.Unlock()
			if err != nil {
				reply(Message{Type: "error", Msg: err.Error()})
				continue
			}
			reply(Message{Type: "result", Columns: cols, Rows: jsonRows(rows)})
		case "bye":
			s.emu.Lock()
			met := s.eng.Metrics()
			s.emu.Unlock()
			reply(Message{Type: "stats", Observations: met.Observations, Detections: met.Detections, Shards: s.eng.Shards()})
			return
		default:
			reply(Message{Type: "error", Msg: fmt.Sprintf("unknown message type %q", m.Type)})
		}
	}
}

// claimSeq records seq as applied for the client and reports whether the
// frame is fresh. Frames arrive in sequence order per client (a client
// writes one connection at a time, in order), so a cumulative high-water
// mark is a complete dedupe record.
func (s *Server) claimSeq(clientID string, seq uint64) (fresh bool, last uint64) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	last = s.lastSeq[clientID]
	if seq <= last {
		return false, last
	}
	s.lastSeq[clientID] = seq
	return true, seq
}

// ackedSeq returns the cumulative ack value for a client.
func (s *Server) ackedSeq(clientID string) uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.lastSeq[clientID]
}

// jsonRows converts query rows into JSON-safe values (durations become
// nanosecond integers).
func jsonRows(rows [][]any) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			if d, ok := v.(time.Duration); ok {
				row[j] = int64(d)
			} else {
				row[j] = v
			}
		}
		out[i] = row
	}
	return out
}

// Client is a typed connection to a Server. For a client that survives
// connection loss, see ReliableClient.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex // serializes writes (user calls vs keepalive pongs)
	enc  *json.Encoder
	dec  *json.Decoder

	mu     sync.Mutex
	fires  []Message
	result chan Message
	stats  chan Message
	// OnFire, when set, receives rule firings as they arrive.
	OnFire func(Message)
	errCh  chan error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:   conn,
		enc:    json.NewEncoder(conn),
		dec:    json.NewDecoder(bufio.NewReader(conn)),
		result: make(chan Message, 1),
		stats:  make(chan Message, 1),
		errCh:  make(chan error, 1),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		var m Message
		if err := c.dec.Decode(&m); err != nil {
			c.errCh <- err
			close(c.result)
			close(c.stats)
			return
		}
		switch m.Type {
		case "fire":
			c.mu.Lock()
			c.fires = append(c.fires, m)
			cb := c.OnFire
			c.mu.Unlock()
			if cb != nil {
				cb(m)
			}
		case "ping":
			_ = c.write(Message{Type: "pong"})
		case "result", "error":
			select {
			case c.result <- m:
			default:
			}
		case "stats":
			select {
			case c.stats <- m:
			default:
			}
		}
	}
}

func (c *Client) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// Send streams one observation.
func (c *Client) Send(reader, object string, at time.Duration) error {
	return c.write(Message{Type: "obs", Reader: reader, Object: object, AtNS: int64(at)})
}

// Advance moves the server's virtual clock forward.
func (c *Client) Advance(at time.Duration) error {
	return c.write(Message{Type: "advance", AtNS: int64(at)})
}

// Query runs SQL on the server's data store.
func (c *Client) Query(sql string) ([]string, [][]any, error) {
	if err := c.write(Message{Type: "query", SQL: sql}); err != nil {
		return nil, nil, err
	}
	m, ok := <-c.result
	if !ok {
		return nil, nil, errors.New("wire: connection closed")
	}
	if m.Type == "error" {
		return nil, nil, errors.New(m.Msg)
	}
	return m.Columns, m.Rows, nil
}

// Firings returns the rule firings received so far.
func (c *Client) Firings() []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Message(nil), c.fires...)
}

// Close ends the feed gracefully and returns the server's stats.
func (c *Client) Close() (Message, error) {
	if err := c.write(Message{Type: "bye"}); err != nil {
		c.conn.Close()
		return Message{}, err
	}
	m, ok := <-c.stats
	c.conn.Close()
	if !ok {
		return Message{}, errors.New("wire: connection closed before stats")
	}
	return m, nil
}
