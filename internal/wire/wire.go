// Package wire exposes an rcep engine over TCP with a newline-delimited
// JSON protocol, so RFID edge readers (or the simulator) can stream
// observations to a central event processor and receive rule firings —
// the deployment shape of the middleware platforms the paper's related
// work surveys.
//
// Client → server messages:
//
//	{"type":"obs","reader":"r1","object":"o1","at_ns":1000000000}
//	{"type":"batch","batch":[{"reader":"r1","object":"o1","at_ns":N},...]}
//	{"type":"advance","at_ns":5000000000}   // idle-time progress
//	{"type":"query","sql":"SELECT ..."}
//	{"type":"hello","client_id":"edge1"}    // reliable feed resume probe
//	{"type":"pong"}                         // keepalive reply
//	{"type":"bye"}                          // graceful end of this feed
//
// Server → client messages:
//
//	{"type":"fire","rule":"r5","name":"asset monitoring rule",
//	 "begin_ns":..., "end_ns":..., "bindings":{"o4":"L1"}}
//	{"type":"result","columns":[...],"rows":[[...]]}
//	{"type":"ack","seq":N}                  // cumulative, per client_id
//	{"type":"ping"}                         // keepalive probe
//	{"type":"error","msg":"..."}
//	{"type":"stats","observations":N,"detections":M,"shards":K}   // reply to bye
//
// Batch frames carry one read cycle of observations (DESIGN.md §12) under
// a single sequence number: one JSON frame, one dedupe decision and one
// engine hand-off per reader report instead of per tag. The reply to a
// hello frame advertises the server's support in "features", so a
// reliable client can fall back to single-observation frames against an
// older server; the frame's observations apply in order, exactly as the
// equivalent run of obs frames would.
//
// Reliable delivery: obs/advance frames may carry client_id and a
// monotonically increasing seq (starting at 1). The server applies each
// (client_id, seq) at most once — a reconnecting client replays unacked
// frames and duplicates are dropped, turning at-least-once delivery into
// engine-side exactly-once. Acks are cumulative: ack N covers every seq
// ≤ N. A hello frame is answered with the highest seq applied for that
// client, so a resuming client can skip frames the server already has.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rcep"
	"rcep/internal/core/event"
	"rcep/internal/stream"
)

// Message is one protocol frame, client- or server-originated.
type Message struct {
	Type string `json:"type"`

	// obs / advance. Timestamps carry no omitempty: t=0 is a legitimate
	// observation time and must survive the wire.
	Reader string `json:"reader,omitempty"`
	Object string `json:"object,omitempty"`
	AtNS   int64  `json:"at_ns"`

	// batch: one read cycle of observations under one seq. Bounded by
	// MaxBatchFrame; an oversized frame is rejected before its seq is
	// claimed, so the sender can re-chunk and resend without a gap.
	Batch []BatchObs `json:"batch,omitempty"`

	// ack (reply to hello): protocol capabilities of the serving peer.
	// Absent on older servers — the negotiation that keeps batch frames
	// protocol-compatible.
	Features []string `json:"features,omitempty"`

	// reliable delivery (obs/advance/batch/hello/ack)
	ClientID string `json:"client_id,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`

	// query
	SQL string `json:"sql,omitempty"`

	// fire
	Rule     string         `json:"rule,omitempty"`
	Name     string         `json:"name,omitempty"`
	BeginNS  int64          `json:"begin_ns"`
	EndNS    int64          `json:"end_ns"`
	Bindings map[string]any `json:"bindings,omitempty"`

	// result
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`

	// error / stats
	Msg          string `json:"msg,omitempty"`
	Observations uint64 `json:"observations,omitempty"`
	Detections   uint64 `json:"detections,omitempty"`
	Shards       int    `json:"shards,omitempty"` // detection shards serving the engine

	// status (reply to a "status" frame): overload visibility. Shed is
	// how many observations the admission queue has dropped under its
	// drop-oldest policy; Queue is the current admission-queue depth.
	Shed  uint64 `json:"shed,omitempty"`
	Queue int    `json:"queue,omitempty"`

	// cluster mode (internal/core/cluster). Coordinator → worker frames
	// reuse the sequenced obs/advance machinery and add: "assign" (host
	// shard Shard, restoring Ck and resuming the detection counter at
	// DetSeq), "sync" (catch up to AtNS and return buffered detections),
	// "ckpt" (return a checkpoint), "drain" (close the shard engine).
	// Worker → coordinator: "dets" (CDets at a barrier), "ckptres"
	// (Ck + DetSeq), "boot" (Msg carries the worker's boot ID, so a
	// reconnecting coordinator can tell a restarted worker from a
	// transient network failure).
	Shard  int             `json:"shard,omitempty"`
	DetSeq uint64          `json:"det_seq,omitempty"`
	Ck     json.RawMessage `json:"ck,omitempty"`
	Sum    uint32          `json:"sum,omitempty"` // CRC-32 (IEEE) of Ck, end to end
	CDets  []ClusterDet    `json:"cdets,omitempty"`
}

// BatchObs is one observation inside a batch frame.
type BatchObs struct {
	Reader string `json:"reader"`
	Object string `json:"object"`
	AtNS   int64  `json:"at_ns"`
}

// MaxBatchFrame bounds the observations one batch frame may carry; a
// malicious or buggy sender cannot force an unbounded allocation or an
// arbitrarily long engine stall under the ingest lock.
const MaxBatchFrame = 65536

// FeatureBatch is the hello-ack feature string advertising batch-frame
// support.
const FeatureBatch = "batch"

// ClusterDet is one detection shipped from a cluster worker to the
// coordinator at a delivery barrier. Dseq is the worker-side per-shard
// detection counter: it survives checkpoint handoff, so the coordinator
// can both dedupe re-delivered detections after a replay and preserve the
// same-rule tie order in the merged (fire, rule, seq) delivery.
type ClusterDet struct {
	Rule    int            `json:"rule"`
	Dseq    uint64         `json:"dseq"`
	FireNS  int64          `json:"fire_ns"`
	BeginNS int64          `json:"begin_ns"`
	EndNS   int64          `json:"end_ns"`
	InstSeq uint64         `json:"inst_seq,omitempty"`
	Binds   event.Bindings `json:"binds,omitempty"`
}

// Server serves one shared engine to any number of connections.
// Observations from all connections are serialized into the engine;
// firings are broadcast to every connected client.
type Server struct {
	// emu serializes engine access; cmu guards the client registry.
	// They are distinct because rule firings broadcast while the engine
	// lock is held.
	emu         sync.Mutex
	cmu         sync.Mutex
	eng         *rcep.Engine
	ingest      func(event.Observation) error // stage chain ending in the engine
	ingestBatch func(event.Batch) error       // whole-batch path (direct when no stages)
	flush       func() error                  // reorder flush, when configured
	clients     map[*clientConn]bool
	closing     bool
	wg          sync.WaitGroup // live connection handlers
	opts        serverOpts

	// seqMu guards lastSeq: highest sequence number applied per client
	// ID. The map outlives individual connections so a reconnecting
	// client's replayed frames dedupe correctly.
	seqMu   sync.Mutex
	lastSeq map[string]uint64

	// admit, when configured (WithAdmission), decouples frame arrival
	// from engine application behind a bounded queue.
	admit    *admission
	pumpDone chan struct{}
}

// admission is the bounded queue between connection handlers and the
// engine. Full + dropOldest → the oldest queued observation is shed (and
// counted); full without dropOldest → the handler blocks, pushing
// backpressure into the client's unacked ring.
type admission struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []admitted
	cap    int
	drop   bool
	shed   uint64
	closed bool
}

type admitted struct {
	m  Message
	cc *clientConn
}

// clientConn is one registered connection: its encoder, the write lock
// shared by handler replies and broadcasts, and the reliable client IDs
// seen on it (so a draining shutdown can flush their cumulative acks).
type clientConn struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex
	ids  map[string]bool
}

// reply writes one frame; a dead connection's error is ignored (its
// handler detaches it).
func (cc *clientConn) reply(m Message) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	_ = cc.enc.Encode(m)
}

// Option tunes a Server.
type Option func(*serverOpts)

type serverOpts struct {
	dedupWindow  time.Duration
	reorderSlack time.Duration
	keepalive    time.Duration
	peerTimeout  time.Duration
	admitCap     int
	admitDrop    bool
}

// WithDedup installs a duplicate filter in front of the engine: repeated
// (reader, object) reads within the window are dropped (paper §3.1
// low-level filtering at the middleware boundary).
func WithDedup(window time.Duration) Option {
	return func(o *serverOpts) { o.dedupWindow = window }
}

// WithReorder installs a bounded reorder buffer in front of the engine,
// tolerating timestamp skew of up to slack across connections (multiple
// edge readers never agree perfectly on delivery order).
func WithReorder(slack time.Duration) Option {
	return func(o *serverOpts) { o.reorderSlack = slack }
}

// WithKeepalive makes the server send a ping frame on every connection
// each interval. Combined with the peer timeout (default 3×interval) it
// reaps dead peers: a client that neither sends frames nor answers pings
// is disconnected instead of holding a goroutine forever.
func WithKeepalive(interval time.Duration) Option {
	return func(o *serverOpts) { o.keepalive = interval }
}

// WithPeerTimeout sets the per-connection read deadline explicitly. A
// connection that stays silent longer than d is closed. Zero with
// keepalive enabled defaults to 3× the keepalive interval.
func WithPeerTimeout(d time.Duration) Option {
	return func(o *serverOpts) { o.peerTimeout = d }
}

// WithAdmission puts a bounded queue of the given capacity between
// connection handlers and the engine, making overload behavior explicit
// end to end. When the queue is full, dropOldest=false blocks the
// handler (backpressure into the sender's unacked ring — nothing is
// lost, latency grows); dropOldest=true sheds the oldest queued
// observation instead, counting it in the shed counter surfaced by the
// "status" frame, so a saturated server keeps bounded latency at the
// cost of the stalest coverage. Advance frames are never shed — they
// carry clock state, and dropping one could silently change detection
// results.
//
// In admission mode an ack means "admitted": the frame is applied in
// order (or knowingly shed) before Shutdown returns, and ingest errors
// are reported asynchronously as error frames. Queries still run
// synchronously and may observe the engine a few queued frames behind
// the acks.
func WithAdmission(capacity int, dropOldest bool) Option {
	return func(o *serverOpts) {
		o.admitCap = capacity
		o.admitDrop = dropOldest
	}
}

// NewServer builds a server around a fresh engine. The config's
// OnDetection, if set, still runs in addition to the broadcast.
func NewServer(cfg rcep.Config, opts ...Option) (*Server, error) {
	s := &Server{
		clients: map[*clientConn]bool{},
		lastSeq: map[string]uint64{},
	}
	var so serverOpts
	for _, o := range opts {
		o(&so)
	}
	s.opts = so
	user := cfg.OnDetection
	cfg.OnDetection = func(d rcep.Detection) {
		if user != nil {
			user(d)
		}
		s.broadcast(Message{
			Type: "fire", Rule: d.RuleID, Name: d.RuleName,
			BeginNS: int64(d.Begin), EndNS: int64(d.End),
			Bindings: d.Bindings,
		})
	}
	eng, err := rcep.New(cfg)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// The ingest chain runs under emu: engine, then dedup, then reorder
	// in front (stages are stateful and single-writer).
	s.ingest = func(o event.Observation) error {
		if err := eng.Ingest(o.Reader, o.Object, time.Duration(o.At)); err != nil {
			return err
		}
		// A sharded engine delivers detections at barriers; the protocol
		// promises prompt firing broadcasts, so force delivery per frame
		// (no-op on a single engine).
		return eng.Flush()
	}
	if so.dedupWindow > 0 {
		d := stream.NewDedup(so.dedupWindow, s.ingest)
		s.ingest = d.Push
	}
	if so.reorderSlack > 0 {
		r := stream.NewReorder(so.reorderSlack, s.ingest)
		s.ingest = r.Push
		s.flush = r.Flush
	}
	hasStages := so.dedupWindow > 0 || so.reorderSlack > 0
	// Canonicalize at the very head of the chain: every JSON frame
	// decodes fresh reader/object strings, and interning them here means
	// the dedup window, the reorder buffer and all engine state share one
	// instance per distinct value instead of one per frame.
	intern := eng.Interner()
	if intern != nil {
		next := s.ingest
		s.ingest = func(o event.Observation) error {
			return next(intern.CanonObservation(o))
		}
	}
	// Batch frames take the whole-batch engine path when no per-obs
	// filter stage is configured; with stages the batch unpacks through
	// the same chain singles use, so filtering semantics are identical
	// either way.
	if hasStages {
		s.ingestBatch = func(b event.Batch) error {
			for _, o := range b {
				if err := s.ingest(o); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		s.ingestBatch = func(b event.Batch) error {
			b.Canon(intern)
			if err := eng.IngestEvents(b); err != nil {
				return err
			}
			return eng.Flush()
		}
	}
	if so.admitCap > 0 {
		s.admit = &admission{cap: so.admitCap, drop: so.admitDrop}
		s.admit.cond = sync.NewCond(&s.admit.mu)
		s.pumpDone = make(chan struct{})
		go s.pump()
	}
	return s, nil
}

// Engine returns the underlying engine, e.g. to register procedures
// before serving.
func (s *Server) Engine() *rcep.Engine { return s.eng }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) broadcast(m Message) {
	s.cmu.Lock()
	conns := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		conns = append(conns, c)
	}
	s.cmu.Unlock()
	for _, c := range conns {
		c.mu.Lock()
		_ = c.enc.Encode(m) // a dead client is detached by its handler
		c.mu.Unlock()
	}
}

// Shutdown drains the server for a clean restart: every connection
// handler finishes the frame it is processing, flushes a final cumulative
// ack for each reliable client it served, and only then is the connection
// closed. Without the final ack flush a client whose last ack was lost in
// the close race would replay frames the engine already applied — harmless
// for correctness (the seq dedupe would drop them on a live server) but a
// forced replay after every clean restart, and an actual re-application
// unless the seq state is restored too (see SeqState). Call after closing
// the listener; Shutdown returns once every handler has exited.
func (s *Server) Shutdown() {
	s.cmu.Lock()
	s.closing = true
	conns := make([]*clientConn, 0, len(s.clients))
	for c := range s.clients {
		conns = append(conns, c)
	}
	s.cmu.Unlock()
	// An immediate read deadline makes each handler's pending Decode
	// return after the in-flight frame; the handler sees closing=true and
	// flushes final acks on its way out.
	for _, c := range conns {
		_ = c.conn.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	// With every handler gone no new frames can be admitted; drain the
	// queue so everything acked-as-admitted is applied before the caller
	// snapshots the engine.
	if s.admit != nil {
		s.admit.mu.Lock()
		s.admit.closed = true
		s.admit.mu.Unlock()
		s.admit.cond.Broadcast()
		<-s.pumpDone
	}
}

// Shed reports how many observations the admission queue has dropped
// under its drop-oldest policy (0 without WithAdmission).
func (s *Server) Shed() uint64 {
	if s.admit == nil {
		return 0
	}
	s.admit.mu.Lock()
	defer s.admit.mu.Unlock()
	return s.admit.shed
}

// QueueDepth reports the current admission-queue depth (0 without
// WithAdmission).
func (s *Server) QueueDepth() int {
	if s.admit == nil {
		return 0
	}
	s.admit.mu.Lock()
	defer s.admit.mu.Unlock()
	return len(s.admit.q)
}

// SeqState snapshots the per-client cumulative ack state (highest applied
// sequence number per client ID). Persist it alongside the engine
// checkpoint and hand it to RestoreSeqState on restart, so reconnecting
// reliable clients skip frames the previous process already applied
// instead of replaying them into the restored engine.
func (s *Server) SeqState() map[string]uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	out := make(map[string]uint64, len(s.lastSeq))
	for id, seq := range s.lastSeq {
		out[id] = seq
	}
	return out
}

// RestoreSeqState seeds the per-client dedupe state from a previous
// process's SeqState snapshot. Call before Serve.
func (s *Server) RestoreSeqState(state map[string]uint64) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	for id, seq := range state {
		if seq > s.lastSeq[id] {
			s.lastSeq[id] = seq
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	cc := &clientConn{conn: conn, enc: json.NewEncoder(conn), ids: map[string]bool{}}
	s.cmu.Lock()
	if s.closing {
		s.cmu.Unlock()
		return
	}
	s.wg.Add(1)
	s.clients[cc] = true
	s.cmu.Unlock()
	defer func() {
		s.cmu.Lock()
		delete(s.clients, cc)
		closing := s.closing
		s.cmu.Unlock()
		if closing {
			// Draining shutdown: flush a final cumulative ack per served
			// client so the peer can release its unacked ring/spool.
			for id := range cc.ids {
				cc.mu.Lock()
				_ = cc.enc.Encode(Message{Type: "ack", ClientID: id, Seq: s.ackedSeq(id)})
				cc.mu.Unlock()
			}
		}
		s.wg.Done()
	}()

	reply := cc.reply

	// Keepalive: ping on an interval; a peer that stays silent past the
	// read deadline is reaped (Decode fails on the expired deadline).
	timeout := s.opts.peerTimeout
	if timeout == 0 && s.opts.keepalive > 0 {
		timeout = 3 * s.opts.keepalive
	}
	if s.opts.keepalive > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(s.opts.keepalive)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					reply(Message{Type: "ping"})
				case <-stop:
					return
				}
			}
		}()
	}

	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		if timeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
		}
		var m Message
		if err := dec.Decode(&m); err != nil {
			return // disconnect, deadline expiry, or garbage: drop the connection
		}
		switch m.Type {
		case "obs", "advance", "batch":
			// An oversized batch is rejected before its seq is claimed:
			// the sender can re-chunk and resend under the same seq
			// without leaving a dedupe gap.
			if len(m.Batch) > MaxBatchFrame {
				reply(Message{Type: "error", Msg: fmt.Sprintf("batch of %d observations exceeds limit %d", len(m.Batch), MaxBatchFrame)})
				continue
			}
			// Sequenced frames apply at most once per (client_id, seq);
			// stale replays are dropped but still acked so the sender
			// can release its buffer.
			fresh := true
			if m.ClientID != "" && m.Seq > 0 {
				cc.ids[m.ClientID] = true
				fresh, _ = s.claimSeq(m.ClientID, m.Seq)
			}
			if !fresh {
				reply(Message{Type: "ack", Seq: s.ackedSeq(m.ClientID)})
				continue
			}
			if s.admit != nil {
				s.admitFrame(cc, m)
				continue
			}
			s.applyFrame(cc, m)
		case "hello":
			// Resume probe: tell the client how far this feed already got,
			// and which protocol extensions this server speaks.
			if m.ClientID != "" {
				cc.ids[m.ClientID] = true
			}
			reply(Message{Type: "ack", Seq: s.ackedSeq(m.ClientID), Features: []string{FeatureBatch}})
		case "ping":
			// Client-side keepalive probe (ReliableOptions.Keepalive).
			reply(Message{Type: "pong"})
		case "pong":
			// Keepalive reply; receiving it already refreshed the deadline.
		case "query":
			s.emu.Lock()
			cols, rows, err := s.eng.Query(m.SQL)
			s.emu.Unlock()
			if err != nil {
				reply(Message{Type: "error", Msg: err.Error()})
				continue
			}
			reply(Message{Type: "result", Columns: cols, Rows: jsonRows(rows)})
		case "status":
			// Overload visibility: engine progress plus the admission
			// queue's shed counter and depth.
			s.emu.Lock()
			met := s.eng.Metrics()
			s.emu.Unlock()
			reply(Message{
				Type: "status", Observations: met.Observations, Detections: met.Detections,
				Shards: s.eng.Shards(), Shed: s.Shed(), Queue: s.QueueDepth(),
			})
		case "bye":
			s.emu.Lock()
			met := s.eng.Metrics()
			s.emu.Unlock()
			reply(Message{Type: "stats", Observations: met.Observations, Detections: met.Detections, Shards: s.eng.Shards()})
			return
		default:
			reply(Message{Type: "error", Msg: fmt.Sprintf("unknown message type %q", m.Type)})
		}
	}
}

// applyFrame runs one fresh obs/advance frame through the ingest chain
// and sends the error/ack replies — the synchronous tail of the handler,
// also run by the admission pump.
func (s *Server) applyFrame(cc *clientConn, m Message) {
	var err error
	s.emu.Lock()
	switch m.Type {
	case "obs":
		err = s.ingest(event.Observation{
			Reader: m.Reader, Object: m.Object, At: event.Time(m.AtNS),
		})
	case "batch":
		// One pooled batch per frame; the engine path consumes it
		// synchronously, so it recycles immediately.
		b := event.GetBatch()
		for _, o := range m.Batch {
			b = append(b, event.Observation{Reader: o.Reader, Object: o.Object, At: event.Time(o.AtNS)})
		}
		if len(b) > 0 {
			err = s.ingestBatch(b)
		}
		event.PutBatch(b)
	default:
		if s.flush != nil {
			err = s.flush()
		}
		if err == nil {
			err = s.eng.AdvanceTo(time.Duration(m.AtNS))
		}
		if err == nil {
			err = s.eng.Flush()
		}
	}
	s.emu.Unlock()
	if err != nil {
		cc.reply(Message{Type: "error", Msg: err.Error()})
	}
	if m.ClientID != "" && m.Seq > 0 {
		cc.reply(Message{Type: "ack", Seq: s.ackedSeq(m.ClientID)})
	}
}

// admitFrame enqueues one fresh frame on the admission queue, applying
// the configured overload policy when it is full.
func (s *Server) admitFrame(cc *clientConn, m Message) {
	a := s.admit
	var dropped []admitted
	a.mu.Lock()
	for len(a.q) >= a.cap && !a.closed {
		if a.drop {
			if i := oldestSheddable(a.q); i >= 0 {
				dropped = append(dropped, a.q[i])
				a.shed += shedCost(a.q[i].m)
				a.q = append(a.q[:i], a.q[i+1:]...)
				continue
			}
		}
		// Backpressure (or a queue full of unsheddable advance frames):
		// block the handler; the sender's unacked ring absorbs the stall.
		a.cond.Wait()
	}
	if !a.closed {
		a.q = append(a.q, admitted{m: m, cc: cc})
	}
	a.mu.Unlock()
	a.cond.Broadcast()
	// A shed frame was claimed at admission, so its sender still gets the
	// cumulative ack and releases it — it is handled, just not applied.
	for _, d := range dropped {
		if d.m.ClientID != "" && d.m.Seq > 0 {
			d.cc.reply(Message{Type: "ack", Seq: s.ackedSeq(d.m.ClientID)})
		}
	}
}

// oldestSheddable finds the oldest coverage-only frame: observations and
// observation batches may be shed, advance frames never (they carry clock
// state).
func oldestSheddable(q []admitted) int {
	for i := range q {
		if q[i].m.Type == "obs" || q[i].m.Type == "batch" {
			return i
		}
	}
	return -1
}

// shedCost is how many observations dropping a frame costs — what the
// shed counter (a count of observations, not frames) advances by.
func shedCost(m Message) uint64 {
	if m.Type == "batch" {
		return uint64(len(m.Batch))
	}
	return 1
}

// pump drains the admission queue into the engine in arrival order,
// exiting only when the queue is closed and empty (Shutdown).
func (s *Server) pump() {
	defer close(s.pumpDone)
	a := s.admit
	for {
		a.mu.Lock()
		for len(a.q) == 0 && !a.closed {
			a.cond.Wait()
		}
		if len(a.q) == 0 {
			a.mu.Unlock()
			return
		}
		e := a.q[0]
		a.q = a.q[1:]
		a.mu.Unlock()
		a.cond.Broadcast()
		s.applyFrame(e.cc, e.m)
	}
}

// claimSeq records seq as applied for the client and reports whether the
// frame is fresh. Frames arrive in sequence order per client (a client
// writes one connection at a time, in order), so a cumulative high-water
// mark is a complete dedupe record.
func (s *Server) claimSeq(clientID string, seq uint64) (fresh bool, last uint64) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	last = s.lastSeq[clientID]
	if seq <= last {
		return false, last
	}
	s.lastSeq[clientID] = seq
	return true, seq
}

// ackedSeq returns the cumulative ack value for a client.
func (s *Server) ackedSeq(clientID string) uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.lastSeq[clientID]
}

// jsonRows converts query rows into JSON-safe values (durations become
// nanosecond integers).
func jsonRows(rows [][]any) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		row := make([]any, len(r))
		for j, v := range r {
			if d, ok := v.(time.Duration); ok {
				row[j] = int64(d)
			} else {
				row[j] = v
			}
		}
		out[i] = row
	}
	return out
}

// Client is a typed connection to a Server. For a client that survives
// connection loss, see ReliableClient.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex // serializes writes (user calls vs keepalive pongs)
	enc  *json.Encoder
	dec  *json.Decoder

	mu     sync.Mutex
	fires  []Message
	result chan Message
	stats  chan Message
	status chan Message
	// OnFire, when set, receives rule firings as they arrive.
	OnFire func(Message)
	errCh  chan error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:   conn,
		enc:    json.NewEncoder(conn),
		dec:    json.NewDecoder(bufio.NewReader(conn)),
		result: make(chan Message, 1),
		stats:  make(chan Message, 1),
		status: make(chan Message, 1),
		errCh:  make(chan error, 1),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		var m Message
		if err := c.dec.Decode(&m); err != nil {
			c.errCh <- err
			close(c.result)
			close(c.stats)
			close(c.status)
			return
		}
		switch m.Type {
		case "fire":
			c.mu.Lock()
			c.fires = append(c.fires, m)
			cb := c.OnFire
			c.mu.Unlock()
			if cb != nil {
				cb(m)
			}
		case "ping":
			_ = c.write(Message{Type: "pong"})
		case "result", "error":
			select {
			case c.result <- m:
			default:
			}
		case "stats":
			select {
			case c.stats <- m:
			default:
			}
		case "status":
			select {
			case c.status <- m:
			default:
			}
		}
	}
}

func (c *Client) write(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// Send streams one observation.
func (c *Client) Send(reader, object string, at time.Duration) error {
	return c.write(Message{Type: "obs", Reader: reader, Object: object, AtNS: int64(at)})
}

// SendBatch streams one read cycle of observations as a single batch
// frame. The server must support batch frames (any server of this
// version; see FeatureBatch) — for negotiated fallback against older
// servers use ReliableClient.SendBatch.
func (c *Client) SendBatch(batch []BatchObs) error {
	if len(batch) == 0 {
		return nil
	}
	return c.write(Message{Type: "batch", Batch: batch})
}

// Advance moves the server's virtual clock forward.
func (c *Client) Advance(at time.Duration) error {
	return c.write(Message{Type: "advance", AtNS: int64(at)})
}

// Query runs SQL on the server's data store.
func (c *Client) Query(sql string) ([]string, [][]any, error) {
	if err := c.write(Message{Type: "query", SQL: sql}); err != nil {
		return nil, nil, err
	}
	m, ok := <-c.result
	if !ok {
		return nil, nil, errors.New("wire: connection closed")
	}
	if m.Type == "error" {
		return nil, nil, errors.New(m.Msg)
	}
	return m.Columns, m.Rows, nil
}

// Status asks the server for its overload counters (see the "status"
// frame): observations/detections applied, shard count, admission-queue
// depth and shed counter.
func (c *Client) Status() (Message, error) {
	if err := c.write(Message{Type: "status"}); err != nil {
		return Message{}, err
	}
	m, ok := <-c.status
	if !ok {
		return Message{}, errors.New("wire: connection closed")
	}
	return m, nil
}

// Firings returns the rule firings received so far.
func (c *Client) Firings() []Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Message(nil), c.fires...)
}

// Close ends the feed gracefully and returns the server's stats.
func (c *Client) Close() (Message, error) {
	if err := c.write(Message{Type: "bye"}); err != nil {
		c.conn.Close()
		return Message{}, err
	}
	m, ok := <-c.stats
	c.conn.Close()
	if !ok {
		return Message{}, errors.New("wire: connection closed before stats")
	}
	return m, nil
}
