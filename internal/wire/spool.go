package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Spool is a write-ahead journal for a ReliableClient, mirroring the
// store WAL's append-only JSON-lines idiom: every sequenced frame is
// journaled before it enters the in-memory ring, and every cumulative
// ack is journaled as it arrives. If the edge process crashes, reopening
// the spool recovers the frames the server never acknowledged — and the
// next sequence number — so the feed resumes with no loss and no reuse
// of sequence numbers.
//
// Entries: {"seq":N,"m":{...}} journals a frame, {"ack":N} a cumulative
// ack. Opening compacts the file down to the still-unacked frames.
type Spool struct {
	mu          sync.Mutex
	path        string
	f           *os.File
	w           *bufio.Writer
	enc         *json.Encoder
	lastSeq     uint64 // highest frame seq ever journaled
	lastAck     uint64
	pending     []Message // unacked frames recovered at open
	quarantined int       // bytes moved to the .quarantine file at open
}

type spoolEntry struct {
	Seq uint64   `json:"seq,omitempty"`
	Ack uint64   `json:"ack,omitempty"`
	M   *Message `json:"m,omitempty"`
}

// OpenSpool opens (or creates) a spool file, replays it, and compacts it
// to the unacked suffix. The recovered frames are available via Pending.
func OpenSpool(path string) (*Spool, error) {
	s := &Spool{path: path}
	if f, err := os.Open(path); err == nil {
		err = s.replay(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// Compact: rewrite only what is still pending, then append from there.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range s.pending {
		if err := enc.Encode(spoolEntry{Seq: s.pending[i].Seq, M: &s.pending[i]}); err != nil {
			f.Close()
			return nil, err
		}
	}
	if s.lastSeq > 0 || s.lastAck > 0 {
		// Preserve the high-water marks even when nothing is pending.
		if err := enc.Encode(spoolEntry{Ack: s.lastAck}); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	s.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.w = bufio.NewWriter(s.f)
	s.enc = json.NewEncoder(s.w)
	return s, nil
}

func (s *Spool) replay(r io.Reader) error {
	br := bufio.NewReader(r)
	frames := map[uint64]Message{}
	order := []uint64{}
	var bad []byte // undecodable suffix, quarantined instead of trusted
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			var e spoolEntry
			if uerr := json.Unmarshal(line, &e); uerr != nil {
				// A torn record — typically the final append of an
				// unclean shutdown cut mid-line. Nothing after it can be
				// trusted either (offsets are gone), so the whole suffix
				// is rejected and preserved in the .quarantine side file
				// rather than silently discarded or crashed on.
				bad = append(bad, line...)
				rest, rerr := io.ReadAll(br)
				bad = append(bad, rest...)
				if rerr != nil {
					return rerr
				}
				break
			}
			s.applyEntry(&e, frames, &order)
		}
		if err == io.EOF {
			break
		} else if err != nil {
			return err
		}
	}
	if len(bad) > 0 {
		s.quarantine(bad)
	}
	for _, seq := range order {
		if seq > s.lastAck {
			s.pending = append(s.pending, frames[seq])
		}
	}
	if s.lastAck > s.lastSeq {
		s.lastSeq = s.lastAck
	}
	return nil
}

// quarantine preserves rejected journal bytes in path+".quarantine" for
// operator inspection. Best effort: recovery of the good prefix must not
// fail because the evidence file could not be written.
func (s *Spool) quarantine(b []byte) {
	s.quarantined = len(b)
	f, err := os.OpenFile(s.QuarantinePath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	_, _ = f.Write(b)
	_ = f.Close()
}

func (s *Spool) applyEntry(e *spoolEntry, frames map[uint64]Message, order *[]uint64) {
	if e.M != nil && e.Seq > 0 {
		if _, dup := frames[e.Seq]; !dup {
			*order = append(*order, e.Seq)
		}
		frames[e.Seq] = *e.M
		if e.Seq > s.lastSeq {
			s.lastSeq = e.Seq
		}
	} else if e.Ack > s.lastAck {
		s.lastAck = e.Ack
	}
}

// Quarantined reports how many bytes of undecodable journal suffix the
// last open moved aside, and QuarantinePath where they were preserved.
func (s *Spool) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// QuarantinePath is the side file that receives rejected journal bytes.
func (s *Spool) QuarantinePath() string { return s.path + ".quarantine" }

// Pending returns the frames journaled but never acked, in sequence
// order — what a restarted client must replay.
func (s *Spool) Pending() []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.pending...)
}

// LastSeq returns the highest sequence number ever journaled; a resuming
// client continues at LastSeq()+1.
func (s *Spool) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// LastAck returns the highest cumulative ack journaled.
func (s *Spool) LastAck() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAck
}

// Append journals one sequenced frame and flushes it to the OS before
// returning, so an acked-later frame is never only in process memory.
func (s *Spool) Append(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("wire: spool %s is closed", s.path)
	}
	if err := s.enc.Encode(spoolEntry{Seq: m.Seq, M: &m}); err != nil {
		return err
	}
	if m.Seq > s.lastSeq {
		s.lastSeq = m.Seq
	}
	return s.w.Flush()
}

// Ack journals a cumulative ack.
func (s *Spool) Ack(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.enc == nil {
		return fmt.Errorf("wire: spool %s is closed", s.path)
	}
	if seq <= s.lastAck {
		return nil
	}
	s.lastAck = seq
	if err := s.enc.Encode(spoolEntry{Ack: seq}); err != nil {
		return err
	}
	return s.w.Flush()
}

// Close flushes and closes the journal file. The on-disk state is left
// intact for the next OpenSpool to recover.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w, s.enc = nil, nil, nil
	return err
}
