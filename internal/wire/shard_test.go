package wire

import (
	"testing"
	"time"

	"rcep"
)

const twoReaderRules = `
CREATE RULE r1, dock sequence
ON WITHIN(observation('dock1', o, t1); observation('dock1', o, t2), 5sec)
IF true
DO INSERT INTO ALERTS VALUES ('dock', o, t1)

CREATE RULE r2, gate sequence
ON WITHIN(observation('gate1', o, t1); observation('gate1', o, t2), 5sec)
IF true
DO INSERT INTO ALERTS VALUES ('gate', o, t1)
`

// TestWireShardedEngine serves a sharded engine over the wire: firings,
// queries and the stats reply (including the shard count) all behave as
// with a single engine.
func TestWireShardedEngine(t *testing.T) {
	_, addr := startServer(t, rcep.Config{Rules: twoReaderRules, Shards: 4})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fires := make(chan Message, 10)
	c.OnFire = func(m Message) { fires <- m }

	for i, o := range []struct {
		reader, object string
	}{{"dock1", "p1"}, {"gate1", "p2"}, {"dock1", "p1"}, {"gate1", "p2"}} {
		if err := c.Send(o.reader, o.object, sec(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for len(seen) < 2 {
		select {
		case m := <-fires:
			seen[m.Rule] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("rules fired: %v, want both r1 and r2", seen)
		}
	}

	_, rows, err := c.Query(`SELECT object_epc FROM ALERTS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("ALERTS rows over wire: %v, want 2", rows)
	}

	stats, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 4 || stats.Detections != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Shards != 2 {
		t.Fatalf("stats.Shards = %d, want 2 (two disjoint reader classes)", stats.Shards)
	}
}
