package wire

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rcep"
	"rcep/internal/faults"
)

// detectionKey canonicalizes a detection for multiset comparison.
func detectionKey(d rcep.Detection) string {
	keys := make([]string, 0, len(d.Bindings))
	for k := range d.Bindings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d", d.RuleID, int64(d.Begin), int64(d.End))
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%v", k, d.Bindings[k])
	}
	return b.String()
}

// chaosObservations builds a deterministic 10k-observation stream where
// every 50th observation repeats the previous (reader, object) pair,
// giving dupRule a known set of firings to detect.
func chaosObservations(n int) []struct {
	reader, object string
	at             time.Duration
} {
	obs := make([]struct {
		reader, object string
		at             time.Duration
	}, n)
	for i := 0; i < n; i++ {
		r, o := fmt.Sprintf("r%d", i%5), fmt.Sprintf("o%d", i)
		if i%50 == 49 {
			r, o = fmt.Sprintf("r%d", (i-1)%5), fmt.Sprintf("o%d", i-1)
		}
		obs[i].reader, obs[i].object = r, o
		obs[i].at = time.Duration(i) * 3 * time.Millisecond
	}
	return obs
}

// TestReliableChaosNoLossNoDup is the acceptance test for the resilience
// layer: a ReliableClient feeds 10k observations through connections
// that are forcibly reset every few hundred frames (some torn mid-
// frame), and the server's detection multiset must match an oracle run
// with no faults at all — zero observation loss, zero duplicate
// detections.
func TestReliableChaosNoLossNoDup(t *testing.T) {
	const n = 10000
	obs := chaosObservations(n)

	// Oracle: an uninterrupted in-process engine over the same stream.
	oracle := map[string]int{}
	eng, err := rcep.New(rcep.Config{
		Rules:       dupRule,
		OnDetection: func(d rcep.Detection) { oracle[detectionKey(d)]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := eng.Ingest(o.reader, o.object, o.at); err != nil {
			t.Fatal(err)
		}
	}
	if len(oracle) == 0 {
		t.Fatal("oracle produced no detections; the chaos run would be vacuous")
	}

	// Chaos run: same stream over a wire with injected resets.
	got := map[string]int{}
	srv, err := NewServer(rcep.Config{
		Rules:       dupRule,
		OnDetection: func(d rcep.Detection) { got[detectionKey(d)]++ },
	}, WithKeepalive(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()

	inj := faults.New(42,
		faults.WithConnReset(400, 200),
		faults.WithPartialWrites(0.5),
		faults.WithWriteDelay(0.002, time.Millisecond),
	)
	c, err := DialReliable(l.Addr().String(), ReliableOptions{
		ClientID:     "chaos-edge",
		Dial:         inj.Dialer(func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) }),
		Backoff:      2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Seed:         7,
		DrainTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := c.Send(o.reader, o.object, o.at); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	stats, err := c.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}

	if inj.Resets() < 5 {
		t.Fatalf("chaos too gentle: only %d resets injected (want >= 5)", inj.Resets())
	}
	if c.Reconnects() < 5 {
		t.Fatalf("client reconnected only %d times across %d resets", c.Reconnects(), inj.Resets())
	}
	if stats.Observations != n {
		t.Fatalf("engine ingested %d observations, want exactly %d (loss or duplication)", stats.Observations, n)
	}
	// Exact multiset equality against the oracle.
	for k, want := range oracle {
		if got[k] != want {
			t.Fatalf("detection %q: got %d, oracle %d", k, got[k], want)
		}
	}
	for k, have := range got {
		if oracle[k] != have {
			t.Fatalf("unexpected detection %q ×%d not in oracle", k, have)
		}
	}
	t.Logf("survived %d resets / %d reconnects; %d observations, %d distinct detections",
		inj.Resets(), c.Reconnects(), stats.Observations, len(oracle))
}

// TestReliableSpoolRecovery: frames journaled by a client that never
// reached the server survive a simulated process crash and are delivered
// by a successor using the same spool and client ID.
func TestReliableSpoolRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edge.spool")
	sp, err := OpenSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	// No server listening: every dial fails, frames stay buffered.
	c, err := DialReliable("127.0.0.1:1", ReliableOptions{
		ClientID:     "edge1",
		Spool:        sp,
		Backoff:      time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		DrainTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Send("dock", fmt.Sprintf("o%d", i), time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err == nil {
		t.Fatal("close succeeded with no server; expected a drain timeout")
	}

	// "Restart": reopen the spool; the successor replays into a live server.
	sp2, err := OpenSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sp2.Pending()); got != 3 {
		t.Fatalf("recovered %d pending frames, want 3", got)
	}
	_, addr := startServer(t, rcep.Config{Rules: dupRule})
	c2, err := DialReliable(addr, ReliableOptions{
		ClientID:     "edge1",
		Spool:        sp2,
		Backoff:      time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A post-crash observation continues the same sequence.
	if err := c2.Send("dock", "o3", 3*time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := c2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 4 {
		t.Fatalf("server ingested %d observations, want 4 (3 recovered + 1 new)", stats.Observations)
	}
}

// TestReliableResumeSkipsAppliedFrames: if the server already applied
// frames whose acks were lost, the hello exchange releases them without
// re-ingestion.
func TestReliableResumeSkipsAppliedFrames(t *testing.T) {
	srv, addr := startServer(t, rcep.Config{Rules: dupRule})
	// Pretend a previous session delivered seqs 1..2 but the acks never
	// arrived back.
	srv.claimSeq("edge9", 2)

	c, err := DialReliable(addr, ReliableOptions{
		ClientID:     "edge9",
		Backoff:      time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// These two enqueue as seq 1 and 2 — already applied server-side;
	// the server must drop them while still acking.
	if err := c.Send("dock", "a", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("dock", "b", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Send("dock", "c", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Observations != 1 {
		t.Fatalf("server ingested %d observations, want 1 (two were stale replays)", stats.Observations)
	}
}

// TestServerReapsDeadPeer: with keepalive on, a peer that never writes is
// disconnected by the read deadline instead of holding its handler
// goroutine forever.
func TestServerReapsDeadPeer(t *testing.T) {
	srv, err := NewServer(rcep.Config{Rules: dupRule}, WithKeepalive(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Read pings but never answer; the server must hang up within the
	// 3×keepalive deadline.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	sawPing := false
	start := time.Now()
	for {
		n, err := conn.Read(buf)
		if n > 0 && strings.Contains(string(buf[:n]), `"ping"`) {
			sawPing = true
		}
		if err != nil { // server closed the connection
			break
		}
	}
	if !sawPing {
		t.Fatal("never saw a keepalive ping")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dead peer survived %v; expected reaping near 90ms", elapsed)
	}
}

// TestReliableGivesUpAfterMaxAttempts: a bounded-retry client fails
// terminally instead of blocking forever.
func TestReliableGivesUpAfterMaxAttempts(t *testing.T) {
	c, err := DialReliable("127.0.0.1:1", ReliableOptions{
		ClientID:    "edge2",
		Backoff:     time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Send("r", "o", 0); err != nil {
			return // terminal failure surfaced
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("client never failed despite MaxAttempts")
}
